// A fleet of simulated field agents working a MiniBird task suite through
// the batch probe API: dry-run cost estimation, priority-aware admission
// control, cross-agent sharing through the memory store, and the system's
// accounting of how much speculative work it absorbed.
//
//   ./build/examples/agent_fleet

#include <cstdio>

#include "agents/ensemble.h"
#include "agents/sim_agent.h"
#include "core/probe_builder.h"
#include "core/system.h"
#include "workload/minibird.h"

using namespace agentfirst;

int main() {
  MiniBirdOptions options;
  options.num_databases = 1;  // retail domain
  options.rows_per_fact_table = 20000;
  options.rows_per_dim_table = 64;
  options.seed = 7;
  auto suite = GenerateMiniBird(options);
  AgentFirstSystem* db = suite[0].system.get();

  std::printf("database: %s (%zu tables)\n\n", suite[0].name.c_str(),
              db->catalog()->NumTables());

  // --- 1. Dry run: ask for cost estimates before committing to work ------
  Probe dry =
      ProbeBuilder("planner")
          .DryRun()
          .Query("SELECT count(*) FROM sales")
          .Query("SELECT st.state, sum(s.revenue) FROM sales s JOIN stores st "
                 "ON s.store_id = st.store_id GROUP BY st.state")
          .Query("SELECT s1.sale_id FROM sales s1 CROSS JOIN sales s2 "
                 "LIMIT 10")  // ouch
          .Build();
  auto estimates = db->HandleProbe(dry);
  if (!estimates.ok()) return 1;
  std::printf("dry-run cost estimates (nothing executed):\n");
  for (size_t i = 0; i < estimates->answers.size(); ++i) {
    const QueryAnswer& a = estimates->answers[i];
    std::printf("  q%zu: est. cost %.0f rows-touched, est. output %.0f rows\n",
                i, a.estimated_cost, a.estimated_rows);
  }
  std::printf("  -> the agent drops q2 (the accidental cross join) before it "
              "ever runs.\n\n");

  // --- 2. A prioritized probe batch from several agents ------------------
  std::vector<Probe> batch;
  batch.push_back(
      ProbeBuilder("explorer-1")
          .Query("SELECT table_name, num_rows FROM information_schema.tables")
          .Query("SELECT column_name, num_distinct, most_common_value FROM "
                 "information_schema.column_stats WHERE table_name = 'sales'")
          .Brief("low priority background exploration of the sales schema")
          .Build());
  batch.push_back(
      ProbeBuilder("validator")
          .Query("SELECT count(*) FROM sales WHERE year = 2025")
          .Brief("urgent: verify the final 2025 sales count exactly")
          .Build());
  batch.push_back(
      ProbeBuilder("explorer-2")
          .Query("SELECT count(*) FROM sales WHERE year = 2025")  // duplicate!
          .Brief("exploring sales volume")
          .Build());
  auto responses = db->HandleProbeBatch(batch);
  if (!responses.ok()) return 1;
  std::printf("probe batch of %zu probes answered; admission control ran the "
              "urgent validation first:\n", batch.size());
  std::printf("  validator from_memory=%s, explorer-2 (duplicate query) "
              "from_memory=%s\n\n",
              (*responses)[1].answers[0].from_memory ? "yes" : "no",
              (*responses)[2].answers[0].from_memory ? "yes" : "no");

  // --- 3. Let simulated agents loose on the real tasks -------------------
  size_t solved = 0;
  size_t episodes = 0;
  for (const TaskSpec& task : suite[0].tasks) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      EpisodeOptions eo;
      eo.seed = seed;
      EpisodeResult r = RunEpisode(db, task, StrongAgentProfile(), eo);
      ++episodes;
      if (r.solved) ++solved;
    }
  }
  std::printf("agent fleet: %zu/%zu episodes solved their task\n", solved,
              episodes);

  const ProbeOptimizer::Metrics& m = db->optimizer()->metrics();
  SharingStats sharing = db->optimizer()->sharing_stats();
  std::printf("\nsystem accounting across the whole session:\n");
  std::printf("  probes handled:        %llu\n",
              static_cast<unsigned long long>(m.probes));
  std::printf("  queries executed:      %llu\n",
              static_cast<unsigned long long>(m.queries_executed));
  std::printf("  served from memory:    %llu\n",
              static_cast<unsigned long long>(m.queries_from_memory));
  std::printf("  approximated:          %llu\n",
              static_cast<unsigned long long>(m.queries_approximate));
  std::printf("  skipped (satisficing): %llu\n",
              static_cast<unsigned long long>(m.queries_skipped));
  std::printf("  sub-plan cache hits:   %llu\n",
              static_cast<unsigned long long>(sharing.cache_hits));
  std::printf("  memory artifacts:      %zu\n", db->memory()->size());
  return 0;
}
