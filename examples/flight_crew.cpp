// The paper's branched-update scenario: a flight is delayed and an agent
// must propose a replacement crew. The agent forks one branch per candidate
// reassignment, applies the speculative updates in isolation, validates each
// hypothetical world, rolls back the losers, and merges the winner -- the
// "multi-world isolation" pattern of Sec. 6.2.
//
//   ./build/examples/flight_crew

#include <cstdio>

#include "core/system.h"

using namespace agentfirst;

namespace {

void Setup(AgentFirstSystem* db) {
  const char* ddl[] = {
      "CREATE TABLE crew (crew_id BIGINT, name VARCHAR, role VARCHAR,"
      " base VARCHAR, rest_hours BIGINT)",
      "INSERT INTO crew VALUES"
      " (1,'Avery','captain','SFO',14), (2,'Blake','captain','SFO',6),"
      " (3,'Casey','captain','SEA',20), (4,'Drew','first_officer','SFO',16),"
      " (5,'Emery','first_officer','SFO',4), (6,'Finley','attendant','SFO',22)",
      "CREATE TABLE assignments (flight_id BIGINT, crew_id BIGINT)",
      "INSERT INTO assignments VALUES (900,2), (900,5), (900,6)",
  };
  for (const char* sql : ddl) {
    if (!db->ExecuteSql(sql).ok()) std::abort();
  }
}

}  // namespace

int main() {
  AgentFirstSystem db;
  Setup(&db);
  std::printf("flight 900's captain (Blake) and first officer (Emery) are "
              "under-rested;\nthe agent speculates over replacement crews in "
              "isolated branches.\n\n");

  if (!db.EnableBranching("crew").ok() ||
      !db.EnableBranching("assignments").ok()) {
    std::fprintf(stderr, "branching setup failed\n");
    return 1;
  }
  BranchManager* branches = db.branches();

  // Candidate hypotheses: (replacement captain, replacement first officer).
  struct Candidate {
    int64_t captain;
    int64_t first_officer;
    uint64_t branch = 0;
    bool feasible = false;
  };
  std::vector<Candidate> candidates = {
      {1, 4, 0, false},  // Avery + Drew (both rested, both SFO)
      {3, 4, 0, false},  // Casey + Drew (Casey is based in SEA)
      {1, 5, 0, false},  // Avery + Emery (Emery is the tired one!)
  };

  for (Candidate& c : candidates) {
    auto branch = branches->Fork(BranchManager::kMainBranch);
    if (!branch.ok()) return 1;
    c.branch = *branch;
    // Speculative updates: swap the two assignment rows (rows 0 and 1 hold
    // crew 2 and 5 for flight 900).
    (void)branches->Write(c.branch, "assignments", 0, 1, Value::Int(c.captain));
    (void)branches->Write(c.branch, "assignments", 1, 1, Value::Int(c.first_officer));

    // Validate the hypothetical world: every assigned crew member must have
    // rest_hours >= 10 and (for simplicity) be based at SFO.
    c.feasible = true;
    auto rows = branches->NumRows(c.branch, "assignments");
    for (size_t r = 0; r < *rows; ++r) {
      int64_t crew_id = branches->Read(c.branch, "assignments", r, 1)->int_value();
      // Crew table rows are crew_id - 1 by construction.
      auto rest = branches->Read(c.branch, "crew",
                                 static_cast<size_t>(crew_id - 1), 4);
      auto base = branches->Read(c.branch, "crew",
                                 static_cast<size_t>(crew_id - 1), 3);
      if (!rest.ok() || !base.ok() || rest->int_value() < 10 ||
          base->string_value() != "SFO") {
        c.feasible = false;
      }
    }
    std::printf("branch %llu: captain %lld + first officer %lld -> %s\n",
                static_cast<unsigned long long>(c.branch),
                static_cast<long long>(c.captain),
                static_cast<long long>(c.first_officer),
                c.feasible ? "FEASIBLE" : "infeasible");
  }

  // Roll back the losers, merge the first feasible world.
  const Candidate* winner = nullptr;
  for (const Candidate& c : candidates) {
    if (winner == nullptr && c.feasible) {
      winner = &c;
      continue;
    }
    (void)branches->Rollback(c.branch);
  }
  if (winner == nullptr) {
    std::printf("\nno feasible crew found; surfacing to a human dispatcher.\n");
    return 0;
  }
  auto report = branches->Merge(winner->branch, BranchManager::kMainBranch,
                                MergePolicy::kFailOnConflict);
  if (!report.ok() || !report->committed) {
    std::fprintf(stderr, "merge failed\n");
    return 1;
  }
  (void)branches->Rollback(winner->branch);

  std::printf("\nmerged the winning branch (%zu cells applied). final "
              "assignments for flight 900:\n",
              report->cells_applied);
  auto rows = branches->NumRows(BranchManager::kMainBranch, "assignments");
  for (size_t r = 0; r < *rows; ++r) {
    int64_t crew_id =
        branches->Read(BranchManager::kMainBranch, "assignments", r, 1)->int_value();
    auto name = branches->Read(BranchManager::kMainBranch, "crew",
                               static_cast<size_t>(crew_id - 1), 1);
    std::printf("  crew %lld (%s)\n", static_cast<long long>(crew_id),
                name->string_value().c_str());
  }

  const BranchManager::Stats& stats = branches->stats();
  std::printf("\nbranching stats: %llu forks, %llu rollbacks, %llu merges, "
              "%llu segments cloned (COW)\n",
              static_cast<unsigned long long>(stats.forks),
              static_cast<unsigned long long>(stats.rollbacks),
              static_cast<unsigned long long>(stats.merges),
              static_cast<unsigned long long>(stats.segments_cloned));
  return 0;
}
