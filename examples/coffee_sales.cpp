// The paper's introduction scenario: an "army" of LLM agents investigates
// why coffee-bean profits in Berkeley dropped this year relative to last.
// This example drives the full agent-first loop with simulated field agents:
// high-throughput speculative probes, steering hints correcting a wrong
// value-encoding assumption, the agentic memory store absorbing redundant
// grounding work, and a final exact validation.
//
//   ./build/examples/coffee_sales

#include <cstdio>

#include "core/probe_builder.h"
#include "core/system.h"

using namespace agentfirst;

namespace {

void Setup(AgentFirstSystem* db) {
  const char* ddl[] = {
      "CREATE TABLE stores (store_id BIGINT, city VARCHAR, state VARCHAR)",
      "INSERT INTO stores VALUES (1,'Berkeley','California'),"
      " (2,'Oakland','California'), (3,'Seattle','Washington')",
      "CREATE TABLE bean_sales (sale_id BIGINT, store_id BIGINT, year BIGINT,"
      " month BIGINT, revenue DOUBLE, cost DOUBLE)",
  };
  for (const char* sql : ddl) {
    auto r = db->ExecuteSql(sql);
    if (!r.ok()) std::abort();
  }
  // 2024 was a good year in Berkeley; 2025 margins collapsed there (rising
  // bean costs), while Seattle stayed healthy.
  std::string insert = "INSERT INTO bean_sales VALUES ";
  int id = 0;
  for (int year : {2024, 2025}) {
    for (int month = 1; month <= 12; ++month) {
      for (int store = 1; store <= 3; ++store) {
        double revenue = 900 + 45.0 * month + store * 120;
        double cost = 0.55 * revenue;
        if (store == 1 && year == 2025) cost = 0.95 * revenue;  // the anomaly
        if (id > 0) insert += ",";
        insert += "(" + std::to_string(id++) + "," + std::to_string(store) + "," +
                  std::to_string(year) + "," + std::to_string(month) + "," +
                  std::to_string(revenue) + "," + std::to_string(cost) + ")";
      }
    }
  }
  if (!db->ExecuteSql(insert).ok()) std::abort();
}

ProbeResponse MustProbe(AgentFirstSystem* db, Probe probe) {
  auto r = db->HandleProbe(probe);
  if (!r.ok()) {
    std::fprintf(stderr, "probe failed: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return *r;
}

}  // namespace

int main() {
  AgentFirstSystem db;
  Setup(&db);
  std::printf("task: why were coffee bean PROFITS in Berkeley low this year "
              "(2025) vs last year?\n\n");

  // --- Field agent 1: metadata exploration ------------------------------
  Probe explore =
      ProbeBuilder("field-1")
          .Query("SELECT table_name, num_rows FROM information_schema.tables")
          .Brief("exploring: where do coffee bean sales and costs live?")
          .Build();
  auto r1 = MustProbe(&db, explore);
  std::printf("[field-1 explores metadata]\n%s\n", r1.ToString(5).c_str());

  // --- Field agent 2: stumbles over the state encoding ------------------
  Probe wrong =
      ProbeBuilder("field-2")
          .Query("SELECT store_id FROM stores WHERE state = 'CA'")
          .Brief("attempting part of the query: find California stores")
          .Build();
  auto r2 = MustProbe(&db, wrong);
  std::printf("[field-2 guesses 'CA' and gets steered]\n%s\n",
              r2.ToString(5).c_str());

  // --- Field agents 3..6: redundant speculative aggregates --------------
  // The memory store answers the repeats without re-executing.
  for (int a = 3; a <= 6; ++a) {
    Probe agg = ProbeBuilder("field-" + std::to_string(a))
                    .Query("SELECT year, sum(revenue) AS revenue, sum(cost) AS "
                           "cost FROM bean_sales GROUP BY year ORDER BY year")
                    .Brief("exploring yearly totals for the profit question")
                    .Build();
    auto r = MustProbe(&db, agg);
    std::printf("[field-%d yearly totals]%s\n", a,
                r.answers[0].from_memory ? " (served from agentic memory)" : "");
  }

  // --- Agent-in-charge: exact drill-down by store and year --------------
  Probe final_probe =
      ProbeBuilder("in-charge")
          .Query("SELECT st.city, s.year, sum(s.revenue - s.cost) AS profit "
                 "FROM bean_sales s JOIN stores st ON s.store_id = st.store_id "
                 "GROUP BY st.city, s.year ORDER BY st.city, s.year")
          .Brief("validate the final answer exactly")
          .Build();
  auto r3 = MustProbe(&db, final_probe);
  std::printf("\n[in-charge validates profit by city and year]\n%s\n",
              r3.answers[0].result->ToString().c_str());

  std::printf("conclusion: Berkeley's 2025 profit collapsed while revenue held "
              "steady -- the cost side is the culprit.\n");

  const ProbeOptimizer::Metrics& m = db.optimizer()->metrics();
  std::printf("\nsystem-side accounting: %llu probes, %llu executed, "
              "%llu from memory, %llu skipped\n",
              static_cast<unsigned long long>(m.probes),
              static_cast<unsigned long long>(m.queries_executed),
              static_cast<unsigned long long>(m.queries_from_memory),
              static_cast<unsigned long long>(m.queries_skipped));
  return 0;
}
