// The paper's "tariff" scenario (Sec. 4.1): an agent is asked how a company
// is impacted by increased tariffs on imported electronic goods, but has no
// idea which tables are relevant. SQL's LIKE cannot express "anything
// semantically similar to electronics, anywhere" -- the probe's semantic
// discovery operator can, searching table names, column names, and sampled
// cell values at once.
//
//   ./build/examples/semantic_discovery

#include <cstdio>

#include "core/probe_builder.h"
#include "core/system.h"

using namespace agentfirst;

int main() {
  AgentFirstSystem db;
  const char* setup[] = {
      "CREATE TABLE suppliers (supplier_id BIGINT, name VARCHAR, country VARCHAR)",
      "INSERT INTO suppliers VALUES (1,'Shenzhen Circuits','China'),"
      " (2,'Bavaria Precision','Germany'), (3,'Austin Textiles','USA')",
      "CREATE TABLE purchase_orders (po_id BIGINT, supplier_id BIGINT,"
      " item_description VARCHAR, amount DOUBLE)",
      "INSERT INTO purchase_orders VALUES"
      " (10, 1, 'semiconductor chips', 125000.0),"
      " (11, 1, 'circuit boards', 84000.0),"
      " (12, 2, 'machined housings', 40000.0),"
      " (13, 3, 'cotton fabric', 9000.0),"
      " (14, 1, 'consumer electronics modules', 230000.0)",
      "CREATE TABLE hr_payroll (emp_id BIGINT, salary DOUBLE)",
      "INSERT INTO hr_payroll VALUES (1, 90000.0), (2, 85000.0)",
  };
  for (const char* sql : setup) {
    if (!db.ExecuteSql(sql).ok()) {
      std::fprintf(stderr, "setup failed: %s\n", sql);
      return 1;
    }
  }

  std::printf("task: how is the company impacted by increased tariffs on the "
              "import of electronic goods?\n\n");

  // Step 1: beyond-SQL semantic discovery. No table is named "electronics";
  // the discovery operator searches all data and metadata.
  Probe discover =
      ProbeBuilder("tariff-agent")
          .SemanticSearch("electronics electronic goods imports", /*top_k=*/6)
          .Build();
  auto r1 = db.HandleProbe(discover);
  if (!r1.ok()) return 1;
  std::printf("semantic discovery for 'electronic goods':\n");
  for (const SemanticMatch& m : r1->discoveries) {
    const char* kind = m.kind == SemanticMatch::Kind::kTable
                           ? "table"
                           : (m.kind == SemanticMatch::Kind::kColumn ? "column"
                                                                     : "value");
    std::printf("  [%.2f] %-6s %s", m.score, kind, m.table.c_str());
    if (!m.column.empty()) std::printf(".%s", m.column.c_str());
    if (m.kind == SemanticMatch::Kind::kValue) std::printf(" = '%s'", m.text.c_str());
    std::printf("\n");
  }

  // Step 2: follow the discovered lead with a grounded SQL probe.
  Probe quantify =
      ProbeBuilder("tariff-agent")
          .Query("SELECT s.country, sum(po.amount) AS exposure FROM "
                 "purchase_orders po "
                 "JOIN suppliers s ON po.supplier_id = s.supplier_id "
                 "WHERE po.item_description LIKE '%electronic%' "
                 "   OR po.item_description LIKE '%circuit%' "
                 "   OR po.item_description LIKE '%semiconductor%' "
                 "GROUP BY s.country ORDER BY exposure DESC")
          .Brief("solution formulation: quantify tariff exposure on "
                 "electronics imports by supplier country, exact numbers "
                 "please")
          .Build();
  auto r2 = db.HandleProbe(quantify);
  if (!r2.ok() || !r2->answers[0].status.ok()) {
    std::fprintf(stderr, "probe failed\n");
    return 1;
  }
  std::printf("\nelectronics import exposure by country:\n%s\n",
              r2->answers[0].result->ToString().c_str());

  // Step 3: the scalar similarity operator is also usable inside SQL.
  Probe scored =
      ProbeBuilder("tariff-agent")
          .Query("SELECT item_description, "
                 "       round(semantic_sim(item_description, 'electronic "
                 "goods'), 3) AS sim "
                 "FROM purchase_orders ORDER BY sim DESC")
          .Brief("exploring which line items look electronic")
          .Build();
  auto r3 = db.HandleProbe(scored);
  if (!r3.ok() || !r3->answers[0].status.ok()) return 1;
  std::printf("per-row semantic similarity to 'electronic goods':\n%s",
              r3->answers[0].result->ToString().c_str());
  return 0;
}
