// Quickstart: create an agent-first database, load data with plain SQL, and
// issue a probe -- a batch of queries plus a natural-language brief -- to get
// answers, approximation metadata, and proactive steering hints back.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/probe_builder.h"
#include "core/system.h"

using agentfirst::AgentFirstSystem;
using agentfirst::Hint;
using agentfirst::HintKindName;
using agentfirst::Probe;
using agentfirst::ProbeBuilder;

int main() {
  AgentFirstSystem db;

  // 1. Ordinary SQL still works: DDL + DML through the engine.
  const char* setup[] = {
      "CREATE TABLE products (product_id BIGINT, name VARCHAR, category VARCHAR,"
      " price DOUBLE)",
      "INSERT INTO products VALUES"
      " (1, 'House Blend', 'coffee beans', 14.5),"
      " (2, 'Dark Roast', 'coffee beans', 16.0),"
      " (3, 'Ceramic Mug', 'mugs', 9.0),"
      " (4, 'Burr Grinder', 'grinders', 79.0),"
      " (5, 'Hario V60', 'brewers', 24.0)",
      "CREATE TABLE sales (sale_id BIGINT, product_id BIGINT, quantity BIGINT,"
      " revenue DOUBLE)",
      "INSERT INTO sales VALUES"
      " (100, 1, 3, 43.5), (101, 1, 1, 14.5), (102, 2, 2, 32.0),"
      " (103, 3, 4, 36.0), (104, 4, 1, 79.0), (105, 9, 1, 5.0)",
  };
  for (const char* sql : setup) {
    auto r = db.ExecuteSql(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  // 2. An agent probe: several queries, one brief. The brief tells the
  //    system why the queries are being asked; the probe optimizer uses it
  //    for admission control and approximation decisions.
  Probe probe =
      ProbeBuilder("demo-agent")
          .Query("SELECT table_name, num_rows FROM information_schema.tables")
          .Query("SELECT category, count(*) AS n, sum(revenue) AS total "
                 "  FROM sales JOIN products ON sales.product_id = "
                 "products.product_id "
                 "  GROUP BY category ORDER BY total DESC")
          .Query("SELECT name FROM products WHERE category = 'espresso'")  // empty!
          .Brief("exploring which product categories drive revenue; rough "
                 "numbers are fine")
          .Build();

  auto response = db.HandleProbe(probe);
  if (!response.ok()) {
    std::fprintf(stderr, "probe failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  // 3. Read answers + the steering side channel.
  std::printf("%s\n", response->ToString().c_str());

  std::printf("what just happened:\n");
  std::printf(" - the brief was interpreted as phase '%s'\n",
              agentfirst::ProbePhaseName(response->interpreted_phase));
  for (const Hint& h : response->hints) {
    std::printf(" - hint [%s]: %s\n", HintKindName(h.kind), h.text.c_str());
  }
  std::printf(
      " - re-issuing the same probe would be served from the agentic memory "
      "store\n");
  return 0;
}
