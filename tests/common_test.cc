#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "gtest/gtest.h"

namespace agentfirst {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::NotImplemented("").code(),  Status::Internal("").code(),
      Status::Aborted("").code(),         Status::PermissionDenied("").code(),
      Status::ResourceExhausted("").code(),
      Status::DeadlineExceeded("").code(), Status::Cancelled("").code()};
  EXPECT_EQ(codes.size(), 11u);
}

TEST(StatusTest, LifecycleCodesNameAndMessage) {
  Status d = Status::DeadlineExceeded("probe deadline");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: probe deadline");
  Status c = Status::Cancelled("caller gave up");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.ToString(), "Cancelled: caller gave up");
}

TEST(StatusTest, IsRetryableOnlyForTransientAborts) {
  EXPECT_TRUE(IsRetryable(Status::Aborted("transient")));
  // Deliberate lifecycle outcomes must not be retried: retrying a deadline
  // or a cancellation would repeat the very work that was cut short.
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("")));
  EXPECT_FALSE(IsRetryable(Status::Cancelled("")));
  EXPECT_FALSE(IsRetryable(Status::ResourceExhausted("")));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("")));
  EXPECT_FALSE(IsRetryable(Status::Internal("")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
}

// ---------------------------------------------------------------------------
// Deadline / CancellationToken
// ---------------------------------------------------------------------------

TEST(DeadlineTest, InfiniteByDefault) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, ExpiresAfterDuration) {
  Deadline d = Deadline::AfterMillis(0.0);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_TRUE(d.expired());

  Deadline far = Deadline::AfterMillis(60000.0);
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining().count(), 0);
}

TEST(CancellationTest, DefaultTokenIsNotCancellable) {
  CancellationToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.flag(), nullptr);
  EXPECT_TRUE(CheckInterrupt(token, Deadline::Infinite()).ok());
}

TEST(CancellationTest, SourceCancelsItsTokens) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  ASSERT_NE(token.flag(), nullptr);

  source.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(token.flag()->load());

  Status s = CheckInterrupt(token, Deadline::Infinite());
  EXPECT_EQ(s.code(), StatusCode::kCancelled);

  // Reset hands out fresh tokens; the old one stays cancelled.
  source.Reset();
  EXPECT_FALSE(source.token().cancelled());
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTest, CancellationWinsOverDeadline) {
  CancellationSource source;
  source.RequestCancel();
  Status s = CheckInterrupt(source.token(), Deadline::AfterMillis(0.0));
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // Deadline alone reports kDeadlineExceeded.
  Status d = CheckInterrupt(CancellationToken(), Deadline::AfterMillis(0.0));
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, DisabledRegistryIsInert) {
  FaultRegistry& reg = FaultRegistry::Global();
  reg.Disable();
  reg.ClearArmed();
  EXPECT_FALSE(reg.enabled());
  EXPECT_TRUE(reg.Hit("common_test.site").ok());
}

TEST(FaultInjectionTest, ArmedErrorFiresDeterministically) {
  FaultRegistry& reg = FaultRegistry::Global();
  reg.ClearArmed();
  reg.Enable(/*seed=*/7);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 0.5;
  spec.code = StatusCode::kAborted;
  reg.Arm("common_test.flaky", spec);

  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(!reg.Hit("common_test.flaky").ok());
  }
  // Same seed -> identical fire pattern on replay.
  reg.Disable();
  reg.Enable(/*seed=*/7);
  reg.Arm("common_test.flaky", spec);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(!reg.Hit("common_test.flaky").ok(), first[i]) << "hit " << i;
  }
  size_t fired = static_cast<size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 64u);
  reg.Disable();
  reg.ClearArmed();
}

TEST(FaultInjectionTest, MaxFiresCapsInjection) {
  FaultRegistry& reg = FaultRegistry::Global();
  reg.ClearArmed();
  reg.Enable(/*seed=*/1);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 1.0;
  spec.max_fires = 2;
  reg.Arm("common_test.capped", spec);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!reg.Hit("common_test.capped").ok()) ++failures;
  }
  EXPECT_EQ(failures, 2);
  reg.Disable();
  reg.ClearArmed();
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AF_ASSIGN_OR_RETURN(int half, Half(x));
  AF_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2=3 is odd
  EXPECT_FALSE(bad.ok());
}

TEST(ResultTest, ConvertingConstructor) {
  std::shared_ptr<int> p = std::make_shared<int>(5);
  Result<std::shared_ptr<const int>> r(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 5);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextUintInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint(10), 10u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(13);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextZipf(100, 1.0) < 10) ++low;
  }
  // With skew, the lowest decile should collect far more than 10%.
  EXPECT_GT(low, 2000);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(42);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  EXPECT_NE(c1.Next(), c2.Next());
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashTest, StringHashStable) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString(""), HashString(" "));
}

TEST(HashTest, CombineOrderDependent) {
  uint64_t a = HashString("a");
  uint64_t b = HashString("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

TEST(HashTest, DoubleNormalizesNegativeZero) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(HashTest, Mix64Bijective) {
  // Distinct inputs produce distinct outputs on a sample (bijection spot
  // check).
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
  EXPECT_EQ(ToUpper("AbC_1"), "ABC_1");
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\t\na b\n"), "a b");
}

TEST(StrUtilTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("a,b,,c", ',', /*skip_empty=*/true),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, SplitWords) {
  EXPECT_EQ(SplitWords("  foo   bar\tbaz \n"),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWords("   ").empty());
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "file.cc"));
}

TEST(StrUtilTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("Hello World", "WORLD"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
}

struct LikeCase {
  const char* value;
  const char* pattern;
  bool match;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.value, c.pattern), c.match)
      << c.value << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, LikeMatchTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true}, LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true}, LikeCase{"hello", "h_x_o", false},
        LikeCase{"hello", "%", true}, LikeCase{"", "%", true},
        LikeCase{"", "_", false}, LikeCase{"abc", "a%c", true},
        LikeCase{"abc", "a%b", false}, LikeCase{"aXbXc", "a%b%c", true},
        LikeCase{"coffee beans", "%coffee%", true},
        LikeCase{"coffee beans", "beans%", false},
        LikeCase{"aaa", "a%a", true}, LikeCase{"ab", "%%", true},
        LikeCase{"a", "", false}, LikeCase{"", "", true}));

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

// ---------------------------------------------------------------------------
// MemoryTracker / Arena
// ---------------------------------------------------------------------------

TEST(MemoryTrackerTest, UnlimitedByDefault) {
  MemoryTracker tracker;
  EXPECT_EQ(tracker.limit(), 0u);
  EXPECT_TRUE(tracker.TryConsume(1ull << 40).ok());
  EXPECT_EQ(tracker.used(), 1ull << 40);
}

TEST(MemoryTrackerTest, EnforcesLimitAndLeavesStateUnchangedOnFailure) {
  MemoryTracker tracker(100);
  EXPECT_TRUE(tracker.TryConsume(60).ok());
  Status s = tracker.TryConsume(41);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_EQ(tracker.used(), 60u);  // failed reservation charged nothing
  EXPECT_TRUE(tracker.TryConsume(40).ok());  // exactly at the limit is fine
  EXPECT_EQ(tracker.used(), 100u);
}

TEST(MemoryTrackerTest, ReleaseAndPeak) {
  MemoryTracker tracker(1000);
  EXPECT_TRUE(tracker.TryConsume(700).ok());
  tracker.Release(500);
  EXPECT_EQ(tracker.used(), 200u);
  EXPECT_EQ(tracker.peak(), 700u);
  tracker.Release(10000);  // over-release clamps to zero
  EXPECT_EQ(tracker.used(), 0u);
  EXPECT_TRUE(tracker.TryConsume(900).ok());  // freed budget is reusable
  EXPECT_EQ(tracker.peak(), 900u);
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  auto* a = arena.AllocateArrayOf<int64_t>(100);
  auto* b = arena.AllocateArrayOf<int64_t>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(int64_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(int64_t), 0u);
  // Writes to one array must not alias the other.
  for (int i = 0; i < 100; ++i) a[i] = i;
  for (int i = 0; i < 100; ++i) b[i] = -i;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], i);
  char* c = static_cast<char*>(arena.Allocate(3, 1));
  auto* d = arena.AllocateArrayOf<double>(1);
  ASSERT_NE(c, nullptr);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
}

TEST(ArenaTest, GrowsBeyondOneBlockAndTracksBytes) {
  Arena arena;
  size_t total = 0;
  // Far more than kMinBlockBytes, and one request larger than kMaxBlockBytes.
  for (size_t n : {1000u, 60000u, 300000u, 8u}) {
    EXPECT_NE(arena.Allocate(n), nullptr);
    total += n;
  }
  EXPECT_GE(arena.used_bytes(), total);
  EXPECT_GE(arena.allocated_bytes(), arena.used_bytes());
}

TEST(ArenaTest, ResetRecyclesTheFirstBlock) {
  Arena arena;
  EXPECT_NE(arena.Allocate(64), nullptr);      // first (kept) block
  EXPECT_NE(arena.Allocate(100000), nullptr);  // forces a second block
  size_t grown = arena.allocated_bytes();
  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_LT(arena.allocated_bytes(), grown);  // extra blocks dropped
  EXPECT_GT(arena.allocated_bytes(), 0u);     // first block kept for reuse
  EXPECT_NE(arena.Allocate(64), nullptr);     // steady state: no new block
}

TEST(ArenaTest, ChargesTrackerPerBlockAndFailsTyped) {
  MemoryTracker tracker(Arena::kMinBlockBytes);
  Arena arena(&tracker);
  EXPECT_NE(arena.Allocate(64), nullptr);  // first block fits exactly
  EXPECT_EQ(tracker.used(), arena.allocated_bytes());
  // The next block would exceed the budget: Allocate degrades to nullptr,
  // never throws, and the arena stays usable for in-block allocations.
  EXPECT_EQ(arena.Allocate(2 * Arena::kMinBlockBytes), nullptr);
  EXPECT_NE(arena.Allocate(64), nullptr);
}

TEST(ArenaTest, ResetReleasesTrackerCharges) {
  MemoryTracker tracker;
  {
    Arena arena(&tracker);
    EXPECT_NE(arena.Allocate(100000), nullptr);
    EXPECT_GT(tracker.used(), 0u);
    arena.Reset();
    EXPECT_EQ(tracker.used(), arena.allocated_bytes());
  }
  EXPECT_EQ(tracker.used(), 0u);  // destruction returns everything
}

}  // namespace
}  // namespace agentfirst
