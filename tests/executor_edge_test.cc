// Additional edge-case coverage for the executor: multi-way joins,
// self-joins, expression-keyed grouping, NULL-heavy inputs, segment
// boundaries, and operator interactions.

#include "gtest/gtest.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::PeopleDbTest;

class ExecutorEdgeTest : public PeopleDbTest {};

TEST_F(ExecutorEdgeTest, ThreeWayJoin) {
  Run("CREATE TABLE cities (city VARCHAR, region VARCHAR)");
  Run("INSERT INTO cities VALUES ('berkeley','west'), ('oakland','west'),"
      " ('seattle','northwest')");
  auto rs = Run(
      "SELECT p.name, c.region, o.amount FROM people p "
      "JOIN orders o ON p.id = o.person_id "
      "JOIN cities c ON p.city = c.city "
      "ORDER BY p.name, o.amount");
  ASSERT_EQ(rs->NumRows(), 4u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "alice");
  EXPECT_EQ(rs->rows[0][1].string_value(), "west");
}

TEST_F(ExecutorEdgeTest, SelfJoin) {
  auto rs = Run(
      "SELECT p1.name, p2.name FROM people p1 JOIN people p2 "
      "ON p1.city = p2.city WHERE p1.id < p2.id ORDER BY p1.name, p2.name");
  // berkeley trio: (alice,carol), (alice,erin), (carol,erin) = 3 pairs.
  EXPECT_EQ(rs->NumRows(), 3u);
}

TEST_F(ExecutorEdgeTest, GroupByExpression) {
  auto rs = Run(
      "SELECT age / 10, count(*) FROM people WHERE age IS NOT NULL "
      "GROUP BY age / 10 ORDER BY 1");
  // ages 19,28,34,41 -> decades 1.9? no: age/10 is float division.
  // 1.9, 2.8, 3.4, 4.1 -> 4 groups.
  EXPECT_EQ(rs->NumRows(), 4u);
}

TEST_F(ExecutorEdgeTest, CaseInsideAggregate) {
  auto rs = Run(
      "SELECT sum(CASE WHEN city = 'berkeley' THEN 1 ELSE 0 END) FROM people");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 3);
}

TEST_F(ExecutorEdgeTest, AggregateOfExpression) {
  auto rs = Run("SELECT sum(age * 2) FROM people");
  EXPECT_EQ(rs->rows[0][0].int_value(), 244);
}

TEST_F(ExecutorEdgeTest, HavingWithoutThatAggInSelect) {
  auto rs = Run(
      "SELECT city FROM people GROUP BY city HAVING max(age) > 30 ORDER BY city");
  // berkeley max 41, oakland 28, seattle 19.
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "berkeley");
}

TEST_F(ExecutorEdgeTest, JoinOnExpressionKeys) {
  auto rs = Run(
      "SELECT count(*) FROM people p JOIN orders o ON p.id + 100 = o.order_id");
  // order_ids 100..104; p.id+100: 101..105 -> matches 101,102,103,104.
  EXPECT_EQ(rs->rows[0][0].int_value(), 4);
}

TEST_F(ExecutorEdgeTest, SegmentBoundarySpanningScan) {
  // Push well past one segment (default capacity 1024).
  std::string insert = "INSERT INTO people VALUES ";
  for (int i = 0; i < 2500; ++i) {
    if (i > 0) insert += ",";
    insert += "(" + std::to_string(1000 + i) + ",'bulk'," +
              std::to_string(20 + i % 50) + ",'metropolis')";
  }
  Run(insert);
  auto rs = Run("SELECT count(*), min(id), max(id) FROM people WHERE id >= 1000");
  EXPECT_EQ(rs->rows[0][0].int_value(), 2500);
  EXPECT_EQ(rs->rows[0][1].int_value(), 1000);
  EXPECT_EQ(rs->rows[0][2].int_value(), 3499);
}

TEST_F(ExecutorEdgeTest, WhereOnlyNullsTable) {
  Run("CREATE TABLE all_null (v BIGINT)");
  Run("INSERT INTO all_null VALUES (NULL), (NULL), (NULL)");
  EXPECT_EQ(Run("SELECT count(*) FROM all_null")->rows[0][0].int_value(), 3);
  EXPECT_EQ(Run("SELECT count(v) FROM all_null")->rows[0][0].int_value(), 0);
  EXPECT_TRUE(Run("SELECT sum(v) FROM all_null")->rows[0][0].is_null());
  EXPECT_TRUE(Run("SELECT min(v) FROM all_null")->rows[0][0].is_null());
  EXPECT_EQ(Run("SELECT count(*) FROM all_null WHERE v = 1")->rows[0][0].int_value(), 0);
}

TEST_F(ExecutorEdgeTest, EmptyTableBehaviors) {
  Run("CREATE TABLE void (x BIGINT, s VARCHAR)");
  EXPECT_EQ(Run("SELECT * FROM void")->NumRows(), 0u);
  EXPECT_EQ(Run("SELECT count(*) FROM void")->rows[0][0].int_value(), 0);
  EXPECT_EQ(Run("SELECT x FROM void ORDER BY x LIMIT 5")->NumRows(), 0u);
  EXPECT_EQ(Run("SELECT s, count(*) FROM void GROUP BY s")->NumRows(), 0u);
  EXPECT_EQ(Run("SELECT * FROM void CROSS JOIN people")->NumRows(), 0u);
  EXPECT_EQ(Run("SELECT name FROM people LEFT JOIN void ON people.id = void.x")
                ->NumRows(), 5u);
}

TEST_F(ExecutorEdgeTest, DistinctOnExpression) {
  auto rs = Run("SELECT DISTINCT length(city) FROM people ORDER BY 1");
  // berkeley=8, oakland=7, seattle=7 -> {7, 8}.
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 7);
  EXPECT_EQ(rs->rows[1][0].int_value(), 8);
}

TEST_F(ExecutorEdgeTest, OrderByExpressionOverOutput) {
  auto rs = Run("SELECT name, age * -1 AS neg FROM people WHERE age IS NOT NULL "
                "ORDER BY neg");
  ASSERT_EQ(rs->NumRows(), 4u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "carol");  // -41 first
}

TEST_F(ExecutorEdgeTest, LimitZero) {
  EXPECT_EQ(Run("SELECT * FROM people LIMIT 0")->NumRows(), 0u);
}

TEST_F(ExecutorEdgeTest, MultipleAggregatesSameColumn) {
  auto rs = Run(
      "SELECT min(age), max(age), avg(age), sum(age), count(age), "
      "count(DISTINCT age) FROM people");
  const Row& r = rs->rows[0];
  EXPECT_EQ(r[0].int_value(), 19);
  EXPECT_EQ(r[1].int_value(), 41);
  EXPECT_DOUBLE_EQ(r[2].double_value(), 30.5);
  EXPECT_EQ(r[3].int_value(), 122);
  EXPECT_EQ(r[4].int_value(), 4);
  EXPECT_EQ(r[5].int_value(), 4);
}

TEST_F(ExecutorEdgeTest, SumDistinct) {
  Run("INSERT INTO people VALUES (20,'twin',34,'berkeley')");  // duplicate 34
  EXPECT_EQ(Run("SELECT sum(age) FROM people")->rows[0][0].int_value(), 156);
  EXPECT_EQ(Run("SELECT sum(DISTINCT age) FROM people")->rows[0][0].int_value(), 122);
}

TEST_F(ExecutorEdgeTest, NestedDerivedTables) {
  auto rs = Run(
      "SELECT n FROM (SELECT n FROM (SELECT count(*) AS n FROM people) AS a) AS b");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 5);
}

TEST_F(ExecutorEdgeTest, JoinDerivedTableWithBase) {
  auto rs = Run(
      "SELECT p.name, agg.total FROM people p JOIN "
      "(SELECT person_id, sum(amount) AS total FROM orders GROUP BY person_id) "
      "AS agg ON p.id = agg.person_id ORDER BY agg.total DESC");
  ASSERT_EQ(rs->NumRows(), 3u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "carol");  // 99.0
  EXPECT_DOUBLE_EQ(rs->rows[1][1].double_value(), 32.5);  // alice 25+7.5
}

TEST_F(ExecutorEdgeTest, ComparisonAcrossIntAndDouble) {
  auto rs = Run("SELECT count(*) FROM orders WHERE amount = 12");
  EXPECT_EQ(rs->rows[0][0].int_value(), 1);
}

TEST_F(ExecutorEdgeTest, StringComparisons) {
  EXPECT_EQ(Run("SELECT count(*) FROM people WHERE name >= 'c'")
                ->rows[0][0].int_value(), 3);  // carol, dan, erin
  EXPECT_EQ(Run("SELECT count(*) FROM people WHERE name BETWEEN 'b' AND 'd'")
                ->rows[0][0].int_value(), 2);  // bob, carol
}

TEST_F(ExecutorEdgeTest, UpdateThenAggregateConsistency) {
  Run("UPDATE people SET age = age + 1 WHERE city = 'berkeley'");
  // alice 35, carol 42; erin NULL stays NULL (NULL + 1 = NULL).
  auto rs = Run("SELECT sum(age) FROM people");
  EXPECT_EQ(rs->rows[0][0].int_value(), 124);
  EXPECT_TRUE(Run("SELECT age FROM people WHERE name = 'erin'")->rows[0][0].is_null());
}

TEST_F(ExecutorEdgeTest, DeleteEverythingThenQuery) {
  Run("DELETE FROM orders");
  EXPECT_EQ(Run("SELECT count(*) FROM orders")->rows[0][0].int_value(), 0);
  EXPECT_EQ(Run("SELECT name FROM people JOIN orders ON people.id = orders.person_id")
                ->NumRows(), 0u);
}

TEST_F(ExecutorEdgeTest, DuplicateColumnNamesInProjection) {
  auto rs = Run("SELECT age, age FROM people WHERE id = 1");
  ASSERT_EQ(rs->schema.NumColumns(), 2u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 34);
  EXPECT_EQ(rs->rows[0][1].int_value(), 34);
}

TEST_F(ExecutorEdgeTest, WhereTrueAndWhereFalse) {
  EXPECT_EQ(Run("SELECT count(*) FROM people WHERE TRUE")->rows[0][0].int_value(), 5);
  EXPECT_EQ(Run("SELECT count(*) FROM people WHERE FALSE")->rows[0][0].int_value(), 0);
  EXPECT_EQ(Run("SELECT count(*) FROM people WHERE 1 = 1")->rows[0][0].int_value(), 5);
}

}  // namespace
}  // namespace agentfirst
