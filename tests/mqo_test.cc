#include "opt/mqo.h"

#include "gtest/gtest.h"
#include "opt/rules.h"
#include "plan/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::PeopleDbTest;

class MqoTest : public PeopleDbTest {
 protected:
  PlanPtr Bind(const std::string& sql) {
    auto select = ParseSelect(sql);
    EXPECT_TRUE(select.ok());
    Binder binder(&catalog_);
    auto plan = binder.BindSelect(**select);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? OptimizePlan(*plan) : nullptr;
  }
};

TEST_F(MqoTest, BatchSharesIdenticalPlans) {
  BatchExecutor batch;
  std::vector<PlanPtr> plans;
  for (int i = 0; i < 10; ++i) {
    plans.push_back(Bind("SELECT count(*) FROM people WHERE age > 20"));
  }
  auto results = batch.ExecuteBatch(plans);
  ASSERT_EQ(results.size(), 10u);
  for (auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->rows[0][0].int_value(), 3);
  }
  SharingStats stats = batch.stats();
  EXPECT_GT(stats.cache_hits, 0u);
  // 10 identical plans: distinct operators are ~1/10 of total.
  EXPECT_GT(stats.SharingRatio(), 0.8);
}

TEST_F(MqoTest, PartialOverlapSharesSubplans) {
  BatchExecutor batch;
  std::vector<PlanPtr> plans = {
      Bind("SELECT count(*) FROM people WHERE age > 20"),
      Bind("SELECT max(age) FROM people WHERE age > 20"),  // same filtered scan
  };
  auto results = batch.ExecuteBatch(plans);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  SharingStats stats = batch.stats();
  EXPECT_GT(stats.SharingRatio(), 0.0);
  EXPECT_LT(stats.SharingRatio(), 1.0);
}

TEST_F(MqoTest, DisjointPlansShareNothing) {
  BatchExecutor batch;
  std::vector<PlanPtr> plans = {
      Bind("SELECT count(*) FROM people"),
      Bind("SELECT count(*) FROM orders"),
  };
  (void)batch.ExecuteBatch(plans);
  EXPECT_DOUBLE_EQ(batch.stats().SharingRatio(), 0.0);
}

TEST_F(MqoTest, SecondBatchReusesCacheAcrossCalls) {
  BatchExecutor batch;
  auto p = Bind("SELECT count(*) FROM people");
  (void)batch.ExecuteBatch({p});
  uint64_t misses_before = batch.stats().cache_misses;
  auto results = batch.ExecuteBatch({Bind("SELECT count(*) FROM people")});
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(batch.stats().cache_misses, misses_before);  // all hits
}

TEST_F(MqoTest, WritesInvalidateViaFingerprint) {
  BatchExecutor batch;
  auto r1 = batch.ExecuteBatch({Bind("SELECT count(*) FROM people")});
  ASSERT_TRUE(r1[0].ok());
  Run("INSERT INTO people VALUES (42,'zed',33,'austin')");
  auto r2 = batch.ExecuteBatch({Bind("SELECT count(*) FROM people")});
  ASSERT_TRUE(r2[0].ok());
  EXPECT_EQ((*r2[0])->rows[0][0].int_value(),
            (*r1[0])->rows[0][0].int_value() + 1);
}

TEST_F(MqoTest, NullPlanReportsErrorWithoutFailingBatch) {
  BatchExecutor batch;
  std::vector<PlanPtr> plans = {nullptr, Bind("SELECT count(*) FROM people")};
  auto results = batch.ExecuteBatch(plans);
  EXPECT_FALSE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
}

TEST_F(MqoTest, ParallelBatchMatchesSerial) {
  std::vector<std::string> sqls = {
      "SELECT count(*) FROM people WHERE age > 20",
      "SELECT max(age) FROM people",
      "SELECT name FROM people WHERE city = 'berkeley' ORDER BY name",
      "SELECT city, count(*) FROM people GROUP BY city",
      "SELECT count(*) FROM orders WHERE amount > 10",
      "SELECT name, amount FROM people JOIN orders ON people.id = orders.person_id",
  };
  std::vector<PlanPtr> plans;
  for (const auto& sql : sqls) plans.push_back(Bind(sql));

  BatchExecutor serial;
  auto expected = serial.ExecuteBatch(plans);
  BatchExecutor parallel;
  auto actual = parallel.ExecuteBatchParallel(plans, 4);

  auto serialize = [](const ResultSet& rs) {
    std::vector<std::string> rows;
    for (const Row& r : rs.rows) {
      std::string s;
      for (const Value& v : r) s += v.ToString() + "|";
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i].ok());
    ASSERT_TRUE(actual[i].ok()) << sqls[i] << ": " << actual[i].status().ToString();
    EXPECT_EQ(serialize(**expected[i]), serialize(**actual[i])) << sqls[i];
  }
}

TEST_F(MqoTest, ParallelIdenticalPlansShareCacheSafely) {
  std::vector<PlanPtr> plans;
  for (int i = 0; i < 64; ++i) {
    plans.push_back(Bind("SELECT count(*) FROM people WHERE age > 20"));
  }
  BatchExecutor batch;
  auto results = batch.ExecuteBatchParallel(plans, 8);
  ASSERT_EQ(results.size(), 64u);
  for (auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->rows[0][0].int_value(), 3);
  }
}

TEST_F(MqoTest, ParallelHandlesNullPlans) {
  std::vector<PlanPtr> plans = {Bind("SELECT count(*) FROM people"), nullptr,
                                Bind("SELECT count(*) FROM orders")};
  BatchExecutor batch;
  auto results = batch.ExecuteBatchParallel(plans, 3);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST_F(MqoTest, ParallelSingleThreadFallsBackToSerial) {
  std::vector<PlanPtr> plans = {Bind("SELECT count(*) FROM people")};
  BatchExecutor batch;
  auto results = batch.ExecuteBatchParallel(plans, 1);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ((*results[0])->rows[0][0].int_value(), 5);
}

TEST_F(MqoTest, InvalidateCacheForcesRecompute) {
  BatchExecutor batch;
  (void)batch.ExecuteBatch({Bind("SELECT count(*) FROM people")});
  batch.InvalidateCache();
  EXPECT_EQ(batch.cache()->size(), 0u);
}

}  // namespace
}  // namespace agentfirst
