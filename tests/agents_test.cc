#include "agents/sim_agent.h"

#include "agents/attempts.h"
#include "agents/ensemble.h"
#include "gtest/gtest.h"
#include "plan/binder.h"
#include "sql/parser.h"

namespace agentfirst {
namespace {

MiniBirdOptions TinyOptions() {
  MiniBirdOptions options;
  options.num_databases = 3;
  options.rows_per_fact_table = 300;
  options.rows_per_dim_table = 16;
  options.seed = 11;
  return options;
}

class AgentsTest : public ::testing::Test {
 protected:
  void SetUp() override { suite_ = GenerateMiniBird(TinyOptions()); }
  std::vector<MiniBirdDatabase> suite_;
};

TEST_F(AgentsTest, EpisodeIsDeterministic) {
  const TaskSpec& task = suite_[0].tasks[0];
  EpisodeOptions options;
  options.seed = 5;
  EpisodeResult a = RunEpisode(suite_[0].system.get(), task,
                               StrongAgentProfile(), options);
  EpisodeResult b = RunEpisode(suite_[0].system.get(), task,
                               StrongAgentProfile(), options);
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.turns_used, b.turns_used);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].activity, b.trace[i].activity);
  }
}

TEST_F(AgentsTest, SolvedEpisodeAnswerMatchesGold) {
  // Find any solved episode across tasks/seeds; its answer must equal gold.
  for (auto& db : suite_) {
    for (const TaskSpec& task : db.tasks) {
      for (uint64_t seed = 1; seed <= 4; ++seed) {
        EpisodeOptions options;
        options.seed = seed;
        EpisodeResult r = RunEpisode(db.system.get(), task,
                                     StrongAgentProfile(), options);
        if (r.solved) {
          ASSERT_NE(r.final_answer, nullptr);
          EXPECT_TRUE(ResultsEquivalent(*r.final_answer, *task.gold_answer));
          EXPECT_GT(r.solved_at_turn, 0);
          return;
        }
      }
    }
  }
  FAIL() << "no episode solved any task; agent model is miscalibrated";
}

TEST_F(AgentsTest, TraceFollowsPhaseOrderPerRequirement) {
  // The first full-query attempt can only come after the grounding phases
  // for tasks that require discovery.
  const TaskSpec& task = suite_[0].tasks[0];  // retail revenue task (tricky)
  EpisodeOptions options;
  options.seed = 3;
  options.use_steering = false;
  EpisodeResult r = RunEpisode(suite_[0].system.get(), task,
                               StrongAgentProfile(), options);
  bool seen_full = false;
  for (const TraceEvent& e : r.trace) {
    if (e.activity == ActivityKind::kFullQuery) seen_full = true;
    if (!seen_full && e.activity == ActivityKind::kExploreTables) {
      // exploration precedes formulation: ok.
    }
  }
  // The first event must be exploration (no hints given).
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.front().activity, ActivityKind::kExploreTables);
}

TEST_F(AgentsTest, HintsReduceActivityCounts) {
  double steps_without = 0;
  double steps_with = 0;
  int episodes = 0;
  for (auto& db : suite_) {
    for (const TaskSpec& task : db.tasks) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        EpisodeOptions base;
        base.seed = seed;
        base.hint_strength = 0.9;
        base.with_hints = false;
        EpisodeResult no_hints = RunEpisode(db.system.get(), task,
                                            StrongAgentProfile(), base);
        base.with_hints = true;
        EpisodeResult hints = RunEpisode(db.system.get(), task,
                                         StrongAgentProfile(), base);
        steps_without += static_cast<double>(no_hints.trace.size());
        steps_with += static_cast<double>(hints.trace.size());
        ++episodes;
      }
    }
  }
  ASSERT_GT(episodes, 0);
  // Hints should cut average trace length noticeably (paper: -18% overall).
  EXPECT_LT(steps_with, steps_without * 0.95);
}

TEST_F(AgentsTest, SteeringHelpsOnEncodingTasks) {
  // On tasks with tricky encodings, enabling the steering side channel
  // should solve at least as fast on average.
  double turns_with = 0;
  double turns_without = 0;
  int n = 0;
  for (auto& db : suite_) {
    for (const TaskSpec& task : db.tasks) {
      if (task.encoded_column.empty()) continue;
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        EpisodeOptions options;
        options.seed = seed;
        options.use_steering = true;
        turns_with += RunEpisode(db.system.get(), task, StrongAgentProfile(),
                                 options).turns_used;
        options.use_steering = false;
        turns_without += RunEpisode(db.system.get(), task, StrongAgentProfile(),
                                    options).turns_used;
        ++n;
      }
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_LE(turns_with, turns_without);
}

TEST_F(AgentsTest, StrongBeatsWeakOnAverage) {
  int strong_solved = 0;
  int weak_solved = 0;
  for (auto& db : suite_) {
    for (const TaskSpec& task : db.tasks) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        EpisodeOptions options;
        options.seed = seed;
        if (RunEpisode(db.system.get(), task, StrongAgentProfile(), options).solved) {
          ++strong_solved;
        }
        if (RunEpisode(db.system.get(), task, WeakAgentProfile(), options).solved) {
          ++weak_solved;
        }
      }
    }
  }
  EXPECT_GT(strong_solved, weak_solved);
}

TEST_F(AgentsTest, EnsembleSuccessMonotonicInK) {
  EpisodeOptions options;
  options.seed = 21;
  std::vector<size_t> ks = {1, 4, 16};
  auto rates = SuccessAtK(&suite_, StrongAgentProfile(), ks, options);
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_GE(rates[1], rates[0] - 0.1);  // allow small noise
  EXPECT_GE(rates[2], rates[0]);        // k=16 must beat k=1
  EXPECT_GT(rates[2], 0.0);
}

TEST_F(AgentsTest, SuccessByTurnIsNonDecreasing) {
  EpisodeOptions options;
  options.seed = 31;
  auto curve = SuccessByTurn(&suite_, StrongAgentProfile(), options, 2);
  ASSERT_FALSE(curve.empty());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  EXPECT_GT(curve.back(), curve.front());
}

// ---------------------------------------------------------------------------
// Attempt generation / mutation
// ---------------------------------------------------------------------------

TEST_F(AgentsTest, MutatedSqlAlwaysParses) {
  for (auto& db : suite_) {
    for (const TaskSpec& task : db.tasks) {
      for (uint64_t seed = 0; seed < 20; ++seed) {
        std::string mutated = MutateSql(task.gold_sql, Rng(seed));
        auto parsed = ParseSelect(mutated);
        EXPECT_TRUE(parsed.ok()) << mutated;
      }
    }
  }
}

TEST_F(AgentsTest, MutatedSqlUsuallyDiffers) {
  const TaskSpec& task = suite_[0].tasks[0];
  int different = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    if (MutateSql(task.gold_sql, Rng(seed)) !=
        ParseSelect(task.gold_sql).value()->ToString()) {
      ++different;
    }
  }
  EXPECT_GT(different, 15);
}

TEST_F(AgentsTest, GenerateAttemptsMixesGoldAndMutations) {
  const TaskSpec& task = suite_[0].tasks[0];
  auto attempts = GenerateAttempts(task, 50, /*skill=*/0.5, /*seed=*/3);
  ASSERT_EQ(attempts.size(), 50u);
  int gold = 0;
  for (const auto& sql : attempts) {
    if (sql == task.gold_sql) ++gold;
  }
  EXPECT_GT(gold, 10);
  EXPECT_LT(gold, 40);
}

TEST_F(AgentsTest, AttemptsBindAgainstTheirDatabase) {
  // Mutations must stay bindable (same tables/columns).
  auto& db = suite_[0];
  const TaskSpec& task = db.tasks[0];
  auto attempts = GenerateAttempts(task, 30, 0.5, 5);
  Binder binder(db.system->catalog());
  int bound = 0;
  for (const auto& sql : attempts) {
    auto parsed = ParseSelect(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    if (binder.BindSelect(**parsed).ok()) ++bound;
  }
  EXPECT_EQ(bound, 30);
}

TEST(ActivityTest, Names) {
  EXPECT_STREQ(ActivityName(ActivityKind::kExploreTables), "exploring tables");
  EXPECT_STREQ(ActivityName(ActivityKind::kFullQuery), "attempting entire query");
}

}  // namespace
}  // namespace agentfirst
