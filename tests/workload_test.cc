#include "workload/minibird.h"

#include "gtest/gtest.h"

namespace agentfirst {
namespace {

MiniBirdOptions SmallOptions() {
  MiniBirdOptions options;
  options.num_databases = 3;  // one of each domain
  options.rows_per_fact_table = 400;
  options.rows_per_dim_table = 16;
  options.seed = 7;
  return options;
}

TEST(MiniBirdTest, GeneratesAllDomains) {
  auto suite = GenerateMiniBird(SmallOptions());
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].domain, "retail");
  EXPECT_EQ(suite[1].domain, "web");
  EXPECT_EQ(suite[2].domain, "flights");
}

TEST(MiniBirdTest, FiveDomainsCycle) {
  MiniBirdOptions options = SmallOptions();
  options.num_databases = 5;
  auto suite = GenerateMiniBird(options);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[3].domain, "healthcare");
  EXPECT_EQ(suite[4].domain, "finance");
  // Every domain's tasks carry executable gold.
  for (const auto& db : suite) {
    for (const TaskSpec& task : db.tasks) {
      ASSERT_NE(task.gold_answer, nullptr) << task.id;
    }
  }
}

TEST(MiniBirdTest, TablesPopulated) {
  auto suite = GenerateMiniBird(SmallOptions());
  for (const auto& db : suite) {
    auto tables = db.system->catalog()->ListTables();
    EXPECT_GE(tables.size(), 2u) << db.name;
    for (const std::string& t : tables) {
      auto table = db.system->catalog()->GetTable(t);
      ASSERT_TRUE(table.ok());
      EXPECT_GT((*table)->NumRows(), 0u) << db.name << "." << t;
    }
  }
}

TEST(MiniBirdTest, EveryTaskHasExecutableGold) {
  auto suite = GenerateMiniBird(SmallOptions());
  for (const auto& db : suite) {
    EXPECT_FALSE(db.tasks.empty());
    for (const TaskSpec& task : db.tasks) {
      ASSERT_NE(task.gold_answer, nullptr) << task.id;
      // Re-running the gold query reproduces the gold answer.
      auto again = db.system->ExecuteSql(task.gold_sql);
      ASSERT_TRUE(again.ok()) << task.id;
      EXPECT_TRUE(ResultsEquivalent(*task.gold_answer, **again)) << task.id;
    }
  }
}

TEST(MiniBirdTest, TaskMetadataConsistent) {
  auto suite = GenerateMiniBird(SmallOptions());
  for (const auto& db : suite) {
    for (const TaskSpec& task : db.tasks) {
      for (const std::string& t : task.relevant_tables) {
        EXPECT_TRUE(db.system->catalog()->HasTable(t)) << task.id << " " << t;
      }
      for (const std::string& c : task.relevant_columns) {
        auto dot = c.find('.');
        ASSERT_NE(dot, std::string::npos) << c;
        auto table = db.system->catalog()->GetTable(c.substr(0, dot));
        ASSERT_TRUE(table.ok()) << task.id << " " << c;
        EXPECT_TRUE((*table)->schema().FindColumn(c.substr(dot + 1)).has_value())
            << task.id << " " << c;
      }
      if (!task.encoded_column.empty()) {
        EXPECT_FALSE(task.question_value.empty());
        EXPECT_FALSE(task.stored_value.empty());
        EXPECT_NE(task.question_value, task.stored_value);
      }
    }
  }
}

TEST(MiniBirdTest, DeterministicAcrossRuns) {
  auto a = GenerateMiniBird(SmallOptions());
  auto b = GenerateMiniBird(SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].tasks.size(), b[i].tasks.size());
    for (size_t t = 0; t < a[i].tasks.size(); ++t) {
      EXPECT_EQ(a[i].tasks[t].gold_sql, b[i].tasks[t].gold_sql);
      EXPECT_TRUE(ResultsEquivalent(*a[i].tasks[t].gold_answer,
                                    *b[i].tasks[t].gold_answer));
    }
  }
}

TEST(MiniBirdTest, DifferentSeedsVary) {
  auto a = GenerateMiniBird(SmallOptions());
  MiniBirdOptions other = SmallOptions();
  other.seed = 8888;
  auto b = GenerateMiniBird(other);
  bool any_difference = false;
  for (size_t i = 0; i < a.size() && !any_difference; ++i) {
    for (size_t t = 0; t < a[i].tasks.size(); ++t) {
      if (a[i].tasks[t].gold_sql != b[i].tasks[t].gold_sql) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ResultsEquivalentTest, OrderInsensitive) {
  ResultSet a;
  a.schema = Schema({ColumnDef("x", DataType::kInt64)});
  a.rows = {{Value::Int(1)}, {Value::Int(2)}};
  ResultSet b;
  b.schema = a.schema;
  b.rows = {{Value::Int(2)}, {Value::Int(1)}};
  EXPECT_TRUE(ResultsEquivalent(a, b));
}

TEST(ResultsEquivalentTest, DetectsDifferences) {
  ResultSet a;
  a.schema = Schema({ColumnDef("x", DataType::kInt64)});
  a.rows = {{Value::Int(1)}};
  ResultSet b;
  b.schema = a.schema;
  b.rows = {{Value::Int(2)}};
  EXPECT_FALSE(ResultsEquivalent(a, b));
  ResultSet c;
  c.schema = a.schema;
  c.rows = {{Value::Int(1)}, {Value::Int(1)}};
  EXPECT_FALSE(ResultsEquivalent(a, c));
}

TEST(ResultsEquivalentTest, FloatTolerance) {
  ResultSet a;
  a.schema = Schema({ColumnDef("x", DataType::kFloat64)});
  a.rows = {{Value::Double(1.0 / 3.0)}};
  ResultSet b;
  b.schema = a.schema;
  b.rows = {{Value::Double((1.0 / 3.0) * (1.0 + 1e-14))}};
  EXPECT_TRUE(ResultsEquivalent(a, b));
}

}  // namespace
}  // namespace agentfirst
