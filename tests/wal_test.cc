// Durability subsystem tests (src/wal/): framing fuzz torture, group-commit
// concurrency, checkpoint/recovery round trips, branch restore-or-report,
// and the kill-and-recover crash torture the PR's acceptance criterion
// demands: for every seeded crash site (> 50 distinct injection points
// across append, group commit, checkpoint write, rename, and replay),
// restart + recovery must yield a catalog and memory store byte-identical
// to a committed prefix of a reference run — no torn state, no silent loss.
//
// Mirrors tests/fuzz_wire_test.cc's discipline: all randomness is seeded,
// hostile bytes must come back as Status (never UB), and the whole file is
// expected to pass under ASan/TSan/UBSan (tools/run_sanitized.sh).

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/system.h"
#include "gtest/gtest.h"
#include "io/file_util.h"
#include "wal/checkpoint.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace agentfirst {
namespace wal {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/wal_test_" + name;
  (void)io::RemoveFile(WalPath(dir));
  (void)io::RemoveFile(CheckpointPath(dir));
  (void)io::RemoveFile(CheckpointPath(dir) + ".tmp");
  EXPECT_TRUE(io::CreateDirectories(dir).ok());
  return dir;
}

void CopyFileIfExists(const std::string& from, const std::string& to) {
  auto bytes = io::ReadFileToString(from);
  if (!bytes.ok()) return;
  auto f = io::File::OpenForWrite(to);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->WriteAll(*bytes).ok());
  ASSERT_TRUE(f->Close().ok());
}

/// Snapshots data_dir into a second directory — the moral equivalent of the
/// machine dying at this instant and the disk being re-mounted elsewhere.
void SnapshotDataDir(const std::string& data_dir, const std::string& into) {
  ASSERT_TRUE(io::CreateDirectories(into).ok());
  (void)io::RemoveFile(WalPath(into));
  (void)io::RemoveFile(CheckpointPath(into));
  CopyFileIfExists(WalPath(data_dir), WalPath(into));
  CopyFileIfExists(CheckpointPath(data_dir), CheckpointPath(into));
}

std::string Canonical(AgentFirstSystem* sys) {
  auto state = EncodeCanonicalState(*sys->catalog(), sys->memory());
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  return state.ok() ? *state : std::string();
}

// ---------------------------------------------------------------------------
// The scripted episode. Deterministic: same ops, same order, every run.
// ---------------------------------------------------------------------------

/// One step = one mutation batch through a public API. The episode covers
/// every WAL record type: DDL, batched inserts, updates, deletes, index
/// create/drop, memory puts/evictions, and branch import/fork/rollback.
/// Returns at the first failed step (the injected crash); `acked` counts
/// steps that returned OK and were therefore durability-acknowledged, and
/// `acked_digest` (when set) tracks the canonical state as of the last
/// acknowledged step — the exact boundary the durability contract promises
/// to preserve. A step that fails may still have mutated in-memory state;
/// those mutations were never acknowledged and recovery owes them nothing.
Status RunEpisode(AgentFirstSystem* sys, bool with_checkpoints, size_t* acked,
                  std::string* acked_digest = nullptr) {
  auto sql = [&](const std::string& statement) -> Status {
    auto result = sys->ExecuteSql(statement);
    return result.ok() ? Status::OK() : result.status();
  };
  auto step = [&](Status s) -> Status {
    if (s.ok()) {
      if (acked != nullptr) ++(*acked);
      if (acked_digest != nullptr) *acked_digest = Canonical(sys);
    }
    return s;
  };
  AF_RETURN_IF_ERROR(step(sql(
      "CREATE TABLE sales (id BIGINT, region VARCHAR, amount DOUBLE)")));
  AF_RETURN_IF_ERROR(step(sql(
      "INSERT INTO sales VALUES (1,'west',10.5),(2,'east',20.0),(3,'west',7.25)")));
  AF_RETURN_IF_ERROR(step(sql(
      "CREATE TABLE agents (agent_id BIGINT, name VARCHAR)")));
  AF_RETURN_IF_ERROR(step(sql(
      "INSERT INTO agents VALUES (1,'scout'),(2,'verifier')")));
  AF_RETURN_IF_ERROR(step(sql("CREATE INDEX ON sales (region)")));
  // Memory artifacts: puts and a same-key supersede (logs put + remove).
  {
    MemoryArtifact a;
    a.kind = ArtifactKind::kColumnEncoding;
    a.key = "table:sales/col:region";
    a.content = "regions are lowercase cardinal names";
    a.table_deps = {"sales"};
    (void)sys->memory()->Put(std::move(a));
    MemoryArtifact b;
    b.kind = ArtifactKind::kStatSummary;
    b.key = "table:sales/stats";
    b.content = "3 rows, 2 regions";
    b.table_deps = {"sales"};
    (void)sys->memory()->Put(std::move(b));
    MemoryArtifact c;
    c.kind = ArtifactKind::kColumnEncoding;
    c.key = "table:sales/col:region";
    c.content = "revised: regions may also be 'north'";
    c.table_deps = {"sales"};
    (void)sys->memory()->Put(std::move(c));
    AF_RETURN_IF_ERROR(step(sys->DurabilityBarrier()));
  }
  AF_RETURN_IF_ERROR(step(sql("UPDATE sales SET amount = 11.0 WHERE id = 1")));
  if (with_checkpoints) AF_RETURN_IF_ERROR(step(sys->CheckpointNow()));
  AF_RETURN_IF_ERROR(step(sql(
      "INSERT INTO sales VALUES (4,'north',3.5),(5,'east',8.75)")));
  AF_RETURN_IF_ERROR(step(sql("DELETE FROM sales WHERE region = 'east'")));
  AF_RETURN_IF_ERROR(step(sql("UPDATE agents SET name = 'planner' WHERE agent_id = 2")));
  AF_RETURN_IF_ERROR(step(sql("DROP INDEX ON sales (region)")));
  AF_RETURN_IF_ERROR(step(sql("CREATE INDEX ON agents (agent_id)")));
  AF_RETURN_IF_ERROR(step(sql(
      "CREATE TABLE scratch (k BIGINT, v VARCHAR)")));
  AF_RETURN_IF_ERROR(step(sql("INSERT INTO scratch VALUES (1,'a'),(2,'b')")));
  AF_RETURN_IF_ERROR(step(sql("DROP TABLE scratch")));
  if (with_checkpoints) AF_RETURN_IF_ERROR(step(sys->CheckpointNow()));
  AF_RETURN_IF_ERROR(step(sql(
      "INSERT INTO sales VALUES (6,'south',99.0),(7,'west',1.0)")));
  AF_RETURN_IF_ERROR(step(sql("UPDATE sales SET amount = 2.0 WHERE id = 7")));
  return Status::OK();
}

/// Builds the committed-prefix digest chain of the reference run: recover
/// every record-prefix of the reference WAL (plus checkpoint, if any) into a
/// fresh system and canonicalize it. out[j] == state after j replayable
/// records; the full chain is what "a committed prefix of the reference run"
/// means, byte for byte. (gtest ASSERT_* macros need a void return, hence
/// the out-parameter + MakeReferenceDigests wrapper.)
void BuildReferencePrefixDigests(const std::string& ref_dir,
                                 const std::string& scratch_dir,
                                 std::vector<std::string>* out) {
  auto wal_bytes = io::ReadFileToString(WalPath(ref_dir));
  ASSERT_TRUE(wal_bytes.ok());
  WalReadStats stats;
  auto records = ReadWalImage(*wal_bytes, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(stats.torn_bytes, 0u);
  for (size_t k = 0; k <= records->size(); ++k) {
    uint64_t cut = (k == records->size()) ? stats.valid_bytes
                                          : (*records)[k].file_offset;
    ASSERT_TRUE(io::CreateDirectories(scratch_dir).ok());
    (void)io::RemoveFile(CheckpointPath(scratch_dir));
    CopyFileIfExists(CheckpointPath(ref_dir), CheckpointPath(scratch_dir));
    auto f = io::File::OpenForWrite(WalPath(scratch_dir));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->WriteAll(wal_bytes->substr(0, cut)).ok());
    ASSERT_TRUE(f->Close().ok());
    AgentFirstSystem sys;
    auto report = Recover(scratch_dir, sys.catalog(), sys.memory(),
                          sys.branches());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    out->push_back(Canonical(&sys));
  }
}

std::vector<std::string> MakeReferenceDigests(const std::string& ref_dir,
                                              const std::string& scratch_dir) {
  std::vector<std::string> digests;
  BuildReferencePrefixDigests(ref_dir, scratch_dir, &digests);
  return digests;
}

// ---------------------------------------------------------------------------
// Framing torture (fuzz_wire_test discipline applied to durable bytes).
// ---------------------------------------------------------------------------

std::string BuildWalImage(size_t nrecords) {
  std::string dir = TempDir("image");
  DurabilityOptions options;
  options.fsync = FsyncPolicy::kAlways;
  auto writer = WalWriter::Open(WalPath(dir), options, 1);
  EXPECT_TRUE(writer.ok());
  for (size_t i = 0; i < nrecords; ++i) {
    ByteWriter body;
    body.Str("table_" + std::to_string(i % 3));
    body.U64(i);
    auto lsn = (*writer)->Append(
        static_cast<WalRecordType>(1 + (i % 14)), body.buffer());
    EXPECT_TRUE(lsn.ok());
  }
  EXPECT_TRUE((*writer)->Close().ok());
  auto bytes = io::ReadFileToString(WalPath(dir));
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(WalFraming, RoundTripAndLsnAssignment) {
  std::string image = BuildWalImage(20);
  WalReadStats stats;
  auto records = ReadWalImage(image, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 20u);
  EXPECT_EQ(stats.torn_bytes, 0u);
  EXPECT_EQ(stats.valid_bytes, image.size());
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].lsn, i + 1);
    EXPECT_EQ(static_cast<int>((*records)[i].type), static_cast<int>(1 + (i % 14)));
  }
}

TEST(WalFraming, EveryStrictPrefixIsACleanPrefix) {
  std::string image = BuildWalImage(12);
  WalReadStats full_stats;
  auto full = ReadWalImage(image, &full_stats);
  ASSERT_TRUE(full.ok());
  for (size_t cut = 0; cut < image.size(); ++cut) {
    std::string prefix = image.substr(0, cut);
    WalReadStats stats;
    auto records = ReadWalImage(prefix, &stats);
    if (cut < kWalHeaderSize) {
      EXPECT_FALSE(records.ok());
      continue;
    }
    ASSERT_TRUE(records.ok()) << "cut=" << cut;
    ASSERT_LE(records->size(), full->size());
    for (size_t i = 0; i < records->size(); ++i) {
      EXPECT_EQ((*records)[i].lsn, (*full)[i].lsn);
      EXPECT_EQ((*records)[i].body, (*full)[i].body);
    }
    EXPECT_EQ(stats.valid_bytes + stats.torn_bytes, prefix.size());
  }
}

TEST(WalFraming, SeededByteFlipsNeverCrashAndNeverForgeRecords) {
  std::string image = BuildWalImage(10);
  WalReadStats full_stats;
  auto full = ReadWalImage(image, &full_stats);
  ASSERT_TRUE(full.ok());
  Rng rng(20260807);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = image;
    size_t pos = rng.NextUint(mutated.size());
    uint8_t flip = static_cast<uint8_t>(1 + rng.NextUint(255));
    mutated[pos] = static_cast<char>(static_cast<uint8_t>(mutated[pos]) ^ flip);
    WalReadStats stats;
    auto records = ReadWalImage(mutated, &stats);
    if (!records.ok()) continue;  // header flip: clean error
    // Every surviving record must be one of the original records, verbatim:
    // a flip may shorten the readable prefix but never invent history.
    ASSERT_LE(records->size(), full->size());
    for (size_t i = 0; i < records->size(); ++i) {
      EXPECT_EQ((*records)[i].lsn, (*full)[i].lsn);
      EXPECT_EQ((*records)[i].body, (*full)[i].body)
          << "trial " << trial << " forged record " << i;
    }
  }
}

TEST(WalFraming, RandomGarbageIsSurvivable) {
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    size_t len = rng.NextUint(400);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextUint(256)));
    }
    WalReadStats stats;
    auto records = ReadWalImage(garbage, &stats);  // error or short prefix
    if (records.ok()) {
      EXPECT_LE(stats.valid_bytes, garbage.size());
    }
  }
}

TEST(CheckpointFraming, FlipAndTruncateTortureNeverCrashes) {
  AgentFirstSystem sys;
  ASSERT_TRUE(sys.ExecuteSql("CREATE TABLE t (a BIGINT, b VARCHAR)").ok());
  ASSERT_TRUE(sys.ExecuteSql("INSERT INTO t VALUES (1,'x'),(2,'y')").ok());
  std::string dir = TempDir("ckpt_torture");
  BranchMeta meta;
  ASSERT_TRUE(WriteCheckpoint(CheckpointPath(dir), *sys.catalog(),
                              sys.memory(), meta, 7)
                  .ok());
  auto image = io::ReadFileToString(CheckpointPath(dir));
  ASSERT_TRUE(image.ok());
  auto decoded = DecodeCheckpoint(*image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->lsn, 7u);
  ASSERT_EQ(decoded->tables.size(), 1u);
  EXPECT_EQ(decoded->tables[0].rows.size(), 2u);

  // A checkpoint is all-or-nothing: every strict prefix must be rejected.
  for (size_t cut = 0; cut < image->size(); ++cut) {
    EXPECT_FALSE(DecodeCheckpoint(image->substr(0, cut)).ok()) << cut;
  }
  Rng rng(31337);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = *image;
    size_t pos = rng.NextUint(mutated.size());
    mutated[pos] = static_cast<char>(
        static_cast<uint8_t>(mutated[pos]) ^ (1 + rng.NextUint(255)));
    auto result = DecodeCheckpoint(mutated);  // must not crash; usually error
    (void)result;
  }
}

TEST(ArtifactSerde, RoundTripAndTruncationRejection) {
  MemoryArtifact a;
  a.id = 42;
  a.kind = ArtifactKind::kStatSummary;
  a.key = "table:sales/stats";
  a.content = "v=1 rows=3";
  a.table_deps = {"sales", "agents"};
  a.schema_version = 9;
  a.table_versions = {{"sales", 5}, {"agents", 2}};
  a.owner = "agent-7";
  a.created_tick = 11;
  a.last_used_tick = 13;
  ByteWriter w;
  AppendArtifact(a, &w);
  std::string bytes = w.Take();
  ByteReader r(bytes);
  MemoryArtifact back;
  ASSERT_TRUE(ReadArtifact(&r, &back).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(back.id, a.id);
  EXPECT_EQ(back.key, a.key);
  EXPECT_EQ(back.content, a.content);
  EXPECT_EQ(back.table_deps, a.table_deps);
  EXPECT_EQ(back.table_versions, a.table_versions);
  EXPECT_EQ(back.owner, a.owner);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader rr(std::string_view(bytes).substr(0, cut));
    MemoryArtifact out;
    EXPECT_FALSE(ReadArtifact(&rr, &out).ok() && rr.ExpectEnd().ok()) << cut;
  }
}

// ---------------------------------------------------------------------------
// Group commit: concurrency + durability semantics.
// ---------------------------------------------------------------------------

class WalGroupCommitTest : public ::testing::TestWithParam<int> {};

TEST_P(WalGroupCommitTest, ConcurrentWritersAllDurableNoTearing) {
  const int nthreads = GetParam();
  const int per_thread = 200;
  std::string dir = TempDir("group_" + std::to_string(nthreads));
  DurabilityOptions options;
  options.fsync = FsyncPolicy::kGroupCommit;
  options.group_window_us = 50;
  auto writer = WalWriter::Open(WalPath(dir), options, 1);
  ASSERT_TRUE(writer.ok());
  // Dedicated OS threads, deliberately: each writer blocks in WaitDurable,
  // and the point is nthreads truly concurrent appenders regardless of the
  // shared pool's size. aflint:allow(raw-thread)
  std::vector<std::thread> threads;
  std::vector<Status> results(static_cast<size_t>(nthreads), Status::OK());
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < per_thread; ++i) {
        ByteWriter body;
        body.U64(static_cast<uint64_t>(t));
        body.U64(static_cast<uint64_t>(i));
        auto lsn = (*writer)->Append(WalRecordType::kMemoryRemove, body.buffer());
        if (!lsn.ok()) {
          results[static_cast<size_t>(t)] = lsn.status();
          return;
        }
        Status durable = (*writer)->WaitDurable(*lsn);
        if (!durable.ok()) {
          results[static_cast<size_t>(t)] = durable;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const Status& s : results) EXPECT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE((*writer)->Close().ok());

  auto bytes = io::ReadFileToString(WalPath(dir));
  ASSERT_TRUE(bytes.ok());
  WalReadStats stats;
  auto records = ReadWalImage(*bytes, &stats);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(stats.torn_bytes, 0u);
  ASSERT_EQ(records->size(), static_cast<size_t>(nthreads) * per_thread);
  // LSNs are dense, unique, and file order == LSN order (one log, one order).
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].lsn, i + 1);
  }
  // Every (thread, seq) pair landed exactly once, in per-thread order.
  std::map<uint64_t, uint64_t> next_seq;
  for (const WalRecord& rec : *records) {
    ByteReader r(rec.body);
    uint64_t t = 0;
    uint64_t i = 0;
    ASSERT_TRUE(r.U64(&t).ok());
    ASSERT_TRUE(r.U64(&i).ok());
    EXPECT_EQ(i, next_seq[t]++);
  }
}

INSTANTIATE_TEST_SUITE_P(Writers, WalGroupCommitTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(WalGroupCommit, FsyncPolicyNamesAreStable) {
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kAlways), "always");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kGroupCommit), "group_commit");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kNever), "never");
}

// ---------------------------------------------------------------------------
// System-level round trips.
// ---------------------------------------------------------------------------

TEST(WalRecovery, CleanCloseRoundTripIsByteIdentical) {
  for (FsyncPolicy policy : {FsyncPolicy::kAlways, FsyncPolicy::kGroupCommit,
                             FsyncPolicy::kNever}) {
    std::string dir = TempDir(std::string("roundtrip_") + FsyncPolicyName(policy));
    std::string digest;
    {
      AgentFirstSystem sys;
      DurabilityOptions options;
      options.data_dir = dir;
      options.fsync = policy;
      ASSERT_TRUE(sys.EnableDurability(options).ok());
      ASSERT_TRUE(RunEpisode(&sys, /*with_checkpoints=*/false, nullptr).ok());
      digest = Canonical(&sys);
      ASSERT_TRUE(sys.CloseDurability().ok());
    }
    AgentFirstSystem recovered;
    DurabilityOptions options;
    options.data_dir = dir;
    ASSERT_TRUE(recovered.EnableDurability(options).ok());
    EXPECT_EQ(Canonical(&recovered), digest) << FsyncPolicyName(policy);
    EXPECT_GT(recovered.recovery_report().records_replayed, 0u);
  }
}

TEST(WalRecovery, CheckpointRoundTripAndWalTruncation) {
  std::string dir = TempDir("ckpt_roundtrip");
  std::string digest;
  uint64_t live_bytes_after_checkpoint = 0;
  {
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = dir;
    options.fsync = FsyncPolicy::kAlways;
    ASSERT_TRUE(sys.EnableDurability(options).ok());
    ASSERT_TRUE(RunEpisode(&sys, /*with_checkpoints=*/true, nullptr).ok());
    digest = Canonical(&sys);
    live_bytes_after_checkpoint = sys.wal()->writer()->live_bytes();
    ASSERT_TRUE(sys.CloseDurability().ok());
  }
  // The checkpoint truncated the WAL: only post-checkpoint records remain.
  auto wal_size = io::FileSize(WalPath(dir));
  ASSERT_TRUE(wal_size.ok());
  EXPECT_EQ(*wal_size, kWalHeaderSize + live_bytes_after_checkpoint);
  ASSERT_TRUE(io::FileExists(CheckpointPath(dir)));

  AgentFirstSystem recovered;
  DurabilityOptions options;
  options.data_dir = dir;
  ASSERT_TRUE(recovered.EnableDurability(options).ok());
  EXPECT_TRUE(recovered.recovery_report().checkpoint_loaded);
  EXPECT_EQ(Canonical(&recovered), digest);
}

TEST(WalRecovery, AutoCheckpointByBytesThreshold) {
  std::string dir = TempDir("auto_ckpt");
  AgentFirstSystem sys;
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync = FsyncPolicy::kAlways;
  options.checkpoint_every_bytes = 512;
  ASSERT_TRUE(sys.EnableDurability(options).ok());
  ASSERT_TRUE(RunEpisode(&sys, /*with_checkpoints=*/false, nullptr).ok());
  EXPECT_TRUE(io::FileExists(CheckpointPath(dir)));  // threshold crossed
  std::string digest = Canonical(&sys);
  ASSERT_TRUE(sys.CloseDurability().ok());
  AgentFirstSystem recovered;
  DurabilityOptions ropts;
  ropts.data_dir = dir;
  ASSERT_TRUE(recovered.EnableDurability(ropts).ok());
  EXPECT_EQ(Canonical(&recovered), digest);
}

TEST(WalRecovery, TornTailIsTruncatedAndRecoveryIsIdempotent) {
  std::string dir = TempDir("torn");
  std::string digest;
  {
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = dir;
    options.fsync = FsyncPolicy::kAlways;
    ASSERT_TRUE(sys.EnableDurability(options).ok());
    ASSERT_TRUE(RunEpisode(&sys, /*with_checkpoints=*/false, nullptr).ok());
    digest = Canonical(&sys);
    ASSERT_TRUE(sys.CloseDurability().ok());
  }
  // The machine died mid-write: garbage half-frame lands on the tail.
  {
    auto f = io::File::OpenForAppend(WalPath(dir));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->WriteAll(std::string("\x42\x00\x00\x00garbagetail", 15)).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  auto size_before = io::FileSize(WalPath(dir));
  ASSERT_TRUE(size_before.ok());
  AgentFirstSystem recovered;
  DurabilityOptions options;
  options.data_dir = dir;
  ASSERT_TRUE(recovered.EnableDurability(options).ok());
  EXPECT_EQ(Canonical(&recovered), digest);
  EXPECT_EQ(recovered.recovery_report().torn_bytes_truncated, 15u);
  auto size_after = io::FileSize(WalPath(dir));
  ASSERT_TRUE(size_after.ok());
  EXPECT_EQ(*size_after + 15u, *size_before);
  ASSERT_TRUE(recovered.CloseDurability().ok());

  AgentFirstSystem again;
  ASSERT_TRUE(again.EnableDurability(options).ok());
  EXPECT_EQ(Canonical(&again), digest);
  EXPECT_EQ(again.recovery_report().torn_bytes_truncated, 0u);
}

TEST(WalRecovery, EnableDurabilityRejectsNonEmptySystem) {
  AgentFirstSystem sys;
  ASSERT_TRUE(sys.ExecuteSql("CREATE TABLE t (a BIGINT)").ok());
  DurabilityOptions options;
  options.data_dir = TempDir("nonempty");
  Status enabled = sys.EnableDurability(options);
  EXPECT_EQ(enabled.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Branch restore-or-report.
// ---------------------------------------------------------------------------

TEST(WalRecovery, CleanBranchesAreRestoredWithIdsAndContents) {
  std::string dir = TempDir("branch_clean");
  uint64_t fork1 = 0;
  uint64_t fork2 = 0;
  {
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = dir;
    options.fsync = FsyncPolicy::kAlways;
    ASSERT_TRUE(sys.EnableDurability(options).ok());
    ASSERT_TRUE(sys.ExecuteSql("CREATE TABLE inv (sku BIGINT, qty BIGINT)").ok());
    ASSERT_TRUE(sys.ExecuteSql("INSERT INTO inv VALUES (1,10),(2,20)").ok());
    ASSERT_TRUE(sys.EnableBranching("inv").ok());
    auto f1 = sys.branches()->Fork(BranchManager::kMainBranch);
    ASSERT_TRUE(f1.ok());
    fork1 = *f1;
    auto f2 = sys.branches()->Fork(*f1);  // fork-of-fork, still clean
    ASSERT_TRUE(f2.ok());
    fork2 = *f2;
    ASSERT_TRUE(sys.DurabilityBarrier().ok());
    ASSERT_TRUE(sys.CloseDurability().ok());
  }
  AgentFirstSystem recovered;
  DurabilityOptions options;
  options.data_dir = dir;
  Status enabled = recovered.EnableDurability(options);
  ASSERT_TRUE(enabled.ok()) << enabled.ToString();
  EXPECT_TRUE(recovered.recovery_report().dropped_branches.empty());
  EXPECT_TRUE(recovered.branches()->HasBranch(fork1));
  EXPECT_TRUE(recovered.branches()->HasBranch(fork2));
  auto rows = recovered.QueryBranch(fork2, "SELECT qty FROM inv WHERE sku = 2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ((*rows)->rows.size(), 1u);
  EXPECT_EQ((*rows)->rows[0][0].int_value(), 20);
  // A new fork after recovery must not collide with restored ids.
  auto f3 = recovered.branches()->Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(f3.ok());
  EXPECT_GT(*f3, fork2);
}

TEST(WalRecovery, MutatedBranchIsDroppedWithTypedErrorNeverSilently) {
  std::string dir = TempDir("branch_dirty");
  uint64_t clean_fork = 0;
  uint64_t dirty_fork = 0;
  uint64_t child_of_dirty = 0;
  {
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = dir;
    options.fsync = FsyncPolicy::kAlways;
    ASSERT_TRUE(sys.EnableDurability(options).ok());
    ASSERT_TRUE(sys.ExecuteSql("CREATE TABLE inv (sku BIGINT, qty BIGINT)").ok());
    ASSERT_TRUE(sys.ExecuteSql("INSERT INTO inv VALUES (1,10),(2,20)").ok());
    ASSERT_TRUE(sys.EnableBranching("inv").ok());
    auto cf = sys.branches()->Fork(BranchManager::kMainBranch);
    ASSERT_TRUE(cf.ok());
    clean_fork = *cf;
    auto df = sys.branches()->Fork(BranchManager::kMainBranch);
    ASSERT_TRUE(df.ok());
    dirty_fork = *df;
    // COW write: the branch's cloned segment contents are NOT in the log.
    ASSERT_TRUE(sys.branches()->Write(dirty_fork, "inv", 0, 1,
                                      Value::Int(99)).ok());
    auto cd = sys.branches()->Fork(dirty_fork);  // inherits unlogged state
    ASSERT_TRUE(cd.ok());
    child_of_dirty = *cd;
    ASSERT_TRUE(sys.DurabilityBarrier().ok());
    ASSERT_TRUE(sys.CloseDurability().ok());
  }
  AgentFirstSystem recovered;
  DurabilityOptions options;
  options.data_dir = dir;
  Status enabled = recovered.EnableDurability(options);
  // Recovery succeeded, but the verdict is typed and names the losses.
  EXPECT_EQ(enabled.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(enabled.message().find(std::to_string(dirty_fork)),
            std::string::npos);
  EXPECT_NE(enabled.message().find(std::to_string(child_of_dirty)),
            std::string::npos);
  EXPECT_TRUE(recovered.branches()->HasBranch(clean_fork));
  EXPECT_FALSE(recovered.branches()->HasBranch(dirty_fork));
  EXPECT_FALSE(recovered.branches()->HasBranch(child_of_dirty));
  std::vector<uint64_t> dropped = recovered.recovery_report().dropped_branches;
  EXPECT_EQ(dropped.size(), 2u);
}

// ---------------------------------------------------------------------------
// Kill-and-recover torture: the acceptance criterion.
// ---------------------------------------------------------------------------

struct CrashSite {
  const char* site;
  uint64_t skip_first;
};

/// Runs the episode against `crash_dir` with one fault armed, simulating a
/// machine crash at that exact hit. Returns true when the fault actually
/// fired (a crash was induced).
bool RunCrashingEpisode(const std::string& crash_dir, const CrashSite& site,
                        size_t* acked, std::string* last_acked_digest) {
  FaultRegistry::Global().ClearArmed();
  FaultRegistry::Global().Enable(0x5EED);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kInternal;
  spec.probability = 1.0;
  spec.max_fires = 1;
  spec.skip_first = site.skip_first;
  {
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = crash_dir;
    options.fsync = FsyncPolicy::kAlways;
    Status enabled = sys.EnableDurability(options);
    if (!enabled.ok()) {
      FaultRegistry::Global().ClearArmed();
      FaultRegistry::Global().Disable();
      return FaultRegistry::Global().fired(site.site) > 0;
    }
    FaultRegistry::Global().Arm(site.site, spec);
    *acked = 0;
    // The empty post-recovery state is itself an acknowledged boundary (a
    // crash before the first acked step must recover to it).
    *last_acked_digest = Canonical(&sys);
    Status episode = RunEpisode(&sys, /*with_checkpoints=*/true, acked,
                                last_acked_digest);
    (void)episode;
    // Simulated crash: the process dies here. The system object is destroyed
    // with the WAL in whatever state the fault left it; kAlways has no
    // buffered records, so destruction adds no bytes (verified below by the
    // committed-prefix check itself).
  }
  bool fired = FaultRegistry::Global().fired(site.site) > 0;
  FaultRegistry::Global().ClearArmed();
  FaultRegistry::Global().Disable();
  return fired;
}

TEST(WalCrashTorture, EveryCrashSiteRecoversToACommittedPrefix) {
  // Reference run: same episode, no faults.
  std::string ref_dir = TempDir("torture_ref");
  size_t ref_acked = 0;
  {
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = ref_dir;
    options.fsync = FsyncPolicy::kAlways;
    ASSERT_TRUE(sys.EnableDurability(options).ok());
    ASSERT_TRUE(RunEpisode(&sys, /*with_checkpoints=*/true, &ref_acked).ok());
    ASSERT_TRUE(sys.CloseDurability().ok());
  }
  // Committed-prefix digests of the reference run, one per record boundary.
  // The reference WAL was checkpoint-truncated, so rebuild the full-history
  // digest chain from a checkpoint-free reference instead.
  std::string ref_full_dir = TempDir("torture_ref_full");
  {
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = ref_full_dir;
    options.fsync = FsyncPolicy::kAlways;
    ASSERT_TRUE(sys.EnableDurability(options).ok());
    size_t acked = 0;
    ASSERT_TRUE(RunEpisode(&sys, /*with_checkpoints=*/false, &acked).ok());
    ASSERT_TRUE(sys.CloseDurability().ok());
  }
  std::vector<std::string> prefix_digests =
      MakeReferenceDigests(ref_full_dir, TempDir("torture_scratch"));
  ASSERT_FALSE(prefix_digests.empty());
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Crash sites: every file-I/O and WAL-layer fault point, swept across hit
  // indexes so the same site crashes at different records / bytes. Together
  // these cover append, group-commit flush, checkpoint write, rename, and
  // replay with > 50 distinct injection points.
  std::vector<CrashSite> sites;
  for (uint64_t k = 0; k < 10; ++k) sites.push_back({"io.file.short_write", k});
  for (uint64_t k = 0; k < 10; ++k) sites.push_back({"io.file.write", k});
  for (uint64_t k = 0; k < 10; ++k) sites.push_back({"io.file.fsync", k});
  for (uint64_t k = 0; k < 10; ++k) sites.push_back({"wal.append", k});
  for (uint64_t k = 0; k < 3; ++k) sites.push_back({"io.file.open", k});
  sites.push_back({"wal.open", 0});
  for (uint64_t k = 0; k < 2; ++k) {
    sites.push_back({"wal.checkpoint.encode", k});
    sites.push_back({"wal.checkpoint.write", k});
    sites.push_back({"io.file.rename", k});
    sites.push_back({"io.dir.fsync", k});
    sites.push_back({"wal.reset.truncate", k});
    sites.push_back({"io.file.truncate", k});
  }

  size_t crashes_induced = 0;
  for (const CrashSite& site : sites) {
    std::string crash_dir =
        TempDir("torture_" + std::string(site.site) + "_" +
                std::to_string(site.skip_first));
    size_t acked = 0;
    std::string last_acked_digest;
    bool fired = RunCrashingEpisode(crash_dir, site, &acked,
                                    &last_acked_digest);
    if (fired) ++crashes_induced;

    // Restart on the same data dir; recovery must always succeed.
    AgentFirstSystem recovered;
    DurabilityOptions options;
    options.data_dir = crash_dir;
    Status enabled = recovered.EnableDurability(options);
    ASSERT_TRUE(enabled.ok())
        << site.site << " skip=" << site.skip_first << ": "
        << enabled.ToString();
    std::string digest = Canonical(&recovered);
    auto it = std::find(prefix_digests.begin(), prefix_digests.end(), digest);
    ASSERT_NE(it, prefix_digests.end())
        << site.site << " skip=" << site.skip_first
        << ": recovered state is not any committed prefix of the reference";
    // No silent loss: everything acknowledged before the crash is included.
    // (The recovered state may extend past the last ack — records written
    // but not yet acknowledged are legitimately replayed.)
    auto acked_it = std::find(prefix_digests.begin(), prefix_digests.end(),
                              last_acked_digest);
    ASSERT_NE(acked_it, prefix_digests.end())
        << site.site << " skip=" << site.skip_first;
    EXPECT_GE(it - prefix_digests.begin(), acked_it - prefix_digests.begin())
        << site.site << " skip=" << site.skip_first
        << ": acknowledged data lost";
  }
  // The acceptance floor: >= 50 distinct (site, hit-index) crash points
  // actually induced a crash.
  EXPECT_GE(crashes_induced, 50u);
}

TEST(WalCrashTorture, CrashDuringRecoveryIsRetryable) {
  // Build one crashed dir (short write at record 5).
  std::string crash_dir = TempDir("recover_crash");
  size_t acked = 0;
  std::string last_acked_digest;
  (void)RunCrashingEpisode(crash_dir, {"io.file.short_write", 5}, &acked,
                           &last_acked_digest);

  // Baseline: what a clean recovery of this dir yields.
  std::string baseline_dir = TempDir("recover_crash_baseline");
  SnapshotDataDir(crash_dir, baseline_dir);
  std::string baseline_digest;
  {
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = baseline_dir;
    ASSERT_TRUE(sys.EnableDurability(options).ok());
    baseline_digest = Canonical(&sys);
  }

  // Now crash recovery itself at a sweep of points, then retry cleanly.
  std::vector<CrashSite> recovery_sites;
  recovery_sites.push_back({"wal.recover.open", 0});
  for (uint64_t k = 0; k < 2; ++k) recovery_sites.push_back({"io.file.read", k});
  for (uint64_t k = 0; k < 6; ++k) {
    recovery_sites.push_back({"wal.recover.replay_record", k});
  }
  for (const CrashSite& site : recovery_sites) {
    std::string dir = TempDir("recover_crash_" + std::string(site.site) + "_" +
                              std::to_string(site.skip_first));
    SnapshotDataDir(crash_dir, dir);
    FaultRegistry::Global().ClearArmed();
    FaultRegistry::Global().Enable(0x5EED);
    FaultSpec spec;
    spec.max_fires = 1;
    spec.skip_first = site.skip_first;
    FaultRegistry::Global().Arm(site.site, spec);
    {
      AgentFirstSystem sys;
      DurabilityOptions options;
      options.data_dir = dir;
      Status enabled = sys.EnableDurability(options);
      // When the armed fault actually fired, recovery must have surfaced the
      // error (faults that never fired — skip_first beyond the hit count —
      // leave recovery untouched).
      if (FaultRegistry::Global().fired(site.site) > 0) {
        EXPECT_FALSE(enabled.ok()) << site.site << " skip=" << site.skip_first;
      }
    }
    FaultRegistry::Global().ClearArmed();
    FaultRegistry::Global().Disable();
    // Retry without faults: recovery is idempotent and lossless.
    AgentFirstSystem sys;
    DurabilityOptions options;
    options.data_dir = dir;
    Status enabled = sys.EnableDurability(options);
    ASSERT_TRUE(enabled.ok()) << site.site << ": " << enabled.ToString();
    EXPECT_EQ(Canonical(&sys), baseline_digest) << site.site;
  }
}

}  // namespace
}  // namespace wal
}  // namespace agentfirst
