#include "exec/executor.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::PeopleDbTest;

class ExecutorTest : public PeopleDbTest {};

TEST_F(ExecutorTest, SelectConstantNoFrom) {
  auto rs = Run("SELECT 1 + 2 AS three");
  ASSERT_NE(rs, nullptr);
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 3);
  EXPECT_EQ(rs->schema.column(0).name, "three");
}

TEST_F(ExecutorTest, FullScan) {
  auto rs = Run("SELECT * FROM people");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->NumRows(), 5u);
  EXPECT_EQ(rs->schema.NumColumns(), 4u);
}

TEST_F(ExecutorTest, FilterComparisons) {
  EXPECT_EQ(Run("SELECT name FROM people WHERE age > 30")->NumRows(), 2u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE age >= 28")->NumRows(), 3u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE age < 20")->NumRows(), 1u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE age = 34")->NumRows(), 1u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE age <> 34")->NumRows(), 3u);
}

TEST_F(ExecutorTest, NullNeverMatchesComparison) {
  // erin has NULL age: excluded from both a predicate and its negation.
  auto pos = Run("SELECT name FROM people WHERE age > 0");
  auto neg = Run("SELECT name FROM people WHERE NOT (age > 0)");
  EXPECT_EQ(pos->NumRows() + neg->NumRows(), 4u);
}

TEST_F(ExecutorTest, IsNullPredicates) {
  EXPECT_EQ(Run("SELECT name FROM people WHERE age IS NULL")->NumRows(), 1u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE age IS NOT NULL")->NumRows(), 4u);
}

TEST_F(ExecutorTest, LikeAndInAndBetween) {
  EXPECT_EQ(Run("SELECT name FROM people WHERE city LIKE 'berk%'")->NumRows(), 3u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE name LIKE '_ob'")->NumRows(), 1u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE city IN ('oakland','seattle')")
                ->NumRows(), 2u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE age BETWEEN 20 AND 35")->NumRows(), 2u);
  EXPECT_EQ(Run("SELECT name FROM people WHERE age NOT BETWEEN 20 AND 35")->NumRows(), 2u);
}

TEST_F(ExecutorTest, ProjectionExpressions) {
  auto rs = Run("SELECT age * 2, upper(name) FROM people WHERE id = 1");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 68);
  EXPECT_EQ(rs->rows[0][1].string_value(), "ALICE");
}

TEST_F(ExecutorTest, InnerJoin) {
  auto rs = Run(
      "SELECT name, amount FROM people JOIN orders ON people.id = orders.person_id");
  // Orders 100,101 (alice), 102 (bob), 103 (carol); 104 dangles.
  EXPECT_EQ(rs->NumRows(), 4u);
}

TEST_F(ExecutorTest, LeftJoinPadsWithNulls) {
  auto rs = Run(
      "SELECT name, amount FROM people LEFT JOIN orders ON people.id = orders.person_id "
      "ORDER BY name");
  // alice x2, bob, carol, dan(null), erin(null).
  ASSERT_EQ(rs->NumRows(), 6u);
  // dan and erin rows have NULL amount.
  size_t nulls = 0;
  for (const Row& r : rs->rows) {
    if (r[1].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 2u);
}

TEST_F(ExecutorTest, CrossJoinCardinality) {
  auto rs = Run("SELECT people.id FROM people CROSS JOIN orders");
  EXPECT_EQ(rs->NumRows(), 25u);
}

TEST_F(ExecutorTest, NonEquiJoin) {
  auto rs = Run(
      "SELECT name, order_id FROM people JOIN orders ON people.age < orders.amount");
  // Pairs where age < amount: alice(34)<99, bob(28)<99, carol(41)<99, dan(19)<25,99
  // and erin's NULL age matches nothing.
  EXPECT_EQ(rs->NumRows(), 5u);
}

TEST_F(ExecutorTest, JoinResidualPredicate) {
  auto rs = Run(
      "SELECT name FROM people JOIN orders ON people.id = orders.person_id "
      "AND orders.amount > 20");
  EXPECT_EQ(rs->NumRows(), 2u);  // order 100 (25.0) and 103 (99.0)
}

TEST_F(ExecutorTest, GlobalAggregates) {
  auto rs = Run("SELECT count(*), count(age), sum(age), avg(age), min(age), max(age) "
                "FROM people");
  ASSERT_EQ(rs->NumRows(), 1u);
  const Row& r = rs->rows[0];
  EXPECT_EQ(r[0].int_value(), 5);        // count(*) counts NULL rows
  EXPECT_EQ(r[1].int_value(), 4);        // count(age) skips NULL
  EXPECT_EQ(r[2].int_value(), 122);      // 34+28+41+19
  EXPECT_DOUBLE_EQ(r[3].double_value(), 122.0 / 4);
  EXPECT_EQ(r[4].int_value(), 19);
  EXPECT_EQ(r[5].int_value(), 41);
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyInput) {
  auto rs = Run("SELECT count(*), sum(age) FROM people WHERE age > 1000");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 0);
  EXPECT_TRUE(rs->rows[0][1].is_null());
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  auto rs = Run(
      "SELECT city, count(*) AS n FROM people GROUP BY city HAVING count(*) > 1 "
      "ORDER BY n DESC");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "berkeley");
  EXPECT_EQ(rs->rows[0][1].int_value(), 3);
}

TEST_F(ExecutorTest, GroupByNullKeyFormsOneGroup) {
  Run("INSERT INTO people VALUES (7,'gabe',NULL,'austin')");
  auto rs = Run("SELECT age, count(*) FROM people GROUP BY age ORDER BY count(*) DESC");
  // erin and gabe share the NULL-age group.
  bool found_null_group = false;
  for (const Row& r : rs->rows) {
    if (r[0].is_null()) {
      EXPECT_EQ(r[1].int_value(), 2);
      found_null_group = true;
    }
  }
  EXPECT_TRUE(found_null_group);
}

TEST_F(ExecutorTest, CountDistinct) {
  auto rs = Run("SELECT count(DISTINCT city) FROM people");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 3);
}

TEST_F(ExecutorTest, SelectDistinct) {
  auto rs = Run("SELECT DISTINCT city FROM people");
  EXPECT_EQ(rs->NumRows(), 3u);
}

TEST_F(ExecutorTest, OrderByMultipleKeys) {
  auto rs = Run("SELECT name, city FROM people ORDER BY city ASC, name DESC");
  ASSERT_EQ(rs->NumRows(), 5u);
  EXPECT_EQ(rs->rows[0][1].string_value(), "berkeley");
  EXPECT_EQ(rs->rows[0][0].string_value(), "erin");  // desc within berkeley
}

TEST_F(ExecutorTest, OrderByNullsFirst) {
  auto rs = Run("SELECT age FROM people ORDER BY age");
  ASSERT_EQ(rs->NumRows(), 5u);
  EXPECT_TRUE(rs->rows[0][0].is_null());
  EXPECT_EQ(rs->rows[1][0].int_value(), 19);
}

TEST_F(ExecutorTest, LimitOffset) {
  auto rs = Run("SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 2");
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 3);
  EXPECT_EQ(rs->rows[1][0].int_value(), 4);
}

TEST_F(ExecutorTest, LimitBeyondEnd) {
  EXPECT_EQ(Run("SELECT id FROM people LIMIT 100")->NumRows(), 5u);
  EXPECT_EQ(Run("SELECT id FROM people LIMIT 5 OFFSET 100")->NumRows(), 0u);
}

TEST_F(ExecutorTest, DerivedTable) {
  auto rs = Run(
      "SELECT s.city, s.n FROM (SELECT city, count(*) AS n FROM people GROUP BY "
      "city) AS s WHERE s.n > 1");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "berkeley");
}

TEST_F(ExecutorTest, InfoSchemaQueries) {
  auto rs = Run("SELECT table_name FROM information_schema.tables ORDER BY table_name");
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "orders");
  auto cols = Run("SELECT count(*) FROM information_schema.columns WHERE "
                  "table_name = 'people'");
  EXPECT_EQ(cols->rows[0][0].int_value(), 4);
}

TEST_F(ExecutorTest, CaseExpression) {
  auto rs = Run(
      "SELECT name, CASE WHEN age >= 30 THEN 'senior' WHEN age >= 20 THEN 'mid' "
      "ELSE 'junior' END AS band FROM people WHERE age IS NOT NULL ORDER BY id");
  ASSERT_EQ(rs->NumRows(), 4u);
  EXPECT_EQ(rs->rows[0][1].string_value(), "senior");  // alice 34
  EXPECT_EQ(rs->rows[1][1].string_value(), "mid");     // bob 28
  EXPECT_EQ(rs->rows[3][1].string_value(), "junior");  // dan 19
}

TEST_F(ExecutorTest, UpdateAndDelete) {
  auto upd = Run("UPDATE people SET age = 20 WHERE name = 'dan'");
  EXPECT_EQ(upd->rows[0][0].int_value(), 1);
  EXPECT_EQ(Run("SELECT age FROM people WHERE name = 'dan'")->rows[0][0].int_value(), 20);

  auto del = Run("DELETE FROM orders WHERE amount < 10");
  EXPECT_EQ(del->rows[0][0].int_value(), 2);  // 7.5 and 5.0
  EXPECT_EQ(Run("SELECT count(*) FROM orders")->rows[0][0].int_value(), 3);
}

TEST_F(ExecutorTest, InsertWithColumnSubset) {
  Run("INSERT INTO people (id, name) VALUES (10, 'zoe')");
  auto rs = Run("SELECT age, city FROM people WHERE id = 10");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_TRUE(rs->rows[0][0].is_null());
  EXPECT_TRUE(rs->rows[0][1].is_null());
}

TEST_F(ExecutorTest, SamplingScanApproximates) {
  // Insert many rows, then sample.
  for (int i = 0; i < 20; ++i) {
    Run("INSERT INTO orders VALUES (" + std::to_string(200 + i) + ", 1, 10.0, 'bulk')");
  }
  ExecOptions options;
  options.sample_rate = 0.5;
  auto r = engine_->ExecuteSql("SELECT count(*) FROM orders", options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->approximate);
  // Scaled count should be within a loose band of the true 25.
  int64_t est = (*r)->rows[0][0].int_value();
  EXPECT_GT(est, 5);
  EXPECT_LT(est, 60);
}

TEST_F(ExecutorTest, CacheSharesIdenticalSubplans) {
  ExecCache cache;
  ExecOptions options;
  options.cache = &cache;
  auto r1 = engine_->ExecuteSql("SELECT count(*) FROM people WHERE age > 20", options);
  ASSERT_TRUE(r1.ok());
  uint64_t misses_after_first = cache.misses();
  auto r2 = engine_->ExecuteSql("SELECT count(*) FROM people WHERE age > 20", options);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), misses_after_first);  // second run all hits
  EXPECT_EQ((*r1)->rows[0][0].int_value(), (*r2)->rows[0][0].int_value());
}

TEST_F(ExecutorTest, CacheInvalidatedByWrites) {
  ExecCache cache;
  ExecOptions options;
  options.cache = &cache;
  auto r1 = engine_->ExecuteSql("SELECT count(*) FROM people", options);
  ASSERT_TRUE(r1.ok());
  Run("INSERT INTO people VALUES (11,'yan',30,'austin')");
  auto r2 = engine_->ExecuteSql("SELECT count(*) FROM people", options);
  ASSERT_TRUE(r2.ok());
  // Data version changed -> new fingerprint -> fresh result.
  EXPECT_EQ((*r2)->rows[0][0].int_value(), (*r1)->rows[0][0].int_value() + 1);
}

TEST_F(ExecutorTest, ResultToStringRendersTable) {
  auto rs = Run("SELECT id, name FROM people ORDER BY id LIMIT 2");
  std::string text = rs->ToString();
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("bob"), std::string::npos);
}

}  // namespace
}  // namespace agentfirst
