#include "exec/evaluator.h"

#include "gtest/gtest.h"
#include "plan/binder.h"
#include "sql/parser.h"

namespace agentfirst {
namespace {

/// Evaluates a closed (no column refs) SQL expression.
Value Eval(const std::string& text) {
  auto parsed = ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  if (!parsed.ok()) return Value::Null();
  Catalog catalog;
  Binder binder(&catalog);
  Schema empty;
  auto bound = binder.BindScalar(**parsed, empty);
  EXPECT_TRUE(bound.ok()) << text << " -> " << bound.status().ToString();
  if (!bound.ok()) return Value::Null();
  Row row;
  return EvalExpr(**bound, row);
}

TEST(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2").int_value(), 3);
  EXPECT_EQ(Eval("7 - 10").int_value(), -3);
  EXPECT_EQ(Eval("6 * 7").int_value(), 42);
  EXPECT_DOUBLE_EQ(Eval("7 / 2").double_value(), 3.5);
  EXPECT_EQ(Eval("7 % 3").int_value(), 1);
  EXPECT_DOUBLE_EQ(Eval("1.5 + 2").double_value(), 3.5);
}

TEST(EvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval("1 / 0").is_null());
  EXPECT_TRUE(Eval("1 % 0").is_null());
  EXPECT_TRUE(Eval("1.0 / 0").is_null());
}

TEST(EvalTest, NullPropagation) {
  EXPECT_TRUE(Eval("NULL + 1").is_null());
  EXPECT_TRUE(Eval("1 = NULL").is_null());
  EXPECT_TRUE(Eval("NULL = NULL").is_null());
  EXPECT_TRUE(Eval("-(NULL)").is_null());
}

TEST(EvalTest, KleeneAndOr) {
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_FALSE(Eval("FALSE AND NULL").bool_value());
  EXPECT_TRUE(Eval("TRUE AND NULL").is_null());
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_TRUE(Eval("TRUE OR NULL").bool_value());
  EXPECT_TRUE(Eval("FALSE OR NULL").is_null());
  EXPECT_TRUE(Eval("NULL AND NULL").is_null());
}

TEST(EvalTest, NotOperator) {
  EXPECT_FALSE(Eval("NOT TRUE").bool_value());
  EXPECT_TRUE(Eval("NOT FALSE").bool_value());
  EXPECT_TRUE(Eval("NOT NULL").is_null());
}

TEST(EvalTest, Comparisons) {
  EXPECT_TRUE(Eval("1 < 2").bool_value());
  EXPECT_TRUE(Eval("2 <= 2").bool_value());
  EXPECT_FALSE(Eval("2 < 2").bool_value());
  EXPECT_TRUE(Eval("'abc' < 'abd'").bool_value());
  EXPECT_TRUE(Eval("1 = 1.0").bool_value());
  EXPECT_TRUE(Eval("2 <> 3").bool_value());
}

TEST(EvalTest, InListSemantics) {
  EXPECT_TRUE(Eval("2 IN (1, 2, 3)").bool_value());
  EXPECT_FALSE(Eval("5 IN (1, 2, 3)").bool_value());
  // Unknown membership with NULL in the list.
  EXPECT_TRUE(Eval("5 IN (1, NULL)").is_null());
  EXPECT_TRUE(Eval("1 IN (1, NULL)").bool_value());
  EXPECT_TRUE(Eval("NULL IN (1, 2)").is_null());
  EXPECT_FALSE(Eval("5 NOT IN (1, 2)").is_null());
  EXPECT_TRUE(Eval("5 NOT IN (1, 2)").bool_value());
}

TEST(EvalTest, BetweenSemantics) {
  EXPECT_TRUE(Eval("5 BETWEEN 1 AND 10").bool_value());
  EXPECT_TRUE(Eval("1 BETWEEN 1 AND 10").bool_value());
  EXPECT_TRUE(Eval("10 BETWEEN 1 AND 10").bool_value());
  EXPECT_FALSE(Eval("0 BETWEEN 1 AND 10").bool_value());
  EXPECT_TRUE(Eval("0 NOT BETWEEN 1 AND 10").bool_value());
  EXPECT_TRUE(Eval("NULL BETWEEN 1 AND 2").is_null());
}

TEST(EvalTest, LikeSemantics) {
  EXPECT_TRUE(Eval("'coffee beans' LIKE '%bean%'").bool_value());
  EXPECT_FALSE(Eval("'tea' LIKE '%bean%'").bool_value());
  EXPECT_TRUE(Eval("'tea' NOT LIKE '%bean%'").bool_value());
  EXPECT_TRUE(Eval("NULL LIKE '%'").is_null());
}

TEST(EvalTest, IsNullSemantics) {
  EXPECT_TRUE(Eval("NULL IS NULL").bool_value());
  EXPECT_FALSE(Eval("1 IS NULL").bool_value());
  EXPECT_TRUE(Eval("1 IS NOT NULL").bool_value());
}

TEST(EvalTest, StringFunctions) {
  EXPECT_EQ(Eval("lower('ABC')").string_value(), "abc");
  EXPECT_EQ(Eval("upper('abc')").string_value(), "ABC");
  EXPECT_EQ(Eval("length('hello')").int_value(), 5);
  EXPECT_EQ(Eval("substr('hello', 2, 3)").string_value(), "ell");
  EXPECT_EQ(Eval("substr('hello', 2)").string_value(), "ello");
  EXPECT_EQ(Eval("substr('hello', 99)").string_value(), "");
  EXPECT_EQ(Eval("concat('a', 'b', 'c')").string_value(), "abc");
}

TEST(EvalTest, NumericFunctions) {
  EXPECT_EQ(Eval("abs(-5)").int_value(), 5);
  EXPECT_DOUBLE_EQ(Eval("abs(-5.5)").double_value(), 5.5);
  EXPECT_DOUBLE_EQ(Eval("round(3.456, 1)").double_value(), 3.5);
  EXPECT_DOUBLE_EQ(Eval("round(3.456)").double_value(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("floor(3.9)").double_value(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("ceil(3.1)").double_value(), 4.0);
}

TEST(EvalTest, Coalesce) {
  EXPECT_EQ(Eval("coalesce(NULL, NULL, 7)").int_value(), 7);
  EXPECT_EQ(Eval("coalesce(1, 2)").int_value(), 1);
  EXPECT_TRUE(Eval("coalesce(NULL, NULL)").is_null());
}

TEST(EvalTest, SemanticSimilarity) {
  // Identical strings: similarity ~1. Unrelated strings: much lower.
  double same = Eval("semantic_sim('coffee beans', 'coffee beans')").double_value();
  double related = Eval("semantic_sim('coffee beans', 'coffee')").double_value();
  double unrelated = Eval("semantic_sim('coffee beans', 'flight crew')").double_value();
  EXPECT_NEAR(same, 1.0, 1e-6);
  EXPECT_GT(related, unrelated);
  EXPECT_GT(related, 0.3);
}

TEST(EvalTest, CaseSearchedAndOperandForms) {
  EXPECT_EQ(Eval("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END")
                .string_value(), "b");
  EXPECT_EQ(Eval("CASE WHEN 1 > 2 THEN 'a' ELSE 'c' END").string_value(), "c");
  EXPECT_TRUE(Eval("CASE WHEN 1 > 2 THEN 'a' END").is_null());
  EXPECT_EQ(Eval("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").string_value(),
            "two");
}

TEST(EvalTest, EvalPredicateRejectsNullAndNonBool) {
  auto check = [](const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok());
    Catalog catalog;
    Binder binder(&catalog);
    Schema empty;
    auto bound = binder.BindScalar(**parsed, empty);
    EXPECT_TRUE(bound.ok());
    Row row;
    return EvalPredicate(**bound, row);
  };
  EXPECT_TRUE(check("1 < 2"));
  EXPECT_FALSE(check("1 > 2"));
  EXPECT_FALSE(check("NULL = 1"));  // NULL predicate rejects
}

}  // namespace
}  // namespace agentfirst
