#include "opt/aqp.h"

#include <cmath>

#include "gtest/gtest.h"
#include "opt/rules.h"
#include "plan/binder.h"
#include "sql/parser.h"

namespace agentfirst {
namespace {

/// Fixture with a large-ish table so sampling is statistically meaningful.
class AqpTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 20000;

  void SetUp() override {
    Schema schema({ColumnDef("id", DataType::kInt64, false, "big"),
                   ColumnDef("v", DataType::kFloat64, false, "big"),
                   ColumnDef("grp", DataType::kString, false, "big")});
    auto t = catalog_.CreateTable("big", schema);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE((*t)->AppendRow({Value::Int(i), Value::Double(i % 100),
                                   Value::String("g" + std::to_string(i % 4))})
                      .ok());
    }
  }

  PlanPtr Bind(const std::string& sql) {
    auto select = ParseSelect(sql);
    EXPECT_TRUE(select.ok());
    Binder binder(&catalog_);
    auto plan = binder.BindSelect(**select);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? OptimizePlan(*plan) : nullptr;
  }

  Catalog catalog_;
};

TEST_F(AqpTest, ExactExecutionHasZeroWidthBounds) {
  auto plan = Bind("SELECT count(*) FROM big");
  auto answer = ExecuteApproximate(*plan, 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->result->approximate);
  EXPECT_EQ(answer->result->rows[0][0].int_value(), kRows);
  ASSERT_EQ(answer->relative_ci95.size(), 1u);
  EXPECT_DOUBLE_EQ(answer->relative_ci95[0].value(), 0.0);
}

TEST_F(AqpTest, ScaledCountIsCloseAtModerateRates) {
  auto plan = Bind("SELECT count(*) FROM big");
  auto answer = ExecuteApproximate(*plan, 0.1);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->result->approximate);
  double est = answer->result->rows[0][0].AsDouble();
  EXPECT_NEAR(est, kRows, kRows * 0.1);
  ASSERT_TRUE(answer->relative_ci95[0].has_value());
  EXPECT_GT(*answer->relative_ci95[0], 0.0);
  EXPECT_LT(*answer->relative_ci95[0], 0.2);
}

TEST_F(AqpTest, ScaledSumIsClose) {
  auto plan = Bind("SELECT sum(v), count(*) FROM big");
  auto answer = ExecuteApproximate(*plan, 0.2);
  ASSERT_TRUE(answer.ok());
  double exact_sum = 0;
  for (int i = 0; i < kRows; ++i) exact_sum += i % 100;
  EXPECT_NEAR(answer->result->rows[0][0].AsDouble(), exact_sum, exact_sum * 0.1);
  // SUM bound derived from the sibling COUNT.
  EXPECT_TRUE(answer->relative_ci95[0].has_value());
}

TEST_F(AqpTest, AvgIsUnscaledButAccurate) {
  auto plan = Bind("SELECT avg(v) FROM big");
  auto answer = ExecuteApproximate(*plan, 0.1);
  ASSERT_TRUE(answer.ok());
  EXPECT_NEAR(answer->result->rows[0][0].double_value(), 49.5, 3.0);
}

TEST_F(AqpTest, GroupedCountsScalePerGroup) {
  auto plan = Bind("SELECT grp, count(*) FROM big GROUP BY grp");
  auto answer = ExecuteApproximate(*plan, 0.2);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->result->rows.size(), 4u);
  for (const Row& r : answer->result->rows) {
    EXPECT_NEAR(r[1].AsDouble(), kRows / 4.0, kRows / 4.0 * 0.2);
  }
  // CI bound present for the count column.
  EXPECT_TRUE(answer->relative_ci95[1].has_value());
}

TEST_F(AqpTest, CiShrinksWithSampleRate) {
  auto plan = Bind("SELECT count(*) FROM big");
  auto low = ExecuteApproximate(*plan, 0.02);
  auto high = ExecuteApproximate(*plan, 0.5);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(low->relative_ci95[0].has_value());
  ASSERT_TRUE(high->relative_ci95[0].has_value());
  EXPECT_GT(*low->relative_ci95[0], *high->relative_ci95[0]);
}

TEST_F(AqpTest, CoverageProperty) {
  // Across many seeds, the 95% CI should cover the true count most of the
  // time (allow slack: this is a CLT approximation).
  auto plan = Bind("SELECT count(*) FROM big");
  int covered = 0;
  const int trials = 40;
  for (int s = 0; s < trials; ++s) {
    ExecOptions base;
    base.sample_seed = 1000 + static_cast<uint64_t>(s);
    auto answer = ExecuteApproximate(*plan, 0.05, base);
    ASSERT_TRUE(answer.ok());
    double est = answer->result->rows[0][0].AsDouble();
    double rel = answer->relative_ci95[0].value_or(0.0);
    if (std::fabs(est - kRows) <= rel * est + 1e-9) ++covered;
  }
  EXPECT_GE(covered, trials * 80 / 100);
}

TEST_F(AqpTest, DistinctAggregateGetsNoBound) {
  auto plan = Bind("SELECT count(DISTINCT grp) FROM big");
  auto answer = ExecuteApproximate(*plan, 0.3);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->relative_ci95[0].has_value());
}

TEST_F(AqpTest, NonAggregateQueryGetsNoBounds) {
  auto plan = Bind("SELECT id FROM big LIMIT 5");
  auto answer = ExecuteApproximate(*plan, 0.5);
  ASSERT_TRUE(answer.ok());
  for (const auto& ci : answer->relative_ci95) {
    EXPECT_FALSE(ci.has_value());
  }
}

TEST(ChooseSampleRateTest, InvertsTheBound) {
  // Large table + loose target -> small rate; tight target -> rate ~ 1.
  double loose = ChooseSampleRate(1e6, 0.1);
  double tight = ChooseSampleRate(1e6, 0.001);
  EXPECT_LT(loose, 0.01);
  EXPECT_GT(tight, 0.5);
  EXPECT_LE(tight, 1.0);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(ChooseSampleRate(0, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(ChooseSampleRate(100, 0), 1.0);
  // Respects the floor.
  EXPECT_GE(ChooseSampleRate(1e12, 0.5, 0.001), 0.001);
}

}  // namespace
}  // namespace agentfirst
