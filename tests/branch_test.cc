#include "txn/branch_manager.h"

#include "common/rng.h"
#include "gtest/gtest.h"
#include "txn/naive_branch.h"

namespace agentfirst {
namespace {

Schema AccountSchema() {
  return Schema({ColumnDef("id", DataType::kInt64, false, "accounts"),
                 ColumnDef("balance", DataType::kInt64, true, "accounts"),
                 ColumnDef("owner", DataType::kString, true, "accounts")});
}

class BranchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("accounts", AccountSchema(), /*segment_capacity=*/4);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(table_->AppendRow({Value::Int(i), Value::Int(100),
                                     Value::String("owner" + std::to_string(i))})
                      .ok());
    }
    ASSERT_TRUE(manager_.ImportTable(*table_).ok());
  }

  std::unique_ptr<Table> table_;
  BranchManager manager_;
};

TEST_F(BranchTest, ForkSharesAllSegments) {
  size_t before = manager_.DistinctLiveSegments();
  auto branch = manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(branch.ok());
  EXPECT_EQ(manager_.DistinctLiveSegments(), before);  // nothing copied
  EXPECT_GT(manager_.LogicalSegmentRefs(), before);
}

TEST_F(BranchTest, WritesAreIsolatedBetweenBranches) {
  auto b1 = *manager_.Fork(BranchManager::kMainBranch);
  auto b2 = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b1, "accounts", 0, 1, Value::Int(500)).ok());
  EXPECT_EQ(manager_.Read(b1, "accounts", 0, 1)->int_value(), 500);
  EXPECT_EQ(manager_.Read(b2, "accounts", 0, 1)->int_value(), 100);
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "accounts", 0, 1)->int_value(),
            100);
}

TEST_F(BranchTest, CowClonesOnlyTouchedSegment) {
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  uint64_t cloned_before = manager_.stats().segments_cloned;
  ASSERT_TRUE(manager_.Write(b, "accounts", 0, 1, Value::Int(1)).ok());
  ASSERT_TRUE(manager_.Write(b, "accounts", 1, 1, Value::Int(2)).ok());  // same segment
  EXPECT_EQ(manager_.stats().segments_cloned, cloned_before + 1);
  ASSERT_TRUE(manager_.Write(b, "accounts", 9, 1, Value::Int(3)).ok());  // other segment
  EXPECT_EQ(manager_.stats().segments_cloned, cloned_before + 2);
}

TEST_F(BranchTest, RollbackDropsBranch) {
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b, "accounts", 0, 1, Value::Int(999)).ok());
  ASSERT_TRUE(manager_.Rollback(b).ok());
  EXPECT_FALSE(manager_.HasBranch(b));
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "accounts", 0, 1)->int_value(),
            100);
  EXPECT_FALSE(manager_.Rollback(b).ok());
}

TEST_F(BranchTest, MainBranchCannotRollback) {
  EXPECT_FALSE(manager_.Rollback(BranchManager::kMainBranch).ok());
}

TEST_F(BranchTest, AppendVisibleOnlyInBranch) {
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Append(b, "accounts",
                              {Value::Int(100), Value::Int(7), Value::String("new")})
                  .ok());
  EXPECT_EQ(*manager_.NumRows(b, "accounts"), 11u);
  EXPECT_EQ(*manager_.NumRows(BranchManager::kMainBranch, "accounts"), 10u);
}

TEST_F(BranchTest, AppendToPartiallyFilledSharedSegmentIsCow) {
  // 10 rows with capacity 4: last segment has 2 rows and is shared.
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Append(b, "accounts",
                              {Value::Int(100), Value::Int(7), Value::String("new")})
                  .ok());
  // Main's last segment must still have 2 rows.
  EXPECT_EQ(*manager_.NumRows(BranchManager::kMainBranch, "accounts"), 10u);
  EXPECT_EQ(manager_.Read(b, "accounts", 10, 0)->int_value(), 100);
}

TEST_F(BranchTest, NestedForks) {
  auto b1 = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b1, "accounts", 0, 1, Value::Int(200)).ok());
  auto b2 = *manager_.Fork(b1);
  EXPECT_EQ(manager_.Read(b2, "accounts", 0, 1)->int_value(), 200);
  ASSERT_TRUE(manager_.Write(b2, "accounts", 0, 1, Value::Int(300)).ok());
  EXPECT_EQ(manager_.Read(b1, "accounts", 0, 1)->int_value(), 200);
  EXPECT_EQ(manager_.Read(b2, "accounts", 0, 1)->int_value(), 300);
}

TEST_F(BranchTest, MergeAppliesNonConflictingWrites) {
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b, "accounts", 2, 1, Value::Int(777)).ok());
  auto report = manager_.Merge(b, BranchManager::kMainBranch,
                               MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(report->cells_applied, 1u);
  EXPECT_TRUE(report->conflicts.empty());
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "accounts", 2, 1)->int_value(),
            777);
}

TEST_F(BranchTest, MergeAppendsNewRows) {
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Append(b, "accounts",
                              {Value::Int(50), Value::Int(1), Value::String("x")})
                  .ok());
  auto report = manager_.Merge(b, BranchManager::kMainBranch,
                               MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_appended, 1u);
  EXPECT_EQ(*manager_.NumRows(BranchManager::kMainBranch, "accounts"), 11u);
}

TEST_F(BranchTest, MergeDetectsConflicts) {
  auto b1 = *manager_.Fork(BranchManager::kMainBranch);
  auto b2 = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b1, "accounts", 3, 1, Value::Int(111)).ok());
  ASSERT_TRUE(manager_.Write(b2, "accounts", 3, 1, Value::Int(222)).ok());
  // Merge b1 into main; then b2 into main conflicts on row 3.
  ASSERT_TRUE(manager_.Merge(b1, BranchManager::kMainBranch,
                             MergePolicy::kFailOnConflict)->committed);
  auto report = manager_.Merge(b2, BranchManager::kMainBranch,
                               MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->committed);
  ASSERT_EQ(report->conflicts.size(), 1u);
  EXPECT_EQ(report->conflicts[0].row, 3u);
  EXPECT_EQ(report->conflicts[0].col, 1u);
  EXPECT_EQ(report->conflicts[0].source.int_value(), 222);
  EXPECT_EQ(report->conflicts[0].destination.int_value(), 111);
  // Destination untouched on failed merge.
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "accounts", 3, 1)->int_value(),
            111);
}

TEST_F(BranchTest, MergeSourceWinsPolicy) {
  auto b1 = *manager_.Fork(BranchManager::kMainBranch);
  auto b2 = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b1, "accounts", 3, 1, Value::Int(111)).ok());
  ASSERT_TRUE(manager_.Write(b2, "accounts", 3, 1, Value::Int(222)).ok());
  ASSERT_TRUE(manager_.Merge(b1, BranchManager::kMainBranch,
                             MergePolicy::kFailOnConflict)->committed);
  auto report = manager_.Merge(b2, BranchManager::kMainBranch,
                               MergePolicy::kSourceWins);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "accounts", 3, 1)->int_value(),
            222);
}

TEST_F(BranchTest, MergeDestinationWinsPolicy) {
  auto b1 = *manager_.Fork(BranchManager::kMainBranch);
  auto b2 = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b1, "accounts", 3, 1, Value::Int(111)).ok());
  ASSERT_TRUE(manager_.Write(b2, "accounts", 3, 1, Value::Int(222)).ok());
  ASSERT_TRUE(manager_.Merge(b1, BranchManager::kMainBranch,
                             MergePolicy::kFailOnConflict)->committed);
  auto report = manager_.Merge(b2, BranchManager::kMainBranch,
                               MergePolicy::kDestinationWins);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "accounts", 3, 1)->int_value(),
            111);
}

TEST_F(BranchTest, BranchToBranchMerge) {
  // The paper: forks must reconcile with each other, not just the mainline.
  auto b1 = *manager_.Fork(BranchManager::kMainBranch);
  auto b2 = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b1, "accounts", 1, 1, Value::Int(11)).ok());
  ASSERT_TRUE(manager_.Write(b2, "accounts", 2, 1, Value::Int(22)).ok());
  auto report = manager_.Merge(b1, b2, MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(manager_.Read(b2, "accounts", 1, 1)->int_value(), 11);
  EXPECT_EQ(manager_.Read(b2, "accounts", 2, 1)->int_value(), 22);
}

TEST_F(BranchTest, MergeIntoSelfRejected) {
  EXPECT_FALSE(manager_.Merge(BranchManager::kMainBranch,
                              BranchManager::kMainBranch,
                              MergePolicy::kFailOnConflict).ok());
}

TEST_F(BranchTest, MaterializeTableSharesSegments) {
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b, "accounts", 0, 1, Value::Int(5)).ok());
  auto view = manager_.MaterializeTable(b, "accounts");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumRows(), 10u);
  EXPECT_EQ((*view)->GetValue(0, 1)->int_value(), 5);
}

// Property test: random interleaved writes across branches always stay
// isolated, and COW storage matches a naive reference implementation.
class BranchFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BranchFuzzTest, CowMatchesNaiveReference) {
  Table table("t", Schema({ColumnDef("a", DataType::kInt64, true, "t")}),
              /*segment_capacity=*/8);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(table.AppendRow({Value::Int(i)}).ok());
  }
  BranchManager cow;
  NaiveBranchManager naive;
  ASSERT_TRUE(cow.ImportTable(table).ok());
  ASSERT_TRUE(naive.ImportTable(table).ok());

  Rng rng(GetParam());
  std::vector<uint64_t> cow_branches = {BranchManager::kMainBranch};
  std::vector<uint64_t> naive_branches = {NaiveBranchManager::kMainBranch};

  for (int step = 0; step < 200; ++step) {
    double action = rng.NextDouble();
    size_t which = rng.NextUint(cow_branches.size());
    if (action < 0.2 && cow_branches.size() < 12) {
      auto cb = cow.Fork(cow_branches[which]);
      auto nb = naive.Fork(naive_branches[which]);
      ASSERT_TRUE(cb.ok());
      ASSERT_TRUE(nb.ok());
      cow_branches.push_back(*cb);
      naive_branches.push_back(*nb);
    } else if (action < 0.3 && cow_branches.size() > 1 && which != 0) {
      ASSERT_TRUE(cow.Rollback(cow_branches[which]).ok());
      ASSERT_TRUE(naive.Rollback(naive_branches[which]).ok());
      cow_branches.erase(cow_branches.begin() + static_cast<long>(which));
      naive_branches.erase(naive_branches.begin() + static_cast<long>(which));
    } else {
      size_t row = rng.NextUint(64);
      int64_t value = rng.NextInt(0, 1000);
      ASSERT_TRUE(cow.Write(cow_branches[which], "t", row, 0, Value::Int(value)).ok());
      ASSERT_TRUE(naive.Write(naive_branches[which], "t", row, 0, Value::Int(value)).ok());
    }
  }
  // Full-state comparison across all live branches.
  for (size_t b = 0; b < cow_branches.size(); ++b) {
    for (size_t row = 0; row < 64; ++row) {
      auto cv = cow.Read(cow_branches[b], "t", row, 0);
      auto nv = naive.Read(naive_branches[b], "t", row, 0);
      ASSERT_TRUE(cv.ok());
      ASSERT_TRUE(nv.ok());
      EXPECT_TRUE(cv->Equals(*nv)) << "branch " << b << " row " << row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 42, 99));

}  // namespace
}  // namespace agentfirst
