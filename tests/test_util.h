#ifndef AGENTFIRST_TESTS_TEST_UTIL_H_
#define AGENTFIRST_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/engine.h"
#include "gtest/gtest.h"

namespace agentfirst {
namespace testing_util {

/// Asserts a Result is OK and yields its value.
#define AF_ASSERT_OK(expr)                                     \
  do {                                                         \
    auto _st = (expr);                                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define AF_ASSERT_OK_RESULT(result) \
  ASSERT_TRUE((result).ok()) << (result).status().ToString()

#define AF_EXPECT_OK_RESULT(result) \
  EXPECT_TRUE((result).ok()) << (result).status().ToString()

/// Builds the small, fully known test database used across suites:
///
///   people(id BIGINT, name VARCHAR, age BIGINT, city VARCHAR)
///     (1,'alice',34,'berkeley'), (2,'bob',28,'oakland'),
///     (3,'carol',41,'berkeley'), (4,'dan',19,'seattle'),
///     (5,'erin',NULL,'berkeley')
///
///   orders(order_id BIGINT, person_id BIGINT, amount DOUBLE, item VARCHAR)
///     (100,1,25.0,'coffee beans'), (101,1,7.5,'mug'),
///     (102,2,12.0,'coffee beans'), (103,3,99.0,'espresso machine'),
///     (104,9,5.0,'tea')                       -- dangling person_id
inline void BuildPeopleDb(Engine* engine) {
  auto run = [&](const std::string& sql) {
    auto r = engine->ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  run("CREATE TABLE people (id BIGINT, name VARCHAR, age BIGINT, city VARCHAR)");
  run("INSERT INTO people VALUES (1,'alice',34,'berkeley'), (2,'bob',28,'oakland'),"
      "(3,'carol',41,'berkeley'), (4,'dan',19,'seattle'), (5,'erin',NULL,'berkeley')");
  run("CREATE TABLE orders (order_id BIGINT, person_id BIGINT, amount DOUBLE,"
      " item VARCHAR)");
  run("INSERT INTO orders VALUES (100,1,25.0,'coffee beans'), (101,1,7.5,'mug'),"
      "(102,2,12.0,'coffee beans'), (103,3,99.0,'espresso machine'), (104,9,5.0,'tea')");
}

/// Catalog + engine fixture with the people/orders database loaded.
class PeopleDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&catalog_);
    BuildPeopleDb(engine_.get());
  }

  /// Runs SQL, asserting success.
  ResultSetPtr Run(const std::string& sql) {
    auto r = engine_->ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  Catalog catalog_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace testing_util
}  // namespace agentfirst

#endif  // AGENTFIRST_TESTS_TEST_UTIL_H_
