// Tests for the extended scalar function library.

#include "exec/evaluator.h"
#include "gtest/gtest.h"
#include "plan/binder.h"
#include "sql/parser.h"

namespace agentfirst {
namespace {

Value Eval(const std::string& text) {
  auto parsed = ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  if (!parsed.ok()) return Value::Null();
  Catalog catalog;
  Binder binder(&catalog);
  Schema empty;
  auto bound = binder.BindScalar(**parsed, empty);
  EXPECT_TRUE(bound.ok()) << text << " -> " << bound.status().ToString();
  if (!bound.ok()) return Value::Null();
  Row row;
  return EvalExpr(**bound, row);
}

TEST(ScalarFunctionsTest, TrimFamily) {
  EXPECT_EQ(Eval("trim('  hi  ')").string_value(), "hi");
  EXPECT_EQ(Eval("ltrim('  hi  ')").string_value(), "hi  ");
  EXPECT_EQ(Eval("rtrim('  hi  ')").string_value(), "  hi");
  EXPECT_EQ(Eval("trim('')").string_value(), "");
  EXPECT_EQ(Eval("ltrim('   ')").string_value(), "");
}

TEST(ScalarFunctionsTest, Replace) {
  EXPECT_EQ(Eval("replace('a-b-c', '-', '_')").string_value(), "a_b_c");
  EXPECT_EQ(Eval("replace('aaa', 'aa', 'b')").string_value(), "ba");
  EXPECT_EQ(Eval("replace('abc', 'x', 'y')").string_value(), "abc");
  EXPECT_EQ(Eval("replace('abc', '', 'y')").string_value(), "abc");
}

TEST(ScalarFunctionsTest, StringPredicates) {
  EXPECT_TRUE(Eval("contains('coffee beans', 'bean')").bool_value());
  EXPECT_FALSE(Eval("contains('tea', 'bean')").bool_value());
  EXPECT_TRUE(Eval("starts_with('coffee', 'cof')").bool_value());
  EXPECT_FALSE(Eval("starts_with('coffee', 'fee')").bool_value());
  EXPECT_TRUE(Eval("ends_with('coffee', 'fee')").bool_value());
  EXPECT_FALSE(Eval("ends_with('coffee', 'cof')").bool_value());
}

TEST(ScalarFunctionsTest, NullIf) {
  EXPECT_TRUE(Eval("nullif(3, 3)").is_null());
  EXPECT_EQ(Eval("nullif(3, 4)").int_value(), 3);
  EXPECT_TRUE(Eval("nullif('a', 'a')").is_null());
}

TEST(ScalarFunctionsTest, GreatestLeast) {
  EXPECT_EQ(Eval("greatest(1, 5, 3)").int_value(), 5);
  EXPECT_EQ(Eval("least(1, 5, 3)").int_value(), 1);
  EXPECT_EQ(Eval("greatest('a', 'c', 'b')").string_value(), "c");
  EXPECT_DOUBLE_EQ(Eval("greatest(1, 2.5)").double_value(), 2.5);
}

TEST(ScalarFunctionsTest, MathFunctions) {
  EXPECT_DOUBLE_EQ(Eval("sqrt(9)").double_value(), 3.0);
  EXPECT_TRUE(Eval("sqrt(-1)").is_null());
  EXPECT_DOUBLE_EQ(Eval("pow(2, 10)").double_value(), 1024.0);
  EXPECT_NEAR(Eval("ln(exp(1))").double_value(), 1.0, 1e-9);
  EXPECT_TRUE(Eval("ln(0)").is_null());
  EXPECT_DOUBLE_EQ(Eval("log10(1000)").double_value(), 3.0);
  EXPECT_EQ(Eval("sign(-7)").int_value(), -1);
  EXPECT_EQ(Eval("sign(0)").int_value(), 0);
  EXPECT_EQ(Eval("sign(0.5)").int_value(), 1);
}

TEST(ScalarFunctionsTest, StrictNullPropagation) {
  EXPECT_TRUE(Eval("trim(NULL)").is_null());
  EXPECT_TRUE(Eval("pow(NULL, 2)").is_null());
  EXPECT_TRUE(Eval("contains('x', NULL)").is_null());
}

TEST(ScalarFunctionsTest, ArityErrorsAtBindTime) {
  Catalog catalog;
  Binder binder(&catalog);
  Schema empty;
  for (const char* bad : {"trim('a','b')", "replace('a','b')", "sqrt(1,2)",
                          "nullif(1)", "sign()"}) {
    auto parsed = ParseExpression(bad);
    ASSERT_TRUE(parsed.ok()) << bad;
    EXPECT_FALSE(binder.BindScalar(**parsed, empty).ok()) << bad;
  }
}

TEST(ScalarFunctionsTest, TypeInference) {
  Catalog catalog;
  Binder binder(&catalog);
  Schema empty;
  auto type_of = [&](const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok());
    auto bound = binder.BindScalar(**parsed, empty);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound.ok() ? (*bound)->type : DataType::kNull;
  };
  EXPECT_EQ(type_of("trim('x')"), DataType::kString);
  EXPECT_EQ(type_of("contains('x','y')"), DataType::kBool);
  EXPECT_EQ(type_of("sqrt(4)"), DataType::kFloat64);
  EXPECT_EQ(type_of("sign(4)"), DataType::kInt64);
  EXPECT_EQ(type_of("nullif(1, 2)"), DataType::kInt64);
  EXPECT_EQ(type_of("greatest(1.0, 2.0)"), DataType::kFloat64);
}

}  // namespace
}  // namespace agentfirst
