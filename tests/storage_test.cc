#include <memory>

#include "gtest/gtest.h"
#include "storage/column_vector.h"
#include "storage/segment.h"
#include "storage/table.h"

namespace agentfirst {
namespace {

Schema TwoColSchema() {
  return Schema({ColumnDef("id", DataType::kInt64, false, "t"),
                 ColumnDef("name", DataType::kString, true, "t")});
}

TEST(ColumnVectorTest, AppendAndGet) {
  ColumnVector col(DataType::kInt64);
  ASSERT_TRUE(col.Append(Value::Int(7)).ok());
  ASSERT_TRUE(col.Append(Value::Null()).ok());
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Get(0).int_value(), 7);
  EXPECT_TRUE(col.Get(1).is_null());
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(0));
}

TEST(ColumnVectorTest, TypeMismatchRejected) {
  ColumnVector col(DataType::kInt64);
  EXPECT_FALSE(col.Append(Value::String("x")).ok());
  ColumnVector scol(DataType::kString);
  EXPECT_FALSE(scol.Append(Value::Int(1)).ok());
  ColumnVector bcol(DataType::kBool);
  EXPECT_FALSE(bcol.Append(Value::Int(1)).ok());
}

TEST(ColumnVectorTest, NumericCoercion) {
  ColumnVector dcol(DataType::kFloat64);
  ASSERT_TRUE(dcol.Append(Value::Int(3)).ok());
  EXPECT_DOUBLE_EQ(dcol.Get(0).double_value(), 3.0);
  ColumnVector icol(DataType::kInt64);
  ASSERT_TRUE(icol.Append(Value::Double(3.7)).ok());
  EXPECT_EQ(icol.Get(0).int_value(), 3);
}

TEST(ColumnVectorTest, SetOverwritesAndNullifies) {
  ColumnVector col(DataType::kString);
  ASSERT_TRUE(col.Append(Value::String("a")).ok());
  ASSERT_TRUE(col.Set(0, Value::String("b")).ok());
  EXPECT_EQ(col.Get(0).string_value(), "b");
  ASSERT_TRUE(col.Set(0, Value::Null()).ok());
  EXPECT_TRUE(col.Get(0).is_null());
  EXPECT_FALSE(col.Set(5, Value::String("x")).ok());
}

TEST(SegmentTest, AppendUntilFull) {
  Segment seg(TwoColSchema(), /*capacity=*/2);
  EXPECT_TRUE(seg.AppendRow({Value::Int(1), Value::String("a")}).ok());
  EXPECT_FALSE(seg.Full());
  EXPECT_TRUE(seg.AppendRow({Value::Int(2), Value::String("b")}).ok());
  EXPECT_TRUE(seg.Full());
  EXPECT_FALSE(seg.AppendRow({Value::Int(3), Value::String("c")}).ok());
  EXPECT_EQ(seg.num_rows(), 2u);
}

TEST(SegmentTest, AppendIsAllOrNothing) {
  Segment seg(TwoColSchema(), 4);
  // Second column has the wrong type; nothing should be appended.
  EXPECT_FALSE(seg.AppendRow({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_EQ(seg.num_rows(), 0u);
  EXPECT_EQ(seg.column(0).size(), 0u);
  EXPECT_EQ(seg.column(1).size(), 0u);
}

TEST(SegmentTest, ArityMismatchRejected) {
  Segment seg(TwoColSchema(), 4);
  EXPECT_FALSE(seg.AppendRow({Value::Int(1)}).ok());
}

TEST(SegmentTest, CloneIsDeep) {
  Segment seg(TwoColSchema(), 4);
  ASSERT_TRUE(seg.AppendRow({Value::Int(1), Value::String("a")}).ok());
  auto clone = seg.Clone();
  ASSERT_TRUE(clone->SetValue(0, 1, Value::String("mutated")).ok());
  EXPECT_EQ(seg.GetValue(0, 1).string_value(), "a");
  EXPECT_EQ(clone->GetValue(0, 1).string_value(), "mutated");
}

TEST(TableTest, AppendAcrossSegments) {
  Table t("t", TwoColSchema(), /*segment_capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("r" + std::to_string(i))}).ok());
  }
  EXPECT_EQ(t.NumRows(), 10u);
  EXPECT_EQ(t.NumSegments(), 4u);  // 3+3+3+1
  for (int i = 0; i < 10; ++i) {
    auto row = t.GetRow(static_cast<size_t>(i));
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[0].int_value(), i);
  }
}

TEST(TableTest, GetRowOutOfRange) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.GetRow(0).ok());
}

TEST(TableTest, SetValueBumpsVersion) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::String("a")}).ok());
  uint64_t v1 = t.data_version();
  ASSERT_TRUE(t.SetValue(0, 1, Value::String("b")).ok());
  EXPECT_GT(t.data_version(), v1);
  EXPECT_EQ(t.GetValue(0, 1)->string_value(), "b");
}

TEST(TableTest, RemoveRows) {
  Table t("t", TwoColSchema(), 2);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x")}).ok());
  }
  std::vector<uint8_t> mask = {1, 0, 1, 0, 1, 0};  // remove even positions
  ASSERT_TRUE(t.RemoveRows(mask).ok());
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.GetRow(0)->at(0).int_value(), 1);
  EXPECT_EQ(t.GetRow(1)->at(0).int_value(), 3);
  EXPECT_EQ(t.GetRow(2)->at(0).int_value(), 5);
}

TEST(TableTest, RemoveRowsMaskSizeMismatch) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::String("a")}).ok());
  EXPECT_FALSE(t.RemoveRows({1, 1}).ok());
}

TEST(TableTest, FromSegmentsSharesSegments) {
  Table t("t", TwoColSchema(), 2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x")}).ok());
  }
  auto view = Table::FromSegments("view", t.schema(), t.segments());
  EXPECT_EQ(view->NumRows(), 4u);
  // Mutating the view's shared segment is visible through both (shared
  // physical storage, as used by branch materialization).
  EXPECT_EQ(view->segments()[0].get(), t.segments()[0].get());
}

TEST(TableTest, PartialSegmentsFromBranchMaterializeReadCorrectly) {
  // Locate() must walk segments by their actual sizes, not capacity.
  auto seg1 = std::make_shared<Segment>(TwoColSchema(), 4);
  ASSERT_TRUE(seg1->AppendRow({Value::Int(1), Value::String("a")}).ok());
  auto seg2 = std::make_shared<Segment>(TwoColSchema(), 4);
  ASSERT_TRUE(seg2->AppendRow({Value::Int(2), Value::String("b")}).ok());
  auto t = Table::FromSegments("t", TwoColSchema(), {seg1, seg2});
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->GetRow(1)->at(0).int_value(), 2);
}

}  // namespace
}  // namespace agentfirst
