#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/system.h"
#include "exec/engine.h"
#include "gtest/gtest.h"
#include "io/file_util.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/column_vector.h"
#include "storage/segment.h"
#include "storage/segment_store.h"
#include "storage/table.h"
#include "test_util.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace agentfirst {
namespace {

Schema TwoColSchema() {
  return Schema({ColumnDef("id", DataType::kInt64, false, "t"),
                 ColumnDef("name", DataType::kString, true, "t")});
}

TEST(ColumnVectorTest, AppendAndGet) {
  ColumnVector col(DataType::kInt64);
  ASSERT_TRUE(col.Append(Value::Int(7)).ok());
  ASSERT_TRUE(col.Append(Value::Null()).ok());
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Get(0).int_value(), 7);
  EXPECT_TRUE(col.Get(1).is_null());
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(0));
}

TEST(ColumnVectorTest, TypeMismatchRejected) {
  ColumnVector col(DataType::kInt64);
  EXPECT_FALSE(col.Append(Value::String("x")).ok());
  ColumnVector scol(DataType::kString);
  EXPECT_FALSE(scol.Append(Value::Int(1)).ok());
  ColumnVector bcol(DataType::kBool);
  EXPECT_FALSE(bcol.Append(Value::Int(1)).ok());
}

TEST(ColumnVectorTest, NumericCoercion) {
  ColumnVector dcol(DataType::kFloat64);
  ASSERT_TRUE(dcol.Append(Value::Int(3)).ok());
  EXPECT_DOUBLE_EQ(dcol.Get(0).double_value(), 3.0);
  ColumnVector icol(DataType::kInt64);
  ASSERT_TRUE(icol.Append(Value::Double(3.7)).ok());
  EXPECT_EQ(icol.Get(0).int_value(), 3);
}

TEST(ColumnVectorTest, SetOverwritesAndNullifies) {
  ColumnVector col(DataType::kString);
  ASSERT_TRUE(col.Append(Value::String("a")).ok());
  ASSERT_TRUE(col.Set(0, Value::String("b")).ok());
  EXPECT_EQ(col.Get(0).string_value(), "b");
  ASSERT_TRUE(col.Set(0, Value::Null()).ok());
  EXPECT_TRUE(col.Get(0).is_null());
  EXPECT_FALSE(col.Set(5, Value::String("x")).ok());
}

TEST(SegmentTest, AppendUntilFull) {
  Segment seg(TwoColSchema(), /*capacity=*/2);
  EXPECT_TRUE(seg.AppendRow({Value::Int(1), Value::String("a")}).ok());
  EXPECT_FALSE(seg.Full());
  EXPECT_TRUE(seg.AppendRow({Value::Int(2), Value::String("b")}).ok());
  EXPECT_TRUE(seg.Full());
  EXPECT_FALSE(seg.AppendRow({Value::Int(3), Value::String("c")}).ok());
  EXPECT_EQ(seg.num_rows(), 2u);
}

TEST(SegmentTest, AppendIsAllOrNothing) {
  Segment seg(TwoColSchema(), 4);
  // Second column has the wrong type; nothing should be appended.
  EXPECT_FALSE(seg.AppendRow({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_EQ(seg.num_rows(), 0u);
  EXPECT_EQ(seg.column(0).size(), 0u);
  EXPECT_EQ(seg.column(1).size(), 0u);
}

TEST(SegmentTest, ArityMismatchRejected) {
  Segment seg(TwoColSchema(), 4);
  EXPECT_FALSE(seg.AppendRow({Value::Int(1)}).ok());
}

TEST(SegmentTest, CloneIsDeep) {
  Segment seg(TwoColSchema(), 4);
  ASSERT_TRUE(seg.AppendRow({Value::Int(1), Value::String("a")}).ok());
  auto clone = seg.Clone();
  ASSERT_TRUE(clone->SetValue(0, 1, Value::String("mutated")).ok());
  EXPECT_EQ(seg.GetValue(0, 1).string_value(), "a");
  EXPECT_EQ(clone->GetValue(0, 1).string_value(), "mutated");
}

TEST(TableTest, AppendAcrossSegments) {
  Table t("t", TwoColSchema(), /*segment_capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("r" + std::to_string(i))}).ok());
  }
  EXPECT_EQ(t.NumRows(), 10u);
  EXPECT_EQ(t.NumSegments(), 4u);  // 3+3+3+1
  for (int i = 0; i < 10; ++i) {
    auto row = t.GetRow(static_cast<size_t>(i));
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[0].int_value(), i);
  }
}

TEST(TableTest, GetRowOutOfRange) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.GetRow(0).ok());
}

TEST(TableTest, SetValueBumpsVersion) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::String("a")}).ok());
  uint64_t v1 = t.data_version();
  ASSERT_TRUE(t.SetValue(0, 1, Value::String("b")).ok());
  EXPECT_GT(t.data_version(), v1);
  EXPECT_EQ(t.GetValue(0, 1)->string_value(), "b");
}

TEST(TableTest, RemoveRows) {
  Table t("t", TwoColSchema(), 2);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x")}).ok());
  }
  std::vector<uint8_t> mask = {1, 0, 1, 0, 1, 0};  // remove even positions
  ASSERT_TRUE(t.RemoveRows(mask).ok());
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.GetRow(0)->at(0).int_value(), 1);
  EXPECT_EQ(t.GetRow(1)->at(0).int_value(), 3);
  EXPECT_EQ(t.GetRow(2)->at(0).int_value(), 5);
}

TEST(TableTest, RemoveRowsMaskSizeMismatch) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::String("a")}).ok());
  EXPECT_FALSE(t.RemoveRows({1, 1}).ok());
}

TEST(TableTest, FromSegmentsSharesSegments) {
  Table t("t", TwoColSchema(), 2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x")}).ok());
  }
  auto view = Table::FromSegments("view", t.schema(), t.segments());
  EXPECT_EQ(view->NumRows(), 4u);
  // Mutating the view's shared segment is visible through both (shared
  // physical storage, as used by branch materialization).
  EXPECT_EQ(view->segments()[0].get(), t.segments()[0].get());
}

TEST(TableTest, PartialSegmentsFromBranchMaterializeReadCorrectly) {
  // Locate() must walk segments by their actual sizes, not capacity.
  auto seg1 = std::make_shared<Segment>(TwoColSchema(), 4);
  ASSERT_TRUE(seg1->AppendRow({Value::Int(1), Value::String("a")}).ok());
  auto seg2 = std::make_shared<Segment>(TwoColSchema(), 4);
  ASSERT_TRUE(seg2->AppendRow({Value::Int(2), Value::String("b")}).ok());
  auto t = Table::FromSegments("t", TwoColSchema(), {seg1, seg2});
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->GetRow(1)->at(0).int_value(), 2);
}

// ---------------------------------------------------------------------------
// Paged storage: segment codec, page store, lazy clone, buffer pool.
// ---------------------------------------------------------------------------

std::string StorageTempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/storage_test_" + name;
  (void)io::RemoveFile(dir + "/pages.af");
  EXPECT_TRUE(io::CreateDirectories(dir).ok());
  return dir;
}

Schema AllTypesSchema() {
  return Schema({ColumnDef("i", DataType::kInt64, true, "t"),
                 ColumnDef("d", DataType::kFloat64, true, "t"),
                 ColumnDef("b", DataType::kBool, true, "t"),
                 ColumnDef("s", DataType::kString, true, "t")});
}

std::shared_ptr<Segment> MakeAllTypesSegment(size_t rows) {
  auto seg = std::make_shared<Segment>(AllTypesSchema(), rows + 2);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(r % 5 == 0 ? Value::Null()
                             : Value::Int(static_cast<int64_t>(r) - 3));
    row.push_back(r % 7 == 0 ? Value::Null() : Value::Double(r * 0.25 - 1.5));
    row.push_back(r % 3 == 0 ? Value::Null() : Value::Bool(r % 2 == 0));
    row.push_back(r % 4 == 0 ? Value::Null()
                             : Value::String("row-" + std::to_string(r) +
                                             std::string(r % 11, 'x')));
    EXPECT_TRUE(seg->AppendRow(row).ok());
  }
  return seg;
}

void ExpectSegmentsEqual(const Segment& a, const Segment& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      const Value va = a.GetValue(r, c);
      const Value vb = b.GetValue(r, c);
      ASSERT_EQ(va.is_null(), vb.is_null()) << "row " << r << " col " << c;
      if (!va.is_null()) {
        EXPECT_TRUE(va.Equals(vb)) << "row " << r << " col " << c << ": "
                                   << va.ToString() << " vs " << vb.ToString();
      }
    }
  }
}

TEST(SegmentCodecTest, RoundTripAllTypesWithNulls) {
  auto seg = MakeAllTypesSegment(57);
  std::string body = storage::SegmentStore::EncodeSegment(*seg);
  auto decoded = storage::SegmentStore::DecodeSegment(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSegmentsEqual(*seg, **decoded);
  EXPECT_EQ((*decoded)->capacity(), seg->capacity());
  // Determinism: re-encoding the decoded segment is byte-identical.
  EXPECT_EQ(storage::SegmentStore::EncodeSegment(**decoded), body);
}

TEST(SegmentCodecTest, RoundTripEmptySegment) {
  Segment seg(AllTypesSchema(), 8);
  auto decoded =
      storage::SegmentStore::DecodeSegment(storage::SegmentStore::EncodeSegment(seg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)->num_rows(), 0u);
}

TEST(SegmentCodecTest, HostileBytesAreErrorsNotUb) {
  auto seg = MakeAllTypesSegment(9);
  std::string body = storage::SegmentStore::EncodeSegment(*seg);
  // Truncations at every prefix length and single-byte corruption at every
  // offset must come back as Status, never crash.
  for (size_t cut = 0; cut < body.size(); cut += 3) {
    auto r = storage::SegmentStore::DecodeSegment(body.substr(0, cut));
    if (r.ok()) {
      // A prefix may accidentally decode only if it is self-consistent; the
      // full-body decode below is the real contract.
      continue;
    }
  }
  for (size_t flip = 0; flip < body.size(); flip += 7) {
    std::string bad = body;
    bad[flip] = static_cast<char>(bad[flip] ^ 0x5f);
    auto r = storage::SegmentStore::DecodeSegment(bad);
    (void)r;  // ok() or error both fine; must not crash/UB
  }
  EXPECT_TRUE(storage::SegmentStore::DecodeSegment(body).ok());
}

TEST(SegmentStoreTest, WriteReadFreeReuse) {
  std::string dir = StorageTempDir("store_reuse");
  auto store = storage::SegmentStore::Open(dir + "/pages.af");
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto seg = MakeAllTypesSegment(23);
  auto id1 = (*store)->Write(*seg);
  ASSERT_TRUE(id1.ok()) << id1.status().ToString();
  auto back = (*store)->Read(*id1);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSegmentsEqual(*seg, **back);
  uint64_t high_water = (*store)->FileBytes();
  // Freeing and re-writing an identically sized segment reuses the extent:
  // the file must not grow.
  (*store)->Free(*id1);
  auto id2 = (*store)->Write(*seg);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ((*store)->FileBytes(), high_water);
  EXPECT_EQ(id2->offset, id1->offset);
  EXPECT_TRUE((*store)->Sync().ok());
}

TEST(SegmentStoreTest, CorruptPageRejected) {
  std::string dir = StorageTempDir("store_corrupt");
  auto store = storage::SegmentStore::Open(dir + "/pages.af");
  ASSERT_TRUE(store.ok());
  auto seg = MakeAllTypesSegment(15);
  auto id = (*store)->Write(*seg);
  ASSERT_TRUE(id.ok());
  // Flip one byte in the middle of the page, in place, through a second
  // non-truncating handle on the same inode.
  {
    auto patch = io::File::OpenForUpdate(dir + "/pages.af");
    ASSERT_TRUE(patch.ok()) << patch.status().ToString();
    uint64_t victim = id->offset + id->length / 2;
    auto byte = patch->ReadAt(victim, 1);
    ASSERT_TRUE(byte.ok());
    std::string flipped(1, static_cast<char>((*byte)[0] ^ 0xff));
    ASSERT_TRUE(patch->WriteAt(victim, flipped).ok());
  }
  auto back = (*store)->Read(*id);
  ASSERT_FALSE(back.ok());
}

TEST(SegmentTest, CloneSharesColumnsUntilWritten) {
  Segment seg(TwoColSchema(), 8);
  ASSERT_TRUE(seg.AppendRow({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(seg.AppendRow({Value::Int(2), Value::String("b")}).ok());
  auto clone = seg.Clone();
  // Lazy COW: a fresh clone shares every column with its source.
  EXPECT_TRUE(seg.ColumnShared(0));
  EXPECT_TRUE(seg.ColumnShared(1));
  // Writing one cell in the clone detaches only the touched column.
  ASSERT_TRUE(clone->SetValue(0, 1, Value::String("mutated")).ok());
  EXPECT_TRUE(seg.ColumnShared(0));
  EXPECT_FALSE(clone->ColumnShared(1));
  EXPECT_EQ(seg.GetValue(0, 1).string_value(), "a");
  EXPECT_EQ(clone->GetValue(0, 1).string_value(), "mutated");
  // Appends to the source detach its columns, so the clone never sees them.
  ASSERT_TRUE(seg.AppendRow({Value::Int(3), Value::String("c")}).ok());
  EXPECT_EQ(clone->num_rows(), 2u);
  EXPECT_EQ(clone->column(0).size(), 2u);
}

TEST(BufferPoolTest, EvictFaultRoundTripByteIdentity) {
  std::string dir = StorageTempDir("pool_basic");
  storage::StorageOptions opts;
  opts.dir = dir;
  opts.max_table_bytes = 1;  // evict everything unpinned
  auto pool = storage::BufferPool::Open(opts);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();

  uint64_t faults_before =
      obs::MetricsRegistry::Default().GetCounter("af.storage.faults")->value();
  std::vector<std::shared_ptr<Segment>> originals;
  std::vector<uint64_t> frames;
  for (int i = 0; i < 6; ++i) {
    originals.push_back(MakeAllTypesSegment(10 + i * 3));
    // Keep our own deep copy; the pool owns the registered segment.
    frames.push_back((*pool)->Register(originals.back()->Clone()));
  }
  // Registration-time eviction pressure: with a 1-byte budget, earlier
  // frames were written back and dropped.
  EXPECT_LT((*pool)->ResidentBytes(), originals.back()->MemoryBytes() * 6);
  for (size_t i = 0; i < frames.size(); ++i) {
    auto pin = (*pool)->Pin(frames[i]);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    ExpectSegmentsEqual(*originals[i], **pin);
  }
  EXPECT_GT(
      obs::MetricsRegistry::Default().GetCounter("af.storage.faults")->value(),
      faults_before);
  for (uint64_t f : frames) (*pool)->Unregister(f);
  EXPECT_EQ((*pool)->ResidentBytes(), 0u);
}

TEST(BufferPoolTest, DirtyWriteBackSurvivesEviction) {
  std::string dir = StorageTempDir("pool_dirty");
  storage::StorageOptions opts;
  opts.dir = dir;
  opts.max_table_bytes = 1;
  auto pool = storage::BufferPool::Open(opts);
  ASSERT_TRUE(pool.ok());
  uint64_t frame = (*pool)->Register(MakeAllTypesSegment(12));
  {
    auto pin = (*pool)->Pin(frame);
    ASSERT_TRUE(pin.ok());
    ASSERT_TRUE(
        pin->mutable_segment()->SetValue(3, 3, Value::String("dirty!")).ok());
    (*pool)->MarkDirty(frame);
  }
  // Force the dirty frame out by registering more data than the budget.
  uint64_t other = (*pool)->Register(MakeAllTypesSegment(40));
  ASSERT_FALSE((*pool)->FrameResident(frame));
  auto pin = (*pool)->Pin(frame);
  ASSERT_TRUE(pin.ok()) << pin.status().ToString();
  EXPECT_EQ((*pin)->GetValue(3, 3).string_value(), "dirty!");
  (*pool)->Unregister(frame);
  (*pool)->Unregister(other);
}

TEST(BufferPoolTest, SharedSegmentsAreNeverEvicted) {
  std::string dir = StorageTempDir("pool_shared");
  storage::StorageOptions opts;
  opts.dir = dir;
  opts.max_table_bytes = 1;
  auto pool = storage::BufferPool::Open(opts);
  ASSERT_TRUE(pool.ok());
  // A branch-style alias: the pool is not the sole owner, so the frame must
  // survive arbitrary pressure (eviction would break snapshot isolation).
  std::shared_ptr<Segment> alias = MakeAllTypesSegment(10);
  uint64_t shared_frame = (*pool)->Register(alias);
  (void)(*pool)->Register(MakeAllTypesSegment(50));
  EXPECT_TRUE((*pool)->FrameResident(shared_frame));
  // Dropping the alias makes it evictable again.
  alias.reset();
  uint64_t third = (*pool)->Register(MakeAllTypesSegment(50));
  EXPECT_FALSE((*pool)->FrameResident(shared_frame));
  auto pin = (*pool)->Pin(shared_frame);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ((*pin)->num_rows(), 10u);
  (void)third;
}

TEST(BufferPoolTest, FlushAllKeepsFramesResident) {
  std::string dir = StorageTempDir("pool_flush");
  storage::StorageOptions opts;
  opts.dir = dir;  // unlimited budget
  auto pool = storage::BufferPool::Open(opts);
  ASSERT_TRUE(pool.ok());
  uint64_t frame = (*pool)->Register(MakeAllTypesSegment(12));
  ASSERT_TRUE((*pool)->FlushAll().ok());
  EXPECT_TRUE((*pool)->FrameResident(frame));
  auto pin = (*pool)->Pin(frame);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ((*pin)->num_rows(), 12u);
}

// Concurrent pin storm: N threads hammer random frames under a budget that
// forces continuous evict/fault churn. Every read must see the registered
// data; run under TSan via tools/check.sh stage 10.
class BufferPoolPinStormTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferPoolPinStormTest, ConcurrentPinsSeeConsistentData) {
  const size_t nthreads = GetParam();
  std::string dir = StorageTempDir("pool_storm_" + std::to_string(nthreads));
  storage::StorageOptions opts;
  opts.dir = dir;
  opts.max_table_bytes = 4096;  // a couple of segments' worth
  auto pool = storage::BufferPool::Open(opts);
  ASSERT_TRUE(pool.ok());

  constexpr size_t kFrames = 12;
  std::vector<uint64_t> frames;
  for (size_t i = 0; i < kFrames; ++i) {
    auto seg = std::make_shared<Segment>(
        Schema({ColumnDef("v", DataType::kInt64, false, "t")}), 16);
    for (int r = 0; r < 16; ++r) {
      ASSERT_TRUE(
          seg->AppendRow({Value::Int(static_cast<int64_t>(i * 100 + r))}).ok());
    }
    frames.push_back((*pool)->Register(std::move(seg)));
  }

  std::atomic<size_t> errors{0};
  // Dedicated threads, not the shared pool: the storm must reach the exact
  // parameterized concurrency regardless of the pool's size.
  // aflint:allow(raw-thread)
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (size_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t]() {
      uint64_t x = 0x9e3779b97f4a7c15ull ^ t;
      for (int iter = 0; iter < 400; ++iter) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        size_t i = static_cast<size_t>(x % kFrames);
        auto pin = (*pool)->Pin(frames[i]);
        if (!pin.ok()) {
          ++errors;
          continue;
        }
        const Segment& seg = **pin;
        if (seg.num_rows() != 16 ||
            seg.GetValue(5, 0).int_value() !=
                static_cast<int64_t>(i * 100 + 5)) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  for (uint64_t f : frames) (*pool)->Unregister(f);
}

INSTANTIATE_TEST_SUITE_P(Threads, BufferPoolPinStormTest,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// End-to-end: pooled tables answer queries byte-identically to unpooled
// ones, through both the row and vectorized paths, at 1/2/4/8 threads,
// with a budget small enough that segments fault mid-scan.
// ---------------------------------------------------------------------------

void LoadWideTable(Engine* engine) {
  AF_ASSERT_OK_RESULT(engine->ExecuteSql(
      "CREATE TABLE wide (id BIGINT, grp VARCHAR, score DOUBLE, flag BOOLEAN)"));
  // Many small INSERT batches so the table spans many segments.
  for (int batch = 0; batch < 20; ++batch) {
    std::string sql = "INSERT INTO wide VALUES ";
    for (int r = 0; r < 25; ++r) {
      int id = batch * 25 + r;
      if (r > 0) sql += ",";
      sql += "(" + std::to_string(id) + ",'g" + std::to_string(id % 7) + "'," +
             std::to_string(id % 13) + ".5," +
             (id % 2 == 0 ? "true" : "false") + ")";
    }
    AF_ASSERT_OK_RESULT(engine->ExecuteSql(sql));
  }
}

TEST(PooledTableTest, QueriesByteIdenticalToUnpooledAcrossThreads) {
  // Reference: fully resident, classic in-memory table.
  Catalog ref_catalog;
  Engine ref_engine(&ref_catalog);
  LoadWideTable(&ref_engine);

  // Subject: same data behind a pool whose budget is ~10% of the table.
  // Declared before the catalog: tables unregister their frames in ~Table, so
  // the pool must outlive every catalog that points at it (the same ordering
  // AgentFirstSystem encodes in its member declaration order).
  std::unique_ptr<storage::BufferPool> pool;
  Catalog catalog;
  Engine engine(&catalog);
  LoadWideTable(&engine);
  auto table = catalog.GetTable("wide");
  ASSERT_TRUE(table.ok());
  // Use a small segment capacity table? (capacity default 1024 => single
  // segment). Rebuild with small segments so eviction has granularity.
  AF_ASSERT_OK_RESULT(engine.ExecuteSql("DROP TABLE wide"));
  {
    Schema schema(
        {ColumnDef("id", DataType::kInt64, true, "wide"),
         ColumnDef("grp", DataType::kString, true, "wide"),
         ColumnDef("score", DataType::kFloat64, true, "wide"),
         ColumnDef("flag", DataType::kBool, true, "wide")});
    auto small = std::make_shared<Table>("wide", schema, /*segment_capacity=*/32);
    AF_ASSERT_OK(catalog.RegisterTable(small));
    for (int id = 0; id < 500; ++id) {
      AF_ASSERT_OK(small->AppendRow(
          {Value::Int(id), Value::String("g" + std::to_string(id % 7)),
           Value::Double((id % 13) + 0.5), Value::Bool(id % 2 == 0)}));
    }
  }
  std::string dir = StorageTempDir("pooled_queries");
  storage::StorageOptions opts;
  opts.dir = dir;
  auto pooled_table = catalog.GetTable("wide");
  ASSERT_TRUE(pooled_table.ok());
  opts.max_table_bytes = (*pooled_table)->TotalBytes() / 10;
  ASSERT_GT(opts.max_table_bytes, 0u);
  auto opened = storage::BufferPool::Open(opts);
  ASSERT_TRUE(opened.ok());
  pool = std::move(*opened);
  catalog.SetBufferPool(pool.get());
  EXPECT_TRUE((*pooled_table)->pooled());

  uint64_t faults_before =
      obs::MetricsRegistry::Default().GetCounter("af.storage.faults")->value();
  const char* queries[] = {
      "SELECT COUNT(*), SUM(id), MIN(score), MAX(score) FROM wide",
      "SELECT grp, COUNT(*), SUM(score) FROM wide GROUP BY grp ORDER BY grp",
      "SELECT id, grp FROM wide WHERE score > 9.0 AND flag = true ORDER BY id",
      "SELECT COUNT(*) FROM wide WHERE grp = 'g3' OR id < 50",
  };
  for (bool vectorized : {false, true}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ExecOptions eo;
      eo.vectorized = vectorized;
      eo.num_threads = threads;
      eo.cache_subplans = false;
      for (const char* q : queries) {
        auto expect = ref_engine.ExecuteSql(q, eo);
        AF_ASSERT_OK_RESULT(expect);
        auto got = engine.ExecuteSql(q, eo);
        AF_ASSERT_OK_RESULT(got);
        EXPECT_EQ((*got)->ToString(1000), (*expect)->ToString(1000))
            << q << " vectorized=" << vectorized << " threads=" << threads;
      }
    }
  }
  EXPECT_GT(
      obs::MetricsRegistry::Default().GetCounter("af.storage.faults")->value(),
      faults_before);
  EXPECT_LE(pool->ResidentBytes(),
            opts.max_table_bytes + (*pooled_table)->TotalBytes() / 3);

  // Mutations through the pooled path: UPDATE + DELETE must round-trip the
  // dirty write-back machinery and still match the reference.
  ExecOptions eo;
  AF_ASSERT_OK_RESULT(
      engine.ExecuteSql("UPDATE wide SET score = 99.5 WHERE id % 50 = 0", eo));
  AF_ASSERT_OK_RESULT(
      ref_engine.ExecuteSql("UPDATE wide SET score = 99.5 WHERE id % 50 = 0", eo));
  AF_ASSERT_OK_RESULT(engine.ExecuteSql("DELETE FROM wide WHERE id % 71 = 3", eo));
  AF_ASSERT_OK_RESULT(
      ref_engine.ExecuteSql("DELETE FROM wide WHERE id % 71 = 3", eo));
  auto expect = ref_engine.ExecuteSql(
      "SELECT COUNT(*), SUM(id), SUM(score) FROM wide", eo);
  auto got = engine.ExecuteSql(
      "SELECT COUNT(*), SUM(id), SUM(score) FROM wide", eo);
  AF_ASSERT_OK_RESULT(expect);
  AF_ASSERT_OK_RESULT(got);
  EXPECT_EQ((*got)->ToString(1000), (*expect)->ToString(1000));
}

// ---------------------------------------------------------------------------
// Composition with durability: eviction churns while a checkpoint runs, the
// process "dies", and recovery on the same data dir is byte-identical.
// ---------------------------------------------------------------------------

TEST(PooledDurabilityTest, EvictionRacesCheckpointThenRecoversByteIdentical) {
  std::string dir = StorageTempDir("pooled_wal");
  (void)io::RemoveFile(wal::WalPath(dir));
  (void)io::RemoveFile(wal::CheckpointPath(dir));
  std::string canonical_before;
  {
    AgentFirstSystem sys;
    wal::DurabilityOptions durability;
    durability.data_dir = dir;
    durability.fsync = wal::FsyncPolicy::kNever;  // speed; not crash-testing fsync
    AF_ASSERT_OK(sys.EnableDurability(durability));
    storage::StorageOptions paging;
    paging.dir = dir + "/pages";
    paging.max_table_bytes = 2048;
    AF_ASSERT_OK(sys.EnableStorage(paging));

    AF_ASSERT_OK_RESULT(sys.ExecuteSql(
        "CREATE TABLE t (id BIGINT, payload VARCHAR)"));
    for (int batch = 0; batch < 10; ++batch) {
      std::string sql = "INSERT INTO t VALUES ";
      for (int r = 0; r < 40; ++r) {
        int id = batch * 40 + r;
        if (r > 0) sql += ",";
        sql += "(" + std::to_string(id) + ",'payload-" + std::to_string(id) +
               std::string(17, 'p') + "')";
      }
      AF_ASSERT_OK_RESULT(sys.ExecuteSql(sql));
    }

    // Checkpoint while reader threads churn the pool: AppendState pins one
    // segment at a time, so eviction and checkpointing overlap.
    std::atomic<bool> stop{false};
    // Out-of-pool readers so they genuinely overlap the checkpoint loop even
    // on a single-worker shared pool. aflint:allow(raw-thread)
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&]() {
        while (!stop.load(std::memory_order_relaxed)) {
          auto r = sys.ExecuteSql("SELECT COUNT(*), MIN(id), MAX(id) FROM t");
          if (!r.ok()) return;
        }
      });
    }
    for (int i = 0; i < 5; ++i) AF_ASSERT_OK(sys.CheckpointNow());
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : readers) th.join();

    auto canonical = wal::EncodeCanonicalState(*sys.catalog(), sys.memory());
    AF_ASSERT_OK_RESULT(canonical);
    canonical_before = *canonical;
    // No clean shutdown: the system is dropped with the pool holding
    // evicted segments — recovery must not need the page file.
  }
  // Delete the page file outright: it is a cache, recovery owes it nothing.
  (void)io::RemoveFile(dir + "/pages/pages.af");
  {
    AgentFirstSystem sys;
    wal::DurabilityOptions durability;
    durability.data_dir = dir;
    AF_ASSERT_OK(sys.EnableDurability(durability));
    storage::StorageOptions paging;
    paging.dir = dir + "/pages";
    paging.max_table_bytes = 2048;
    AF_ASSERT_OK(sys.EnableStorage(paging));
    auto canonical = wal::EncodeCanonicalState(*sys.catalog(), sys.memory());
    AF_ASSERT_OK_RESULT(canonical);
    EXPECT_EQ(*canonical, canonical_before);
    // And the recovered, re-pooled table still answers queries.
    auto r = sys.ExecuteSql("SELECT COUNT(*) FROM t");
    AF_ASSERT_OK_RESULT(r);
    EXPECT_EQ((*r)->rows[0][0].int_value(), 400);
  }
}

}  // namespace
}  // namespace agentfirst
