// Property-based fuzzing of the whole SQL pipeline: a seeded random query
// generator produces SELECTs over a known schema; each query must
//   (a) render to text that re-parses to the same text (round trip),
//   (b) produce identical results with and without the rewrite rules,
//   (c) produce identical results when run through the shared cache,
//   (d) never crash the executor.

#include <functional>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "opt/mqo.h"
#include "opt/rules.h"
#include "plan/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace agentfirst {
namespace {

/// Random query generator over the people/orders test schema.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    bool join = rng_.NextBool(0.4);
    bool aggregate = rng_.NextBool(0.4);
    std::string sql = "SELECT ";
    std::string from = join ? "people JOIN orders ON people.id = orders.person_id"
                            : (rng_.NextBool(0.5) ? "people" : "orders");
    bool people_side = join || from == "people";

    if (aggregate) {
      std::vector<std::string> aggs;
      const char* numeric = people_side ? "age" : "amount";
      switch (rng_.NextUint(5)) {
        case 0: aggs.push_back("count(*)"); break;
        case 1: aggs.push_back(std::string("sum(") + numeric + ")"); break;
        case 2: aggs.push_back(std::string("avg(") + numeric + ")"); break;
        case 3: aggs.push_back(std::string("min(") + numeric + ")"); break;
        default: aggs.push_back(std::string("max(") + numeric + ")"); break;
      }
      bool grouped = rng_.NextBool(0.5);
      std::string group_col = people_side ? "city" : "item";
      if (grouped) {
        sql += group_col + ", " + aggs[0] + " FROM " + from;
      } else {
        sql += aggs[0] + " FROM " + from;
      }
      std::string where = RandomPredicate(people_side);
      if (!where.empty()) sql += " WHERE " + where;
      if (grouped) {
        sql += " GROUP BY " + group_col;
        if (rng_.NextBool(0.3)) sql += " HAVING count(*) > 0";
        if (rng_.NextBool(0.5)) sql += " ORDER BY " + group_col;
      }
    } else {
      std::string cols = people_side ? "name, age" : "order_id, amount";
      if (join) cols = "name, amount";
      sql += cols + " FROM " + from;
      std::string where = RandomPredicate(people_side);
      if (!where.empty()) sql += " WHERE " + where;
      if (rng_.NextBool(0.5)) {
        sql += people_side ? " ORDER BY name" : " ORDER BY order_id";
        if (rng_.NextBool(0.4)) sql += " DESC";
      }
      if (rng_.NextBool(0.3)) {
        sql += " LIMIT " + std::to_string(1 + rng_.NextUint(5));
      }
    }
    return sql;
  }

 private:
  std::string RandomPredicate(bool people_side) {
    int n = static_cast<int>(rng_.NextUint(3));  // 0..2 conjuncts
    std::vector<std::string> conjuncts;
    for (int i = 0; i < n; ++i) {
      if (people_side) {
        switch (rng_.NextUint(5)) {
          case 0: conjuncts.push_back("age > " + std::to_string(rng_.NextInt(15, 45))); break;
          case 1: conjuncts.push_back("city = 'berkeley'"); break;
          case 2: conjuncts.push_back("name LIKE '%a%'"); break;
          case 3: conjuncts.push_back("age IS NOT NULL"); break;
          default: conjuncts.push_back("id IN (1, 2, 3)"); break;
        }
      } else {
        switch (rng_.NextUint(4)) {
          case 0: conjuncts.push_back("amount > " + std::to_string(rng_.NextInt(1, 90))); break;
          case 1: conjuncts.push_back("item LIKE '%coffee%'"); break;
          case 2: conjuncts.push_back("amount BETWEEN 5 AND 50"); break;
          default: conjuncts.push_back("person_id <> 9"); break;
        }
      }
    }
    std::string out;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i > 0) out += rng_.NextBool(0.8) ? " AND " : " OR ";
      out += conjuncts[i];
    }
    return out;
  }

  Rng rng_;
};

std::vector<std::string> Serialize(const ResultSet& rs) {
  std::vector<std::string> rows;
  for (const Row& r : rs.rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class FuzzSqlTest : public testing_util::PeopleDbTest,
                    public ::testing::WithParamInterface<uint64_t> {};

TEST_P(FuzzSqlTest, PipelineProperties) {
  QueryGenerator generator(GetParam());
  BatchExecutor shared_batch;
  for (int i = 0; i < 60; ++i) {
    std::string sql = generator.Generate();
    SCOPED_TRACE(sql);

    // (a) Round trip.
    auto parsed = ParseSelect(sql);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    std::string rendered = (*parsed)->ToString();
    auto reparsed = ParseSelect(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    EXPECT_EQ(rendered, (*reparsed)->ToString());

    // Bind.
    Binder binder(&catalog_);
    auto plan = binder.BindSelect(**parsed);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    // (b) Rewrites preserve results.
    auto raw = ExecutePlan(**plan);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    PlanPtr optimized = OptimizePlan(*plan);
    auto opt = ExecutePlan(*optimized);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();
    // ORDER BY ... LIMIT can legitimately pick different ties; compare row
    // multisets only when no LIMIT is present under an ORDER BY.
    bool has_limit = sql.find("LIMIT") != std::string::npos;
    bool has_order = sql.find("ORDER BY") != std::string::npos;
    if (!(has_limit && has_order)) {
      EXPECT_EQ(Serialize(**raw), Serialize(**opt));
    } else {
      EXPECT_EQ((*raw)->rows.size(), (*opt)->rows.size());
    }

    // (c) Shared-cache execution equals direct execution.
    auto cached = shared_batch.ExecuteBatch({optimized});
    ASSERT_TRUE(cached[0].ok());
    EXPECT_EQ(Serialize(**opt), Serialize(**cached[0]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSqlTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace agentfirst
