#include "types/value.h"

#include "gtest/gtest.h"
#include "types/schema.h"

namespace agentfirst {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Constructors) {
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(5).int_value(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int(1).Equals(Value::Double(1.0)));
  EXPECT_FALSE(Value::Int(1).Equals(Value::Double(1.5)));
  EXPECT_TRUE(Value::Double(2.0).Equals(Value::Int(2)));
}

TEST(ValueTest, NullEqualsNullForGrouping) {
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_FALSE(Value::Int(0).Equals(Value::Null()));
}

TEST(ValueTest, StringEquality) {
  EXPECT_TRUE(Value::String("abc").Equals(Value::String("abc")));
  EXPECT_FALSE(Value::String("abc").Equals(Value::String("abd")));
  EXPECT_FALSE(Value::String("1").Equals(Value::Int(1)));
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(5).Compare(Value::String("")), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_GT(Value::Int(4).Compare(Value::Double(3.5)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
}

// Property: Equals implies equal Hash (over a representative value set).
class ValuePairTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

std::vector<Value> RepresentativeValues() {
  return {Value::Null(),        Value::Bool(false),  Value::Bool(true),
          Value::Int(0),        Value::Int(1),       Value::Int(-7),
          Value::Int(1 << 20),  Value::Double(0.0),  Value::Double(1.0),
          Value::Double(-7.0),  Value::Double(0.5),  Value::String(""),
          Value::String("a"),   Value::String("ab"), Value::String("1")};
}

TEST_P(ValuePairTest, EqualsImpliesEqualHash) {
  auto values = RepresentativeValues();
  const Value& a = values[GetParam().first];
  const Value& b = values[GetParam().second];
  if (a.Equals(b)) {
    EXPECT_EQ(a.Hash(), b.Hash()) << a.ToString() << " vs " << b.ToString();
  }
}

TEST_P(ValuePairTest, CompareAntisymmetric) {
  auto values = RepresentativeValues();
  const Value& a = values[GetParam().first];
  const Value& b = values[GetParam().second];
  EXPECT_EQ(a.Compare(b), -b.Compare(a));
}

std::vector<std::pair<int, int>> AllPairs() {
  std::vector<std::pair<int, int>> pairs;
  int n = static_cast<int>(RepresentativeValues().size());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, ValuePairTest, ::testing::ValuesIn(AllPairs()));

TEST(ValueTest, IntDoubleHashAgreement) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Double(42.0).Hash());
}

TEST(ValueTest, AsDoubleAndAsInt) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
  EXPECT_EQ(Value::Double(3.9).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
  EXPECT_EQ(Value::Null().AsInt(), 0);
}

TEST(ValueTest, ToSqlLiteralQuotesStrings) {
  EXPECT_EQ(Value::String("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Int(5).ToSqlLiteral(), "5");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
}

TEST(RowTest, HashRowOrderDependent) {
  Row a = {Value::Int(1), Value::Int(2)};
  Row b = {Value::Int(2), Value::Int(1)};
  EXPECT_NE(HashRow(a), HashRow(b));
  EXPECT_EQ(HashRow(a), HashRow({Value::Int(1), Value::Int(2)}));
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(SchemaTest, FindColumnUnqualified) {
  Schema s({ColumnDef("a", DataType::kInt64, true, "t"),
            ColumnDef("b", DataType::kString, true, "t")});
  EXPECT_EQ(s.FindColumn("a").value(), 0u);
  EXPECT_EQ(s.FindColumn("b").value(), 1u);
  EXPECT_FALSE(s.FindColumn("c").has_value());
}

TEST(SchemaTest, FindColumnAmbiguous) {
  Schema s({ColumnDef("id", DataType::kInt64, true, "t1"),
            ColumnDef("id", DataType::kInt64, true, "t2")});
  bool ambiguous = false;
  EXPECT_FALSE(s.FindColumn("id", &ambiguous).has_value());
  EXPECT_TRUE(ambiguous);
  EXPECT_EQ(s.FindColumn("t2", "id").value(), 1u);
}

TEST(SchemaTest, Concat) {
  Schema a({ColumnDef("x", DataType::kInt64)});
  Schema b({ColumnDef("y", DataType::kString)});
  Schema c = Schema::Concat(a, b);
  ASSERT_EQ(c.NumColumns(), 2u);
  EXPECT_EQ(c.column(0).name, "x");
  EXPECT_EQ(c.column(1).name, "y");
}

TEST(SchemaTest, EqualsIgnoresQualifier) {
  Schema a({ColumnDef("x", DataType::kInt64, true, "t1")});
  Schema b({ColumnDef("x", DataType::kInt64, true, "t2")});
  EXPECT_TRUE(a.Equals(b));
  Schema c({ColumnDef("x", DataType::kString, true, "t1")});
  EXPECT_FALSE(a.Equals(c));
}

TEST(SchemaTest, ToStringRendersTypes) {
  Schema s({ColumnDef("n", DataType::kInt64, true, "t")});
  EXPECT_EQ(s.ToString(), "t.n:BIGINT");
}

}  // namespace
}  // namespace agentfirst
