// Fixture snippets (good and deliberately violating) for every aflint rule,
// checking that each fires with the right rule name and line, and that
// `// aflint:allow(<rule>)` suppressions are honored. The violating code
// lives in string literals; aflint scrubs literal contents before matching,
// so scanning this very file stays clean.

#include "lint/lint.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint/findings.h"
#include "lint/layering.h"
#include "lint/lockorder.h"
#include "lint/prelex.h"

namespace agentfirst {
namespace lint {
namespace {

std::vector<Diagnostic> RunLint(const std::string& path,
                                const std::string& content) {
  return LintSource(path, content);
}

bool HasRuleAtLine(const std::vector<Diagnostic>& diags,
                   const std::string& rule, size_t line) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule && d.line == line) return true;
  }
  return false;
}

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return true;
  }
  return false;
}

TEST(AflintTest, RuleCatalogIsStable) {
  std::vector<std::string> rules = RuleNames();
  ASSERT_EQ(rules.size(), 19u);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "include-hygiene"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "lock-order-cycle"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "lock-self-deadlock"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "condvar-hold"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "layer-back-edge"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "layer-undeclared-edge"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "include-cycle"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "layer-config"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "raw-thread"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "fault-point-scope"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "raw-counter"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "raw-socket"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "raw-file-io"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "deprecated-brief-limits"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "row-value-in-kernel"),
            rules.end());
}

TEST(AflintTest, RawThreadFiresOutsideThreadPool) {
  std::string src =
      "#include <thread>\n"
      "void F() {\n"
      "  std::thread t([] {});\n"
      "  t.join();\n"
      "}\n";
  auto diags = RunLint("src/agents/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-thread", 3)) << diags.size();
}

TEST(AflintTest, RawThreadAllowedInThreadPoolFiles) {
  std::string src = "void F() { std::thread t([] {}); t.join(); }\n";
  EXPECT_TRUE(RunLint("src/common/thread_pool.cc", src).empty());
  EXPECT_TRUE(RunLint("src/common/thread_pool.h", src).empty());
}

TEST(AflintTest, HardwareConcurrencyIsExempt) {
  std::string src =
      "size_t N() { return std::thread::hardware_concurrency(); }\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, JthreadAlsoFires) {
  std::string src = "void F() { std::jthread t([] {}); }\n";
  EXPECT_TRUE(HasRule(RunLint("src/core/foo.cc", src), "raw-thread"));
}

TEST(AflintTest, SuppressionOnSameLine) {
  std::string src =
      "void F() { std::thread t([] {}); }  // aflint:allow(raw-thread)\n";
  EXPECT_TRUE(RunLint("src/agents/foo.cc", src).empty());
}

TEST(AflintTest, SuppressionOnPrecedingCommentLine) {
  std::string src =
      "// needs an out-of-pool canceller. aflint:allow(raw-thread)\n"
      "void F() { std::thread t([] {}); }\n";
  EXPECT_TRUE(RunLint("src/agents/foo.cc", src).empty());
}

TEST(AflintTest, SuppressionForDifferentRuleDoesNotApply) {
  std::string src =
      "void F() { std::thread t([] {}); }  // aflint:allow(unseeded-random)\n";
  EXPECT_TRUE(HasRule(RunLint("src/agents/foo.cc", src), "raw-thread"));
}

TEST(AflintTest, SuppressionListCoversMultipleRules) {
  std::string src =
      "// aflint:allow(raw-thread, unseeded-random)\n"
      "void F() { std::thread t([] {}); int x = rand(); (void)x; }\n";
  EXPECT_TRUE(RunLint("src/agents/foo.cc", src).empty());
}

TEST(AflintTest, UnseededRandomFires) {
  std::string src =
      "int F() { return rand(); }\n"
      "void G() { srand(42); }\n"
      "int H() { std::random_device rd; return rd(); }\n";
  auto diags = RunLint("src/opt/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "unseeded-random", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "unseeded-random", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "unseeded-random", 3));
}

TEST(AflintTest, UnseededRandomAllowedInRngHeader) {
  std::string src = "int F() { std::random_device rd; return rd(); }\n";
  EXPECT_TRUE(RunLint("src/common/rng.h", src).empty());
}

TEST(AflintTest, IdentifiersContainingRandDoNotFire) {
  std::string src =
      "void strand(); void operand(int);\n"
      "void F() { strand(); operand(3); }\n";
  EXPECT_TRUE(RunLint("src/opt/foo.cc", src).empty());
}

TEST(AflintTest, IostreamFiresOnlyUnderSrc) {
  std::string src =
      "#include <iostream>\n"
      "void F() { std::cout << 1; }\n"
      "void G() { std::cerr << 2; }\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "iostream-in-lib", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "iostream-in-lib", 3));
  EXPECT_TRUE(RunLint("tests/foo_test.cc", src).empty());
  EXPECT_TRUE(RunLint("tools/foo.cc", src).empty());
}

TEST(AflintTest, RawMutexGuardFiresOnlyUnderSrc) {
  std::string src =
      "void F() { std::lock_guard<std::mutex> l(m); }\n"
      "void G() { std::unique_lock<std::mutex> l(m); }\n"
      "void H() { std::scoped_lock l(m); }\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-mutex-guard", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-mutex-guard", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-mutex-guard", 3));
  EXPECT_FALSE(HasRule(RunLint("tests/foo_test.cc", src), "raw-mutex-guard"));
}

TEST(AflintTest, GuardedByCoverageFiresOnUncoveredMutexMember) {
  std::string src =
      "#include \"common/thread_annotations.h\"\n"
      "class C {\n"
      "  Mutex mu_;\n"
      "  int value_ = 0;\n"
      "};\n";
  auto diags = RunLint("src/core/foo.h", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "guarded-by-coverage", 3));
}

TEST(AflintTest, GuardedByCoverageSatisfiedByAnnotation) {
  std::string src =
      "#include \"common/thread_annotations.h\"\n"
      "class C {\n"
      "  mutable Mutex mu_;\n"
      "  int value_ AF_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(RunLint("src/core/foo.h", src).empty());
}

TEST(AflintTest, GuardedByCoverageSatisfiedByRequires) {
  std::string src =
      "#include \"common/thread_annotations.h\"\n"
      "struct S {\n"
      "  Mutex mu;\n"
      "  void DrainLocked() AF_REQUIRES(mu);\n"
      "};\n";
  EXPECT_TRUE(RunLint("src/core/foo.h", src).empty());
}

TEST(AflintTest, GuardedByCoverageSkipsUnannotatedFiles) {
  // A file that never touches thread_annotations.h is outside the
  // annotation regime; the coverage rule must not fire there.
  std::string src =
      "#include <mutex>\n"
      "class C {\n"
      "  std::mutex mu_;\n"
      "};\n";
  EXPECT_TRUE(RunLint("src/legacy/foo.h", src).empty());
}

TEST(AflintTest, StdMutexMemberInAnnotatedFileNeedsCoverage) {
  std::string src =
      "#include \"common/thread_annotations.h\"\n"
      "class C {\n"
      "  std::mutex mu_;\n"
      "};\n";
  EXPECT_TRUE(
      HasRuleAtLine(RunLint("src/core/foo.h", src), "guarded-by-coverage", 3));
}

TEST(AflintTest, FaultPointOkInStatusReturningFunction) {
  std::string src =
      "Status F() {\n"
      "  AF_FAULT_POINT(\"core.f\");\n"
      "  return Status::OK();\n"
      "}\n"
      "Result<int> G(int x) {\n"
      "  AF_FAULT_POINT(\"core.g\");\n"
      "  return x;\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, FaultPointFiresInVoidFunction) {
  std::string src =
      "void F() {\n"
      "  AF_FAULT_POINT(\"core.f\");\n"
      "}\n";
  EXPECT_TRUE(
      HasRuleAtLine(RunLint("src/core/foo.cc", src), "fault-point-scope", 2));
}

TEST(AflintTest, FaultPointFiresInHeaders) {
  std::string src =
      "Status F() {\n"
      "  AF_FAULT_POINT(\"core.f\");\n"
      "  return Status::OK();\n"
      "}\n";
  EXPECT_TRUE(HasRule(RunLint("src/core/foo.h", src), "fault-point-scope"));
}

TEST(AflintTest, FaultPointOkInStatusLambdaInsideVoidFunction) {
  std::string src =
      "void F() {\n"
      "  auto attempt = [&]() -> Result<int> {\n"
      "    AF_FAULT_POINT(\"core.attempt\");\n"
      "    return 1;\n"
      "  };\n"
      "  (void)attempt();\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, FaultPointOkInsideControlFlowOfStatusFunction) {
  std::string src =
      "Status F(bool flag) {\n"
      "  if (flag) {\n"
      "    AF_FAULT_POINT(\"core.branch\");\n"
      "  }\n"
      "  for (int i = 0; i < 2; ++i) {\n"
      "    AF_FAULT_POINT(\"core.loop\");\n"
      "  }\n"
      "  return Status::OK();\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, FaultStatusExpressionFormIsAlwaysAllowed) {
  std::string src =
      "void F() {\n"
      "  Status s = AF_FAULT_STATUS(\"core.f\");\n"
      "  (void)s;\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, RawCounterFiresOnIntegerAtomicsUnderSrc) {
  std::string src =
      "#include <atomic>\n"
      "struct S {\n"
      "  std::atomic<uint64_t> hits{0};\n"
      "  std::atomic<size_t> bytes{0};\n"
      "  std::atomic<int64_t> balance{0};\n"
      "};\n";
  auto diags = RunLint("src/exec/foo.h", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-counter", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-counter", 4));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-counter", 5));
}

TEST(AflintTest, RawCounterExemptInObsAndOutsideSrc) {
  std::string src = "std::atomic<uint64_t> value_{0};\n";
  EXPECT_TRUE(RunLint("src/obs/metrics.h", src).empty());
  EXPECT_TRUE(RunLint("tests/foo_test.cc", src).empty());
  EXPECT_TRUE(RunLint("bench/foo.cc", src).empty());
}

TEST(AflintTest, RawCounterIgnoresBoolAndStatusAtomics) {
  std::string src =
      "std::atomic<bool> stop{false};\n"
      "std::atomic<int> code{0};\n"
      "std::atomic<Node*> head{nullptr};\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RawCounterSuppressedByAllow) {
  std::string src =
      "// work-claim cursor, not a metric. aflint:allow(raw-counter)\n"
      "std::atomic<size_t> next{0};\n";
  EXPECT_TRUE(RunLint("src/common/foo.h", src).empty());
}

TEST(AflintTest, RawSocketFiresOnSyscallsOutsideNet) {
  std::string src =
      "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
      "int rc = ::poll(fds, n, 200);\n"
      "ssize_t got = recv(fd, buf, len, 0);\n"
      "setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-socket", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-socket", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-socket", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-socket", 4));
  // Tools and tests are covered too: transport belongs behind net::Client.
  EXPECT_TRUE(HasRule(RunLint("tools/foo.cc", src), "raw-socket"));
  EXPECT_TRUE(HasRule(RunLint("tests/foo_test.cc", src), "raw-socket"));
}

TEST(AflintTest, RawSocketExemptUnderSrcNet) {
  std::string src =
      "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"
      "int rc = ::poll(fds.data(), fds.size(), 200);\n";
  EXPECT_TRUE(RunLint("src/net/server.cc", src).empty());
  EXPECT_TRUE(RunLint("src/net/client.cc", src).empty());
}

TEST(AflintTest, RawSocketIgnoresMembersAndQualifiedNames) {
  std::string src =
      "client.connect(host, port);\n"
      "queue->send(frame);\n"
      "auto f = std::bind(&Foo::Run, this);\n"
      "dispatcher.poll();\n"
      "net::Bind(addr);\n"
      "int connect_retries = 3;\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RawSocketSuppressedByAllow) {
  std::string src =
      "// legacy shim. aflint:allow(raw-socket)\n"
      "int fd = socket(AF_INET, SOCK_STREAM, 0);\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RawFileIoFiresOnSyscallsOutsideIoAndWal) {
  std::string src =
      "int fd = open(path.c_str(), O_WRONLY | O_CREAT, 0644);\n"
      "ssize_t n = ::write(fd, buf, len);\n"
      "fsync(fd);\n"
      "rename(tmp.c_str(), final_path.c_str());\n"
      "FILE* f = fopen(path.c_str(), \"wb\");\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 4));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 5));
  // Tools and tests too: durable bytes go through io::File everywhere, so
  // every harness write shares the same fault-injection points.
  EXPECT_TRUE(HasRule(RunLint("tools/foo.cc", src), "raw-file-io"));
  EXPECT_TRUE(HasRule(RunLint("tests/foo_test.cc", src), "raw-file-io"));
}

TEST(AflintTest, RawFileIoExemptUnderSrcIoAndWal) {
  std::string src =
      "int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);\n"
      "if (fsync(fd) != 0) return ErrnoStatus();\n"
      "rename(tmp.c_str(), final_path.c_str());\n";
  EXPECT_TRUE(RunLint("src/io/file_util.cc", src).empty());
  EXPECT_TRUE(RunLint("src/wal/wal.cc", src).empty());
  EXPECT_TRUE(RunLint("src/wal/checkpoint.cc", src).empty());
}

TEST(AflintTest, RawFileIoIgnoresMembersAndQualifiedNames) {
  std::string src =
      "file.open(path);\n"
      "stream->write(buf, len);\n"
      "io::WriteFileAtomic(path, bytes);\n"
      "writer_->fsync_policy();\n"
      "int write_batch = 3;\n"
      "std::ofstream out(path);\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RawFileIoSuppressedByAllow) {
  std::string src =
      "// event-loop doorbell, not durable state. aflint:allow(raw-file-io)\n"
      "(void)::write(wake_write_fd_, &byte, 1);\n";
  EXPECT_TRUE(RunLint("src/net/server.cc", src).empty());
}

TEST(AflintTest, DeprecatedBriefLimitsFiresOnWrites) {
  std::string src =
      "brief.deadline_ms = 50.0;\n"
      "b.max_result_rows = 10;\n"
      "brief.max_result_bytes += 4096;\n"
      "brief.cost_budget = 2.0;\n";
  auto diags = RunLint("src/workload/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "deprecated-brief-limits", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "deprecated-brief-limits", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "deprecated-brief-limits", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "deprecated-brief-limits", 4));
  EXPECT_TRUE(HasRule(RunLint("tests/foo_test.cc", src),
                      "deprecated-brief-limits"));
}

TEST(AflintTest, DeprecatedBriefLimitsFiresEvenInProbeItself) {
  // The alias fields were deleted from Brief (PR 9); the old probe.{h,cc}
  // declaration-site exemption is retired with them.
  std::string src = "brief.deadline_ms = 50.0;\n";
  EXPECT_TRUE(HasRule(RunLint("src/core/probe.h", src),
                      "deprecated-brief-limits"));
  EXPECT_TRUE(HasRule(RunLint("src/core/probe.cc", src),
                      "deprecated-brief-limits"));
}

TEST(AflintTest, DeprecatedBriefLimitsIgnoresReadsAndNewApi) {
  std::string src =
      "if (brief.deadline_ms == 50.0) Use(brief);\n"
      "double d = *brief.deadline_ms;\n"
      "bool set = brief.max_result_rows.has_value();\n"
      "limits.cost_budget = 3.0;\n"  // ResourceLimits field, not the alias
      "brief.limits.DeadlineMillis(10.0);\n";
  EXPECT_TRUE(RunLint("src/workload/foo.cc", src).empty());
}

TEST(AflintTest, DeprecatedBriefLimitsSuppressedByAllow) {
  std::string src =
      "// exercising the fold. aflint:allow(deprecated-brief-limits)\n"
      "brief.deadline_ms = 50.0;\n";
  EXPECT_TRUE(RunLint("tests/foo_test.cc", src).empty());
}

TEST(AflintTest, RowValueInKernelFiresInsideRegion) {
  std::string src =
      "// aflint:kernel-begin\n"
      "void K(const Row& rows) {\n"
      "  Value v = rows[0];\n"
      "  EvalExpr(*expr, rows);\n"
      "}\n"
      "// aflint:kernel-end\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "row-value-in-kernel", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "row-value-in-kernel", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "row-value-in-kernel", 4));
}

TEST(AflintTest, RowValueInKernelCleanOutsideRegion) {
  // The same tokens are the normal currency of non-kernel code.
  std::string src =
      "Value EvalExpr(const BoundExpr& e, const Row& row);\n"
      "// aflint:kernel-begin\n"
      "void K(const int64_t* a, uint32_t* sel) { sel[0] = a[0] > 0; }\n"
      "// aflint:kernel-end\n"
      "bool EvalPredicate(const BoundExpr& e, const Row& row);\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RowValueInKernelEndResetsRegion) {
  std::string src =
      "// aflint:kernel-begin\n"
      "void K(const double* x, uint8_t* out);\n"
      "// aflint:kernel-end\n"
      "Row Materialize(const Value& v);\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RowValueInKernelSuppressedByAllow) {
  std::string src =
      "// aflint:kernel-begin\n"
      "// boundary gather: rows come from the left side's pad slots.\n"
      "// aflint:allow(row-value-in-kernel)\n"
      "void Gather(const Value* cells, int64_t* out);\n"
      "// aflint:kernel-end\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RowValueInKernelIgnoresSubstringsAndQualifiedNames) {
  std::string src =
      "// aflint:kernel-begin\n"
      "void K(const int64_t* RowMajor, int GetRows, int xValue);\n"
      "void L() { detail::Value(); }\n"
      "// aflint:kernel-end\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, CommentsAndStringsAreScrubbed) {
  std::string src =
      "// std::thread in prose, rand() too, std::cout as well\n"
      "/* std::lock_guard<std::mutex> in a block comment */\n"
      "const char* kSql = \"SELECT rand() FROM t\";\n"
      "const char* kMsg = \"std::cout << std::thread\";\n";
  EXPECT_TRUE(RunLint("src/sql/foo.cc", src).empty());
}

TEST(AflintTest, RawStringLiteralsAreScrubbed) {
  std::string src =
      "const char* kFixture = R\"(\n"
      "  std::thread t; std::cout << rand();\n"
      ")\";\n";
  EXPECT_TRUE(RunLint("src/sql/foo.cc", src).empty());
}

TEST(AflintTest, PreprocessorLinesAreSkipped) {
  // Macro definitions (including continuation lines) are neither scanned
  // for fault points nor allowed to confuse the scope machine.
  std::string src =
      "#define MY_POINT(site)                  \\\n"
      "  do {                                  \\\n"
      "    AF_FAULT_POINT(site);               \\\n"
      "  } while (0)\n"
      "Status F() {\n"
      "  MY_POINT(\"x\");\n"
      "  return Status::OK();\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, DiagnosticToStringIsGnuStyle) {
  std::string src = "void F() { std::thread t([] {}); }\n";
  auto diags = RunLint("src/agents/foo.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  std::string text = diags[0].ToString();
  EXPECT_NE(text.find("src/agents/foo.cc:1: error:"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[raw-thread]"), std::string::npos) << text;
}

TEST(AflintTest, MultipleViolationsComeBackInLineOrder) {
  std::string src =
      "void F() { std::thread t([] {}); }\n"
      "int G() { return rand(); }\n"
      "void H() { std::cout << 1; }\n";
  auto diags = RunLint("src/core/foo.cc", src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].rule, "raw-thread");
  EXPECT_EQ(diags[1].rule, "unseeded-random");
  EXPECT_EQ(diags[2].rule, "iostream-in-lib");
}

// ---------------------------------------------------------------------------
// fault-point-scope regression: the scope walker must attribute a fault point
// to its enclosing function even when the whole function sits on one line
// (the old line-oriented tracker opened the scope one line too late).

TEST(AflintTest, FaultPointOkInSingleLineStatusFunction) {
  std::string src =
      "Status F() { AF_FAULT_POINT(\"x\"); return Status::OK(); }\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, FaultPointFiresInSingleLineVoidFunction) {
  std::string src = "void F() { AF_FAULT_POINT(\"x\"); }\n";
  EXPECT_TRUE(
      HasRuleAtLine(RunLint("src/core/foo.cc", src), "fault-point-scope", 1));
}

TEST(AflintTest, FaultPointOkAfterConstructorInitList) {
  // The ctor's member-init braces must not be mistaken for its body.
  std::string src =
      "class C {\n"
      " public:\n"
      "  C() : a_{1}, b_{2} {}\n"
      "  Status F() {\n"
      "    AF_FAULT_POINT(\"x\");\n"
      "    return Status::OK();\n"
      "  }\n"
      "  int a_; int b_;\n"
      "};\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

// ---------------------------------------------------------------------------
// include-hygiene

TEST(AflintTest, IncludeHygieneFiresOnTransitiveNamespaceUse) {
  std::string src =
      "#include \"core/probe.h\"\n"
      "void F(obs::TraceSpan* span);\n";
  EXPECT_TRUE(
      HasRuleAtLine(RunLint("src/net/foo.h", src), "include-hygiene", 2));
}

TEST(AflintTest, IncludeHygieneSatisfiedByDirectInclude) {
  std::string src =
      "#include \"obs/trace.h\"\n"
      "void F(obs::TraceSpan* span);\n";
  EXPECT_TRUE(RunLint("src/net/foo.h", src).empty());
}

TEST(AflintTest, IncludeHygieneSkipsImplementationFiles) {
  // Only headers are checked: a .cc with a sloppy transitive include hurts
  // nobody downstream.
  std::string src =
      "#include \"core/probe.h\"\n"
      "void F(obs::TraceSpan* span) {}\n";
  EXPECT_TRUE(RunLint("src/net/foo.cc", src).empty());
}

TEST(AflintTest, IncludeHygieneRequiresThreadAnnotationsHeader) {
  std::string src =
      "class C {\n"
      "  int x_ AF_GUARDED_BY(mu_);\n"
      "};\n";
  EXPECT_TRUE(HasRule(RunLint("src/core/foo.h", src), "include-hygiene"));
  std::string fixed = "#include \"common/thread_annotations.h\"\n" + src;
  EXPECT_TRUE(RunLint("src/core/foo.h", fixed).empty());
}

// ---------------------------------------------------------------------------
// lock-order analysis (whole-program)

std::vector<Diagnostic> RunLockOrder(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<SourceFile> sources;
  for (const auto& [path, content] : files) {
    sources.push_back({path, Prelex(content)});
  }
  return AnalyzeLockOrder(sources);
}

TEST(AflintTest, LockOrderTwoLockCycle) {
  std::string src =
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      "  void G() {\n"
      "    MutexLock l1(b_);\n"
      "    MutexLock l2(a_);\n"
      "  }\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n";
  auto diags = RunLockOrder({{"src/core/a.cc", src}});
  ASSERT_TRUE(HasRule(diags, "lock-order-cycle")) << diags.size();
  bool mentions_both = false;
  for (const Diagnostic& d : diags) {
    if (d.message.find("A::a_") != std::string::npos &&
        d.message.find("A::b_") != std::string::npos) {
      mentions_both = true;
    }
  }
  EXPECT_TRUE(mentions_both);
}

TEST(AflintTest, LockOrderThreeLockCycleThroughCallEdge) {
  // a_ -> b_ exists only through F's call to H: the analysis must follow the
  // intra-module call graph, not just lexically nested acquisitions.
  std::string src =
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l(a_);\n"
      "    H();\n"
      "  }\n"
      "  void H() { MutexLock l(b_); }\n"
      "  void G() {\n"
      "    MutexLock l1(b_);\n"
      "    MutexLock l2(c_);\n"
      "  }\n"
      "  void K() {\n"
      "    MutexLock l1(c_);\n"
      "    MutexLock l2(a_);\n"
      "  }\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "  Mutex c_;\n"
      "};\n";
  auto diags = RunLockOrder({{"src/core/a.cc", src}});
  ASSERT_TRUE(HasRule(diags, "lock-order-cycle"));
  bool via_call = false;
  for (const Diagnostic& d : diags) {
    if (d.rule == "lock-order-cycle" &&
        d.message.find("via call to A::H") != std::string::npos) {
      via_call = true;
    }
  }
  EXPECT_TRUE(via_call);
}

TEST(AflintTest, CondvarWaitWhileHoldingAnotherLock) {
  std::string src =
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "    cv_.Wait(b_);\n"
      "  }\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "  CondVar cv_;\n"
      "};\n";
  auto diags = RunLockOrder({{"src/core/a.cc", src}});
  EXPECT_TRUE(HasRuleAtLine(diags, "condvar-hold", 6)) << diags.size();
}

TEST(AflintTest, CondvarWaitHoldingOnlyItsOwnMutexIsClean) {
  std::string src =
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l(a_);\n"
      "    cv_.Wait(a_);\n"
      "  }\n"
      "  Mutex a_;\n"
      "  CondVar cv_;\n"
      "};\n";
  EXPECT_TRUE(RunLockOrder({{"src/core/a.cc", src}}).empty());
}

TEST(AflintTest, DeclaredLockOrderSuppressesReverseEdge) {
  std::string src =
      "// aflint:lock-order(A::a_, A::b_)\n"
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      "  void G() {\n"
      "    MutexLock l1(b_);\n"
      "    MutexLock l2(a_);\n"
      "  }\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n";
  EXPECT_TRUE(RunLockOrder({{"src/core/a.cc", src}}).empty());
}

TEST(AflintTest, RecursiveSelfLockThroughCallChain) {
  std::string src =
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l(m_);\n"
      "    G();\n"
      "  }\n"
      "  void G() { MutexLock l(m_); }\n"
      "  Mutex m_;\n"
      "};\n";
  auto diags = RunLockOrder({{"src/core/a.cc", src}});
  EXPECT_TRUE(HasRuleAtLine(diags, "lock-self-deadlock", 5)) << diags.size();
}

TEST(AflintTest, DirectDoubleAcquireIsSelfDeadlock) {
  std::string src =
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l1(m_);\n"
      "    MutexLock l2(m_);\n"
      "  }\n"
      "  Mutex m_;\n"
      "};\n";
  auto diags = RunLockOrder({{"src/core/a.cc", src}});
  EXPECT_TRUE(HasRuleAtLine(diags, "lock-self-deadlock", 5));
}

TEST(AflintTest, ConsistentOrderAcrossFunctionsIsClean) {
  std::string src =
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      "  void G() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      "  void H() { MutexLock l(b_); }\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n";
  EXPECT_TRUE(RunLockOrder({{"src/core/a.cc", src}}).empty());
}

TEST(AflintTest, RequiresAnnotatedHelperDoesNotReacquire) {
  // A helper with AF_REQUIRES(m) holds m on entry but does not acquire it:
  // calling it under m is the whole point, not a self-deadlock.
  std::string src =
      "class A {\n"
      " public:\n"
      "  void Put() {\n"
      "    MutexLock l(m_);\n"
      "    EvictLocked();\n"
      "  }\n"
      "  void EvictLocked() AF_REQUIRES(m_) { n_ = 0; }\n"
      "  Mutex m_;\n"
      "  int n_ AF_GUARDED_BY(m_);\n"
      "};\n";
  EXPECT_TRUE(RunLockOrder({{"src/core/a.cc", src}}).empty());
}

TEST(AflintTest, ForeignObjectMemberCallDoesNotResolveToOwnClass) {
  // s_.lru.size() is a call on another object: resolving it to A::size()
  // (which locks m_) would manufacture a self-deadlock.
  std::string src =
      "class A {\n"
      " public:\n"
      "  size_t size() {\n"
      "    MutexLock l(m_);\n"
      "    return n_;\n"
      "  }\n"
      "  void Put() {\n"
      "    MutexLock l(m_);\n"
      "    size_t k = s_.lru.size();\n"
      "    n_ = k;\n"
      "  }\n"
      "  Mutex m_;\n"
      "  size_t n_;\n"
      "  Shard s_;\n"
      "};\n";
  EXPECT_TRUE(RunLockOrder({{"src/core/a.cc", src}}).empty());
}

TEST(AflintTest, LockOrderCycleAcrossFilesInOneModule) {
  std::string f1 =
      "class A {\n"
      " public:\n"
      "  void F();\n"
      "  void G();\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n";
  std::string f2 =
      "void A::F() {\n"
      "  MutexLock l1(a_);\n"
      "  MutexLock l2(b_);\n"
      "}\n";
  std::string f3 =
      "void A::G() {\n"
      "  MutexLock l1(b_);\n"
      "  MutexLock l2(a_);\n"
      "}\n";
  auto diags = RunLockOrder({{"src/core/a.h", f1},
                             {"src/core/f.cc", f2},
                             {"src/core/g.cc", f3}});
  EXPECT_TRUE(HasRule(diags, "lock-order-cycle"));
}

TEST(AflintTest, LockOrderSuppressedByInlineAllow) {
  std::string src =
      "class A {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock l1(a_);\n"
      "    // aflint:allow(lock-order-cycle) fixture\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      "  void G() {\n"
      "    MutexLock l1(b_);\n"
      "    // aflint:allow(lock-order-cycle) fixture\n"
      "    MutexLock l2(a_);\n"
      "  }\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n";
  EXPECT_TRUE(RunLockOrder({{"src/core/a.cc", src}}).empty());
}

// ---------------------------------------------------------------------------
// layering

constexpr char kLayersToml[] =
    "[layers]\n"
    "order = [\n"
    "  [\"base\"],\n"
    "  [\"mid\", \"mid2\"],\n"
    "  [\"top\"],\n"
    "]\n"
    "[edges]\n"
    "declared = [\"mid -> mid2\"]\n";

std::vector<Diagnostic> RunLayering(
    const std::vector<std::pair<std::string, std::string>>& files) {
  LayerSpec spec;
  std::string error;
  if (!ParseLayersToml(kLayersToml, &spec, &error)) {
    ADD_FAILURE() << error;
    return {};
  }
  std::vector<SourceFile> sources;
  for (const auto& [path, content] : files) {
    sources.push_back({path, Prelex(content)});
  }
  return CheckLayering(spec, "tools/layers.toml", sources);
}

TEST(AflintTest, LayeringRejectsBackEdge) {
  auto diags = RunLayering(
      {{"src/base/b.h", "#include \"top/t.h\"\n"},
       {"src/top/t.h", "int t;\n"}});
  ASSERT_TRUE(HasRuleAtLine(diags, "layer-back-edge", 1)) << diags.size();
  // The diagnostic names the offending include and both layers.
  EXPECT_NE(diags[0].message.find("top/t.h"), std::string::npos);
  EXPECT_NE(diags[0].message.find("base -> top"), std::string::npos);
}

TEST(AflintTest, LayeringRejectsUndeclaredSameLayerEdge) {
  // mid -> mid2 is declared; the reverse direction is not.
  auto diags = RunLayering(
      {{"src/mid2/x.h", "#include \"mid/y.h\"\n"},
       {"src/mid/y.h", "int y;\n"}});
  EXPECT_TRUE(HasRuleAtLine(diags, "layer-undeclared-edge", 1))
      << diags.size();
}

TEST(AflintTest, LayeringAcceptsDeclaredSameLayerEdge) {
  auto diags = RunLayering(
      {{"src/mid/y.h", "#include \"mid2/x.h\"\n"},
       {"src/mid2/x.h", "int x;\n"}});
  EXPECT_TRUE(diags.empty()) << diags.size();
}

TEST(AflintTest, LayeringRejectsIncludeCycle) {
  auto diags = RunLayering(
      {{"src/base/a.h", "#include \"base/b.h\"\n"},
       {"src/base/b.h", "#include \"base/a.h\"\n"}});
  ASSERT_TRUE(HasRule(diags, "include-cycle")) << diags.size();
  // The offending path is printed in full.
  bool has_path = false;
  for (const Diagnostic& d : diags) {
    if (d.message.find("src/base/a.h -> src/base/b.h -> src/base/a.h") !=
        std::string::npos) {
      has_path = true;
    }
  }
  EXPECT_TRUE(has_path);
}

TEST(AflintTest, LayeringAcceptsCleanTree) {
  auto diags = RunLayering(
      {{"src/top/t.h", "#include \"mid/y.h\"\n#include \"base/b.h\"\n"},
       {"src/mid/y.h", "#include \"base/b.h\"\n"},
       {"src/base/b.h", "int b;\n"}});
  EXPECT_TRUE(diags.empty()) << diags.size();
}

TEST(AflintTest, LayeringReportsUnknownModule) {
  auto diags = RunLayering({{"src/rogue/r.h", "int r;\n"}});
  EXPECT_TRUE(HasRule(diags, "layer-config"));
}

TEST(AflintTest, LayeringBackEdgeSuppressedByInlineAllow) {
  auto diags = RunLayering(
      {{"src/base/b.h",
        "// aflint:allow(layer-back-edge) fixture rationale\n"
        "#include \"top/t.h\"\n"},
       {"src/top/t.h", "int t;\n"}});
  EXPECT_TRUE(diags.empty()) << diags.size();
}

TEST(AflintTest, LayersTomlParserRejectsGarbage) {
  LayerSpec spec;
  std::string error;
  EXPECT_FALSE(ParseLayersToml("not toml at all", &spec, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ParseLayersToml("[layers]\n", &spec, &error));  // no order
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// findings pipeline

TEST(AflintTest, FindingsJsonIsByteStable) {
  std::string src =
      "void F() { std::thread t([] {}); }\n"
      "int G() { return rand(); }\n";
  PrelexedSource pre = Prelex(src);
  auto diags = LintPrelexed("src/core/foo.cc", pre);
  ASSERT_FALSE(diags.empty());
  std::map<std::string, const PrelexedSource*> sources = {
      {"src/core/foo.cc", &pre}};
  std::string a = EmitFindingsJson(BuildFindings(diags, sources));
  std::string b = EmitFindingsJson(BuildFindings(diags, sources));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"aflint_version\": 2"), std::string::npos);
  EXPECT_EQ(a.back(), '\n');
}

TEST(AflintTest, FingerprintSurvivesLineDrift) {
  std::string before = "void F() { std::thread t([] {}); }\n";
  std::string after =
      "// three new comment lines\n"
      "// pushed the violation\n"
      "// down the file\n"
      "void F() { std::thread t([] {}); }\n";
  PrelexedSource pre_before = Prelex(before);
  PrelexedSource pre_after = Prelex(after);
  auto fb = BuildFindings(LintPrelexed("src/core/foo.cc", pre_before),
                          {{"src/core/foo.cc", &pre_before}});
  auto fa = BuildFindings(LintPrelexed("src/core/foo.cc", pre_after),
                          {{"src/core/foo.cc", &pre_after}});
  ASSERT_EQ(fb.size(), 1u);
  ASSERT_EQ(fa.size(), 1u);
  EXPECT_NE(fb[0].diag.line, fa[0].diag.line);
  EXPECT_EQ(fb[0].fingerprint, fa[0].fingerprint);
}

TEST(AflintTest, IdenticalLinesGetDistinctFingerprints) {
  std::string src =
      "void F() { std::thread t([] {}); }\n"
      "void G() { std::thread t([] {}); }\n";
  PrelexedSource pre = Prelex(src);
  auto findings = BuildFindings(LintPrelexed("src/core/foo.cc", pre),
                                {{"src/core/foo.cc", &pre}});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].fingerprint, findings[1].fingerprint);
}

TEST(AflintTest, FindingsJsonRoundTrips) {
  std::string src = "void F() { std::thread t([] {}); }\n";
  PrelexedSource pre = Prelex(src);
  auto findings = BuildFindings(LintPrelexed("src/core/foo.cc", pre),
                                {{"src/core/foo.cc", &pre}});
  ASSERT_EQ(findings.size(), 1u);
  std::string json = EmitFindingsJson(findings);
  std::vector<Finding> parsed;
  std::string error;
  ASSERT_TRUE(ParseFindingsJson(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].fingerprint, findings[0].fingerprint);
  EXPECT_EQ(parsed[0].diag.rule, findings[0].diag.rule);
  EXPECT_EQ(parsed[0].diag.file, findings[0].diag.file);
  EXPECT_EQ(parsed[0].diag.line, findings[0].diag.line);
}

TEST(AflintTest, EmptyFindingsJsonRoundTrips) {
  std::string json = EmitFindingsJson({});
  std::vector<Finding> parsed;
  std::string error;
  ASSERT_TRUE(ParseFindingsJson(json, &parsed, &error)) << error;
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(json, EmitFindingsJson({}));
}

TEST(AflintTest, MalformedFindingsJsonIsRejected) {
  std::vector<Finding> parsed;
  std::string error;
  EXPECT_FALSE(ParseFindingsJson("{", &parsed, &error));
  EXPECT_FALSE(ParseFindingsJson("", &parsed, &error));
  EXPECT_FALSE(ParseFindingsJson(
      "{\"findings\": [{\"rule\": \"x\", \"file\": \"y\", \"line\": 1, "
      "\"message\": \"z\"}]}",  // no fingerprint
      &parsed, &error));
}

}  // namespace
}  // namespace lint
}  // namespace agentfirst
