// Fixture snippets (good and deliberately violating) for every aflint rule,
// checking that each fires with the right rule name and line, and that
// `// aflint:allow(<rule>)` suppressions are honored. The violating code
// lives in string literals; aflint scrubs literal contents before matching,
// so scanning this very file stays clean.

#include "lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace agentfirst {
namespace lint {
namespace {

std::vector<Diagnostic> RunLint(const std::string& path,
                                const std::string& content) {
  return LintSource(path, content);
}

bool HasRuleAtLine(const std::vector<Diagnostic>& diags,
                   const std::string& rule, size_t line) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule && d.line == line) return true;
  }
  return false;
}

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return true;
  }
  return false;
}

TEST(AflintTest, RuleCatalogIsStable) {
  std::vector<std::string> rules = RuleNames();
  ASSERT_EQ(rules.size(), 11u);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "raw-thread"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "fault-point-scope"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "raw-counter"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "raw-socket"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "raw-file-io"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "deprecated-brief-limits"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "row-value-in-kernel"),
            rules.end());
}

TEST(AflintTest, RawThreadFiresOutsideThreadPool) {
  std::string src =
      "#include <thread>\n"
      "void F() {\n"
      "  std::thread t([] {});\n"
      "  t.join();\n"
      "}\n";
  auto diags = RunLint("src/agents/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-thread", 3)) << diags.size();
}

TEST(AflintTest, RawThreadAllowedInThreadPoolFiles) {
  std::string src = "void F() { std::thread t([] {}); t.join(); }\n";
  EXPECT_TRUE(RunLint("src/common/thread_pool.cc", src).empty());
  EXPECT_TRUE(RunLint("src/common/thread_pool.h", src).empty());
}

TEST(AflintTest, HardwareConcurrencyIsExempt) {
  std::string src =
      "size_t N() { return std::thread::hardware_concurrency(); }\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, JthreadAlsoFires) {
  std::string src = "void F() { std::jthread t([] {}); }\n";
  EXPECT_TRUE(HasRule(RunLint("src/core/foo.cc", src), "raw-thread"));
}

TEST(AflintTest, SuppressionOnSameLine) {
  std::string src =
      "void F() { std::thread t([] {}); }  // aflint:allow(raw-thread)\n";
  EXPECT_TRUE(RunLint("src/agents/foo.cc", src).empty());
}

TEST(AflintTest, SuppressionOnPrecedingCommentLine) {
  std::string src =
      "// needs an out-of-pool canceller. aflint:allow(raw-thread)\n"
      "void F() { std::thread t([] {}); }\n";
  EXPECT_TRUE(RunLint("src/agents/foo.cc", src).empty());
}

TEST(AflintTest, SuppressionForDifferentRuleDoesNotApply) {
  std::string src =
      "void F() { std::thread t([] {}); }  // aflint:allow(unseeded-random)\n";
  EXPECT_TRUE(HasRule(RunLint("src/agents/foo.cc", src), "raw-thread"));
}

TEST(AflintTest, SuppressionListCoversMultipleRules) {
  std::string src =
      "// aflint:allow(raw-thread, unseeded-random)\n"
      "void F() { std::thread t([] {}); int x = rand(); (void)x; }\n";
  EXPECT_TRUE(RunLint("src/agents/foo.cc", src).empty());
}

TEST(AflintTest, UnseededRandomFires) {
  std::string src =
      "int F() { return rand(); }\n"
      "void G() { srand(42); }\n"
      "int H() { std::random_device rd; return rd(); }\n";
  auto diags = RunLint("src/opt/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "unseeded-random", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "unseeded-random", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "unseeded-random", 3));
}

TEST(AflintTest, UnseededRandomAllowedInRngHeader) {
  std::string src = "int F() { std::random_device rd; return rd(); }\n";
  EXPECT_TRUE(RunLint("src/common/rng.h", src).empty());
}

TEST(AflintTest, IdentifiersContainingRandDoNotFire) {
  std::string src =
      "void strand(); void operand(int);\n"
      "void F() { strand(); operand(3); }\n";
  EXPECT_TRUE(RunLint("src/opt/foo.cc", src).empty());
}

TEST(AflintTest, IostreamFiresOnlyUnderSrc) {
  std::string src =
      "#include <iostream>\n"
      "void F() { std::cout << 1; }\n"
      "void G() { std::cerr << 2; }\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "iostream-in-lib", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "iostream-in-lib", 3));
  EXPECT_TRUE(RunLint("tests/foo_test.cc", src).empty());
  EXPECT_TRUE(RunLint("tools/foo.cc", src).empty());
}

TEST(AflintTest, RawMutexGuardFiresOnlyUnderSrc) {
  std::string src =
      "void F() { std::lock_guard<std::mutex> l(m); }\n"
      "void G() { std::unique_lock<std::mutex> l(m); }\n"
      "void H() { std::scoped_lock l(m); }\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-mutex-guard", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-mutex-guard", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-mutex-guard", 3));
  EXPECT_FALSE(HasRule(RunLint("tests/foo_test.cc", src), "raw-mutex-guard"));
}

TEST(AflintTest, GuardedByCoverageFiresOnUncoveredMutexMember) {
  std::string src =
      "#include \"common/thread_annotations.h\"\n"
      "class C {\n"
      "  Mutex mu_;\n"
      "  int value_ = 0;\n"
      "};\n";
  auto diags = RunLint("src/core/foo.h", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "guarded-by-coverage", 3));
}

TEST(AflintTest, GuardedByCoverageSatisfiedByAnnotation) {
  std::string src =
      "#include \"common/thread_annotations.h\"\n"
      "class C {\n"
      "  mutable Mutex mu_;\n"
      "  int value_ AF_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(RunLint("src/core/foo.h", src).empty());
}

TEST(AflintTest, GuardedByCoverageSatisfiedByRequires) {
  std::string src =
      "#include \"common/thread_annotations.h\"\n"
      "struct S {\n"
      "  Mutex mu;\n"
      "  void DrainLocked() AF_REQUIRES(mu);\n"
      "};\n";
  EXPECT_TRUE(RunLint("src/core/foo.h", src).empty());
}

TEST(AflintTest, GuardedByCoverageSkipsUnannotatedFiles) {
  // A file that never touches thread_annotations.h is outside the
  // annotation regime; the coverage rule must not fire there.
  std::string src =
      "#include <mutex>\n"
      "class C {\n"
      "  std::mutex mu_;\n"
      "};\n";
  EXPECT_TRUE(RunLint("src/legacy/foo.h", src).empty());
}

TEST(AflintTest, StdMutexMemberInAnnotatedFileNeedsCoverage) {
  std::string src =
      "#include \"common/thread_annotations.h\"\n"
      "class C {\n"
      "  std::mutex mu_;\n"
      "};\n";
  EXPECT_TRUE(
      HasRuleAtLine(RunLint("src/core/foo.h", src), "guarded-by-coverage", 3));
}

TEST(AflintTest, FaultPointOkInStatusReturningFunction) {
  std::string src =
      "Status F() {\n"
      "  AF_FAULT_POINT(\"core.f\");\n"
      "  return Status::OK();\n"
      "}\n"
      "Result<int> G(int x) {\n"
      "  AF_FAULT_POINT(\"core.g\");\n"
      "  return x;\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, FaultPointFiresInVoidFunction) {
  std::string src =
      "void F() {\n"
      "  AF_FAULT_POINT(\"core.f\");\n"
      "}\n";
  EXPECT_TRUE(
      HasRuleAtLine(RunLint("src/core/foo.cc", src), "fault-point-scope", 2));
}

TEST(AflintTest, FaultPointFiresInHeaders) {
  std::string src =
      "Status F() {\n"
      "  AF_FAULT_POINT(\"core.f\");\n"
      "  return Status::OK();\n"
      "}\n";
  EXPECT_TRUE(HasRule(RunLint("src/core/foo.h", src), "fault-point-scope"));
}

TEST(AflintTest, FaultPointOkInStatusLambdaInsideVoidFunction) {
  std::string src =
      "void F() {\n"
      "  auto attempt = [&]() -> Result<int> {\n"
      "    AF_FAULT_POINT(\"core.attempt\");\n"
      "    return 1;\n"
      "  };\n"
      "  (void)attempt();\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, FaultPointOkInsideControlFlowOfStatusFunction) {
  std::string src =
      "Status F(bool flag) {\n"
      "  if (flag) {\n"
      "    AF_FAULT_POINT(\"core.branch\");\n"
      "  }\n"
      "  for (int i = 0; i < 2; ++i) {\n"
      "    AF_FAULT_POINT(\"core.loop\");\n"
      "  }\n"
      "  return Status::OK();\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, FaultStatusExpressionFormIsAlwaysAllowed) {
  std::string src =
      "void F() {\n"
      "  Status s = AF_FAULT_STATUS(\"core.f\");\n"
      "  (void)s;\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, RawCounterFiresOnIntegerAtomicsUnderSrc) {
  std::string src =
      "#include <atomic>\n"
      "struct S {\n"
      "  std::atomic<uint64_t> hits{0};\n"
      "  std::atomic<size_t> bytes{0};\n"
      "  std::atomic<int64_t> balance{0};\n"
      "};\n";
  auto diags = RunLint("src/exec/foo.h", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-counter", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-counter", 4));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-counter", 5));
}

TEST(AflintTest, RawCounterExemptInObsAndOutsideSrc) {
  std::string src = "std::atomic<uint64_t> value_{0};\n";
  EXPECT_TRUE(RunLint("src/obs/metrics.h", src).empty());
  EXPECT_TRUE(RunLint("tests/foo_test.cc", src).empty());
  EXPECT_TRUE(RunLint("bench/foo.cc", src).empty());
}

TEST(AflintTest, RawCounterIgnoresBoolAndStatusAtomics) {
  std::string src =
      "std::atomic<bool> stop{false};\n"
      "std::atomic<int> code{0};\n"
      "std::atomic<Node*> head{nullptr};\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RawCounterSuppressedByAllow) {
  std::string src =
      "// work-claim cursor, not a metric. aflint:allow(raw-counter)\n"
      "std::atomic<size_t> next{0};\n";
  EXPECT_TRUE(RunLint("src/common/foo.h", src).empty());
}

TEST(AflintTest, RawSocketFiresOnSyscallsOutsideNet) {
  std::string src =
      "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
      "int rc = ::poll(fds, n, 200);\n"
      "ssize_t got = recv(fd, buf, len, 0);\n"
      "setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-socket", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-socket", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-socket", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-socket", 4));
  // Tools and tests are covered too: transport belongs behind net::Client.
  EXPECT_TRUE(HasRule(RunLint("tools/foo.cc", src), "raw-socket"));
  EXPECT_TRUE(HasRule(RunLint("tests/foo_test.cc", src), "raw-socket"));
}

TEST(AflintTest, RawSocketExemptUnderSrcNet) {
  std::string src =
      "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"
      "int rc = ::poll(fds.data(), fds.size(), 200);\n";
  EXPECT_TRUE(RunLint("src/net/server.cc", src).empty());
  EXPECT_TRUE(RunLint("src/net/client.cc", src).empty());
}

TEST(AflintTest, RawSocketIgnoresMembersAndQualifiedNames) {
  std::string src =
      "client.connect(host, port);\n"
      "queue->send(frame);\n"
      "auto f = std::bind(&Foo::Run, this);\n"
      "dispatcher.poll();\n"
      "net::Bind(addr);\n"
      "int connect_retries = 3;\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RawSocketSuppressedByAllow) {
  std::string src =
      "// legacy shim. aflint:allow(raw-socket)\n"
      "int fd = socket(AF_INET, SOCK_STREAM, 0);\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RawFileIoFiresOnSyscallsOutsideIoAndWal) {
  std::string src =
      "int fd = open(path.c_str(), O_WRONLY | O_CREAT, 0644);\n"
      "ssize_t n = ::write(fd, buf, len);\n"
      "fsync(fd);\n"
      "rename(tmp.c_str(), final_path.c_str());\n"
      "FILE* f = fopen(path.c_str(), \"wb\");\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 4));
  EXPECT_TRUE(HasRuleAtLine(diags, "raw-file-io", 5));
  // Tools and tests too: durable bytes go through io::File everywhere, so
  // every harness write shares the same fault-injection points.
  EXPECT_TRUE(HasRule(RunLint("tools/foo.cc", src), "raw-file-io"));
  EXPECT_TRUE(HasRule(RunLint("tests/foo_test.cc", src), "raw-file-io"));
}

TEST(AflintTest, RawFileIoExemptUnderSrcIoAndWal) {
  std::string src =
      "int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);\n"
      "if (fsync(fd) != 0) return ErrnoStatus();\n"
      "rename(tmp.c_str(), final_path.c_str());\n";
  EXPECT_TRUE(RunLint("src/io/file_util.cc", src).empty());
  EXPECT_TRUE(RunLint("src/wal/wal.cc", src).empty());
  EXPECT_TRUE(RunLint("src/wal/checkpoint.cc", src).empty());
}

TEST(AflintTest, RawFileIoIgnoresMembersAndQualifiedNames) {
  std::string src =
      "file.open(path);\n"
      "stream->write(buf, len);\n"
      "io::WriteFileAtomic(path, bytes);\n"
      "writer_->fsync_policy();\n"
      "int write_batch = 3;\n"
      "std::ofstream out(path);\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RawFileIoSuppressedByAllow) {
  std::string src =
      "// event-loop doorbell, not durable state. aflint:allow(raw-file-io)\n"
      "(void)::write(wake_write_fd_, &byte, 1);\n";
  EXPECT_TRUE(RunLint("src/net/server.cc", src).empty());
}

TEST(AflintTest, DeprecatedBriefLimitsFiresOnWrites) {
  std::string src =
      "brief.deadline_ms = 50.0;\n"
      "b.max_result_rows = 10;\n"
      "brief.max_result_bytes += 4096;\n"
      "brief.cost_budget = 2.0;\n";
  auto diags = RunLint("src/workload/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "deprecated-brief-limits", 1));
  EXPECT_TRUE(HasRuleAtLine(diags, "deprecated-brief-limits", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "deprecated-brief-limits", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "deprecated-brief-limits", 4));
  EXPECT_TRUE(HasRule(RunLint("tests/foo_test.cc", src),
                      "deprecated-brief-limits"));
}

TEST(AflintTest, DeprecatedBriefLimitsExemptInProbeItself) {
  // probe.{h,cc} declare the aliases and fold them in EffectiveLimits().
  std::string src = "brief.deadline_ms = 50.0;\n";
  EXPECT_TRUE(RunLint("src/core/probe.h", src).empty());
  EXPECT_TRUE(RunLint("src/core/probe.cc", src).empty());
}

TEST(AflintTest, DeprecatedBriefLimitsIgnoresReadsAndNewApi) {
  std::string src =
      "if (brief.deadline_ms == 50.0) Use(brief);\n"
      "double d = *brief.deadline_ms;\n"
      "bool set = brief.max_result_rows.has_value();\n"
      "limits.cost_budget = 3.0;\n"  // ResourceLimits field, not the alias
      "brief.limits.DeadlineMillis(10.0);\n";
  EXPECT_TRUE(RunLint("src/workload/foo.cc", src).empty());
}

TEST(AflintTest, DeprecatedBriefLimitsSuppressedByAllow) {
  std::string src =
      "// exercising the fold. aflint:allow(deprecated-brief-limits)\n"
      "brief.deadline_ms = 50.0;\n";
  EXPECT_TRUE(RunLint("tests/foo_test.cc", src).empty());
}

TEST(AflintTest, RowValueInKernelFiresInsideRegion) {
  std::string src =
      "// aflint:kernel-begin\n"
      "void K(const Row& rows) {\n"
      "  Value v = rows[0];\n"
      "  EvalExpr(*expr, rows);\n"
      "}\n"
      "// aflint:kernel-end\n";
  auto diags = RunLint("src/exec/foo.cc", src);
  EXPECT_TRUE(HasRuleAtLine(diags, "row-value-in-kernel", 2));
  EXPECT_TRUE(HasRuleAtLine(diags, "row-value-in-kernel", 3));
  EXPECT_TRUE(HasRuleAtLine(diags, "row-value-in-kernel", 4));
}

TEST(AflintTest, RowValueInKernelCleanOutsideRegion) {
  // The same tokens are the normal currency of non-kernel code.
  std::string src =
      "Value EvalExpr(const BoundExpr& e, const Row& row);\n"
      "// aflint:kernel-begin\n"
      "void K(const int64_t* a, uint32_t* sel) { sel[0] = a[0] > 0; }\n"
      "// aflint:kernel-end\n"
      "bool EvalPredicate(const BoundExpr& e, const Row& row);\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RowValueInKernelEndResetsRegion) {
  std::string src =
      "// aflint:kernel-begin\n"
      "void K(const double* x, uint8_t* out);\n"
      "// aflint:kernel-end\n"
      "Row Materialize(const Value& v);\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RowValueInKernelSuppressedByAllow) {
  std::string src =
      "// aflint:kernel-begin\n"
      "// boundary gather: rows come from the left side's pad slots.\n"
      "// aflint:allow(row-value-in-kernel)\n"
      "void Gather(const Value* cells, int64_t* out);\n"
      "// aflint:kernel-end\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, RowValueInKernelIgnoresSubstringsAndQualifiedNames) {
  std::string src =
      "// aflint:kernel-begin\n"
      "void K(const int64_t* RowMajor, int GetRows, int xValue);\n"
      "void L() { detail::Value(); }\n"
      "// aflint:kernel-end\n";
  EXPECT_TRUE(RunLint("src/exec/foo.cc", src).empty());
}

TEST(AflintTest, CommentsAndStringsAreScrubbed) {
  std::string src =
      "// std::thread in prose, rand() too, std::cout as well\n"
      "/* std::lock_guard<std::mutex> in a block comment */\n"
      "const char* kSql = \"SELECT rand() FROM t\";\n"
      "const char* kMsg = \"std::cout << std::thread\";\n";
  EXPECT_TRUE(RunLint("src/sql/foo.cc", src).empty());
}

TEST(AflintTest, RawStringLiteralsAreScrubbed) {
  std::string src =
      "const char* kFixture = R\"(\n"
      "  std::thread t; std::cout << rand();\n"
      ")\";\n";
  EXPECT_TRUE(RunLint("src/sql/foo.cc", src).empty());
}

TEST(AflintTest, PreprocessorLinesAreSkipped) {
  // Macro definitions (including continuation lines) are neither scanned
  // for fault points nor allowed to confuse the scope machine.
  std::string src =
      "#define MY_POINT(site)                  \\\n"
      "  do {                                  \\\n"
      "    AF_FAULT_POINT(site);               \\\n"
      "  } while (0)\n"
      "Status F() {\n"
      "  MY_POINT(\"x\");\n"
      "  return Status::OK();\n"
      "}\n";
  EXPECT_TRUE(RunLint("src/core/foo.cc", src).empty());
}

TEST(AflintTest, DiagnosticToStringIsGnuStyle) {
  std::string src = "void F() { std::thread t([] {}); }\n";
  auto diags = RunLint("src/agents/foo.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  std::string text = diags[0].ToString();
  EXPECT_NE(text.find("src/agents/foo.cc:1: error:"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[raw-thread]"), std::string::npos) << text;
}

TEST(AflintTest, MultipleViolationsComeBackInLineOrder) {
  std::string src =
      "void F() { std::thread t([] {}); }\n"
      "int G() { return rand(); }\n"
      "void H() { std::cout << 1; }\n";
  auto diags = RunLint("src/core/foo.cc", src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].rule, "raw-thread");
  EXPECT_EQ(diags[1].rule, "unseeded-random");
  EXPECT_EQ(diags[2].rule, "iostream-in-lib");
}

}  // namespace
}  // namespace lint
}  // namespace agentfirst
