// Tests for CSV import/export, memory-store persistence, branch diffs, and
// probe dry runs.

#include <cstdio>
#include <fstream>

#include "core/system.h"
#include "gtest/gtest.h"
#include "catalog/csv.h"
#include "test_util.h"
#include "txn/branch_manager.h"

namespace agentfirst {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// CSV line parsing
// ---------------------------------------------------------------------------

TEST(CsvLineTest, SimpleFields) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvLineTest, QuotedFieldsWithCommasAndQuotes) {
  auto fields = ParseCsvLine("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0], "a,b");
  EXPECT_EQ((*fields)[1], "say \"hi\"");
  EXPECT_EQ((*fields)[2], "plain");
}

TEST(CsvLineTest, EmptyFieldsAndQuotedEmpty) {
  std::vector<bool> quoted;
  auto fields = ParseCsvLine("a,,\"\"", &quoted);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[1], "");
  EXPECT_FALSE(quoted[1]);  // NULL
  EXPECT_EQ((*fields)[2], "");
  EXPECT_TRUE(quoted[2]);   // empty string
}

TEST(CsvLineTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(ParseCsvLine("\"oops").ok());
}

// ---------------------------------------------------------------------------
// CSV round trip
// ---------------------------------------------------------------------------

class CsvTest : public testing_util::PeopleDbTest {};

TEST_F(CsvTest, ExportImportRoundTrip) {
  auto table = catalog_.GetTable("people");
  ASSERT_TRUE(table.ok());
  std::string path = TempPath("people.csv");
  ASSERT_TRUE(ExportCsv(**table, path).ok());

  Catalog fresh;
  auto imported = ImportCsv(&fresh, "people", (*table)->schema(), path);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ((*imported)->NumRows(), (*table)->NumRows());
  for (size_t r = 0; r < (*table)->NumRows(); ++r) {
    Row a = *(*table)->GetRow(r);
    Row b = *(*imported)->GetRow(r);
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      bool both_null = a[c].is_null() && b[c].is_null();
      EXPECT_TRUE(both_null || a[c].Equals(b[c]))
          << "row " << r << " col " << c << ": " << a[c].ToString() << " vs "
          << b[c].ToString();
    }
  }
  std::remove(path.c_str());
}

TEST_F(CsvTest, NullsRoundTrip) {
  // erin has a NULL age.
  auto table = catalog_.GetTable("people");
  std::string path = TempPath("people_nulls.csv");
  ASSERT_TRUE(ExportCsv(**table, path).ok());
  Catalog fresh;
  auto imported = ImportCsv(&fresh, "p2", (*table)->schema(), path);
  ASSERT_TRUE(imported.ok());
  size_t nulls = 0;
  for (size_t r = 0; r < (*imported)->NumRows(); ++r) {
    if ((*(*imported)->GetRow(r))[2].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 1u);
  std::remove(path.c_str());
}

TEST_F(CsvTest, SpecialCharactersSurvive) {
  Catalog c;
  Schema schema({ColumnDef("s", DataType::kString, true, "t")});
  auto t = *c.CreateTable("t", schema);
  ASSERT_TRUE(t->AppendRow({Value::String("has,comma")}).ok());
  ASSERT_TRUE(t->AppendRow({Value::String("has \"quote\"")}).ok());
  ASSERT_TRUE(t->AppendRow({Value::String("")}).ok());  // empty, not NULL
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  std::string path = TempPath("special.csv");
  ASSERT_TRUE(ExportCsv(*t, path).ok());
  Catalog fresh;
  auto imported = ImportCsv(&fresh, "t", schema, path);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ((*(*imported)->GetRow(0))[0].string_value(), "has,comma");
  EXPECT_EQ((*(*imported)->GetRow(1))[0].string_value(), "has \"quote\"");
  EXPECT_EQ((*(*imported)->GetRow(2))[0].string_value(), "");
  EXPECT_TRUE((*(*imported)->GetRow(3))[0].is_null());
  std::remove(path.c_str());
}

TEST_F(CsvTest, HeaderMismatchRejected) {
  auto table = catalog_.GetTable("people");
  std::string path = TempPath("people_hdr.csv");
  ASSERT_TRUE(ExportCsv(**table, path).ok());
  Catalog fresh;
  Schema wrong({ColumnDef("nope", DataType::kInt64, true, "x")});
  EXPECT_FALSE(ImportCsv(&fresh, "x", wrong, path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, BadTypedFieldRejected) {
  std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "n\nnot_a_number\n";
  }
  Catalog fresh;
  Schema schema({ColumnDef("n", DataType::kInt64, true, "x")});
  auto r = ImportCsv(&fresh, "x", schema, path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, MalformedRowsReportOneBasedLineNumbers) {
  Schema schema({ColumnDef("n", DataType::kInt64, true, "x"),
                 ColumnDef("s", DataType::kString, true, "x")});
  struct Case {
    const char* body;           // after the "n,s" header
    const char* expect_in_msg;  // substring the error must carry
    StatusCode code;
  };
  const Case cases[] = {
      // Row 3 (header is line 1) has too few fields.
      {"1,a\n2\n3,c\n", "line 3", StatusCode::kInvalidArgument},
      // Row 2 has an unterminated quote.
      {"1,\"oops\n", "line 2", StatusCode::kInvalidArgument},
      // Row 4 has a non-numeric BIGINT.
      {"1,a\n2,b\nx,c\n", "line 4", StatusCode::kInvalidArgument},
      // Row 2 overflows int64.
      {"99999999999999999999999,a\n", "line 2", StatusCode::kOutOfRange},
  };
  for (const Case& c : cases) {
    std::string path = TempPath("malformed.csv");
    {
      std::ofstream out(path);
      out << "n,s\n" << c.body;
    }
    Catalog fresh;
    auto r = ImportCsv(&fresh, "x", schema, path);
    ASSERT_FALSE(r.ok()) << c.body;
    EXPECT_EQ(r.status().code(), c.code) << r.status().ToString();
    EXPECT_NE(r.status().message().find(c.expect_in_msg), std::string::npos)
        << "message '" << r.status().message() << "' should name "
        << c.expect_in_msg;
    // A failed import never leaves a half-filled table behind.
    EXPECT_FALSE(fresh.GetTable("x").ok());
    std::remove(path.c_str());
  }
}

TEST_F(CsvTest, UnterminatedQuoteInHeaderNamesLineOne) {
  std::string path = TempPath("badhdr.csv");
  {
    std::ofstream out(path);
    out << "\"n\n1\n";
  }
  Catalog fresh;
  Schema schema({ColumnDef("n", DataType::kInt64, true, "x")});
  auto r = ImportCsv(&fresh, "x", schema, path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Memory store persistence
// ---------------------------------------------------------------------------

TEST(MemoryPersistenceTest, SaveLoadRoundTrip) {
  Catalog catalog;
  (void)catalog.CreateTable("sales", Schema({ColumnDef("x", DataType::kInt64)}));
  AgenticMemoryStore store(&catalog, {});

  MemoryArtifact note;
  note.kind = ArtifactKind::kColumnEncoding;
  note.key = "encoding:sales.state";
  note.content = "values look like 'California'\nwith a newline and\ttab";
  note.table_deps = {"sales"};
  note.owner = "agent1";
  store.Put(std::move(note));

  MemoryArtifact result;  // probe results are not persisted
  result.kind = ArtifactKind::kProbeResult;
  result.key = "probe_result:123";
  store.Put(std::move(result));

  std::string path = TempPath("memory.tsv");
  ASSERT_TRUE(store.SaveToFile(path).ok());

  AgenticMemoryStore restored(&catalog, {});
  auto loaded = restored.LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 1u);  // only the grounding note
  auto hit = restored.GetExact("encoding:sales.state", "agent1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->artifact->content,
            "values look like 'California'\nwith a newline and\ttab");
  EXPECT_EQ(hit->artifact->table_deps, std::vector<std::string>{"sales"});
  std::remove(path.c_str());
}

TEST(MemoryPersistenceTest, LoadedArtifactsSearchable) {
  Catalog catalog;
  AgenticMemoryStore store(&catalog, {});
  MemoryArtifact a;
  a.kind = ArtifactKind::kSchemaNote;
  a.key = "note:coffee";
  a.content = "coffee revenue lives in the sales table";
  store.Put(std::move(a));
  std::string path = TempPath("memory2.tsv");
  ASSERT_TRUE(store.SaveToFile(path).ok());

  AgenticMemoryStore restored(&catalog, {});
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  auto hits = restored.Search("coffee revenue", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].artifact->key, "note:coffee");
  std::remove(path.c_str());
}

TEST(MemoryPersistenceTest, MissingFileIsNotFound) {
  Catalog catalog;
  AgenticMemoryStore store(&catalog, {});
  EXPECT_EQ(store.LoadFromFile("/nonexistent/nowhere.tsv").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Branch diff
// ---------------------------------------------------------------------------

TEST(BranchDiffTest, ReportsChangedCellsAndAppends) {
  Table table("t", Schema({ColumnDef("a", DataType::kInt64, true, "t"),
                           ColumnDef("b", DataType::kString, true, "t")}));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table.AppendRow({Value::Int(i), Value::String("x")}).ok());
  }
  BranchManager manager;
  ASSERT_TRUE(manager.ImportTable(table).ok());
  auto b = *manager.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager.Write(b, "t", 2, 0, Value::Int(99)).ok());
  ASSERT_TRUE(manager.Write(b, "t", 2, 0, Value::Int(2)).ok());  // reverted!
  ASSERT_TRUE(manager.Write(b, "t", 3, 1, Value::String("y")).ok());
  ASSERT_TRUE(manager.Append(b, "t", {Value::Int(100), Value::String("new")}).ok());

  auto deltas = manager.Diff(b);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 2u);  // reverted cell is not a delta
  const auto& changed = (*deltas)[0];
  EXPECT_FALSE(changed.appended);
  EXPECT_EQ(changed.row, 3u);
  EXPECT_EQ(changed.col, 1u);
  EXPECT_EQ(changed.base.string_value(), "x");
  EXPECT_EQ(changed.current.string_value(), "y");
  EXPECT_TRUE((*deltas)[1].appended);
  EXPECT_EQ((*deltas)[1].row, 5u);
}

TEST(BranchDiffTest, CleanBranchHasEmptyDiff) {
  Table table("t", Schema({ColumnDef("a", DataType::kInt64, true, "t")}));
  ASSERT_TRUE(table.AppendRow({Value::Int(1)}).ok());
  BranchManager manager;
  ASSERT_TRUE(manager.ImportTable(table).ok());
  auto b = *manager.Fork(BranchManager::kMainBranch);
  auto deltas = manager.Diff(b);
  ASSERT_TRUE(deltas.ok());
  EXPECT_TRUE(deltas->empty());
  EXPECT_FALSE(manager.Diff(777).ok());
}

// ---------------------------------------------------------------------------
// Probe dry runs
// ---------------------------------------------------------------------------

TEST(DryRunTest, EstimatesWithoutExecuting) {
  AgentFirstSystem db;
  testing_util::BuildPeopleDb(db.engine());
  Probe probe;
  probe.dry_run = true;
  probe.queries = {"SELECT count(*) FROM people",
                   "SELECT * FROM people CROSS JOIN orders"};
  auto r = db.HandleProbe(probe);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), 2u);
  for (const QueryAnswer& a : r->answers) {
    EXPECT_TRUE(a.skipped);
    EXPECT_EQ(a.result, nullptr);
    EXPECT_GT(a.estimated_cost, 0.0);
    EXPECT_FALSE(a.plan_text.empty());
  }
  // Cross join estimate dwarfs the count.
  EXPECT_GT(r->answers[1].estimated_cost, r->answers[0].estimated_cost);
  // Nothing executed, nothing remembered.
  EXPECT_EQ(db.optimizer()->metrics().queries_executed, 0u);
}

TEST(DryRunTest, BindErrorsStillReported) {
  AgentFirstSystem db;
  testing_util::BuildPeopleDb(db.engine());
  Probe probe;
  probe.dry_run = true;
  probe.queries = {"SELECT nope FROM people"};
  auto r = db.HandleProbe(probe);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->answers[0].status.ok());
}

}  // namespace
}  // namespace agentfirst
