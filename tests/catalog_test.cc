#include "catalog/catalog.h"

#include "catalog/info_schema.h"
#include "catalog/stats.h"
#include "gtest/gtest.h"

namespace agentfirst {
namespace {

Schema SimpleSchema(const std::string& table) {
  return Schema({ColumnDef("id", DataType::kInt64, false, table),
                 ColumnDef("v", DataType::kFloat64, true, table),
                 ColumnDef("s", DataType::kString, true, table)});
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  auto t = catalog.CreateTable("t1", SimpleSchema("t1"));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(catalog.HasTable("t1"));
  EXPECT_TRUE(catalog.GetTable("t1").ok());
  EXPECT_FALSE(catalog.GetTable("nope").ok());
  ASSERT_TRUE(catalog.DropTable("t1").ok());
  EXPECT_FALSE(catalog.HasTable("t1"));
  EXPECT_FALSE(catalog.DropTable("t1").ok());
}

TEST(CatalogTest, DuplicateCreateFails) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", SimpleSchema("t")).ok());
  EXPECT_FALSE(catalog.CreateTable("t", SimpleSchema("t")).ok());
}

TEST(CatalogTest, SchemaVersionBumpsOnDdl) {
  Catalog catalog;
  uint64_t v0 = catalog.schema_version();
  ASSERT_TRUE(catalog.CreateTable("a", SimpleSchema("a")).ok());
  uint64_t v1 = catalog.schema_version();
  EXPECT_GT(v1, v0);
  ASSERT_TRUE(catalog.DropTable("a").ok());
  EXPECT_GT(catalog.schema_version(), v1);
}

TEST(CatalogTest, ListTablesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("zeta", SimpleSchema("zeta")).ok());
  ASSERT_TRUE(catalog.CreateTable("alpha", SimpleSchema("alpha")).ok());
  auto names = catalog.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable("t", SimpleSchema("t"));
    ASSERT_TRUE(t.ok());
    table_ = *t;
    // 100 rows: id 0..99, v = id * 0.5, s cycles over 4 values, v NULL
    // every 10th row.
    for (int i = 0; i < 100; ++i) {
      Value v = (i % 10 == 0) ? Value::Null() : Value::Double(i * 0.5);
      std::string s = "cat" + std::to_string(i % 4);
      ASSERT_TRUE(table_->AppendRow({Value::Int(i), v, Value::String(s)}).ok());
    }
  }

  Catalog catalog_;
  TablePtr table_;
};

TEST_F(StatsTest, BasicCounts) {
  auto stats = catalog_.GetStats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)->row_count, 100u);
  ASSERT_EQ((*stats)->columns.size(), 3u);
  const ColumnStats& id = (*stats)->columns[0];
  EXPECT_EQ(id.null_count, 0u);
  EXPECT_EQ(id.distinct_count, 100u);
  EXPECT_EQ(id.min.int_value(), 0);
  EXPECT_EQ(id.max.int_value(), 99);
  const ColumnStats& v = (*stats)->columns[1];
  EXPECT_EQ(v.null_count, 10u);
  const ColumnStats& s = (*stats)->columns[2];
  EXPECT_EQ(s.distinct_count, 4u);
}

TEST_F(StatsTest, TopValues) {
  auto stats = catalog_.GetStats("t");
  ASSERT_TRUE(stats.ok());
  const ColumnStats& s = (*stats)->columns[2];
  ASSERT_EQ(s.top_values.size(), 4u);
  EXPECT_EQ(s.top_values[0].second, 25u);  // each of 4 values appears 25x
}

TEST_F(StatsTest, EqualitySelectivity) {
  auto stats = catalog_.GetStats("t");
  ASSERT_TRUE(stats.ok());
  const ColumnStats& s = (*stats)->columns[2];
  EXPECT_NEAR(s.EqualitySelectivity(Value::String("cat1")), 0.25, 1e-9);
  // Unknown value: uniformity assumption over NDV.
  double unknown = s.EqualitySelectivity(Value::String("nope"));
  EXPECT_GT(unknown, 0.0);
  EXPECT_LE(unknown, 0.3);
}

TEST_F(StatsTest, RangeSelectivity) {
  auto stats = catalog_.GetStats("t");
  ASSERT_TRUE(stats.ok());
  const ColumnStats& id = (*stats)->columns[0];
  double below_half = id.RangeSelectivity("<", Value::Int(50));
  EXPECT_NEAR(below_half, 0.5, 0.1);
  EXPECT_NEAR(id.RangeSelectivity(">", Value::Int(50)), 0.5, 0.1);
  EXPECT_NEAR(id.RangeSelectivity("<", Value::Int(1000)), 1.0, 0.05);
  EXPECT_NEAR(id.RangeSelectivity(">", Value::Int(1000)), 0.0, 0.05);
}

TEST_F(StatsTest, SampleIsBounded) {
  auto stats = catalog_.GetStats("t");
  ASSERT_TRUE(stats.ok());
  for (const ColumnStats& cs : (*stats)->columns) {
    EXPECT_LE(cs.sample.size(), ColumnStats::kSampleSize);
  }
}

TEST_F(StatsTest, CacheInvalidatedByWrites) {
  auto s1 = catalog_.GetStats("t");
  ASSERT_TRUE(s1.ok());
  uint64_t count1 = (*s1)->row_count;
  ASSERT_TRUE(table_->AppendRow({Value::Int(100), Value::Double(1.0),
                                 Value::String("cat0")}).ok());
  auto s2 = catalog_.GetStats("t");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ((*s2)->row_count, count1 + 1);
}

TEST(InfoSchemaTest, TablesView) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t1", SimpleSchema("t1")).ok());
  ASSERT_TRUE(catalog.CreateTable("t2", SimpleSchema("t2")).ok());
  auto view = BuildInfoSchemaTable(catalog, kInfoSchemaTables);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumRows(), 2u);
  EXPECT_EQ((*view)->GetRow(0)->at(0).string_value(), "t1");
  EXPECT_EQ((*view)->GetRow(0)->at(2).int_value(), 3);  // num_columns
}

TEST(InfoSchemaTest, ColumnsView) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t1", SimpleSchema("t1")).ok());
  auto view = BuildInfoSchemaTable(catalog, kInfoSchemaColumns);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumRows(), 3u);
  EXPECT_EQ((*view)->GetRow(0)->at(1).string_value(), "id");
  EXPECT_EQ((*view)->GetRow(0)->at(2).string_value(), "BIGINT");
}

TEST(InfoSchemaTest, UnknownViewRejected) {
  Catalog catalog;
  EXPECT_FALSE(BuildInfoSchemaTable(catalog, "information_schema.bogus").ok());
  EXPECT_TRUE(IsInfoSchemaTable(kInfoSchemaTables));
  EXPECT_TRUE(IsInfoSchemaTable(kInfoSchemaColumns));
  EXPECT_FALSE(IsInfoSchemaTable("tables"));
}

}  // namespace
}  // namespace agentfirst
