// End-to-end scenarios exercising the full agent-first stack: probes with
// briefs through the optimizer, steering, memory, semantic search, and
// branched updates together.

#include "core/system.h"

#include "agents/ensemble.h"
#include "agents/sim_agent.h"
#include "gtest/gtest.h"
#include "workload/minibird.h"

namespace agentfirst {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<AgentFirstSystem>();
    auto run = [&](const std::string& sql) {
      auto r = system_->ExecuteSql(sql);
      ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    };
    run("CREATE TABLE stores (store_id BIGINT, city VARCHAR, state VARCHAR)");
    run("INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'), (3,'Seattle','Washington')");
    run("CREATE TABLE bean_sales (sale_id BIGINT, store_id BIGINT, year BIGINT,"
        " revenue DOUBLE)");
    std::string insert = "INSERT INTO bean_sales VALUES ";
    for (int i = 0; i < 300; ++i) {
      if (i > 0) insert += ",";
      int store = 1 + i % 3;
      int year = (i % 2 == 0) ? 2024 : 2025;
      double revenue = 10.0 + (i % 7) * 3.0 - (year == 2025 ? 4.0 : 0.0);
      insert += "(" + std::to_string(i) + "," + std::to_string(store) + "," +
                std::to_string(year) + "," + std::to_string(revenue) + ")";
    }
    run(insert);
  }

  std::unique_ptr<AgentFirstSystem> system_;
};

TEST_F(IntegrationTest, CoffeeProfitsInvestigationFlow) {
  // 1. Exploration probe: what tables exist?
  Probe explore;
  explore.agent_id = "analyst";
  explore.queries = {"SELECT table_name FROM information_schema.tables"};
  explore.brief.text = "exploring: why did coffee bean profits drop in Berkeley";
  auto r1 = system_->HandleProbe(explore);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1->answers[0].status.ok());
  EXPECT_EQ(r1->answers[0].result->rows.size(), 2u);

  // 2. Wrong encoding attempt: 'CA' instead of 'California'.
  Probe wrong;
  wrong.agent_id = "analyst";
  wrong.queries = {"SELECT store_id FROM stores WHERE state = 'CA'"};
  wrong.brief.text = "attempting part of the query";
  auto r2 = system_->HandleProbe(wrong);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->answers[0].result->rows.empty());
  bool why_not = false;
  for (const Hint& h : r2->hints) {
    if (h.kind == HintKind::kWhyEmptyResult &&
        h.text.find("California") != std::string::npos) {
      why_not = true;
    }
  }
  EXPECT_TRUE(why_not) << "sleeper agent should explain the empty result";

  // 3. Corrected full query, validation phase.
  Probe final_probe;
  final_probe.agent_id = "analyst";
  final_probe.queries = {
      "SELECT s.year, sum(s.revenue) AS total FROM bean_sales s JOIN stores st "
      "ON s.store_id = st.store_id WHERE st.city = 'Berkeley' GROUP BY s.year "
      "ORDER BY s.year"};
  final_probe.brief.text = "validate the final answer exactly";
  auto r3 = system_->HandleProbe(final_probe);
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r3->answers[0].status.ok());
  ASSERT_EQ(r3->answers[0].result->rows.size(), 2u);
  double y2024 = r3->answers[0].result->rows[0][1].AsDouble();
  double y2025 = r3->answers[0].result->rows[1][1].AsDouble();
  EXPECT_GT(y2024, y2025);  // profits really dropped

  // 4. The same probe again is served from agentic memory.
  auto r4 = system_->HandleProbe(final_probe);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4->answers[0].from_memory);
}

TEST_F(IntegrationTest, SemanticDiscoveryThenQuery) {
  Probe discover;
  discover.semantic_search_phrase = "bean revenue";
  auto r = system_->HandleProbe(discover);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->discoveries.empty());
  bool found_sales = false;
  for (const SemanticMatch& m : r->discoveries) {
    if (m.table == "bean_sales") found_sales = true;
  }
  EXPECT_TRUE(found_sales);
}

TEST_F(IntegrationTest, BranchedWhatIfUpdates) {
  ASSERT_TRUE(system_->EnableBranching("stores").ok());
  BranchManager* branches = system_->branches();

  // Fork three hypothesis branches, mutate each differently.
  auto b1 = *branches->Fork(BranchManager::kMainBranch);
  auto b2 = *branches->Fork(BranchManager::kMainBranch);
  auto b3 = *branches->Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(branches->Write(b1, "stores", 0, 1, Value::String("Albany")).ok());
  ASSERT_TRUE(branches->Write(b2, "stores", 1, 1, Value::String("Alameda")).ok());
  ASSERT_TRUE(branches->Write(b3, "stores", 2, 1, Value::String("Tacoma")).ok());

  // Pick b2; roll back the others; merge the winner.
  ASSERT_TRUE(branches->Rollback(b1).ok());
  ASSERT_TRUE(branches->Rollback(b3).ok());
  auto report = branches->Merge(b2, BranchManager::kMainBranch,
                                MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(branches->Read(BranchManager::kMainBranch, "stores", 1, 1)->string_value(),
            "Alameda");
  // The catalog's original table is untouched (branching is a separate
  // world until explicitly written back).
  auto original = system_->ExecuteSql(
      "SELECT city FROM stores WHERE store_id = 2");
  ASSERT_TRUE(original.ok());
  EXPECT_EQ((*original)->rows[0][0].string_value(), "Oakland");
}

TEST_F(IntegrationTest, MiniBirdEndToEndEpisode) {
  MiniBirdOptions options;
  options.num_databases = 1;
  options.rows_per_fact_table = 200;
  options.rows_per_dim_table = 8;
  options.seed = 99;
  auto suite = GenerateMiniBird(options);
  ASSERT_EQ(suite.size(), 1u);
  const TaskSpec& task = suite[0].tasks[2];  // retail_avg_price: no trap
  bool solved_any = false;
  for (uint64_t seed = 1; seed <= 8 && !solved_any; ++seed) {
    EpisodeOptions eo;
    eo.seed = seed;
    solved_any = RunEpisode(suite[0].system.get(), task,
                            StrongAgentProfile(), eo).solved;
  }
  EXPECT_TRUE(solved_any);
}

TEST_F(IntegrationTest, MixedWorkloadKeepsCachesCoherent) {
  // Interleave probes and writes; answers must always reflect latest data.
  Probe count_probe;
  count_probe.queries = {"SELECT count(*) FROM bean_sales"};
  count_probe.brief.text = "verify exactly";
  auto r1 = system_->HandleProbe(count_probe);
  ASSERT_TRUE(r1.ok());
  int64_t c1 = r1->answers[0].result->rows[0][0].int_value();

  ASSERT_TRUE(system_->ExecuteSql(
      "INSERT INTO bean_sales VALUES (9999, 1, 2025, 42.0)").ok());

  auto r2 = system_->HandleProbe(count_probe);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->answers[0].result->rows[0][0].int_value(), c1 + 1);

  ASSERT_TRUE(system_->ExecuteSql(
      "DELETE FROM bean_sales WHERE sale_id = 9999").ok());
  auto r3 = system_->HandleProbe(count_probe);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->answers[0].result->rows[0][0].int_value(), c1);
}

}  // namespace
}  // namespace agentfirst
