// Edge cases of the branch manager's three-way merge and bookkeeping, beyond
// the core coverage in branch_test.cc.

#include "gtest/gtest.h"
#include "txn/branch_manager.h"

namespace agentfirst {
namespace {

class MergeEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table table("t", Schema({ColumnDef("k", DataType::kInt64, false, "t"),
                             ColumnDef("v", DataType::kString, true, "t")}),
                /*segment_capacity=*/4);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(table.AppendRow({Value::Int(i), Value::String("base")}).ok());
    }
    ASSERT_TRUE(manager_.ImportTable(table).ok());
  }

  BranchManager manager_;
};

TEST_F(MergeEdgeTest, AppendsOnBothSidesConcatenate) {
  auto src = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Append(BranchManager::kMainBranch, "t",
                              {Value::Int(100), Value::String("dst-new")}).ok());
  ASSERT_TRUE(manager_.Append(src, "t",
                              {Value::Int(200), Value::String("src-new")}).ok());
  auto report = manager_.Merge(src, BranchManager::kMainBranch,
                               MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(report->rows_appended, 1u);
  EXPECT_EQ(*manager_.NumRows(BranchManager::kMainBranch, "t"), 8u);
  // Both appended rows present.
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "t", 6, 0)->int_value(), 100);
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "t", 7, 0)->int_value(), 200);
}

TEST_F(MergeEdgeTest, SameValueOnBothSidesIsNotAConflict) {
  auto a = *manager_.Fork(BranchManager::kMainBranch);
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(a, "t", 1, 1, Value::String("agreed")).ok());
  ASSERT_TRUE(manager_.Write(b, "t", 1, 1, Value::String("agreed")).ok());
  ASSERT_TRUE(manager_.Merge(a, BranchManager::kMainBranch,
                             MergePolicy::kFailOnConflict)->committed);
  auto report = manager_.Merge(b, BranchManager::kMainBranch,
                               MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->conflicts.empty());
}

TEST_F(MergeEdgeTest, NullTransitionsDetected) {
  auto src = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(src, "t", 2, 1, Value::Null()).ok());
  auto report = manager_.Merge(src, BranchManager::kMainBranch,
                               MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(report->cells_applied, 1u);
  EXPECT_TRUE(manager_.Read(BranchManager::kMainBranch, "t", 2, 1)->is_null());
}

TEST_F(MergeEdgeTest, MergeUnknownEndpointsRejected) {
  EXPECT_FALSE(manager_.Merge(42, BranchManager::kMainBranch,
                              MergePolicy::kFailOnConflict).ok());
  EXPECT_FALSE(manager_.Merge(BranchManager::kMainBranch, 42,
                              MergePolicy::kFailOnConflict).ok());
}

TEST_F(MergeEdgeTest, FailedMergeLeavesSourceIntact) {
  auto a = *manager_.Fork(BranchManager::kMainBranch);
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(a, "t", 3, 1, Value::String("A")).ok());
  ASSERT_TRUE(manager_.Write(b, "t", 3, 1, Value::String("B")).ok());
  ASSERT_TRUE(manager_.Merge(a, BranchManager::kMainBranch,
                             MergePolicy::kFailOnConflict)->committed);
  auto report = manager_.Merge(b, BranchManager::kMainBranch,
                               MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->committed);
  // Source branch b still holds its value and can retry under a policy.
  EXPECT_EQ(manager_.Read(b, "t", 3, 1)->string_value(), "B");
  auto retry = manager_.Merge(b, BranchManager::kMainBranch,
                              MergePolicy::kSourceWins);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->committed);
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "t", 3, 1)->string_value(), "B");
}

TEST_F(MergeEdgeTest, StatsCountersAdvance) {
  auto before = manager_.stats();
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b, "t", 0, 1, Value::String("x")).ok());
  ASSERT_TRUE(manager_.Merge(b, BranchManager::kMainBranch,
                             MergePolicy::kSourceWins)->committed);
  ASSERT_TRUE(manager_.Rollback(b).ok());
  auto after = manager_.stats();
  EXPECT_EQ(after.forks, before.forks + 1);
  EXPECT_EQ(after.merges, before.merges + 1);
  EXPECT_EQ(after.rollbacks, before.rollbacks + 1);
  EXPECT_GT(after.segments_cloned, before.segments_cloned);
  EXPECT_GT(after.cells_written, before.cells_written);
}

TEST_F(MergeEdgeTest, DiffAfterMergeShowsDestinationChanges) {
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b, "t", 4, 1, Value::String("delta")).ok());
  ASSERT_TRUE(manager_.Merge(b, BranchManager::kMainBranch,
                             MergePolicy::kSourceWins)->committed);
  // The destination (main) now diverges from ITS base.
  auto deltas = manager_.Diff(BranchManager::kMainBranch);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 1u);
  EXPECT_EQ((*deltas)[0].current.string_value(), "delta");
}

TEST_F(MergeEdgeTest, ManyTablesMergeIndependently) {
  Table other("u", Schema({ColumnDef("x", DataType::kInt64, true, "u")}));
  ASSERT_TRUE(other.AppendRow({Value::Int(1)}).ok());
  ASSERT_TRUE(manager_.ImportTable(other).ok());
  auto b = *manager_.Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(manager_.Write(b, "t", 0, 1, Value::String("t-change")).ok());
  ASSERT_TRUE(manager_.Write(b, "u", 0, 0, Value::Int(99)).ok());
  auto report = manager_.Merge(b, BranchManager::kMainBranch,
                               MergePolicy::kFailOnConflict);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cells_applied, 2u);
  EXPECT_EQ(manager_.Read(BranchManager::kMainBranch, "u", 0, 0)->int_value(), 99);
}

}  // namespace
}  // namespace agentfirst
