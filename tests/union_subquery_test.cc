// Tests for UNION / UNION ALL and uncorrelated subquery expressions
// (EXISTS, IN (SELECT ...), scalar subqueries).

#include "gtest/gtest.h"
#include "plan/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::PeopleDbTest;

class UnionTest : public PeopleDbTest {};

TEST_F(UnionTest, ParserAcceptsUnionChains) {
  auto stmt = ParseSelect("SELECT a FROM t UNION SELECT b FROM u UNION ALL "
                          "SELECT c FROM v ORDER BY 1 LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->set_ops.size(), 2u);
  EXPECT_EQ((*stmt)->set_ops[0].op, SetOp::kUnion);
  EXPECT_EQ((*stmt)->set_ops[1].op, SetOp::kUnionAll);
  EXPECT_EQ((*stmt)->order_by.size(), 1u);
  EXPECT_EQ((*stmt)->limit.value(), 5);
}

TEST_F(UnionTest, UnionAllKeepsDuplicates) {
  auto rs = Run("SELECT city FROM people WHERE id = 1 UNION ALL "
                "SELECT city FROM people WHERE id = 3");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->NumRows(), 2u);  // both 'berkeley'
}

TEST_F(UnionTest, UnionDeduplicates) {
  auto rs = Run("SELECT city FROM people WHERE id = 1 UNION "
                "SELECT city FROM people WHERE id = 3");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "berkeley");
}

TEST_F(UnionTest, UnionAcrossTables) {
  auto rs = Run("SELECT name FROM people UNION ALL SELECT item FROM orders");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->NumRows(), 10u);  // 5 people + 5 orders
}

TEST_F(UnionTest, OrderByAndLimitApplyToWholeUnion) {
  auto rs = Run("SELECT age FROM people WHERE age IS NOT NULL UNION ALL "
                "SELECT order_id FROM orders ORDER BY 1 DESC LIMIT 3");
  ASSERT_NE(rs, nullptr);
  ASSERT_EQ(rs->NumRows(), 3u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 104);
  EXPECT_EQ(rs->rows[1][0].int_value(), 103);
}

TEST_F(UnionTest, ArityMismatchRejected) {
  auto r = engine_->ExecuteSql("SELECT id, name FROM people UNION SELECT id FROM people");
  EXPECT_FALSE(r.ok());
}

TEST_F(UnionTest, TypeMismatchRejected) {
  auto r = engine_->ExecuteSql("SELECT id FROM people UNION SELECT name FROM people");
  EXPECT_FALSE(r.ok());
}

TEST_F(UnionTest, MixedDistinctAllLeftToRight) {
  // (A UNION A) has 5 rows (distinct names); then UNION ALL adds 5 more.
  auto rs = Run("SELECT name FROM people UNION SELECT name FROM people "
                "UNION ALL SELECT name FROM people");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->NumRows(), 10u);
}

class SubqueryTest : public PeopleDbTest {};

TEST_F(SubqueryTest, ExistsTrueAndFalse) {
  auto t = Run("SELECT name FROM people WHERE EXISTS (SELECT 1 FROM orders "
               "WHERE amount > 50)");
  EXPECT_EQ(t->NumRows(), 5u);  // uncorrelated TRUE keeps everything
  auto f = Run("SELECT name FROM people WHERE EXISTS (SELECT 1 FROM orders "
               "WHERE amount > 5000)");
  EXPECT_EQ(f->NumRows(), 0u);
}

TEST_F(SubqueryTest, NotExists) {
  auto rs = Run("SELECT count(*) FROM people WHERE NOT EXISTS "
                "(SELECT 1 FROM orders WHERE amount > 5000)");
  EXPECT_EQ(rs->rows[0][0].int_value(), 5);
}

TEST_F(SubqueryTest, InSubquery) {
  auto rs = Run("SELECT name FROM people WHERE id IN "
                "(SELECT person_id FROM orders) ORDER BY name");
  ASSERT_EQ(rs->NumRows(), 3u);  // alice, bob, carol (9 dangles)
  EXPECT_EQ(rs->rows[0][0].string_value(), "alice");
}

TEST_F(SubqueryTest, NotInSubquery) {
  auto rs = Run("SELECT name FROM people WHERE id NOT IN "
                "(SELECT person_id FROM orders) ORDER BY name");
  ASSERT_EQ(rs->NumRows(), 2u);  // dan, erin
}

TEST_F(SubqueryTest, ScalarSubqueryInComparison) {
  auto rs = Run("SELECT name FROM people WHERE age > "
                "(SELECT avg(age) FROM people)");
  // avg = 30.5: alice (34), carol (41).
  EXPECT_EQ(rs->NumRows(), 2u);
}

TEST_F(SubqueryTest, ScalarSubqueryInSelectList) {
  auto rs = Run("SELECT name, (SELECT max(amount) FROM orders) AS top FROM "
                "people WHERE id = 1");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].double_value(), 99.0);
}

TEST_F(SubqueryTest, ScalarSubqueryWithAggregationOutside) {
  auto rs = Run("SELECT count(*), (SELECT min(amount) FROM orders) FROM people");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 5);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].double_value(), 5.0);
}

TEST_F(SubqueryTest, EmptyScalarSubqueryIsNull) {
  auto rs = Run("SELECT (SELECT age FROM people WHERE id = 999)");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_TRUE(rs->rows[0][0].is_null());
}

TEST_F(SubqueryTest, MultiRowScalarSubqueryRejected) {
  auto r = engine_->ExecuteSql("SELECT (SELECT age FROM people)");
  EXPECT_FALSE(r.ok());
}

TEST_F(SubqueryTest, MultiColumnInSubqueryRejected) {
  auto r = engine_->ExecuteSql(
      "SELECT name FROM people WHERE id IN (SELECT id, age FROM people)");
  EXPECT_FALSE(r.ok());
}

TEST_F(SubqueryTest, NestedSubqueries) {
  auto rs = Run("SELECT name FROM people WHERE id IN (SELECT person_id FROM "
                "orders WHERE amount > (SELECT avg(amount) FROM orders))");
  // avg amount = 29.7; orders above: 103 (carol).
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "carol");
}

TEST_F(SubqueryTest, SubqueryWithoutEvaluatorRejected) {
  auto parsed = ParseSelect("SELECT 1 WHERE EXISTS (SELECT 1)");
  ASSERT_TRUE(parsed.ok());
  Binder binder(&catalog_);  // no evaluator wired
  auto plan = binder.BindSelect(**parsed);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotImplemented);
}

TEST_F(SubqueryTest, SubqueryAstRoundTrips) {
  const char* queries[] = {
      "SELECT name FROM people WHERE EXISTS (SELECT 1 FROM orders)",
      "SELECT name FROM people WHERE id IN (SELECT person_id FROM orders)",
      "SELECT (SELECT max(amount) FROM orders) FROM people",
  };
  for (const char* q : queries) {
    auto first = ParseSelect(q);
    ASSERT_TRUE(first.ok()) << q;
    std::string rendered = (*first)->ToString();
    auto second = ParseSelect(rendered);
    ASSERT_TRUE(second.ok()) << rendered;
    EXPECT_EQ(rendered, (*second)->ToString());
  }
}

TEST_F(SubqueryTest, CloneDeepCopiesSubqueries) {
  auto stmt = ParseSelect(
      "SELECT name FROM people WHERE id IN (SELECT person_id FROM orders)");
  ASSERT_TRUE(stmt.ok());
  auto clone = (*stmt)->Clone();
  EXPECT_EQ((*stmt)->ToString(), clone->ToString());
}

}  // namespace
}  // namespace agentfirst
