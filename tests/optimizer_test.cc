#include "opt/rules.h"

#include "gtest/gtest.h"
#include "opt/cost_model.h"
#include "plan/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::PeopleDbTest;

class OptimizerTest : public PeopleDbTest {
 protected:
  PlanPtr Bind(const std::string& sql) {
    auto select = ParseSelect(sql);
    EXPECT_TRUE(select.ok());
    Binder binder(&catalog_);
    auto plan = binder.BindSelect(**select);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? *plan : nullptr;
  }
};

TEST_F(OptimizerTest, FoldConstantsCollapsesLiteralTrees) {
  auto parsed = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(parsed.ok());
  Binder binder(&catalog_);
  Schema empty;
  auto bound = binder.BindScalar(**parsed, empty);
  ASSERT_TRUE(bound.ok());
  BoundExprPtr folded = FoldConstants(std::move(*bound));
  ASSERT_EQ(folded->kind, BoundExprKind::kLiteral);
  EXPECT_EQ(folded->literal.int_value(), 7);
}

TEST_F(OptimizerTest, FoldConstantsKeepsColumnRefs) {
  auto plan = Bind("SELECT age + (1 + 2) FROM people");
  ASSERT_NE(plan, nullptr);
  PlanPtr optimized = OptimizePlan(plan);
  // The (1+2) subtree folds; the addition with the column stays.
  const BoundExpr& e = *optimized->project_exprs[0];
  ASSERT_EQ(e.kind, BoundExprKind::kBinary);
  EXPECT_EQ(e.children[1]->kind, BoundExprKind::kLiteral);
  EXPECT_EQ(e.children[1]->literal.int_value(), 3);
}

TEST_F(OptimizerTest, FilterPushedIntoScan) {
  PlanPtr plan = Bind("SELECT name FROM people WHERE age > 30");
  PlanPtr optimized = OptimizePlan(plan);
  // Project <- Scan(filter).
  ASSERT_EQ(optimized->kind, PlanKind::kProject);
  ASSERT_EQ(optimized->children[0]->kind, PlanKind::kScan);
  EXPECT_NE(optimized->children[0]->scan_filter, nullptr);
}

TEST_F(OptimizerTest, FilterSplitAcrossJoinSides) {
  PlanPtr plan = Bind(
      "SELECT name FROM people JOIN orders ON people.id = orders.person_id "
      "WHERE people.age > 30 AND orders.amount > 10");
  PlanPtr optimized = OptimizePlan(plan);
  // Both conjuncts should reach the scans below the join.
  std::function<size_t(const PlanNode&)> count_scan_filters =
      [&](const PlanNode& n) -> size_t {
    size_t c = n.kind == PlanKind::kScan && n.scan_filter != nullptr ? 1 : 0;
    for (const auto& ch : n.children) c += count_scan_filters(*ch);
    return c;
  };
  EXPECT_EQ(count_scan_filters(*optimized), 2u);
}

TEST_F(OptimizerTest, LeftJoinRightSideFilterStaysAbove) {
  PlanPtr plan = Bind(
      "SELECT name FROM people LEFT JOIN orders ON people.id = orders.person_id "
      "WHERE orders.amount > 10");
  PlanPtr optimized = OptimizePlan(plan);
  // The right-side conjunct must NOT be pushed below a LEFT join.
  std::function<bool(const PlanNode&)> scan_has_filter =
      [&](const PlanNode& n) -> bool {
    if (n.kind == PlanKind::kScan && n.table_name == "orders" &&
        n.scan_filter != nullptr) {
      return true;
    }
    for (const auto& ch : n.children) {
      if (scan_has_filter(*ch)) return true;
    }
    return false;
  };
  EXPECT_FALSE(scan_has_filter(*optimized));
}

// Property sweep: OptimizePlan never changes query results.
class RewriteEquivalenceTest
    : public PeopleDbTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(RewriteEquivalenceTest, OptimizedPlanProducesSameRows) {
  auto select = ParseSelect(GetParam());
  ASSERT_TRUE(select.ok());
  Binder binder(&catalog_);
  auto plan = binder.BindSelect(**select);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto raw = ExecutePlan(**plan);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  PlanPtr optimized = OptimizePlan(*plan);
  auto opt = ExecutePlan(*optimized);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();

  // Compare as multisets of stringified rows.
  auto serialize = [](const ResultSet& rs) {
    std::vector<std::string> rows;
    for (const Row& r : rs.rows) {
      std::string s;
      for (const Value& v : r) s += v.ToString() + "|";
      rows.push_back(s);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(serialize(**raw), serialize(**opt)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RewriteEquivalenceTest,
    ::testing::Values(
        "SELECT * FROM people",
        "SELECT name FROM people WHERE age > 30",
        "SELECT name FROM people WHERE age > 20 AND city = 'berkeley'",
        "SELECT name FROM people WHERE age > 20 OR city = 'berkeley'",
        "SELECT name, amount FROM people JOIN orders ON people.id = orders.person_id",
        "SELECT name FROM people JOIN orders ON people.id = orders.person_id "
        "WHERE people.age > 25 AND orders.amount > 10",
        "SELECT name, amount FROM people LEFT JOIN orders ON people.id = "
        "orders.person_id WHERE people.age > 25",
        "SELECT name, amount FROM people LEFT JOIN orders ON people.id = "
        "orders.person_id WHERE orders.amount > 10",
        "SELECT city, count(*) FROM people GROUP BY city",
        "SELECT city, count(*) FROM people WHERE age IS NOT NULL GROUP BY city "
        "HAVING count(*) > 0",
        "SELECT DISTINCT city FROM people WHERE 1 + 1 = 2",
        "SELECT name FROM people WHERE age BETWEEN 10 + 10 AND 40 ORDER BY name",
        "SELECT s.n FROM (SELECT count(*) AS n FROM people) AS s",
        "SELECT name FROM people WHERE city LIKE 'b%' ORDER BY name LIMIT 2"));

TEST_F(OptimizerTest, CostEstimateScalesWithTableSize) {
  PlanPtr small = Bind("SELECT count(*) FROM people");
  PlanPtr big = Bind("SELECT people.id FROM people CROSS JOIN orders");
  CostEstimate cs = EstimatePlanCost(*small, &catalog_);
  CostEstimate cb = EstimatePlanCost(*big, &catalog_);
  EXPECT_GT(cb.total_cost, cs.total_cost);
}

TEST_F(OptimizerTest, SelectivityUsesStats) {
  PlanPtr plan = Bind("SELECT name FROM people WHERE city = 'berkeley'");
  PlanPtr optimized = OptimizePlan(plan);
  CostEstimate est = EstimatePlanCost(*optimized, &catalog_);
  // 3 of 5 rows are berkeley.
  EXPECT_NEAR(est.output_rows, 3.0, 1.0);
}

TEST_F(OptimizerTest, EstimateAggregateOutput) {
  PlanPtr plan = Bind("SELECT count(*) FROM people");
  CostEstimate est = EstimatePlanCost(*plan, &catalog_);
  EXPECT_NEAR(est.output_rows, 1.0, 0.01);
}

TEST_F(OptimizerTest, LimitCapsEstimate) {
  PlanPtr plan = Bind("SELECT name FROM people LIMIT 2");
  CostEstimate est = EstimatePlanCost(*plan, &catalog_);
  EXPECT_LE(est.output_rows, 2.0);
}

}  // namespace
}  // namespace agentfirst
