// Telemetry spine tests: metrics registry (concurrency, histogram bucket
// math, kind binding), unified resource limits (merge rule + deprecated
// alias folding), trace primitives (seeded span ids, deterministic
// rendering), and the end-to-end guarantees — fixed-seed probe batches
// produce byte-identical span trees across thread counts, and every
// skipped / truncated / shed answer explains itself inside
// ProbeResponse::trace.

#include "obs/metrics.h"

#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/thread_pool.h"
#include "core/probe.h"
#include "core/probe_builder.h"
#include "core/system.h"
#include "gtest/gtest.h"
#include "obs/trace.h"
#include "test_util.h"
#include "workload/minibird.h"

namespace agentfirst {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketIndexIsBitWidth) {
  using H = obs::Histogram;
  EXPECT_EQ(H::BucketIndex(0), 0u);
  EXPECT_EQ(H::BucketIndex(1), 1u);
  EXPECT_EQ(H::BucketIndex(2), 2u);
  EXPECT_EQ(H::BucketIndex(3), 2u);
  EXPECT_EQ(H::BucketIndex(4), 3u);
  EXPECT_EQ(H::BucketIndex(7), 3u);
  EXPECT_EQ(H::BucketIndex(8), 4u);
  EXPECT_EQ(H::BucketIndex(1023), 10u);
  EXPECT_EQ(H::BucketIndex(1024), 11u);
  // Values beyond the bucket range clamp into the last bucket.
  EXPECT_EQ(H::BucketIndex(~0ull), H::kNumBuckets - 1);
}

TEST(HistogramTest, BucketUpperBoundsMatchIndexing) {
  using H = obs::Histogram;
  EXPECT_EQ(H::BucketUpperBound(0), 0u);
  EXPECT_EQ(H::BucketUpperBound(1), 1u);
  EXPECT_EQ(H::BucketUpperBound(2), 3u);
  EXPECT_EQ(H::BucketUpperBound(10), 1023u);
  // Every bucket's upper bound indexes back into that bucket.
  for (size_t i = 0; i < H::kNumBuckets; ++i) {
    EXPECT_EQ(H::BucketIndex(H::BucketUpperBound(i)), i) << "bucket " << i;
  }
}

TEST(HistogramTest, RecordAccumulatesSumCountAndPercentiles) {
  obs::Histogram h;
  EXPECT_EQ(h.ValueAtPercentile(50.0), 0u);  // empty histogram
  for (uint64_t v = 0; v < 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 499500u);
  EXPECT_DOUBLE_EQ(h.mean(), 499.5);
  // The 500th sample (value 499) lives in bucket 9 = [256, 512).
  EXPECT_EQ(h.ValueAtPercentile(50.0), 511u);
  EXPECT_EQ(h.ValueAtPercentile(100.0), 1023u);
  EXPECT_EQ(h.ValueAtPercentile(0.0), 0u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, NameBindsToFirstKind) {
  obs::MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("c"), nullptr);
  EXPECT_EQ(registry.GetGauge("c"), nullptr);
  EXPECT_EQ(registry.GetHistogram("c"), nullptr);
  ASSERT_NE(registry.GetGauge("g"), nullptr);
  EXPECT_EQ(registry.GetCounter("g"), nullptr);
  // Same-kind re-registration returns the identical pointer.
  EXPECT_EQ(registry.GetCounter("c"), registry.GetCounter("c"));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndResetZeroes) {
  obs::MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(5);
  registry.GetGauge("a.first")->Set(-2);
  registry.GetHistogram("m.mid_us")->Record(9);
  auto snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "m.mid_us");
  EXPECT_EQ(snap[2].name, "z.last");
  EXPECT_EQ(snap[0].gauge, -2);
  EXPECT_EQ(snap[2].count, 5u);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("z.last")->value(), 0u);
  EXPECT_EQ(registry.GetGauge("a.first")->value(), 0);
  EXPECT_EQ(registry.GetHistogram("m.mid_us")->count(), 0u);
}

TEST(MetricsRegistryTest, RenderTextAndJsonContainEveryMetric) {
  obs::MetricsRegistry registry;
  registry.GetCounter("hits")->Add(3);
  registry.GetGauge("depth")->Set(7);
  registry.GetHistogram("lat_us")->Record(100);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("hits counter 3"), std::string::npos) << text;
  EXPECT_NE(text.find("depth gauge 7"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us histogram count=1"), std::string::npos) << text;
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"name\": \"hits\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos) << json;
}

/// Concurrent registration + updates on the shared pool at 1/2/4/8 threads:
/// no lost increments, stable pointers, a single registration per name.
TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdates) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::MetricsRegistry registry;
    ThreadPool pool(threads);
    constexpr size_t kTasks = 64;
    constexpr size_t kIncrements = 5000;
    pool.ParallelFor(
        0, kTasks,
        [&](size_t begin, size_t end) {
          for (size_t t = begin; t < end; ++t) {
            obs::Counter* shared =
                registry.GetCounter("shared." + std::to_string(t % 8));
            obs::Counter* mine =
                registry.GetCounter("unique." + std::to_string(t));
            for (size_t i = 0; i < kIncrements; ++i) shared->Increment();
            mine->Add(1);
            // The registry hands back the same pointer on re-lookup.
            ASSERT_EQ(registry.GetCounter("unique." + std::to_string(t)),
                      mine);
          }
        },
        /*grain=*/1, threads);
    uint64_t total = 0;
    for (size_t s = 0; s < 8; ++s) {
      total += registry.GetCounter("shared." + std::to_string(s))->value();
    }
    EXPECT_EQ(total, kTasks * kIncrements);
    EXPECT_EQ(registry.Snapshot().size(), 8u + kTasks);
  }
}

// ---------------------------------------------------------------------------
// Unified resource limits
// ---------------------------------------------------------------------------

TEST(ResourceLimitsTest, MergedOverFillsOnlyUnsetFields) {
  ResourceLimits brief;
  brief.DeadlineMillis(50.0).MaxRows(100);
  ResourceLimits defaults;
  defaults.DeadlineMillis(1000.0).MaxBytes(4096).CostBudget(2e4);
  ResourceLimits merged = brief.MergedOver(defaults);
  EXPECT_DOUBLE_EQ(merged.deadline->count(), 50.0);  // brief wins
  EXPECT_EQ(*merged.max_rows, 100u);                 // brief-only field kept
  EXPECT_EQ(*merged.max_bytes, 4096u);               // filled from defaults
  EXPECT_DOUBLE_EQ(*merged.cost_budget, 2e4);        // filled from defaults
}

TEST(ResourceLimitsTest, ZeroDeadlineIsSetNotUnset) {
  // 0 means "expires immediately", not "no deadline": merging must not
  // replace it with the fallback.
  ResourceLimits brief;
  brief.DeadlineMillis(0.0);
  ResourceLimits defaults;
  defaults.DeadlineMillis(500.0);
  EXPECT_DOUBLE_EQ(brief.MergedOver(defaults).deadline->count(), 0.0);
}

TEST(ResourceLimitsTest, UnboundedAndFallbackAccessors) {
  ResourceLimits limits;
  EXPECT_TRUE(limits.Unbounded());
  EXPECT_DOUBLE_EQ(limits.deadline_millis_or(-1.0), -1.0);
  limits.DeadlineMillis(2.5);
  EXPECT_FALSE(limits.Unbounded());
  EXPECT_DOUBLE_EQ(limits.deadline_millis_or(-1.0), 2.5);
}

TEST(ResourceLimitsTest, BriefLimitsAreTheOnlyLimitsChannel) {
  // PR 9 deleted the deprecated alias fields; a Brief's resource envelope is
  // exactly its `limits` member, merged field-by-field over the optimizer's
  // defaults by the documented rule.
  Brief brief;
  brief.limits.DeadlineMillis(75.0).MaxRows(42).CostBudget(900.0);
  ResourceLimits defaults;
  defaults.DeadlineMillis(500.0);
  defaults.max_bytes = 1 << 20;
  ResourceLimits merged = brief.limits.MergedOver(defaults);
  EXPECT_DOUBLE_EQ(merged.deadline->count(), 75.0);  // brief wins
  EXPECT_EQ(*merged.max_rows, 42u);
  EXPECT_DOUBLE_EQ(*merged.cost_budget, 900.0);
  EXPECT_EQ(*merged.max_bytes, 1u << 20);  // default fills the gap
}

TEST(ProbeBuilderTest, BuildsLimitsAndQueries) {
  Probe probe = ProbeBuilder("agent-7")
                    .Query("SELECT 1")
                    .Query("SELECT 2")
                    .Brief("verify exactly")
                    .DeadlineMillis(30.0)
                    .MaxRows(10)
                    .SemanticSearch("coffee", /*top_k=*/3)
                    .Build();
  EXPECT_EQ(probe.agent_id, "agent-7");
  ASSERT_EQ(probe.queries.size(), 2u);
  EXPECT_EQ(probe.brief.text, "verify exactly");
  EXPECT_DOUBLE_EQ(probe.brief.limits.deadline->count(), 30.0);
  EXPECT_EQ(*probe.brief.limits.max_rows, 10u);
  EXPECT_EQ(probe.semantic_search_phrase, "coffee");
  EXPECT_EQ(*probe.semantic_top_k, 3u);
}

// ---------------------------------------------------------------------------
// Trace primitives
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanIdsAreSeededAndDeterministic) {
  auto build = [] {
    obs::TraceSpan root;
    root.name = "probe";
    obs::TraceSpan* q = root.AddChild("query[0]");
    q->AddChild("plan");
    q->AddChild("exec");
    root.AddChild("finalize");
    return root;
  };
  obs::TraceSpan a = build();
  obs::TraceSpan b = build();
  obs::AssignSpanIds(&a, /*seed=*/42);
  obs::AssignSpanIds(&b, /*seed=*/42);
  EXPECT_EQ(a.Render(false), b.Render(false));
  EXPECT_NE(a.id, 0u);
  // A different seed moves every id.
  obs::TraceSpan c = build();
  obs::AssignSpanIds(&c, /*seed=*/43);
  EXPECT_NE(a.id, c.id);
  EXPECT_NE(a.Render(false), c.Render(false));
}

TEST(TraceTest, RenderExcludesDurationsWhenAskedAndFindsNotes) {
  obs::TraceSpan root;
  root.name = "probe";
  obs::TraceSpan* q = root.AddChild("query[0]");
  q->AddNote("skip", "satisficing");
  q->duration_ms = 12.5;
  std::string with = root.Render(true);
  std::string without = root.Render(false);
  EXPECT_NE(with.find("ms"), std::string::npos);
  EXPECT_EQ(without.find("ms"), std::string::npos);
  EXPECT_NE(without.find("skip=satisficing"), std::string::npos) << without;
  ASSERT_NE(root.Find("query[0]"), nullptr);
  EXPECT_EQ(root.Find("nope"), nullptr);
  EXPECT_EQ(root.FindNote("skip"), "satisficing");
  EXPECT_EQ(root.FindNote("absent"), "");
}

// ---------------------------------------------------------------------------
// End-to-end: deterministic probe span trees
// ---------------------------------------------------------------------------

/// Renders every response's span tree (durations excluded) for a fixed-seed
/// MiniBird-derived probe batch run at `parallelism`.
std::string BatchTraceRendering(size_t parallelism) {
  MiniBirdOptions mb;
  mb.num_databases = 1;
  mb.rows_per_fact_table = 400;
  mb.rows_per_dim_table = 16;
  mb.seed = 20260805;
  // Distinct gold queries per task keep every probe's plan unique: with the
  // shared sub-plan cache and memory store off, no span can depend on
  // which probe happened to execute first.
  mb.system_options.optimizer.enable_mqo = false;
  mb.system_options.optimizer.enable_memory = false;
  mb.system_options.optimizer.batch_parallelism = parallelism;
  mb.system_options.optimizer.trace_seed = 0xfeedbeef;
  auto dbs = GenerateMiniBird(mb);
  if (dbs.empty()) return "<no databases>";
  AgentFirstSystem& db = *dbs[0].system;

  std::vector<Probe> probes;
  for (const TaskSpec& task : dbs[0].tasks) {
    probes.push_back(ProbeBuilder("agent-" + task.id)
                         .Query(task.gold_sql)
                         .Brief("validating candidate answer for: " +
                                task.question)
                         .Build());
  }
  auto responses = db.HandleProbeBatch(probes);
  if (!responses.ok()) return "<batch failed>";
  std::string out;
  for (const ProbeResponse& r : *responses) {
    out += r.trace.Render(/*include_durations=*/false);
    out += "----\n";
  }
  return out;
}

TEST(TraceDeterminismTest, SpanTreesByteIdenticalAcrossThreadCounts) {
  std::string baseline = BatchTraceRendering(1);
  ASSERT_NE(baseline.find("probe#"), std::string::npos) << baseline;
  ASSERT_NE(baseline.find("interpret#"), std::string::npos);
  ASSERT_NE(baseline.find("admit#"), std::string::npos);
  ASSERT_NE(baseline.find("finalize#"), std::string::npos);
  for (size_t parallelism : {size_t{2}, size_t{4}, size_t{8}}) {
    EXPECT_EQ(BatchTraceRendering(parallelism), baseline)
        << "trace diverged at batch_parallelism=" << parallelism;
  }
  // And across repeated runs at the same parallelism.
  EXPECT_EQ(BatchTraceRendering(4), baseline);
}

// ---------------------------------------------------------------------------
// End-to-end: every skip / truncate / shed reason is in the trace
// ---------------------------------------------------------------------------

class TraceReasonsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<AgentFirstSystem>(MakeOptions());
    testing_util::BuildPeopleDb(system_->engine());
  }

  virtual AgentFirstSystem::Options MakeOptions() { return {}; }

  ProbeResponse Handle(Probe probe) {
    auto r = system_->HandleProbe(probe);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ProbeResponse{};
  }

  std::unique_ptr<AgentFirstSystem> system_;
};

TEST_F(TraceReasonsTest, SatisficingSkipReasonAppearsInTrace) {
  Probe probe = ProbeBuilder("a1")
                    .Query("SELECT count(*) FROM people WHERE city = 'berkeley'")
                    .Query("SELECT count(*) FROM people WHERE city = 'oakland'")
                    .KOfN(1)
                    .Build();
  ProbeResponse r = Handle(probe);
  // k-of-n satisficing skips whichever query the admission ordering deemed
  // redundant; one of the two query spans must carry the reason.
  bool found = false;
  for (const char* name : {"query[0]", "query[1]"}) {
    const obs::TraceSpan* span = r.trace.Find(name);
    ASSERT_NE(span, nullptr) << r.trace.Render(false);
    if (span->FindNote("skip").find("satisficing") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << r.trace.Render(false);
}

TEST_F(TraceReasonsTest, TruncationReasonAppearsInTrace) {
  Probe probe = ProbeBuilder("a1")
                    .Query("SELECT * FROM people")
                    .Brief("verify the final answer exactly")
                    .MaxRows(2)
                    .Build();
  ProbeResponse r = Handle(probe);
  ASSERT_EQ(r.answers.size(), 1u);
  ASSERT_TRUE(r.answers[0].truncated);
  EXPECT_NE(r.trace.FindNote("truncated").find("output budget"),
            std::string::npos)
      << r.trace.Render(false);
  // ToString carries the trace, so an agent reading the plain-text response
  // sees the same explanation.
  EXPECT_NE(r.ToString().find("truncated"), std::string::npos);
}

TEST_F(TraceReasonsTest, BreakerShedReasonAppearsInTrace) {
  AgentFirstSystem::Options options;
  options.optimizer.breaker_failure_threshold = 1;
  options.optimizer.max_query_retries = 0;
  system_ = std::make_unique<AgentFirstSystem>(options);
  testing_util::BuildPeopleDb(system_->engine());

  FaultRegistry::Global().Enable(/*seed=*/1);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 1.0;
  spec.code = StatusCode::kAborted;
  FaultRegistry::Global().Arm("core.probe.query", spec);
  Probe failing = ProbeBuilder("flaky-agent")
                      .Query("SELECT count(*) FROM people")
                      .Build();
  ProbeResponse first = Handle(failing);
  FaultRegistry::Global().Disable();
  FaultRegistry::Global().ClearArmed();
  ASSERT_FALSE(first.answers[0].status.ok());
  EXPECT_NE(first.trace.FindNote("error"), "");

  // Breaker is now open for this agent: the next probe is shed wholesale,
  // and the trace says so in both the admit span and the query span.
  ProbeResponse second = Handle(failing);
  EXPECT_TRUE(second.shed);
  EXPECT_EQ(second.trace.FindNote("shed"), "circuit breaker open")
      << second.trace.Render(false);
  const obs::TraceSpan* q = second.trace.Find("query[0]");
  ASSERT_NE(q, nullptr);
  EXPECT_NE(q->FindNote("skip").find("shed"), std::string::npos);
}

TEST_F(TraceReasonsTest, TracingDisabledLeavesTraceEmpty) {
  AgentFirstSystem::Options options;
  options.optimizer.enable_tracing = false;
  system_ = std::make_unique<AgentFirstSystem>(options);
  testing_util::BuildPeopleDb(system_->engine());
  Probe probe = ProbeBuilder("a1").Query("SELECT count(*) FROM people").Build();
  ProbeResponse r = Handle(probe);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_TRUE(r.answers[0].status.ok());
  EXPECT_TRUE(r.trace.empty()) << r.trace.Render(false);
}

// The af.probe.* counter family accumulates across probes.
TEST_F(TraceReasonsTest, ProbeCountersAccumulateInDefaultRegistry) {
  obs::Counter* probes =
      obs::MetricsRegistry::Default().GetCounter("af.probe.probes");
  ASSERT_NE(probes, nullptr);
  uint64_t before = probes->value();
  Handle(ProbeBuilder("a1").Query("SELECT count(*) FROM people").Build());
  Handle(ProbeBuilder("a1").Query("SELECT count(*) FROM people").Build());
  EXPECT_EQ(probes->value(), before + 2);
}

}  // namespace
}  // namespace agentfirst
