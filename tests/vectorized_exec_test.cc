// Parity and determinism contract of the vectorized batch engine: for every
// batch-convertible plan, `options.vectorized = true` must produce a
// ResultSet byte-identical to the row path — same values, same order, same
// truncation metadata — at every thread count. Edge coverage (NULLs, empty
// inputs, division by zero, NaN-free ordering quirks) rides on the same
// harness: whatever the row path answers is the specification.
//
// The one intentional divergence is working memory: the vectorized path
// allocates its batch buffers from a per-query arena capped by
// `limits.max_bytes`, and exhausting that cap is a typed kResourceExhausted
// *error* (there is no meaningful partial answer for scratch memory), where
// the row path only knows output-size truncation.

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::BuildPeopleDb;

::testing::AssertionResult ExactlyEqual(const ResultSet& a,
                                        const ResultSet& b) {
  if (a.rows.size() != b.rows.size()) {
    return ::testing::AssertionFailure()
           << "row count " << a.rows.size() << " vs " << b.rows.size();
  }
  if (a.truncated != b.truncated || a.interrupt != b.interrupt) {
    return ::testing::AssertionFailure() << "truncation metadata differs";
  }
  if (a.schema.NumColumns() != b.schema.NumColumns()) {
    return ::testing::AssertionFailure() << "schema width differs";
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) {
      return ::testing::AssertionFailure() << "row " << r << " width differs";
    }
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!(a.rows[r][c] == b.rows[r][c])) {
        return ::testing::AssertionFailure()
               << "row " << r << " col " << c << ": "
               << a.rows[r][c].ToString() << " vs " << b.rows[r][c].ToString();
      }
      if (a.rows[r][c].type() != b.rows[r][c].type()) {
        return ::testing::AssertionFailure()
               << "row " << r << " col " << c << " type differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// 5000 rows over 5 segments, all four scalar types plus a NULL-bearing
/// column, with enough value skew to make filters selective and groups
/// uneven. Plus a small dimension table for joins (including keys that miss
/// and duplicate build rows).
void BuildBigDb(Engine* engine) {
  auto run = [&](const std::string& sql) {
    auto r = engine->ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  run("CREATE TABLE big (id BIGINT, v DOUBLE, name VARCHAR, flag BOOLEAN, "
      "n BIGINT)");
  for (int chunk = 0; chunk < 10; ++chunk) {
    std::string insert = "INSERT INTO big VALUES ";
    for (int i = 0; i < 500; ++i) {
      int id = chunk * 500 + i;
      if (i > 0) insert += ",";
      insert += "(" + std::to_string(id) + "," +
                std::to_string((id * 37) % 1000) + ".25,'g" +
                std::to_string(id % 7) + "'," +
                (id % 3 == 0 ? "TRUE" : "FALSE") + "," +
                (id % 5 == 0 ? "NULL" : std::to_string(id % 11)) + ")";
    }
    run(insert);
  }
  run("CREATE TABLE dim (k BIGINT, label VARCHAR)");
  run("INSERT INTO dim VALUES (0,'zero'), (1,'one'), (2,'two'), (3,'three'),"
      "(4,'four'), (2,'dos'), (99,'unreachable'), (NULL,'nokey')");
  run("CREATE TABLE void (x BIGINT, y DOUBLE)");
}

class VectorizedParityTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&catalog_);
    BuildBigDb(engine_.get());
    BuildPeopleDb(engine_.get());
  }

  /// Runs `sql` through the row path (serial: the specification) and the
  /// vectorized path at the parameterized thread count; both must agree
  /// byte-for-byte.
  void ExpectParity(const std::string& sql) {
    ExecOptions row;
    row.vectorized = false;
    row.num_threads = 1;
    ExecOptions vec;
    vec.vectorized = true;
    vec.num_threads = GetParam();
    auto r = engine_->ExecuteSql(sql, row);
    auto v = engine_->ExecuteSql(sql, vec);
    AF_ASSERT_OK_RESULT(r);
    AF_ASSERT_OK_RESULT(v);
    EXPECT_TRUE(ExactlyEqual(**r, **v))
        << sql << " with num_threads=" << GetParam();
  }

  Catalog catalog_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(VectorizedParityTest, ScanAndFilter) {
  ExpectParity("SELECT * FROM big");
  ExpectParity("SELECT id, v FROM big WHERE v > 250.0 AND id < 4000");
  ExpectParity("SELECT id FROM big WHERE id % 7 = 3");
  ExpectParity("SELECT id FROM big WHERE id BETWEEN 100 AND 200");
  ExpectParity("SELECT id FROM big WHERE id NOT BETWEEN 50 AND 4950");
  ExpectParity("SELECT name FROM big WHERE name >= 'g3' AND name < 'g5'");
  ExpectParity("SELECT id FROM big WHERE flag");
  ExpectParity("SELECT id FROM big WHERE NOT flag AND v <> 0.25");
  ExpectParity("SELECT id FROM big WHERE id < 0");            // empty result
  ExpectParity("SELECT * FROM void");                         // empty table
  ExpectParity("SELECT * FROM void WHERE x > 0 AND y < 1.5");
}

TEST_P(VectorizedParityTest, NullSemantics) {
  ExpectParity("SELECT id, n FROM big WHERE n IS NULL");
  ExpectParity("SELECT id, n FROM big WHERE n IS NOT NULL AND n > 5");
  // Comparisons against NULL are NULL, filtered out; Kleene OR/AND keep a
  // row only when the whole predicate is definitely true.
  ExpectParity("SELECT id FROM big WHERE n > 3 OR flag");
  ExpectParity("SELECT id FROM big WHERE n > 3 AND flag");
  ExpectParity("SELECT n + 1, n * 2, n IS NULL FROM big WHERE id < 100");
}

TEST_P(VectorizedParityTest, ProjectionArithmetic) {
  ExpectParity("SELECT id + 1, id - 2, id * 3, v / 4.0 FROM big WHERE id < 500");
  // Integer division promotes to double; division/modulo by zero is NULL.
  ExpectParity("SELECT id / 2, id / 0, id % 0, v / 0.0 FROM big WHERE id < 64");
  ExpectParity("SELECT -id, -v, id % 11 FROM big WHERE v > 900.0");
  ExpectParity("SELECT (id + 7) * (id % 5) - 3 FROM big WHERE id < 2049");
  ExpectParity("SELECT id > 10, v <= 500.0, name = 'g2' FROM big WHERE id < 40");
}

TEST_P(VectorizedParityTest, Aggregates) {
  ExpectParity("SELECT count(*) FROM big");
  ExpectParity("SELECT count(n), sum(id), sum(v), avg(v) FROM big");
  ExpectParity("SELECT min(id), max(id), min(v), max(v), min(name), max(name)"
               " FROM big");
  ExpectParity("SELECT count(*) FROM big WHERE id > 4999");  // empty input
  ExpectParity("SELECT sum(x), avg(y), count(x) FROM void");
}

TEST_P(VectorizedParityTest, GroupBy) {
  ExpectParity("SELECT name, count(*), sum(v) FROM big GROUP BY name");
  // NULL is a group of its own; group order is first-appearance order.
  ExpectParity("SELECT n, count(*) FROM big GROUP BY n");
  ExpectParity("SELECT flag, n, avg(v), min(id) FROM big GROUP BY flag, n");
  ExpectParity("SELECT name, max(n) FROM big WHERE id % 2 = 0 GROUP BY name");
}

TEST_P(VectorizedParityTest, Joins) {
  ExpectParity("SELECT big.id, dim.label FROM big JOIN dim ON big.n = dim.k "
               "WHERE big.id < 300");
  // Duplicate build keys fan out; NULL keys never match.
  ExpectParity("SELECT big.id, dim.label FROM big LEFT JOIN dim "
               "ON big.n = dim.k WHERE big.id < 300");
  ExpectParity("SELECT people.name, orders.item FROM people JOIN orders "
               "ON people.id = orders.person_id");
  ExpectParity("SELECT people.name, orders.amount FROM people LEFT JOIN orders "
               "ON people.id = orders.person_id");
  ExpectParity("SELECT big.id FROM big JOIN void ON big.id = void.x");
}

TEST_P(VectorizedParityTest, MixedRowAndVectorizedOperators) {
  // ORDER BY / LIMIT / DISTINCT / LIKE stay on the row path; their children
  // re-gate, so these plans cross the batch->row boundary mid-tree.
  ExpectParity("SELECT id, v FROM big WHERE v > 500.0 ORDER BY v, id LIMIT 20");
  ExpectParity("SELECT name, count(*) FROM big GROUP BY name ORDER BY name");
  ExpectParity("SELECT DISTINCT name FROM big WHERE id < 1000");
  ExpectParity("SELECT name FROM big WHERE name LIKE 'g%' AND id < 30");
  ExpectParity("SELECT count(DISTINCT name) FROM big");
}

INSTANTIATE_TEST_SUITE_P(Threads, VectorizedParityTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(VectorizedExecTest, ThreadCountsAreByteIdenticalOnTheVecPath) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  const std::string sql =
      "SELECT name, count(*), sum(v) FROM big WHERE id % 3 <> 1 GROUP BY name";
  ExecOptions serial;
  serial.num_threads = 1;
  auto base = engine.ExecuteSql(sql, serial);
  AF_ASSERT_OK_RESULT(base);
  for (size_t threads : {2u, 4u, 8u}) {
    ExecOptions options;
    options.num_threads = threads;
    auto r = engine.ExecuteSql(sql, options);
    AF_ASSERT_OK_RESULT(r);
    EXPECT_TRUE(ExactlyEqual(**base, **r)) << "threads=" << threads;
  }
}

TEST(VectorizedExecTest, ArenaExhaustionIsATypedError) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  // A budget below the arena's minimum block size: the first filtered batch
  // cannot even allocate its selection vector. Working memory has no partial
  // answer, so the vectorized path must fail typed, not truncate.
  ExecOptions vec;
  vec.limits.MaxBytes(1024);
  auto r = engine.ExecuteSql("SELECT id FROM big WHERE id % 7 = 3", vec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("arena"), std::string::npos)
      << r.status().ToString();

  // The same query under the same budget on the row path truncates instead:
  // the two observable behaviors of one `max_bytes` knob.
  ExecOptions row;
  row.vectorized = false;
  row.limits.MaxBytes(1024);
  auto rr = engine.ExecuteSql("SELECT id FROM big WHERE id % 7 = 3", row);
  AF_ASSERT_OK_RESULT(rr);
  EXPECT_TRUE((*rr)->truncated);
}

TEST(VectorizedExecTest, OutputBudgetsTruncateLikeTheRowPath) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  // Unfiltered scans use no arena scratch, so max_bytes acts purely as the
  // output cap, same as the row path: a well-formed truncated result.
  for (bool vectorized : {true, false}) {
    ExecOptions options;
    options.vectorized = vectorized;
    options.limits.MaxBytes(16 * 1024);
    auto r = engine.ExecuteSql("SELECT * FROM big", options);
    AF_ASSERT_OK_RESULT(r);
    EXPECT_TRUE((*r)->truncated) << "vectorized=" << vectorized;
    EXPECT_EQ((*r)->interrupt, StatusCode::kResourceExhausted);
    EXPECT_GT((*r)->rows.size(), 0u);
    EXPECT_LT((*r)->rows.size(), 5000u);
  }
  // max_rows truncates at batch granularity: at least the cap, not wildly
  // more than one extra batch per worker.
  ExecOptions options;
  options.limits.MaxRows(1000);
  auto r = engine.ExecuteSql("SELECT id FROM big", options);
  AF_ASSERT_OK_RESULT(r);
  EXPECT_TRUE((*r)->truncated);
  EXPECT_GE((*r)->rows.size(), 1000u);
  EXPECT_LT((*r)->rows.size(), 5000u);
}

TEST(VectorizedExecTest, VecPlanAndFallbackMetricsMove) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  auto& reg = obs::MetricsRegistry::Default();
  obs::Counter* plans = reg.GetCounter("af.exec.vec.plans");
  obs::Counter* fallbacks = reg.GetCounter("af.exec.vec.fallback_nodes");

  uint64_t plans_before = plans->value();
  auto r = engine.ExecuteSql("SELECT id FROM big WHERE id < 10");
  AF_ASSERT_OK_RESULT(r);
  EXPECT_GT(plans->value(), plans_before);

  uint64_t fallbacks_before = fallbacks->value();
  auto f = engine.ExecuteSql("SELECT name FROM big WHERE name LIKE 'g1%'");
  AF_ASSERT_OK_RESULT(f);
  EXPECT_GT(fallbacks->value(), fallbacks_before);
}

}  // namespace
}  // namespace agentfirst
