// Parity and determinism contract of the vectorized batch engine: for every
// batch-convertible plan, `options.vectorized = true` must produce a
// ResultSet byte-identical to the row path — same values, same order, same
// truncation metadata — at every thread count. Edge coverage (NULLs, empty
// inputs, division by zero, NaN-free ordering quirks) rides on the same
// harness: whatever the row path answers is the specification.
//
// Working memory is the one place the paths differ internally: the
// vectorized engine allocates its batch buffers from a per-query arena
// capped by `limits.max_bytes`, and exhausting that cap is a typed
// kResourceExhausted error at the vectorized layer (there is no meaningful
// partial answer for scratch memory). The executor catches exactly that
// error and retries the subtree on the row path, so at the engine surface
// `max_bytes` always keeps its documented meaning — an output budget that
// truncates, never a hard failure.

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::BuildPeopleDb;

::testing::AssertionResult ExactlyEqual(const ResultSet& a,
                                        const ResultSet& b) {
  if (a.rows.size() != b.rows.size()) {
    return ::testing::AssertionFailure()
           << "row count " << a.rows.size() << " vs " << b.rows.size();
  }
  if (a.truncated != b.truncated || a.interrupt != b.interrupt) {
    return ::testing::AssertionFailure() << "truncation metadata differs";
  }
  if (a.schema.NumColumns() != b.schema.NumColumns()) {
    return ::testing::AssertionFailure() << "schema width differs";
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) {
      return ::testing::AssertionFailure() << "row " << r << " width differs";
    }
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!(a.rows[r][c] == b.rows[r][c])) {
        return ::testing::AssertionFailure()
               << "row " << r << " col " << c << ": "
               << a.rows[r][c].ToString() << " vs " << b.rows[r][c].ToString();
      }
      if (a.rows[r][c].type() != b.rows[r][c].type()) {
        return ::testing::AssertionFailure()
               << "row " << r << " col " << c << " type differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// 5000 rows over 5 segments, all four scalar types plus a NULL-bearing
/// column, with enough value skew to make filters selective and groups
/// uneven. Plus a small dimension table for joins (including keys that miss
/// and duplicate build rows).
void BuildBigDb(Engine* engine) {
  auto run = [&](const std::string& sql) {
    auto r = engine->ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  run("CREATE TABLE big (id BIGINT, v DOUBLE, name VARCHAR, flag BOOLEAN, "
      "n BIGINT)");
  for (int chunk = 0; chunk < 10; ++chunk) {
    std::string insert = "INSERT INTO big VALUES ";
    for (int i = 0; i < 500; ++i) {
      int id = chunk * 500 + i;
      if (i > 0) insert += ",";
      insert += "(" + std::to_string(id) + "," +
                std::to_string((id * 37) % 1000) + ".25,'g" +
                std::to_string(id % 7) + "'," +
                (id % 3 == 0 ? "TRUE" : "FALSE") + "," +
                (id % 5 == 0 ? "NULL" : std::to_string(id % 11)) + ")";
    }
    run(insert);
  }
  run("CREATE TABLE dim (k BIGINT, label VARCHAR)");
  run("INSERT INTO dim VALUES (0,'zero'), (1,'one'), (2,'two'), (3,'three'),"
      "(4,'four'), (2,'dos'), (99,'unreachable'), (NULL,'nokey')");
  run("CREATE TABLE void (x BIGINT, y DOUBLE)");
}

class VectorizedParityTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&catalog_);
    BuildBigDb(engine_.get());
    BuildPeopleDb(engine_.get());
  }

  /// Runs `sql` through the row path (serial: the specification) and the
  /// vectorized path at the parameterized thread count; both must agree
  /// byte-for-byte.
  void ExpectParity(const std::string& sql) {
    ExecOptions row;
    row.vectorized = false;
    row.num_threads = 1;
    ExecOptions vec;
    vec.vectorized = true;
    vec.num_threads = GetParam();
    auto r = engine_->ExecuteSql(sql, row);
    auto v = engine_->ExecuteSql(sql, vec);
    AF_ASSERT_OK_RESULT(r);
    AF_ASSERT_OK_RESULT(v);
    EXPECT_TRUE(ExactlyEqual(**r, **v))
        << sql << " with num_threads=" << GetParam();
  }

  Catalog catalog_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(VectorizedParityTest, ScanAndFilter) {
  ExpectParity("SELECT * FROM big");
  ExpectParity("SELECT id, v FROM big WHERE v > 250.0 AND id < 4000");
  ExpectParity("SELECT id FROM big WHERE id % 7 = 3");
  ExpectParity("SELECT id FROM big WHERE id BETWEEN 100 AND 200");
  ExpectParity("SELECT id FROM big WHERE id NOT BETWEEN 50 AND 4950");
  ExpectParity("SELECT name FROM big WHERE name >= 'g3' AND name < 'g5'");
  ExpectParity("SELECT id FROM big WHERE flag");
  ExpectParity("SELECT id FROM big WHERE NOT flag AND v <> 0.25");
  ExpectParity("SELECT id FROM big WHERE id < 0");            // empty result
  ExpectParity("SELECT * FROM void");                         // empty table
  ExpectParity("SELECT * FROM void WHERE x > 0 AND y < 1.5");
}

TEST_P(VectorizedParityTest, NullSemantics) {
  ExpectParity("SELECT id, n FROM big WHERE n IS NULL");
  ExpectParity("SELECT id, n FROM big WHERE n IS NOT NULL AND n > 5");
  // Comparisons against NULL are NULL, filtered out; Kleene OR/AND keep a
  // row only when the whole predicate is definitely true.
  ExpectParity("SELECT id FROM big WHERE n > 3 OR flag");
  ExpectParity("SELECT id FROM big WHERE n > 3 AND flag");
  ExpectParity("SELECT n + 1, n * 2, n IS NULL FROM big WHERE id < 100");
}

TEST_P(VectorizedParityTest, ProjectionArithmetic) {
  ExpectParity("SELECT id + 1, id - 2, id * 3, v / 4.0 FROM big WHERE id < 500");
  // Integer division promotes to double; division/modulo by zero is NULL.
  ExpectParity("SELECT id / 2, id / 0, id % 0, v / 0.0 FROM big WHERE id < 64");
  ExpectParity("SELECT -id, -v, id % 11 FROM big WHERE v > 900.0");
  ExpectParity("SELECT (id + 7) * (id % 5) - 3 FROM big WHERE id < 2049");
  ExpectParity("SELECT id > 10, v <= 500.0, name = 'g2' FROM big WHERE id < 40");
}

TEST_P(VectorizedParityTest, Aggregates) {
  ExpectParity("SELECT count(*) FROM big");
  ExpectParity("SELECT count(n), sum(id), sum(v), avg(v) FROM big");
  ExpectParity("SELECT min(id), max(id), min(v), max(v), min(name), max(name)"
               " FROM big");
  ExpectParity("SELECT count(*) FROM big WHERE id > 4999");  // empty input
  ExpectParity("SELECT sum(x), avg(y), count(x) FROM void");
}

TEST_P(VectorizedParityTest, GroupBy) {
  ExpectParity("SELECT name, count(*), sum(v) FROM big GROUP BY name");
  // NULL is a group of its own; group order is first-appearance order.
  ExpectParity("SELECT n, count(*) FROM big GROUP BY n");
  ExpectParity("SELECT flag, n, avg(v), min(id) FROM big GROUP BY flag, n");
  ExpectParity("SELECT name, max(n) FROM big WHERE id % 2 = 0 GROUP BY name");
}

TEST_P(VectorizedParityTest, Joins) {
  ExpectParity("SELECT big.id, dim.label FROM big JOIN dim ON big.n = dim.k "
               "WHERE big.id < 300");
  // Duplicate build keys fan out; NULL keys never match.
  ExpectParity("SELECT big.id, dim.label FROM big LEFT JOIN dim "
               "ON big.n = dim.k WHERE big.id < 300");
  ExpectParity("SELECT people.name, orders.item FROM people JOIN orders "
               "ON people.id = orders.person_id");
  ExpectParity("SELECT people.name, orders.amount FROM people LEFT JOIN orders "
               "ON people.id = orders.person_id");
  ExpectParity("SELECT big.id FROM big JOIN void ON big.id = void.x");
}

TEST_P(VectorizedParityTest, MixedRowAndVectorizedOperators) {
  // ORDER BY / LIMIT / DISTINCT / LIKE stay on the row path; their children
  // re-gate, so these plans cross the batch->row boundary mid-tree.
  ExpectParity("SELECT id, v FROM big WHERE v > 500.0 ORDER BY v, id LIMIT 20");
  ExpectParity("SELECT name, count(*) FROM big GROUP BY name ORDER BY name");
  ExpectParity("SELECT DISTINCT name FROM big WHERE id < 1000");
  ExpectParity("SELECT name FROM big WHERE name LIKE 'g%' AND id < 30");
  ExpectParity("SELECT count(DISTINCT name) FROM big");
}

INSTANTIATE_TEST_SUITE_P(Threads, VectorizedParityTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(VectorizedExecTest, ThreadCountsAreByteIdenticalOnTheVecPath) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  const std::string sql =
      "SELECT name, count(*), sum(v) FROM big WHERE id % 3 <> 1 GROUP BY name";
  ExecOptions serial;
  serial.num_threads = 1;
  auto base = engine.ExecuteSql(sql, serial);
  AF_ASSERT_OK_RESULT(base);
  for (size_t threads : {2u, 4u, 8u}) {
    ExecOptions options;
    options.num_threads = threads;
    auto r = engine.ExecuteSql(sql, options);
    AF_ASSERT_OK_RESULT(r);
    EXPECT_TRUE(ExactlyEqual(**base, **r)) << "threads=" << threads;
  }
}

TEST(VectorizedExecTest, ArenaExhaustionFallsBackToRowPathTruncation) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  auto& reg = obs::MetricsRegistry::Default();
  obs::Counter* fallbacks = reg.GetCounter("af.exec.vec.fallback_nodes");
  uint64_t fallbacks_before = fallbacks->value();

  // A budget below the arena's minimum block size: the vectorized engine
  // cannot even allocate its first selection vector. That exhaustion is a
  // typed error internally, but the executor must catch it and rerun the
  // subtree row-at-a-time — callers who set max_bytes get the documented
  // contract (a truncated partial result), never a hard failure.
  ExecOptions vec;
  vec.limits.MaxBytes(1024);
  auto r = engine.ExecuteSql("SELECT id FROM big WHERE id % 7 = 3", vec);
  AF_ASSERT_OK_RESULT(r);
  EXPECT_TRUE((*r)->truncated);
  EXPECT_EQ((*r)->interrupt, StatusCode::kResourceExhausted);
  EXPECT_LT((*r)->rows.size(), 715u);  // 715 ids in [0,5000) are ≡3 (mod 7)
  // Whatever partial survives must still honor the predicate.
  for (const Row& row : (*r)->rows) {
    ASSERT_EQ(row[0].int_value() % 7, 3);
  }
  EXPECT_GT(fallbacks->value(), fallbacks_before);

  // The same query under the same budget with vectorization off truncates
  // directly — one `max_bytes` knob, one observable behavior.
  ExecOptions row_opts;
  row_opts.vectorized = false;
  row_opts.limits.MaxBytes(1024);
  auto rr = engine.ExecuteSql("SELECT id FROM big WHERE id % 7 = 3", row_opts);
  AF_ASSERT_OK_RESULT(rr);
  EXPECT_TRUE((*rr)->truncated);
  EXPECT_EQ((*rr)->interrupt, StatusCode::kResourceExhausted);
}

TEST(VectorizedExecTest, MidPlanTripNeverLeaksUnfilteredRows) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  // Sweep deadlines from "trips immediately" to "finishes comfortably" so
  // some runs soft-trip mid-plan at every thread count. Wherever the trip
  // lands, a truncated filter result may only contain rows that passed the
  // predicate (regression: parallel morsels left unclaimed by a mid-loop
  // trip used to keep their full input selection).
  for (double ms : {0.01, 0.05, 0.2, 1.0, 5.0, 50.0}) {
    for (size_t threads : {1u, 4u, 8u}) {
      ExecOptions options;
      options.num_threads = threads;
      options.limits.DeadlineMillis(ms);
      auto r = engine.ExecuteSql("SELECT id FROM big WHERE id % 7 = 3", options);
      AF_ASSERT_OK_RESULT(r);
      for (const Row& row : (*r)->rows) {
        ASSERT_EQ(row[0].int_value() % 7, 3)
            << "deadline=" << ms << "ms threads=" << threads;
      }
    }
  }
}

TEST(VectorizedExecTest, IntSumOverflowWrapsIdenticallyOnBothPaths) {
  Catalog catalog;
  Engine engine(&catalog);
  auto run = [&](const std::string& sql) {
    auto r = engine.ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  run("CREATE TABLE huge (x BIGINT)");
  // (2^63-1) + (2^63-1) + 2 + 1 wraps to 1 in two's complement. Both paths
  // accumulate unsigned (signed overflow is UB) and must agree on the wrap.
  run("INSERT INTO huge VALUES (9223372036854775807), (9223372036854775807), "
      "(2), (1)");
  ExecOptions row;
  row.vectorized = false;
  auto rr = engine.ExecuteSql("SELECT sum(x) FROM huge", row);
  auto vr = engine.ExecuteSql("SELECT sum(x) FROM huge");
  AF_ASSERT_OK_RESULT(rr);
  AF_ASSERT_OK_RESULT(vr);
  EXPECT_TRUE(ExactlyEqual(**rr, **vr));
  ASSERT_EQ((*vr)->rows.size(), 1u);
  EXPECT_EQ((*vr)->rows[0][0].int_value(), 1);
}

TEST(VectorizedExecTest, OutputBudgetsTruncateLikeTheRowPath) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  // Unfiltered scans use no arena scratch, so max_bytes acts purely as the
  // output cap, same as the row path: a well-formed truncated result.
  for (bool vectorized : {true, false}) {
    ExecOptions options;
    options.vectorized = vectorized;
    options.limits.MaxBytes(16 * 1024);
    auto r = engine.ExecuteSql("SELECT * FROM big", options);
    AF_ASSERT_OK_RESULT(r);
    EXPECT_TRUE((*r)->truncated) << "vectorized=" << vectorized;
    EXPECT_EQ((*r)->interrupt, StatusCode::kResourceExhausted);
    EXPECT_GT((*r)->rows.size(), 0u);
    EXPECT_LT((*r)->rows.size(), 5000u);
  }
  // max_rows truncates at batch granularity: at least the cap, not wildly
  // more than one extra batch per worker.
  ExecOptions options;
  options.limits.MaxRows(1000);
  auto r = engine.ExecuteSql("SELECT id FROM big", options);
  AF_ASSERT_OK_RESULT(r);
  EXPECT_TRUE((*r)->truncated);
  EXPECT_GE((*r)->rows.size(), 1000u);
  EXPECT_LT((*r)->rows.size(), 5000u);
}

TEST(VectorizedExecTest, VecPlanAndFallbackMetricsMove) {
  Catalog catalog;
  Engine engine(&catalog);
  BuildBigDb(&engine);
  auto& reg = obs::MetricsRegistry::Default();
  obs::Counter* plans = reg.GetCounter("af.exec.vec.plans");
  obs::Counter* fallbacks = reg.GetCounter("af.exec.vec.fallback_nodes");

  uint64_t plans_before = plans->value();
  auto r = engine.ExecuteSql("SELECT id FROM big WHERE id < 10");
  AF_ASSERT_OK_RESULT(r);
  EXPECT_GT(plans->value(), plans_before);

  uint64_t fallbacks_before = fallbacks->value();
  auto f = engine.ExecuteSql("SELECT name FROM big WHERE name LIKE 'g1%'");
  AF_ASSERT_OK_RESULT(f);
  EXPECT_GT(fallbacks->value(), fallbacks_before);
}

}  // namespace
}  // namespace agentfirst
