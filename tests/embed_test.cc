#include "embed/embedding.h"

#include <cmath>

#include "common/rng.h"
#include "embed/vector_index.h"
#include "gtest/gtest.h"

namespace agentfirst {
namespace {

TEST(EmbeddingTest, Deterministic) {
  EXPECT_EQ(EmbedText("coffee beans"), EmbedText("coffee beans"));
}

TEST(EmbeddingTest, CaseInsensitive) {
  EXPECT_EQ(EmbedText("Coffee Beans"), EmbedText("coffee beans"));
}

TEST(EmbeddingTest, Normalized) {
  Embedding e = EmbedText("hello world");
  double norm = 0;
  for (float v : e) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(EmbeddingTest, EmptyTextIsZeroVector) {
  Embedding e = EmbedText("");
  for (float v : e) EXPECT_EQ(v, 0.0f);
  EXPECT_DOUBLE_EQ(CosineSimilarity(e, EmbedText("x")), 0.0);
}

TEST(EmbeddingTest, SimilarStringsScoreHigher) {
  Embedding coffee = EmbedText("coffee beans");
  EXPECT_GT(CosineSimilarity(coffee, EmbedText("coffee")),
            CosineSimilarity(coffee, EmbedText("flight crew")));
  EXPECT_GT(CosineSimilarity(EmbedText("sales_by_state"), EmbedText("sales state")),
            CosineSimilarity(EmbedText("sales_by_state"), EmbedText("user posts")));
}

TEST(EmbeddingTest, IdentifierDecomposition) {
  // Underscore-separated identifiers share word features with phrases.
  double sim = CosineSimilarity(EmbedText("store_id"), EmbedText("store"));
  EXPECT_GT(sim, 0.3);
}

TEST(EmbeddingTest, SelfSimilarityIsOne) {
  Embedding e = EmbedText("anything at all");
  EXPECT_NEAR(CosineSimilarity(e, e), 1.0, 1e-9);
}

TEST(CosineTest, MismatchedSizesReturnZero) {
  Embedding a(4, 1.0f);
  Embedding b(8, 1.0f);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

// ---------------------------------------------------------------------------
// Vector indexes
// ---------------------------------------------------------------------------

std::vector<std::string> Corpus() {
  std::vector<std::string> out;
  const char* domains[] = {"sales", "store", "product", "customer", "flight",
                           "crew",  "user",  "post",    "order",    "revenue"};
  const char* suffixes[] = {"id",    "name",  "total", "count", "state",
                            "city",  "year",  "month", "price", "status"};
  for (const char* d : domains) {
    for (const char* s : suffixes) {
      out.push_back(std::string(d) + "_" + s);
    }
  }
  return out;
}

TEST(FlatIndexTest, TopKExactAndOrdered) {
  FlatVectorIndex index;
  auto corpus = Corpus();
  for (size_t i = 0; i < corpus.size(); ++i) index.Add(i, EmbedText(corpus[i]));
  auto hits = index.TopK(EmbedText("sales state"), 5);
  ASSERT_EQ(hits.size(), 5u);
  // Scores descending.
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
  // The literal "sales_state" item should rank first.
  EXPECT_EQ(corpus[hits[0].id], "sales_state");
}

TEST(FlatIndexTest, KLargerThanCorpus) {
  FlatVectorIndex index;
  index.Add(1, EmbedText("a"));
  index.Add(2, EmbedText("b"));
  EXPECT_EQ(index.TopK(EmbedText("a"), 10).size(), 2u);
}

TEST(IvfIndexTest, BuildRequiresVectors) {
  IvfVectorIndex index(4, 2);
  EXPECT_FALSE(index.Build().ok());
}

TEST(IvfIndexTest, UnbuiltFallsBackToExact) {
  IvfVectorIndex index(4, 2);
  auto corpus = Corpus();
  for (size_t i = 0; i < corpus.size(); ++i) index.Add(i, EmbedText(corpus[i]));
  auto hits = index.TopK(EmbedText("sales state"), 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(corpus[hits[0].id], "sales_state");
}

TEST(IvfIndexTest, RecallAgainstFlat) {
  FlatVectorIndex flat;
  IvfVectorIndex ivf(8, 4, /*seed=*/3);
  auto corpus = Corpus();
  for (size_t i = 0; i < corpus.size(); ++i) {
    Embedding e = EmbedText(corpus[i]);
    flat.Add(i, e);
    ivf.Add(i, e);
  }
  ASSERT_TRUE(ivf.Build().ok());
  ASSERT_TRUE(ivf.built());

  // Average recall@5 over several queries must be high with nprobe=4 of 8.
  const char* queries[] = {"sales state", "crew name", "user post", "order price",
                           "flight status"};
  double recall_sum = 0;
  for (const char* q : queries) {
    auto exact = flat.TopK(EmbedText(q), 5);
    auto approx = ivf.TopK(EmbedText(q), 5);
    size_t found = 0;
    for (const auto& e : exact) {
      for (const auto& a : approx) {
        if (a.id == e.id) {
          ++found;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(found) / exact.size();
  }
  EXPECT_GE(recall_sum / std::size(queries), 0.6);
}

TEST(IvfIndexTest, ProbingAllListsMatchesExact) {
  FlatVectorIndex flat;
  IvfVectorIndex ivf(6, 6, /*seed=*/5);  // probe everything
  auto corpus = Corpus();
  for (size_t i = 0; i < corpus.size(); ++i) {
    Embedding e = EmbedText(corpus[i]);
    flat.Add(i, e);
    ivf.Add(i, e);
  }
  ASSERT_TRUE(ivf.Build().ok());
  auto exact = flat.TopK(EmbedText("revenue total"), 4);
  auto approx = ivf.TopK(EmbedText("revenue total"), 4);
  ASSERT_EQ(exact.size(), approx.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i].id, approx[i].id);
  }
}

}  // namespace
}  // namespace agentfirst
