#include "sql/lexer.h"

#include "gtest/gtest.h"

namespace agentfirst {
namespace {

std::vector<Token> MustTokenize(const std::string& sql) {
  auto r = Tokenize(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsUppercasedIdentifiersLowercased) {
  auto tokens = MustTokenize("SeLeCt FooBar");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foobar");
}

TEST(LexerTest, IntAndFloatLiterals) {
  auto tokens = MustTokenize("42 3.5 .5 1e3 2E-2");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_EQ(tokens[2].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.5);
  EXPECT_EQ(tokens[3].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 1000.0);
  EXPECT_EQ(tokens[4].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 0.02);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = MustTokenize("'it''s'");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'oops").ok());
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, QuotedIdentifierPreservesCase) {
  auto tokens = MustTokenize("\"MyTable\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "MyTable");
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = MustTokenize("<= >= <> != < > =");
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "<>");
  EXPECT_EQ(tokens[3].text, "<>");  // != normalized
  EXPECT_EQ(tokens[4].text, "<");
  EXPECT_EQ(tokens[5].text, ">");
  EXPECT_EQ(tokens[6].text, "=");
}

TEST(LexerTest, LineComments) {
  auto tokens = MustTokenize("SELECT -- the select list\n 1");
  ASSERT_EQ(tokens.size(), 3u);  // SELECT, 1, END
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  auto r = Tokenize("SELECT @x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = MustTokenize("SELECT a");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 7u);
}

TEST(LexerTest, IsSqlKeyword) {
  EXPECT_TRUE(IsSqlKeyword("select"));
  EXPECT_TRUE(IsSqlKeyword("GROUP"));
  EXPECT_FALSE(IsSqlKeyword("foobar"));
}

TEST(LexerTest, DottedIdentifiers) {
  auto tokens = MustTokenize("information_schema.tables");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "information_schema");
  EXPECT_EQ(tokens[1].text, ".");
  EXPECT_EQ(tokens[2].text, "tables");
}

}  // namespace
}  // namespace agentfirst
