#include "plan/binder.h"

#include "gtest/gtest.h"
#include "plan/fingerprint.h"
#include "sql/parser.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::PeopleDbTest;

class BinderTest : public PeopleDbTest {
 protected:
  PlanPtr Bind(const std::string& sql) {
    auto select = ParseSelect(sql);
    EXPECT_TRUE(select.ok()) << select.status().ToString();
    if (!select.ok()) return nullptr;
    Binder binder(&catalog_);
    auto plan = binder.BindSelect(**select);
    EXPECT_TRUE(plan.ok()) << sql << " -> " << plan.status().ToString();
    return plan.ok() ? *plan : nullptr;
  }

  Status BindError(const std::string& sql) {
    auto select = ParseSelect(sql);
    if (!select.ok()) return select.status();
    Binder binder(&catalog_);
    auto plan = binder.BindSelect(**select);
    return plan.ok() ? Status::OK() : plan.status();
  }
};

TEST_F(BinderTest, SimpleProjectScan) {
  PlanPtr plan = Bind("SELECT name, age FROM people");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PlanKind::kProject);
  ASSERT_EQ(plan->children.size(), 1u);
  EXPECT_EQ(plan->children[0]->kind, PlanKind::kScan);
  ASSERT_EQ(plan->output_schema.NumColumns(), 2u);
  EXPECT_EQ(plan->output_schema.column(0).name, "name");
  EXPECT_EQ(plan->output_schema.column(0).type, DataType::kString);
  EXPECT_EQ(plan->output_schema.column(1).type, DataType::kInt64);
}

TEST_F(BinderTest, StarExpansion) {
  PlanPtr plan = Bind("SELECT * FROM people");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->output_schema.NumColumns(), 4u);
}

TEST_F(BinderTest, QualifiedStarExpansion) {
  PlanPtr plan = Bind("SELECT p.* FROM people p JOIN orders o ON p.id = o.person_id");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->output_schema.NumColumns(), 4u);  // only people's columns
}

TEST_F(BinderTest, WhereBecomesFilter) {
  PlanPtr plan = Bind("SELECT name FROM people WHERE age > 30");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->children[0]->kind, PlanKind::kFilter);
  EXPECT_EQ(plan->children[0]->children[0]->kind, PlanKind::kScan);
}

TEST_F(BinderTest, UnknownColumnRejected) {
  Status s = BindError("SELECT nope FROM people");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, UnknownTableRejected) {
  Status s = BindError("SELECT x FROM nonexistent");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  // Both people and a self-join alias have "id".
  Status s = BindError("SELECT id FROM people p1 JOIN people p2 ON p1.id = p2.id");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, EquiJoinExtractsKeys) {
  PlanPtr plan = Bind(
      "SELECT name, amount FROM people JOIN orders ON people.id = orders.person_id");
  ASSERT_NE(plan, nullptr);
  const PlanNode* join = plan->children[0].get();
  ASSERT_EQ(join->kind, PlanKind::kHashJoin);
  ASSERT_EQ(join->join_keys.size(), 1u);
  EXPECT_EQ(join->join_keys[0].first->column_index, 0u);   // people.id
  EXPECT_EQ(join->join_keys[0].second->column_index, 1u);  // orders.person_id
  EXPECT_EQ(join->predicate, nullptr);
}

TEST_F(BinderTest, MixedJoinConditionKeepsResidual) {
  PlanPtr plan = Bind(
      "SELECT name FROM people JOIN orders ON people.id = orders.person_id "
      "AND people.age > orders.amount");
  ASSERT_NE(plan, nullptr);
  const PlanNode* join = plan->children[0].get();
  ASSERT_EQ(join->kind, PlanKind::kHashJoin);
  EXPECT_EQ(join->join_keys.size(), 1u);
  EXPECT_NE(join->predicate, nullptr);
}

TEST_F(BinderTest, NonEquiJoinIsNestedLoop) {
  PlanPtr plan = Bind("SELECT name FROM people JOIN orders ON people.age > orders.amount");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->children[0]->kind, PlanKind::kNestedLoopJoin);
}

TEST_F(BinderTest, AggregateGlobal) {
  PlanPtr plan = Bind("SELECT count(*), sum(age) FROM people");
  ASSERT_NE(plan, nullptr);
  const PlanNode* agg = plan->children[0].get();
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  EXPECT_TRUE(agg->group_by.empty());
  ASSERT_EQ(agg->aggregates.size(), 2u);
  EXPECT_EQ(agg->aggregates[0].func, AggFunc::kCount);
  EXPECT_EQ(agg->aggregates[1].func, AggFunc::kSum);
  EXPECT_EQ(agg->aggregates[1].output_type, DataType::kInt64);
}

TEST_F(BinderTest, AggregateDedupesIdenticalCalls) {
  PlanPtr plan = Bind("SELECT count(*), count(*) + 1 FROM people");
  ASSERT_NE(plan, nullptr);
  const PlanNode* agg = plan->children[0].get();
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  EXPECT_EQ(agg->aggregates.size(), 1u);
}

TEST_F(BinderTest, GroupByWithExpressionOverKeys) {
  PlanPtr plan = Bind("SELECT city, count(*) FROM people GROUP BY city");
  ASSERT_NE(plan, nullptr);
  const PlanNode* agg = plan->children[0].get();
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  EXPECT_EQ(agg->group_by.size(), 1u);
}

TEST_F(BinderTest, NonGroupedColumnRejected) {
  Status s = BindError("SELECT name, count(*) FROM people GROUP BY city");
  EXPECT_FALSE(s.ok());
}

TEST_F(BinderTest, AggregateInWhereRejected) {
  Status s = BindError("SELECT name FROM people WHERE count(*) > 1");
  EXPECT_FALSE(s.ok());
}

TEST_F(BinderTest, NestedAggregateRejected) {
  Status s = BindError("SELECT sum(count(*)) FROM people");
  EXPECT_FALSE(s.ok());
}

TEST_F(BinderTest, HavingBindsOverAggregates) {
  PlanPtr plan = Bind(
      "SELECT city, count(*) AS n FROM people GROUP BY city HAVING count(*) > 1");
  ASSERT_NE(plan, nullptr);
  // Project <- Filter(HAVING) <- Aggregate.
  ASSERT_EQ(plan->kind, PlanKind::kProject);
  EXPECT_EQ(plan->children[0]->kind, PlanKind::kFilter);
  EXPECT_EQ(plan->children[0]->children[0]->kind, PlanKind::kAggregate);
}

TEST_F(BinderTest, DistinctBecomesGroupingAggregate) {
  PlanPtr plan = Bind("SELECT DISTINCT city FROM people");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PlanKind::kAggregate);
  EXPECT_EQ(plan->group_by.size(), 1u);
  EXPECT_TRUE(plan->aggregates.empty());
}

TEST_F(BinderTest, OrderByAliasOrdinalAndAggText) {
  PlanPtr p1 = Bind("SELECT name AS n FROM people ORDER BY n");
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->kind, PlanKind::kSort);
  PlanPtr p2 = Bind("SELECT name FROM people ORDER BY 1");
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->kind, PlanKind::kSort);
  PlanPtr p3 = Bind("SELECT city, count(*) FROM people GROUP BY city ORDER BY count(*)");
  ASSERT_NE(p3, nullptr);
  EXPECT_EQ(p3->kind, PlanKind::kSort);
  EXPECT_FALSE(BindError("SELECT name FROM people ORDER BY 5").ok());
}

TEST_F(BinderTest, LimitNode) {
  PlanPtr plan = Bind("SELECT name FROM people LIMIT 2 OFFSET 1");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PlanKind::kLimit);
  EXPECT_EQ(plan->limit, 2);
  EXPECT_EQ(plan->offset, 1);
}

TEST_F(BinderTest, DerivedTableQualifier) {
  PlanPtr plan = Bind("SELECT s.name FROM (SELECT name FROM people) AS s");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->output_schema.column(0).name, "name");
}

TEST_F(BinderTest, InfoSchemaBindable) {
  PlanPtr plan = Bind("SELECT table_name FROM information_schema.tables");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->output_schema.column(0).type, DataType::kString);
}

TEST_F(BinderTest, TypeMismatchComparisonRejected) {
  Status s = BindError("SELECT name FROM people WHERE name > 5");
  EXPECT_FALSE(s.ok());
}

TEST_F(BinderTest, ArithmeticOnStringsRejected) {
  Status s = BindError("SELECT name + 1 FROM people");
  EXPECT_FALSE(s.ok());
}

TEST_F(BinderTest, UnknownFunctionRejected) {
  Status s = BindError("SELECT frobnicate(name) FROM people");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, ScalarFunctionTypes) {
  PlanPtr plan = Bind(
      "SELECT abs(age), lower(name), length(city), age / 2 FROM people");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->output_schema.column(0).type, DataType::kInt64);
  EXPECT_EQ(plan->output_schema.column(1).type, DataType::kString);
  EXPECT_EQ(plan->output_schema.column(2).type, DataType::kInt64);
  EXPECT_EQ(plan->output_schema.column(3).type, DataType::kFloat64);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST_F(BinderTest, IdenticalPlansShareFingerprint) {
  PlanPtr a = Bind("SELECT name FROM people WHERE age > 30");
  PlanPtr b = Bind("SELECT name FROM people WHERE age > 30");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(PlanFingerprint(*a), PlanFingerprint(*b));
  EXPECT_EQ(CanonicalPlanFingerprint(*a), CanonicalPlanFingerprint(*b));
}

TEST_F(BinderTest, DifferentLiteralsDifferentFingerprint) {
  PlanPtr a = Bind("SELECT name FROM people WHERE age > 30");
  PlanPtr b = Bind("SELECT name FROM people WHERE age > 31");
  EXPECT_NE(PlanFingerprint(*a), PlanFingerprint(*b));
}

TEST_F(BinderTest, CanonicalFingerprintNormalizesConjunctOrder) {
  PlanPtr a = Bind("SELECT name FROM people WHERE age > 30 AND city = 'berkeley'");
  PlanPtr b = Bind("SELECT name FROM people WHERE city = 'berkeley' AND age > 30");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(PlanFingerprint(*a), PlanFingerprint(*b));
  EXPECT_EQ(CanonicalPlanFingerprint(*a), CanonicalPlanFingerprint(*b));
}

TEST_F(BinderTest, FingerprintChangesWithData) {
  PlanPtr a = Bind("SELECT count(*) FROM people");
  uint64_t before = PlanFingerprint(*a);
  Run("INSERT INTO people VALUES (6,'frank',50,'oakland')");
  PlanPtr b = Bind("SELECT count(*) FROM people");
  EXPECT_NE(before, PlanFingerprint(*b));
}

TEST_F(BinderTest, SubplanEnumerationSizesAndClasses) {
  PlanPtr plan = Bind(
      "SELECT city, count(*) FROM people WHERE age > 20 GROUP BY city");
  ASSERT_NE(plan, nullptr);
  auto subplans = EnumerateSubplans(*plan);
  // Project <- Aggregate <- Filter <- Scan = 4 nodes.
  ASSERT_EQ(subplans.size(), 4u);
  EXPECT_EQ(subplans[0].size, 4u);
  EXPECT_EQ(subplans[0].root_class, OpClass::PR);
  EXPECT_EQ(subplans[1].root_class, OpClass::UA);
  EXPECT_EQ(subplans[2].root_class, OpClass::FI);
  EXPECT_EQ(subplans[3].root_class, OpClass::TS);
  EXPECT_EQ(subplans[3].size, 1u);
}

}  // namespace
}  // namespace agentfirst
