#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "gtest/gtest.h"

namespace agentfirst {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitPropagatesStatus) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() { return Status::OK(); });
  auto bad = pool.Submit([]() { return Status::Internal("worker failed"); });
  EXPECT_TRUE(ok.get().ok());
  Status st = bad.get();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("worker failed"), std::string::npos);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0ul, 1ul, 7ul, 1000ul, 4097ul}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(
      37, 100,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/8);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), i >= 37 ? 1 : 0);
}

TEST(ThreadPoolTest, ParallelForWorksWithSingleWorkerPool) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.ParallelFor(0, 10000, [&](size_t begin, size_t end) {
    long local = 0;
    for (size_t i = begin; i < end; ++i) local += static_cast<long>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(
          0, 10000,
          [&](size_t begin, size_t) {
            if (begin >= 5000) throw std::runtime_error("morsel failed");
          },
          /*grain=*/64),
      std::runtime_error);
  // The pool stays usable after an aborted loop.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 100, [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.ParallelFor(
      0, 8,
      [&](size_t begin, size_t end) {
        for (size_t outer = begin; outer < end; ++outer) {
          pool.ParallelFor(
              0, 100,
              [&](size_t b, size_t e) {
                sum.fetch_add(static_cast<long>(e - b));
              },
              /*grain=*/7);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(sum.load(), 800);
}

TEST(ThreadPoolTest, NestedSubmissionFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  constexpr int kChildren = 64;
  // The outer task submits children and returns without blocking on them
  // (blocking a worker on a nested future could starve a narrow pool).
  auto outer = pool.Submit([&]() {
    for (int i = 0; i < kChildren; ++i) {
      pool.Submit([&]() { done.fetch_add(1); });
    }
  });
  outer.get();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < kChildren &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kChildren);
}

TEST(ThreadPoolTest, StressTenThousandTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 10000;
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&sum, i]() { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, MorselBoundariesIndependentOfSchedule) {
  // Morsel boundaries must be a pure function of (begin, end, grain) —
  // the determinism contract the parallel operators rely on.
  for (size_t workers : {1ul, 2ul, 4ul}) {
    ThreadPool pool(workers);
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> seen;
    pool.ParallelFor(
        0, 1000,
        [&](size_t begin, size_t end) {
          std::lock_guard<std::mutex> lock(mu);
          seen.emplace(begin, end);
        },
        /*grain=*/128);
    std::set<std::pair<size_t, size_t>> expected;
    for (size_t b = 0; b < 1000; b += 128) {
      expected.emplace(b, std::min<size_t>(b + 128, 1000));
    }
    EXPECT_EQ(seen, expected) << "workers=" << workers;
  }
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  ThreadPool* a = ThreadPool::Default();
  ThreadPool* b = ThreadPool::Default();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_workers(), 1u);
  std::atomic<int> x{0};
  a->ParallelFor(0, 10, [&](size_t begin, size_t end) {
    x.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(x.load(), 10);
}

}  // namespace
}  // namespace agentfirst
