// Unit tests for the sleeper agent (steering side channel): why-not
// analysis, cost warnings, join discovery, batching suggestions, memory
// pointers, and the encoding-artifact write-back.

#include "core/steering.h"

#include "core/system.h"
#include "gtest/gtest.h"
#include "opt/rules.h"
#include "plan/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace agentfirst {
namespace {

class SteeringTest : public testing_util::PeopleDbTest {
 protected:
  void SetUp() override {
    testing_util::PeopleDbTest::SetUp();
    memory_ = std::make_unique<AgenticMemoryStore>(&catalog_,
                                                   AgenticMemoryStore::Options{});
    search_ = std::make_unique<SemanticCatalogSearch>(&catalog_);
    sleeper_ = std::make_unique<SleeperAgent>(&catalog_, memory_.get(),
                                              search_.get());
  }

  PlanPtr Plan(const std::string& sql) {
    Binder binder(&catalog_);
    auto select = ParseSelect(sql);
    EXPECT_TRUE(select.ok());
    auto plan = binder.BindSelect(**select);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? OptimizePlan(*plan) : nullptr;
  }

  /// Runs a plan and builds the corresponding QueryAnswer.
  QueryAnswer Answer(const PlanPtr& plan, double estimated_cost = 0.0) {
    QueryAnswer a;
    a.status = Status::OK();
    auto r = ExecutePlan(*plan);
    EXPECT_TRUE(r.ok());
    if (r.ok()) a.result = *r;
    a.estimated_cost = estimated_cost;
    return a;
  }

  std::vector<Hint> Analyze(const std::vector<PlanPtr>& plans,
                            const std::vector<QueryAnswer>& answers,
                            const std::string& brief_text = "",
                            const std::vector<std::string>& recent = {}) {
    Probe probe;
    probe.agent_id = "tester";
    Brief brief;
    brief.text = brief_text;
    return sleeper_->Analyze(probe, brief, answers, plans, recent);
  }

  std::unique_ptr<AgenticMemoryStore> memory_;
  std::unique_ptr<SemanticCatalogSearch> search_;
  std::unique_ptr<SleeperAgent> sleeper_;
};

TEST_F(SteeringTest, ReferencedTablesWalksJoins) {
  PlanPtr plan = Plan(
      "SELECT name FROM people JOIN orders ON people.id = orders.person_id");
  auto tables = ReferencedTables(*plan);
  EXPECT_EQ(tables, (std::vector<std::string>{"orders", "people"}));
}

TEST_F(SteeringTest, WhyNotIdentifiesTheKillingConjunct) {
  PlanPtr plan = Plan(
      "SELECT name FROM people WHERE city = 'BRK' AND age > 10");
  auto hints = Analyze({plan}, {Answer(plan)});
  const Hint* why = nullptr;
  for (const Hint& h : hints) {
    if (h.kind == HintKind::kWhyEmptyResult) why = &h;
  }
  ASSERT_NE(why, nullptr);
  // Must blame the city conjunct, not the age one.
  EXPECT_NE(why->text.find("BRK"), std::string::npos) << why->text;
  EXPECT_EQ(why->text.find("age"), std::string::npos) << why->text;
  EXPECT_NE(why->text.find("berkeley"), std::string::npos) << why->text;
}

TEST_F(SteeringTest, WhyNotWritesEncodingArtifact) {
  PlanPtr plan = Plan("SELECT name FROM people WHERE city = 'BRK'");
  (void)Analyze({plan}, {Answer(plan)});
  auto hit = memory_->GetExact("encoding:people.city");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->artifact->kind, ArtifactKind::kColumnEncoding);
  EXPECT_NE(hit->artifact->content.find("berkeley"), std::string::npos);
}

TEST_F(SteeringTest, NoWhyNotForNonEmptyResults) {
  PlanPtr plan = Plan("SELECT name FROM people WHERE city = 'berkeley'");
  auto hints = Analyze({plan}, {Answer(plan)});
  for (const Hint& h : hints) {
    EXPECT_NE(h.kind, HintKind::kWhyEmptyResult);
  }
}

TEST_F(SteeringTest, ZeroCountAggregateTriggersWhyNot) {
  PlanPtr plan = Plan("SELECT count(*) FROM people WHERE city = 'BRK'");
  auto hints = Analyze({plan}, {Answer(plan)});
  bool found = false;
  for (const Hint& h : hints) {
    if (h.kind == HintKind::kWhyEmptyResult) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(SteeringTest, CostWarningAboveThreshold) {
  PlanPtr plan = Plan("SELECT count(*) FROM people");
  auto low = Analyze({plan}, {Answer(plan, 10.0)});
  for (const Hint& h : low) EXPECT_NE(h.kind, HintKind::kCostWarning);
  auto high = Analyze({plan}, {Answer(plan, 1e9)});
  bool warned = false;
  for (const Hint& h : high) {
    if (h.kind == HintKind::kCostWarning) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST_F(SteeringTest, JoinDiscoveryByValueInclusion) {
  // orders.person_id values sit inside people.id: suggest the join even
  // though no column names match.
  PlanPtr plan = Plan("SELECT count(*) FROM orders");
  auto hints = Analyze({plan}, {Answer(plan)}, "exploring order volume");
  bool suggested = false;
  for (const Hint& h : hints) {
    if (h.kind == HintKind::kJoinSuggestion &&
        h.text.find("people") != std::string::npos) {
      suggested = true;
    }
  }
  EXPECT_TRUE(suggested);
}

TEST_F(SteeringTest, BatchingSuggestionForRepeatTables) {
  PlanPtr plan = Plan("SELECT count(*) FROM people");
  auto hints = Analyze({plan}, {Answer(plan)}, "", {"people"});
  bool suggested = false;
  for (const Hint& h : hints) {
    if (h.kind == HintKind::kBatchingSuggestion) suggested = true;
  }
  EXPECT_TRUE(suggested);
  // No suggestion when the probe touches fresh tables.
  auto fresh = Analyze({plan}, {Answer(plan)}, "", {"orders"});
  for (const Hint& h : fresh) {
    EXPECT_NE(h.kind, HintKind::kBatchingSuggestion);
  }
}

TEST_F(SteeringTest, MemoryPointersSurfaceRelevantArtifacts) {
  MemoryArtifact note;
  note.kind = ArtifactKind::kGroundingNote;
  note.key = "note:ages";
  note.content = "people ages range from 19 to 41 with one null";
  note.table_deps = {"people"};
  memory_->Put(std::move(note));

  PlanPtr plan = Plan("SELECT count(*) FROM people");
  auto hints = Analyze({plan}, {Answer(plan)},
                       "looking into the ages of people in the data");
  bool surfaced = false;
  for (const Hint& h : hints) {
    if (h.kind == HintKind::kSchemaGuidance &&
        h.text.find("note:ages") != std::string::npos) {
      surfaced = true;
    }
  }
  EXPECT_TRUE(surfaced);
}

TEST_F(SteeringTest, HintsAreCappedAndSorted) {
  SleeperAgent::Options options;
  options.max_hints = 2;
  SleeperAgent capped(&catalog_, memory_.get(), search_.get(), options);
  PlanPtr plan = Plan("SELECT name FROM people WHERE city = 'BRK'");
  Probe probe;
  Brief brief;
  brief.text = "exploring people and orders and everything";
  auto hints = capped.Analyze(probe, brief, {Answer(plan, 1e9)}, {plan}, {});
  ASSERT_LE(hints.size(), 2u);
  for (size_t i = 1; i < hints.size(); ++i) {
    EXPECT_GE(hints[i - 1].relevance, hints[i].relevance);
  }
}

TEST_F(SteeringTest, SkippedAndFailedAnswersIgnored) {
  PlanPtr plan = Plan("SELECT name FROM people WHERE city = 'BRK'");
  QueryAnswer skipped;
  skipped.status = Status::OK();
  skipped.skipped = true;
  auto hints = Analyze({plan}, {skipped});
  for (const Hint& h : hints) {
    EXPECT_NE(h.kind, HintKind::kWhyEmptyResult);
  }
  QueryAnswer failed;
  failed.status = Status::Internal("boom");
  auto hints2 = Analyze({plan}, {failed});
  for (const Hint& h : hints2) {
    EXPECT_NE(h.kind, HintKind::kWhyEmptyResult);
  }
}

}  // namespace
}  // namespace agentfirst
