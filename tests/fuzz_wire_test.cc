// Seeded round-trip fuzzing for the afp wire format (src/net/wire.h).
//
// Three properties, each over hundreds of seeded-random inputs:
//
//   1. Canonical round trip: encode(decode(encode(x))) == encode(x), byte
//      for byte, for probes, batches, responses, and SQL frames. (The first
//      encode canonicalizes — deprecated Brief aliases fold into
//      ResourceLimits — so the outer pair must be a fixed point.)
//   2. Strict prefixes are rejected: every truncation of a valid payload
//      decodes to a Status, never a crash, hang, or partial object.
//   3. Hostile bytes are survivable: random garbage, random byte flips in
//      valid payloads, and oversized length prefixes all come back as
//      Status. Run under ASan/UBSan (tools/run_sanitized.sh) this is the
//      no-UB guarantee the header promises.
//
// Determinism: all randomness flows from Rng seeds fixed below, so a
// failure reproduces exactly.

#include "net/wire.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace agentfirst {
namespace net {
namespace {

std::string RandomName(Rng* rng, size_t max_len) {
  size_t len = rng->NextUint(max_len + 1);
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->NextUint(26)));
  }
  return s;
}

ResourceLimits RandomLimits(Rng* rng) {
  ResourceLimits limits;
  if (rng->NextBool(0.5)) limits.DeadlineMillis(rng->NextDouble(0.1, 5000.0));
  if (rng->NextBool(0.5)) limits.MaxRows(rng->NextUint(100000));
  if (rng->NextBool(0.5)) limits.MaxBytes(rng->NextUint(1u << 24));
  if (rng->NextBool(0.5)) limits.CostBudget(rng->NextDouble(1.0, 1e6));
  return limits;
}

Probe RandomProbe(Rng* rng) {
  Probe probe;
  probe.id = rng->Next();
  probe.agent_id = RandomName(rng, 24);
  size_t nq = rng->NextUint(5);
  for (size_t i = 0; i < nq; ++i) {
    probe.queries.push_back("SELECT " + RandomName(rng, 40));
  }
  probe.brief.text = RandomName(rng, 80);
  probe.brief.phase = static_cast<ProbePhase>(rng->NextUint(5));
  if (rng->NextBool(0.4)) {
    probe.brief.max_relative_error = rng->NextDouble(0.0, 0.5);
  }
  probe.brief.priority = static_cast<int>(rng->NextInt(-4, 4));
  probe.brief.k_of_n = rng->NextUint(4);
  probe.brief.enough_rows_total = rng->NextUint(1000);
  probe.brief.limits = RandomLimits(rng);
  probe.semantic_search_phrase = RandomName(rng, 30);
  if (rng->NextBool(0.3)) probe.semantic_top_k = rng->NextUint(20);
  probe.dry_run = rng->NextBool(0.2);
  return probe;
}

Value RandomValue(Rng* rng) {
  switch (rng->NextUint(5)) {
    case 0: return Value::Null();
    case 1: return Value::Bool(rng->NextBool(0.5));
    case 2: return Value::Int(rng->NextInt(-1000000, 1000000));
    case 3: return Value::Double(rng->NextDouble(-1e9, 1e9));
    default: return Value::String(RandomName(rng, 16));
  }
}

ResultSet RandomResultSet(Rng* rng) {
  ResultSet rs;
  size_t cols = 1 + rng->NextUint(4);
  for (size_t c = 0; c < cols; ++c) {
    rs.schema.AddColumn(ColumnDef(RandomName(rng, 8),
                                  static_cast<DataType>(rng->NextUint(5)),
                                  rng->NextBool(0.5), RandomName(rng, 8)));
  }
  size_t rows = rng->NextUint(6);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    for (size_t c = 0; c < cols; ++c) row.push_back(RandomValue(rng));
    rs.rows.push_back(std::move(row));
  }
  rs.approximate = rng->NextBool(0.3);
  rs.sample_rate = rs.approximate ? rng->NextDouble(0.01, 1.0) : 1.0;
  rs.truncated = rng->NextBool(0.2);
  if (rs.truncated) rs.interrupt = StatusCode::kDeadlineExceeded;
  return rs;
}

obs::TraceSpan RandomTrace(Rng* rng, size_t depth) {
  obs::TraceSpan span;
  span.id = rng->Next();
  span.name = RandomName(rng, 12);
  span.duration_ms = rng->NextDouble(0.0, 50.0);
  size_t notes = rng->NextUint(3);
  for (size_t i = 0; i < notes; ++i) {
    span.notes.push_back({RandomName(rng, 8), RandomName(rng, 12)});
  }
  if (depth > 0) {
    size_t kids = rng->NextUint(3);
    for (size_t i = 0; i < kids; ++i) {
      span.children.push_back(std::make_shared<obs::TraceSpan>(
          RandomTrace(rng, depth - 1)));
    }
  }
  return span;
}

Status RandomStatus(Rng* rng) {
  auto code = static_cast<StatusCode>(rng->NextUint(12));
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, RandomName(rng, 30));
}

ProbeResponse RandomResponse(Rng* rng) {
  ProbeResponse response;
  response.probe_id = rng->Next();
  size_t answers = rng->NextUint(4);
  for (size_t i = 0; i < answers; ++i) {
    QueryAnswer a;
    a.sql = "SELECT " + RandomName(rng, 20);
    a.status = RandomStatus(rng);
    if (rng->NextBool(0.6)) {
      a.result = std::make_shared<const ResultSet>(RandomResultSet(rng));
    }
    a.skipped = rng->NextBool(0.2);
    if (a.skipped) a.skip_reason = RandomName(rng, 20);
    a.approximate = rng->NextBool(0.3);
    a.sample_rate = a.approximate ? rng->NextDouble(0.01, 1.0) : 1.0;
    size_t cis = rng->NextUint(3);
    for (size_t c = 0; c < cis; ++c) {
      if (rng->NextBool(0.5)) {
        a.relative_ci95.push_back(rng->NextDouble(0.0, 1.0));
      } else {
        a.relative_ci95.push_back(std::nullopt);
      }
    }
    a.estimated_cost = rng->NextDouble(0.0, 1e5);
    a.estimated_rows = rng->NextDouble(0.0, 1e6);
    a.from_memory = rng->NextBool(0.2);
    if (rng->NextBool(0.2)) a.plan_text = RandomName(rng, 60);
    a.truncated = rng->NextBool(0.15);
    a.retries = static_cast<uint32_t>(rng->NextUint(4));
    response.answers.push_back(std::move(a));
  }
  size_t hints = rng->NextUint(3);
  for (size_t i = 0; i < hints; ++i) {
    response.hints.push_back(Hint{static_cast<HintKind>(rng->NextUint(6)),
                                  RandomName(rng, 40),
                                  rng->NextDouble(0.0, 1.0)});
  }
  size_t matches = rng->NextUint(3);
  for (size_t i = 0; i < matches; ++i) {
    response.discoveries.push_back(SemanticMatch{
        static_cast<SemanticMatch::Kind>(rng->NextUint(3)),
        RandomName(rng, 10), RandomName(rng, 10), RandomName(rng, 10),
        rng->NextDouble(0.0, 1.0)});
  }
  response.interpreted_phase = static_cast<ProbePhase>(rng->NextUint(5));
  response.total_estimated_cost = rng->NextDouble(0.0, 1e6);
  response.total_executed_cost = rng->NextDouble(0.0, 1e6);
  response.total_retries = rng->NextUint(8);
  response.shed = rng->NextBool(0.1);
  if (rng->NextBool(0.7)) response.trace = RandomTrace(rng, 3);
  return response;
}

std::string_view PayloadOf(const std::string& frame) {
  return std::string_view(frame).substr(kFrameHeaderBytes);
}

TEST(FuzzWireTest, ProbeRequestEncodeDecodeEncodeIsByteIdentical) {
  Rng rng(0xF00D);
  for (int iter = 0; iter < 300; ++iter) {
    Probe probe = RandomProbe(&rng);
    auto frame = EncodeProbeRequestFrame(iter, probe);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    auto decoded = DecodeProbeRequestPayload(PayloadOf(*frame));
    ASSERT_TRUE(decoded.ok()) << "iter " << iter << ": "
                              << decoded.status().ToString();
    auto reencoded = EncodeProbeRequestFrame(iter, decoded->probe);
    ASSERT_TRUE(reencoded.ok());
    ASSERT_EQ(*frame, *reencoded) << "iter " << iter;
  }
}

TEST(FuzzWireTest, ProbeBatchEncodeDecodeEncodeIsByteIdentical) {
  Rng rng(0xBA7C4);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Probe> batch;
    size_t n = rng.NextUint(4);
    for (size_t i = 0; i < n; ++i) batch.push_back(RandomProbe(&rng));
    auto frame = EncodeProbeBatchRequestFrame(iter, batch);
    ASSERT_TRUE(frame.ok());
    auto decoded = DecodeProbeBatchRequestPayload(PayloadOf(*frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->probes.size(), n);
    auto reencoded = EncodeProbeBatchRequestFrame(iter, decoded->probes);
    ASSERT_TRUE(reencoded.ok());
    ASSERT_EQ(*frame, *reencoded) << "iter " << iter;
  }
}

TEST(FuzzWireTest, ProbeResponseEncodeDecodeEncodeIsByteIdentical) {
  Rng rng(0x5EED);
  for (int iter = 0; iter < 300; ++iter) {
    ProbeResponse response = RandomResponse(&rng);
    Status carried = RandomStatus(&rng);
    std::string frame =
        carried.ok() ? EncodeProbeResponseFrame(iter, Status::OK(), &response)
                     : EncodeProbeResponseFrame(iter, carried, nullptr);
    auto decoded = DecodeProbeResponsePayload(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << "iter " << iter << ": "
                              << decoded.status().ToString();
    std::string reencoded =
        decoded->response.has_value()
            ? EncodeProbeResponseFrame(iter, Status::OK(), &*decoded->response)
            : EncodeProbeResponseFrame(iter, decoded->status, nullptr);
    ASSERT_EQ(frame, reencoded) << "iter " << iter;
  }
}

TEST(FuzzWireTest, SqlFramesRoundTrip) {
  Rng rng(0x50714);
  for (int iter = 0; iter < 200; ++iter) {
    std::string sql = "SELECT " + RandomName(&rng, 200);
    std::string frame = EncodeSqlRequestFrame(iter, sql);
    auto decoded = DecodeSqlRequestPayload(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->sql, sql);
    ASSERT_EQ(frame, EncodeSqlRequestFrame(iter, decoded->sql));

    ResultSet rs = RandomResultSet(&rng);
    std::string rframe = EncodeSqlResponseFrame(iter, Status::OK(), &rs);
    auto rdecoded = DecodeSqlResponsePayload(PayloadOf(rframe));
    ASSERT_TRUE(rdecoded.ok()) << rdecoded.status().ToString();
    ASSERT_TRUE(rdecoded->result.has_value());
    ASSERT_EQ(rframe,
              EncodeSqlResponseFrame(iter, Status::OK(), &*rdecoded->result));
  }
}

TEST(FuzzWireTest, EveryStrictPrefixIsRejected) {
  Rng rng(0x9EF1);
  // A handful of frames is enough: prefix testing is O(n^2) in payload
  // size, and the decoder's failure paths are shared across frame kinds.
  for (int iter = 0; iter < 8; ++iter) {
    auto frame = EncodeProbeRequestFrame(iter, RandomProbe(&rng));
    ASSERT_TRUE(frame.ok());
    std::string_view payload = PayloadOf(*frame);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      auto decoded = DecodeProbeRequestPayload(payload.substr(0, cut));
      ASSERT_FALSE(decoded.ok())
          << "prefix of " << cut << "/" << payload.size() << " decoded";
    }
    ProbeResponse response = RandomResponse(&rng);
    std::string rframe = EncodeProbeResponseFrame(iter, Status::OK(), &response);
    std::string_view rpayload = PayloadOf(rframe);
    for (size_t cut = 0; cut < rpayload.size(); ++cut) {
      ASSERT_FALSE(DecodeProbeResponsePayload(rpayload.substr(0, cut)).ok());
    }
  }
}

TEST(FuzzWireTest, RandomByteFlipsNeverCrash) {
  Rng rng(0xF1195);
  for (int iter = 0; iter < 400; ++iter) {
    auto frame = EncodeProbeRequestFrame(iter, RandomProbe(&rng));
    ASSERT_TRUE(frame.ok());
    std::string payload(PayloadOf(*frame));
    if (payload.empty()) continue;
    size_t flips = 1 + rng.NextUint(4);
    for (size_t f = 0; f < flips; ++f) {
      size_t at = rng.NextUint(payload.size());
      payload[at] = static_cast<char>(payload[at] ^
                                      (1u << rng.NextUint(8)));
    }
    // Either outcome is legal; crashing or reading out of bounds is not.
    auto decoded = DecodeProbeRequestPayload(payload);
    if (decoded.ok()) {
      // Whatever decoded must re-encode cleanly.
      (void)EncodeProbeRequestFrame(iter, decoded->probe);
    }
  }
}

TEST(FuzzWireTest, RandomGarbageNeverCrashesAnyDecoder) {
  Rng rng(0x6A2BA6E);
  for (int iter = 0; iter < 400; ++iter) {
    size_t len = rng.NextUint(200);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextUint(256)));
    }
    (void)DecodeProbeRequestPayload(garbage);
    (void)DecodeProbeBatchRequestPayload(garbage);
    (void)DecodeSqlRequestPayload(garbage);
    (void)DecodeProbeResponsePayload(garbage);
    (void)DecodeProbeBatchResponsePayload(garbage);
    (void)DecodeSqlResponsePayload(garbage);
    (void)DecodeHelloPayload(garbage);
    (void)DecodeServerInfoRequestPayload(garbage);
    (void)DecodeServerInfoResponsePayload(garbage);
    Status carried;
    (void)DecodeErrorPayload(garbage, &carried);
    (void)PeekCorrelationId(garbage);
  }
}

TEST(FuzzWireTest, OversizedLengthPrefixesAreRejectedBeforeAllocation) {
  // Frame header with payload_len over the cap.
  std::string header;
  AppendFrameHeader(FrameType::kSqlRequest, 1024, &header);
  // Patch the length field to 2 GiB.
  header[8] = '\x00';
  header[9] = '\x00';
  header[10] = '\x00';
  header[11] = '\x80';
  auto parsed = ParseFrameHeader(reinterpret_cast<const uint8_t*>(header.data()),
                                 kMaxFramePayloadBytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);

  // Inner string length prefix claiming more bytes than the payload holds.
  WireWriter w;
  w.U64(1);                // correlation id
  w.U32(0x7fffffffu);      // "string" of 2 GiB
  auto decoded = DecodeSqlRequestPayload(w.buffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // Element count claiming more elements than could possibly fit.
  WireWriter batch;
  batch.U64(1);            // correlation id
  batch.U32(0x40000000u);  // one billion probes in a 12-byte payload
  auto bdecoded = DecodeProbeBatchRequestPayload(batch.buffer());
  ASSERT_FALSE(bdecoded.ok());
  EXPECT_EQ(bdecoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FuzzWireTest, HeaderFieldValidation) {
  std::string good;
  AppendFrameHeader(FrameType::kPing, 4, &good);
  ASSERT_TRUE(ParseFrameHeader(
                  reinterpret_cast<const uint8_t*>(good.data()),
                  kMaxFramePayloadBytes)
                  .ok());

  auto reject = [&](size_t at, char value) {
    std::string bad = good;
    bad[at] = value;
    auto parsed = ParseFrameHeader(
        reinterpret_cast<const uint8_t*>(bad.data()), kMaxFramePayloadBytes);
    EXPECT_FALSE(parsed.ok()) << "byte " << at << " not validated";
  };
  reject(0, 'X');        // magic
  reject(3, '2');        // magic (version digit is part of the magic)
  reject(4, '\x02');     // protocol version
  reject(5, '\x63');     // unknown frame type
  reject(5, '\x00');     // frame type zero
  reject(6, '\x01');     // reserved bits must be zero
}

}  // namespace
}  // namespace net
}  // namespace agentfirst
