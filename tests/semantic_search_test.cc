#include "core/semantic_search.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace agentfirst {
namespace {

class SemanticSearchTest : public testing_util::PeopleDbTest {
 protected:
  void SetUp() override {
    testing_util::PeopleDbTest::SetUp();
    search_ = std::make_unique<SemanticCatalogSearch>(&catalog_);
  }
  std::unique_ptr<SemanticCatalogSearch> search_;
};

TEST_F(SemanticSearchTest, FindsTablesByName) {
  auto matches = search_->Search("people", 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].kind, SemanticMatch::Kind::kTable);
  EXPECT_EQ(matches[0].table, "people");
}

TEST_F(SemanticSearchTest, FindsColumns) {
  auto matches = search_->Search("orders amount", 5);
  bool found = false;
  for (const auto& m : matches) {
    if (m.kind == SemanticMatch::Kind::kColumn && m.table == "orders" &&
        m.column == "amount") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SemanticSearchTest, FindsCellValues) {
  auto matches = search_->Search("espresso machine", 5);
  bool found = false;
  for (const auto& m : matches) {
    if (m.kind == SemanticMatch::Kind::kValue &&
        m.text == "espresso machine") {
      found = true;
      EXPECT_EQ(m.table, "orders");
      EXPECT_EQ(m.column, "item");
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SemanticSearchTest, ScoresDescendAndRespectK) {
  auto matches = search_->Search("coffee", 3);
  ASSERT_LE(matches.size(), 3u);
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i].score, matches[i - 1].score);
  }
}

TEST_F(SemanticSearchTest, MinScoreFilters) {
  auto strict = search_->Search("zzz qqq xxx", 10, /*min_score=*/0.9);
  EXPECT_TRUE(strict.empty());
}

TEST_F(SemanticSearchTest, IndexRebuildsOnDdl) {
  (void)search_->Search("people", 1);
  size_t before = search_->IndexedItems();
  ASSERT_TRUE(catalog_.CreateTable(
      "tariffs", Schema({ColumnDef("good", DataType::kString, true, "tariffs")})).ok());
  auto matches = search_->Search("tariffs", 1);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].table, "tariffs");
  EXPECT_GT(search_->IndexedItems(), before);
}

TEST_F(SemanticSearchTest, IndexRebuildsOnDataChange) {
  (void)search_->Search("people", 1);
  Run("INSERT INTO orders VALUES (105, 2, 3.0, 'matcha latte powder')");
  auto matches = search_->Search("matcha latte", 5);
  bool found = false;
  for (const auto& m : matches) {
    if (m.kind == SemanticMatch::Kind::kValue &&
        m.text.find("matcha") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace agentfirst
