#include "sql/parser.h"

#include "gtest/gtest.h"

namespace agentfirst {
namespace {

std::unique_ptr<SelectStmt> MustParseSelect(const std::string& sql) {
  auto r = ParseSelect(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(*r) : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = MustParseSelect("SELECT 1");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->kind, ExprKind::kLiteral);
  EXPECT_EQ(stmt->from, nullptr);
}

TEST(ParserTest, SelectStarFromTable) {
  auto stmt = MustParseSelect("SELECT * FROM people");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->kind, ExprKind::kStar);
  ASSERT_NE(stmt->from, nullptr);
  EXPECT_EQ(stmt->from->kind, TableRefAst::Kind::kBase);
  EXPECT_EQ(stmt->from->table_name, "people");
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto stmt = MustParseSelect("SELECT a AS x, b y FROM t AS t1");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].alias, "x");
  EXPECT_EQ(stmt->items[1].alias, "y");
  EXPECT_EQ(stmt->from->alias, "t1");
}

TEST(ParserTest, WhereWithPrecedence) {
  auto stmt = MustParseSelect("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_NE(stmt, nullptr);
  // OR is the root: AND binds tighter.
  ASSERT_EQ(stmt->where->kind, ExprKind::kBinary);
  EXPECT_EQ(stmt->where->bin_op, BinaryOp::kOr);
  EXPECT_EQ(stmt->where->children[1]->bin_op, BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto expr = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->bin_op, BinaryOp::kAdd);
  EXPECT_EQ((*expr)->children[1]->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto expr = ParseExpression("(1 + 2) * 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  auto expr = ParseExpression("-5");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kLiteral);
  EXPECT_EQ((*expr)->literal.int_value(), -5);
}

TEST(ParserTest, NotLikeInBetween) {
  auto stmt = MustParseSelect(
      "SELECT a FROM t WHERE a NOT LIKE 'x%' AND b NOT IN (1,2) AND "
      "c NOT BETWEEN 1 AND 10 AND d IS NOT NULL");
  ASSERT_NE(stmt, nullptr);
  std::string s = stmt->where->ToString();
  EXPECT_NE(s.find("NOT LIKE"), std::string::npos);
  EXPECT_NE(s.find("NOT IN"), std::string::npos);
  EXPECT_NE(s.find("NOT BETWEEN"), std::string::npos);
  EXPECT_NE(s.find("IS NOT NULL"), std::string::npos);
}

TEST(ParserTest, BetweenAndBindsToBetween) {
  auto stmt = MustParseSelect("SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b = 2");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->where->bin_op, BinaryOp::kAnd);
  EXPECT_EQ(stmt->where->children[0]->kind, ExprKind::kBetween);
}

TEST(ParserTest, JoinVariants) {
  auto stmt = MustParseSelect(
      "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->from->kind, TableRefAst::Kind::kJoin);
  EXPECT_EQ(stmt->from->join_type, JoinType::kLeft);
  EXPECT_EQ(stmt->from->left->kind, TableRefAst::Kind::kJoin);
  EXPECT_EQ(stmt->from->left->join_type, JoinType::kInner);
}

TEST(ParserTest, CrossJoinAndCommaJoin) {
  auto stmt1 = MustParseSelect("SELECT * FROM a CROSS JOIN b");
  ASSERT_NE(stmt1, nullptr);
  EXPECT_EQ(stmt1->from->join_type, JoinType::kCross);
  auto stmt2 = MustParseSelect("SELECT * FROM a, b");
  ASSERT_NE(stmt2, nullptr);
  EXPECT_EQ(stmt2->from->join_type, JoinType::kCross);
}

TEST(ParserTest, DerivedTable) {
  auto stmt = MustParseSelect(
      "SELECT x FROM (SELECT a AS x FROM t WHERE a > 1) AS sub");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->from->kind, TableRefAst::Kind::kSubquery);
  EXPECT_EQ(stmt->from->alias, "sub");
  EXPECT_NE(stmt->from->subquery, nullptr);
}

TEST(ParserTest, GroupByHavingOrderByLimitOffset) {
  auto stmt = MustParseSelect(
      "SELECT city, count(*) AS n FROM t GROUP BY city HAVING count(*) > 2 "
      "ORDER BY n DESC, city ASC LIMIT 5 OFFSET 2");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->group_by.size(), 1u);
  EXPECT_NE(stmt->having, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_EQ(stmt->limit.value(), 5);
  EXPECT_EQ(stmt->offset.value(), 2);
}

TEST(ParserTest, DistinctAndCountDistinct) {
  auto stmt = MustParseSelect("SELECT DISTINCT city FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->distinct);
  auto stmt2 = MustParseSelect("SELECT count(DISTINCT city) FROM t");
  ASSERT_NE(stmt2, nullptr);
  EXPECT_TRUE(stmt2->items[0].expr->distinct);
}

TEST(ParserTest, QualifiedColumnsAndStar) {
  auto stmt = MustParseSelect("SELECT t.a, t.* FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->table, "t");
  EXPECT_EQ(stmt->items[0].expr->name, "a");
  EXPECT_EQ(stmt->items[1].expr->kind, ExprKind::kStar);
  EXPECT_EQ(stmt->items[1].expr->table, "t");
}

TEST(ParserTest, InformationSchemaDottedName) {
  auto stmt = MustParseSelect("SELECT * FROM information_schema.tables");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->from->table_name, "information_schema.tables");
}

TEST(ParserTest, CaseExpression) {
  auto expr = ParseExpression(
      "CASE WHEN a > 1 THEN 'big' WHEN a > 0 THEN 'small' ELSE 'neg' END");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kCase);
  EXPECT_FALSE((*expr)->has_case_operand);
  EXPECT_TRUE((*expr)->has_case_else);
  EXPECT_EQ((*expr)->children.size(), 5u);
}

TEST(ParserTest, CaseWithOperand) {
  auto expr = ParseExpression("CASE x WHEN 1 THEN 'one' END");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE((*expr)->has_case_operand);
  EXPECT_FALSE((*expr)->has_case_else);
  EXPECT_EQ((*expr)->children.size(), 3u);
}

TEST(ParserTest, CreateTable) {
  auto r = ParseStatement(
      "CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR(64), price DOUBLE, "
      "ok BOOLEAN)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->kind, Statement::Kind::kCreateTable);
  const auto& ct = *r->create_table;
  EXPECT_EQ(ct.table_name, "t");
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_EQ(ct.columns[0].type, DataType::kInt64);
  EXPECT_FALSE(ct.columns[0].nullable);
  EXPECT_EQ(ct.columns[1].type, DataType::kString);
  EXPECT_EQ(ct.columns[2].type, DataType::kFloat64);
  EXPECT_EQ(ct.columns[3].type, DataType::kBool);
}

TEST(ParserTest, InsertMultipleRows) {
  auto r = ParseStatement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->kind, Statement::Kind::kInsert);
  EXPECT_EQ(r->insert->columns.size(), 2u);
  EXPECT_EQ(r->insert->rows.size(), 2u);
}

TEST(ParserTest, UpdateAndDelete) {
  auto u = ParseStatement("UPDATE t SET a = 1, b = 'x' WHERE id = 3");
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->kind, Statement::Kind::kUpdate);
  EXPECT_EQ(u->update->assignments.size(), 2u);
  EXPECT_NE(u->update->where, nullptr);

  auto d = ParseStatement("DELETE FROM t WHERE id = 3");
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->kind, Statement::Kind::kDelete);
  EXPECT_NE(d->del->where, nullptr);
}

TEST(ParserTest, DropTable) {
  auto r = ParseStatement("DROP TABLE t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, Statement::Kind::kDropTable);
  EXPECT_EQ(r->drop_table->table_name, "t");
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseStatement("SELECT 1;").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("SELECT 1 1").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1; SELECT 2").ok());
}

struct BadSql {
  const char* sql;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSql> {};

TEST_P(ParserErrorTest, Rejected) {
  auto r = ParseStatement(GetParam().sql);
  EXPECT_FALSE(r.ok()) << GetParam().sql;
}

INSTANTIATE_TEST_SUITE_P(
    BadStatements, ParserErrorTest,
    ::testing::Values(BadSql{"SELECT"}, BadSql{"SELECT FROM t"},
                      BadSql{"SELECT * FROM"}, BadSql{"SELECT * FROM t WHERE"},
                      BadSql{"SELECT * FROM t GROUP"},
                      BadSql{"SELECT * FROM t ORDER BY"},
                      BadSql{"SELECT * FROM t LIMIT x"},
                      BadSql{"CREATE TABLE"},
                      BadSql{"CREATE TABLE t (a UNKNOWNTYPE)"},
                      BadSql{"INSERT INTO t VALUES"},
                      BadSql{"INSERT INTO t VALUES (1"},
                      BadSql{"UPDATE t"}, BadSql{"DELETE t"},
                      BadSql{"CASE WHEN 1 THEN 2"},
                      BadSql{"SELECT CASE END FROM t"},
                      BadSql{"SELECT a FROM t JOIN b"},
                      BadSql{"FROB the database"}));

// Round trip: parse(stmt.ToString()) must parse and render identically.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParseRenderParse) {
  auto first = ParseSelect(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam();
  std::string rendered = (*first)->ToString();
  auto second = ParseSelect(rendered);
  ASSERT_TRUE(second.ok()) << rendered;
  EXPECT_EQ(rendered, (*second)->ToString());
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "SELECT 1",
        "SELECT a, b FROM t WHERE a > 1 AND b < 2",
        "SELECT count(*) FROM t",
        "SELECT city, sum(x) AS total FROM t GROUP BY city HAVING sum(x) > 10 "
        "ORDER BY total DESC LIMIT 3",
        "SELECT * FROM a JOIN b ON a.id = b.id WHERE a.x IN (1, 2, 3)",
        "SELECT a FROM t WHERE name LIKE '%foo%'",
        "SELECT DISTINCT a FROM t",
        "SELECT a FROM (SELECT a FROM t) AS s",
        "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t"));

}  // namespace
}  // namespace agentfirst
