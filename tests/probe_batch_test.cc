// Tests for the probe batch API (admission control by priority/phase) and
// the materialization advisor.

#include "core/system.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace agentfirst {
namespace {

class ProbeBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<AgentFirstSystem>();
    testing_util::BuildPeopleDb(system_->engine());
  }
  std::unique_ptr<AgentFirstSystem> system_;
};

TEST_F(ProbeBatchTest, ResponsesReturnInSubmissionOrder) {
  std::vector<Probe> probes;
  for (int i = 0; i < 3; ++i) {
    Probe p;
    p.queries = {"SELECT count(*) FROM people WHERE id > " + std::to_string(i)};
    probes.push_back(p);
  }
  auto responses = system_->HandleProbeBatch(probes);
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE((*responses)[i].answers[0].status.ok());
    EXPECT_EQ((*responses)[i].answers[0].result->rows[0][0].int_value(),
              static_cast<int64_t>(5 - i));
  }
}

TEST_F(ProbeBatchTest, PriorityOrderDrivesExecution) {
  // The low-priority probe and high-priority probe issue the same query;
  // whichever runs first pays the execution, the second hits memory. With
  // correct admission control the high-priority (urgent) one executes.
  Probe low;
  low.agent_id = "low";
  low.queries = {"SELECT count(*) FROM people"};
  low.brief.text = "low priority, whenever";
  Probe high;
  high.agent_id = "high";
  high.queries = {"SELECT count(*) FROM people"};
  high.brief.text = "urgent: blocking";
  auto responses = system_->HandleProbeBatch({low, high});
  ASSERT_TRUE(responses.ok());
  // Submission order preserved in the output...
  EXPECT_TRUE((*responses)[0].answers[0].from_memory);   // low ran second
  EXPECT_FALSE((*responses)[1].answers[0].from_memory);  // high ran first
}

TEST_F(ProbeBatchTest, PhaseRankBreaksTies) {
  Probe explore;
  explore.agent_id = "e";
  explore.queries = {"SELECT count(*) FROM orders"};
  explore.brief.text = "exploring the schema";
  Probe validate;
  validate.agent_id = "v";
  validate.queries = {"SELECT count(*) FROM orders"};
  validate.brief.text = "verify the final answer exactly";
  auto responses = system_->HandleProbeBatch({explore, validate});
  ASSERT_TRUE(responses.ok());
  // Validation outranks exploration, so the explorer sees a memory hit.
  EXPECT_TRUE((*responses)[0].answers[0].from_memory);
  EXPECT_FALSE((*responses)[1].answers[0].from_memory);
}

TEST_F(ProbeBatchTest, CrossProbeSharingViaMemory) {
  std::vector<Probe> probes;
  for (int i = 0; i < 8; ++i) {
    Probe p;
    p.agent_id = "agent" + std::to_string(i);
    p.queries = {"SELECT city, count(*) FROM people GROUP BY city"};
    p.brief.text = "verify exactly";
    probes.push_back(p);
  }
  auto responses = system_->HandleProbeBatch(probes);
  ASSERT_TRUE(responses.ok());
  size_t from_memory = 0;
  for (const auto& r : *responses) {
    if (r.answers[0].from_memory) ++from_memory;
  }
  EXPECT_EQ(from_memory, 7u);  // only the first executes
}

TEST_F(ProbeBatchTest, MaterializationAdvisorFiresOnRecurrence) {
  // The same join recurs across probes with *different* tops, so the memory
  // store cannot short-circuit the whole query; the advisor must notice the
  // shared join sub-plan.
  const char* variants[] = {
      "SELECT count(*) FROM people JOIN orders ON people.id = orders.person_id",
      "SELECT max(amount) FROM people JOIN orders ON people.id = orders.person_id",
      "SELECT min(amount) FROM people JOIN orders ON people.id = orders.person_id",
      "SELECT sum(amount) FROM people JOIN orders ON people.id = orders.person_id",
  };
  bool saw_materialization_hint = false;
  for (const char* sql : variants) {
    Probe p;
    p.queries = {sql};
    auto r = system_->HandleProbe(p);
    ASSERT_TRUE(r.ok());
    for (const Hint& h : r->hints) {
      if (h.kind == HintKind::kSchemaGuidance &&
          h.text.find("materialized") != std::string::npos) {
        saw_materialization_hint = true;
      }
    }
  }
  EXPECT_TRUE(saw_materialization_hint);
  EXPECT_GE(system_->optimizer()->metrics().materialization_suggestions, 1u);
}

TEST_F(ProbeBatchTest, SubsumptionPrunesCoveredQueries) {
  // During exploration, a query that appears as a sub-plan of another query
  // in the same probe is skipped, and the skip reason points at the cover.
  Probe probe;
  probe.brief.text = "exploring the people data";
  probe.queries = {
      "SELECT * FROM people",                       // covered by the join below
      "SELECT * FROM people JOIN orders ON people.id = orders.person_id",
  };
  auto r = system_->HandleProbe(probe);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers[0].skipped);
  EXPECT_NE(r->answers[0].skip_reason.find("subsumed"), std::string::npos)
      << r->answers[0].skip_reason;
  EXPECT_FALSE(r->answers[1].skipped);
}

TEST_F(ProbeBatchTest, IdenticalQueriesInProbeRunOnce) {
  Probe probe;
  probe.brief.text = "exploring";
  probe.queries = {"SELECT count(*) FROM people", "SELECT count(*) FROM people"};
  auto r = system_->HandleProbe(probe);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->answers[0].skipped);
  EXPECT_TRUE(r->answers[1].skipped);
}

TEST_F(ProbeBatchTest, SubsumptionDisabledOutsideExploration) {
  Probe probe;
  probe.brief.text = "verify the final answers exactly";
  probe.queries = {
      "SELECT * FROM people",
      "SELECT * FROM people JOIN orders ON people.id = orders.person_id",
  };
  auto r = system_->HandleProbe(probe);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->answers[0].skipped);
  EXPECT_FALSE(r->answers[1].skipped);
}

TEST_F(ProbeBatchTest, QueryBranchSeesHypotheticalWorld) {
  ASSERT_TRUE(system_->EnableBranching("people").ok());
  auto b = *system_->branches()->Fork(BranchManager::kMainBranch);
  ASSERT_TRUE(system_->branches()
                  ->Write(b, "people", 0, 2, Value::Int(100))
                  .ok());  // alice's age
  auto in_branch = system_->QueryBranch(b, "SELECT max(age) FROM people");
  ASSERT_TRUE(in_branch.ok()) << in_branch.status().ToString();
  EXPECT_EQ((*in_branch)->rows[0][0].int_value(), 100);
  // The main catalog is unaffected.
  auto main_view = system_->ExecuteSql("SELECT max(age) FROM people");
  ASSERT_TRUE(main_view.ok());
  EXPECT_EQ((*main_view)->rows[0][0].int_value(), 41);
  // Unknown branch errors.
  EXPECT_FALSE(system_->QueryBranch(999, "SELECT 1").ok());
}

TEST_F(ProbeBatchTest, QueryBranchSupportsJoinsOverBranchTables) {
  ASSERT_TRUE(system_->EnableBranching("people").ok());
  ASSERT_TRUE(system_->EnableBranching("orders").ok());
  auto b = *system_->branches()->Fork(BranchManager::kMainBranch);
  // Repoint the dangling order (person_id 9) at dan (id 4).
  ASSERT_TRUE(system_->branches()->Write(b, "orders", 4, 1, Value::Int(4)).ok());
  auto r = system_->QueryBranch(
      b, "SELECT count(*) FROM people JOIN orders ON people.id = orders.person_id");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->rows[0][0].int_value(), 5);  // was 4 on main
}

TEST_F(ProbeBatchTest, StopWhenTerminationFunction) {
  Probe probe;
  probe.queries = {"SELECT name FROM people WHERE city = 'berkeley'",
                   "SELECT name FROM people WHERE city = 'oakland'",
                   "SELECT name FROM people WHERE city = 'seattle'"};
  // Agent-defined criterion: stop once any answer has >= 2 rows.
  probe.brief.stop_when = [](const ResultSet& rs) { return rs.rows.size() >= 2; };
  auto r = system_->HandleProbe(probe);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->answers[0].skipped);  // berkeley: 3 rows -> fires
  EXPECT_TRUE(r->answers[1].skipped);
  EXPECT_TRUE(r->answers[2].skipped);
  EXPECT_NE(r->answers[1].skip_reason.find("stop_when"), std::string::npos);
}

TEST_F(ProbeBatchTest, StopWhenNotFiringRunsEverything) {
  Probe probe;
  probe.queries = {"SELECT name FROM people WHERE city = 'oakland'",
                   "SELECT name FROM people WHERE city = 'seattle'"};
  probe.brief.stop_when = [](const ResultSet& rs) { return rs.rows.size() >= 99; };
  auto r = system_->HandleProbe(probe);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->answers[0].skipped);
  EXPECT_FALSE(r->answers[1].skipped);
}

TEST_F(ProbeBatchTest, CostBudgetShedsExpensiveQueries) {
  // Bulk up orders so the cross join dwarfs the cheap count.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(system_->ExecuteSql("INSERT INTO orders VALUES (" +
                                    std::to_string(1000 + i) +
                                    ", 1, 1.0, 'bulk')").ok());
  }
  Probe probe;
  probe.brief.text = "exploring order volume";
  probe.brief.limits.CostBudget(2000.0);  // rows-touched budget
  probe.queries = {
      "SELECT count(*) FROM orders",
      "SELECT count(*) FROM orders o1 CROSS JOIN orders o2",  // way over budget
  };
  auto r = system_->HandleProbe(probe);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->answers[0].skipped);
  EXPECT_TRUE(r->answers[1].skipped);
  EXPECT_NE(r->answers[1].skip_reason.find("budget"), std::string::npos)
      << r->answers[1].skip_reason;
}

TEST_F(ProbeBatchTest, InvestHeuristicTurnsRecurringWorkExact) {
  // Grow the table so exploratory probes sample.
  std::string insert = "INSERT INTO people VALUES ";
  for (int i = 0; i < 30000; ++i) {
    if (i > 0) insert += ",";
    insert += "(" + std::to_string(100 + i) + ",'p',30,'austin')";
  }
  ASSERT_TRUE(system_->ExecuteSql(insert).ok());

  Probe probe;
  probe.brief.text = "exploring: just getting a sense of the data size";
  probe.queries = {"SELECT count(*) FROM people"};
  // First two asks are approximate; by the third (invest threshold), the
  // system answers exactly so the memory store holds a reusable answer.
  auto r1 = system_->HandleProbe(probe);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->answers[0].approximate);
  auto r2 = system_->HandleProbe(probe);
  ASSERT_TRUE(r2.ok());  // served from memory (approximate artifact)
  auto r3 = system_->HandleProbe(probe);
  ASSERT_TRUE(r3.ok());
  // Issue with a *different projection* so memory misses but the core
  // relation has recurred enough to invest.
  Probe variant;
  variant.brief.text = "exploring: just getting a sense of the data size";
  variant.queries = {"SELECT count(*), max(age) FROM people"};
  auto r4 = system_->HandleProbe(variant);
  ASSERT_TRUE(r4.ok());
  ASSERT_TRUE(r4->answers[0].status.ok());
  EXPECT_FALSE(r4->answers[0].approximate)
      << "recurring relation should be answered exactly (invest heuristic)";
  EXPECT_EQ(r4->answers[0].result->rows[0][0].int_value(), 30005);
}

TEST_F(ProbeBatchTest, CrossTurnVariantDropped) {
  // Turn 1: an agent explores a relation. Turn 2: the same agent asks a
  // projection variant over the same relation -- no new information, so the
  // system drops it and names the covering query.
  Probe first;
  first.agent_id = "repeat-agent";
  first.brief.text = "exploring the people data";
  first.queries = {"SELECT name, age FROM people"};
  ASSERT_TRUE(system_->HandleProbe(first).ok());

  Probe variant;
  variant.agent_id = "repeat-agent";
  variant.brief.text = "exploring the people data";
  variant.queries = {"SELECT city FROM people"};
  auto r = system_->HandleProbe(variant);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers[0].skipped);
  EXPECT_NE(r->answers[0].skip_reason.find("earlier probe"), std::string::npos)
      << r->answers[0].skip_reason;

  // A different agent asking the same variant gets a real answer.
  Probe other;
  other.agent_id = "someone-else";
  other.brief.text = "exploring the people data";
  other.queries = {"SELECT city FROM people"};
  auto r2 = system_->HandleProbe(other);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->answers[0].skipped);

  // Validation-phase re-asks are never dropped.
  Probe validate;
  validate.agent_id = "repeat-agent";
  validate.brief.text = "verify exactly";
  validate.queries = {"SELECT city FROM people"};
  auto r3 = system_->HandleProbe(validate);
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3->answers[0].skipped);
}

TEST_F(ProbeBatchTest, EmptyBatchIsFine) {
  auto responses = system_->HandleProbeBatch({});
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
}

}  // namespace
}  // namespace agentfirst
