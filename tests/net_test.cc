// End-to-end tests for src/net/: wire serde round-trips, server lifecycle,
// SQL and probes over loopback, byte-for-byte parity between in-process and
// networked probe handling at 1/2/4/8 concurrent sessions, the sim-agent
// fleet running unchanged through RemoteAgent, disconnect-as-cancellation,
// and both backpressure paths (inflight cap, outbox byte cap).
//
// Parity methodology: two AgentFirstSystem instances built identically are
// bitwise-equivalent state machines. The reference runs each session's
// probe script in-process; the subject serves an identical system over TCP
// and runs the same scripts concurrently from N clients. With the
// cross-probe couplings disabled (memory, MQO, steering, advisors) each
// probe's response depends only on its own content, so the canonical
// rendering — every answer field, every row, and the Render(false) trace —
// must match byte-for-byte no matter how sessions interleave.

#include "net/wire.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <memory>
#include <string>
#include <vector>

#include "net/remote_agent.h"
#include "agents/sim_agent.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "core/system.h"
#include "gtest/gtest.h"
#include "io/file_util.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "workload/minibird.h"

namespace agentfirst {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// Wire serde
// ---------------------------------------------------------------------------

Probe MakeRichProbe() {
  Probe probe;
  probe.id = 42;
  probe.agent_id = "agent-7";
  probe.queries = {"SELECT city FROM stores", "SELECT 1"};
  probe.brief.text = "exploring which table holds coffee sales";
  probe.brief.phase = ProbePhase::kSolutionFormulation;
  probe.brief.max_relative_error = 0.05;
  probe.brief.priority = 3;
  probe.brief.k_of_n = 1;
  probe.brief.enough_rows_total = 100;
  probe.brief.limits.DeadlineMillis(250.0);
  probe.brief.limits.MaxRows(1000);
  probe.semantic_search_phrase = "coffee";
  probe.semantic_top_k = 5;
  probe.dry_run = true;
  return probe;
}

TEST(WireTest, ProbeRequestRoundTripIsByteIdentical) {
  Probe probe = MakeRichProbe();
  auto frame = EncodeProbeRequestFrame(9, probe);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto header = ParseFrameHeader(
      reinterpret_cast<const uint8_t*>(frame->data()), kMaxFramePayloadBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, FrameType::kProbeRequest);
  std::string_view payload(frame->data() + kFrameHeaderBytes,
                           frame->size() - kFrameHeaderBytes);
  ASSERT_EQ(payload.size(), header->payload_bytes);

  auto decoded = DecodeProbeRequestPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->corr, 9u);
  EXPECT_EQ(decoded->probe.id, 42u);
  EXPECT_EQ(decoded->probe.agent_id, "agent-7");
  EXPECT_EQ(decoded->probe.queries, probe.queries);
  EXPECT_EQ(decoded->probe.brief.phase, ProbePhase::kSolutionFormulation);
  EXPECT_EQ(decoded->probe.semantic_top_k, probe.semantic_top_k);
  EXPECT_TRUE(decoded->probe.dry_run);

  auto reencoded = EncodeProbeRequestFrame(9, decoded->probe);
  ASSERT_TRUE(reencoded.ok());
  EXPECT_EQ(*frame, *reencoded);
}

TEST(WireTest, BriefLimitsRoundTripOnTheWire) {
  Probe probe;
  probe.agent_id = "a";
  probe.queries = {"SELECT 1"};
  probe.brief.limits.DeadlineMillis(75.0).MaxRows(42);

  auto frame = EncodeProbeRequestFrame(1, probe);
  ASSERT_TRUE(frame.ok());
  std::string_view payload(frame->data() + kFrameHeaderBytes,
                           frame->size() - kFrameHeaderBytes);
  auto decoded = DecodeProbeRequestPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded->probe.brief.limits.deadline->count(), 75.0);
  EXPECT_EQ(*decoded->probe.brief.limits.max_rows, 42u);
}

TEST(WireTest, StopWhenIsRejectedAtEncode) {
  Probe probe;
  probe.agent_id = "a";
  probe.queries = {"SELECT 1"};
  probe.brief.stop_when = [](const ResultSet&) { return true; };
  auto frame = EncodeProbeRequestFrame(1, probe);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

ProbeResponse MakeRichResponse() {
  ProbeResponse response;
  response.probe_id = 42;
  response.interpreted_phase = ProbePhase::kSolutionFormulation;
  response.total_estimated_cost = 13.5;
  response.total_executed_cost = 11.25;
  response.total_retries = 2;

  QueryAnswer answer;
  answer.sql = "SELECT city FROM stores";
  answer.status = Status::OK();
  ResultSet rs;
  rs.schema.AddColumn(ColumnDef("city", DataType::kString, true, "stores"));
  rs.rows = {{Value::String("Berkeley")}, {Value::String("Oakland")}};
  rs.approximate = true;
  rs.sample_rate = 0.25;
  answer.result = std::make_shared<const ResultSet>(std::move(rs));
  answer.approximate = true;
  answer.sample_rate = 0.25;
  answer.relative_ci95 = {std::optional<double>(0.1), std::nullopt};
  answer.estimated_cost = 13.0;
  answer.estimated_rows = 2.0;
  answer.retries = 2;
  response.answers.push_back(std::move(answer));

  QueryAnswer failed;
  failed.sql = "SELECT * FROM nope";
  failed.status = Status::NotFound("table nope");
  failed.truncated = true;
  response.answers.push_back(std::move(failed));

  response.hints.push_back(
      Hint{HintKind::kJoinSuggestion, "stores joins sales", 0.9});
  response.discoveries.push_back(SemanticMatch{
      SemanticMatch::Kind::kValue, "stores", "city", "Berkeley", 0.8});

  response.trace.id = 7;
  response.trace.name = "probe";
  response.trace.duration_ms = 1.5;
  response.trace.notes = {{"agent", "agent-7"}};
  obs::TraceSpan child;
  child.id = 8;
  child.name = "exec";
  response.trace.children.push_back(
      std::make_shared<obs::TraceSpan>(std::move(child)));
  return response;
}

TEST(WireTest, ProbeResponseRoundTripIsByteIdentical) {
  ProbeResponse response = MakeRichResponse();
  std::string frame = EncodeProbeResponseFrame(3, Status::OK(), &response);
  std::string_view payload(frame.data() + kFrameHeaderBytes,
                           frame.size() - kFrameHeaderBytes);
  auto decoded = DecodeProbeResponsePayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded->response.has_value());
  EXPECT_EQ(decoded->response->probe_id, 42u);
  ASSERT_EQ(decoded->response->answers.size(), 2u);
  EXPECT_EQ(decoded->response->answers[0].result->NumRows(), 2u);
  EXPECT_EQ(decoded->response->answers[1].status.code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(decoded->response->answers[1].truncated);
  ASSERT_EQ(decoded->response->hints.size(), 1u);
  EXPECT_EQ(decoded->response->hints[0].kind, HintKind::kJoinSuggestion);
  EXPECT_EQ(decoded->response->trace.Render(false),
            response.trace.Render(false));

  std::string reencoded =
      EncodeProbeResponseFrame(3, Status::OK(), &*decoded->response);
  EXPECT_EQ(frame, reencoded);
}

TEST(WireTest, ErrorStatusTravelsWithoutABody) {
  std::string frame = EncodeProbeResponseFrame(
      5, Status::ResourceExhausted("session over budget"), nullptr);
  std::string_view payload(frame.data() + kFrameHeaderBytes,
                           frame.size() - kFrameHeaderBytes);
  auto decoded = DecodeProbeResponsePayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->corr, 5u);
  EXPECT_EQ(decoded->status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(decoded->response.has_value());
}

TEST(WireTest, HelloTokenRoundTripsAndStaysOptional) {
  // HELLO with a token (client → server).
  std::string with = EncodeHelloFrame("agent-9", "s3cret");
  auto decoded = DecodeHelloPayload(
      std::string_view(with).substr(kFrameHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->name, "agent-9");
  EXPECT_EQ(decoded->token, "s3cret");

  // HELLO_ACK shape: no token field at all (the server's reply reuses the
  // payload layout, and older peers never sent one).
  std::string without = EncodeHelloFrame("afserved", "");
  auto ack = DecodeHelloPayload(
      std::string_view(without).substr(kFrameHeaderBytes));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->name, "afserved");
  EXPECT_TRUE(ack->token.empty());
}

TEST(WireTest, ServerInfoRoundTripsOnTheWire) {
  ServiceInfo info;
  info.name = "afserved";
  info.protocol_version = kProtocolVersion;
  info.num_loops = 4;
  info.tenant = "tenant-a";
  std::string frame = EncodeServerInfoResponseFrame(11, Status::OK(), &info);
  auto decoded = DecodeServerInfoResponsePayload(
      std::string_view(frame).substr(kFrameHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->corr, 11u);
  ASSERT_TRUE(decoded->info.has_value());
  EXPECT_EQ(decoded->info->name, "afserved");
  EXPECT_EQ(decoded->info->num_loops, 4u);
  EXPECT_EQ(decoded->info->tenant, "tenant-a");

  // A refusal travels as a status with no body, like every other response.
  std::string refused = EncodeServerInfoResponseFrame(
      12, Status::Unauthenticated("bad token"), nullptr);
  auto rdecoded = DecodeServerInfoResponsePayload(
      std::string_view(refused).substr(kFrameHeaderBytes));
  ASSERT_TRUE(rdecoded.ok());
  EXPECT_EQ(rdecoded->status.code(), StatusCode::kUnauthenticated);
  EXPECT_FALSE(rdecoded->info.has_value());
}

TEST(WireTest, TrailingGarbageIsRejected) {
  std::string frame = EncodeSqlRequestFrame(1, "SELECT 1");
  std::string payload(frame.substr(kFrameHeaderBytes));
  payload.push_back('\0');
  auto decoded = DecodeSqlRequestPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Server lifecycle + SQL over loopback
// ---------------------------------------------------------------------------

struct ServerFixture {
  explicit ServerFixture(ProbeServer::Options options = {}) {
    options.metrics = &metrics;
    server = std::make_unique<ProbeServer>(&db, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~ServerFixture() { server->Stop(); }

  uint64_t Counter(const std::string& name) {
    obs::Counter* c = metrics.GetCounter(name);
    return c == nullptr ? 0 : c->value();
  }

  AgentFirstSystem db;
  obs::MetricsRegistry metrics;
  std::unique_ptr<ProbeServer> server;
};

/// Client options for protocol-abuse tests: no reader thread, so
/// SendRawForTest / ReadFrameForTest own the socket.
Client::Options ManualClient() {
  Client::Options options;
  options.manual_frames_for_test = true;
  return options;
}

TEST(NetServerTest, StartBindsEphemeralPortAndStopIsIdempotent) {
  ServerFixture fx;
  EXPECT_TRUE(fx.server->running());
  EXPECT_NE(fx.server->port(), 0);
  EXPECT_EQ(fx.server->NumSessions(), 0u);
  fx.server->Stop();
  EXPECT_FALSE(fx.server->running());
  fx.server->Stop();  // idempotent
}

TEST(NetServerTest, SqlOverLoopback) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->server_name(), "afserved");
  EXPECT_EQ(fx.server->NumSessions(), 1u);

  ASSERT_TRUE(
      (*client)->ExecuteSql("CREATE TABLE t (id BIGINT, name VARCHAR)").ok());
  ASSERT_TRUE(
      (*client)->ExecuteSql("INSERT INTO t VALUES (1,'a'),(2,'b')").ok());
  auto rows = (*client)->ExecuteSql("SELECT name FROM t ORDER BY id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ((*rows)->NumRows(), 2u);
  EXPECT_EQ((*rows)->rows[0][0].string_value(), "a");

  // Errors come back as Status and leave the session healthy.
  auto bad = (*client)->ExecuteSql("SELECT * FROM missing");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE((*client)->ExecuteSql("SELECT 1").ok());

  auto echoed = (*client)->Ping("rtt");
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, "rtt");
}

TEST(NetServerTest, RebootOnSameDataDirRecoversServedState) {
  // A served, durable database: everything acknowledged over the wire
  // before shutdown must be there after a restart on the same --data-dir.
  std::string data_dir = ::testing::TempDir() + "/net_test_reboot";
  (void)io::RemoveFile(wal::WalPath(data_dir));
  (void)io::RemoveFile(wal::CheckpointPath(data_dir));
  {
    ServerFixture fx;
    wal::DurabilityOptions durability;
    durability.data_dir = data_dir;
    ASSERT_TRUE(fx.db.EnableDurability(durability).ok());
    auto client = Client::Connect("127.0.0.1", fx.server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        (*client)->ExecuteSql("CREATE TABLE t (id BIGINT, name VARCHAR)").ok());
    ASSERT_TRUE(
        (*client)->ExecuteSql("INSERT INTO t VALUES (1,'a'),(2,'b')").ok());
    ASSERT_TRUE((*client)->ExecuteSql("DELETE FROM t WHERE id = 1").ok());
    fx.server->Stop();  // the afserve SIGTERM path: drain, then close WAL
    ASSERT_TRUE(fx.db.CloseDurability().ok());
  }
  ServerFixture fx;
  wal::DurabilityOptions durability;
  durability.data_dir = data_dir;
  Status recovered = fx.db.EnableDurability(durability);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_GT(fx.db.recovery_report().records_replayed, 0u);
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  auto rows = (*client)->ExecuteSql("SELECT name FROM t ORDER BY id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ((*rows)->NumRows(), 1u);
  EXPECT_EQ((*rows)->rows[0][0].string_value(), "b");
  // And the recovered database is writable + durable for the next cycle.
  ASSERT_TRUE((*client)->ExecuteSql("INSERT INTO t VALUES (3,'c')").ok());
}

TEST(NetServerTest, MalformedHeaderGetsErrorFrameThenClose) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port(), ManualClient());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->SendRawForTest("garbage that is no afp header").ok());
  auto frame = (*client)->ReadFrameForTest();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->first, FrameType::kError);
  Status carried;
  ASSERT_TRUE(DecodeErrorPayload(frame->second, &carried).ok());
  EXPECT_FALSE(carried.ok());
  // The server closes the abusive session afterwards.
  auto next = (*client)->ReadFrameForTest();
  EXPECT_FALSE(next.ok());
  EXPECT_GE(fx.Counter("af.net.decode_errors"), 1u);
}

TEST(NetServerTest, MalformedRequestPayloadKeepsSessionOpen) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port(), ManualClient());
  ASSERT_TRUE(client.ok());

  // Valid header, kSqlRequest type, payload = corr id + garbage (no valid
  // string). The server must answer with a typed response carrying the
  // decode Status for that corr id and keep the session alive.
  WireWriter w;
  w.U64(77);
  w.U32(0xffffffffu);  // string length prefix far beyond the payload
  std::string frame;
  AppendFrameHeader(FrameType::kSqlRequest, w.size(), &frame);
  std::string payload = w.Take();
  frame += payload;
  ASSERT_TRUE((*client)->SendRawForTest(frame).ok());

  auto reply = (*client)->ReadFrameForTest();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->first, FrameType::kSqlResponse);
  auto decoded = DecodeSqlResponsePayload(reply->second);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->corr, 77u);
  EXPECT_FALSE(decoded->status.ok());

  // The same session still serves well-formed requests afterwards.
  ASSERT_TRUE(
      (*client)->SendRawForTest(EncodeSqlRequestFrame(78, "SELECT 1")).ok());
  auto healthy = (*client)->ReadFrameForTest();
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  ASSERT_EQ(healthy->first, FrameType::kSqlResponse);
  auto ok_reply = DecodeSqlResponsePayload(healthy->second);
  ASSERT_TRUE(ok_reply.ok());
  EXPECT_EQ(ok_reply->corr, 78u);
  EXPECT_TRUE(ok_reply->status.ok()) << ok_reply->status.ToString();
}

TEST(NetServerTest, DuplicateHelloIsAProtocolError) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port(), ManualClient());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      (*client)->SendRawForTest(EncodeHelloFrame("again", /*token=*/"")).ok());
  auto frame = (*client)->ReadFrameForTest();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->first, FrameType::kError);
}

TEST(NetServerTest, SessionCapRefusesExtraConnections) {
  ProbeServer::Options options;
  options.max_sessions = 2;
  ServerFixture fx(options);
  auto a = Client::Connect("127.0.0.1", fx.server->port());
  auto b = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = Client::Connect("127.0.0.1", fx.server->port());
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(fx.server->NumSessions(), 2u);
}

// ---------------------------------------------------------------------------
// Token auth + ServerInfo
// ---------------------------------------------------------------------------

TEST(NetAuthTest, TokenServerRejectsBadOrMissingCredentials) {
  ProbeServer::Options options;
  options.tokens = {{"s3cret", "tenant-a"}, {"other", "tenant-b"}};
  ServerFixture fx(options);

  // No token: refused at the handshake with the typed code.
  auto anonymous = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_FALSE(anonymous.ok());
  EXPECT_EQ(anonymous.status().code(), StatusCode::kUnauthenticated);

  // Wrong token: same refusal.
  Client::Options wrong;
  wrong.token = "guess";
  auto intruder = Client::Connect("127.0.0.1", fx.server->port(), wrong);
  ASSERT_FALSE(intruder.ok());
  EXPECT_EQ(intruder.status().code(), StatusCode::kUnauthenticated);
  EXPECT_GE(fx.Counter("af.net.auth_failures"), 2u);

  // Right token: admitted, and the session is bound to the token's tenant.
  Client::Options good;
  good.token = "s3cret";
  auto client = Client::Connect("127.0.0.1", fx.server->port(), good);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto info = (*client)->ServerInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->tenant, "tenant-a");
  EXPECT_TRUE((*client)->ExecuteSql("SELECT 1").ok());
}

TEST(NetServerTest, ServerInfoReportsIdentityAndLoops) {
  ProbeServer::Options options;
  options.num_loops = 2;
  ServerFixture fx(options);
  EXPECT_EQ(fx.server->NumLoops(), 2u);
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  auto info = (*client)->ServerInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->name, "afserved");
  EXPECT_EQ(info->protocol_version, kProtocolVersion);
  EXPECT_EQ(info->num_loops, 2u);
}

// ---------------------------------------------------------------------------
// Admission controller (transport-free unit tests)
// ---------------------------------------------------------------------------

TEST(AdmissionTest, PhasePriorityFavorsExploitOverExploration) {
  EXPECT_GT(PhaseAdmissionPriority(ProbePhase::kValidation),
            PhaseAdmissionPriority(ProbePhase::kSolutionFormulation));
  EXPECT_GT(PhaseAdmissionPriority(ProbePhase::kSolutionFormulation),
            PhaseAdmissionPriority(ProbePhase::kUnspecified));
  EXPECT_GT(PhaseAdmissionPriority(ProbePhase::kUnspecified),
            PhaseAdmissionPriority(ProbePhase::kStatExploration));
  EXPECT_GT(PhaseAdmissionPriority(ProbePhase::kStatExploration),
            PhaseAdmissionPriority(ProbePhase::kMetadataExploration));
}

AdmissionController::Work MakeWork(const std::string& tenant, int priority,
                                   size_t bytes,
                                   std::vector<std::string>* ran,
                                   std::vector<Status>* sheds,
                                   const std::string& label) {
  AdmissionController::Work work;
  work.tenant = tenant;
  work.priority = priority;
  work.bytes = bytes;
  work.run = [ran, label] { ran->push_back(label); };
  work.shed = [sheds](const Status& s) { sheds->push_back(s); };
  return work;
}

TEST(AdmissionTest, QueueDispatchesByPriorityThenFifo) {
  AdmissionController::Options options;
  options.max_concurrent = 1;
  options.max_queued = 8;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  AdmissionController admission(options);

  std::vector<std::string> ran;
  std::vector<Status> sheds;
  admission.Submit(MakeWork("a", 0, 1, &ran, &sheds, "first"));
  ASSERT_EQ(ran, std::vector<std::string>{"first"});  // slot free: inline

  // Queued while the slot is busy: exploration before validation, on
  // purpose, to prove dispatch order is priority not arrival.
  admission.Submit(MakeWork(
      "a", PhaseAdmissionPriority(ProbePhase::kMetadataExploration), 1, &ran,
      &sheds, "explore"));
  admission.Submit(MakeWork(
      "a", PhaseAdmissionPriority(ProbePhase::kValidation), 1, &ran, &sheds,
      "validate"));
  admission.Submit(MakeWork(
      "a", PhaseAdmissionPriority(ProbePhase::kValidation), 1, &ran, &sheds,
      "validate2"));
  EXPECT_EQ(admission.QueueDepth(), 3u);
  EXPECT_EQ(ran.size(), 1u);

  admission.Release("a", 1);  // dispatches highest priority first
  admission.Release("a", 1);  // FIFO within the validation priority
  admission.Release("a", 1);
  admission.Release("a", 1);
  EXPECT_TRUE(sheds.empty());
  EXPECT_EQ(ran, (std::vector<std::string>{"first", "validate", "validate2",
                                           "explore"}));
  EXPECT_EQ(admission.QueueDepth(), 0u);
  EXPECT_EQ(admission.Running(), 0u);
}

TEST(AdmissionTest, FullQueueEvictsLowestPriorityYoungest) {
  AdmissionController::Options options;
  options.max_concurrent = 1;
  options.max_queued = 1;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  AdmissionController admission(options);

  std::vector<std::string> ran;
  std::vector<Status> shed_low;
  std::vector<Status> shed_high;
  admission.Submit(MakeWork("a", 0, 1, &ran, &shed_low, "running"));

  // Low-priority occupant of the single queue slot.
  admission.Submit(MakeWork("a", 0, 1, &ran, &shed_low, "explore"));
  EXPECT_EQ(admission.QueueDepth(), 1u);

  // A validation probe outranks it: the occupant is evicted with a typed
  // kResourceExhausted and the newcomer takes the slot.
  admission.Submit(MakeWork("a", 4, 1, &ran, &shed_high, "validate"));
  ASSERT_EQ(shed_low.size(), 1u);
  EXPECT_EQ(shed_low[0].code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.QueueDepth(), 1u);

  // Another low-priority probe does not outrank the queued validation:
  // shed immediately, never queued.
  admission.Submit(MakeWork("a", 0, 1, &ran, &shed_low, "explore2"));
  ASSERT_EQ(shed_low.size(), 2u);
  EXPECT_EQ(shed_low[1].code(), StatusCode::kResourceExhausted);

  admission.Release("a", 1);
  EXPECT_EQ(ran, (std::vector<std::string>{"running", "validate"}));
  EXPECT_TRUE(shed_high.empty());
  admission.Release("a", 1);
}

TEST(AdmissionTest, TenantQuotasShedTypedAndRecoverOnRelease) {
  AdmissionController::Options options;
  options.max_inflight_per_tenant = 1;
  options.max_outstanding_bytes_per_tenant = 100;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  AdmissionController admission(options);

  std::vector<std::string> ran;
  std::vector<Status> sheds;
  admission.Submit(MakeWork("a", 0, 10, &ran, &sheds, "a1"));
  ASSERT_EQ(ran, std::vector<std::string>{"a1"});

  // Tenant a is at its concurrency quota; tenant b is unaffected.
  admission.Submit(MakeWork("a", 0, 10, &ran, &sheds, "a2"));
  ASSERT_EQ(sheds.size(), 1u);
  EXPECT_EQ(sheds[0].code(), StatusCode::kResourceExhausted);
  admission.Submit(MakeWork("b", 0, 10, &ran, &sheds, "b1"));
  EXPECT_EQ(ran, (std::vector<std::string>{"a1", "b1"}));

  // Releasing a's unit restores its quota...
  admission.Release("a", 10);
  admission.Submit(MakeWork("a", 0, 95, &ran, &sheds, "a3"));
  EXPECT_EQ(ran, (std::vector<std::string>{"a1", "b1", "a3"}));

  // ...but the byte quota still binds: 95 outstanding + 10 > 100.
  admission.Release("b", 10);
  admission.Submit(MakeWork("a", 0, 10, &ran, &sheds, "a4"));
  ASSERT_EQ(sheds.size(), 2u);
  EXPECT_EQ(sheds[1].code(), StatusCode::kResourceExhausted);
  admission.Release("a", 95);
  admission.Submit(MakeWork("a", 0, 10, &ran, &sheds, "a5"));
  EXPECT_EQ(ran.back(), "a5");
  admission.Release("a", 10);
}

// ---------------------------------------------------------------------------
// Admission + pipelining over the wire
// ---------------------------------------------------------------------------

TEST(NetAdmissionTest, QuotaShedReturnsResourceExhaustedOverWire) {
  ProbeServer::Options options;
  options.admission.max_concurrent = 1;
  options.admission.max_queued = 0;  // overload sheds immediately
  ServerFixture fx(options);
  ASSERT_TRUE(fx.db.ExecuteSql("CREATE TABLE slow (k BIGINT)").ok());
  std::string insert = "INSERT INTO slow VALUES (1)";
  for (int i = 1; i < 1200; ++i) insert += ",(1)";
  ASSERT_TRUE(fx.db.ExecuteSql(insert).ok());

  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());

  Probe slow;
  slow.id = 1;
  slow.agent_id = "greedy";
  slow.queries = {"SELECT COUNT(*) FROM slow a JOIN slow b ON a.k = b.k"};
  Probe quick;
  quick.id = 2;
  quick.agent_id = "greedy";
  quick.queries = {"SELECT 1"};

  // Both pipelined on one connection. The first occupies the single slot;
  // the second is shed with the typed code while the first is still running
  // — its (rejected) future completes out of order, before the slow one.
  auto first = (*client)->ProbeAsync(slow);
  auto second = (*client)->ProbeAsync(quick);

  auto rejected = second.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  auto served = first.get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_GE(fx.Counter("af.admit.shed_overload"), 1u);
}

TEST(NetAdmissionTest, QueuedProbesDispatchExploitBeforeExploration) {
  ProbeServer::Options options;
  options.admission.max_concurrent = 1;
  options.admission.max_queued = 4;
  ServerFixture fx(options);
  ASSERT_TRUE(fx.db.ExecuteSql("CREATE TABLE slow (k BIGINT)").ok());
  std::string insert = "INSERT INTO slow VALUES (1)";
  for (int i = 1; i < 1500; ++i) insert += ",(1)";
  ASSERT_TRUE(fx.db.ExecuteSql(insert).ok());

  auto client = Client::Connect("127.0.0.1", fx.server->port(), ManualClient());
  ASSERT_TRUE(client.ok());

  auto probe_frame = [](uint64_t corr, ProbePhase phase,
                        const std::string& sql) {
    Probe probe;
    probe.id = corr;
    probe.agent_id = "phased";
    probe.queries = {sql};
    probe.brief.phase = phase;
    auto frame = EncodeProbeRequestFrame(corr, probe);
    EXPECT_TRUE(frame.ok());
    return *frame;
  };

  // One slow probe takes the slot; then a cold exploration probe and a
  // validation probe arrive, in that order, and both queue. The validation
  // probe must dispatch (and therefore answer) first.
  std::string burst;
  burst += probe_frame(
      1, ProbePhase::kUnspecified,
      "SELECT COUNT(*) FROM slow a JOIN slow b ON a.k = b.k");
  burst += probe_frame(2, ProbePhase::kMetadataExploration, "SELECT 1");
  burst += probe_frame(3, ProbePhase::kValidation, "SELECT 2");
  ASSERT_TRUE((*client)->SendRawForTest(burst).ok());

  std::vector<uint64_t> order;
  for (int i = 0; i < 3; ++i) {
    auto frame = (*client)->ReadFrameForTest();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->first, FrameType::kProbeResponse);
    auto decoded = DecodeProbeResponsePayload(frame->second);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded->status.ok()) << decoded->status.ToString();
    order.push_back(decoded->corr);
  }
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 3, 2}));
  EXPECT_GE(fx.Counter("af.admit.queued"), 2u);
}

TEST(NetClientTest, PipelinedCallsCompleteOutOfOrder) {
  ServerFixture fx;
  ASSERT_TRUE(fx.db.ExecuteSql("CREATE TABLE slow (k BIGINT)").ok());
  std::string insert = "INSERT INTO slow VALUES (1)";
  for (int i = 1; i < 1500; ++i) insert += ",(1)";
  ASSERT_TRUE(fx.db.ExecuteSql(insert).ok());

  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());

  // The slow join goes out first; the cheap calls behind it on the same
  // connection must not wait for it (the server runs them on other pool
  // threads and the client pairs responses by correlation id).
  auto slow = (*client)->ExecuteSqlAsync(
      "SELECT COUNT(*) FROM slow a JOIN slow b ON a.k = b.k");
  auto quick = (*client)->ExecuteSqlAsync("SELECT 41 + 1");
  auto echo = (*client)->PingAsync("overtake");

  auto quick_result = quick.get();
  ASSERT_TRUE(quick_result.ok()) << quick_result.status().ToString();
  EXPECT_EQ((*quick_result)->rows[0][0].int_value(), 42);
  auto echoed = echo.get();
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, "overtake");
  // The cheap responses overtook the join: it is typically still running
  // when they resolve, and it must still complete correctly afterwards.
  auto slow_result = slow.get();
  ASSERT_TRUE(slow_result.ok()) << slow_result.status().ToString();
  EXPECT_EQ((*slow_result)->rows[0][0].int_value(), 1500ll * 1500ll);
}

// ---------------------------------------------------------------------------
// Scripted-probe byte parity, in-process vs over-the-wire, 1/2/4/8 sessions
// ---------------------------------------------------------------------------

/// Optimizer options that make probe handling a pure function of the probe:
/// cross-probe couplings off, tracing on with a fixed seed, no deadlines
/// (durations are the one wall-clock part of a response, and Render(false)
/// hides them — but a deadline could change *structure*).
AgentFirstSystem::Options PureFunctionOptions() {
  AgentFirstSystem::Options options;
  options.optimizer.enable_mqo = false;
  options.optimizer.enable_memory = false;
  options.optimizer.enable_steering = false;
  options.optimizer.materialization_threshold = 0;
  options.optimizer.invest_threshold = 0;
  options.optimizer.auto_index_threshold = 0;
  options.optimizer.enable_tracing = true;
  options.optimizer.trace_seed = 0xaf;
  return options;
}

void SeedParityTables(ProbeService* svc) {
  ASSERT_TRUE(
      svc->ExecuteSql(
             "CREATE TABLE stores (store_id BIGINT, city VARCHAR)")
          .ok());
  ASSERT_TRUE(svc->ExecuteSql(
                     "INSERT INTO stores VALUES (1,'Berkeley'),(2,'Oakland'),"
                     "(3,'Seattle'),(4,'Portland')")
                  .ok());
  ASSERT_TRUE(svc->ExecuteSql(
                     "CREATE TABLE sales (store_id BIGINT, revenue DOUBLE)")
                  .ok());
  ASSERT_TRUE(svc->ExecuteSql(
                     "INSERT INTO sales VALUES (1,10.5),(1,20.0),(2,7.25),"
                     "(3,100.0),(4,1.0),(4,2.0)")
                  .ok());
}

/// The probe script one session runs: ids are globally unique per (session,
/// step) so server-side id assignment never kicks in.
std::vector<Probe> SessionScript(size_t session) {
  std::vector<Probe> script;
  const char* queries[] = {
      "SELECT city FROM stores ORDER BY store_id",
      "SELECT SUM(revenue) FROM sales",
      "SELECT s.city, SUM(x.revenue) FROM stores s JOIN sales x "
      "ON s.store_id = x.store_id GROUP BY s.city ORDER BY s.city",
      "SELECT COUNT(*) FROM sales WHERE revenue > 5.0",
  };
  for (size_t step = 0; step < 4; ++step) {
    Probe probe;
    probe.id = 1000 * (session + 1) + step;
    probe.agent_id = "parity-" + std::to_string(session);
    probe.queries = {queries[step], queries[(step + 1) % 4]};
    probe.brief.text = "scripted parity step " + std::to_string(step);
    script.push_back(std::move(probe));
  }
  return script;
}

/// Everything an agent can observe in a response, rendered to one string:
/// every answer field, every row, and the deterministic trace rendering.
std::string Canonical(const ProbeResponse& r) {
  std::string out = "probe=" + std::to_string(r.probe_id) +
                    " phase=" + std::to_string(int(r.interpreted_phase)) +
                    " est=" + std::to_string(r.total_estimated_cost) +
                    " exec=" + std::to_string(r.total_executed_cost) +
                    " retries=" + std::to_string(r.total_retries) +
                    " shed=" + std::to_string(r.shed) + "\n";
  for (const QueryAnswer& a : r.answers) {
    out += "answer sql=" + a.sql + " status=" + a.status.ToString() +
           " skipped=" + std::to_string(a.skipped) + ":" + a.skip_reason +
           " approx=" + std::to_string(a.approximate) + "@" +
           std::to_string(a.sample_rate) +
           " mem=" + std::to_string(a.from_memory) +
           " trunc=" + std::to_string(a.truncated) +
           " retries=" + std::to_string(a.retries) + "\n";
    if (a.result != nullptr) out += a.result->ToString(1u << 20);
    out += "plan=" + a.plan_text + "\n";
  }
  for (const Hint& h : r.hints) {
    out += "hint " + std::to_string(int(h.kind)) + " " + h.text + "\n";
  }
  for (const SemanticMatch& m : r.discoveries) {
    out += "match " + std::to_string(int(m.kind)) + " " + m.table + "." +
           m.column + "=" + m.text + "\n";
  }
  out += r.trace.Render(/*include_durations=*/false);
  return out;
}

TEST(NetParityTest, ScriptedProbesMatchInProcessAtManySessionCounts) {
  for (size_t sessions : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SCOPED_TRACE("sessions=" + std::to_string(sessions));

    // Reference: identical system, scripts run in-process, sequentially.
    AgentFirstSystem reference(PureFunctionOptions());
    SeedParityTables(&reference);
    std::vector<std::vector<std::string>> want(sessions);
    for (size_t s = 0; s < sessions; ++s) {
      for (Probe& probe : SessionScript(s)) {
        auto response = reference.HandleProbe(probe);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        want[s].push_back(Canonical(*response));
      }
    }

    // Subject: identical system served over TCP, scripts run concurrently
    // from `sessions` clients on the shared pool.
    AgentFirstSystem served(PureFunctionOptions());
    SeedParityTables(&served);
    obs::MetricsRegistry metrics;
    ProbeServer::Options options;
    options.metrics = &metrics;
    ProbeServer server(&served, options);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::vector<std::string>> got(sessions);
    std::atomic<int> failures{0};
    {
      ThreadPool pool(sessions);
      pool.ParallelFor(
          0, sessions,
          [&](size_t begin, size_t end) {
            for (size_t s = begin; s < end; ++s) {
              auto client = Client::Connect("127.0.0.1", server.port());
              if (!client.ok()) {
                failures.fetch_add(1);
                continue;
              }
              for (Probe& probe : SessionScript(s)) {
                auto response = (*client)->HandleProbe(probe);
                if (!response.ok()) {
                  failures.fetch_add(1);
                  break;
                }
                got[s].push_back(Canonical(*response));
              }
            }
          },
          /*grain=*/1, sessions);
    }
    server.Stop();

    ASSERT_EQ(failures.load(), 0);
    for (size_t s = 0; s < sessions; ++s) {
      ASSERT_EQ(got[s].size(), want[s].size());
      for (size_t i = 0; i < want[s].size(); ++i) {
        EXPECT_EQ(got[s][i], want[s][i])
            << "session " << s << " step " << i;
      }
    }
  }
}

TEST(NetParityTest, MultiLoopServerPreservesByteParity) {
  // Same methodology as above, but the subject shards its sessions across
  // 1, 2, and 4 event loops: loop assignment must be invisible in every
  // response byte.
  const size_t sessions = 4;
  AgentFirstSystem reference(PureFunctionOptions());
  SeedParityTables(&reference);
  std::vector<std::vector<std::string>> want(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    for (Probe& probe : SessionScript(s)) {
      auto response = reference.HandleProbe(probe);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      want[s].push_back(Canonical(*response));
    }
  }

  for (size_t loops : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("loops=" + std::to_string(loops));
    AgentFirstSystem served(PureFunctionOptions());
    SeedParityTables(&served);
    obs::MetricsRegistry metrics;
    ProbeServer::Options options;
    options.metrics = &metrics;
    options.num_loops = loops;
    ProbeServer server(&served, options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_EQ(server.NumLoops(), loops);

    std::vector<std::vector<std::string>> got(sessions);
    std::atomic<int> failures{0};
    {
      ThreadPool pool(sessions);
      pool.ParallelFor(
          0, sessions,
          [&](size_t begin, size_t end) {
            for (size_t s = begin; s < end; ++s) {
              auto client = Client::Connect("127.0.0.1", server.port());
              if (!client.ok()) {
                failures.fetch_add(1);
                continue;
              }
              for (Probe& probe : SessionScript(s)) {
                auto response = (*client)->HandleProbe(probe);
                if (!response.ok()) {
                  failures.fetch_add(1);
                  break;
                }
                got[s].push_back(Canonical(*response));
              }
            }
          },
          /*grain=*/1, sessions);
    }
    server.Stop();

    ASSERT_EQ(failures.load(), 0);
    for (size_t s = 0; s < sessions; ++s) {
      ASSERT_EQ(got[s].size(), want[s].size());
      for (size_t i = 0; i < want[s].size(); ++i) {
        EXPECT_EQ(got[s][i], want[s][i]) << "session " << s << " step " << i;
      }
    }
  }
}

TEST(NetParityTest, BatchOverWireMatchesInProcess) {
  AgentFirstSystem reference(PureFunctionOptions());
  SeedParityTables(&reference);
  AgentFirstSystem served(PureFunctionOptions());
  SeedParityTables(&served);
  ProbeServer server(&served, {});
  ASSERT_TRUE(server.Start().ok());

  auto make_batch = [] {
    std::vector<Probe> batch;
    for (size_t s : {size_t{0}, size_t{1}}) {
      for (Probe& probe : SessionScript(s)) batch.push_back(std::move(probe));
    }
    return batch;
  };
  auto want = reference.HandleProbeBatch(make_batch());
  ASSERT_TRUE(want.ok());

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto got = (*client)->HandleProbeBatch(make_batch());
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ(Canonical((*got)[i]), Canonical((*want)[i])) << "probe " << i;
  }
  server.Stop();
}

// ---------------------------------------------------------------------------
// Sim-agent fleet over RemoteAgent
// ---------------------------------------------------------------------------

TEST(NetFleetTest, FleetEpisodesMatchInProcessAtManySessionCounts) {
  MiniBirdOptions mb;
  mb.num_databases = 1;
  mb.rows_per_fact_table = 200;
  mb.rows_per_dim_table = 16;
  mb.seed = 11;
  // Same purity requirement as the scripted parity test: concurrent
  // sessions must not couple through memory/steering/advisor state.
  mb.system_options = PureFunctionOptions();

  for (size_t sessions : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SCOPED_TRACE("sessions=" + std::to_string(sessions));

    auto ref_suite = GenerateMiniBird(mb);
    ASSERT_FALSE(ref_suite.empty());
    ASSERT_FALSE(ref_suite[0].tasks.empty());
    const size_t num_tasks = ref_suite[0].tasks.size();

    // Reference: each "session" runs one episode in-process, sequentially.
    std::vector<EpisodeResult> want;
    for (size_t s = 0; s < sessions; ++s) {
      const TaskSpec& task = ref_suite[0].tasks[s % num_tasks];
      EpisodeOptions options;
      options.seed = 100 + s;
      options.use_steering = false;  // steering is disabled in the optimizer
      want.push_back(RunEpisode(ref_suite[0].system.get(), task,
                                StrongAgentProfile(), options));
    }

    // Subject: an identical suite served over TCP; each session is its own
    // RemoteAgent connection running the same episode concurrently.
    auto net_suite = GenerateMiniBird(mb);
    ProbeServer server(net_suite[0].system.get(), {});
    ASSERT_TRUE(server.Start().ok());

    std::vector<EpisodeResult> got(sessions);
    std::atomic<int> failures{0};
    {
      ThreadPool pool(sessions);
      pool.ParallelFor(
          0, sessions,
          [&](size_t begin, size_t end) {
            for (size_t s = begin; s < end; ++s) {
              auto agent = RemoteAgent::Connect("127.0.0.1", server.port());
              if (!agent.ok()) {
                failures.fetch_add(1);
                continue;
              }
              const TaskSpec& task = net_suite[0].tasks[s % num_tasks];
              EpisodeOptions options;
              options.seed = 100 + s;
              options.use_steering = false;
              got[s] = RunEpisode(agent->get(), task, StrongAgentProfile(),
                                  options);
            }
          },
          /*grain=*/1, sessions);
    }
    server.Stop();
    ASSERT_EQ(failures.load(), 0);

    for (size_t s = 0; s < sessions; ++s) {
      SCOPED_TRACE("session " + std::to_string(s));
      EXPECT_EQ(got[s].solved, want[s].solved);
      EXPECT_EQ(got[s].committed_wrong, want[s].committed_wrong);
      EXPECT_EQ(got[s].turns_used, want[s].turns_used);
      EXPECT_EQ(got[s].solved_at_turn, want[s].solved_at_turn);
      EXPECT_EQ(got[s].probes_issued, want[s].probes_issued);
      ASSERT_EQ(got[s].trace.size(), want[s].trace.size());
      for (size_t i = 0; i < want[s].trace.size(); ++i) {
        EXPECT_EQ(got[s].trace[i].activity, want[s].trace[i].activity);
        EXPECT_EQ(got[s].trace[i].turn, want[s].trace[i].turn);
      }
      if (want[s].final_answer != nullptr) {
        ASSERT_NE(got[s].final_answer, nullptr);
        EXPECT_EQ(got[s].final_answer->ToString(1u << 20),
                  want[s].final_answer->ToString(1u << 20));
      } else {
        EXPECT_EQ(got[s].final_answer, nullptr);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Disconnect-as-cancellation and backpressure
// ---------------------------------------------------------------------------

TEST(NetServerTest, DisconnectCancelsInflightProbes) {
  ServerFixture fx;
  // A join with a hot key: 1500 x 1500 matches keeps the executor busy far
  // longer than one event-loop iteration.
  std::string insert = "INSERT INTO big VALUES (0)";
  for (int i = 1; i < 1500; ++i) insert += ",(0)";
  ASSERT_TRUE(fx.db.ExecuteSql("CREATE TABLE big (k BIGINT)").ok());
  ASSERT_TRUE(fx.db.ExecuteSql(insert).ok());

  auto client = Client::Connect("127.0.0.1", fx.server->port(), ManualClient());
  ASSERT_TRUE(client.ok());
  Probe probe;
  probe.agent_id = "quitter";
  probe.queries = {
      "SELECT COUNT(*) FROM big a JOIN big b ON a.k = b.k"};
  auto frame = EncodeProbeRequestFrame(1, probe);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE((*client)->SendRawForTest(*frame).ok());

  // Wait until the probe is actually executing, then hang up.
  for (int i = 0; i < 2000; ++i) {
    obs::Counter* probes = fx.metrics.GetCounter("af.net.probes");
    if (probes != nullptr && probes->value() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*client)->Close();

  // The abandoned probe must be counted cancelled (either it was still
  // running when the hangup landed, or its response was dropped on the
  // closed session — both count as cancelled work).
  bool cancelled = false;
  for (int i = 0; i < 5000 && !cancelled; ++i) {
    cancelled = fx.Counter("af.net.probes_cancelled") >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cancelled);

  // The server is unharmed: new sessions work.
  auto again = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)->ExecuteSql("SELECT COUNT(*) FROM big").ok());
}

TEST(NetServerTest, InflightCapBackpressuresAndPreservesOrder) {
  ProbeServer::Options options;
  options.max_inflight_per_session = 1;
  ServerFixture fx(options);
  ASSERT_TRUE(fx.db.ExecuteSql("CREATE TABLE t (id BIGINT)").ok());
  ASSERT_TRUE(fx.db.ExecuteSql("INSERT INTO t VALUES (1),(2),(3)").ok());
  // A single-key self-join gives the first request enough work (~160k row
  // pairs) that the session is still at its cap when the event loop next
  // looks, so the stall is observed deterministically instead of racing a
  // trivial query against the loop iteration.
  ASSERT_TRUE(fx.db.ExecuteSql("CREATE TABLE slow (k BIGINT)").ok());
  for (int chunk = 0; chunk < 4; ++chunk) {
    std::string insert = "INSERT INTO slow VALUES (1)";
    for (int i = 1; i < 100; ++i) insert += ",(1)";
    ASSERT_TRUE(fx.db.ExecuteSql(insert).ok());
  }

  auto client = Client::Connect("127.0.0.1", fx.server->port(), ManualClient());
  ASSERT_TRUE(client.ok());

  // Three SQL requests back-to-back without reading: past the inflight cap
  // the server stops reading this session until responses drain.
  std::string burst;
  burst += EncodeSqlRequestFrame(
      1, "SELECT COUNT(*) FROM slow a JOIN slow b ON a.k = b.k");
  burst += EncodeSqlRequestFrame(2, "SELECT MAX(id) FROM t");
  burst += EncodeSqlRequestFrame(3, "SELECT MIN(id) FROM t");
  ASSERT_TRUE((*client)->SendRawForTest(burst).ok());

  for (uint64_t corr = 1; corr <= 3; ++corr) {
    auto frame = (*client)->ReadFrameForTest();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->first, FrameType::kSqlResponse);
    auto decoded = DecodeSqlResponsePayload(frame->second);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->corr, corr) << "responses must keep request order";
    EXPECT_TRUE(decoded->status.ok()) << decoded->status.ToString();
  }
  EXPECT_GE(fx.Counter("af.net.backpressure_stalls"), 1u);
}

TEST(NetServerTest, OutboxByteCapBackpressures) {
  ProbeServer::Options options;
  options.max_outbox_bytes_per_session = 1;  // any queued response is "full"
  ServerFixture fx(options);
  auto client = Client::Connect("127.0.0.1", fx.server->port(), ManualClient());
  ASSERT_TRUE(client.ok());

  std::string big(64 * 1024, 'x');
  ASSERT_TRUE((*client)->SendRawForTest(EncodePingFrame(big)).ok());
  ASSERT_TRUE((*client)->SendRawForTest(EncodePingFrame("tail")).ok());

  auto a = (*client)->ReadFrameForTest();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->first, FrameType::kPong);
  auto b = (*client)->ReadFrameForTest();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->first, FrameType::kPong);
  WireReader r(b->second);
  std::string echoed;
  ASSERT_TRUE(r.Str(&echoed).ok());
  EXPECT_EQ(echoed, "tail");

  EXPECT_GE(fx.Counter("af.net.backpressure_stalls"), 1u);
}

TEST(NetServerTest, StopWithLiveSessionsDrainsCleanly) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->ExecuteSql("SELECT 1").ok());
  fx.server->Stop();
  EXPECT_EQ(fx.server->NumSessions(), 0u);
  // The client observes the close on its next read.
  auto after = (*client)->ExecuteSql("SELECT 1");
  EXPECT_FALSE(after.ok());
}

}  // namespace
}  // namespace net
}  // namespace agentfirst
