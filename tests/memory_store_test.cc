#include "memory/memory_store.h"

#include "gtest/gtest.h"

namespace agentfirst {
namespace {

class MemoryStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({ColumnDef("id", DataType::kInt64, false, "sales"),
                   ColumnDef("state", DataType::kString, true, "sales")});
    auto t = catalog_.CreateTable("sales", schema);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    ASSERT_TRUE(table_->AppendRow({Value::Int(1), Value::String("California")}).ok());
  }

  MemoryArtifact MakeArtifact(const std::string& key, const std::string& content,
                              std::vector<std::string> deps = {"sales"}) {
    MemoryArtifact a;
    a.kind = ArtifactKind::kGroundingNote;
    a.key = key;
    a.content = content;
    a.table_deps = std::move(deps);
    return a;
  }

  Catalog catalog_;
  TablePtr table_;
};

TEST_F(MemoryStoreTest, PutAndGetExact) {
  AgenticMemoryStore store(&catalog_, {});
  store.Put(MakeArtifact("k1", "states are spelled out"));
  auto hit = store.GetExact("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->artifact->content, "states are spelled out");
  EXPECT_FALSE(hit->stale);
  EXPECT_FALSE(store.GetExact("k2").has_value());
  EXPECT_EQ(store.stats().exact_hits, 1u);
  EXPECT_EQ(store.stats().exact_misses, 1u);
}

TEST_F(MemoryStoreTest, PutSupersedesSameKeySameOwner) {
  AgenticMemoryStore store(&catalog_, {});
  store.Put(MakeArtifact("k", "old"));
  store.Put(MakeArtifact("k", "new"));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.GetExact("k")->artifact->content, "new");
}

TEST_F(MemoryStoreTest, SemanticSearchRanksByRelevance) {
  AgenticMemoryStore store(&catalog_, {});
  store.Put(MakeArtifact("note:sales_state", "sales table state column encoding"));
  store.Put(MakeArtifact("note:crew", "flight crew roster details", {}));
  auto hits = store.Search("state encoding in sales", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].artifact->key, "note:sales_state");
}

TEST_F(MemoryStoreTest, EagerStalenessDropsOnDataChange) {
  AgenticMemoryStore::Options options;
  options.staleness = AgenticMemoryStore::StalenessPolicy::kEager;
  AgenticMemoryStore store(&catalog_, options);
  store.Put(MakeArtifact("k", "depends on sales"));
  // Mutate the table: artifact becomes stale.
  ASSERT_TRUE(table_->AppendRow({Value::Int(2), Value::String("Texas")}).ok());
  EXPECT_FALSE(store.GetExact("k").has_value());
  EXPECT_EQ(store.stats().stale_dropped, 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(MemoryStoreTest, LazyStalenessServesFlagged) {
  AgenticMemoryStore::Options options;
  options.staleness = AgenticMemoryStore::StalenessPolicy::kLazy;
  AgenticMemoryStore store(&catalog_, options);
  store.Put(MakeArtifact("k", "depends on sales"));
  ASSERT_TRUE(table_->AppendRow({Value::Int(2), Value::String("Texas")}).ok());
  auto hit = store.GetExact("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->stale);
  EXPECT_EQ(store.stats().stale_served, 1u);
}

TEST_F(MemoryStoreTest, DroppedTableMakesArtifactStale) {
  AgenticMemoryStore store(&catalog_, {});
  store.Put(MakeArtifact("k", "depends on sales"));
  ASSERT_TRUE(catalog_.DropTable("sales").ok());
  EXPECT_FALSE(store.GetExact("k").has_value());
}

TEST_F(MemoryStoreTest, SchemaNoteExpiresOnAnyDdl) {
  AgenticMemoryStore store(&catalog_, {});
  MemoryArtifact a = MakeArtifact("schema", "there are two tables", {});
  a.kind = ArtifactKind::kSchemaNote;
  store.Put(std::move(a));
  ASSERT_TRUE(catalog_.CreateTable("extra", Schema({ColumnDef("x", DataType::kInt64)})).ok());
  EXPECT_FALSE(store.GetExact("schema").has_value());
}

TEST_F(MemoryStoreTest, SweepStaleRemovesAll) {
  AgenticMemoryStore::Options options;
  options.staleness = AgenticMemoryStore::StalenessPolicy::kLazy;
  AgenticMemoryStore store(&catalog_, options);
  store.Put(MakeArtifact("k1", "a"));
  store.Put(MakeArtifact("k2", "b"));
  store.Put(MakeArtifact("fresh", "no deps", {}));
  ASSERT_TRUE(table_->AppendRow({Value::Int(3), Value::String("Oregon")}).ok());
  EXPECT_EQ(store.SweepStale(), 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(MemoryStoreTest, LruEviction) {
  AgenticMemoryStore::Options options;
  options.capacity = 2;
  AgenticMemoryStore store(&catalog_, options);
  store.Put(MakeArtifact("a", "1", {}));
  store.Put(MakeArtifact("b", "2", {}));
  // Touch "a" so "b" is the LRU.
  (void)store.GetExact("a");
  store.Put(MakeArtifact("c", "3", {}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.GetExact("a").has_value());
  EXPECT_FALSE(store.GetExact("b").has_value());
  EXPECT_TRUE(store.GetExact("c").has_value());
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST_F(MemoryStoreTest, AccessControlPrivateMode) {
  AgenticMemoryStore::Options options;
  options.share_across_principals = false;
  AgenticMemoryStore store(&catalog_, options);
  MemoryArtifact a = MakeArtifact("k", "private note", {});
  a.owner = "agent1";
  store.Put(std::move(a));
  EXPECT_TRUE(store.GetExact("k", "agent1").has_value());
  EXPECT_FALSE(store.GetExact("k", "agent2").has_value());
  // Public artifacts visible to everyone.
  store.Put(MakeArtifact("pub", "public note", {}));
  EXPECT_TRUE(store.GetExact("pub", "agent2").has_value());
}

TEST_F(MemoryStoreTest, AccessControlSharedMode) {
  AgenticMemoryStore::Options options;
  options.share_across_principals = true;
  AgenticMemoryStore store(&catalog_, options);
  MemoryArtifact a = MakeArtifact("k", "note", {});
  a.owner = "agent1";
  store.Put(std::move(a));
  EXPECT_TRUE(store.GetExact("k", "agent2").has_value());
}

TEST_F(MemoryStoreTest, SearchRespectsVisibility) {
  AgenticMemoryStore::Options options;
  options.share_across_principals = false;
  AgenticMemoryStore store(&catalog_, options);
  MemoryArtifact a = MakeArtifact("k", "sales state encoding note", {});
  a.owner = "agent1";
  store.Put(std::move(a));
  EXPECT_TRUE(store.Search("sales state", 5, "agent2").empty());
  auto own = store.Search("sales state", 5, "agent1");
  ASSERT_FALSE(own.empty());
}

TEST_F(MemoryStoreTest, ArtifactKindNames) {
  EXPECT_STREQ(ArtifactKindName(ArtifactKind::kProbeResult), "probe_result");
  EXPECT_STREQ(ArtifactKindName(ArtifactKind::kColumnEncoding), "column_encoding");
}

}  // namespace
}  // namespace agentfirst
