// Tests for EXPLAIN, CREATE TABLE AS SELECT, INSERT INTO ... SELECT, and the
// information_schema.column_stats view.

#include "gtest/gtest.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::PeopleDbTest;

class EngineFeaturesTest : public PeopleDbTest {};

TEST_F(EngineFeaturesTest, ExplainShowsPlanTree) {
  auto rs = Run("EXPLAIN SELECT name FROM people WHERE age > 30 ORDER BY name");
  ASSERT_NE(rs, nullptr);
  ASSERT_GE(rs->NumRows(), 4u);  // Sort, Project, Filter, Scan
  std::string all;
  for (const Row& r : rs->rows) all += r[0].string_value() + "\n";
  EXPECT_NE(all.find("Sort"), std::string::npos);
  EXPECT_NE(all.find("Project"), std::string::npos);
  EXPECT_NE(all.find("Filter"), std::string::npos);
  EXPECT_NE(all.find("Scan people"), std::string::npos);
}

TEST_F(EngineFeaturesTest, ExplainDoesNotExecute) {
  auto before = Run("SELECT count(*) FROM people")->rows[0][0].int_value();
  (void)Run("EXPLAIN SELECT count(*) FROM people");
  auto after = Run("SELECT count(*) FROM people")->rows[0][0].int_value();
  EXPECT_EQ(before, after);
}

TEST_F(EngineFeaturesTest, CreateTableAsSelect) {
  auto created = Run(
      "CREATE TABLE berkeley_people AS SELECT name, age FROM people WHERE "
      "city = 'berkeley'");
  ASSERT_NE(created, nullptr);
  EXPECT_EQ(created->rows[0][0].int_value(), 3);  // rows materialized
  auto rs = Run("SELECT count(*), max(age) FROM berkeley_people");
  EXPECT_EQ(rs->rows[0][0].int_value(), 3);
  EXPECT_EQ(rs->rows[0][1].int_value(), 41);
  // Schema carried over with types.
  auto cols = Run("SELECT data_type FROM information_schema.columns WHERE "
                  "table_name = 'berkeley_people' ORDER BY ordinal");
  ASSERT_EQ(cols->NumRows(), 2u);
  EXPECT_EQ(cols->rows[0][0].string_value(), "VARCHAR");
  EXPECT_EQ(cols->rows[1][0].string_value(), "BIGINT");
}

TEST_F(EngineFeaturesTest, CtasFromAggregate) {
  Run("CREATE TABLE city_counts AS SELECT city, count(*) AS n FROM people "
      "GROUP BY city");
  auto rs = Run("SELECT n FROM city_counts WHERE city = 'berkeley'");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 3);
}

TEST_F(EngineFeaturesTest, CtasDuplicateNameFails) {
  auto r = engine_->ExecuteSql("CREATE TABLE people AS SELECT 1 AS one");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineFeaturesTest, InsertFromSelect) {
  Run("CREATE TABLE names (who VARCHAR)");
  auto ins = Run("INSERT INTO names SELECT name FROM people WHERE age > 30");
  EXPECT_EQ(ins->rows[0][0].int_value(), 2);
  EXPECT_EQ(Run("SELECT count(*) FROM names")->rows[0][0].int_value(), 2);
}

TEST_F(EngineFeaturesTest, InsertSelectWithColumnList) {
  Run("CREATE TABLE sparse (a BIGINT, b VARCHAR, c BIGINT)");
  Run("INSERT INTO sparse (b, c) SELECT name, age FROM people WHERE id = 1");
  auto rs = Run("SELECT a, b, c FROM sparse");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_TRUE(rs->rows[0][0].is_null());
  EXPECT_EQ(rs->rows[0][1].string_value(), "alice");
  EXPECT_EQ(rs->rows[0][2].int_value(), 34);
}

TEST_F(EngineFeaturesTest, InsertSelectArityMismatchFails) {
  Run("CREATE TABLE one_col (a BIGINT)");
  auto r = engine_->ExecuteSql("INSERT INTO one_col SELECT id, age FROM people");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineFeaturesTest, ColumnStatsView) {
  auto rs = Run(
      "SELECT column_name, num_distinct, num_nulls, min_value, max_value "
      "FROM information_schema.column_stats WHERE table_name = 'people' "
      "ORDER BY column_name");
  ASSERT_EQ(rs->NumRows(), 4u);
  // age: 4 distinct non-null values, 1 null, min 19 max 41.
  const Row* age = nullptr;
  for (const Row& r : rs->rows) {
    if (r[0].string_value() == "age") age = &r;
  }
  ASSERT_NE(age, nullptr);
  EXPECT_EQ((*age)[1].int_value(), 4);
  EXPECT_EQ((*age)[2].int_value(), 1);
  EXPECT_EQ((*age)[3].string_value(), "19");
  EXPECT_EQ((*age)[4].string_value(), "41");
}

TEST_F(EngineFeaturesTest, ColumnStatsMostCommonValue) {
  auto rs = Run(
      "SELECT most_common_value FROM information_schema.column_stats "
      "WHERE table_name = 'people' AND column_name = 'city'");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "berkeley");
}

TEST_F(EngineFeaturesTest, ColumnStatsReflectsWrites) {
  Run("INSERT INTO people VALUES (50,'zed',99,'nowhere')");
  auto rs = Run(
      "SELECT max_value FROM information_schema.column_stats "
      "WHERE table_name = 'people' AND column_name = 'age'");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "99");
}

}  // namespace
}  // namespace agentfirst
