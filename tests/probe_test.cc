#include "core/probe.h"

#include "core/brief_interpreter.h"
#include "workload/minibird.h"
#include "core/system.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace agentfirst {
namespace {

// ---------------------------------------------------------------------------
// Brief interpreter
// ---------------------------------------------------------------------------

TEST(BriefInterpreterTest, DetectsPhases) {
  BriefInterpreter interp;
  Brief b;
  b.text = "exploring the schema to find where sales live";
  EXPECT_EQ(interp.Interpret(b).phase, ProbePhase::kMetadataExploration);
  b.text = "need the distinct values and distribution of the state column";
  EXPECT_EQ(interp.Interpret(b).phase, ProbePhase::kStatExploration);
  b.text = "verify the final answer exactly";
  EXPECT_EQ(interp.Interpret(b).phase, ProbePhase::kValidation);
  b.text = "attempting a candidate solution for the task";
  EXPECT_EQ(interp.Interpret(b).phase, ProbePhase::kSolutionFormulation);
  b.text = "completely unrelated text";
  EXPECT_EQ(interp.Interpret(b).phase, ProbePhase::kUnspecified);
}

TEST(BriefInterpreterTest, ExplicitPhaseWins) {
  BriefInterpreter interp;
  Brief b;
  b.text = "exploring the schema";
  b.phase = ProbePhase::kValidation;
  EXPECT_EQ(interp.Interpret(b).phase, ProbePhase::kValidation);
}

TEST(BriefInterpreterTest, DetectsAccuracy) {
  BriefInterpreter interp;
  Brief b;
  b.text = "a rough estimate is fine";
  EXPECT_NEAR(interp.Interpret(b).max_relative_error.value(), 0.10, 1e-9);
  b.text = "ballpark / order of magnitude";
  EXPECT_NEAR(interp.Interpret(b).max_relative_error.value(), 0.25, 1e-9);
  b.text = "I need the exact number";
  EXPECT_DOUBLE_EQ(interp.Interpret(b).max_relative_error.value(), 0.0);
}

TEST(BriefInterpreterTest, DetectsPriorityAndKofN) {
  BriefInterpreter interp;
  Brief b;
  b.text = "urgent: blocking the analysis";
  EXPECT_EQ(interp.Interpret(b).priority, 2);
  b = Brief{};
  b.text = "low priority, whenever you get to it";
  EXPECT_EQ(interp.Interpret(b).priority, -1);
  b = Brief{};
  b.text = "any one of these queries is enough, pick any";
  EXPECT_EQ(interp.Interpret(b).k_of_n, 1u);
}

TEST(BriefInterpreterTest, GoalKeywordsDropStopwords) {
  BriefInterpreter interp;
  Brief b;
  b.text = "We are looking for the total coffee revenue in Berkeley";
  auto keywords = interp.GoalKeywords(b);
  EXPECT_NE(std::find(keywords.begin(), keywords.end(), "coffee"), keywords.end());
  EXPECT_NE(std::find(keywords.begin(), keywords.end(), "revenue"), keywords.end());
  EXPECT_EQ(std::find(keywords.begin(), keywords.end(), "the"), keywords.end());
}

// ---------------------------------------------------------------------------
// Probe handling end-to-end on a small system
// ---------------------------------------------------------------------------

class ProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<AgentFirstSystem>();
    testing_util::BuildPeopleDb(system_->engine());
  }

  ProbeResponse Handle(Probe probe) {
    auto r = system_->HandleProbe(probe);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ProbeResponse{};
  }

  std::unique_ptr<AgentFirstSystem> system_;
};

TEST_F(ProbeTest, SingleQueryProbeAnswered) {
  Probe probe;
  probe.queries = {"SELECT count(*) FROM people"};
  probe.brief.text = "verify exactly";
  ProbeResponse r = Handle(probe);
  ASSERT_EQ(r.answers.size(), 1u);
  ASSERT_TRUE(r.answers[0].status.ok());
  EXPECT_EQ(r.answers[0].result->rows[0][0].int_value(), 5);
  EXPECT_FALSE(r.answers[0].approximate);
}

TEST_F(ProbeTest, BindErrorReportedPerQuery) {
  Probe probe;
  probe.queries = {"SELECT nope FROM people", "SELECT count(*) FROM people"};
  ProbeResponse r = Handle(probe);
  ASSERT_EQ(r.answers.size(), 2u);
  EXPECT_FALSE(r.answers[0].status.ok());
  EXPECT_TRUE(r.answers[1].status.ok());
}

TEST_F(ProbeTest, MemoryShortCircuitsRepeatedProbes) {
  Probe probe;
  probe.agent_id = "a1";
  probe.queries = {"SELECT count(*) FROM people WHERE age > 20"};
  probe.brief.text = "verify exactly";
  ProbeResponse first = Handle(probe);
  ASSERT_TRUE(first.answers[0].status.ok());
  EXPECT_FALSE(first.answers[0].from_memory);
  ProbeResponse second = Handle(probe);
  ASSERT_TRUE(second.answers[0].status.ok());
  EXPECT_TRUE(second.answers[0].from_memory);
  EXPECT_TRUE(ResultsEquivalent(*first.answers[0].result, *second.answers[0].result));
}

TEST_F(ProbeTest, MemoryInvalidatedByWrites) {
  Probe probe;
  probe.queries = {"SELECT count(*) FROM people"};
  probe.brief.text = "verify exactly";
  ProbeResponse first = Handle(probe);
  ASSERT_TRUE(system_->ExecuteSql("INSERT INTO people VALUES (9,'zed',20,'austin')").ok());
  ProbeResponse second = Handle(probe);
  ASSERT_TRUE(second.answers[0].status.ok());
  EXPECT_FALSE(second.answers[0].from_memory);
  EXPECT_EQ(second.answers[0].result->rows[0][0].int_value(),
            first.answers[0].result->rows[0][0].int_value() + 1);
}

TEST_F(ProbeTest, KofNSatisficingSkipsQueries) {
  Probe probe;
  probe.queries = {"SELECT count(*) FROM people WHERE city = 'berkeley'",
                   "SELECT count(*) FROM people WHERE city = 'oakland'",
                   "SELECT count(*) FROM people WHERE city = 'seattle'"};
  probe.brief.k_of_n = 1;
  ProbeResponse r = Handle(probe);
  size_t answered = 0;
  size_t skipped = 0;
  for (const QueryAnswer& a : r.answers) {
    if (a.skipped) ++skipped;
    else if (a.status.ok()) ++answered;
  }
  EXPECT_EQ(answered, 1u);
  EXPECT_EQ(skipped, 2u);
}

TEST_F(ProbeTest, TerminationCriterionStopsEarly) {
  Probe probe;
  probe.queries = {"SELECT * FROM people", "SELECT * FROM orders"};
  probe.brief.enough_rows_total = 3;
  ProbeResponse r = Handle(probe);
  ASSERT_EQ(r.answers.size(), 2u);
  EXPECT_TRUE(r.answers[0].status.ok());
  EXPECT_TRUE(r.answers[1].skipped);
}

TEST_F(ProbeTest, WhyEmptyHintForBadEncoding) {
  Probe probe;
  probe.queries = {"SELECT count(*), min(age) FROM people WHERE city = 'BRK'"};
  probe.brief.text = "attempting part of the query";
  ProbeResponse r = Handle(probe);
  // count(*) = 0 means the result row exists; force an empty row set instead.
  Probe probe2;
  probe2.queries = {"SELECT name FROM people WHERE city = 'BRK'"};
  probe2.brief.text = "attempting part of the query";
  ProbeResponse r2 = Handle(probe2);
  bool found = false;
  for (const Hint& h : r2.hints) {
    if (h.kind == HintKind::kWhyEmptyResult) {
      found = true;
      EXPECT_NE(h.text.find("berkeley"), std::string::npos)
          << "hint should surface actual values: " << h.text;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ProbeTest, JoinSuggestionHint) {
  Probe probe;
  probe.queries = {"SELECT count(*) FROM orders"};
  probe.brief.text = "exploring order data";
  ProbeResponse r = Handle(probe);
  bool found = false;
  for (const Hint& h : r.hints) {
    if (h.kind == HintKind::kJoinSuggestion &&
        h.text.find("people") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ProbeTest, SemanticDiscoveryBeyondSql) {
  Probe probe;
  probe.semantic_search_phrase = "coffee products";
  probe.semantic_top_k = 5;
  ProbeResponse r = Handle(probe);
  ASSERT_FALSE(r.discoveries.empty());
  // The value 'coffee beans' in orders.item should surface.
  bool found_value = false;
  for (const SemanticMatch& m : r.discoveries) {
    if (m.kind == SemanticMatch::Kind::kValue && m.text == "coffee beans") {
      found_value = true;
    }
  }
  EXPECT_TRUE(found_value);
}

TEST_F(ProbeTest, ExploratoryProbeOverBigTableIsApproximate) {
  // Enlarge the table so the optimizer chooses to sample.
  for (int i = 0; i < 30000; ++i) {
    ASSERT_TRUE(system_->ExecuteSql(
        "INSERT INTO people VALUES (" + std::to_string(100 + i) +
        ",'p',30,'austin')").ok());
  }
  Probe probe;
  probe.queries = {"SELECT count(*) FROM people"};
  probe.brief.text = "exploring: just getting a sense of the data size";
  ProbeResponse r = Handle(probe);
  ASSERT_TRUE(r.answers[0].status.ok());
  EXPECT_TRUE(r.answers[0].approximate);
  EXPECT_LT(r.answers[0].sample_rate, 1.0);
  double est = r.answers[0].result->rows[0][0].AsDouble();
  EXPECT_NEAR(est, 30005.0, 30005.0 * 0.25);
}

TEST_F(ProbeTest, ValidationPhaseIsExactEvenWhenBig) {
  for (int i = 0; i < 30000; ++i) {
    ASSERT_TRUE(system_->ExecuteSql(
        "INSERT INTO people VALUES (" + std::to_string(100 + i) +
        ",'p',30,'austin')").ok());
  }
  Probe probe;
  probe.queries = {"SELECT count(*) FROM people"};
  probe.brief.text = "verify the final answer exactly";
  ProbeResponse r = Handle(probe);
  ASSERT_TRUE(r.answers[0].status.ok());
  EXPECT_FALSE(r.answers[0].approximate);
  EXPECT_EQ(r.answers[0].result->rows[0][0].int_value(), 30005);
}

TEST_F(ProbeTest, MetricsAccumulate) {
  Probe probe;
  probe.queries = {"SELECT count(*) FROM people"};
  Handle(probe);
  Handle(probe);
  const ProbeOptimizer::Metrics& m = system_->optimizer()->metrics();
  EXPECT_EQ(m.probes, 2u);
  EXPECT_EQ(m.queries_submitted, 2u);
  EXPECT_GE(m.queries_executed + m.queries_from_memory, 2u);
}

TEST_F(ProbeTest, ResponseToStringMentionsHintsAndAnswers) {
  Probe probe;
  probe.queries = {"SELECT name FROM people WHERE city = 'BRK'"};
  probe.brief.text = "attempting part of the query";
  ProbeResponse r = Handle(probe);
  std::string text = r.ToString();
  EXPECT_NE(text.find("query 0"), std::string::npos);
}

TEST_F(ProbeTest, ProbeIdsAssignedMonotonically) {
  Probe probe;
  probe.queries = {"SELECT 1"};
  ProbeResponse r1 = Handle(probe);
  ProbeResponse r2 = Handle(probe);
  EXPECT_GT(r2.probe_id, r1.probe_id);
}

}  // namespace
}  // namespace agentfirst
