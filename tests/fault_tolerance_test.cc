// Probe lifecycle resilience: deadlines, cooperative cancellation, output
// budgets, deterministic fault injection, transparent retry, and the
// per-agent circuit breaker. The invariants here are the robustness
// contract of the paper's agent-first interface: an oversized or unlucky
// probe degrades into a partial or approximate answer (grounding the agent
// either way) instead of hanging, crashing, or poisoning shared state —
// and batch results stay byte-identical to fault-free serial execution for
// every probe that ultimately succeeds, at any thread count.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/system.h"
#include "exec/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace agentfirst {
namespace {

/// Disarms the global fault registry around every test, so a failing test
/// cannot leak armed faults into its neighbors.
class FaultToleranceTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    FaultRegistry::Global().Disable();
    FaultRegistry::Global().ClearArmed();
  }
  void TearDown() override {
    FaultRegistry::Global().Disable();
    FaultRegistry::Global().ClearArmed();
  }

  /// Engine + catalog with one `big` table of `rows` rows, inserted in
  /// chunks so the SQL stays parseable.
  void BuildBig(size_t rows) {
    engine_ = std::make_unique<Engine>(&catalog_);
    auto run = [&](const std::string& sql) {
      auto r = engine_->ExecuteSql(sql);
      ASSERT_TRUE(r.ok()) << sql.substr(0, 80) << " -> " << r.status().ToString();
    };
    run("CREATE TABLE big (id BIGINT, grp BIGINT, amount DOUBLE)");
    size_t inserted = 0;
    while (inserted < rows) {
      std::string insert = "INSERT INTO big VALUES ";
      for (size_t i = 0; i < 512 && inserted < rows; ++i, ++inserted) {
        if (i > 0) insert += ",";
        insert += "(" + std::to_string(inserted) + "," +
                  std::to_string(inserted % 17) + "," +
                  std::to_string((inserted * 31) % 1000) + ".0)";
      }
      run(insert);
    }
  }

  Catalog catalog_;
  std::unique_ptr<Engine> engine_;
};

// ---------------------------------------------------------------------------
// Deadlines: partial results, never hangs
// ---------------------------------------------------------------------------

TEST_P(FaultToleranceTest, OversizedJoinTruncatesAtDeadline) {
  const size_t threads = GetParam();
  BuildBig(4096);
  // 4096 x 4096 = ~16.8M nested-loop pairs: far more work than 50ms.
  ExecOptions options;
  options.num_threads = threads;
  options.limits.DeadlineMillis(50.0);
  auto start = std::chrono::steady_clock::now();
  auto result =
      engine_->ExecuteSql("SELECT * FROM big a CROSS JOIN big b", options);
  auto elapsed = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  AF_ASSERT_OK_RESULT(result);
  EXPECT_TRUE((*result)->truncated);
  EXPECT_EQ((*result)->interrupt, StatusCode::kDeadlineExceeded);
  // Partial: some prefix of the cross product, strictly less than all of it.
  EXPECT_LT((*result)->NumRows(), 4096u * 4096u);
  // "Within one morsel of the deadline": the generous bound still rules out
  // having computed the full cross product (seconds of work).
  EXPECT_LT(elapsed, 5000.0) << "deadline did not stop the join";
}

TEST_P(FaultToleranceTest, ExpiredDeadlineShortCircuitsParallelPlan) {
  const size_t threads = GetParam();
  BuildBig(8192);
  ExecOptions options;
  options.num_threads = threads;
  options.limits.DeadlineMillis(0.0);  // expires immediately
  auto result = engine_->ExecuteSql(
      "SELECT a.id, b.amount FROM big a JOIN big b ON a.id = b.id", options);
  AF_ASSERT_OK_RESULT(result);
  EXPECT_TRUE((*result)->truncated);
  EXPECT_EQ((*result)->interrupt, StatusCode::kDeadlineExceeded);
  EXPECT_EQ((*result)->NumRows(), 0u);
}

TEST_P(FaultToleranceTest, UnconstrainedExecutionIsUnchanged) {
  const size_t threads = GetParam();
  BuildBig(4096);
  ExecOptions options;
  options.num_threads = threads;
  auto result = engine_->ExecuteSql(
      "SELECT grp, count(*) FROM big GROUP BY grp ORDER BY grp", options);
  AF_ASSERT_OK_RESULT(result);
  EXPECT_FALSE((*result)->truncated);
  EXPECT_EQ((*result)->interrupt, StatusCode::kOk);
  EXPECT_EQ((*result)->NumRows(), 17u);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation: an error, not a partial answer
// ---------------------------------------------------------------------------

TEST_P(FaultToleranceTest, CancelledTokenFailsPlanWithkCancelled) {
  const size_t threads = GetParam();
  BuildBig(4096);
  CancellationSource source;
  source.RequestCancel();
  ExecOptions options;
  options.num_threads = threads;
  options.cancel = source.token();
  auto result = engine_->ExecuteSql("SELECT * FROM big", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_P(FaultToleranceTest, MidFlightCancellationStopsOversizedJoin) {
  const size_t threads = GetParam();
  BuildBig(4096);
  CancellationSource source;
  ExecOptions options;
  options.num_threads = threads;
  options.cancel = source.token();
  // Cancel from a second thread shortly after the join starts. The canceller
  // must live outside the pool under test or it could be starved by the very
  // join it is supposed to interrupt. aflint:allow(raw-thread)
  std::thread canceller([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    source.RequestCancel();
  });
  auto start = std::chrono::steady_clock::now();
  auto result =
      engine_->ExecuteSql("SELECT * FROM big a CROSS JOIN big b", options);
  auto elapsed = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_LT(elapsed, 5000.0);
}

// ---------------------------------------------------------------------------
// Output budgets
// ---------------------------------------------------------------------------

TEST_P(FaultToleranceTest, RowBudgetTruncatesWithResourceExhausted) {
  const size_t threads = GetParam();
  BuildBig(8192);
  ExecOptions options;
  options.num_threads = threads;
  options.limits.MaxRows(1000);
  auto result = engine_->ExecuteSql("SELECT id FROM big", options);
  AF_ASSERT_OK_RESULT(result);
  EXPECT_TRUE((*result)->truncated);
  EXPECT_EQ((*result)->interrupt, StatusCode::kResourceExhausted);
  EXPECT_LT((*result)->NumRows(), 8192u);
  EXPECT_GT((*result)->NumRows(), 0u);
}

TEST_P(FaultToleranceTest, ByteBudgetTruncatesWithResourceExhausted) {
  const size_t threads = GetParam();
  BuildBig(8192);
  ExecOptions options;
  options.num_threads = threads;
  options.limits.MaxBytes(16 * 1024);
  auto result = engine_->ExecuteSql("SELECT * FROM big", options);
  AF_ASSERT_OK_RESULT(result);
  EXPECT_TRUE((*result)->truncated);
  EXPECT_EQ((*result)->interrupt, StatusCode::kResourceExhausted);
  EXPECT_LT((*result)->NumRows(), 8192u);
}

// ---------------------------------------------------------------------------
// Injected morsel faults: clean errors, engine stays usable
// ---------------------------------------------------------------------------

TEST_P(FaultToleranceTest, InjectedScanFaultFailsPlanCleanly) {
  const size_t threads = GetParam();
  BuildBig(4096);
  FaultRegistry::Global().Enable(/*seed=*/11);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 1.0;
  spec.max_fires = 1;
  FaultRegistry::Global().Arm("exec.scan.begin", spec);

  ExecOptions options;
  options.num_threads = threads;
  auto failed = engine_->ExecuteSql("SELECT id FROM big", options);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kAborted);
  EXPECT_TRUE(IsRetryable(failed.status()));

  // The fault healed (max_fires=1): the same engine answers correctly.
  auto healed = engine_->ExecuteSql("SELECT id FROM big", options);
  AF_ASSERT_OK_RESULT(healed);
  EXPECT_EQ((*healed)->NumRows(), 4096u);
  EXPECT_FALSE((*healed)->truncated);
}

TEST_P(FaultToleranceTest, InjectedMorselFaultAbortsParallelScan) {
  const size_t threads = GetParam();
  BuildBig(8192);
  FaultRegistry::Global().Enable(/*seed=*/13);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 1.0;
  spec.max_fires = 1;
  FaultRegistry::Global().Arm("exec.scan.morsel", spec);

  ExecOptions options;
  options.num_threads = threads;
  auto failed = engine_->ExecuteSql("SELECT id FROM big WHERE id >= 0", options);
  // The parallel path hits the morsel site only when it fans out; the serial
  // path uses exec.scan.begin instead, so with 1 thread the query succeeds.
  if (!failed.ok()) {
    EXPECT_EQ(failed.status().code(), StatusCode::kAborted);
  }
  FaultRegistry::Global().ClearArmed();
  auto healed = engine_->ExecuteSql("SELECT id FROM big WHERE id >= 0", options);
  AF_ASSERT_OK_RESULT(healed);
  EXPECT_EQ((*healed)->NumRows(), 8192u);
}

TEST_P(FaultToleranceTest, LatencyFaultDelaysButCompletes) {
  const size_t threads = GetParam();
  BuildBig(4096);
  FaultRegistry::Global().Enable(/*seed=*/17);
  FaultSpec spec;
  spec.kind = FaultKind::kLatency;
  spec.latency_ms = 5;
  spec.probability = 1.0;
  spec.max_fires = 2;
  FaultRegistry::Global().Arm("exec.scan.begin", spec);

  ExecOptions options;
  options.num_threads = threads;
  auto result = engine_->ExecuteSql("SELECT count(*) FROM big", options);
  AF_ASSERT_OK_RESULT(result);
  EXPECT_EQ((*result)->rows[0][0].int_value(), 4096);
}

INSTANTIATE_TEST_SUITE_P(Threads, FaultToleranceTest,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Probe layer: partial answers, degradation, retry, breaker, cancellation
// ---------------------------------------------------------------------------

class ProbeResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global().Disable();
    FaultRegistry::Global().ClearArmed();
  }
  void TearDown() override {
    FaultRegistry::Global().Disable();
    FaultRegistry::Global().ClearArmed();
  }

  std::unique_ptr<AgentFirstSystem> BuildSystem(
      AgentFirstSystem::Options options = {}, size_t rows = 4096) {
    auto system = std::make_unique<AgentFirstSystem>(options);
    auto run = [&](const std::string& sql) {
      auto r = system->ExecuteSql(sql);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    };
    run("CREATE TABLE big (id BIGINT, grp BIGINT, amount DOUBLE)");
    size_t inserted = 0;
    while (inserted < rows) {
      std::string insert = "INSERT INTO big VALUES ";
      for (size_t i = 0; i < 512 && inserted < rows; ++i, ++inserted) {
        if (i > 0) insert += ",";
        insert += "(" + std::to_string(inserted) + "," +
                  std::to_string(inserted % 17) + "," +
                  std::to_string((inserted * 31) % 1000) + ".0)";
      }
      run(insert);
    }
    return system;
  }
};

TEST_F(ProbeResilienceTest, DeadlineYieldsPartialAnswerNotHang) {
  auto system = BuildSystem();
  Probe probe;
  probe.agent_id = "deadline-agent";
  probe.queries = {"SELECT * FROM big a CROSS JOIN big b"};
  probe.brief.phase = ProbePhase::kValidation;  // exact: no AQP degrade
  probe.brief.limits.DeadlineMillis(50.0);
  auto response = system->HandleProbe(probe);
  AF_ASSERT_OK_RESULT(response);
  const QueryAnswer& answer = response->answers[0];
  EXPECT_TRUE(answer.truncated);
  EXPECT_EQ(answer.status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_NE(answer.result, nullptr);
  EXPECT_LT(answer.result->NumRows(), 4096u * 4096u);
}

TEST_F(ProbeResilienceTest, TruncatedAnswersAreNeverReusedFromCachesOrMemory) {
  auto system = BuildSystem();
  Probe slow;
  slow.agent_id = "cache-agent";
  slow.queries = {"SELECT grp, count(*) FROM big GROUP BY grp ORDER BY grp"};
  slow.brief.phase = ProbePhase::kValidation;
  slow.brief.limits.DeadlineMillis(0.001);  // expires before the first morsel
  auto first = system->HandleProbe(slow);
  AF_ASSERT_OK_RESULT(first);
  ASSERT_TRUE(first->answers[0].truncated);

  // The same query without a deadline must produce the full 17 groups: a
  // cached or remembered partial answer would return fewer.
  Probe full = slow;
  full.brief.limits.deadline.reset();  // no deadline at all
  auto second = system->HandleProbe(full);
  AF_ASSERT_OK_RESULT(second);
  const QueryAnswer& answer = second->answers[0];
  ASSERT_TRUE(answer.status.ok()) << answer.status.ToString();
  EXPECT_FALSE(answer.truncated);
  EXPECT_FALSE(answer.from_memory);
  ASSERT_NE(answer.result, nullptr);
  EXPECT_EQ(answer.result->NumRows(), 17u);
}

TEST_F(ProbeResilienceTest, ResultRowBudgetTruncatesAnswer) {
  auto system = BuildSystem();
  Probe probe;
  probe.queries = {"SELECT id FROM big"};
  probe.brief.phase = ProbePhase::kValidation;
  probe.brief.limits.MaxRows(500);
  auto response = system->HandleProbe(probe);
  AF_ASSERT_OK_RESULT(response);
  const QueryAnswer& answer = response->answers[0];
  EXPECT_TRUE(answer.truncated);
  EXPECT_EQ(answer.status.code(), StatusCode::kResourceExhausted);
  ASSERT_NE(answer.result, nullptr);
  EXPECT_LT(answer.result->NumRows(), 4096u);
}

TEST_F(ProbeResilienceTest, ExploratoryProbeDegradesToSamplingOnDeadline) {
  AgentFirstSystem::Options options;
  // Keep the first attempt exact (so the deadline can truncate it), leaving
  // the AQP path to the degrade retry. The 1% sample turns the 16.8M-pair
  // join into ~1.7k pairs, so the retry beats its fresh deadline even under
  // a sanitizer's slowdown, while the exact attempt can never finish in time.
  options.optimizer.exploration_cost_threshold = 1e15;
  options.optimizer.exploration_sample_rate = 0.01;
  auto system = BuildSystem(options);
  Probe probe;
  probe.agent_id = "explorer";
  probe.queries = {"SELECT count(*) FROM big a CROSS JOIN big b"};
  probe.brief.phase = ProbePhase::kStatExploration;
  probe.brief.limits.DeadlineMillis(150.0);
  auto response = system->HandleProbe(probe);
  AF_ASSERT_OK_RESULT(response);
  const QueryAnswer& answer = response->answers[0];
  // The exact attempt truncates; the degrade retry samples both scans and
  // finishes well inside a fresh deadline.
  ASSERT_TRUE(answer.status.ok()) << answer.status.ToString();
  EXPECT_FALSE(answer.truncated);
  EXPECT_TRUE(answer.approximate);
  ASSERT_NE(answer.result, nullptr);
  EXPECT_EQ(system->optimizer()->metrics().queries_degraded, 1u);
}

TEST_F(ProbeResilienceTest, TransientFaultsAreRetriedTransparently) {
  auto baseline_system = BuildSystem();
  Probe probe;
  probe.agent_id = "retry-agent";
  probe.queries = {"SELECT grp, count(*) FROM big GROUP BY grp ORDER BY grp",
                   "SELECT count(*) FROM big WHERE amount > 500"};
  probe.brief.phase = ProbePhase::kValidation;
  auto baseline = baseline_system->HandleProbe(probe);
  AF_ASSERT_OK_RESULT(baseline);

  // Fresh identical system, with the first two probe-level execution
  // attempts failing transiently (then the fault heals).
  auto faulty_system = BuildSystem();
  FaultRegistry::Global().Enable(/*seed=*/23);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 1.0;
  spec.code = StatusCode::kAborted;
  spec.max_fires = 2;
  FaultRegistry::Global().Arm("core.probe.query", spec);
  auto retried = faulty_system->HandleProbe(probe);
  FaultRegistry::Global().Disable();
  AF_ASSERT_OK_RESULT(retried);

  EXPECT_GT(retried->total_retries, 0u);
  ASSERT_EQ(retried->answers.size(), baseline->answers.size());
  for (size_t q = 0; q < retried->answers.size(); ++q) {
    const QueryAnswer& a = baseline->answers[q];
    const QueryAnswer& b = retried->answers[q];
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    ASSERT_NE(a.result, nullptr);
    ASSERT_NE(b.result, nullptr);
    ASSERT_EQ(a.result->NumRows(), b.result->NumRows()) << "query " << q;
    for (size_t r = 0; r < a.result->rows.size(); ++r) {
      for (size_t c = 0; c < a.result->rows[r].size(); ++c) {
        EXPECT_TRUE(a.result->rows[r][c] == b.result->rows[r][c])
            << "query " << q << " row " << r << " col " << c;
      }
    }
  }
  EXPECT_EQ(faulty_system->optimizer()->metrics().query_retries,
            retried->total_retries);
}

TEST_F(ProbeResilienceTest, TenPercentFaultBatchCompletesByteIdentical) {
  // The acceptance bar: a probe batch under ~10% transient faults completes
  // every admissible probe via retry, with results byte-identical to a
  // fault-free run. Thread sweep covers the batch execution paths.
  std::vector<Probe> probes;
  for (int p = 0; p < 6; ++p) {
    Probe probe;
    probe.id = 1000 + p;
    probe.agent_id = "batch-agent-" + std::to_string(p % 2);
    probe.queries = {
        "SELECT grp, count(*) FROM big WHERE grp >= " + std::to_string(p) +
            " GROUP BY grp ORDER BY grp",
        "SELECT count(*) FROM big WHERE id > " + std::to_string(p * 100)};
    probe.brief.phase = ProbePhase::kValidation;
    probes.push_back(probe);
  }

  auto baseline_system = BuildSystem();
  auto baseline = baseline_system->HandleProbeBatch(probes);
  AF_ASSERT_OK_RESULT(baseline);

  for (size_t batch_par : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    AgentFirstSystem::Options options;
    options.optimizer.batch_parallelism = batch_par;
    // Generous retry budget: with p=0.1 per attempt, a query failing 6
    // straight attempts is a ~1e-6 event per query.
    options.optimizer.max_query_retries = 5;
    options.optimizer.retry_backoff_ms = 0.1;
    auto system = BuildSystem(options);
    FaultRegistry::Global().Enable(/*seed=*/2026);
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.probability = 0.1;
    spec.code = StatusCode::kAborted;
    FaultRegistry::Global().Arm("core.probe.query", spec);
    auto faulty = system->HandleProbeBatch(probes);
    FaultRegistry::Global().Disable();
    FaultRegistry::Global().ClearArmed();
    AF_ASSERT_OK_RESULT(faulty);

    ASSERT_EQ(faulty->size(), baseline->size());
    for (size_t p = 0; p < faulty->size(); ++p) {
      for (size_t q = 0; q < (*faulty)[p].answers.size(); ++q) {
        const QueryAnswer& a = (*baseline)[p].answers[q];
        const QueryAnswer& b = (*faulty)[p].answers[q];
        ASSERT_TRUE(b.status.ok())
            << "batch_par=" << batch_par << " probe " << p << " query " << q
            << ": " << b.status.ToString();
        ASSERT_NE(b.result, nullptr);
        ASSERT_EQ(a.result->NumRows(), b.result->NumRows());
        for (size_t r = 0; r < a.result->rows.size(); ++r) {
          for (size_t c = 0; c < a.result->rows[r].size(); ++c) {
            ASSERT_TRUE(a.result->rows[r][c] == b.result->rows[r][c])
                << "batch_par=" << batch_par << " probe " << p << " query "
                << q << " row " << r;
          }
        }
      }
    }
  }
}

TEST_F(ProbeResilienceTest, CircuitBreakerShedsThenRecovers) {
  AgentFirstSystem::Options options;
  options.optimizer.breaker_failure_threshold = 3;
  options.optimizer.breaker_cooldown_ms = 60.0;
  options.optimizer.max_query_retries = 0;  // every fault is a visible failure
  auto system = BuildSystem(options, /*rows=*/512);

  Probe probe;
  probe.agent_id = "flaky-agent";
  probe.queries = {"SELECT count(*) FROM big"};
  probe.brief.phase = ProbePhase::kValidation;

  // Three consecutive failures open the breaker.
  FaultRegistry::Global().Enable(/*seed=*/5);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 1.0;
  FaultRegistry::Global().Arm("core.probe.query", spec);
  for (int k = 0; k < 3; ++k) {
    auto r = system->HandleProbe(probe);
    AF_ASSERT_OK_RESULT(r);
    EXPECT_FALSE(r->shed);
    EXPECT_EQ(r->answers[0].status.code(), StatusCode::kAborted);
  }
  FaultRegistry::Global().Disable();
  FaultRegistry::Global().ClearArmed();

  // Breaker open: the next probe is shed without executing anything.
  auto shed = system->HandleProbe(probe);
  AF_ASSERT_OK_RESULT(shed);
  EXPECT_TRUE(shed->shed);
  EXPECT_TRUE(shed->answers[0].skipped);
  EXPECT_EQ(system->optimizer()->metrics().probes_shed, 1u);

  // Another agent is unaffected (the breaker is per-agent).
  Probe other = probe;
  other.agent_id = "healthy-agent";
  auto ok = system->HandleProbe(other);
  AF_ASSERT_OK_RESULT(ok);
  EXPECT_FALSE(ok->shed);
  EXPECT_TRUE(ok->answers[0].status.ok());

  // After the cooldown, the half-open trial succeeds and closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto recovered = system->HandleProbe(probe);
  AF_ASSERT_OK_RESULT(recovered);
  EXPECT_FALSE(recovered->shed);
  ASSERT_TRUE(recovered->answers[0].status.ok());
  EXPECT_EQ(recovered->answers[0].result->rows[0][0].int_value(), 512);
}

TEST_F(ProbeResilienceTest, CancelAllProbesThenReset) {
  auto system = BuildSystem({}, /*rows=*/4096);
  system->CancelAllProbes();
  Probe probe;
  probe.queries = {"SELECT count(*) FROM big"};
  probe.brief.phase = ProbePhase::kValidation;
  auto cancelled = system->HandleProbe(probe);
  AF_ASSERT_OK_RESULT(cancelled);
  EXPECT_EQ(cancelled->answers[0].status.code(), StatusCode::kCancelled);

  system->ResetProbeCancellation();
  auto revived = system->HandleProbe(probe);
  AF_ASSERT_OK_RESULT(revived);
  ASSERT_TRUE(revived->answers[0].status.ok())
      << revived->answers[0].status.ToString();
  EXPECT_EQ(revived->answers[0].result->rows[0][0].int_value(), 4096);
}

// ---------------------------------------------------------------------------
// ExecCache under concurrency: byte budget holds, hits stay correct
// ---------------------------------------------------------------------------

TEST(ExecCacheStressTest, ConcurrentPutGetHoldsByteBudget) {
  constexpr size_t kCapacity = 64 * 1024;
  ExecCache cache(kCapacity);

  // Values big enough that the byte budget (not the key count) binds.
  auto make_result = [](uint64_t key) {
    auto rs = std::make_shared<ResultSet>();
    for (int r = 0; r < 16; ++r) {
      Row row;
      row.push_back(Value::Int(static_cast<int64_t>(key)));
      row.push_back(
          Value::String(std::string(64, static_cast<char>('a' + key % 26))));
      rs->rows.push_back(std::move(row));
    }
    return rs;
  };

  ThreadPool pool(4);
  std::atomic<size_t> budget_violations{0};
  std::atomic<size_t> wrong_values{0};
  pool.ParallelFor(
      0, 2000,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          // Spread keys over all 16 shards (shard = top byte of the key).
          uint64_t key = (static_cast<uint64_t>(i % 64) << 56) | (i % 128);
          if (ResultSetPtr hit = cache.Get(key); hit != nullptr) {
            if (hit->rows.empty() ||
                hit->rows[0][0].int_value() != static_cast<int64_t>(key)) {
              wrong_values.fetch_add(1);
            }
          } else {
            cache.Put(key, make_result(key));
          }
          if (cache.bytes() > kCapacity + 4096) budget_violations.fetch_add(1);
        }
      },
      /*grain=*/16);

  EXPECT_EQ(wrong_values.load(), 0u);
  // Transient overshoot of one in-flight entry is tolerated above; the
  // steady-state budget must hold exactly.
  EXPECT_EQ(budget_violations.load(), 0u);
  EXPECT_LE(cache.bytes(), kCapacity);
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
  EXPECT_GT(cache.evictions(), 0u);
}

}  // namespace
}  // namespace agentfirst
