// Tests for hash indexes: build/lookup/staleness, SQL DDL, optimizer index
// selection, executor correctness, and the probe optimizer's adaptive
// auto-indexing.

#include "catalog/index.h"

#include "core/system.h"
#include "gtest/gtest.h"
#include "opt/rules.h"
#include "plan/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace agentfirst {
namespace {

using testing_util::PeopleDbTest;

class IndexTest : public PeopleDbTest {
 protected:
  PlanPtr BindOptimized(const std::string& sql) {
    auto select = ParseSelect(sql);
    EXPECT_TRUE(select.ok());
    Binder binder(&catalog_);
    auto plan = binder.BindSelect(**select);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? OptimizePlan(*plan, &catalog_) : nullptr;
  }

  const PlanNode* FindScan(const PlanNode* node) {
    if (node->kind == PlanKind::kScan) return node;
    for (const auto& c : node->children) {
      if (const PlanNode* s = FindScan(c.get())) return s;
    }
    return nullptr;
  }
};

TEST_F(IndexTest, BuildAndLookup) {
  auto table = *catalog_.GetTable("people");
  HashIndex index("people", 3);  // city
  ASSERT_TRUE(index.Build(*table).ok());
  EXPECT_TRUE(index.FreshFor(*table));
  auto rows = index.Lookup(Value::String("berkeley"));
  EXPECT_EQ(rows, (std::vector<size_t>{0, 2, 4}));  // alice, carol, erin
  EXPECT_TRUE(index.Lookup(Value::String("nowhere")).empty());
  EXPECT_TRUE(index.Lookup(Value::Null()).empty());
}

TEST_F(IndexTest, StalenessAfterWrite) {
  auto table = *catalog_.GetTable("people");
  HashIndex index("people", 3);
  ASSERT_TRUE(index.Build(*table).ok());
  Run("INSERT INTO people VALUES (9,'zoe',21,'berkeley')");
  EXPECT_FALSE(index.FreshFor(*table));
  ASSERT_TRUE(index.Build(*table).ok());
  EXPECT_EQ(index.Lookup(Value::String("berkeley")).size(), 4u);
}

TEST_F(IndexTest, NullsExcludedFromIndex) {
  auto table = *catalog_.GetTable("people");
  HashIndex index("people", 2);  // age: erin has NULL
  ASSERT_TRUE(index.Build(*table).ok());
  EXPECT_EQ(index.num_entries(), 4u);
}

TEST_F(IndexTest, CatalogLifecycle) {
  ASSERT_TRUE(catalog_.CreateIndex("people", "city").ok());
  EXPECT_TRUE(catalog_.HasIndex("people", "city"));
  EXPECT_FALSE(catalog_.CreateIndex("people", "city").ok());  // duplicate
  EXPECT_FALSE(catalog_.CreateIndex("people", "nope").ok());
  EXPECT_FALSE(catalog_.CreateIndex("ghost", "city").ok());
  EXPECT_EQ(catalog_.ListIndexes().size(), 1u);
  ASSERT_TRUE(catalog_.DropIndex("people", "city").ok());
  EXPECT_FALSE(catalog_.DropIndex("people", "city").ok());
}

TEST_F(IndexTest, GetFreshIndexRebuildsLazily) {
  ASSERT_TRUE(catalog_.CreateIndex("people", "city").ok());
  Run("INSERT INTO people VALUES (9,'zoe',21,'berkeley')");
  const HashIndex* index = catalog_.GetFreshIndex("people", 3);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Lookup(Value::String("berkeley")).size(), 4u);
  EXPECT_EQ(catalog_.GetFreshIndex("people", 0), nullptr);  // no index on id
}

TEST_F(IndexTest, DropTableDropsItsIndexes) {
  ASSERT_TRUE(catalog_.CreateIndex("orders", "item").ok());
  Run("DROP TABLE orders");
  EXPECT_FALSE(catalog_.HasIndex("orders", "item"));
}

TEST_F(IndexTest, SqlDdl) {
  auto created = Run("CREATE INDEX city_idx ON people (city)");
  ASSERT_NE(created, nullptr);
  EXPECT_TRUE(catalog_.HasIndex("people", "city"));
  auto dropped = Run("DROP INDEX ON people (city)");
  ASSERT_NE(dropped, nullptr);
  EXPECT_FALSE(catalog_.HasIndex("people", "city"));
  // Unnamed form too.
  EXPECT_NE(Run("CREATE INDEX ON people (name)"), nullptr);
}

TEST_F(IndexTest, OptimizerSelectsIndexForEqualityFilter) {
  ASSERT_TRUE(catalog_.CreateIndex("people", "city").ok());
  PlanPtr plan = BindOptimized("SELECT name FROM people WHERE city = 'berkeley'");
  const PlanNode* scan = FindScan(plan.get());
  ASSERT_NE(scan, nullptr);
  EXPECT_NE(scan->index, nullptr);
  EXPECT_EQ(scan->index_value.string_value(), "berkeley");
  // The filter stays (re-verified per row).
  EXPECT_NE(scan->scan_filter, nullptr);
}

TEST_F(IndexTest, OptimizerIgnoresNonEqualityAndUnindexed) {
  ASSERT_TRUE(catalog_.CreateIndex("people", "city").ok());
  PlanPtr range = BindOptimized("SELECT name FROM people WHERE age > 30");
  EXPECT_EQ(FindScan(range.get())->index, nullptr);
  PlanPtr other = BindOptimized("SELECT name FROM people WHERE name = 'bob'");
  EXPECT_EQ(FindScan(other.get())->index, nullptr);
}

TEST_F(IndexTest, IndexedExecutionMatchesScan) {
  // Compare results with and without the index across several predicates.
  const char* queries[] = {
      "SELECT name FROM people WHERE city = 'berkeley' ORDER BY name",
      "SELECT count(*) FROM people WHERE city = 'oakland'",
      "SELECT name FROM people WHERE city = 'berkeley' AND age > 30 ORDER BY name",
      "SELECT name FROM people WHERE city = 'mars'",
  };
  std::vector<std::string> plain;
  for (const char* q : queries) {
    auto rs = ExecutePlan(*BindOptimized(q));
    ASSERT_TRUE(rs.ok());
    plain.push_back((*rs)->ToString(100));
  }
  ASSERT_TRUE(catalog_.CreateIndex("people", "city").ok());
  for (size_t i = 0; i < std::size(queries); ++i) {
    PlanPtr plan = BindOptimized(queries[i]);
    ASSERT_NE(FindScan(plan.get()), nullptr);
    auto rs = ExecutePlan(*plan);
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ((*rs)->ToString(100), plain[i]) << queries[i];
  }
}

TEST_F(IndexTest, StaleIndexFallsBackSafely) {
  ASSERT_TRUE(catalog_.CreateIndex("people", "city").ok());
  PlanPtr plan = BindOptimized("SELECT count(*) FROM people WHERE city = 'berkeley'");
  ASSERT_NE(FindScan(plan.get())->index, nullptr);
  // Mutate the table AFTER planning: the plan's index pointer is now stale;
  // execution must fall back to a full scan and still be correct... the
  // scan's fingerprint also changed, but we execute the stale plan directly.
  Run("INSERT INTO people VALUES (9,'zoe',21,'berkeley')");
  auto rs = ExecutePlan(*plan);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ((*rs)->rows[0][0].int_value(), 4);
}

TEST_F(IndexTest, ExplainProbePathShowsIndex) {
  ASSERT_TRUE(catalog_.CreateIndex("people", "city").ok());
  PlanPtr plan = BindOptimized("SELECT name FROM people WHERE city = 'berkeley'");
  EXPECT_NE(plan->ToString().find("index=("), std::string::npos);
}

class AutoIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<AgentFirstSystem>();
    testing_util::BuildPeopleDb(system_->engine());
  }
  std::unique_ptr<AgentFirstSystem> system_;
};

TEST_F(AutoIndexTest, RepeatedEqualityProbesTriggerAutoIndex) {
  ASSERT_FALSE(system_->catalog()->HasIndex("people", "city"));
  bool hinted = false;
  for (int i = 0; i < 6 && !hinted; ++i) {
    Probe probe;
    probe.agent_id = "agent" + std::to_string(i);  // distinct agents
    probe.queries = {"SELECT name FROM people WHERE city = '" +
                     std::string(i % 2 == 0 ? "berkeley" : "oakland") +
                     "' AND age > " + std::to_string(i) };
    auto r = system_->HandleProbe(probe);
    ASSERT_TRUE(r.ok());
    for (const Hint& h : r->hints) {
      if (h.text.find("index") != std::string::npos &&
          h.kind == HintKind::kSchemaGuidance) {
        hinted = true;
      }
    }
  }
  EXPECT_TRUE(system_->catalog()->HasIndex("people", "city"));
  EXPECT_TRUE(hinted);
}

}  // namespace
}  // namespace agentfirst
