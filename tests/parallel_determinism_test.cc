// Determinism contract of morsel-driven execution: for any plan, running
// with N threads must produce a ResultSet byte-identical to serial
// execution — same rows, same values, same order. The parallel operators
// guarantee this by fixing morsel boundaries independently of scheduling
// and merging per-morsel buffers in morsel order.

#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "exec/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/minibird.h"

namespace agentfirst {
namespace {

/// Exact (order-sensitive) result equality; ResultsEquivalent is the
/// multiset check, this is the stricter byte-identical one.
::testing::AssertionResult ExactlyEqual(const ResultSet& a, const ResultSet& b) {
  if (a.rows.size() != b.rows.size()) {
    return ::testing::AssertionFailure()
           << "row count " << a.rows.size() << " vs " << b.rows.size();
  }
  if (a.approximate != b.approximate || a.sample_rate != b.sample_rate) {
    return ::testing::AssertionFailure() << "approximation metadata differs";
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) {
      return ::testing::AssertionFailure() << "row " << r << " width differs";
    }
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!(a.rows[r][c] == b.rows[r][c])) {
        return ::testing::AssertionFailure()
               << "row " << r << " col " << c << ": " << a.rows[r][c].ToString()
               << " vs " << b.rows[r][c].ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class ParallelDeterminismTest : public ::testing::TestWithParam<size_t> {
 protected:
  /// One MiniBird suite shared across all thread-count instantiations (the
  /// generator is seeded, so every instantiation sees identical data).
  static std::vector<MiniBirdDatabase>& Databases() {
    static auto* dbs = []() {
      MiniBirdOptions options;
      options.num_databases = 3;
      return new std::vector<MiniBirdDatabase>(GenerateMiniBird(options));
    }();
    return *dbs;
  }
};

TEST_P(ParallelDeterminismTest, MiniBirdGoldQueriesByteIdentical) {
  size_t num_threads = GetParam();
  size_t checked = 0;
  for (auto& db : Databases()) {
    for (const TaskSpec& task : db.tasks) {
      ExecOptions serial;
      serial.num_threads = 1;
      ExecOptions parallel;
      parallel.num_threads = num_threads;
      auto s = db.system->engine()->ExecuteSql(task.gold_sql, serial);
      auto p = db.system->engine()->ExecuteSql(task.gold_sql, parallel);
      AF_ASSERT_OK_RESULT(s);
      AF_ASSERT_OK_RESULT(p);
      EXPECT_TRUE(ExactlyEqual(**s, **p))
          << db.name << " task " << task.id << " (" << task.gold_sql
          << ") with num_threads=" << num_threads;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelDeterminismTest,
                         ::testing::Values(1, 2, 4, 8));

/// The probe-batch layer has the same contract at probe granularity:
/// executing a batch with batch_parallelism=N yields the same per-query
/// answer rows as serial batch processing, because admission, pruning, and
/// approximation decisions are made serially before execution fans out.
TEST(ParallelProbeBatchTest, ParallelBatchMatchesSerialAnswers) {
  auto build = [](size_t batch_parallelism, size_t intra_query_threads) {
    AgentFirstSystem::Options options;
    options.optimizer.batch_parallelism = batch_parallelism;
    options.optimizer.intra_query_threads = intra_query_threads;
    auto system = std::make_unique<AgentFirstSystem>(options);
    auto run = [&](const std::string& sql) {
      auto r = system->ExecuteSql(sql);
      EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    };
    run("CREATE TABLE sales (id BIGINT, region VARCHAR, amount DOUBLE)");
    for (int chunk = 0; chunk < 8; ++chunk) {
      std::string insert = "INSERT INTO sales VALUES ";
      for (int i = 0; i < 512; ++i) {
        int id = chunk * 512 + i;
        if (i > 0) insert += ",";
        insert += "(" + std::to_string(id) + ",'r" + std::to_string(id % 7) +
                  "'," + std::to_string((id * 37) % 1000) + ".0)";
      }
      run(insert);
    }
    return system;
  };

  auto make_batch = []() {
    std::vector<Probe> probes;
    for (int a = 0; a < 6; ++a) {
      Probe probe;
      probe.agent_id = "agent" + std::to_string(a);
      probe.brief.text = "validate totals per region";
      probe.queries = {
          "SELECT count(*) FROM sales WHERE region = 'r" + std::to_string(a) + "'",
          "SELECT sum(amount) FROM sales WHERE amount > " + std::to_string(a * 100),
          "SELECT region, count(*) FROM sales GROUP BY region ORDER BY region",
      };
      probes.push_back(std::move(probe));
    }
    return probes;
  };

  auto serial_system = build(1, 1);
  auto parallel_system = build(8, 2);
  ASSERT_NE(serial_system, nullptr);
  ASSERT_NE(parallel_system, nullptr);

  auto serial = serial_system->HandleProbeBatch(make_batch());
  auto parallel = parallel_system->HandleProbeBatch(make_batch());
  AF_ASSERT_OK_RESULT(serial);
  AF_ASSERT_OK_RESULT(parallel);
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t p = 0; p < serial->size(); ++p) {
    const ProbeResponse& rs = (*serial)[p];
    const ProbeResponse& rp = (*parallel)[p];
    ASSERT_EQ(rs.answers.size(), rp.answers.size()) << "probe " << p;
    for (size_t q = 0; q < rs.answers.size(); ++q) {
      const QueryAnswer& as = rs.answers[q];
      const QueryAnswer& ap = rp.answers[q];
      EXPECT_EQ(as.status.ok(), ap.status.ok()) << "probe " << p << " q " << q;
      EXPECT_EQ(as.skipped, ap.skipped) << "probe " << p << " q " << q;
      if (as.result != nullptr && ap.result != nullptr) {
        EXPECT_TRUE(ExactlyEqual(*as.result, *ap.result))
            << "probe " << p << " query " << q << ": " << as.sql;
      } else {
        // One side served from batch-internal memory reuse may hand back a
        // shared pointer; both must agree on whether rows exist at all.
        EXPECT_EQ(as.result == nullptr, ap.result == nullptr)
            << "probe " << p << " query " << q;
      }
    }
  }
}

}  // namespace
}  // namespace agentfirst
