// afprobe -- wire-protocol client for a running afserved, plus a
// self-contained protocol battery.
//
//   afprobe --addr HOST:PORT                         # ping + "SELECT 1"
//   afprobe --addr HOST:PORT --sql "SELECT ..."      # one SQL statement
//   afprobe --addr HOST:PORT --probe "brief|sql"     # one probe with brief
//   afprobe --addr HOST:PORT --token TOK             # authenticated session
//   afprobe --self-test                              # in-process server +
//                                                    # client battery; exit 0
//                                                    # iff every check passes
//
// (--connect is an accepted alias of --addr.) Exit codes across the CLI
// tools are uniform: 0 success, 1 runtime/server failure, 2 usage error.
//
// --self-test needs no running server and no free fixed port: it boots an
// AgentFirstSystem behind a ProbeServer on an ephemeral loopback port,
// connects real clients, and exercises the happy paths, the auth handshake
// (accepted token, rejected token, missing token), pipelined out-of-order
// completion, and the protocol error paths (malformed magic, oversized
// length prefix). It is registered with ctest (afprobe_self_test) and runs
// in tools/check.sh, like afmetrics --self-test.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/system.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"

namespace agentfirst {
namespace {

int g_failures = 0;

#define CHECK_TRUE(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "afprobe self-test FAIL at %s:%d: %s\n",   \
                   __FILE__, __LINE__, #cond);                        \
      ++g_failures;                                                   \
    }                                                                 \
  } while (0)

const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    const auto& af_check_ok = (expr);                                   \
    if (!af_check_ok.ok()) {                                            \
      std::fprintf(stderr, "afprobe self-test FAIL at %s:%d: %s: %s\n", \
                   __FILE__, __LINE__, #expr,                           \
                   StatusOf(af_check_ok).ToString().c_str());           \
      ++g_failures;                                                     \
    }                                                                   \
  } while (0)

int SelfTest() {
  AgentFirstSystem db;
  net::ProbeServer::Options options;
  options.server_name = "afprobe-selftest";
  net::ProbeServer server(&db, options);
  CHECK_OK(server.Start());
  if (g_failures > 0) return 1;

  // Happy path: DDL/DML/SELECT over the wire, then a probe with a brief.
  {
    auto client = net::Client::Connect("127.0.0.1", server.port());
    CHECK_OK(client);
    if (g_failures > 0) return 1;
    CHECK_TRUE((*client)->server_name() == "afprobe-selftest");

    auto echoed = (*client)->Ping("liveness");
    CHECK_OK(echoed);
    CHECK_TRUE(echoed.ok() && *echoed == "liveness");

    CHECK_OK((*client)->ExecuteSql(
        "CREATE TABLE t (id BIGINT, city VARCHAR)"));
    CHECK_OK((*client)->ExecuteSql(
        "INSERT INTO t VALUES (1,'Berkeley'),(2,'Oakland'),(3,'Seattle')"));
    auto rows = (*client)->ExecuteSql("SELECT COUNT(*) FROM t");
    CHECK_OK(rows);
    CHECK_TRUE(rows.ok() && (*rows)->NumRows() == 1);

    auto one = (*client)->ExecuteSql("SELECT 1");
    CHECK_OK(one);

    // A failing statement must come back as a Status, with the session
    // still usable afterwards.
    auto bad = (*client)->ExecuteSql("SELECT * FROM no_such_table");
    CHECK_TRUE(!bad.ok());
    CHECK_OK((*client)->ExecuteSql("SELECT 1"));

    Probe probe;
    probe.agent_id = "afprobe";
    probe.brief.text = "exploring which cities appear in t";
    probe.queries = {"SELECT city FROM t ORDER BY city"};
    auto response = (*client)->HandleProbe(probe);
    CHECK_OK(response);
    CHECK_TRUE(response.ok() && response->answers.size() == 1);
    CHECK_TRUE(response.ok() && response->answers[0].status.ok());

    // Batch path keeps submission order.
    std::vector<Probe> batch(2);
    batch[0].agent_id = batch[1].agent_id = "afprobe";
    batch[0].queries = {"SELECT COUNT(*) FROM t"};
    batch[1].queries = {"SELECT MAX(id) FROM t"};
    auto responses = (*client)->HandleProbeBatch(std::move(batch));
    CHECK_OK(responses);
    CHECK_TRUE(responses.ok() && responses->size() == 2);

    // Pipelining: several async calls in flight on one socket, waited out
    // of submission order; every future resolves with its own answer.
    auto f_count = (*client)->ExecuteSqlAsync("SELECT COUNT(*) FROM t");
    auto f_max = (*client)->ExecuteSqlAsync("SELECT MAX(id) FROM t");
    auto f_ping = (*client)->PingAsync("pipelined");
    auto ping_back = f_ping.get();
    CHECK_OK(ping_back);
    CHECK_TRUE(ping_back.ok() && *ping_back == "pipelined");
    auto max_rows = f_max.get();
    CHECK_OK(max_rows);
    auto count_rows = f_count.get();
    CHECK_OK(count_rows);

    // The endpoint identifies itself with the shared ServiceInfo shape.
    auto info = (*client)->ServerInfo();
    CHECK_OK(info);
    CHECK_TRUE(info.ok() && info->name == "afprobe-selftest");
    CHECK_TRUE(info.ok() && info->num_loops >= 1);

    CHECK_OK((*client)->ExecuteSql("DROP TABLE t"));
    auto gone = (*client)->ExecuteSql("SELECT COUNT(*) FROM t");
    CHECK_TRUE(!gone.ok());
  }

  // Protocol abuse: each case gets a fresh connection in manual-frame mode
  // (no reader thread — the test owns the socket), sends raw bytes through
  // the test hook, and must get an afp error frame back (never a hang,
  // never a crash). The server closes abusive sessions; a fresh connection
  // afterwards must still work.
  {
    net::Client::Options manual;
    manual.manual_frames_for_test = true;
    auto client = net::Client::Connect("127.0.0.1", server.port(), manual);
    CHECK_OK(client);
    if (client.ok()) {
      CHECK_OK((*client)->SendRawForTest("XXXX-not-an-afp-frame-header"));
      auto frame = (*client)->ReadFrameForTest();
      CHECK_TRUE(frame.ok() && frame->first == net::FrameType::kError);
    }
  }
  {
    net::Client::Options manual;
    manual.manual_frames_for_test = true;
    auto client = net::Client::Connect("127.0.0.1", server.port(), manual);
    CHECK_OK(client);
    if (client.ok()) {
      // Valid magic/version, oversized length prefix.
      std::string header = {'A', 'F', 'P', '1',
                            char(1), char(10), char(0), char(0),
                            char(0xff), char(0xff), char(0xff), char(0x7f)};
      CHECK_OK((*client)->SendRawForTest(header));
      auto frame = (*client)->ReadFrameForTest();
      CHECK_TRUE(frame.ok() && frame->first == net::FrameType::kError);
    }
  }
  {
    auto client = net::Client::Connect("127.0.0.1", server.port());
    CHECK_OK(client);
    if (client.ok()) {
      CHECK_OK((*client)->ExecuteSql("SELECT 1"));  // server still healthy
    }
  }

  server.Stop();
  CHECK_TRUE(!server.running());

  // Auth handshake: a token-armed server accepts the known token (and maps
  // it to its tenant), rejects unknown and missing tokens with a typed
  // kUnauthenticated at Connect time.
  {
    net::ProbeServer::Options secured;
    secured.server_name = "afprobe-selftest-auth";
    secured.tokens = {{"s3cret", "tenant-a"}};
    net::ProbeServer auth_server(&db, secured);
    CHECK_OK(auth_server.Start());

    net::Client::Options with_token;
    with_token.token = "s3cret";
    auto good =
        net::Client::Connect("127.0.0.1", auth_server.port(), with_token);
    CHECK_OK(good);
    if (good.ok()) {
      CHECK_OK((*good)->ExecuteSql("SELECT 1"));
      auto info = (*good)->ServerInfo();
      CHECK_OK(info);
      CHECK_TRUE(info.ok() && info->tenant == "tenant-a");
    }

    net::Client::Options wrong_token;
    wrong_token.token = "not-the-token";
    auto bad =
        net::Client::Connect("127.0.0.1", auth_server.port(), wrong_token);
    CHECK_TRUE(!bad.ok());
    CHECK_TRUE(bad.status().code() == StatusCode::kUnauthenticated);

    auto missing = net::Client::Connect("127.0.0.1", auth_server.port());
    CHECK_TRUE(!missing.ok());
    CHECK_TRUE(missing.status().code() == StatusCode::kUnauthenticated);

    auth_server.Stop();
  }
  std::printf("afprobe self-test: %s\n", g_failures == 0 ? "PASS" : "FAIL");
  return g_failures == 0 ? 0 : 1;
}

int RunClient(const std::string& endpoint, const std::string& token,
              const std::string& sql, const std::string& probe_spec) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "afprobe: --addr wants HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  std::string host = endpoint.substr(0, colon);
  int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "afprobe: bad port in '%s'\n", endpoint.c_str());
    return 2;
  }

  net::Client::Options options;
  options.client_name = "afprobe";
  options.token = token;
  auto client =
      net::Client::Connect(host, static_cast<uint16_t>(port), options);
  if (!client.ok()) {
    std::fprintf(stderr, "afprobe: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to %s (server: %s)\n", endpoint.c_str(),
              (*client)->server_name().c_str());

  auto echoed = (*client)->Ping("afprobe");
  if (!echoed.ok()) {
    std::fprintf(stderr, "afprobe: ping: %s\n",
                 echoed.status().ToString().c_str());
    return 1;
  }

  if (!probe_spec.empty()) {
    size_t bar = probe_spec.find('|');
    Probe probe;
    probe.agent_id = "afprobe";
    if (bar == std::string::npos) {
      probe.queries = {probe_spec};
    } else {
      probe.brief.text = probe_spec.substr(0, bar);
      probe.queries = {probe_spec.substr(bar + 1)};
    }
    auto response = (*client)->HandleProbe(probe);
    if (!response.ok()) {
      std::fprintf(stderr, "afprobe: probe: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", response->ToString(20).c_str());
    return 0;
  }

  auto result = (*client)->ExecuteSql(sql.empty() ? "SELECT 1" : sql);
  if (!result.ok()) {
    std::fprintf(stderr, "afprobe: sql: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s(%zu rows)\n", (*result)->ToString(40).c_str(),
              (*result)->NumRows());
  return 0;
}

int Main(int argc, char** argv) {
  std::string endpoint, token, sql, probe_spec;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--addr" || arg == "--connect") {
      endpoint = next();
    } else if (arg == "--token") {
      token = next();
    } else if (arg == "--sql") {
      sql = next();
    } else if (arg == "--probe") {
      probe_spec = next();
    } else {
      std::fprintf(stderr,
                   "usage: afprobe --self-test | --addr HOST:PORT "
                   "[--token TOK] [--sql S] [--probe 'brief|sql']\n");
      return 2;
    }
  }
  if (self_test) return SelfTest();
  if (endpoint.empty()) {
    std::fprintf(stderr,
                 "afprobe: need --self-test or --addr HOST:PORT\n");
    return 2;
  }
  return RunClient(endpoint, token, sql, probe_spec);
}

}  // namespace
}  // namespace agentfirst

int main(int argc, char** argv) { return agentfirst::Main(argc, argv); }
