#!/usr/bin/env bash
# Runs the tier-1 test suite under ThreadSanitizer, AddressSanitizer, and/or
# UndefinedBehaviorSanitizer, with fault injection armed via
# AGENTFIRST_FAULTS=1 so the injected-error paths (retry, truncation,
# breaker) are exercised under the sanitizer too.
#
#   tools/run_sanitized.sh            # thread + address, full suite
#   tools/run_sanitized.sh all        # thread + address + undefined
#   tools/run_sanitized.sh undefined  # one sanitizer only
#   tools/run_sanitized.sh address fault_tolerance_test   # one test binary
#
# Each sanitizer gets its own build tree (build-tsan / build-asan /
# build-ubsan) beside the default build directory, so incremental rebuilds
# stay cheap.

set -euo pipefail
cd "$(dirname "$0")/.."

sanitizers=("${1:-both}")
if [[ "${sanitizers[0]}" == "both" ]]; then
  sanitizers=(thread address)
elif [[ "${sanitizers[0]}" == "all" ]]; then
  sanitizers=(thread address undefined)
fi
test_filter="${2:-}"

for san in "${sanitizers[@]}"; do
  case "$san" in
    thread)    build_dir=build-tsan ;;
    address)   build_dir=build-asan ;;
    undefined) build_dir=build-ubsan ;;
    *) echo "unknown sanitizer '$san' (want thread|address|undefined|both|all)" >&2; exit 2 ;;
  esac

  echo "=== configuring $build_dir (AGENTFIRST_SANITIZE=$san) ==="
  cmake -B "$build_dir" -S . -DAGENTFIRST_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== building $build_dir ==="
  cmake --build "$build_dir" -j "$(nproc)"

  echo "=== running tests under $san sanitizer (faults armed) ==="
  # AGENTFIRST_FAULTS=1 enables the deterministic fault-injection registry;
  # tests that arm fault points then actually inject. halt_on_error makes a
  # sanitizer report fail the test instead of scrolling past.
  (
    cd "$build_dir"
    export AGENTFIRST_FAULTS=1
    export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
    export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
    export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
    if [[ -n "$test_filter" ]]; then
      ctest --output-on-failure -R "$test_filter"
    else
      ctest --output-on-failure
    fi
  )
  echo "=== $san sanitizer run PASSED ==="
done
