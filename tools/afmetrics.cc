// afmetrics: dump the process-wide metrics registry, or self-test it.
//
//   afmetrics              run a small demo probe workload, dump text
//   afmetrics --json       same, dump JSON
//   afmetrics --self-test  exercise registry concurrency + histogram bucket
//                          math with no workload; exit 0 iff all checks pass
//
// The demo workload exists because an empty registry dump proves nothing:
// it drives a real AgentFirstSystem probe batch so the af.pool.*, af.exec.*,
// and af.probe.* families all appear populated. --self-test is wired into
// tools/check.sh as a static-analysis-adjacent gate.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/probe_builder.h"
#include "core/system.h"
#include "obs/metrics.h"

namespace agentfirst {
namespace {

int g_failures = 0;

#define CHECK_TRUE(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "afmetrics self-test FAIL at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                               \
      ++g_failures;                                                          \
    }                                                                        \
  } while (0)

#define CHECK_EQ(a, b)                                                       \
  do {                                                                       \
    auto va = (a);                                                           \
    auto vb = (b);                                                           \
    if (!(va == vb)) {                                                       \
      std::fprintf(stderr,                                                   \
                   "afmetrics self-test FAIL at %s:%d: %s == %s "            \
                   "(%llu vs %llu)\n",                                       \
                   __FILE__, __LINE__, #a, #b,                               \
                   static_cast<unsigned long long>(va),                      \
                   static_cast<unsigned long long>(vb));                     \
      ++g_failures;                                                          \
    }                                                                        \
  } while (0)

/// Histogram bucket math: bucket i holds samples of bit width i.
void SelfTestHistogramBuckets() {
  using H = obs::Histogram;
  CHECK_EQ(H::BucketIndex(0), size_t{0});
  CHECK_EQ(H::BucketIndex(1), size_t{1});
  CHECK_EQ(H::BucketIndex(2), size_t{2});
  CHECK_EQ(H::BucketIndex(3), size_t{2});
  CHECK_EQ(H::BucketIndex(4), size_t{3});
  CHECK_EQ(H::BucketIndex(1023), size_t{10});
  CHECK_EQ(H::BucketIndex(1024), size_t{11});
  CHECK_EQ(H::BucketIndex(~0ull), H::kNumBuckets - 1);
  CHECK_EQ(H::BucketUpperBound(0), uint64_t{0});
  CHECK_EQ(H::BucketUpperBound(1), uint64_t{1});
  CHECK_EQ(H::BucketUpperBound(10), uint64_t{1023});

  obs::Histogram h;
  for (uint64_t v = 0; v < 1000; ++v) h.Record(v);
  CHECK_EQ(h.count(), uint64_t{1000});
  CHECK_EQ(h.sum(), uint64_t{499500});
  // p50 of 0..999 lies in [500, 512); the bucket upper bound is 511.
  CHECK_EQ(h.ValueAtPercentile(50.0), uint64_t{511});
  CHECK_EQ(h.ValueAtPercentile(100.0), uint64_t{1023});
  CHECK_EQ(h.ValueAtPercentile(0.0), uint64_t{0});
}

/// Registry hammering: many threads registering overlapping names and
/// bumping shared counters must lose no updates and must hand every caller
/// the same stable pointer per name.
void SelfTestRegistryConcurrency() {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    obs::MetricsRegistry registry;
    ThreadPool pool(threads);
    constexpr size_t kTasks = 64;
    constexpr size_t kIncrementsPerTask = 10000;
    pool.ParallelFor(0, kTasks, [&](size_t begin, size_t end) {
      for (size_t t = begin; t < end; ++t) {
        // Overlapping name set across tasks: shared.0..7 plus a task-unique
        // name, touching several stripes.
        obs::Counter* shared =
            registry.GetCounter("shared." + std::to_string(t % 8));
        obs::Counter* mine =
            registry.GetCounter("unique." + std::to_string(t));
        obs::Histogram* hist = registry.GetHistogram("latency_us");
        for (size_t i = 0; i < kIncrementsPerTask; ++i) {
          shared->Increment();
          if ((i & 1023) == 0) hist->Record(t);
        }
        mine->Add(t);
        // Re-registration must return the identical pointer.
        if (registry.GetCounter("unique." + std::to_string(t)) != mine) {
          ++g_failures;
        }
      }
    }, /*grain=*/1, threads);
    uint64_t shared_total = 0;
    for (size_t s = 0; s < 8; ++s) {
      shared_total +=
          registry.GetCounter("shared." + std::to_string(s))->value();
    }
    CHECK_EQ(shared_total, uint64_t{kTasks * kIncrementsPerTask});
    CHECK_EQ(registry.GetHistogram("latency_us")->count(),
             uint64_t{kTasks * (kIncrementsPerTask / 1024 + 1)});
    CHECK_EQ(registry.Snapshot().size(), size_t{8 + kTasks + 1});
  }
}

/// A name binds to its first kind; cross-kind lookups return nullptr.
void SelfTestKindBinding() {
  obs::MetricsRegistry registry;
  CHECK_TRUE(registry.GetCounter("x") != nullptr);
  CHECK_TRUE(registry.GetGauge("x") == nullptr);
  CHECK_TRUE(registry.GetHistogram("x") == nullptr);
  CHECK_TRUE(registry.GetGauge("y") != nullptr);
  CHECK_TRUE(registry.GetCounter("y") == nullptr);
  registry.GetCounter("x")->Add(7);
  registry.Reset();
  CHECK_EQ(registry.GetCounter("x")->value(), uint64_t{0});
}

/// Render formats stay parseable: sorted names, one metric per text line,
/// JSON array delimiters balanced.
void SelfTestRendering() {
  obs::MetricsRegistry registry;
  registry.GetCounter("b.count")->Add(2);
  registry.GetGauge("a.depth")->Set(-3);
  registry.GetHistogram("c.lat_us")->Record(100);
  auto snap = registry.Snapshot();
  CHECK_EQ(snap.size(), size_t{3});
  CHECK_TRUE(snap[0].name == "a.depth");
  CHECK_TRUE(snap[1].name == "b.count");
  CHECK_TRUE(snap[2].name == "c.lat_us");
  std::string text = registry.RenderText();
  CHECK_TRUE(text.find("a.depth gauge -3") != std::string::npos);
  CHECK_TRUE(text.find("b.count counter 2") != std::string::npos);
  std::string json = registry.RenderJson();
  CHECK_TRUE(json.find("\"name\": \"c.lat_us\"") != std::string::npos);
  CHECK_TRUE(json.front() == '[' || json.find('[') != std::string::npos);
}

int RunSelfTest() {
  SelfTestHistogramBuckets();
  SelfTestRegistryConcurrency();
  SelfTestKindBinding();
  SelfTestRendering();
  if (g_failures == 0) {
    std::printf("afmetrics --self-test: all checks passed\n");
    return 0;
  }
  std::fprintf(stderr, "afmetrics --self-test: %d check(s) FAILED\n",
               g_failures);
  return 1;
}

/// Populates the default registry with a real (tiny) probe workload so a
/// dump shows every af.* family live rather than an empty registry.
void RunDemoWorkload() {
  AgentFirstSystem db;
  (void)db.ExecuteSql(
      "CREATE TABLE sales (id BIGINT, region VARCHAR, amount DOUBLE)");
  for (int chunk = 0; chunk < 4; ++chunk) {
    std::string insert = "INSERT INTO sales VALUES ";
    for (int i = 0; i < 500; ++i) {
      int id = chunk * 500 + i;
      if (i > 0) insert += ",";
      insert += "(" + std::to_string(id) + ",'r" + std::to_string(id % 7) +
                "'," + std::to_string((id * 13) % 400) + ".0)";
    }
    (void)db.ExecuteSql(insert);
  }
  std::vector<Probe> probes;
  for (int p = 0; p < 4; ++p) {
    probes.push_back(
        ProbeBuilder("demo" + std::to_string(p))
            .Query("SELECT count(*), sum(amount) FROM sales WHERE amount > " +
                   std::to_string(p * 40))
            .Query("SELECT region, count(*) FROM sales GROUP BY region")
            .Brief("exploring the sales data; rough numbers are fine")
            .Build());
  }
  (void)db.HandleProbeBatch(probes);
  // Touch the shared pool so the af.pool.* family shows up even though the
  // demo tables are small enough to execute serially.
  ThreadPool::Default()->ParallelFor(0, 1 << 14, [](size_t, size_t) {},
                                     /*grain=*/256);
}

}  // namespace
}  // namespace agentfirst

int main(int argc, char** argv) {
  using namespace agentfirst;
  bool json = false;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
    } else {
      std::fprintf(stderr, "usage: afmetrics [--json | --self-test]\n");
      return 2;
    }
  }
  if (self_test) return RunSelfTest();
  RunDemoWorkload();
  std::string out = json ? obs::MetricsRegistry::Default().RenderJson()
                         : obs::MetricsRegistry::Default().RenderText();
  std::fputs(out.c_str(), stdout);
  if (!out.empty() && out.back() != '\n') std::fputc('\n', stdout);
  return 0;
}
