#!/usr/bin/env bash
# One-shot gate for the static-analysis toolchain plus tier-1:
#
#   1. aflint         — in-tree convention linter over src/ and tests/
#   2. afmetrics      — telemetry registry self-test (concurrency, histogram
#                       bucket math, render formats)
#   3. thread-safety  — clang -Wthread-safety -Werror=thread-safety build
#                       (skipped with a notice when clang++ is absent; the
#                       AF_* annotations compile to nothing under GCC, so a
#                       GCC build proves nothing about locking)
#   4. tier-1         — default build + full ctest suite
#
#   tools/check.sh              # all four stages
#   tools/check.sh --no-tests   # static stages only (fast pre-push)
#
# Exits non-zero on the first failing stage.

set -euo pipefail
cd "$(dirname "$0")/.."

run_tests=1
if [[ "${1:-}" == "--no-tests" ]]; then
  run_tests=0
fi

echo "=== [1/4] aflint ==="
# The lint rule engine is a plain C++ library; build just the CLI target so
# this stage stays fast even on a cold tree.
cmake -B build -S . > /dev/null
cmake --build build -j "$(nproc)" --target aflint > /dev/null
./build/tools/aflint --root . src tests
echo "aflint: clean"

echo "=== [2/4] afmetrics self-test ==="
cmake --build build -j "$(nproc)" --target afmetrics > /dev/null
./build/tools/afmetrics --self-test

echo "=== [3/4] clang thread-safety analysis ==="
if command -v clang++ > /dev/null 2>&1; then
  cmake -B build-tsafety -S . -DCMAKE_CXX_COMPILER=clang++ \
        -DAGENTFIRST_THREAD_SAFETY=ON > /dev/null
  cmake --build build-tsafety -j "$(nproc)"
  echo "thread-safety: clean"
else
  echo "thread-safety: SKIPPED (clang++ not found; install clang to check" \
       "the AF_GUARDED_BY/AF_REQUIRES annotations)"
fi

if [[ "$run_tests" == "1" ]]; then
  echo "=== [4/4] tier-1 build + tests ==="
  cmake --build build -j "$(nproc)"
  ctest --test-dir build --output-on-failure -j "$(nproc)"
else
  echo "=== [4/4] tier-1 tests skipped (--no-tests) ==="
fi

echo "check.sh: all stages passed"
