#!/usr/bin/env bash
# One-shot gate for the static-analysis toolchain plus tier-1:
#
#   1. aflint         — whole-program linter over src/, tests/, tools/, bench/:
#                       per-file rules, static lock-order deadlock analysis,
#                       and module layering against tools/layers.toml
#   2. findings       — machine-readable pipeline: `aflint --json` must be
#                       byte-stable across runs and diff clean against the
#                       checked-in tools/aflint_baseline.json
#   3. afmetrics      — telemetry registry self-test (concurrency, histogram
#                       bucket math, render formats)
#   4. thread-safety  — clang -Wthread-safety -Werror=thread-safety build
#                       (skipped with a notice when clang++ is absent; the
#                       AF_* annotations compile to nothing under GCC, so a
#                       GCC build proves nothing about locking)
#   5. tier-1         — default build + full ctest suite
#   6. net smoke      — TSan build of afserved + afprobe + the net tests:
#                       boots the server on an ephemeral loopback port,
#                       drives it with afprobe, then runs net_test and
#                       fuzz_wire_test under the same TSan build
#   7. vectorized     — row/vec parity + thread-count determinism under the
#                       same TSan build, then the bench smoke
#                       (bench_parallel_exec --quick), which fails if the
#                       vectorized path is ever slower than the row path
#   8. durability     — the WAL kill-and-recover torture (wal_test) under
#                       AddressSanitizer via tools/run_sanitized.sh: every
#                       injected crash site must recover to a committed
#                       prefix with no leaks or heap errors on the
#                       error/recovery paths
#   9. fleet smoke    — a 4-loop TSan afserved with admission quotas and
#                       token auth armed: authenticated pipelined smoke via
#                       afprobe, a rejected bad-token connect, then the
#                       bench_fleet --quick gate (shed integrity always;
#                       multi-loop-beats-single-loop on >=4 cores)
#  10. paged storage  — storage_test (pin storms, evict/fault byte-identity,
#                       eviction-vs-checkpoint races) under the same TSan
#                       build, then the bench_storage --quick gate: a
#                       10%-residency scan must be byte-identical to fully
#                       resident and must actually fault
#
#   tools/check.sh              # all ten stages
#   tools/check.sh --no-tests   # static stages only (fast pre-push)
#
# Exits non-zero on the first failing stage.

set -euo pipefail
cd "$(dirname "$0")/.."

run_tests=1
if [[ "${1:-}" == "--no-tests" ]]; then
  run_tests=0
fi

echo "=== [1/10] aflint ==="
# The lint rule engine is a plain C++ library; build just the CLI target so
# this stage stays fast even on a cold tree.
cmake -B build -S . > /dev/null
cmake --build build -j "$(nproc)" --target aflint > /dev/null
./build/tools/aflint --root . src tests tools bench
echo "aflint: clean"

echo "=== [2/10] aflint findings pipeline ==="
# Byte-stability: two runs over the same tree must produce identical JSON
# (sorted findings, fixed key order, content-addressed fingerprints).
json_a=$(mktemp)
json_b=$(mktemp)
./build/tools/aflint --root . --json src tests tools bench > "$json_a"
./build/tools/aflint --root . --json src tests tools bench > "$json_b"
cmp "$json_a" "$json_b"
rm -f "$json_a" "$json_b"
# Baseline gate: a finding whose fingerprint is missing from the checked-in
# baseline fails the stage. After deliberately accepting a finding, refresh
# with `aflint --root . --update-baseline src tests tools bench`.
./build/tools/aflint --root . --baseline tools/aflint_baseline.json \
    src tests tools bench
echo "findings: byte-stable, no new findings vs tools/aflint_baseline.json"

echo "=== [3/10] afmetrics self-test ==="
cmake --build build -j "$(nproc)" --target afmetrics > /dev/null
./build/tools/afmetrics --self-test

echo "=== [4/10] clang thread-safety analysis ==="
if command -v clang++ > /dev/null 2>&1; then
  cmake -B build-tsafety -S . -DCMAKE_CXX_COMPILER=clang++ \
        -DAGENTFIRST_THREAD_SAFETY=ON > /dev/null
  cmake --build build-tsafety -j "$(nproc)"
  echo "thread-safety: clean"
else
  echo "thread-safety: SKIPPED (clang++ not found; install clang to check" \
       "the AF_GUARDED_BY/AF_REQUIRES annotations)"
fi

if [[ "$run_tests" == "1" ]]; then
  echo "=== [5/10] tier-1 build + tests ==="
  cmake --build build -j "$(nproc)"
  ctest --test-dir build --output-on-failure -j "$(nproc)"
else
  echo "=== [5/10] tier-1 tests skipped (--no-tests) ==="
fi

if [[ "$run_tests" == "1" ]]; then
  echo "=== [6/10] networked service smoke (TSan) ==="
  cmake -B build-tsan -S . -DAGENTFIRST_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build build-tsan -j "$(nproc)" \
        --target afserve afprobe net_test fuzz_wire_test > /dev/null
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

  serve_log=$(mktemp)
  ./build-tsan/tools/afserve --demo > "$serve_log" 2>&1 &
  serve_pid=$!
  trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
  # The server prints "afserved listening on HOST:PORT" once bound; the port
  # is ephemeral, so parse it instead of hardcoding one.
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^afserved listening on .*:\([0-9][0-9]*\)$/\1/p' "$serve_log" | head -1)
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "afserved did not come up:" >&2
    cat "$serve_log" >&2
    exit 1
  fi
  ./build-tsan/tools/afprobe --connect "127.0.0.1:$port" \
      --sql "SELECT city, SUM(revenue) FROM stores JOIN sales ON stores.store_id = sales.store_id GROUP BY city ORDER BY city"
  kill "$serve_pid"
  wait "$serve_pid"
  trap - EXIT
  echo "--- afserved shut down cleanly; its af.net.* accounting:"
  grep "af.net." "$serve_log" || true

  ./build-tsan/tests/net_test
  ./build-tsan/tests/fuzz_wire_test
else
  echo "=== [6/10] net smoke skipped (--no-tests) ==="
fi

if [[ "$run_tests" == "1" ]]; then
  echo "=== [7/10] vectorized parity (TSan) + bench smoke ==="
  # Parity (row path == vec path, byte-identical) and determinism (same
  # answer at 1/2/4/8 threads) have to hold under TSan, or the batch
  # kernels' lock-free morsel claiming is wrong in a way plain runs can
  # miss. Reuses the stage-5 TSan build tree.
  cmake --build build-tsan -j "$(nproc)" \
        --target vectorized_exec_test parallel_determinism_test > /dev/null
  ./build-tsan/tests/vectorized_exec_test
  ./build-tsan/tests/parallel_determinism_test
  # Perf gate: the vectorized path must beat the row path on its own
  # workloads (scan+filter, hash join, aggregate); --quick exits non-zero
  # on any regression. Run from the default (unsanitized) build.
  cmake --build build -j "$(nproc)" --target bench_parallel_exec > /dev/null
  ./build/bench/bench_parallel_exec --quick
else
  echo "=== [7/10] vectorized parity + bench smoke skipped (--no-tests) ==="
fi

if [[ "$run_tests" == "1" ]]; then
  echo "=== [8/10] durability kill-and-recover torture (ASan) ==="
  # The whole wal_test suite — framing fuzz, group commit, and the
  # >=50-injection-point crash torture — under AddressSanitizer with leak
  # detection. The crash sites exercise every error/cleanup path in the
  # writer, checkpointer, and recoverer; ASan proves those paths release
  # what they allocate even when the "disk" fails mid-operation.
  tools/run_sanitized.sh address wal_test
else
  echo "=== [8/10] durability torture skipped (--no-tests) ==="
fi

if [[ "$run_tests" == "1" ]]; then
  echo "=== [9/10] fleet-scale serving smoke (TSan) + bench_fleet gate ==="
  # A sharded server with every fleet mechanism armed: 4 event loops,
  # admission quotas, and token auth. Reuses the stage-6 TSan build.
  cmake --build build-tsan -j "$(nproc)" --target afserve afprobe > /dev/null
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

  tokens_file=$(mktemp)
  printf '%s\n' '# check.sh fleet smoke' 'ck-t0ken smoke-tenant' \
      > "$tokens_file"
  fleet_log=$(mktemp)
  ./build-tsan/tools/afserve --demo --num-loops 4 \
      --tokens-file "$tokens_file" --max-concurrent 8 --max-queued 16 \
      --tenant-inflight 8 --tenant-bytes 1000000 > "$fleet_log" 2>&1 &
  fleet_pid=$!
  trap 'kill "$fleet_pid" 2>/dev/null || true' EXIT
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^afserved listening on .*:\([0-9][0-9]*\)$/\1/p' "$fleet_log" | head -1)
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "fleet afserved did not come up:" >&2
    cat "$fleet_log" >&2
    exit 1
  fi
  # Authenticated pipelined smoke: afprobe's client pipelines over one
  # connection; the probe passes the admission gate.
  ./build-tsan/tools/afprobe --addr "127.0.0.1:$port" --token ck-t0ken \
      --sql "SELECT COUNT(*) FROM stores"
  ./build-tsan/tools/afprobe --addr "127.0.0.1:$port" --token ck-t0ken \
      --probe "rough is fine | SELECT city, SUM(revenue) FROM stores JOIN sales ON stores.store_id = sales.store_id GROUP BY city"
  # A bad token must be refused at the handshake (kUnauthenticated).
  if ./build-tsan/tools/afprobe --addr "127.0.0.1:$port" --token wrong \
      --sql "SELECT 1" 2>/dev/null; then
    echo "fleet smoke: bad token was accepted" >&2
    exit 1
  fi
  echo "fleet smoke: bad token refused as expected"
  kill "$fleet_pid"
  wait "$fleet_pid"
  trap - EXIT
  rm -f "$tokens_file"
  echo "--- fleet afserved accounting (loops, admission, auth):"
  grep -E "af\.(net\.loop|net\.auth|admit)\." "$fleet_log" || true

  # The fleet bench gate, from the default (unsanitized) build: shed
  # integrity is checked unconditionally; the multi-loop-vs-single-loop
  # throughput gate arms itself only on >=4 cores (on fewer there is
  # nothing to shard onto, and the bench says so). A scratch JSON keeps
  # --quick numbers out of the checked-in BENCH_net.json.
  cmake --build build -j "$(nproc)" --target bench_fleet > /dev/null
  fleet_json=$(mktemp)
  ./build/bench/bench_fleet --quick "$fleet_json"
  rm -f "$fleet_json"
else
  echo "=== [9/10] fleet smoke + bench_fleet gate skipped (--no-tests) ==="
fi

if [[ "$run_tests" == "1" ]]; then
  echo "=== [10/10] paged storage (TSan) + bench_storage gate ==="
  # The buffer pool's evict/fault machinery under TSan: concurrent pin
  # storms, dirty write-back, and the eviction-races-checkpoint composition
  # test. Reuses the stage-6 TSan build tree.
  cmake --build build-tsan -j "$(nproc)" --target storage_test > /dev/null
  ./build-tsan/tests/storage_test
  # The residency gate, from the default (unsanitized) build: starved
  # residency must change nothing but speed, and must actually fault. A
  # scratch JSON keeps --quick numbers out of the checked-in
  # BENCH_parallel.json.
  cmake --build build -j "$(nproc)" --target bench_storage > /dev/null
  storage_json=$(mktemp)
  ./build/bench/bench_storage --quick "$storage_json"
  rm -f "$storage_json"
else
  echo "=== [10/10] paged storage + bench_storage gate skipped (--no-tests) ==="
fi

echo "check.sh: all stages passed"
