// afsh -- the agent-first shell. An interactive REPL over AgentFirstSystem:
// plain SQL executes directly; meta commands expose the agent-facing
// machinery (probes with briefs, semantic discovery, memory, branches).
//
//   ./build/tools/afsh                      # interactive, in-process
//   ./build/tools/afsh < file.sql           # scripted
//   ./build/tools/afsh --addr HOST:PORT     # start attached to an afserved
//   ./build/tools/afsh --addr H:P --token T # ... with a session token
//
// Exit codes match the other CLI tools: 0 success, 1 runtime/connect
// failure (for --addr given on the command line), 2 usage error.
//
// Meta commands:
//   \dt                       list tables
//   \tables                   per-table storage residency (resident/total
//                             bytes under the buffer pool)
//   \stats <table>            column statistics
//   \probe <brief> | <sql>    issue a probe with a brief (answers + hints)
//   \search <phrase>          semantic discovery over data + metadata
//   \memory [query]           list / search memory artifacts
//   \fork                     fork a branch of all branching-enabled tables
//   \branch <id> <sql>        run SQL in a hypothetical world
//   \merge <id>               merge a branch into main (source wins)
//   \rollback <id>            discard a branch
//   \import <table> <csv>     load a CSV (schema inferred as VARCHAR)
//   \export <table> <csv>     dump a table
//   \metrics                  probe-optimizer accounting
//   \demo                     load a small demo database
//   \connect host:port [tok]  attach to a running afserved (optional session
//                             token; defaults to --token); SQL, \probe,
//                             \search, \dt, \stats, \demo then go over the
//                             wire. On connect failure the shell stays on
//                             the in-process system.
//   \ping                     round-trip a PING through the active endpoint
//   \server                   who is answering (name, protocol, loops,
//                             tenant) — works in-process and remote
//   \disconnect               drop the connection, back to in-process
//   \q                        quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "net/remote_agent.h"
#include "common/str_util.h"
#include "core/system.h"
#include "catalog/csv.h"

namespace agentfirst {
namespace {

void PrintResult(const ResultSetPtr& rs) {
  if (rs == nullptr) return;
  std::printf("%s(%zu rows)\n", rs->ToString(40).c_str(), rs->NumRows());
}

void PrintResponse(const ProbeResponse& r) {
  std::printf("%s", r.ToString(20).c_str());
}

/// Runs the demo DDL/DML through whatever endpoint is active (in-process or
/// remote); branching is only enabled when the local system is the target.
void LoadDemo(ProbeService* svc, AgentFirstSystem* local_or_null) {
  const char* setup[] = {
      "CREATE TABLE stores (store_id BIGINT, city VARCHAR, state VARCHAR)",
      "INSERT INTO stores VALUES (1,'Berkeley','California'),"
      "(2,'Oakland','California'),(3,'Seattle','Washington')",
      "CREATE TABLE sales (sale_id BIGINT, store_id BIGINT, year BIGINT,"
      " revenue DOUBLE)",
      "INSERT INTO sales VALUES (1,1,2024,120.5),(2,1,2025,80.0),"
      "(3,2,2024,200.0),(4,2,2025,210.0),(5,3,2024,150.0),(6,3,2025,149.0)",
  };
  for (const char* sql : setup) {
    auto r = svc->ExecuteSql(sql);
    if (!r.ok()) {
      std::printf("demo setup failed: %s\n", r.status().ToString().c_str());
      return;
    }
  }
  if (local_or_null != nullptr) {
    (void)local_or_null->EnableBranching("stores");
    (void)local_or_null->EnableBranching("sales");
    std::printf(
        "demo loaded: stores (3 rows), sales (6 rows); branching enabled\n");
  } else {
    std::printf("demo loaded on the server: stores (3 rows), sales (6 rows)\n");
  }
}

/// Connects with the afsh identity and optional session token; prints the
/// server's ServiceInfo banner on success.
Result<std::unique_ptr<RemoteAgent>> ConnectRemote(const std::string& endpoint,
                                                   const std::string& token) {
  size_t colon = endpoint.rfind(':');
  int port = colon == std::string::npos
                 ? 0
                 : std::atoi(endpoint.c_str() + colon + 1);
  if (colon == std::string::npos || port <= 0 || port > 65535) {
    return Status::InvalidArgument("afsh: endpoint wants host:port, got '" +
                                   endpoint + "'");
  }
  net::Client::Options options;
  options.client_name = "afsh";
  options.token = token;
  AF_ASSIGN_OR_RETURN(auto remote,
                      RemoteAgent::Connect(endpoint.substr(0, colon),
                                           static_cast<uint16_t>(port),
                                           options));
  auto info = remote->ServerInfo();
  if (info.ok()) {
    std::printf("connected to %s (server: %s, protocol v%u, %u loop(s), "
                "tenant %s)\n",
                endpoint.c_str(), info->name.c_str(), info->protocol_version,
                info->num_loops, info->tenant.c_str());
  } else {
    std::printf("connected to %s (server info unavailable: %s)\n",
                endpoint.c_str(), info.status().ToString().c_str());
  }
  return remote;
}

int RunShell(const std::string& addr, const std::string& token) {
  AgentFirstSystem db;
  // When connected, probes and SQL go over the wire; commands that reach
  // into local subsystems (memory, branches, CSV import/export, optimizer
  // metrics) stay on the in-process system and say so.
  std::unique_ptr<RemoteAgent> remote;
  if (!addr.empty()) {
    auto attached = ConnectRemote(addr, token);
    if (!attached.ok()) {
      std::fprintf(stderr, "afsh: %s\n",
                   attached.status().ToString().c_str());
      return 1;
    }
    remote = std::move(*attached);
  }
  std::printf("afsh -- agent-first shell. \\q quits, \\demo loads sample data.\n");
  std::string line;
  while (true) {
    ProbeService* svc = remote != nullptr
                            ? static_cast<ProbeService*>(remote.get())
                            : static_cast<ProbeService*>(&db);
    std::fputs(remote != nullptr ? "afsh(remote)> " : "afsh> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;

    if (trimmed[0] != '\\') {
      auto r = svc->ExecuteSql(trimmed);
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
      } else {
        PrintResult(*r);
      }
      continue;
    }

    // Meta commands.
    std::istringstream in(trimmed);
    std::string cmd;
    in >> cmd;
    // Memory, branching, CSV, and optimizer accounting reach into local
    // subsystems that the wire protocol does not expose.
    bool local_only = cmd == "\\memory" || cmd == "\\fork" ||
                      cmd == "\\branch" || cmd == "\\merge" ||
                      cmd == "\\rollback" || cmd == "\\export" ||
                      cmd == "\\import" || cmd == "\\metrics" ||
                      cmd == "\\tables";
    if (local_only && remote != nullptr) {
      std::printf("%s is local-only; \\disconnect first\n", cmd.c_str());
      continue;
    }
    if (cmd == "\\q" || cmd == "\\quit") break;
    if (cmd == "\\demo") {
      LoadDemo(svc, remote == nullptr ? &db : nullptr);
    } else if (cmd == "\\connect") {
      std::string endpoint, session_token;
      in >> endpoint >> session_token;
      if (endpoint.empty()) {
        std::printf("usage: \\connect host:port [token]\n");
        continue;
      }
      auto attached = ConnectRemote(
          endpoint, session_token.empty() ? token : session_token);
      if (!attached.ok()) {
        std::printf("connect failed: %s\nstaying in-process\n",
                    attached.status().ToString().c_str());
      } else {
        remote = std::move(*attached);
      }
    } else if (cmd == "\\ping") {
      auto echoed = svc->Ping("afsh");
      if (!echoed.ok()) {
        std::printf("error: %s\n", echoed.status().ToString().c_str());
      } else {
        std::printf("pong (%s)\n",
                    remote != nullptr ? "remote" : "in-process");
      }
    } else if (cmd == "\\server") {
      auto info = svc->ServerInfo();
      if (!info.ok()) {
        std::printf("error: %s\n", info.status().ToString().c_str());
      } else {
        std::printf("  %s, protocol v%u, %u loop(s), tenant %s\n",
                    info->name.c_str(), info->protocol_version,
                    info->num_loops, info->tenant.c_str());
      }
    } else if (cmd == "\\disconnect") {
      if (remote == nullptr) {
        std::printf("not connected\n");
      } else {
        remote.reset();
        std::printf("disconnected; back to the in-process system\n");
      }
    } else if (cmd == "\\dt") {
      auto r = svc->ExecuteSql(
          "SELECT table_name, num_rows, num_columns FROM "
          "information_schema.tables ORDER BY table_name");
      if (r.ok()) PrintResult(*r);
    } else if (cmd == "\\tables") {
      std::printf("  %-20s %10s %8s %14s %14s %6s\n", "table", "rows",
                  "segments", "resident_bytes", "total_bytes", "res%");
      for (const std::string& name : db.catalog()->ListTables()) {
        auto t = db.catalog()->GetTable(name);
        if (!t.ok()) continue;
        uint64_t resident = (*t)->ResidentBytes();
        uint64_t total = (*t)->TotalBytes();
        double pct = total == 0 ? 100.0 : 100.0 * resident / total;
        std::printf("  %-20s %10zu %8zu %14llu %14llu %5.1f%%\n", name.c_str(),
                    (*t)->NumRows(), (*t)->NumSegments(),
                    static_cast<unsigned long long>(resident),
                    static_cast<unsigned long long>(total), pct);
      }
      if (db.paged()) {
        std::printf("  pool: %llu resident of %llu budget bytes\n",
                    static_cast<unsigned long long>(
                        db.buffer_pool()->ResidentBytes()),
                    static_cast<unsigned long long>(
                        db.buffer_pool()->max_table_bytes()));
      } else {
        std::printf("  (no buffer pool attached; all segments resident)\n");
      }
    } else if (cmd == "\\stats") {
      std::string table;
      in >> table;
      auto r = svc->ExecuteSql(
          "SELECT column_name, num_distinct, num_nulls, min_value, max_value, "
          "most_common_value FROM information_schema.column_stats WHERE "
          "table_name = '" + table + "'");
      if (!r.ok()) std::printf("error: %s\n", r.status().ToString().c_str());
      else PrintResult(*r);
    } else if (cmd == "\\probe") {
      std::string rest;
      std::getline(in, rest);
      size_t bar = rest.find('|');
      if (bar == std::string::npos) {
        std::printf("usage: \\probe <brief text> | <sql>\n");
        continue;
      }
      Probe probe;
      probe.agent_id = "shell";
      probe.brief.text = std::string(Trim(rest.substr(0, bar)));
      probe.queries = {std::string(Trim(rest.substr(bar + 1)))};
      auto r = svc->HandleProbe(probe);
      if (!r.ok()) std::printf("error: %s\n", r.status().ToString().c_str());
      else PrintResponse(*r);
    } else if (cmd == "\\search") {
      std::string phrase;
      std::getline(in, phrase);
      Probe probe;
      probe.semantic_search_phrase = std::string(Trim(phrase));
      auto r = svc->HandleProbe(probe);
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        continue;
      }
      for (const SemanticMatch& m : r->discoveries) {
        std::printf("  [%.2f] %s%s%s%s\n", m.score, m.table.c_str(),
                    m.column.empty() ? "" : ".", m.column.c_str(),
                    m.kind == SemanticMatch::Kind::kValue
                        ? (" = '" + m.text + "'").c_str()
                        : "");
      }
      if (r->discoveries.empty()) std::printf("  (no matches)\n");
    } else if (cmd == "\\memory") {
      std::string query;
      std::getline(in, query);
      std::string q(Trim(query));
      if (q.empty()) {
        std::printf("  %zu artifacts stored\n", db.memory()->size());
      } else {
        for (const MemoryHit& hit : db.memory()->Search(q, 5, "shell")) {
          std::printf("  [%.2f] (%s) %s: %s\n", hit.score,
                      ArtifactKindName(hit.artifact->kind),
                      hit.artifact->key.c_str(), hit.artifact->content.c_str());
        }
      }
    } else if (cmd == "\\fork") {
      auto b = db.branches()->Fork(BranchManager::kMainBranch);
      if (!b.ok()) std::printf("error: %s\n", b.status().ToString().c_str());
      else std::printf("forked branch %llu\n", static_cast<unsigned long long>(*b));
    } else if (cmd == "\\branch") {
      uint64_t id = 0;
      in >> id;
      std::string sql;
      std::getline(in, sql);
      auto r = db.QueryBranch(id, std::string(Trim(sql)));
      if (!r.ok()) std::printf("error: %s\n", r.status().ToString().c_str());
      else PrintResult(*r);
    } else if (cmd == "\\merge") {
      uint64_t id = 0;
      in >> id;
      auto r = db.branches()->Merge(id, BranchManager::kMainBranch,
                                    MergePolicy::kSourceWins);
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
      } else {
        std::printf("merged: %zu cells, %zu appended rows, %zu conflicts\n",
                    r->cells_applied, r->rows_appended, r->conflicts.size());
      }
    } else if (cmd == "\\rollback") {
      uint64_t id = 0;
      in >> id;
      auto s = db.branches()->Rollback(id);
      std::printf("%s\n", s.ok() ? "rolled back" : s.ToString().c_str());
    } else if (cmd == "\\export") {
      std::string table, path;
      in >> table >> path;
      auto t = db.catalog()->GetTable(table);
      if (!t.ok()) {
        std::printf("error: %s\n", t.status().ToString().c_str());
        continue;
      }
      auto s = ExportCsv(**t, path);
      std::printf("%s\n", s.ok() ? "exported" : s.ToString().c_str());
    } else if (cmd == "\\import") {
      std::string table, path;
      in >> table >> path;
      // Infer an all-VARCHAR schema from the header.
      std::ifstream file(path);
      std::string header;
      if (!file.good() || !std::getline(file, header)) {
        std::printf("error: cannot read %s\n", path.c_str());
        continue;
      }
      auto fields = ParseCsvLine(header);
      if (!fields.ok()) {
        std::printf("error: %s\n", fields.status().ToString().c_str());
        continue;
      }
      Schema schema;
      for (const std::string& col : *fields) {
        schema.AddColumn(ColumnDef(col, DataType::kString, true, table));
      }
      auto t = ImportCsv(db.catalog(), table, schema, path);
      if (!t.ok()) std::printf("error: %s\n", t.status().ToString().c_str());
      else std::printf("imported %zu rows\n", (*t)->NumRows());
    } else if (cmd == "\\metrics") {
      const ProbeOptimizer::Metrics& m = db.optimizer()->metrics();
      std::printf("  probes %llu | executed %llu | memory %llu | approx %llu | "
                  "skipped %llu\n",
                  static_cast<unsigned long long>(m.probes),
                  static_cast<unsigned long long>(m.queries_executed),
                  static_cast<unsigned long long>(m.queries_from_memory),
                  static_cast<unsigned long long>(m.queries_approximate),
                  static_cast<unsigned long long>(m.queries_skipped));
    } else {
      std::printf("unknown command %s\n", cmd.c_str());
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  std::string addr, token;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--addr") {
      addr = next();
    } else if (arg == "--token") {
      token = next();
    } else {
      std::fprintf(stderr, "usage: afsh [--addr HOST:PORT] [--token TOK]\n");
      return 2;
    }
  }
  return RunShell(addr, token);
}

}  // namespace
}  // namespace agentfirst

int main(int argc, char** argv) { return agentfirst::Main(argc, argv); }
