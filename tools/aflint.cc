// aflint — the in-tree source linter. Walks the given directories (default:
// src tests) and enforces the project conventions that neither the compiler
// nor TSan can check; see src/lint/lint.h for the rule catalog.
//
//   aflint [--root <repo-root>] [--list-rules] [dir|file ...]
//
// Exit codes: 0 = clean, 1 = violations found (one "file:line: error: ..."
// diagnostic per line on stdout), 2 = usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool IsLintableFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "aflint: --root needs a directory argument\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& rule : agentfirst::lint::RuleNames()) {
        std::cout << rule << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: aflint [--root <repo-root>] [--list-rules] "
                   "[dir|file ...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "aflint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) targets = {"src", "tests"};

  std::error_code ec;
  std::vector<fs::path> files;
  for (const std::string& target : targets) {
    fs::path full = root / target;
    if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
      continue;
    }
    if (!fs::is_directory(full, ec)) {
      std::cerr << "aflint: no such file or directory: " << full.string()
                << "\n";
      return 2;
    }
    for (fs::recursive_directory_iterator it(full, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        std::cerr << "aflint: error walking " << full.string() << ": "
                  << ec.message() << "\n";
        return 2;
      }
      if (it->is_regular_file() && IsLintableFile(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  size_t violations = 0;
  size_t scanned = 0;
  for (const fs::path& file : files) {
    std::string content;
    if (!ReadFile(file, &content)) {
      std::cerr << "aflint: cannot read " << file.string() << "\n";
      return 2;
    }
    ++scanned;
    // Rules key off repo-relative paths ("src/...", "tests/...").
    std::string rel = fs::relative(file, root, ec).generic_string();
    if (ec) rel = file.generic_string();
    for (const auto& diag : agentfirst::lint::LintSource(rel, content)) {
      std::cout << diag.ToString() << "\n";
      ++violations;
    }
  }
  std::fprintf(stderr, "aflint: %zu file(s) scanned, %zu violation(s)\n",
               scanned, violations);
  return violations == 0 ? 0 : 1;
}
