// aflint — the in-tree whole-program linter. Walks the given directories
// (default: src tests) and enforces the project conventions that neither the
// compiler nor TSan can check: the per-file rule catalog (src/lint/lint.h),
// static lock-order deadlock analysis (src/lint/lockorder.h), and module
// layering against tools/layers.toml (src/lint/layering.h).
//
//   aflint [--root <repo-root>] [--list-rules] [--json] [--rule=<name>]...
//          [--baseline <file>] [--update-baseline] [--layers <file>]
//          [dir|file ...]
//
//   --json             emit machine-readable findings (byte-stable JSON with
//                      per-finding fingerprints) on stdout instead of text
//   --rule=<name>      only report findings of this rule (repeatable)
//   --baseline <file>  findings whose fingerprint appears in the baseline
//                      are legacy: reported in the summary, not failing
//   --update-baseline  rewrite the baseline (default
//                      <root>/tools/aflint_baseline.json) to the current
//                      findings and exit 0
//   --layers <file>    layering spec (default <root>/tools/layers.toml;
//                      the layering pass is skipped if the default is absent)
//
// Exit codes: 0 = clean (no non-baselined findings), 1 = new violations
// (one "file:line: error: ..." diagnostic per line on stdout in text mode),
// 2 = usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/findings.h"
#include "lint/layering.h"
#include "lint/lint.h"
#include "lint/lockorder.h"
#include "lint/prelex.h"

namespace fs = std::filesystem;
namespace lint = agentfirst::lint;

namespace {

bool IsLintableFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path layers_file;
  fs::path baseline_file;
  bool json = false;
  bool update_baseline = false;
  std::set<std::string> rule_filter;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto needs_value = [&](const char* flag) -> bool {
      if (i + 1 >= argc) {
        std::cerr << "aflint: " << flag << " needs an argument\n";
        return false;
      }
      return true;
    };
    if (arg == "--root") {
      if (!needs_value("--root")) return 2;
      root = argv[++i];
    } else if (arg == "--layers") {
      if (!needs_value("--layers")) return 2;
      layers_file = argv[++i];
    } else if (arg == "--baseline") {
      if (!needs_value("--baseline")) return 2;
      baseline_file = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg.rfind("--rule=", 0) == 0) {
      std::string name = arg.substr(7);
      auto rules = lint::RuleNames();
      if (std::find(rules.begin(), rules.end(), name) == rules.end()) {
        std::cerr << "aflint: unknown rule '" << name
                  << "' (see --list-rules)\n";
        return 2;
      }
      rule_filter.insert(name);
    } else if (arg == "--list-rules") {
      for (const std::string& rule : lint::RuleNames()) {
        std::cout << rule << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: aflint [--root <repo-root>] [--list-rules] "
                   "[--json] [--rule=<name>]... [--baseline <file>] "
                   "[--update-baseline] [--layers <file>] [dir|file ...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "aflint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) targets = {"src", "tests"};
  bool layers_required = !layers_file.empty();
  if (layers_file.empty()) layers_file = root / "tools" / "layers.toml";
  if (baseline_file.empty() && update_baseline) {
    baseline_file = root / "tools" / "aflint_baseline.json";
  }

  std::error_code ec;
  std::vector<fs::path> files;
  for (const std::string& target : targets) {
    fs::path full = root / target;
    if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
      continue;
    }
    if (!fs::is_directory(full, ec)) {
      std::cerr << "aflint: no such file or directory: " << full.string()
                << "\n";
      return 2;
    }
    for (fs::recursive_directory_iterator it(full, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        std::cerr << "aflint: error walking " << full.string() << ": "
                  << ec.message() << "\n";
        return 2;
      }
      if (it->is_regular_file() && IsLintableFile(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // One pre-lex per file, shared by every pass.
  std::vector<lint::SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::string content;
    if (!ReadFile(file, &content)) {
      std::cerr << "aflint: cannot read " << file.string() << "\n";
      return 2;
    }
    // Rules key off repo-relative paths ("src/...", "tests/...").
    std::string rel = fs::relative(file, root, ec).generic_string();
    if (ec) rel = file.generic_string();
    sources.push_back({rel, lint::Prelex(content)});
  }

  std::vector<lint::Diagnostic> diags;
  for (const lint::SourceFile& sf : sources) {
    for (lint::Diagnostic& d : lint::LintPrelexed(sf.path, sf.pre)) {
      diags.push_back(std::move(d));
    }
  }
  for (lint::Diagnostic& d : lint::AnalyzeLockOrder(sources)) {
    diags.push_back(std::move(d));
  }
  if (fs::is_regular_file(layers_file, ec)) {
    std::string toml;
    if (!ReadFile(layers_file, &toml)) {
      std::cerr << "aflint: cannot read " << layers_file.string() << "\n";
      return 2;
    }
    lint::LayerSpec spec;
    std::string error;
    if (!lint::ParseLayersToml(toml, &spec, &error)) {
      std::cerr << "aflint: " << layers_file.string() << ": " << error << "\n";
      return 2;
    }
    std::string spec_rel = fs::relative(layers_file, root, ec).generic_string();
    if (ec) spec_rel = layers_file.generic_string();
    for (lint::Diagnostic& d : lint::CheckLayering(spec, spec_rel, sources)) {
      diags.push_back(std::move(d));
    }
  } else if (layers_required) {
    std::cerr << "aflint: no such layers file: " << layers_file.string()
              << "\n";
    return 2;
  }

  if (!rule_filter.empty()) {
    diags.erase(std::remove_if(diags.begin(), diags.end(),
                               [&](const lint::Diagnostic& d) {
                                 return rule_filter.count(d.rule) == 0;
                               }),
                diags.end());
  }

  std::map<std::string, const lint::PrelexedSource*> by_path;
  for (const lint::SourceFile& sf : sources) by_path[sf.path] = &sf.pre;
  std::vector<lint::Finding> findings = lint::BuildFindings(diags, by_path);

  if (update_baseline) {
    std::ofstream out(baseline_file, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "aflint: cannot write " << baseline_file.string() << "\n";
      return 2;
    }
    out << lint::EmitFindingsJson(findings);
    std::fprintf(stderr, "aflint: baseline %s updated with %zu finding(s)\n",
                 baseline_file.generic_string().c_str(), findings.size());
    return 0;
  }

  std::set<std::string> baseline;
  size_t stale_baseline = 0;
  if (!baseline_file.empty()) {
    std::string content;
    if (!ReadFile(baseline_file, &content)) {
      std::cerr << "aflint: cannot read baseline " << baseline_file.string()
                << "\n";
      return 2;
    }
    std::vector<lint::Finding> base;
    std::string error;
    if (!lint::ParseFindingsJson(content, &base, &error)) {
      std::cerr << "aflint: " << baseline_file.string() << ": " << error
                << "\n";
      return 2;
    }
    for (const lint::Finding& f : base) baseline.insert(f.fingerprint);
    std::set<std::string> current;
    for (const lint::Finding& f : findings) current.insert(f.fingerprint);
    for (const std::string& fp : baseline) {
      if (current.count(fp) == 0) ++stale_baseline;
    }
  }

  size_t fresh = 0;
  size_t legacy = 0;
  for (const lint::Finding& f : findings) {
    if (baseline.count(f.fingerprint) > 0) {
      ++legacy;
      continue;
    }
    ++fresh;
    if (!json) std::cout << f.diag.ToString() << "\n";
  }
  if (json) std::cout << lint::EmitFindingsJson(findings);

  std::fprintf(stderr, "aflint: %zu file(s) scanned, %zu violation(s)\n",
               sources.size(), fresh);
  if (!baseline.empty() || legacy > 0 || stale_baseline > 0) {
    std::fprintf(stderr,
                 "aflint: baseline: %zu legacy finding(s) tracked, %zu stale "
                 "entr%s (fixed — run --update-baseline)\n",
                 legacy, stale_baseline, stale_baseline == 1 ? "y" : "ies");
  }
  return fresh == 0 ? 0 : 1;
}
