// afserve -- serve an AgentFirstSystem over the afp wire protocol (TCP).
//
//   afserve                      # ephemeral loopback port, empty database
//   afserve --port 7070          # fixed port
//   afserve --host 0.0.0.0       # non-loopback bind (default 127.0.0.1)
//   afserve --demo               # preload the afsh demo tables
//   afserve --max-sessions 16    # concurrent agent session cap
//
// Prints exactly one line of the form
//
//   afserved listening on 127.0.0.1:43607
//
// to stdout once the listener is bound (scripts parse the port out of it —
// tools/check.sh does), then blocks until SIGINT or SIGTERM, shuts the
// server down cleanly (draining in-flight probes), and dumps the af.net.*
// metric family so a smoke run leaves evidence of what it served.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "core/system.h"
#include "net/server.h"
#include "obs/metrics.h"

namespace agentfirst {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*sig*/) { g_stop = 1; }

void LoadDemo(AgentFirstSystem* db) {
  const char* setup[] = {
      "CREATE TABLE stores (store_id BIGINT, city VARCHAR, state VARCHAR)",
      "INSERT INTO stores VALUES (1,'Berkeley','California'),"
      "(2,'Oakland','California'),(3,'Seattle','Washington')",
      "CREATE TABLE sales (sale_id BIGINT, store_id BIGINT, year BIGINT,"
      " revenue DOUBLE)",
      "INSERT INTO sales VALUES (1,1,2024,120.5),(2,1,2025,80.0),"
      "(3,2,2024,200.0),(4,2,2025,210.0),(5,3,2024,150.0),(6,3,2025,149.0)",
  };
  for (const char* sql : setup) {
    auto r = db->ExecuteSql(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "afserve: demo setup failed: %s\n",
                   r.status().ToString().c_str());
      return;
    }
  }
}

int Serve(int argc, char** argv) {
  net::ProbeServer::Options options;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--max-sessions") {
      options.max_sessions = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--demo") {
      demo = true;
    } else {
      std::fprintf(stderr,
                   "usage: afserve [--host H] [--port P] [--max-sessions N] "
                   "[--demo]\n");
      return 2;
    }
  }

  AgentFirstSystem db;
  if (demo) LoadDemo(&db);

  net::ProbeServer server(&db, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "afserve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("afserved listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    // The event loop runs inside ProbeServer; this thread only waits for a
    // shutdown signal (observed at most 50ms late).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "afserve: shutting down (%zu session(s) open)\n",
               server.NumSessions());
  server.Stop();

  // Leave a trace of what this process served.
  std::istringstream rendered(obs::MetricsRegistry::Default().RenderText());
  std::string line;
  while (std::getline(rendered, line)) {
    if (line.find("af.net.") != std::string::npos) {
      std::fprintf(stderr, "  %s\n", line.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace agentfirst

int main(int argc, char** argv) { return agentfirst::Serve(argc, argv); }
