// afserve -- serve an AgentFirstSystem over the afp wire protocol (TCP).
//
//   afserve                      # ephemeral loopback port, empty database
//   afserve --addr 0.0.0.0:7070  # bind address (HOST:PORT in one flag;
//                                # --host/--port remain as the split form)
//   afserve --num-loops 4        # event loops sessions are sharded across
//   afserve --demo               # preload the afsh demo tables
//   afserve --max-sessions 16    # concurrent agent session cap
//   afserve --tokens-file FILE   # token auth: each line "TOKEN TENANT"
//                                # (missing tenant = the token); HELLOs with
//                                # unknown tokens are rejected
//   afserve --max-concurrent N   # admission: global probe slots (0 = off)
//   afserve --max-queued N       # admission: bounded priority wait queue
//   afserve --tenant-inflight N  # admission: per-tenant concurrency quota
//   afserve --tenant-bytes N     # admission: per-tenant outstanding bytes
//   afserve --data-dir DIR       # durable: WAL + checkpoint under DIR;
//                                # restarting on the same DIR recovers all
//                                # previously acknowledged state
//   afserve --fsync MODE         # always | group_commit (default) | never
//   afserve --max-table-bytes N  # paged storage: byte budget across all
//                                # table segments; cold segments spill to
//                                # <data-dir>/pages and fault back on demand
//                                # (requires --data-dir)
//
// Prints exactly one line of the form
//
//   afserved listening on 127.0.0.1:43607
//
// to stdout once the listener is bound (scripts parse the port out of it —
// tools/check.sh does), then blocks until SIGINT or SIGTERM, shuts the
// server down cleanly (draining in-flight probes, then flushing + fsyncing
// + closing the WAL), and dumps the af.net.* / af.wal.* / af.storage.*
// metric families so a smoke run leaves evidence of what it served,
// persisted, and paged.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "core/system.h"
#include "net/server.h"
#include "obs/metrics.h"

namespace agentfirst {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*sig*/) { g_stop = 1; }

void LoadDemo(AgentFirstSystem* db) {
  const char* setup[] = {
      "CREATE TABLE stores (store_id BIGINT, city VARCHAR, state VARCHAR)",
      "INSERT INTO stores VALUES (1,'Berkeley','California'),"
      "(2,'Oakland','California'),(3,'Seattle','Washington')",
      "CREATE TABLE sales (sale_id BIGINT, store_id BIGINT, year BIGINT,"
      " revenue DOUBLE)",
      "INSERT INTO sales VALUES (1,1,2024,120.5),(2,1,2025,80.0),"
      "(3,2,2024,200.0),(4,2,2025,210.0),(5,3,2024,150.0),(6,3,2025,149.0)",
  };
  for (const char* sql : setup) {
    auto r = db->ExecuteSql(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "afserve: demo setup failed: %s\n",
                   r.status().ToString().c_str());
      return;
    }
  }
}

/// Loads "TOKEN TENANT" lines (missing tenant = the token itself; '#'
/// starts a comment) into the server's token map.
Status LoadTokensFile(const std::string& path,
                      std::map<std::string, std::string>* tokens) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("afserve: cannot read tokens file: " + path);
  }
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string token, tenant;
    if (!(fields >> token)) continue;  // blank / comment-only line
    if (!(fields >> tenant)) tenant = token;
    (*tokens)[token] = tenant;
  }
  if (tokens->empty()) {
    return Status::InvalidArgument(
        "afserve: tokens file has no tokens: " + path);
  }
  return Status::OK();
}

int Serve(int argc, char** argv) {
  net::ProbeServer::Options options;
  wal::DurabilityOptions durability;
  storage::StorageOptions paging;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--addr") {
      std::string addr = next();
      size_t colon = addr.rfind(':');
      int port = colon == std::string::npos
                     ? 0
                     : std::atoi(addr.c_str() + colon + 1);
      if (colon == std::string::npos || port <= 0 || port > 65535) {
        std::fprintf(stderr, "afserve: --addr wants HOST:PORT, got '%s'\n",
                     addr.c_str());
        return 2;
      }
      options.host = addr.substr(0, colon);
      options.port = static_cast<uint16_t>(port);
    } else if (arg == "--num-loops") {
      options.num_loops = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--max-sessions") {
      options.max_sessions = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--tokens-file") {
      Status loaded = LoadTokensFile(next(), &options.tokens);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
        return 1;
      }
    } else if (arg == "--max-concurrent") {
      options.admission.max_concurrent = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--max-queued") {
      options.admission.max_queued = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--tenant-inflight") {
      options.admission.max_inflight_per_tenant =
          static_cast<size_t>(std::atol(next()));
    } else if (arg == "--tenant-bytes") {
      options.admission.max_outstanding_bytes_per_tenant =
          static_cast<size_t>(std::atol(next()));
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--data-dir") {
      durability.data_dir = next();
    } else if (arg == "--max-table-bytes") {
      paging.max_table_bytes = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--fsync") {
      std::string mode = next();
      if (mode == "always") {
        durability.fsync = wal::FsyncPolicy::kAlways;
      } else if (mode == "group_commit") {
        durability.fsync = wal::FsyncPolicy::kGroupCommit;
      } else if (mode == "never") {
        durability.fsync = wal::FsyncPolicy::kNever;
      } else {
        std::fprintf(stderr, "afserve: unknown --fsync mode '%s'\n",
                     mode.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: afserve [--addr H:P | --host H --port P] "
                   "[--num-loops N] [--max-sessions N] [--tokens-file FILE] "
                   "[--max-concurrent N] [--max-queued N] "
                   "[--tenant-inflight N] [--tenant-bytes N] [--demo] "
                   "[--data-dir DIR] [--fsync always|group_commit|never] "
                   "[--max-table-bytes N]\n");
      return 2;
    }
  }

  AgentFirstSystem db;
  if (!durability.data_dir.empty()) {
    // Recover-then-log: must run before --demo seeds any tables. A branch
    // verdict (kFailedPrecondition) is a warning, not a startup failure —
    // recovery itself succeeded and nothing was lost silently.
    Status durable = db.EnableDurability(durability);
    if (!durable.ok()) {
      if (durable.code() == StatusCode::kFailedPrecondition &&
          db.durable()) {
        std::fprintf(stderr, "afserve: %s\n", durable.ToString().c_str());
      } else {
        std::fprintf(stderr, "afserve: %s\n", durable.ToString().c_str());
        return 1;
      }
    }
    const auto& report = db.recovery_report();
    std::fprintf(stderr,
                 "afserve: recovered %s (checkpoint %s, %llu record(s) "
                 "replayed, %llu torn byte(s) truncated)\n",
                 durability.data_dir.c_str(),
                 report.checkpoint_loaded ? "loaded" : "absent",
                 static_cast<unsigned long long>(report.records_replayed),
                 static_cast<unsigned long long>(report.torn_bytes_truncated));
  }
  if (paging.max_table_bytes > 0) {
    if (durability.data_dir.empty()) {
      std::fprintf(stderr,
                   "afserve: --max-table-bytes requires --data-dir (the page "
                   "file lives under it)\n");
      return 2;
    }
    // After recovery: freshly recovered segments register with the pool and
    // become pageable immediately.
    paging.dir = durability.data_dir + "/pages";
    Status paged = db.EnableStorage(paging);
    if (!paged.ok()) {
      std::fprintf(stderr, "afserve: %s\n", paged.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "afserve: paged storage on (budget %llu bytes, pages under "
                 "%s)\n",
                 static_cast<unsigned long long>(paging.max_table_bytes),
                 paging.dir.c_str());
  }
  // Demo tables are skipped when recovery already rebuilt a database: the
  // second boot's CREATE TABLE would otherwise collide with the first's.
  if (demo && db.catalog()->NumTables() == 0) LoadDemo(&db);

  net::ProbeServer server(&db, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "afserve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("afserved listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fprintf(stderr,
               "afserve: %zu event loop(s), %zu token(s), admission "
               "slots=%zu queue=%zu tenant-inflight=%zu tenant-bytes=%zu "
               "(0 = unlimited)\n",
               server.NumLoops(), options.tokens.size(),
               options.admission.max_concurrent, options.admission.max_queued,
               options.admission.max_inflight_per_tenant,
               options.admission.max_outstanding_bytes_per_tenant);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    // The event loop runs inside ProbeServer; this thread only waits for a
    // shutdown signal (observed at most 50ms late).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "afserve: shutting down (%zu session(s) open)\n",
               server.NumSessions());
  server.Stop();
  if (db.durable()) {
    // Flush + fsync + close the WAL after the last session drained, so a
    // SIGTERM'd server restarted on the same --data-dir loses nothing.
    Status closed = db.CloseDurability();
    if (!closed.ok()) {
      std::fprintf(stderr, "afserve: wal close failed: %s\n",
                   closed.ToString().c_str());
      return 1;
    }
  }

  // Leave a trace of what this process served (and persisted).
  std::istringstream rendered(obs::MetricsRegistry::Default().RenderText());
  std::string line;
  while (std::getline(rendered, line)) {
    if (line.find("af.net.") != std::string::npos ||
        line.find("af.admit.") != std::string::npos ||
        line.find("af.wal.") != std::string::npos ||
        line.find("af.storage.") != std::string::npos) {
      std::fprintf(stderr, "  %s\n", line.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace agentfirst

int main(int argc, char** argv) { return agentfirst::Serve(argc, argv); }
