#include "io/file_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"

namespace agentfirst {
namespace io {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(std::string("io: ") + op + " failed for " + path +
                          ": " + std::strerror(errno));
}

/// Directory fsync after a rename, so the new name itself is durable.
Status SyncDirOf(const std::string& path) {
  AF_FAULT_POINT("io.dir.fsync");
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("opendir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsyncdir", dir);
  return Status::OK();
}

}  // namespace

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File::File(File&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<File> File::OpenForAppend(const std::string& path) {
  AF_FAULT_POINT("io.file.open");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open(append)", path);
  return File(fd);
}

Result<File> File::OpenForWrite(const std::string& path) {
  AF_FAULT_POINT("io.file.open");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open(write)", path);
  return File(fd);
}

Result<File> File::OpenForReadWrite(const std::string& path) {
  AF_FAULT_POINT("io.file.open");
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open(rw)", path);
  return File(fd);
}

Result<File> File::OpenForUpdate(const std::string& path) {
  AF_FAULT_POINT("io.file.open");
  int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return Errno("open(update)", path);
  return File(fd);
}

Result<std::string> File::ReadAt(uint64_t offset, size_t n) const {
  if (fd_ < 0) return Status::Internal("io: pread on closed file");
  AF_FAULT_POINT("io.page.read");
  std::string out;
  out.resize(n);
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, &out[done], n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", "fd");
    }
    if (r == 0) {
      return Status::Internal("io: short pread at offset " +
                              std::to_string(offset));
    }
    done += static_cast<size_t>(r);
  }
  return out;
}

Status File::WriteAt(uint64_t offset, std::string_view data) {
  if (fd_ < 0) return Status::Internal("io: pwrite on closed file");
  AF_FAULT_POINT("io.page.write");
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::pwrite(fd_, data.data() + written, data.size() - written,
                         static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite", "fd");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status File::WriteAll(std::string_view data) {
  if (fd_ < 0) return Status::Internal("io: write on closed file");
  size_t written = 0;
  while (written < data.size()) {
    size_t want = data.size() - written;
    // A short-write fault truncates this write() mid-buffer and reports
    // failure — the bytes that landed stay in the file, producing the torn
    // tail recovery must detect. One hit per write() call keeps the
    // (seed, site, hit) schedule aligned with record count.
    Status torn = AF_FAULT_STATUS("io.file.short_write");
    if (!torn.ok()) {
      if (want > 1) (void)::write(fd_, data.data() + written, want / 2);
      return torn;
    }
    AF_FAULT_POINT("io.file.write");
    ssize_t n = ::write(fd_, data.data() + written, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", "fd");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status File::Sync() {
  if (fd_ < 0) return Status::Internal("io: fsync on closed file");
  AF_FAULT_POINT("io.file.fsync");
  if (::fsync(fd_) != 0) return Errno("fsync", "fd");
  return Status::OK();
}

Status File::Truncate(uint64_t size) {
  if (fd_ < 0) return Status::Internal("io: truncate on closed file");
  AF_FAULT_POINT("io.file.truncate");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", "fd");
  }
  return Status::OK();
}

Status File::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", "fd");
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  AF_FAULT_POINT("io.file.read");
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("io: no such file: " + path);
    return Errno("open(read)", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  AF_ASSIGN_OR_RETURN(File f, File::OpenForWrite(tmp));
  Status written = f.WriteAll(data);
  if (written.ok()) written = f.Sync();
  if (written.ok()) written = f.Close();
  if (!written.ok()) {
    (void)f.Close();             // fd cleanup; the close status is secondary
    (void)RemoveFile(tmp);       // best-effort: a stale .tmp is harmless
    return written;
  }
  AF_RETURN_IF_ERROR(RenameFile(tmp, path));
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("io: no such file: " + path);
    return Errno("stat", path);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  AF_FAULT_POINT("io.file.rename");
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return SyncDirOf(to);
}

Status CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::OK();
  std::string accum;
  size_t i = 0;
  if (path[0] == '/') accum = "/";
  while (i < path.size()) {
    size_t next = path.find('/', i);
    if (next == std::string::npos) next = path.size();
    if (next > i) {
      if (!accum.empty() && accum.back() != '/') accum += '/';
      accum += path.substr(i, next - i);
      if (::mkdir(accum.c_str(), 0755) != 0 && errno != EEXIST) {
        return Errno("mkdir", accum);
      }
    }
    i = next + 1;
  }
  return Status::OK();
}

}  // namespace io
}  // namespace agentfirst
