#ifndef AGENTFIRST_IO_FILE_UTIL_H_
#define AGENTFIRST_IO_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace agentfirst {
namespace io {

/// The one place in the tree (with src/wal/) allowed to make raw file
/// syscalls — everything else goes through these helpers (enforced by the
/// aflint `raw-file-io` rule). Each operation carries an AF_FAULT_POINT site
/// (io.file.open / write / short_write / fsync / rename / read / truncate)
/// so crash-torture tests can fail any step deterministically.
///
/// A writable file handle. Move-only; the destructor closes without syncing
/// (a deliberate crash-consistency stance: durability is only claimed after
/// an explicit Sync()).
class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens (creating if needed) for appending at the end.
  static Result<File> OpenForAppend(const std::string& path);
  /// Opens (creating, truncating) for writing from the start.
  static Result<File> OpenForWrite(const std::string& path);
  /// Opens (creating, truncating) for positional read/write — the page-file
  /// handle used by the buffer pool's SegmentStore. Truncation is deliberate:
  /// the page file is a spill cache, never a source of truth, so it starts
  /// empty on every open.
  static Result<File> OpenForReadWrite(const std::string& path);
  /// Opens an existing file for positional read/write without truncating —
  /// in-place surgery on a file some other handle also has open (corruption
  /// injection in tests, torn-tail repair).
  static Result<File> OpenForUpdate(const std::string& path);

  bool open() const { return fd_ >= 0; }

  /// pread(2): reads exactly `n` bytes at `offset`. Fails on short reads —
  /// a page read that runs off the end of the file means cache corruption.
  /// Fault site: io.page.read.
  Result<std::string> ReadAt(uint64_t offset, size_t n) const;

  /// pwrite(2): writes all of `data` at `offset`, looping over partial
  /// writes. Fault site: io.page.write.
  Status WriteAt(uint64_t offset, std::string_view data);

  /// Writes all of `data`, looping over partial writes. A short write cut
  /// off by an injected fault leaves a genuinely torn file — exactly the
  /// torn-tail state recovery must tolerate.
  Status WriteAll(std::string_view data);

  /// fsync(2): the durability barrier.
  Status Sync();

  /// Truncates to `size` bytes (used to drop a torn WAL tail in place).
  Status Truncate(uint64_t size);

  /// Closes the descriptor. Idempotent; returns the close(2) status once.
  Status Close();

 private:
  explicit File(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Reads the whole file into a string. NotFound when absent.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path` via temp file + fsync + rename(2) — the atomic
/// publish used for checkpoints: readers see the old file or the new one,
/// never a prefix. The containing directory is fsynced after the rename so
/// the name survives a crash too.
Status WriteFileAtomic(const std::string& path, std::string_view data);

bool FileExists(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);
Status RemoveFile(const std::string& path);
/// rename(2) within one filesystem; fsyncs the destination directory.
Status RenameFile(const std::string& from, const std::string& to);
/// mkdir -p. OK when the directory already exists.
Status CreateDirectories(const std::string& path);

}  // namespace io
}  // namespace agentfirst

#endif  // AGENTFIRST_IO_FILE_UTIL_H_
