#ifndef AGENTFIRST_WORKLOAD_MINIBIRD_H_
#define AGENTFIRST_WORKLOAD_MINIBIRD_H_

#include <memory>
#include <string>
#include <vector>

// aflint:allow(layer-back-edge) MiniBird is the end-to-end benchmark: it
// drives a whole AgentFirstSystem by construction. core/ never includes
// workload/, so the edge stays acyclic; every other workload/ file sits
// below core/ as declared.
#include "core/system.h"
#include "exec/result_set.h"

namespace agentfirst {

/// One benchmark task: a natural-language question with a gold SQL query and
/// its gold answer, plus the grounding an agent must discover to solve it.
/// "MiniBird" is the offline stand-in for the BIRD text2SQL benchmark used
/// by the paper's case studies (see DESIGN.md, substitutions).
struct TaskSpec {
  std::string id;
  std::string question;
  std::string gold_sql;
  ResultSetPtr gold_answer;

  /// Tables/columns the agent must know about to formulate the solution.
  std::vector<std::string> relevant_tables;
  std::vector<std::string> relevant_columns;  // "table.column"

  /// Non-empty when the question uses a different value encoding than the
  /// data (the paper's "CA" vs "California" trap). The text is the hint a
  /// human expert (or the why-not sleeper agent) would give.
  std::string encoding_note;
  /// The literal as the question phrases it vs. as the data stores it.
  std::string question_value;
  std::string stored_value;
  /// Column holding the tricky value, as "table.column".
  std::string encoded_column;

  int difficulty = 1;  // 1 (one table, clean) .. 4 (joins + tricky encoding)
};

/// One generated database plus its tasks.
struct MiniBirdDatabase {
  std::string name;
  std::string domain;  // "retail", "web", "flights"
  std::unique_ptr<AgentFirstSystem> system;
  std::vector<TaskSpec> tasks;
};

struct MiniBirdOptions {
  size_t num_databases = 6;
  size_t rows_per_fact_table = 4000;
  size_t rows_per_dim_table = 64;
  uint64_t seed = 20260706;
  AgentFirstSystem::Options system_options;
};

/// Generates the full benchmark suite: seeded, deterministic, offline.
/// Every task's gold answer is computed by executing the gold SQL.
std::vector<MiniBirdDatabase> GenerateMiniBird(const MiniBirdOptions& options);

/// Multiset row equality between two results (order-insensitive), the
/// correctness check used by the agent-in-charge / harness.
bool ResultsEquivalent(const ResultSet& a, const ResultSet& b);

}  // namespace agentfirst

#endif  // AGENTFIRST_WORKLOAD_MINIBIRD_H_
