#include "workload/minibird.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/rng.h"

namespace agentfirst {

namespace {

struct StateName {
  const char* full;
  const char* abbrev;
};

constexpr StateName kStates[] = {
    {"California", "CA"}, {"New York", "NY"},   {"Texas", "TX"},
    {"Washington", "WA"}, {"Oregon", "OR"},     {"Florida", "FL"},
    {"Illinois", "IL"},   {"Massachusetts", "MA"},
};

constexpr const char* kCities[] = {"Berkeley",  "Oakland", "Seattle", "Austin",
                                   "Portland",  "Boston",  "Chicago", "Miami",
                                   "New York",  "Dallas"};
constexpr const char* kRegions[] = {"west", "east", "central", "south"};
constexpr const char* kCategories[] = {"coffee beans", "tea",      "espresso machines",
                                       "mugs",         "grinders", "filters"};
constexpr const char* kCountries[] = {"Germany", "France", "Brazil", "Japan",
                                      "Canada",  "India"};
constexpr const char* kTopics[] = {"coffee", "travel", "music", "sports",
                                   "movies", "cooking"};
constexpr const char* kAirports[] = {"SFO", "JFK", "SEA", "AUS", "ORD", "BOS"};
constexpr const char* kStatuses[] = {"on_time", "delayed", "cancelled"};
constexpr const char* kRoles[] = {"captain", "first_officer", "attendant"};

Schema MakeSchema(const std::string& table,
                  std::initializer_list<std::pair<const char*, DataType>> cols) {
  Schema s;
  for (const auto& [name, type] : cols) {
    s.AddColumn(ColumnDef(name, type, true, table));
  }
  return s;
}

void MustAppend(Table* t, Row row) { AF_CHECK(t->AppendRow(row).ok()); }

// ---------------------------------------------------------------------------
// Domain builders
// ---------------------------------------------------------------------------

void BuildRetail(AgentFirstSystem* system, Rng* rng, size_t fact_rows,
                 size_t dim_rows) {
  Catalog* catalog = system->catalog();
  auto stores = *catalog->CreateTable(
      "stores", MakeSchema("stores", {{"store_id", DataType::kInt64},
                                      {"city", DataType::kString},
                                      {"state", DataType::kString},
                                      {"region", DataType::kString}}));
  size_t num_states = std::size(kStates);
  for (size_t i = 0; i < dim_rows; ++i) {
    MustAppend(stores.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::String(kCities[rng->NextUint(std::size(kCities))]),
                Value::String(kStates[i % num_states].full),
                Value::String(kRegions[rng->NextUint(std::size(kRegions))])});
  }
  auto products = *catalog->CreateTable(
      "products", MakeSchema("products", {{"product_id", DataType::kInt64},
                                          {"category", DataType::kString},
                                          {"name", DataType::kString},
                                          {"price", DataType::kFloat64}}));
  for (size_t i = 0; i < dim_rows; ++i) {
    const char* cat = kCategories[i % std::size(kCategories)];
    MustAppend(products.get(),
               {Value::Int(static_cast<int64_t>(i)), Value::String(cat),
                Value::String(std::string(cat) + " #" + std::to_string(i)),
                Value::Double(2.0 + rng->NextDouble() * 98.0)});
  }
  auto sales = *catalog->CreateTable(
      "sales", MakeSchema("sales", {{"sale_id", DataType::kInt64},
                                    {"store_id", DataType::kInt64},
                                    {"product_id", DataType::kInt64},
                                    {"year", DataType::kInt64},
                                    {"month", DataType::kInt64},
                                    {"quantity", DataType::kInt64},
                                    {"revenue", DataType::kFloat64}}));
  for (size_t i = 0; i < fact_rows; ++i) {
    int64_t qty = rng->NextInt(1, 20);
    MustAppend(sales.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::Int(static_cast<int64_t>(rng->NextZipf(dim_rows, 0.5))),
                Value::Int(static_cast<int64_t>(rng->NextZipf(dim_rows, 0.8))),
                Value::Int(rng->NextBool(0.6) ? 2025 : 2024),
                Value::Int(rng->NextInt(1, 12)), Value::Int(qty),
                Value::Double(static_cast<double>(qty) *
                              (2.0 + rng->NextDouble() * 48.0))});
  }
}

void BuildWeb(AgentFirstSystem* system, Rng* rng, size_t fact_rows,
              size_t dim_rows) {
  Catalog* catalog = system->catalog();
  auto users = *catalog->CreateTable(
      "users", MakeSchema("users", {{"user_id", DataType::kInt64},
                                    {"name", DataType::kString},
                                    {"country", DataType::kString},
                                    {"signup_year", DataType::kInt64}}));
  for (size_t i = 0; i < dim_rows; ++i) {
    MustAppend(users.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::String("user_" + std::to_string(i)),
                Value::String(kCountries[rng->NextUint(std::size(kCountries))]),
                Value::Int(rng->NextInt(2015, 2025))});
  }
  auto posts = *catalog->CreateTable(
      "posts", MakeSchema("posts", {{"post_id", DataType::kInt64},
                                    {"user_id", DataType::kInt64},
                                    {"topic", DataType::kString},
                                    {"upvotes", DataType::kInt64}}));
  for (size_t i = 0; i < fact_rows; ++i) {
    MustAppend(posts.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::Int(static_cast<int64_t>(rng->NextZipf(dim_rows, 0.7))),
                Value::String(kTopics[rng->NextUint(std::size(kTopics))]),
                Value::Int(rng->NextInt(0, 500))});
  }
  auto interactions = *catalog->CreateTable(
      "interactions", MakeSchema("interactions", {{"user_id", DataType::kInt64},
                                                  {"post_id", DataType::kInt64},
                                                  {"action", DataType::kString}}));
  constexpr const char* kActions[] = {"view", "upvote", "share"};
  for (size_t i = 0; i < fact_rows / 2; ++i) {
    MustAppend(interactions.get(),
               {Value::Int(static_cast<int64_t>(rng->NextUint(dim_rows))),
                Value::Int(static_cast<int64_t>(rng->NextUint(fact_rows))),
                Value::String(kActions[rng->NextUint(std::size(kActions))])});
  }
}

void BuildFlights(AgentFirstSystem* system, Rng* rng, size_t fact_rows,
                  size_t dim_rows) {
  Catalog* catalog = system->catalog();
  auto flights = *catalog->CreateTable(
      "flights", MakeSchema("flights", {{"flight_id", DataType::kInt64},
                                        {"origin", DataType::kString},
                                        {"dest", DataType::kString},
                                        {"day", DataType::kInt64},
                                        {"status", DataType::kString}}));
  for (size_t i = 0; i < fact_rows / 4; ++i) {
    size_t o = rng->NextUint(std::size(kAirports));
    size_t d = (o + 1 + rng->NextUint(std::size(kAirports) - 1)) % std::size(kAirports);
    double roll = rng->NextDouble();
    const char* status = roll < 0.78 ? kStatuses[0] : (roll < 0.95 ? kStatuses[1] : kStatuses[2]);
    MustAppend(flights.get(),
               {Value::Int(static_cast<int64_t>(i)), Value::String(kAirports[o]),
                Value::String(kAirports[d]), Value::Int(rng->NextInt(1, 365)),
                Value::String(status)});
  }
  auto crew = *catalog->CreateTable(
      "crew", MakeSchema("crew", {{"crew_id", DataType::kInt64},
                                  {"name", DataType::kString},
                                  {"role", DataType::kString},
                                  {"base", DataType::kString}}));
  for (size_t i = 0; i < dim_rows; ++i) {
    MustAppend(crew.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::String("crew_" + std::to_string(i)),
                Value::String(kRoles[rng->NextUint(std::size(kRoles))]),
                Value::String(kAirports[rng->NextUint(std::size(kAirports))])});
  }
  auto assignments = *catalog->CreateTable(
      "assignments", MakeSchema("assignments", {{"flight_id", DataType::kInt64},
                                                {"crew_id", DataType::kInt64}}));
  for (size_t i = 0; i < fact_rows / 2; ++i) {
    MustAppend(assignments.get(),
               {Value::Int(static_cast<int64_t>(rng->NextUint(fact_rows / 4))),
                Value::Int(static_cast<int64_t>(rng->NextUint(dim_rows)))});
  }
}

void BuildHealthcare(AgentFirstSystem* system, Rng* rng, size_t fact_rows,
                     size_t dim_rows) {
  Catalog* catalog = system->catalog();
  constexpr const char* kDepartments[] = {"cardiology", "oncology", "pediatrics",
                                          "radiology", "emergency"};
  constexpr const char* kSeverities[] = {"routine", "urgent", "critical"};
  auto patients = *catalog->CreateTable(
      "patients", MakeSchema("patients", {{"patient_id", DataType::kInt64},
                                          {"name", DataType::kString},
                                          {"birth_year", DataType::kInt64},
                                          {"insurer", DataType::kString}}));
  constexpr const char* kInsurers[] = {"Blue Shield", "Kaiser", "Aetna", "None"};
  for (size_t i = 0; i < dim_rows; ++i) {
    MustAppend(patients.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::String("patient_" + std::to_string(i)),
                Value::Int(rng->NextInt(1940, 2020)),
                Value::String(kInsurers[rng->NextUint(std::size(kInsurers))])});
  }
  auto visits = *catalog->CreateTable(
      "visits", MakeSchema("visits", {{"visit_id", DataType::kInt64},
                                      {"patient_id", DataType::kInt64},
                                      {"department", DataType::kString},
                                      {"severity", DataType::kString},
                                      {"cost", DataType::kFloat64}}));
  for (size_t i = 0; i < fact_rows / 2; ++i) {
    double roll = rng->NextDouble();
    const char* severity =
        roll < 0.6 ? kSeverities[0] : (roll < 0.9 ? kSeverities[1] : kSeverities[2]);
    MustAppend(visits.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::Int(static_cast<int64_t>(rng->NextZipf(dim_rows, 0.6))),
                Value::String(kDepartments[rng->NextUint(std::size(kDepartments))]),
                Value::String(severity),
                Value::Double(100.0 + rng->NextDouble() * 900.0)});
  }
}

void BuildFinance(AgentFirstSystem* system, Rng* rng, size_t fact_rows,
                  size_t dim_rows) {
  Catalog* catalog = system->catalog();
  constexpr const char* kSectors[] = {"technology", "energy", "healthcare",
                                      "finance", "consumer"};
  auto accounts = *catalog->CreateTable(
      "accounts", MakeSchema("accounts", {{"account_id", DataType::kInt64},
                                          {"holder", DataType::kString},
                                          {"tier", DataType::kString},
                                          {"balance", DataType::kFloat64}}));
  constexpr const char* kTiers[] = {"basic", "premium", "institutional"};
  for (size_t i = 0; i < dim_rows; ++i) {
    MustAppend(accounts.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::String("holder_" + std::to_string(i)),
                Value::String(kTiers[rng->NextUint(std::size(kTiers))]),
                Value::Double(rng->NextDouble() * 100000.0)});
  }
  auto trades = *catalog->CreateTable(
      "trades", MakeSchema("trades", {{"trade_id", DataType::kInt64},
                                      {"account_id", DataType::kInt64},
                                      {"sector", DataType::kString},
                                      {"side", DataType::kString},
                                      {"notional", DataType::kFloat64}}));
  for (size_t i = 0; i < fact_rows; ++i) {
    MustAppend(trades.get(),
               {Value::Int(static_cast<int64_t>(i)),
                Value::Int(static_cast<int64_t>(rng->NextZipf(dim_rows, 0.7))),
                Value::String(kSectors[rng->NextUint(std::size(kSectors))]),
                Value::String(rng->NextBool(0.55) ? "buy" : "sell"),
                Value::Double(10.0 + rng->NextDouble() * 9990.0)});
  }
}

// ---------------------------------------------------------------------------
// Task builders (gold answers are computed by execution at the end)
// ---------------------------------------------------------------------------

std::vector<TaskSpec> RetailTasks(Rng* rng) {
  std::vector<TaskSpec> tasks;
  const StateName& st = kStates[rng->NextUint(std::size(kStates))];
  int64_t year = rng->NextBool(0.5) ? 2024 : 2025;

  {
    TaskSpec t;
    t.id = "retail_revenue_by_state";
    t.question = std::string("What was the total sales revenue in ") + st.abbrev +
                 " in " + std::to_string(year) + "?";
    t.gold_sql = std::string("SELECT sum(s.revenue) FROM sales s JOIN stores st ON "
                             "s.store_id = st.store_id WHERE st.state = '") +
                 st.full + "' AND s.year = " + std::to_string(year);
    t.relevant_tables = {"sales", "stores"};
    t.relevant_columns = {"sales.revenue", "sales.store_id", "sales.year",
                          "stores.store_id", "stores.state"};
    t.encoding_note = std::string("states are stored fully spelled out (e.g. '") +
                      st.full + "'), not as two-letter codes";
    t.question_value = st.abbrev;
    t.stored_value = st.full;
    t.encoded_column = "stores.state";
    t.difficulty = 4;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    const char* cat = kCategories[rng->NextUint(std::size(kCategories))];
    t.id = "retail_category_count";
    t.question = std::string("How many sales were of ") + cat + "?";
    t.gold_sql = std::string("SELECT count(*) FROM sales s JOIN products p ON "
                             "s.product_id = p.product_id WHERE p.category = '") +
                 cat + "'";
    t.relevant_tables = {"sales", "products"};
    t.relevant_columns = {"sales.product_id", "products.product_id",
                          "products.category"};
    t.difficulty = 3;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    const char* cat = kCategories[rng->NextUint(std::size(kCategories))];
    t.id = "retail_avg_price";
    t.question = std::string("What is the average price of ") + cat + " products?";
    t.gold_sql = std::string("SELECT avg(price) FROM products WHERE category = '") +
                 cat + "'";
    t.relevant_tables = {"products"};
    t.relevant_columns = {"products.price", "products.category"};
    t.difficulty = 1;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "retail_top_state";
    t.question = "Which state had the highest total revenue?";
    t.gold_sql = "SELECT st.state, sum(s.revenue) AS total FROM sales s JOIN stores "
                 "st ON s.store_id = st.store_id GROUP BY st.state ORDER BY total "
                 "DESC LIMIT 1";
    t.relevant_tables = {"sales", "stores"};
    t.relevant_columns = {"sales.revenue", "sales.store_id", "stores.store_id",
                          "stores.state"};
    t.difficulty = 3;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<TaskSpec> WebTasks(Rng* rng) {
  std::vector<TaskSpec> tasks;
  {
    TaskSpec t;
    const char* country = kCountries[rng->NextUint(std::size(kCountries))];
    t.id = "web_posts_by_country";
    t.question = std::string("How many posts were written by users from ") +
                 country + "?";
    t.gold_sql = std::string("SELECT count(*) FROM posts p JOIN users u ON "
                             "p.user_id = u.user_id WHERE u.country = '") +
                 country + "'";
    t.relevant_tables = {"posts", "users"};
    t.relevant_columns = {"posts.user_id", "users.user_id", "users.country"};
    t.difficulty = 3;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    const char* topic = kTopics[rng->NextUint(std::size(kTopics))];
    t.id = "web_avg_upvotes";
    t.question = std::string("What is the average number of upvotes on ") + topic +
                 " posts?";
    t.gold_sql = std::string("SELECT avg(upvotes) FROM posts WHERE topic = '") +
                 topic + "'";
    t.relevant_tables = {"posts"};
    t.relevant_columns = {"posts.upvotes", "posts.topic"};
    t.difficulty = 1;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "web_top_country";
    t.question = "Which country has the most users?";
    t.gold_sql = "SELECT country, count(*) AS n FROM users GROUP BY country ORDER "
                 "BY n DESC, country ASC LIMIT 1";
    t.relevant_tables = {"users"};
    t.relevant_columns = {"users.country"};
    t.difficulty = 2;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "web_upvote_actions";
    t.question = "How many upvote interactions are recorded?";
    t.gold_sql = "SELECT count(*) FROM interactions WHERE action = 'upvote'";
    t.relevant_tables = {"interactions"};
    t.relevant_columns = {"interactions.action"};
    t.difficulty = 1;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<TaskSpec> FlightsTasks(Rng* rng) {
  std::vector<TaskSpec> tasks;
  {
    TaskSpec t;
    const char* origin = kAirports[rng->NextUint(std::size(kAirports))];
    t.id = "flights_delayed_from";
    t.question = std::string("How many flights out of ") + origin +
                 " were delayed?";
    t.gold_sql = std::string("SELECT count(*) FROM flights WHERE origin = '") +
                 origin + "' AND status = 'delayed'";
    t.relevant_tables = {"flights"};
    t.relevant_columns = {"flights.origin", "flights.status"};
    // Status is stored as 'delayed' but a question phrased "late" would
    // mislead; mark the status column encoding-sensitive.
    t.encoding_note = "flight status values are 'on_time', 'delayed', 'cancelled'";
    t.question_value = "late";
    t.stored_value = "delayed";
    t.encoded_column = "flights.status";
    t.difficulty = 2;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    const char* base = kAirports[rng->NextUint(std::size(kAirports))];
    t.id = "flights_crew_at_base";
    t.question = std::string("How many crew members are based at ") + base + "?";
    t.gold_sql = std::string("SELECT count(*) FROM crew WHERE base = '") + base + "'";
    t.relevant_tables = {"crew"};
    t.relevant_columns = {"crew.base"};
    t.difficulty = 1;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "flights_busiest";
    t.question = "Which flight has the most crew assignments?";
    t.gold_sql = "SELECT flight_id, count(*) AS n FROM assignments GROUP BY "
                 "flight_id ORDER BY n DESC, flight_id ASC LIMIT 1";
    t.relevant_tables = {"assignments"};
    t.relevant_columns = {"assignments.flight_id", "assignments.crew_id"};
    t.difficulty = 2;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    const char* role = kRoles[rng->NextUint(std::size(kRoles))];
    t.id = "flights_role_assignments";
    t.question = std::string("How many assignments involve a ") + role + "?";
    t.gold_sql = std::string("SELECT count(*) FROM assignments a JOIN crew c ON "
                             "a.crew_id = c.crew_id WHERE c.role = '") +
                 role + "'";
    t.relevant_tables = {"assignments", "crew"};
    t.relevant_columns = {"assignments.crew_id", "crew.crew_id", "crew.role"};
    t.difficulty = 3;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<TaskSpec> HealthcareTasks(Rng* rng) {
  std::vector<TaskSpec> tasks;
  constexpr const char* kDepartments[] = {"cardiology", "oncology", "pediatrics",
                                          "radiology", "emergency"};
  {
    TaskSpec t;
    const char* dept = kDepartments[rng->NextUint(std::size(kDepartments))];
    t.id = "health_dept_cost";
    t.question = std::string("What is the total cost of ") + dept + " visits?";
    t.gold_sql = std::string("SELECT sum(cost) FROM visits WHERE department = '") +
                 dept + "'";
    t.relevant_tables = {"visits"};
    t.relevant_columns = {"visits.cost", "visits.department"};
    t.difficulty = 1;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "health_critical_count";
    t.question = "How many visits were emergencies (critical severity)?";
    t.gold_sql = "SELECT count(*) FROM visits WHERE severity = 'critical'";
    t.relevant_tables = {"visits"};
    t.relevant_columns = {"visits.severity"};
    // "emergencies" is also a department name -- the agent must discover
    // that severity uses 'critical', not 'emergency'.
    t.encoding_note = "severity values are 'routine', 'urgent', 'critical'";
    t.question_value = "emergency";
    t.stored_value = "critical";
    t.encoded_column = "visits.severity";
    t.difficulty = 2;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    const char* insurer = rng->NextBool(0.5) ? "Kaiser" : "Aetna";
    t.id = "health_insurer_visits";
    t.question = std::string("How many visits were by patients insured by ") +
                 insurer + "?";
    t.gold_sql = std::string("SELECT count(*) FROM visits v JOIN patients p ON "
                             "v.patient_id = p.patient_id WHERE p.insurer = '") +
                 insurer + "'";
    t.relevant_tables = {"visits", "patients"};
    t.relevant_columns = {"visits.patient_id", "patients.patient_id",
                          "patients.insurer"};
    t.difficulty = 3;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "health_busiest_dept";
    t.question = "Which department has the most visits?";
    t.gold_sql = "SELECT department, count(*) AS n FROM visits GROUP BY "
                 "department ORDER BY n DESC, department ASC LIMIT 1";
    t.relevant_tables = {"visits"};
    t.relevant_columns = {"visits.department"};
    t.difficulty = 2;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<TaskSpec> FinanceTasks(Rng* rng) {
  std::vector<TaskSpec> tasks;
  constexpr const char* kSectors[] = {"technology", "energy", "healthcare",
                                      "finance", "consumer"};
  {
    TaskSpec t;
    const char* sector = kSectors[rng->NextUint(std::size(kSectors))];
    t.id = "finance_sector_notional";
    t.question = std::string("What is the total notional traded in ") + sector + "?";
    t.gold_sql = std::string("SELECT sum(notional) FROM trades WHERE sector = '") +
                 sector + "'";
    t.relevant_tables = {"trades"};
    t.relevant_columns = {"trades.notional", "trades.sector"};
    t.difficulty = 1;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "finance_sell_count";
    t.question = "How many short (sell) trades are there?";
    t.gold_sql = "SELECT count(*) FROM trades WHERE side = 'sell'";
    t.relevant_tables = {"trades"};
    t.relevant_columns = {"trades.side"};
    t.encoding_note = "trade sides are stored as 'buy' and 'sell'";
    t.question_value = "short";
    t.stored_value = "sell";
    t.encoded_column = "trades.side";
    t.difficulty = 2;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "finance_premium_trades";
    t.question = "How many trades were placed by premium-tier accounts?";
    t.gold_sql = "SELECT count(*) FROM trades t JOIN accounts a ON "
                 "t.account_id = a.account_id WHERE a.tier = 'premium'";
    t.relevant_tables = {"trades", "accounts"};
    t.relevant_columns = {"trades.account_id", "accounts.account_id",
                          "accounts.tier"};
    t.difficulty = 3;
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.id = "finance_top_sector";
    t.question = "Which sector sees the largest average trade?";
    t.gold_sql = "SELECT sector, avg(notional) AS a FROM trades GROUP BY sector "
                 "ORDER BY a DESC, sector ASC LIMIT 1";
    t.relevant_tables = {"trades"};
    t.relevant_columns = {"trades.sector", "trades.notional"};
    t.difficulty = 2;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

}  // namespace

bool ResultsEquivalent(const ResultSet& a, const ResultSet& b) {
  if (a.rows.size() != b.rows.size()) return false;
  if (a.schema.NumColumns() != b.schema.NumColumns()) return false;
  auto serialize = [](const ResultSet& rs) {
    std::vector<std::string> rows;
    rows.reserve(rs.rows.size());
    for (const Row& r : rs.rows) {
      std::string s;
      for (const Value& v : r) {
        if (v.type() == DataType::kFloat64) {
          // Tolerant float rendering (9 significant digits).
          char buf[48];
          std::snprintf(buf, sizeof(buf), "%.9g", v.double_value());
          s += buf;
        } else {
          s += v.ToString();
        }
        s += "\x1f";
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  return serialize(a) == serialize(b);
}

std::vector<MiniBirdDatabase> GenerateMiniBird(const MiniBirdOptions& options) {
  std::vector<MiniBirdDatabase> out;
  Rng master(options.seed);
  constexpr const char* kDomains[] = {"retail", "web", "flights", "healthcare",
                                      "finance"};

  for (size_t d = 0; d < options.num_databases; ++d) {
    MiniBirdDatabase db;
    db.domain = kDomains[d % std::size(kDomains)];
    db.name = db.domain + "_" + std::to_string(d);
    db.system = std::make_unique<AgentFirstSystem>(options.system_options);
    Rng rng = master.Fork(d + 1);

    if (db.domain == "retail") {
      BuildRetail(db.system.get(), &rng, options.rows_per_fact_table,
                  options.rows_per_dim_table);
      db.tasks = RetailTasks(&rng);
    } else if (db.domain == "web") {
      BuildWeb(db.system.get(), &rng, options.rows_per_fact_table,
               options.rows_per_dim_table);
      db.tasks = WebTasks(&rng);
    } else if (db.domain == "flights") {
      BuildFlights(db.system.get(), &rng, options.rows_per_fact_table,
                   options.rows_per_dim_table);
      db.tasks = FlightsTasks(&rng);
    } else if (db.domain == "healthcare") {
      BuildHealthcare(db.system.get(), &rng, options.rows_per_fact_table,
                      options.rows_per_dim_table);
      db.tasks = HealthcareTasks(&rng);
    } else {
      BuildFinance(db.system.get(), &rng, options.rows_per_fact_table,
                   options.rows_per_dim_table);
      db.tasks = FinanceTasks(&rng);
    }

    // Compute gold answers.
    for (TaskSpec& task : db.tasks) {
      task.id = db.name + "/" + task.id;
      auto gold = db.system->ExecuteSql(task.gold_sql);
      AF_CHECK_MSG(gold.ok(), (task.id + ": " + gold.status().ToString()).c_str());
      task.gold_answer = *gold;
    }
    out.push_back(std::move(db));
  }
  return out;
}

}  // namespace agentfirst
