#include "wal/checkpoint.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "io/file_util.h"
#include "obs/metrics.h"
#include "types/serde.h"

namespace agentfirst {
namespace wal {

namespace {

obs::Counter* CheckpointsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.checkpoints");
  return c;
}

/// Catalog + memory portion shared by checkpoints and the canonical digest.
Status AppendState(const Catalog& catalog, const AgenticMemoryStore* memory,
                   ByteWriter* w) {
  w->U64(catalog.schema_version());
  std::vector<std::string> names = catalog.ListTables();
  std::sort(names.begin(), names.end());
  w->U32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    AF_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(name));
    w->Str(name);
    AppendSchema(table->schema(), w);
    w->U64(table->segment_capacity());
    w->U64(table->data_version());
    w->U32(static_cast<uint32_t>(table->NumRows()));
    // Pin one segment at a time: a pooled table checkpoints without pulling
    // every segment resident at once, and the encoded bytes are identical to
    // the historical per-row loop (ReadRows materializes the same Rows in
    // the same order).
    std::vector<Row> rows;
    for (size_t s = 0; s < table->NumSegments(); ++s) {
      AF_ASSIGN_OR_RETURN(storage::SegmentPin pin, table->PinSegment(s));
      rows.clear();
      pin->ReadRows(0, pin->num_rows(), &rows);
      for (const Row& row : rows) AppendRow(row, w);
    }
  }
  std::vector<std::pair<std::string, std::string>> indexes =
      catalog.ListIndexes();
  std::sort(indexes.begin(), indexes.end());
  w->U32(static_cast<uint32_t>(indexes.size()));
  for (const auto& [table, column] : indexes) {
    w->Str(table);
    w->Str(column);
  }
  w->Bool(memory != nullptr);
  if (memory != nullptr) {
    w->U64(memory->next_id());
    w->U64(memory->tick());
    std::vector<const MemoryArtifact*> artifacts = memory->SnapshotArtifacts();
    w->U32(static_cast<uint32_t>(artifacts.size()));
    for (const MemoryArtifact* a : artifacts) AppendArtifact(*a, w);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> EncodeCheckpointPayload(const Catalog& catalog,
                                            const AgenticMemoryStore* memory,
                                            const BranchMeta& branches,
                                            uint64_t lsn) {
  AF_FAULT_POINT("wal.checkpoint.encode");
  ByteWriter w;
  w.U64(lsn);
  AF_RETURN_IF_ERROR(AppendState(catalog, memory, &w));
  w.Bool(branches.main_tainted);
  w.U32(static_cast<uint32_t>(branches.imports.size()));
  for (const auto& imp : branches.imports) {
    w.Str(imp.table);
    w.U64(imp.data_version);
  }
  w.U32(static_cast<uint32_t>(branches.forks.size()));
  for (const auto& fork : branches.forks) {
    w.U64(fork.id);
    w.U64(fork.parent);
    w.Bool(fork.tainted);
  }
  return w.Take();
}

Result<CheckpointData> DecodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < 20) {
    return Status::InvalidArgument("checkpoint: file shorter than header");
  }
  if (bytes.substr(0, 4) != std::string_view(kCheckpointMagic, 4)) {
    return Status::InvalidArgument("checkpoint: bad magic");
  }
  ByteReader head(bytes.substr(4, 16));
  uint32_t version = 0;
  uint64_t payload_len = 0;
  uint32_t crc = 0;
  AF_RETURN_IF_ERROR(head.U32(&version));
  AF_RETURN_IF_ERROR(head.U64(&payload_len));
  AF_RETURN_IF_ERROR(head.U32(&crc));
  if (version != kCheckpointFormatVersion) {
    return Status::InvalidArgument("checkpoint: unsupported version " +
                                   std::to_string(version));
  }
  if (payload_len > kMaxCheckpointSize || bytes.size() - 20 != payload_len) {
    return Status::InvalidArgument("checkpoint: payload length mismatch");
  }
  std::string_view payload = bytes.substr(20);
  if (Crc32c(payload) != crc) {
    return Status::InvalidArgument("checkpoint: checksum mismatch");
  }

  CheckpointData data;
  ByteReader r(payload);
  AF_RETURN_IF_ERROR(r.U64(&data.lsn));
  AF_RETURN_IF_ERROR(r.U64(&data.schema_version));
  size_t ntables = 0;
  AF_RETURN_IF_ERROR(r.Count(8, &ntables));
  data.tables.resize(ntables);
  for (size_t t = 0; t < ntables; ++t) {
    CheckpointTable& table = data.tables[t];
    AF_RETURN_IF_ERROR(r.Str(&table.name));
    AF_RETURN_IF_ERROR(ReadSchema(&r, &table.schema));
    AF_RETURN_IF_ERROR(r.U64(&table.segment_capacity));
    AF_RETURN_IF_ERROR(r.U64(&table.data_version));
    size_t nrows = 0;
    AF_RETURN_IF_ERROR(r.Count(4, &nrows));
    table.rows.resize(nrows);
    for (size_t i = 0; i < nrows; ++i) {
      AF_RETURN_IF_ERROR(ReadRow(&r, &table.rows[i]));
    }
    if (table.segment_capacity == 0) {
      return Status::InvalidArgument("checkpoint: zero segment capacity");
    }
  }
  size_t nindexes = 0;
  AF_RETURN_IF_ERROR(r.Count(8, &nindexes));
  data.indexes.resize(nindexes);
  for (size_t i = 0; i < nindexes; ++i) {
    AF_RETURN_IF_ERROR(r.Str(&data.indexes[i].first));
    AF_RETURN_IF_ERROR(r.Str(&data.indexes[i].second));
  }
  AF_RETURN_IF_ERROR(r.Bool(&data.has_memory));
  if (data.has_memory) {
    AF_RETURN_IF_ERROR(r.U64(&data.memory_next_id));
    AF_RETURN_IF_ERROR(r.U64(&data.memory_tick));
    size_t nartifacts = 0;
    AF_RETURN_IF_ERROR(r.Count(8, &nartifacts));
    data.artifacts.resize(nartifacts);
    for (size_t i = 0; i < nartifacts; ++i) {
      AF_RETURN_IF_ERROR(ReadArtifact(&r, &data.artifacts[i]));
    }
  }
  AF_RETURN_IF_ERROR(r.Bool(&data.branches.main_tainted));
  size_t nimports = 0;
  AF_RETURN_IF_ERROR(r.Count(12, &nimports));
  data.branches.imports.resize(nimports);
  for (size_t i = 0; i < nimports; ++i) {
    AF_RETURN_IF_ERROR(r.Str(&data.branches.imports[i].table));
    AF_RETURN_IF_ERROR(r.U64(&data.branches.imports[i].data_version));
  }
  size_t nforks = 0;
  AF_RETURN_IF_ERROR(r.Count(17, &nforks));
  data.branches.forks.resize(nforks);
  for (size_t i = 0; i < nforks; ++i) {
    AF_RETURN_IF_ERROR(r.U64(&data.branches.forks[i].id));
    AF_RETURN_IF_ERROR(r.U64(&data.branches.forks[i].parent));
    AF_RETURN_IF_ERROR(r.Bool(&data.branches.forks[i].tainted));
  }
  AF_RETURN_IF_ERROR(r.ExpectEnd());
  return data;
}

Status WriteCheckpoint(const std::string& path, const Catalog& catalog,
                       const AgenticMemoryStore* memory,
                       const BranchMeta& branches, uint64_t lsn) {
  AF_ASSIGN_OR_RETURN(std::string payload, EncodeCheckpointPayload(
                                               catalog, memory, branches, lsn));
  ByteWriter file;
  file.U8(static_cast<uint8_t>(kCheckpointMagic[0]));
  file.U8(static_cast<uint8_t>(kCheckpointMagic[1]));
  file.U8(static_cast<uint8_t>(kCheckpointMagic[2]));
  file.U8(static_cast<uint8_t>(kCheckpointMagic[3]));
  file.U32(kCheckpointFormatVersion);
  file.U64(payload.size());
  file.U32(Crc32c(payload));
  std::string image = file.Take();
  image += payload;
  AF_FAULT_POINT("wal.checkpoint.write");
  AF_RETURN_IF_ERROR(io::WriteFileAtomic(path, image));
  CheckpointsCounter()->Increment();
  return Status::OK();
}

Result<std::string> EncodeCanonicalState(const Catalog& catalog,
                                         const AgenticMemoryStore* memory) {
  ByteWriter w;
  AF_RETURN_IF_ERROR(AppendState(catalog, memory, &w));
  return w.Take();
}

}  // namespace wal
}  // namespace agentfirst
