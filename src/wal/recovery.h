#ifndef AGENTFIRST_WAL_RECOVERY_H_
#define AGENTFIRST_WAL_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "memory/memory_store.h"
#include "txn/branch_manager.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace agentfirst {
namespace wal {

/// What crash recovery did and what it could not bring back.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_lsn = 0;
  /// Highest LSN applied (checkpoint or replay); the writer resumes at +1.
  uint64_t max_lsn = 0;
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;  // lsn <= checkpoint_lsn (already snapshotted)
  /// Torn/corrupt tail bytes physically truncated off the log.
  uint64_t torn_bytes_truncated = 0;
  /// Branches whose state the log could not reproduce (COW contents are
  /// never logged). kMainBranch in this list means the main branch itself
  /// was written through the branch manager pre-crash; its view was reset
  /// to the recovered catalog tables.
  std::vector<uint64_t> dropped_branches;
  /// OK when every branch was restored; kFailedPrecondition naming the
  /// dropped ids otherwise. Branch loss never fails recovery as a whole and
  /// is never silent.
  Status branch_status;
  /// Surviving branch bookkeeping; seeds the WalManager after recovery.
  BranchMeta meta;
};

/// Rebuilds `catalog` + `memory` + `branches` (all must be freshly
/// constructed and empty, with no listeners attached) from the checkpoint
/// and WAL under `data_dir`:
///
///   1. Load + verify the checkpoint, if present (tables, indexes, memory
///      store, branch metadata).
///   2. Replay WAL records with lsn > checkpoint lsn, in order, through the
///      same mutation paths the live system used — so segment layout,
///      version counters, and COW sharing relationships reproduce exactly.
///   3. Truncate the torn/corrupt tail (detected by length/checksum) off
///      the log file, and re-fork restorable branches / report the rest.
///
/// Decoding is total: torn tails, bit flips, and garbage end replay cleanly;
/// an empty or absent data_dir recovers to an empty system. Injected faults
/// (open/read failures) abort recovery with their error and leave the files
/// untouched, so a re-run can succeed.
Result<RecoveryReport> Recover(const std::string& data_dir, Catalog* catalog,
                               AgenticMemoryStore* memory,
                               BranchManager* branches);

}  // namespace wal
}  // namespace agentfirst

#endif  // AGENTFIRST_WAL_RECOVERY_H_
