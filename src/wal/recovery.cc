#include "wal/recovery.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "io/file_util.h"
#include "obs/metrics.h"
#include "types/serde.h"

namespace agentfirst {
namespace wal {

namespace {

obs::Counter* RecoveriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.recoveries");
  return c;
}
obs::Counter* ReplayedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.replayed_records");
  return c;
}
obs::Counter* TruncatedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.truncated_bytes");
  return c;
}
obs::Counter* DroppedBranchesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.dropped_branches");
  return c;
}

/// Rebuilds one table from checkpoint rows through the normal append path,
/// then pins the recorded mutation counter.
Status RestoreTable(Catalog* catalog, const CheckpointTable& ct) {
  auto table = std::make_shared<Table>(ct.name, ct.schema,
                                       static_cast<size_t>(ct.segment_capacity));
  AF_RETURN_IF_ERROR(table->AppendRows(ct.rows));
  table->RestoreDataVersion(ct.data_version);
  return catalog->RegisterTable(std::move(table));
}

/// Applies one replayed record. A non-OK return means the record is
/// CRC-valid but semantically impossible against the recovered state —
/// treated as corruption: replay stops there and the caller truncates.
Status ApplyRecord(const WalRecord& rec, Catalog* catalog,
                   AgenticMemoryStore* memory, BranchManager* branches,
                   BranchMeta* meta) {
  ByteReader r(rec.body);
  switch (rec.type) {
    case WalRecordType::kCreateTable: {
      std::string name;
      Schema schema;
      uint64_t segment_capacity = 0;
      AF_RETURN_IF_ERROR(r.Str(&name));
      AF_RETURN_IF_ERROR(ReadSchema(&r, &schema));
      AF_RETURN_IF_ERROR(r.U64(&segment_capacity));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      AF_ASSIGN_OR_RETURN(TablePtr table,
                          catalog->CreateTable(name, std::move(schema)));
      (void)table;
      return Status::OK();
    }
    case WalRecordType::kDropTable: {
      std::string name;
      AF_RETURN_IF_ERROR(r.Str(&name));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      return catalog->DropTable(name);
    }
    case WalRecordType::kRegisterTable: {
      CheckpointTable ct;
      uint64_t segment_capacity = 0;
      AF_RETURN_IF_ERROR(r.Str(&ct.name));
      AF_RETURN_IF_ERROR(ReadSchema(&r, &ct.schema));
      AF_RETURN_IF_ERROR(r.U64(&segment_capacity));
      AF_RETURN_IF_ERROR(r.U64(&ct.data_version));
      size_t n = 0;
      AF_RETURN_IF_ERROR(r.Count(4, &n));
      ct.rows.resize(n);
      for (size_t i = 0; i < n; ++i) AF_RETURN_IF_ERROR(ReadRow(&r, &ct.rows[i]));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      if (segment_capacity == 0) {
        return Status::InvalidArgument("wal: zero segment capacity");
      }
      ct.segment_capacity = segment_capacity;
      return RestoreTable(catalog, ct);
    }
    case WalRecordType::kAppendRows: {
      std::string name;
      uint64_t first_row = 0;
      AF_RETURN_IF_ERROR(r.Str(&name));
      AF_RETURN_IF_ERROR(r.U64(&first_row));
      size_t n = 0;
      AF_RETURN_IF_ERROR(r.Count(4, &n));
      std::vector<Row> rows(n);
      for (size_t i = 0; i < n; ++i) AF_RETURN_IF_ERROR(ReadRow(&r, &rows[i]));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      AF_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(name));
      if (table->NumRows() != first_row) {
        return Status::Internal("wal: append replay diverged for " + name);
      }
      return table->AppendRows(rows);
    }
    case WalRecordType::kSetValue: {
      std::string name;
      uint64_t row = 0;
      uint64_t col = 0;
      Value value;
      AF_RETURN_IF_ERROR(r.Str(&name));
      AF_RETURN_IF_ERROR(r.U64(&row));
      AF_RETURN_IF_ERROR(r.U64(&col));
      AF_RETURN_IF_ERROR(ReadValue(&r, &value));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      AF_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(name));
      return table->SetValue(static_cast<size_t>(row),
                             static_cast<size_t>(col), value);
    }
    case WalRecordType::kRemoveRows: {
      std::string name;
      AF_RETURN_IF_ERROR(r.Str(&name));
      size_t n = 0;
      AF_RETURN_IF_ERROR(r.Count(1, &n));
      std::vector<uint8_t> mask(n);
      for (size_t i = 0; i < n; ++i) AF_RETURN_IF_ERROR(r.U8(&mask[i]));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      AF_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(name));
      return table->RemoveRows(mask);
    }
    case WalRecordType::kCreateIndex: {
      std::string table;
      std::string column;
      AF_RETURN_IF_ERROR(r.Str(&table));
      AF_RETURN_IF_ERROR(r.Str(&column));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      return catalog->CreateIndex(table, column);
    }
    case WalRecordType::kDropIndex: {
      std::string table;
      std::string column;
      AF_RETURN_IF_ERROR(r.Str(&table));
      AF_RETURN_IF_ERROR(r.Str(&column));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      return catalog->DropIndex(table, column);
    }
    case WalRecordType::kMemoryPut: {
      MemoryArtifact artifact;
      AF_RETURN_IF_ERROR(ReadArtifact(&r, &artifact));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      if (memory == nullptr) return Status::OK();
      memory->RestorePut(std::move(artifact));
      return Status::OK();
    }
    case WalRecordType::kMemoryRemove: {
      uint64_t id = 0;
      AF_RETURN_IF_ERROR(r.U64(&id));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      if (memory != nullptr) memory->RestoreRemove(id);
      return Status::OK();
    }
    case WalRecordType::kBranchImport: {
      std::string name;
      uint64_t data_version = 0;
      AF_RETURN_IF_ERROR(r.Str(&name));
      AF_RETURN_IF_ERROR(r.U64(&data_version));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      AF_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(name));
      // Pure replay walks the table through the identical mutation prefix,
      // so the import-time version must match; a mismatch means the log and
      // snapshot disagree and the import view is unreproducible.
      if (table->data_version() != data_version) meta->main_tainted = true;
      AF_RETURN_IF_ERROR(branches->ImportTable(*table));
      meta->imports.push_back(BranchMeta::Import{name, data_version});
      return Status::OK();
    }
    case WalRecordType::kBranchFork: {
      uint64_t id = 0;
      uint64_t parent = 0;
      AF_RETURN_IF_ERROR(r.U64(&id));
      AF_RETURN_IF_ERROR(r.U64(&parent));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      bool tainted = meta->IsTainted(parent);
      Status forked = branches->RestoreFork(id, parent);
      // A missing parent (rolled back pre-crash after the fork was cut from
      // checkpoint meta) makes this branch unreproducible, not recovery
      // invalid.
      if (!forked.ok()) tainted = true;
      meta->forks.push_back(BranchMeta::Fork{id, parent, tainted});
      return Status::OK();
    }
    case WalRecordType::kBranchMutate: {
      uint64_t id = 0;
      AF_RETURN_IF_ERROR(r.U64(&id));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      meta->Taint(id);
      return Status::OK();
    }
    case WalRecordType::kBranchRollback: {
      uint64_t id = 0;
      AF_RETURN_IF_ERROR(r.U64(&id));
      AF_RETURN_IF_ERROR(r.ExpectEnd());
      (void)branches->Rollback(id);  // may already be gone (dropped fork)
      meta->forks.erase(
          std::remove_if(meta->forks.begin(), meta->forks.end(),
                         [id](const BranchMeta::Fork& f) { return f.id == id; }),
          meta->forks.end());
      return Status::OK();
    }
  }
  return Status::InvalidArgument("wal: unknown record type");
}

}  // namespace

Result<RecoveryReport> Recover(const std::string& data_dir, Catalog* catalog,
                               AgenticMemoryStore* memory,
                               BranchManager* branches) {
  AF_FAULT_POINT("wal.recover.open");
  RecoveryReport report;
  BranchMeta checkpoint_meta;

  // --- 1. checkpoint ------------------------------------------------------
  const std::string checkpoint_path = CheckpointPath(data_dir);
  if (io::FileExists(checkpoint_path)) {
    AF_ASSIGN_OR_RETURN(std::string image,
                        io::ReadFileToString(checkpoint_path));
    AF_ASSIGN_OR_RETURN(CheckpointData data, DecodeCheckpoint(image));
    for (const CheckpointTable& ct : data.tables) {
      AF_RETURN_IF_ERROR(RestoreTable(catalog, ct));
    }
    for (const auto& [table, column] : data.indexes) {
      AF_RETURN_IF_ERROR(catalog->CreateIndex(table, column));
    }
    catalog->RestoreSchemaVersion(data.schema_version);
    if (data.has_memory && memory != nullptr) {
      for (MemoryArtifact& a : data.artifacts) memory->RestorePut(std::move(a));
      memory->RestoreCounters(data.memory_next_id, data.memory_tick);
    }
    checkpoint_meta = std::move(data.branches);
    report.checkpoint_loaded = true;
    report.checkpoint_lsn = data.lsn;
    report.max_lsn = data.lsn;
  }

  // Branch universe at checkpoint time: re-import, then re-fork in creation
  // order. An import whose table moved on since import time cannot be
  // reproduced from the snapshot — everything built on it is tainted.
  BranchMeta* meta = &report.meta;
  meta->main_tainted = checkpoint_meta.main_tainted;
  for (const BranchMeta::Import& imp : checkpoint_meta.imports) {
    auto table = catalog->GetTable(imp.table);
    if (!table.ok() || (*table)->data_version() != imp.data_version) {
      meta->main_tainted = true;
      if (!table.ok()) continue;
    }
    AF_RETURN_IF_ERROR(branches->ImportTable(**table));
    meta->imports.push_back(imp);
  }
  for (const BranchMeta::Fork& fork : checkpoint_meta.forks) {
    bool tainted = fork.tainted || meta->IsTainted(fork.parent);
    Status forked = branches->RestoreFork(fork.id, fork.parent);
    if (!forked.ok()) tainted = true;
    meta->forks.push_back(BranchMeta::Fork{fork.id, fork.parent, tainted});
  }

  // --- 2. WAL replay ------------------------------------------------------
  const std::string wal_path = WalPath(data_dir);
  bool truncate_needed = false;
  uint64_t truncate_to = 0;
  uint64_t file_size = 0;
  if (io::FileExists(wal_path)) {
    AF_ASSIGN_OR_RETURN(std::string image, io::ReadFileToString(wal_path));
    file_size = image.size();
    WalReadStats stats;
    AF_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                        ReadWalImage(image, &stats));
    truncate_to = stats.valid_bytes;
    truncate_needed = stats.torn_bytes > 0;
    for (const WalRecord& rec : records) {
      if (rec.lsn <= report.checkpoint_lsn) {
        // Covered by the snapshot (a crash between checkpoint publish and
        // WAL truncate leaves these behind).
        ++report.records_skipped;
        report.max_lsn = std::max(report.max_lsn, rec.lsn);
        continue;
      }
      AF_FAULT_POINT("wal.recover.replay_record");
      Status applied = ApplyRecord(rec, catalog, memory, branches, meta);
      if (!applied.ok()) {
        // CRC-valid but semantically impossible: the record (and everything
        // after it) is corruption, not history. Cut it off like a torn tail.
        truncate_to = rec.file_offset;
        truncate_needed = true;
        break;
      }
      ++report.records_replayed;
      ReplayedCounter()->Increment();
      report.max_lsn = std::max(report.max_lsn, rec.lsn);
    }
  }

  // --- 3. tail truncation + branch verdict --------------------------------
  if (truncate_needed) {
    AF_ASSIGN_OR_RETURN(io::File file, io::File::OpenForAppend(wal_path));
    AF_RETURN_IF_ERROR(file.Truncate(truncate_to));
    AF_RETURN_IF_ERROR(file.Sync());
    AF_RETURN_IF_ERROR(file.Close());
    report.torn_bytes_truncated = file_size - truncate_to;
    TruncatedCounter()->Add(report.torn_bytes_truncated);
  }

  if (meta->main_tainted) {
    // Main's branch-manager view was written in place pre-crash; every
    // branch (and main's own view) is unreproducible. Reset the universe.
    report.dropped_branches.push_back(BranchManager::kMainBranch);
    for (const BranchMeta::Fork& fork : meta->forks) {
      report.dropped_branches.push_back(fork.id);
      (void)branches->Rollback(fork.id);
    }
    meta->forks.clear();
  } else {
    std::vector<BranchMeta::Fork> kept;
    for (const BranchMeta::Fork& fork : meta->forks) {
      if (fork.tainted) {
        report.dropped_branches.push_back(fork.id);
        (void)branches->Rollback(fork.id);
      } else {
        kept.push_back(fork);
      }
    }
    meta->forks = std::move(kept);
  }
  if (!report.dropped_branches.empty()) {
    std::string ids;
    for (uint64_t id : report.dropped_branches) {
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(id);
    }
    report.branch_status = Status::FailedPrecondition(
        "recovery dropped branches with unlogged copy-on-write state: [" +
        ids + "]");
    DroppedBranchesCounter()->Add(report.dropped_branches.size());
  }

  RecoveriesCounter()->Increment();
  return report;
}

}  // namespace wal
}  // namespace agentfirst
