#ifndef AGENTFIRST_WAL_WAL_H_
#define AGENTFIRST_WAL_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "io/file_util.h"
#include "memory/memory_store.h"
#include "txn/branch_manager.h"

namespace agentfirst {
namespace wal {

/// How eagerly appended records reach stable storage.
enum class FsyncPolicy {
  kAlways,       // fsync per record (durable-on-return, slow)
  kGroupCommit,  // flush thread coalesces appends into one fsync (default)
  kNever,        // write-behind, no fsync (durable only across clean close)
};

const char* FsyncPolicyName(FsyncPolicy p);

/// Knobs behind AgentFirstSystem::EnableDurability.
struct DurabilityOptions {
  /// Directory holding wal.log + checkpoint.af (created if missing).
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kGroupCommit;
  /// Group-commit coalescing window: how long the flush thread gathers
  /// appends before the shared fsync.
  int group_window_us = 100;
  /// Take an automatic checkpoint once the live WAL exceeds this many bytes
  /// (0 = manual checkpoints only).
  uint64_t checkpoint_every_bytes = 0;
};

/// One WAL record per observed mutation. The numeric values are the on-disk
/// format — append-only, never renumber.
enum class WalRecordType : uint8_t {
  kCreateTable = 1,     // name, schema, u64 segment_capacity
  kDropTable = 2,       // name
  kRegisterTable = 3,   // name, schema, u64 segment_capacity,
                        // u64 data_version, u32 n, rows
  kAppendRows = 4,      // table, u64 first_row, u32 n, rows
  kSetValue = 5,        // table, u64 row, u64 col, value
  kRemoveRows = 6,      // table, u32 mask_len, mask bytes (1 = removed)
  kCreateIndex = 7,     // table, column
  kDropIndex = 8,       // table, column
  kMemoryPut = 9,       // serialized artifact (sans cached result rows)
  kMemoryRemove = 10,   // u64 artifact id
  kBranchImport = 11,   // table, u64 data_version at import
  kBranchFork = 12,     // u64 id, u64 parent
  kBranchMutate = 13,   // u64 id (branch content diverged; not replayable)
  kBranchRollback = 14, // u64 id
};

/// File framing. A WAL file is the 8-byte header (magic "AFWL", u32 format
/// version) followed by frames of `u32 payload_len | u32 crc32c(payload) |
/// payload`, where payload = `u8 type | u64 lsn | body`. Anything that fails
/// the length or checksum check — torn tail, bit flip, garbage — ends the
/// readable prefix; decoding is total and never UB.
inline constexpr char kWalMagic[4] = {'A', 'F', 'W', 'L'};
inline constexpr uint32_t kWalFormatVersion = 1;
inline constexpr size_t kWalHeaderSize = 8;
/// Frames larger than this are rejected as corruption (no WAL record comes
/// close; prevents a flipped length byte from driving a giant allocation).
inline constexpr uint32_t kMaxWalRecordSize = 1u << 28;

std::string EncodeWalHeader();

/// A decoded frame (body still encoded; recovery dispatches on type).
struct WalRecord {
  WalRecordType type = WalRecordType::kCreateTable;
  uint64_t lsn = 0;
  std::string body;
  /// Byte offset of this frame in the file — where recovery truncates when
  /// a CRC-valid record turns out to have a malformed body.
  uint64_t file_offset = 0;
};

struct WalReadStats {
  uint64_t records = 0;
  /// Bytes of the file that parsed cleanly (header included); everything
  /// past this offset is torn/corrupt tail.
  uint64_t valid_bytes = 0;
  uint64_t torn_bytes = 0;
};

/// Parses every intact record of a WAL image; stops (without error) at the
/// first frame that is truncated or fails its checksum. A missing or
/// malformed header yields InvalidArgument.
Result<std::vector<WalRecord>> ReadWalImage(std::string_view bytes,
                                            WalReadStats* stats);

/// Serialization of one memory artifact (shared by WAL records and
/// checkpoints). Cached result rows are not persisted — they are
/// re-derivable and version-pinned; the durable value is the grounding.
void AppendArtifact(const MemoryArtifact& a, ByteWriter* w);
Status ReadArtifact(ByteReader* r, MemoryArtifact* out);

/// Branch bookkeeping the WAL keeps so checkpoints can describe the branch
/// universe without serializing COW segment contents. Forks are kept in
/// creation order; a tainted branch has state the log cannot reproduce
/// (its own writes, or a fork taken from an already-tainted parent).
struct BranchMeta {
  struct Import {
    std::string table;
    uint64_t data_version = 0;
  };
  struct Fork {
    uint64_t id = 0;
    uint64_t parent = 0;
    bool tainted = false;
  };
  std::vector<Import> imports;
  std::vector<Fork> forks;
  /// The main branch itself was written through the branch manager.
  bool main_tainted = false;

  bool IsTainted(uint64_t branch) const;
  void Taint(uint64_t branch);
};

/// The low-level appender: owns the log file, assigns LSNs, and runs the
/// group-commit flush thread (a private single-thread pool, mirroring the
/// net server's event-loop idiom). Thread-safe: concurrent Append calls
/// from any number of writers coalesce into shared fsyncs.
class WalWriter {
 public:
  /// Opens (creating + writing the header if empty/missing) `path` for
  /// appending. `next_lsn` seeds LSN assignment (recovery passes
  /// max replayed LSN + 1; a fresh log starts at 1).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 const DurabilityOptions& options,
                                                 uint64_t next_lsn);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record, returning its LSN. Under kGroupCommit the record
  /// is buffered (call WaitDurable to block on the shared fsync); under
  /// kAlways it is durable on return; under kNever it is write-behind.
  /// After any I/O error the writer is sticky-failed and every subsequent
  /// call returns that error.
  Result<uint64_t> Append(WalRecordType type, std::string_view body);

  /// Blocks until `lsn` is durable per the policy (no-op for kNever).
  Status WaitDurable(uint64_t lsn);

  /// Forces everything appended so far to stable storage (all policies).
  Status Sync();

  /// Truncates the log back to just the header after a checkpoint made the
  /// prefix redundant. LSNs keep increasing across the reset.
  Status ResetAfterCheckpoint();

  /// Flushes, fsyncs, and closes. Further appends fail.
  Status Close();

  uint64_t durable_lsn() const;
  uint64_t last_lsn() const;
  /// Bytes appended to the live log since open / the last checkpoint reset.
  uint64_t live_bytes() const;

 private:
  WalWriter(const DurabilityOptions& options, uint64_t next_lsn);

  void FlusherLoop();
  /// Writes + fsyncs everything pending. Called with mutex_ held.
  Status FlushLocked(bool sync) AF_REQUIRES(mutex_);

  const DurabilityOptions options_;

  mutable Mutex mutex_;
  io::File file_ AF_GUARDED_BY(mutex_);
  std::string pending_ AF_GUARDED_BY(mutex_);
  uint64_t next_lsn_ AF_GUARDED_BY(mutex_);
  uint64_t buffered_lsn_ AF_GUARDED_BY(mutex_) = 0;
  uint64_t durable_lsn_ AF_GUARDED_BY(mutex_) = 0;
  uint64_t live_bytes_ AF_GUARDED_BY(mutex_) = 0;
  Status io_status_ AF_GUARDED_BY(mutex_);
  bool closed_ AF_GUARDED_BY(mutex_) = false;
  bool stop_flusher_ AF_GUARDED_BY(mutex_) = false;
  CondVar flusher_cv_;
  CondVar durable_cv_;
  /// Group-commit flush thread (single-thread private pool; kGroupCommit
  /// and kNever only).
  std::unique_ptr<ThreadPool> flusher_;
};

/// The durability hook: one object implementing every mutation-listener
/// interface in the tree, translating callbacks into WAL records. Attached
/// by AgentFirstSystem::EnableDurability to the catalog (which fans it out
/// to each table), the memory store, and the branch manager. Append errors
/// are sticky and surfaced by the next durability barrier, mirroring
/// fsync-failure semantics.
class WalManager : public CatalogMutationListener,
                   public MemoryMutationListener,
                   public BranchMutationListener {
 public:
  explicit WalManager(std::unique_ptr<WalWriter> writer)
      : writer_(std::move(writer)) {}

  WalWriter* writer() { return writer_.get(); }
  BranchMeta* branch_meta() { return &meta_; }

  /// Blocks until every record logged so far is durable per the policy and
  /// returns the sticky error, if any. The per-call durability barrier.
  Status Barrier();

  // CatalogMutationListener.
  void OnCreateTable(const Table& table) override;
  void OnRegisterTable(const Table& table) override;
  void OnDropTable(const std::string& name) override;
  void OnCreateIndex(const std::string& table,
                     const std::string& column) override;
  void OnDropIndex(const std::string& table,
                   const std::string& column) override;

  // TableMutationListener.
  void OnAppendRows(const Table& table, size_t first_row, const Row* rows,
                    size_t n) override;
  void OnSetValue(const Table& table, size_t row, size_t col,
                  const Value& value) override;
  void OnRemoveRows(const Table& table,
                    const std::vector<uint8_t>& removed_mask) override;

  // MemoryMutationListener.
  void OnPut(const MemoryArtifact& artifact) override;
  void OnRemove(uint64_t id) override;

  // BranchMutationListener.
  void OnImport(const std::string& table, uint64_t data_version) override;
  void OnFork(uint64_t id, uint64_t parent) override;
  void OnMutate(uint64_t branch) override;
  void OnRollback(uint64_t branch) override;

 private:
  void Log(WalRecordType type, std::string_view body);

  std::unique_ptr<WalWriter> writer_;
  BranchMeta meta_;
};

/// data_dir layout helpers.
std::string WalPath(const std::string& data_dir);
std::string CheckpointPath(const std::string& data_dir);

}  // namespace wal
}  // namespace agentfirst

#endif  // AGENTFIRST_WAL_WAL_H_
