#ifndef AGENTFIRST_WAL_CHECKPOINT_H_
#define AGENTFIRST_WAL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "memory/memory_store.h"
#include "wal/wal.h"

namespace agentfirst {
namespace wal {

/// Checkpoint file: magic "AFCK", u32 format version, u64 payload length,
/// u32 crc32c(payload), payload. Published via temp file + fsync + atomic
/// rename, so a crash during checkpointing leaves the previous checkpoint
/// (or none) intact — never a torn one. The payload snapshots the catalog
/// (schemas, rows, versions, indexes), the memory store, and the branch
/// metadata; COW branch segment contents are deliberately not serialized
/// (see BranchMeta).
inline constexpr char kCheckpointMagic[4] = {'A', 'F', 'C', 'K'};
inline constexpr uint32_t kCheckpointFormatVersion = 1;
/// Corruption guard for the u64 payload-length field.
inline constexpr uint64_t kMaxCheckpointSize = 1ull << 34;

struct CheckpointTable {
  std::string name;
  Schema schema;
  uint64_t segment_capacity = 0;
  uint64_t data_version = 0;
  std::vector<Row> rows;
};

struct CheckpointData {
  /// Records with lsn <= this are covered by the snapshot; replay skips them.
  uint64_t lsn = 0;
  uint64_t schema_version = 0;
  std::vector<CheckpointTable> tables;
  std::vector<std::pair<std::string, std::string>> indexes;
  bool has_memory = false;
  uint64_t memory_next_id = 1;
  uint64_t memory_tick = 0;
  std::vector<MemoryArtifact> artifacts;
  BranchMeta branches;
};

/// Serializes the full checkpoint payload (everything after the len/crc
/// framing). `memory` may be null.
Result<std::string> EncodeCheckpointPayload(const Catalog& catalog,
                                            const AgenticMemoryStore* memory,
                                            const BranchMeta& branches,
                                            uint64_t lsn);

/// Total decoding of a complete checkpoint file image: bad magic, version
/// skew, length mismatch, checksum failure, or any malformed field is a
/// clean error, never UB and never a partial object.
Result<CheckpointData> DecodeCheckpoint(std::string_view bytes);

/// Encodes + atomically publishes a checkpoint at `path`.
Status WriteCheckpoint(const std::string& path, const Catalog& catalog,
                       const AgenticMemoryStore* memory,
                       const BranchMeta& branches, uint64_t lsn);

/// Canonical serialization of durable state (catalog + memory store; no
/// LSN, no branch meta) — the byte string crash-torture tests compare to
/// prove a recovered system identical to a committed prefix of a reference
/// run. Deterministic: tables sorted by name, artifacts in store order.
Result<std::string> EncodeCanonicalState(const Catalog& catalog,
                                         const AgenticMemoryStore* memory);

}  // namespace wal
}  // namespace agentfirst

#endif  // AGENTFIRST_WAL_CHECKPOINT_H_
