#include "wal/wal.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "types/serde.h"

namespace agentfirst {
namespace wal {

namespace {

obs::Counter* RecordsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.records");
  return c;
}
obs::Counter* BytesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.bytes");
  return c;
}
obs::Counter* FsyncsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.fsyncs");
  return c;
}
obs::Counter* GroupCommitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.group_commits");
  return c;
}
obs::Counter* ErrorsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("af.wal.errors");
  return c;
}

/// Frames one record: len | crc | (type, lsn, body).
std::string EncodeFrame(WalRecordType type, uint64_t lsn,
                        std::string_view body) {
  ByteWriter payload;
  payload.U8(static_cast<uint8_t>(type));
  payload.U64(lsn);
  // Body bytes are appended raw (already encoded by the caller).
  std::string frame;
  frame.reserve(8 + payload.size() + body.size());
  ByteWriter head;
  std::string payload_bytes = payload.Take();
  payload_bytes.append(body.data(), body.size());
  head.U32(static_cast<uint32_t>(payload_bytes.size()));
  head.U32(Crc32c(payload_bytes));
  frame = head.Take();
  frame += payload_bytes;
  return frame;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kGroupCommit:
      return "group_commit";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

std::string EncodeWalHeader() {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(kWalMagic[0]));
  w.U8(static_cast<uint8_t>(kWalMagic[1]));
  w.U8(static_cast<uint8_t>(kWalMagic[2]));
  w.U8(static_cast<uint8_t>(kWalMagic[3]));
  w.U32(kWalFormatVersion);
  return w.Take();
}

std::string WalPath(const std::string& data_dir) {
  return data_dir + "/wal.log";
}

std::string CheckpointPath(const std::string& data_dir) {
  return data_dir + "/checkpoint.af";
}

Result<std::vector<WalRecord>> ReadWalImage(std::string_view bytes,
                                            WalReadStats* stats) {
  if (bytes.size() < kWalHeaderSize) {
    return Status::InvalidArgument("wal: file shorter than header");
  }
  if (bytes.substr(0, 4) != std::string_view(kWalMagic, 4)) {
    return Status::InvalidArgument("wal: bad magic");
  }
  ByteReader head(bytes.substr(4, 4));
  uint32_t version = 0;
  AF_RETURN_IF_ERROR(head.U32(&version));
  if (version != kWalFormatVersion) {
    return Status::InvalidArgument("wal: unsupported format version " +
                                   std::to_string(version));
  }

  std::vector<WalRecord> records;
  size_t pos = kWalHeaderSize;
  // Each iteration parses one frame; any shortfall or checksum mismatch ends
  // the readable prefix. `pos` only advances past fully verified frames.
  while (bytes.size() - pos >= 8) {
    ByteReader frame_head(bytes.substr(pos, 8));
    uint32_t len = 0;
    uint32_t crc = 0;
    AF_RETURN_IF_ERROR(frame_head.U32(&len));
    AF_RETURN_IF_ERROR(frame_head.U32(&crc));
    if (len < 9 || len > kMaxWalRecordSize) break;      // type + lsn minimum
    if (bytes.size() - pos - 8 < len) break;            // torn payload
    std::string_view payload = bytes.substr(pos + 8, len);
    if (Crc32c(payload) != crc) break;                  // bit rot / garbage
    ByteReader r(payload);
    uint8_t type = 0;
    uint64_t lsn = 0;
    AF_RETURN_IF_ERROR(r.U8(&type));
    AF_RETURN_IF_ERROR(r.U64(&lsn));
    if (type < 1 || type > 14) break;                   // unknown record kind
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(type);
    rec.lsn = lsn;
    rec.body = std::string(payload.substr(9));
    rec.file_offset = pos;
    records.push_back(std::move(rec));
    pos += 8 + len;
  }
  if (stats != nullptr) {
    stats->records = records.size();
    stats->valid_bytes = pos;
    stats->torn_bytes = bytes.size() - pos;
  }
  return records;
}

void AppendArtifact(const MemoryArtifact& a, ByteWriter* w) {
  w->U64(a.id);
  w->U8(static_cast<uint8_t>(a.kind));
  w->Str(a.key);
  w->Str(a.content);
  w->U32(static_cast<uint32_t>(a.table_deps.size()));
  for (const auto& dep : a.table_deps) w->Str(dep);
  w->U64(a.schema_version);
  w->U32(static_cast<uint32_t>(a.table_versions.size()));
  for (const auto& [table, version] : a.table_versions) {
    w->Str(table);
    w->U64(version);
  }
  w->Str(a.owner);
  w->U64(a.created_tick);
  w->U64(a.last_used_tick);
}

Status ReadArtifact(ByteReader* r, MemoryArtifact* out) {
  MemoryArtifact a;
  uint8_t kind = 0;
  AF_RETURN_IF_ERROR(r->U64(&a.id));
  AF_RETURN_IF_ERROR(r->U8(&kind));
  if (kind > static_cast<uint8_t>(ArtifactKind::kGroundingNote)) {
    return Status::InvalidArgument("wal: bad artifact kind");
  }
  a.kind = static_cast<ArtifactKind>(kind);
  AF_RETURN_IF_ERROR(r->Str(&a.key));
  AF_RETURN_IF_ERROR(r->Str(&a.content));
  size_t ndeps = 0;
  AF_RETURN_IF_ERROR(r->Count(4, &ndeps));
  a.table_deps.resize(ndeps);
  for (size_t i = 0; i < ndeps; ++i) AF_RETURN_IF_ERROR(r->Str(&a.table_deps[i]));
  AF_RETURN_IF_ERROR(r->U64(&a.schema_version));
  size_t nvers = 0;
  AF_RETURN_IF_ERROR(r->Count(12, &nvers));
  for (size_t i = 0; i < nvers; ++i) {
    std::string table;
    uint64_t version = 0;
    AF_RETURN_IF_ERROR(r->Str(&table));
    AF_RETURN_IF_ERROR(r->U64(&version));
    a.table_versions[table] = version;
  }
  AF_RETURN_IF_ERROR(r->Str(&a.owner));
  AF_RETURN_IF_ERROR(r->U64(&a.created_tick));
  AF_RETURN_IF_ERROR(r->U64(&a.last_used_tick));
  *out = std::move(a);
  return Status::OK();
}

bool BranchMeta::IsTainted(uint64_t branch) const {
  if (branch == BranchManager::kMainBranch) return main_tainted;
  for (const auto& f : forks) {
    if (f.id == branch) return f.tainted;
  }
  return false;
}

void BranchMeta::Taint(uint64_t branch) {
  if (branch == BranchManager::kMainBranch) {
    main_tainted = true;
    return;
  }
  for (auto& f : forks) {
    if (f.id == branch) f.tainted = true;
  }
}

// --- WalWriter --------------------------------------------------------------

WalWriter::WalWriter(const DurabilityOptions& options, uint64_t next_lsn)
    : options_(options), next_lsn_(next_lsn) {}

WalWriter::~WalWriter() {
  (void)Close();  // best-effort on teardown; Close() reports errors when called
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, const DurabilityOptions& options,
    uint64_t next_lsn) {
  AF_FAULT_POINT("wal.open");
  bool fresh = true;
  if (io::FileExists(path)) {
    AF_ASSIGN_OR_RETURN(uint64_t size, io::FileSize(path));
    fresh = size < kWalHeaderSize;
  }
  AF_ASSIGN_OR_RETURN(io::File file, io::File::OpenForAppend(path));
  std::unique_ptr<WalWriter> writer(new WalWriter(options, next_lsn));
  {
    MutexLock lock(writer->mutex_);
    writer->file_ = std::move(file);
    // Everything below next_lsn was recovered from stable storage (or never
    // existed) — it is already durable. Without this the first post-recovery
    // barrier would wait forever for LSNs the flusher will never see.
    writer->durable_lsn_ = next_lsn - 1;
    writer->buffered_lsn_ = next_lsn - 1;
    if (fresh) {
      AF_RETURN_IF_ERROR(writer->file_.WriteAll(EncodeWalHeader()));
      AF_RETURN_IF_ERROR(writer->file_.Sync());
    } else {
      AF_ASSIGN_OR_RETURN(uint64_t size, io::FileSize(path));
      writer->live_bytes_ = size - kWalHeaderSize;
    }
  }
  if (options.fsync != FsyncPolicy::kAlways) {
    // The flusher gets its own single-thread pool (never the shared default
    // pool: a durability fsync must not queue behind query morsels).
    writer->flusher_ = std::make_unique<ThreadPool>(1);
    WalWriter* raw = writer.get();
    (void)raw->flusher_->Submit([raw] { raw->FlusherLoop(); });
  }
  return writer;
}

Result<uint64_t> WalWriter::Append(WalRecordType type, std::string_view body) {
  MutexLock lock(mutex_);
  if (closed_) return Status::Internal("wal: appending to closed log");
  AF_RETURN_IF_ERROR(io_status_);
  Status injected = AF_FAULT_STATUS("wal.append");
  if (!injected.ok()) {
    io_status_ = injected;
    ErrorsCounter()->Increment();
    durable_cv_.notify_all();
    return injected;
  }
  uint64_t lsn = next_lsn_++;
  std::string frame = EncodeFrame(type, lsn, body);
  RecordsCounter()->Increment();
  BytesCounter()->Add(frame.size());
  if (options_.fsync == FsyncPolicy::kAlways) {
    pending_ += frame;
    buffered_lsn_ = lsn;
    Status flushed = FlushLocked(/*sync=*/true);
    if (!flushed.ok()) return flushed;
    return lsn;
  }
  bool was_empty = pending_.empty();
  pending_ += frame;
  buffered_lsn_ = lsn;
  if (was_empty) flusher_cv_.notify_one();
  return lsn;
}

Status WalWriter::FlushLocked(bool sync) {
  if (!io_status_.ok()) return io_status_;
  if (!pending_.empty()) {
    std::string batch;
    batch.swap(pending_);
    uint64_t batch_lsn = buffered_lsn_;
    Status written = file_.WriteAll(batch);
    if (written.ok()) {
      live_bytes_ += batch.size();
      if (sync) {
        written = file_.Sync();
        if (written.ok()) FsyncsCounter()->Increment();
      }
    }
    if (!written.ok()) {
      io_status_ = written;
      ErrorsCounter()->Increment();
      durable_cv_.notify_all();
      return written;
    }
    if (sync) {
      durable_lsn_ = batch_lsn;
      durable_cv_.notify_all();
    }
  } else if (sync && durable_lsn_ < buffered_lsn_) {
    // Bytes were written by a kNever-policy flush but never fsynced.
    Status synced = file_.Sync();
    if (!synced.ok()) {
      io_status_ = synced;
      ErrorsCounter()->Increment();
      durable_cv_.notify_all();
      return synced;
    }
    FsyncsCounter()->Increment();
    durable_lsn_ = buffered_lsn_;
    durable_cv_.notify_all();
  }
  return Status::OK();
}

void WalWriter::FlusherLoop() {
  const bool sync = options_.fsync == FsyncPolicy::kGroupCommit;
  for (;;) {
    {
      MutexLock lock(mutex_);
      flusher_cv_.Wait(mutex_, [this]() AF_REQUIRES(mutex_) {
        return stop_flusher_ || !pending_.empty();
      });
      if (stop_flusher_ && pending_.empty()) return;
    }
    // Coalescing window: let concurrent appenders pile onto this batch so
    // one fsync commits them all.
    if (options_.group_window_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.group_window_us));
    }
    MutexLock lock(mutex_);
    if (!pending_.empty() && sync) GroupCommitsCounter()->Increment();
    Status flushed = AF_FAULT_STATUS("wal.flush.batch");
    if (!flushed.ok()) {
      io_status_ = flushed;
      ErrorsCounter()->Increment();
      durable_cv_.notify_all();
      continue;  // stay alive to serve stop/close
    }
    (void)FlushLocked(sync);  // errors are sticky in io_status_
  }
}

Status WalWriter::WaitDurable(uint64_t lsn) {
  MutexLock lock(mutex_);
  if (options_.fsync == FsyncPolicy::kNever) return io_status_;
  durable_cv_.Wait(mutex_, [this, lsn]() AF_REQUIRES(mutex_) {
    return durable_lsn_ >= lsn || !io_status_.ok();
  });
  return io_status_;
}

Status WalWriter::Sync() {
  MutexLock lock(mutex_);
  return FlushLocked(/*sync=*/true);
}

Status WalWriter::ResetAfterCheckpoint() {
  MutexLock lock(mutex_);
  AF_RETURN_IF_ERROR(io_status_);
  // Everything buffered is committed by the checkpoint itself; drop it.
  AF_RETURN_IF_ERROR(FlushLocked(/*sync=*/false));
  AF_FAULT_POINT("wal.reset.truncate");
  AF_RETURN_IF_ERROR(file_.Truncate(kWalHeaderSize));
  AF_RETURN_IF_ERROR(file_.Sync());
  live_bytes_ = 0;
  durable_lsn_ = buffered_lsn_;
  durable_cv_.notify_all();
  return Status::OK();
}

Status WalWriter::Close() {
  {
    MutexLock lock(mutex_);
    if (closed_) return Status::OK();
    closed_ = true;
    stop_flusher_ = true;
    flusher_cv_.notify_all();
  }
  flusher_.reset();  // joins the flush thread
  MutexLock lock(mutex_);
  Status flushed = FlushLocked(/*sync=*/true);
  Status file_closed = file_.Close();
  durable_cv_.notify_all();
  if (!flushed.ok()) return flushed;
  return file_closed;
}

uint64_t WalWriter::durable_lsn() const {
  MutexLock lock(mutex_);
  return durable_lsn_;
}

uint64_t WalWriter::last_lsn() const {
  MutexLock lock(mutex_);
  return next_lsn_ - 1;
}

uint64_t WalWriter::live_bytes() const {
  MutexLock lock(mutex_);
  return live_bytes_ + pending_.size();
}

// --- WalManager -------------------------------------------------------------

void WalManager::Log(WalRecordType type, std::string_view body) {
  // Listener callbacks cannot return errors; Append failures are sticky
  // inside the writer and surface at the next Barrier().
  (void)writer_->Append(type, body);
}

Status WalManager::Barrier() {
  return writer_->WaitDurable(writer_->last_lsn());
}

void WalManager::OnCreateTable(const Table& table) {
  ByteWriter w;
  w.Str(table.name());
  AppendSchema(table.schema(), &w);
  w.U64(table.segment_capacity());
  Log(WalRecordType::kCreateTable, w.buffer());
}

void WalManager::OnRegisterTable(const Table& table) {
  ByteWriter w;
  w.Str(table.name());
  AppendSchema(table.schema(), &w);
  w.U64(table.segment_capacity());
  w.U64(table.data_version());
  w.U32(static_cast<uint32_t>(table.NumRows()));
  for (size_t i = 0; i < table.NumRows(); ++i) {
    auto row = table.GetRow(i);
    if (!row.ok()) return;  // unreachable for a well-formed table
    AppendRow(*row, &w);
  }
  Log(WalRecordType::kRegisterTable, w.buffer());
}

void WalManager::OnDropTable(const std::string& name) {
  ByteWriter w;
  w.Str(name);
  Log(WalRecordType::kDropTable, w.buffer());
}

void WalManager::OnCreateIndex(const std::string& table,
                               const std::string& column) {
  ByteWriter w;
  w.Str(table);
  w.Str(column);
  Log(WalRecordType::kCreateIndex, w.buffer());
}

void WalManager::OnDropIndex(const std::string& table,
                             const std::string& column) {
  ByteWriter w;
  w.Str(table);
  w.Str(column);
  Log(WalRecordType::kDropIndex, w.buffer());
}

void WalManager::OnAppendRows(const Table& table, size_t first_row,
                              const Row* rows, size_t n) {
  ByteWriter w;
  w.Str(table.name());
  w.U64(first_row);
  w.U32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) AppendRow(rows[i], &w);
  Log(WalRecordType::kAppendRows, w.buffer());
}

void WalManager::OnSetValue(const Table& table, size_t row, size_t col,
                            const Value& value) {
  ByteWriter w;
  w.Str(table.name());
  w.U64(row);
  w.U64(col);
  AppendValue(value, &w);
  Log(WalRecordType::kSetValue, w.buffer());
}

void WalManager::OnRemoveRows(const Table& table,
                              const std::vector<uint8_t>& removed_mask) {
  ByteWriter w;
  w.Str(table.name());
  w.U32(static_cast<uint32_t>(removed_mask.size()));
  for (uint8_t m : removed_mask) w.U8(m != 0 ? 1 : 0);
  Log(WalRecordType::kRemoveRows, w.buffer());
}

void WalManager::OnPut(const MemoryArtifact& artifact) {
  ByteWriter w;
  AppendArtifact(artifact, &w);
  Log(WalRecordType::kMemoryPut, w.buffer());
}

void WalManager::OnRemove(uint64_t id) {
  ByteWriter w;
  w.U64(id);
  Log(WalRecordType::kMemoryRemove, w.buffer());
}

void WalManager::OnImport(const std::string& table, uint64_t data_version) {
  meta_.imports.push_back(BranchMeta::Import{table, data_version});
  ByteWriter w;
  w.Str(table);
  w.U64(data_version);
  Log(WalRecordType::kBranchImport, w.buffer());
}

void WalManager::OnFork(uint64_t id, uint64_t parent) {
  // A fork of a tainted parent shares unreproducible segments from birth.
  meta_.forks.push_back(
      BranchMeta::Fork{id, parent, meta_.IsTainted(parent)});
  ByteWriter w;
  w.U64(id);
  w.U64(parent);
  Log(WalRecordType::kBranchFork, w.buffer());
}

void WalManager::OnMutate(uint64_t branch) {
  meta_.Taint(branch);
  ByteWriter w;
  w.U64(branch);
  Log(WalRecordType::kBranchMutate, w.buffer());
}

void WalManager::OnRollback(uint64_t branch) {
  meta_.forks.erase(
      std::remove_if(meta_.forks.begin(), meta_.forks.end(),
                     [branch](const BranchMeta::Fork& f) { return f.id == branch; }),
      meta_.forks.end());
  ByteWriter w;
  w.U64(branch);
  Log(WalRecordType::kBranchRollback, w.buffer());
}

}  // namespace wal
}  // namespace agentfirst
