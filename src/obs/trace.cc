#include "obs/trace.h"

namespace agentfirst {
namespace obs {

namespace {

uint64_t HashStr(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void RenderInto(const TraceSpan& span, size_t depth, bool include_durations,
                std::string* out) {
  out->append(depth * 2, ' ');
  *out += span.name;
  if (span.id != 0) {
    *out += "#";
    *out += std::to_string(span.id);
  }
  if (!span.notes.empty()) {
    *out += " [";
    for (size_t i = 0; i < span.notes.size(); ++i) {
      if (i > 0) *out += " ";
      *out += span.notes[i].first + "=" + span.notes[i].second;
    }
    *out += "]";
  }
  if (include_durations && span.duration_ms >= 0.0) {
    *out += " (" + std::to_string(span.duration_ms) + " ms)";
  }
  *out += "\n";
  for (const auto& child : span.children) {
    RenderInto(*child, depth + 1, include_durations, out);
  }
}

}  // namespace

uint64_t MixSpanId(uint64_t a, uint64_t b) {
  // splitmix64 finalizer over the xor-combined inputs: cheap, well mixed,
  // and (unlike std::hash) identical on every platform.
  uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TraceSpan* TraceSpan::AddChild(std::string child_name) {
  children.push_back(std::make_shared<TraceSpan>());
  children.back()->name = std::move(child_name);
  return children.back().get();
}

const TraceSpan* TraceSpan::Find(const std::string& span_name) const {
  if (name == span_name) return this;
  for (const auto& child : children) {
    if (const TraceSpan* found = child->Find(span_name)) return found;
  }
  return nullptr;
}

std::string TraceSpan::FindNote(const std::string& key) const {
  for (const auto& [k, v] : notes) {
    if (k == key) return v;
  }
  for (const auto& child : children) {
    std::string v = child->FindNote(key);
    if (!v.empty()) return v;
  }
  return std::string();
}

std::string TraceSpan::Render(bool include_durations) const {
  std::string out;
  RenderInto(*this, 0, include_durations, &out);
  return out;
}

void AssignSpanIds(TraceSpan* root, uint64_t seed) {
  // Never 0: 0 renders as "no id assigned".
  root->id = MixSpanId(seed, HashStr(root->name)) | 1ull;
  for (size_t i = 0; i < root->children.size(); ++i) {
    AssignSpanIds(root->children[i].get(), MixSpanId(root->id, i + 1));
  }
}

}  // namespace obs
}  // namespace agentfirst
