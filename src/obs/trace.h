#ifndef AGENTFIRST_OBS_TRACE_H_
#define AGENTFIRST_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

/// Per-probe span trees (the paper's Sec. 4.2 cost-feedback channel as
/// structured data). A probe's lifecycle is recorded as
///
///   probe
///   ├── interpret                  (brief -> phase/accuracy/priority)
///   ├── admit                      (admission, pruning, shed decisions)
///   ├── query[i]                   (one per submitted query, in order)
///   │   ├── plan                   (parse/bind/optimize/estimate)
///   │   ├── exec                   (execution; operator child spans)
///   │   │   └── op:<kind>          (per-operator rows + wall time,
///   │   │                           flat post-order under exec)
///   │   ├── retry[k]               (transparent transient-fault retries)
///   │   └── degrade                (deadline-truncated -> AQP re-run)
///   └── finalize                   (steering, discovery, advisors)
///
/// Skip/truncate/shed reasons are attached as notes, so "why did I not get
/// this answer" is machine-readable from ProbeResponse::trace.
///
/// Determinism: span *structure* (names, notes, order, ids) is a pure
/// function of the probe batch and the configured seeds — ids come from
/// AssignSpanIds, a seeded hash over the tree shape, never from scheduling.
/// Only `duration_ms` is wall-clock; Render(/*include_durations=*/false)
/// excludes it, and that rendering is byte-identical across runs and thread
/// counts.
namespace agentfirst {
namespace obs {

struct TraceSpan {
  /// Seeded-deterministic id (0 until AssignSpanIds runs).
  uint64_t id = 0;
  std::string name;
  /// Wall-clock duration; < 0 = not measured. Excluded from deterministic
  /// renderings.
  double duration_ms = -1.0;
  /// Ordered key/value annotations (cardinalities, costs, reasons).
  std::vector<std::pair<std::string, std::string>> notes;
  /// Children in recording order. shared_ptr keeps child addresses stable
  /// while siblings are appended (builders hold TraceSpan* across appends);
  /// copying a span is shallow — copies share children, which is fine for
  /// the read-only post-finalize lifetime of a trace.
  std::vector<std::shared_ptr<TraceSpan>> children;

  /// Appends a child and returns a pointer that stays valid for the
  /// parent's lifetime.
  TraceSpan* AddChild(std::string child_name);

  void AddNote(std::string key, std::string value) {
    notes.emplace_back(std::move(key), std::move(value));
  }

  bool empty() const {
    return id == 0 && name.empty() && notes.empty() && children.empty();
  }

  /// Depth-first search by span name (this span included); nullptr if absent.
  const TraceSpan* Find(const std::string& span_name) const;

  /// Value of the first note with `key` in this subtree; empty if absent.
  std::string FindNote(const std::string& key) const;

  /// Indented one-line-per-span rendering:
  ///   name#<id> [key=value ...] (<duration> ms)
  /// With include_durations=false the duration suffix is omitted and the
  /// output is deterministic (see file comment).
  std::string Render(bool include_durations = true) const;
};

/// Assigns ids over the tree: each span's id is a hash of (seed, its name,
/// its child index path from the root). Same tree + same seed => same ids,
/// regardless of when or on how many threads the spans were recorded.
void AssignSpanIds(TraceSpan* root, uint64_t seed);

/// Deterministic 64-bit mix used for span ids (exposed for tests).
uint64_t MixSpanId(uint64_t a, uint64_t b);

/// RAII wall-clock timer: measures from construction to destruction into
/// `span->duration_ms`. Null-safe — with a null span the constructor and
/// destructor are a single branch each, so a disabled tracing path costs
/// no clock reads.
class SpanTimer {
 public:
  explicit SpanTimer(TraceSpan* span)
      : span_(span),
        start_(span == nullptr ? std::chrono::steady_clock::time_point()
                               : std::chrono::steady_clock::now()) {}
  ~SpanTimer() {
    if (span_ == nullptr) return;
    span_->duration_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  TraceSpan* span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace agentfirst

#endif  // AGENTFIRST_OBS_TRACE_H_
