#include "obs/metrics.h"

#include <algorithm>

#include "common/telemetry_hook.h"

namespace agentfirst {
namespace obs {

namespace {

/// Bridge from common/'s layer-inverted telemetry hook into the default
/// registry. Installed by a static initializer: any binary that links this
/// object file gets af.pool.* / af.fault.* wired up before main(); binaries
/// without obs/ leave the hook empty and those emits are no-ops.
void* HookCounter(const char* name) {
  return MetricsRegistry::Default().GetCounter(name);
}
void* HookGauge(const char* name) {
  return MetricsRegistry::Default().GetGauge(name);
}
void HookCounterAdd(void* counter, uint64_t delta) {
  static_cast<Counter*>(counter)->Add(delta);
}
void HookGaugeSet(void* gauge, int64_t value) {
  static_cast<Gauge*>(gauge)->Set(value);
}
const bool g_telemetry_bridge_installed = [] {
  InstallTelemetrySink(
      {&HookCounter, &HookGauge, &HookCounterAdd, &HookGaugeSet});
  return true;
}();

/// FNV-1a — stable across runs and platforms, so stripe assignment (and
/// therefore lock contention shape) is reproducible.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

uint64_t Histogram::ValueAtPercentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target sample, 1-based, rounding up.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Stripe& MetricsRegistry::StripeFor(const std::string& name) {
  return stripes_[HashName(name) % kNumStripes];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mutex);
  if (stripe.gauges.count(name) > 0 || stripe.histograms.count(name) > 0) {
    return nullptr;  // name already bound to a different kind
  }
  auto& slot = stripe.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mutex);
  if (stripe.counters.count(name) > 0 || stripe.histograms.count(name) > 0) {
    return nullptr;
  }
  auto& slot = stripe.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mutex);
  if (stripe.counters.count(name) > 0 || stripe.gauges.count(name) > 0) {
    return nullptr;
  }
  auto& slot = stripe.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    for (const auto& [name, counter] : stripe.counters) {
      Sample s;
      s.name = name;
      s.kind = Kind::kCounter;
      s.count = counter->value();
      out.push_back(std::move(s));
    }
    for (const auto& [name, gauge] : stripe.gauges) {
      Sample s;
      s.name = name;
      s.kind = Kind::kGauge;
      s.gauge = gauge->value();
      out.push_back(std::move(s));
    }
    for (const auto& [name, hist] : stripe.histograms) {
      Sample s;
      s.name = name;
      s.kind = Kind::kHistogram;
      s.count = hist->count();
      s.sum = hist->sum();
      s.p50 = hist->ValueAtPercentile(50.0);
      s.p95 = hist->ValueAtPercentile(95.0);
      s.p99 = hist->ValueAtPercentile(99.0);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  for (const Sample& s : Snapshot()) {
    out += s.name;
    switch (s.kind) {
      case Kind::kCounter:
        out += " counter " + std::to_string(s.count);
        break;
      case Kind::kGauge:
        out += " gauge " + std::to_string(s.gauge);
        break;
      case Kind::kHistogram:
        out += " histogram count=" + std::to_string(s.count) +
               " sum=" + std::to_string(s.sum) +
               " p50=" + std::to_string(s.p50) +
               " p95=" + std::to_string(s.p95) +
               " p99=" + std::to_string(s.p99);
        break;
    }
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string out = "[";
  bool first = true;
  for (const Sample& s : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": ";
    AppendJsonString(s.name, &out);
    switch (s.kind) {
      case Kind::kCounter:
        out += ", \"kind\": \"counter\", \"value\": " + std::to_string(s.count);
        break;
      case Kind::kGauge:
        out += ", \"kind\": \"gauge\", \"value\": " + std::to_string(s.gauge);
        break;
      case Kind::kHistogram:
        out += ", \"kind\": \"histogram\", \"count\": " +
               std::to_string(s.count) + ", \"sum\": " + std::to_string(s.sum) +
               ", \"p50\": " + std::to_string(s.p50) +
               ", \"p95\": " + std::to_string(s.p95) +
               ", \"p99\": " + std::to_string(s.p99);
        break;
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

void MetricsRegistry::Reset() {
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    for (auto& [name, counter] : stripe.counters) counter->Reset();
    for (auto& [name, gauge] : stripe.gauges) gauge->Reset();
    for (auto& [name, hist] : stripe.histograms) hist->Reset();
  }
}

}  // namespace obs
}  // namespace agentfirst
