#ifndef AGENTFIRST_OBS_METRICS_H_
#define AGENTFIRST_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

/// The telemetry spine (paper Sec. 4.2: the system must explain its own
/// behaviour back to agents and operators). Three primitives — Counter,
/// Gauge, Histogram — plus a lock-striped name -> metric registry with a
/// process-wide default. Layers register once (paying a striped map lookup),
/// cache the returned pointer, and afterwards every hot-path update is a
/// single relaxed atomic op: the same ≤ a-few-ns discipline as
/// common/fault_injection.h's disabled path.
///
/// Metric naming scheme: `af.<layer>.<name>` — e.g. af.pool.steals,
/// af.exec.cache.hits, af.probe.retries. Histograms append a unit suffix
/// (`_us`, `_rows`). tools/afmetrics dumps the default registry as text or
/// JSON; MetricsRegistry::RenderText/RenderJson do the same in-process.
namespace agentfirst {
namespace obs {

/// Monotonically increasing event count. Relaxed ordering: totals are exact
/// once the writers have quiesced (joined/synchronized), which is when
/// anyone reads them.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, resident bytes). May move
/// in either direction.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples (latencies in
/// microseconds, row counts). Buckets are geometric powers of two: bucket i
/// holds samples whose bit width is i, i.e. bucket 0 holds 0, bucket i>0
/// holds [2^(i-1), 2^i). Fixed buckets keep Record() lock-free (one relaxed
/// add per sample plus sum/count) and make bucket math unit-testable.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;  // covers up to ~5.5e11 (2^39)

  static size_t BucketIndex(uint64_t value) {
    size_t width = 0;
    while (value != 0) {
      value >>= 1;
      ++width;
    }
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }
  /// Largest sample bucket i can hold (inclusive).
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 63) return ~0ull;
    return (1ull << i) - 1;
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// Upper bound of the bucket containing the p-th percentile sample
  /// (p in [0, 100]). Conservative (rounds up to the bucket edge).
  uint64_t ValueAtPercentile(double p) const;

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Name -> metric registry. Registration is lock-striped (metrics whose
/// names hash to different stripes register concurrently without touching
/// the same mutex); returned pointers are stable for the registry's lifetime
/// so callers cache them and never re-enter the lock on the hot path.
///
/// A name permanently binds to its first-registered kind; asking for the
/// same name as a different kind returns nullptr (callers treat that as a
/// programming error; tools surface it in --self-test).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (created on first use, never destroyed —
  /// instrumented singletons like ThreadPool::Default() outlive statics).
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  enum class Kind { kCounter, kGauge, kHistogram };

  /// Point-in-time reading of one metric.
  struct Sample {
    std::string name;
    Kind kind = Kind::kCounter;
    uint64_t count = 0;   // counter value / histogram sample count
    int64_t gauge = 0;    // gauge value
    uint64_t sum = 0;     // histogram sum
    uint64_t p50 = 0;     // histogram percentiles (bucket upper bounds)
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };

  /// All metrics, sorted by name (deterministic output for dumps and tests).
  std::vector<Sample> Snapshot() const;

  /// One metric per line: `<name> counter <value>` / `<name> gauge <value>`
  /// / `<name> histogram count=<n> sum=<s> p50=<..> p95=<..> p99=<..>`.
  std::string RenderText() const;
  /// JSON array of objects with the same fields.
  std::string RenderJson() const;

  /// Zeroes every registered metric (registration survives; cached pointers
  /// stay valid). For tests and tools only.
  void Reset();

 private:
  static constexpr size_t kNumStripes = 8;

  struct Stripe {
    mutable Mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters
        AF_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>> gauges AF_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Histogram>> histograms
        AF_GUARDED_BY(mutex);
  };

  Stripe& StripeFor(const std::string& name);

  Stripe stripes_[kNumStripes];
};

}  // namespace obs
}  // namespace agentfirst

#endif  // AGENTFIRST_OBS_METRICS_H_
