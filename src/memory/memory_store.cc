#include "memory/memory_store.h"

#include <algorithm>
#include <fstream>

#include "common/str_util.h"

namespace agentfirst {

namespace {

std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char n = s[++i];
      if (n == 't') out += '\t';
      else if (n == 'n') out += '\n';
      else out += n;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::optional<ArtifactKind> KindFromName(const std::string& name) {
  for (ArtifactKind k : {ArtifactKind::kProbeResult, ArtifactKind::kColumnEncoding,
                         ArtifactKind::kSchemaNote, ArtifactKind::kStatSummary,
                         ArtifactKind::kGroundingNote}) {
    if (name == ArtifactKindName(k)) return k;
  }
  return std::nullopt;
}

}  // namespace

const char* ArtifactKindName(ArtifactKind k) {
  switch (k) {
    case ArtifactKind::kProbeResult: return "probe_result";
    case ArtifactKind::kColumnEncoding: return "column_encoding";
    case ArtifactKind::kSchemaNote: return "schema_note";
    case ArtifactKind::kStatSummary: return "stat_summary";
    case ArtifactKind::kGroundingNote: return "grounding_note";
  }
  return "?";
}

bool AgenticMemoryStore::Visible(const MemoryArtifact& a,
                                 const std::string& principal) const {
  if (a.owner.empty()) return true;
  if (a.owner == principal) return true;
  return options_.share_across_principals;
}

bool AgenticMemoryStore::IsStale(const MemoryArtifact& a) const {
  if (catalog_ == nullptr) return false;
  for (const std::string& dep : a.table_deps) {
    if (!catalog_->HasTable(dep)) return true;
    auto it = a.table_versions.find(dep);
    if (it != a.table_versions.end()) {
      auto table = catalog_->GetTable(dep);
      if (table.ok() && (*table)->data_version() != it->second) return true;
    }
  }
  // Schema-level artifacts expire on any DDL.
  if ((a.kind == ArtifactKind::kSchemaNote) &&
      a.schema_version != catalog_->schema_version()) {
    return true;
  }
  return false;
}

void AgenticMemoryStore::Touch(MemoryArtifact* a) { a->last_used_tick = ++tick_; }

uint64_t AgenticMemoryStore::Put(MemoryArtifact artifact) {
  ++stats_.puts;
  artifact.id = next_id_++;
  artifact.created_tick = ++tick_;
  artifact.last_used_tick = artifact.created_tick;
  if (catalog_ != nullptr) {
    artifact.schema_version = catalog_->schema_version();
    for (const std::string& dep : artifact.table_deps) {
      auto table = catalog_->GetTable(dep);
      if (table.ok()) artifact.table_versions[dep] = (*table)->data_version();
    }
  }
  // Supersede same-key same-owner artifacts.
  for (size_t i = 0; i < artifacts_.size(); ++i) {
    if (artifacts_[i]->key == artifact.key && artifacts_[i]->owner == artifact.owner) {
      RemoveAt(i);
      break;
    }
  }
  Embedding emb = EmbedText(artifact.key + " " + artifact.content);
  uint64_t id = artifact.id;
  artifacts_.push_back(std::make_unique<MemoryArtifact>(std::move(artifact)));
  embeddings_.push_back(std::move(emb));
  if (listener_ != nullptr) listener_->OnPut(*artifacts_.back());
  EvictIfNeeded();
  return id;
}

std::optional<MemoryHit> AgenticMemoryStore::GetExact(const std::string& key,
                                                      const std::string& principal) {
  for (size_t i = 0; i < artifacts_.size(); ++i) {
    MemoryArtifact* a = artifacts_[i].get();
    if (a->key != key || !Visible(*a, principal)) continue;
    if (IsStale(*a)) {
      if (options_.staleness == StalenessPolicy::kEager) {
        ++stats_.stale_dropped;
        RemoveAt(i);
        ++stats_.exact_misses;
        return std::nullopt;
      }
      ++stats_.stale_served;
      Touch(a);
      ++stats_.exact_hits;
      return MemoryHit{a, 1.0, /*stale=*/true};
    }
    Touch(a);
    ++stats_.exact_hits;
    return MemoryHit{a, 1.0, false};
  }
  ++stats_.exact_misses;
  return std::nullopt;
}

std::vector<MemoryHit> AgenticMemoryStore::Search(const std::string& query,
                                                  size_t k,
                                                  const std::string& principal,
                                                  double min_score) {
  ++stats_.semantic_queries;
  Embedding q = EmbedText(query);
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < artifacts_.size(); ++i) {
    if (!Visible(*artifacts_[i], principal)) continue;
    double s = CosineSimilarity(q, embeddings_[i]);
    if (s >= min_score) scored.emplace_back(s, i);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  std::vector<MemoryHit> hits;
  std::vector<size_t> to_drop;
  for (const auto& [score, i] : scored) {
    if (hits.size() >= k) break;
    MemoryArtifact* a = artifacts_[i].get();
    bool stale = IsStale(*a);
    if (stale && options_.staleness == StalenessPolicy::kEager) {
      ++stats_.stale_dropped;
      to_drop.push_back(i);
      continue;
    }
    if (stale) ++stats_.stale_served;
    Touch(a);
    hits.push_back(MemoryHit{a, score, stale});
  }
  // Remove stale entries found during the scan (descending index order).
  std::sort(to_drop.begin(), to_drop.end(), std::greater<>());
  for (size_t i : to_drop) RemoveAt(i);
  return hits;
}

size_t AgenticMemoryStore::SweepStale() {
  size_t removed = 0;
  for (size_t i = artifacts_.size(); i > 0; --i) {
    if (IsStale(*artifacts_[i - 1])) {
      RemoveAt(i - 1);
      ++removed;
      ++stats_.stale_dropped;
    }
  }
  return removed;
}

Status AgenticMemoryStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return Status::Internal("cannot open for writing: " + path);
  for (const auto& artifact : artifacts_) {
    if (artifact->kind == ArtifactKind::kProbeResult) continue;  // re-derivable
    out << ArtifactKindName(artifact->kind) << '\t' << EscapeField(artifact->key)
        << '\t' << EscapeField(artifact->owner) << '\t'
        << EscapeField(Join(artifact->table_deps, ",")) << '\t'
        << EscapeField(artifact->content) << '\n';
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<size_t> AgenticMemoryStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open: " + path);
  size_t loaded = 0;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 5) {
      return Status::InvalidArgument("malformed memory artifact at line " +
                                     std::to_string(line_number));
    }
    auto kind = KindFromName(fields[0]);
    if (!kind.has_value()) {
      return Status::InvalidArgument("unknown artifact kind at line " +
                                     std::to_string(line_number));
    }
    MemoryArtifact artifact;
    artifact.kind = *kind;
    artifact.key = UnescapeField(fields[1]);
    artifact.owner = UnescapeField(fields[2]);
    artifact.table_deps = Split(UnescapeField(fields[3]), ',', /*skip_empty=*/true);
    artifact.content = UnescapeField(fields[4]);
    Put(std::move(artifact));
    ++loaded;
  }
  return loaded;
}

void AgenticMemoryStore::EvictIfNeeded() {
  while (artifacts_.size() > options_.capacity) {
    size_t lru = 0;
    for (size_t i = 1; i < artifacts_.size(); ++i) {
      if (artifacts_[i]->last_used_tick < artifacts_[lru]->last_used_tick) lru = i;
    }
    RemoveAt(lru);
    ++stats_.evictions;
  }
}

void AgenticMemoryStore::RemoveAt(size_t i) {
  uint64_t id = artifacts_[i]->id;
  artifacts_.erase(artifacts_.begin() + static_cast<long>(i));
  embeddings_.erase(embeddings_.begin() + static_cast<long>(i));
  if (listener_ != nullptr) listener_->OnRemove(id);
}

std::vector<const MemoryArtifact*> AgenticMemoryStore::SnapshotArtifacts() const {
  std::vector<const MemoryArtifact*> out;
  out.reserve(artifacts_.size());
  for (const auto& a : artifacts_) out.push_back(a.get());
  return out;
}

void AgenticMemoryStore::RestorePut(MemoryArtifact artifact) {
  Embedding emb = EmbedText(artifact.key + " " + artifact.content);
  if (artifact.id >= next_id_) next_id_ = artifact.id + 1;
  if (artifact.created_tick > tick_) tick_ = artifact.created_tick;
  if (artifact.last_used_tick > tick_) tick_ = artifact.last_used_tick;
  artifacts_.push_back(std::make_unique<MemoryArtifact>(std::move(artifact)));
  embeddings_.push_back(std::move(emb));
}

void AgenticMemoryStore::RestoreRemove(uint64_t id) {
  for (size_t i = 0; i < artifacts_.size(); ++i) {
    if (artifacts_[i]->id != id) continue;
    artifacts_.erase(artifacts_.begin() + static_cast<long>(i));
    embeddings_.erase(embeddings_.begin() + static_cast<long>(i));
    return;
  }
}

}  // namespace agentfirst
