#ifndef AGENTFIRST_MEMORY_MEMORY_STORE_H_
#define AGENTFIRST_MEMORY_MEMORY_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
// aflint:allow(layer-back-edge) the memory store caches agent-visible
// artifacts by design (paper Sec. 5): Embeddings for semantic recall ...
#include "embed/embedding.h"
// aflint:allow(layer-back-edge) ... and whole ResultSets for answer reuse.
// Both are leaf value types; neither embed/ nor exec/ includes memory/.
#include "exec/result_set.h"

namespace agentfirst {

/// What a memory artifact records (paper Sec. 6.1 "Artifacts").
enum class ArtifactKind {
  kProbeResult,     // cached answer of a prior probe
  kColumnEncoding,  // e.g. "state is spelled out, not two-letter codes"
  kSchemaNote,      // which tables/columns matter for what
  kStatSummary,     // value ranges, distinct counts, partitions' coverage
  kGroundingNote,   // any other free-form grounding
};

const char* ArtifactKindName(ArtifactKind k);

/// One grounding artifact. Artifacts pin the catalog/table versions they
/// were derived from so staleness is detectable.
struct MemoryArtifact {
  uint64_t id = 0;
  ArtifactKind kind = ArtifactKind::kGroundingNote;
  std::string key;       // structured key, e.g. "table:sales/col:state"
  std::string content;   // natural-language grounding text
  ResultSetPtr result;   // optional cached result rows
  std::vector<std::string> table_deps;
  uint64_t schema_version = 0;
  std::map<std::string, uint64_t> table_versions;
  std::string owner;     // principal; empty = public
  uint64_t created_tick = 0;
  uint64_t last_used_tick = 0;
};

/// A retrieval hit; `stale` is only possible under the lazy policy.
struct MemoryHit {
  const MemoryArtifact* artifact = nullptr;
  double score = 1.0;
  bool stale = false;
};

/// Observer of memory-store state changes, called AFTER each change. OnPut
/// sees the artifact fully stamped (id, ticks, pinned versions); OnRemove
/// fires for every departure — supersede, LRU eviction, stale drop, sweep —
/// so a log of (put, remove) events replays to the exact artifact set. The
/// write-ahead log implements this; recovery Restore* methods bypass it.
class MemoryMutationListener {
 public:
  virtual ~MemoryMutationListener() = default;
  virtual void OnPut(const MemoryArtifact& artifact) = 0;
  virtual void OnRemove(uint64_t id) = 0;
};

/// The agentic memory store (paper Sec. 6.1): a persistent, queryable
/// semantic cache of grounding gleaned by prior probes. Supports exact
/// structured lookup and embedding-based semantic search, staleness
/// handling against catalog versions (eager invalidation or lazy detection),
/// LRU eviction, and per-principal access control.
class AgenticMemoryStore {
 public:
  enum class StalenessPolicy {
    kEager,  // stale artifacts are dropped at access time (never served)
    kLazy,   // stale artifacts are served flagged; dropped when superseded
  };

  struct Options {
    size_t capacity = 4096;
    StalenessPolicy staleness = StalenessPolicy::kEager;
    /// When false, artifacts are only visible to their owner (privacy mode,
    /// paper's multi-user concern); when true, all principals share.
    bool share_across_principals = true;
  };

  struct Stats {
    uint64_t puts = 0;
    uint64_t exact_hits = 0;
    uint64_t exact_misses = 0;
    uint64_t semantic_queries = 0;
    uint64_t stale_dropped = 0;
    uint64_t stale_served = 0;
    uint64_t evictions = 0;
  };

  AgenticMemoryStore(Catalog* catalog, Options options)
      : catalog_(catalog), options_(options) {}

  /// Stores an artifact (embedding derived from key + content). Returns id.
  /// An artifact with an identical key and owner is superseded.
  uint64_t Put(MemoryArtifact artifact);

  /// Exact lookup by structured key (subject to visibility and staleness).
  std::optional<MemoryHit> GetExact(const std::string& key,
                                    const std::string& principal = "");

  /// Semantic search: top-k artifacts by embedding similarity to `query`,
  /// above `min_score`.
  std::vector<MemoryHit> Search(const std::string& query, size_t k,
                                const std::string& principal = "",
                                double min_score = 0.15);

  /// Drops every artifact that is stale with respect to the catalog now.
  /// Returns the number removed.
  size_t SweepStale();

  /// Persists grounding artifacts to a file (tab-separated, one artifact per
  /// line). Cached result rows are NOT persisted: they are re-derivable and
  /// version-pinned; the durable value is the grounding text.
  Status SaveToFile(const std::string& path) const;

  /// Loads artifacts from `path` into the store (same-key artifacts are
  /// superseded). Loaded artifacts are version-stamped against the *current*
  /// catalog. Returns the number loaded.
  Result<size_t> LoadFromFile(const std::string& path);

  size_t size() const { return artifacts_.size(); }
  const Stats& stats() const { return stats_; }

  /// Installs (or clears) the durability observer.
  void SetMutationListener(MemoryMutationListener* listener) {
    listener_ = listener;
  }

  // --- durability support (src/wal/) --------------------------------------

  /// Read-only view of every artifact in store order, for checkpointing.
  std::vector<const MemoryArtifact*> SnapshotArtifacts() const;
  uint64_t next_id() const { return next_id_; }
  uint64_t tick() const { return tick_; }

  /// Recovery-only: re-inserts an already-stamped artifact exactly as
  /// logged — no re-stamping, no supersede scan, no eviction, no listener
  /// callback (removals were logged separately and replay in order). Counter
  /// state advances so post-recovery puts continue the id/tick sequence.
  void RestorePut(MemoryArtifact artifact);
  /// Recovery-only: removes the artifact with `id` (no-op when absent).
  void RestoreRemove(uint64_t id);
  /// Recovery-only: pins the id/tick counters after a checkpoint load.
  void RestoreCounters(uint64_t next_id, uint64_t tick) {
    next_id_ = next_id;
    tick_ = tick;
  }

 private:
  bool Visible(const MemoryArtifact& a, const std::string& principal) const;
  bool IsStale(const MemoryArtifact& a) const;
  void Touch(MemoryArtifact* a);
  void EvictIfNeeded();
  /// Erases slot `i` and notifies the listener (the one removal funnel).
  void RemoveAt(size_t i);

  Catalog* catalog_;
  Options options_;
  /// Not owned; nullptr when durability is off.
  MemoryMutationListener* listener_ = nullptr;
  Stats stats_;
  uint64_t next_id_ = 1;
  uint64_t tick_ = 0;
  // id -> artifact; parallel embedding storage for semantic search.
  std::vector<std::unique_ptr<MemoryArtifact>> artifacts_;
  std::vector<Embedding> embeddings_;
};

}  // namespace agentfirst

#endif  // AGENTFIRST_MEMORY_MEMORY_STORE_H_
