#include "lint/lockorder.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

namespace agentfirst {
namespace lint {

namespace {

struct Site {
  std::string file;
  size_t line = 0;  // 0-based
};

struct AcqRec {
  std::string lock;
  Site site;
};

struct CallRec {
  std::string callee;
  std::string qualifier;  // "Cls" for Cls::Name(...), else ""
  bool member = false;    // obj.Name(...) / obj->Name(...)
  std::vector<std::string> held;  // locks held at the call, entry included
  Site site;
};

struct WaitRec {
  std::string mutex;
  Site site;
};

struct Function {
  std::string module;
  std::string cls;   // "" for free functions
  std::string name;
  std::set<std::string> entry_held;    // canonical AF_REQUIRES locks
  std::vector<AcqRec> acquisitions;    // direct, never includes entry_held
  std::vector<CallRec> calls;
  std::vector<WaitRec> waits;          // direct waits on held mutexes

  // Resolution / closure state.
  std::vector<Function*> targets;              // parallel to calls (nullptr = unresolved)
  int color = 0;                               // 0 new, 1 on stack, 2 done
  std::map<std::string, Site> acq_closure;     // lock -> first site
  std::map<std::string, Site> wait_closure;    // mutex -> first site

  std::string Display() const {
    return cls.empty() ? module + "::" + name : cls + "::" + name;
  }
};

struct EdgeInfo {
  Site site;        // where the second lock is taken (or the call made)
  std::string via;  // "" for a direct acquisition, else "via call to ..."
};

bool IsCallKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "if",     "while",  "for",     "switch", "return",  "sizeof",
      "alignof", "new",   "delete",  "throw",  "co_await", "co_return",
      "not",    "and",    "or",      "defined", "static_assert",
  };
  return kKeywords.count(t) > 0;
}

/// Normalizes a lock expression: strips address-of/deref and the this->
/// prefix, folds -> into '.' so pointer and reference spellings agree.
std::string CanonExpr(std::string e) {
  while (!e.empty() && (e[0] == '&' || e[0] == '*')) e.erase(0, 1);
  if (StartsWith(e, "this->")) {
    e = e.substr(6);
  } else if (StartsWith(e, "this.")) {
    e = e.substr(5);
  }
  size_t p = 0;
  while ((p = e.find("->")) != std::string::npos) e.replace(p, 2, ".");
  return e;
}

/// Canonical lock id: the normalized expression qualified by the enclosing
/// class (free functions and file-scope locks qualify by module). An
/// expression that already carries a qualifier keeps it.
std::string QualifyLock(const std::string& module, const std::string& cls,
                        const std::string& expr) {
  std::string canon = CanonExpr(expr);
  if (canon.find("::") != std::string::npos) return canon;
  return (cls.empty() ? module : cls) + "::" + canon;
}

class Analysis {
 public:
  std::vector<Diagnostic> Run(const std::vector<SourceFile>& files) {
    std::vector<const SourceFile*> order;
    order.reserve(files.size());
    for (const SourceFile& sf : files) order.push_back(&sf);
    std::sort(order.begin(), order.end(),
              [](const SourceFile* a, const SourceFile* b) {
                return a->path < b->path;
              });
    for (const SourceFile* sf : order) {
      pres_[sf->path] = &sf->pre;
      for (const auto& decl : sf->pre.lock_orders) declared_.insert(decl);
    }
    for (const SourceFile* sf : order) ScanFile(*sf);
    Resolve();
    GenerateEdges();
    DetectCycles();
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.file, a.line, a.rule, a.message) <
                       std::tie(b.file, b.line, b.rule, b.message);
              });
    return std::move(diags_);
  }

 private:
  // --- per-file scan ---------------------------------------------------------

  struct ScopeData {
    size_t locks = 0;   // locks acquired directly in this scope
    bool is_fn = false;
    bool is_type = false;
  };
  struct FnCtx {
    Function* fn = nullptr;
    std::vector<std::string> held;  // acquisition stack, entry_held excluded
  };

  Function* Get(const std::string& module, const std::string& cls,
                const std::string& name) {
    std::string key = module + "\n" + cls + "\n" + name;
    auto it = functions_.find(key);
    if (it == functions_.end()) {
      it = functions_.emplace(key, Function{}).first;
      it->second.module = module;
      it->second.cls = cls;
      it->second.name = name;
    }
    return &it->second;
  }

  void Report(const Site& site, const std::string& rule, std::string message) {
    auto pre = pres_.find(site.file);
    if (pre != pres_.end() && pre->second->Allowed(site.line, rule)) return;
    Diagnostic d{site.file, site.line + 1, rule, std::move(message)};
    if (seen_.insert(d.ToString()).second) diags_.push_back(std::move(d));
  }

  void ScanFile(const SourceFile& sf) {
    const std::string module = ModuleOfPath(sf.path);
    if (module.empty() || module == "tools") return;
    std::vector<Token> tokens = Tokenize(sf.pre);
    ScopeWalker walker;
    std::vector<ScopeData> scopes;
    std::vector<FnCtx> fns;
    std::vector<std::string> type_stack;
    size_t lambda_seq = 0;

    auto all_held = [&](const FnCtx& f) {
      std::vector<std::string> out(f.fn->entry_held.begin(),
                                   f.fn->entry_held.end());
      out.insert(out.end(), f.held.begin(), f.held.end());
      return out;
    };

    auto handle_acquire = [&](const std::string& expr, size_t line) {
      if (fns.empty()) return;
      FnCtx& f = fns.back();
      std::string id = QualifyLock(module, f.fn->cls, expr);
      bool already = f.fn->entry_held.count(id) > 0 ||
                     std::find(f.held.begin(), f.held.end(), id) != f.held.end();
      if (already) {
        Report({sf.path, line}, "lock-self-deadlock",
               "MutexLock on '" + id +
                   "' which is already held here (AF_REQUIRES entry or an "
                   "enclosing scope): a non-recursive Mutex self-deadlocks");
        return;
      }
      for (const std::string& h : all_held(f)) {
        edges_.emplace(std::make_pair(h, id), EdgeInfo{{sf.path, line}, ""});
      }
      f.fn->acquisitions.push_back({id, {sf.path, line}});
      f.held.push_back(id);
      if (!scopes.empty()) ++scopes.back().locks;
    };

    auto handle_wait = [&](const std::string& arg, size_t line) {
      if (fns.empty()) return;
      FnCtx& f = fns.back();
      std::string id = QualifyLock(module, f.fn->cls, arg);
      std::vector<std::string> held = all_held(f);
      if (std::find(held.begin(), held.end(), id) == held.end()) {
        return;  // not a wait on a lock we track — some unrelated Wait()
      }
      f.fn->waits.push_back({id, {sf.path, line}});
      std::string extras;
      for (const std::string& h : held) {
        if (h == id) continue;
        if (!extras.empty()) extras += ", ";
        extras += "'" + h + "'";
      }
      if (!extras.empty()) {
        Report({sf.path, line}, "condvar-hold",
               "Wait(" + id + ") while also holding " + extras +
                   ": Wait releases only its own mutex, so the extra lock "
                   "stays held while blocked and deadlocks any waker that "
                   "needs it");
      }
    };

    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      const std::string& text = t.text;
      auto next_is = [&](const char* s) {
        return i + 1 < tokens.size() && tokens[i + 1].text == s;
      };

      if (text == ";") {
        // Declarations carry the AF_REQUIRES contract that the definition
        // (often in the .cc, without repeating the macro) must inherit.
        const std::vector<Token>& sig = walker.pending_sig();
        bool has_requires = false;
        for (const Token& st : sig) {
          if (st.text == "AF_REQUIRES") {
            has_requires = true;
            break;
          }
        }
        if (has_requires) {
          SigInfo d = ClassifySignature(sig);
          if (d.kind == SigInfo::kFunction && !d.name.empty() &&
              !d.requires_args.empty()) {
            std::string cls = !d.class_qualifier.empty()
                                  ? d.class_qualifier
                                  : (type_stack.empty() ? "" : type_stack.back());
            Function* fn = Get(module, cls, d.name);
            for (const std::string& arg : d.requires_args) {
              fn->entry_held.insert(QualifyLock(module, cls, arg));
            }
          }
        }
      } else if (text == "MutexLock" && i + 2 < tokens.size() &&
                 tokens[i + 1].IsIdent() && tokens[i + 2].text == "(") {
        int depth = 0;
        std::string expr;
        for (size_t j = i + 2; j < tokens.size(); ++j) {
          const std::string& jt = tokens[j].text;
          if (jt == "(") {
            if (depth++ > 0) expr += jt;
          } else if (jt == ")") {
            if (--depth == 0) break;
            expr += jt;
          } else if (depth >= 1) {
            expr += jt;
          }
        }
        if (!expr.empty()) handle_acquire(expr, t.line);
      } else if ((text == "Wait" || text == "WaitFor" || text == "WaitUntil") &&
                 i > 0 &&
                 (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
                 next_is("(")) {
        int depth = 0;
        std::string arg;
        for (size_t j = i + 1; j < tokens.size(); ++j) {
          const std::string& jt = tokens[j].text;
          if (jt == "(") {
            if (depth++ > 0) arg += jt;
          } else if (jt == ")") {
            if (--depth == 0) break;
            arg += jt;
          } else if (jt == "," && depth == 1) {
            break;  // first argument only: the mutex
          } else if (depth >= 1) {
            arg += jt;
          }
        }
        if (!arg.empty()) handle_wait(arg, t.line);
      } else if (t.IsIdent() && !IsCallKeyword(text) && next_is("(") &&
                 !fns.empty()) {
        const std::string prev = i > 0 ? tokens[i - 1].text : "";
        bool declaration = (i > 0 && tokens[i - 1].IsIdent()) || prev == "~";
        if (!declaration) {
          CallRec call;
          call.callee = text;
          call.member = prev == "." || prev == "->";
          if (call.member && i >= 2 && tokens[i - 2].text == "this") {
            call.member = false;  // this->F() is an own-class call
          }
          if (prev == "::" && i >= 2 && tokens[i - 2].IsIdent()) {
            call.qualifier = tokens[i - 2].text;
          }
          call.held = all_held(fns.back());
          call.site = {sf.path, t.line};
          fns.back().fn->calls.push_back(std::move(call));
        }
      }

      ScopeWalker::Event ev = walker.Feed(t);
      if (ev == ScopeWalker::Event::kOpen) {
        const SigInfo& sig = walker.stack().back().sig;
        ScopeData sd;
        switch (sig.kind) {
          case SigInfo::kType:
            sd.is_type = true;
            type_stack.push_back(sig.name);
            break;
          case SigInfo::kFunction: {
            std::string cls = !sig.class_qualifier.empty()
                                  ? sig.class_qualifier
                                  : (type_stack.empty() ? "" : type_stack.back());
            Function* fn =
                Get(module, cls, sig.name.empty() ? "<anon>" : sig.name);
            for (const std::string& arg : sig.requires_args) {
              fn->entry_held.insert(QualifyLock(module, cls, arg));
            }
            fns.push_back({fn, {}});
            sd.is_fn = true;
            break;
          }
          case SigInfo::kLambda: {
            // A lambda is a separate anonymous function: it may run later on
            // another thread, so it inherits no held locks — only what its
            // own AF_REQUIRES declares. It does inherit the enclosing class
            // for lock naming (captured members are that class's members).
            std::string cls = fns.empty() ? "" : fns.back().fn->cls;
            Function* fn = Get(module, cls,
                               "<lambda@" + sf.path + "#" +
                                   std::to_string(++lambda_seq) + ">");
            for (const std::string& arg : sig.requires_args) {
              fn->entry_held.insert(QualifyLock(module, cls, arg));
            }
            fns.push_back({fn, {}});
            sd.is_fn = true;
            break;
          }
          default:
            break;
        }
        scopes.push_back(sd);
      } else if (ev == ScopeWalker::Event::kClose) {
        if (!scopes.empty()) {
          ScopeData sd = scopes.back();
          scopes.pop_back();
          if (sd.is_type && !type_stack.empty()) type_stack.pop_back();
          if (sd.is_fn) {
            if (!fns.empty()) fns.pop_back();
          } else if (!fns.empty()) {
            FnCtx& f = fns.back();
            for (size_t k = 0; k < sd.locks && !f.held.empty(); ++k) {
              f.held.pop_back();
            }
          }
        }
      }
    }
  }

  // --- whole-program phases --------------------------------------------------

  void Resolve() {
    // (module, name) -> every function with that name, for the
    // unique-in-module fallback on bare calls.
    std::map<std::pair<std::string, std::string>, std::vector<Function*>> by_name;
    for (auto& [key, fn] : functions_) {
      by_name[{fn.module, fn.name}].push_back(&fn);
    }
    auto exact = [&](const std::string& module, const std::string& cls,
                     const std::string& name) -> Function* {
      auto it = functions_.find(module + "\n" + cls + "\n" + name);
      return it == functions_.end() ? nullptr : &it->second;
    };
    for (auto& [key, fn] : functions_) {
      fn.targets.reserve(fn.calls.size());
      for (const CallRec& c : fn.calls) {
        Function* target = nullptr;
        if (!c.qualifier.empty()) {
          target = exact(fn.module, c.qualifier, c.callee);
        } else if (!c.member) {
          // Own class first (unqualified same-class calls); bare calls may
          // also resolve to the unique function of that name in the module.
          // Member calls on a foreign object (`obj.F()`, `file_.Sync()`)
          // resolve to nothing: the receiver's type is unknown, and guessing
          // the caller's own class manufactures self-deadlock false
          // positives (e.g. `shard.lru.size()` is not `ExecCache::size()`).
          target = exact(fn.module, fn.cls, c.callee);
          if (target == nullptr) {
            auto it = by_name.find({fn.module, c.callee});
            if (it != by_name.end() && it->second.size() == 1) {
              target = it->second[0];
            }
          }
        }
        fn.targets.push_back(target == &fn ? nullptr : target);
      }
    }
    for (auto& [key, fn] : functions_) Close(&fn);
  }

  /// Transitive acquisitions/waits. Mutual recursion under-approximates: an
  /// on-stack callee contributes nothing (documented soundness limit).
  void Close(Function* f) {
    if (f->color != 0) return;
    f->color = 1;
    for (const AcqRec& a : f->acquisitions) {
      f->acq_closure.emplace(a.lock, a.site);
    }
    for (const WaitRec& w : f->waits) {
      f->wait_closure.emplace(w.mutex, w.site);
    }
    for (size_t i = 0; i < f->calls.size(); ++i) {
      Function* t = f->targets[i];
      if (t == nullptr || t->color == 1) continue;
      Close(t);
      for (const auto& [lock, site] : t->acq_closure) {
        f->acq_closure.emplace(lock, f->calls[i].site);
      }
      for (const auto& [mutex, site] : t->wait_closure) {
        f->wait_closure.emplace(mutex, f->calls[i].site);
      }
    }
    f->color = 2;
  }

  void GenerateEdges() {
    for (auto& [key, fn] : functions_) {
      for (size_t i = 0; i < fn.calls.size(); ++i) {
        Function* t = fn.targets[i];
        if (t == nullptr) continue;
        const CallRec& c = fn.calls[i];
        if (c.held.empty()) continue;
        for (const std::string& h : c.held) {
          for (const auto& [lock, site] : t->acq_closure) {
            if (lock == h) {
              Report(c.site, "lock-self-deadlock",
                     "call to '" + t->Display() + "' re-acquires '" + h +
                         "' already held here (through the call chain): a "
                         "non-recursive Mutex self-deadlocks");
            } else {
              edges_.emplace(std::make_pair(h, lock),
                             EdgeInfo{c.site, "via call to " + t->Display()});
            }
          }
          for (const auto& [mutex, site] : t->wait_closure) {
            if (mutex == h) continue;
            Report(c.site, "condvar-hold",
                   "call to '" + t->Display() + "' reaches Wait(" + mutex +
                       ") while '" + h +
                       "' is held here: Wait releases only its own mutex");
          }
        }
      }
    }
    // Declared orderings kill contradicting reverse edges before cycle
    // detection: aflint:lock-order(A, B) asserts A always precedes B, so a
    // computed B -> A edge is an artifact of over-approximation.
    for (const auto& [a, b] : declared_) {
      edges_.erase(std::make_pair(b, a));
    }
  }

  void DetectCycles() {
    // Deterministic adjacency (std::map keeps both endpoints sorted).
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [edge, info] : edges_) {
      adj[edge.first].push_back(edge.second);
      adj[edge.second];  // make sure the sink exists as a node
    }

    // Tarjan SCC, iterative over an explicit stack for determinism and to
    // keep deep chains off the call stack.
    std::map<std::string, int> index, low;
    std::map<std::string, bool> on_stack;
    std::vector<std::string> stack;
    std::vector<std::vector<std::string>> sccs;
    int next_index = 0;
    struct Frame {
      std::string node;
      size_t child = 0;
    };
    for (const auto& [start, ignored] : adj) {
      if (index.count(start) > 0) continue;
      std::vector<Frame> frames;
      frames.push_back({start});
      index[start] = low[start] = next_index++;
      stack.push_back(start);
      on_stack[start] = true;
      while (!frames.empty()) {
        Frame& f = frames.back();
        const std::vector<std::string>& out = adj[f.node];
        if (f.child < out.size()) {
          const std::string& next = out[f.child++];
          if (index.count(next) == 0) {
            index[next] = low[next] = next_index++;
            stack.push_back(next);
            on_stack[next] = true;
            frames.push_back({next});
          } else if (on_stack[next]) {
            low[f.node] = std::min(low[f.node], index[next]);
          }
        } else {
          if (low[f.node] == index[f.node]) {
            std::vector<std::string> scc;
            while (true) {
              std::string n = stack.back();
              stack.pop_back();
              on_stack[n] = false;
              scc.push_back(n);
              if (n == f.node) break;
            }
            if (scc.size() > 1) sccs.push_back(std::move(scc));
          }
          std::string done = f.node;
          frames.pop_back();
          if (!frames.empty()) {
            low[frames.back().node] =
                std::min(low[frames.back().node], low[done]);
          }
        }
      }
    }

    for (std::vector<std::string>& scc : sccs) {
      std::sort(scc.begin(), scc.end());
      ReportCycle(scc);
    }
  }

  void ReportCycle(const std::vector<std::string>& scc) {
    // Recover one concrete cycle through the SCC, starting from its
    // smallest node, always taking the smallest in-SCC neighbor first.
    std::set<std::string> members(scc.begin(), scc.end());
    const std::string& start = scc.front();
    std::vector<std::string> path{start};
    std::set<std::string> visited{start};
    bool closed = false;
    while (!closed) {
      const std::string& cur = path.back();
      std::string chosen;
      for (const auto& [edge, info] : edges_) {
        if (edge.first != cur || members.count(edge.second) == 0) continue;
        if (edge.second == start && path.size() > 1) {
          chosen = edge.second;
          closed = true;
          break;
        }
        if (visited.count(edge.second) == 0 && chosen.empty()) {
          chosen = edge.second;
        }
      }
      if (closed) break;
      if (chosen.empty()) {
        // Dead end (shouldn't happen inside an SCC); back out gracefully.
        if (path.size() <= 1) return;
        path.pop_back();
        continue;
      }
      visited.insert(chosen);
      path.push_back(chosen);
    }
    path.push_back(start);

    std::string desc = "lock-order cycle: ";
    Site report_site;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const EdgeInfo& info = edges_.at({path[i], path[i + 1]});
      if (i == 0) {
        report_site = info.site;
        desc += path[i];
      }
      desc += " -> " + path[i + 1] + " [" + info.site.file + ":" +
              std::to_string(info.site.line + 1) +
              (info.via.empty() ? "" : " " + info.via) + "]";
    }
    desc +=
        ": opposite acquisition orders deadlock under the right "
        "interleaving; fix one path or declare the intended order with "
        "aflint:lock-order(A, B)";
    Report(report_site, "lock-order-cycle", desc);
  }

  std::map<std::string, Function> functions_;
  std::map<std::string, const PrelexedSource*> pres_;
  std::set<std::pair<std::string, std::string>> declared_;
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges_;
  std::set<std::string> seen_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> AnalyzeLockOrder(const std::vector<SourceFile>& files) {
  return Analysis().Run(files);
}

}  // namespace lint
}  // namespace agentfirst
