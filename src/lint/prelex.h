#ifndef AGENTFIRST_LINT_PRELEX_H_
#define AGENTFIRST_LINT_PRELEX_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

/// The shared pre-lex step for every aflint pass. Each file is scrubbed
/// exactly once (comment and string-literal contents blanked, suppression
/// and annotation comments parsed, preprocessor lines marked) and the result
/// feeds the line-rule engine, the lock-order scanner, and the layering
/// checker alike — no pass re-scrubs, and no pass ever pattern-matches text
/// that lives in prose or SQL.
namespace agentfirst {
namespace lint {

/// Source text after comment/string scrubbing, with per-line metadata.
struct PrelexedSource {
  /// Original text, split into lines (no trailing '\n').
  std::vector<std::string> raw;
  /// Code text, same line structure as the input; comment bodies and
  /// string/char literal contents replaced by spaces (quotes kept).
  std::vector<std::string> lines;
  /// Rules named in an aflint:allow(...) comment on each line.
  std::vector<std::set<std::string>> allows;
  /// Line held a comment and no code (suppressions there cover line+1).
  std::vector<bool> comment_only;
  /// Line belongs to a preprocessor directive (including continuations).
  std::vector<bool> preprocessor;
  /// Line's comment text opened / closed an aflint:kernel region.
  std::vector<bool> kernel_begin;
  std::vector<bool> kernel_end;
  /// Declared lock orderings from `aflint:lock-order(A, B)` comments: the
  /// author asserts A is (transitively) acquired before B by design and the
  /// reverse order cannot happen at runtime. Collected file-wide by the
  /// lock-order pass.
  std::vector<std::pair<std::string, std::string>> lock_orders;

  /// True when the rule is allowed on line `idx` (0-based) — either named on
  /// the line itself or on a comment-only line immediately above it.
  bool Allowed(size_t idx, const std::string& rule) const;
};

PrelexedSource Prelex(const std::string& content);

/// One file handed to a whole-program pass: repo-relative forward-slash
/// path plus its (single) pre-lex.
struct SourceFile {
  std::string path;
  PrelexedSource pre;
};

// --- small shared text helpers ---------------------------------------------

inline bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

inline bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

inline bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Finds `token` in `line` starting at `from`, requiring identifier
/// boundaries on both sides (':' counts as part of a qualified name on the
/// left, so "this_thread" and "x::rand" style qualifications don't match).
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0);

/// Module name of a repo-relative path under src/ ("src/io/file_util.h" -> "io"),
/// "tools" for paths under tools/, "" otherwise.
inline std::string ModuleOfPath(const std::string& path) {
  if (StartsWith(path, "tools/")) return "tools";
  if (!StartsWith(path, "src/")) return "";
  size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

// --- token stream -----------------------------------------------------------

/// One lexical token of scrubbed code. `text` is an identifier (or number),
/// a multi-char operator ("::", "->"), or a single punctuation char. String
/// and char literals come through as a lone '"' / '\'' token; preprocessor
/// lines produce no tokens at all.
struct Token {
  size_t line = 0;  // 0-based line index into the PrelexedSource
  std::string text;

  bool IsIdent() const { return !text.empty() && IsIdentChar(text[0]); }
};

std::vector<Token> Tokenize(const PrelexedSource& src);

// --- scope-signature classifier ---------------------------------------------

/// Classification of the statement text preceding a '{' — the scope
/// machinery the fault-point-scope rule introduced, shared with the
/// lock-order scanner so both agree on what a function is.
struct SigInfo {
  enum Kind {
    kNamespace,     // namespace N {
    kType,          // class/struct/union/enum {
    kControl,       // if/for/while/switch/else/do/try/catch/case {
    kFunction,      // a function (or constructor) definition
    kLambda,        // [..](..) {
    kPlain,         // init-list / bare block / unknown
  };
  Kind kind = kPlain;
  /// For kFunction/kLambda: does it return Status / Result<T>?
  bool returns_status = false;
  /// For kFunction: the function name; for kNamespace/kType: the scope name.
  std::string name;
  /// For kFunction defined out of line ("Ret Cls::Name(...)"): "Cls".
  std::string class_qualifier;
  /// Raw argument expressions of every AF_REQUIRES(...) in the signature.
  std::vector<std::string> requires_args;
  /// For kFunction: this '{' is a brace-init inside the member-init list
  /// ("Foo::Foo() : member{...} {"), not the function body. The body's '{'
  /// follows; ScopeWalker handles the deferral.
  bool init_list_brace = false;
};

/// Classifies the tokens accumulated since the last statement boundary
/// (';', '{', '}') up to an opening '{'.
SigInfo ClassifySignature(const std::vector<Token>& sig);

/// Token-driven brace/scope walker shared by the fault-point-scope rule and
/// the lock-order scanner, so both agree on what a function is. Feed tokens
/// in order; between tokens the current scope stack is available. Because
/// the walk is token-interleaved, a one-line "Status F() { AF_FAULT_POINT..."
/// sees the function scope already open when the macro token arrives — the
/// false positive the old line-at-a-time walker had.
class ScopeWalker {
 public:
  struct Scope {
    SigInfo sig;
    /// Effective "innermost function returns Status/Result", inherited
    /// through control-flow and plain scopes, reset by namespaces, types,
    /// functions, and lambdas.
    bool returns_status = false;
  };

  enum class Event {
    kNone,       // token absorbed into the pending signature
    kOpen,       // '{': stack().back() is the newly opened scope
    kClose,      // '}': closed() is the scope just closed
    kStatement,  // ';': signature buffer reset
  };

  Event Feed(const Token& t);

  const std::vector<Scope>& stack() const { return stack_; }
  const Scope& closed() const { return closed_; }
  /// Tokens accumulated since the last statement boundary. Inspect BEFORE
  /// feeding a ';' to classify declarations ("void F() AF_REQUIRES(mu);").
  const std::vector<Token>& pending_sig() const { return sig_; }

 private:
  std::vector<Scope> stack_;
  std::vector<Token> sig_;
  Scope closed_;
  SigInfo pending_sig_;
  bool pending_active_ = false;
  size_t pending_depth_ = 0;
};

}  // namespace lint
}  // namespace agentfirst

#endif  // AGENTFIRST_LINT_PRELEX_H_
