#ifndef AGENTFIRST_LINT_LAYERING_H_
#define AGENTFIRST_LINT_LAYERING_H_

#include <string>
#include <utility>
#include <vector>

#include "lint/lint.h"
#include "lint/prelex.h"

/// Module-layering enforcement: the declared architecture lives in
/// tools/layers.toml and the actual `#include` graph must match it.
///
/// The spec declares an ordered list of layers (bottom first), each a set of
/// modules, plus the sanctioned same-layer edges:
///
///   [layers]
///   order = [["types", "lint"], ["common"], ["io", "obs"], ...]
///   [edges]
///   declared = ["catalog -> storage", ...]
///
/// A module may include strictly lower layers freely and same-layer modules
/// only through a declared edge. Everything else is an error:
///
///   layer-back-edge        include of a higher-layer module
///   layer-undeclared-edge  same-layer include with no declared edge
///   include-cycle          a cycle in the file-level include graph
///   layer-config           the spec itself is inconsistent (duplicate or
///                          missing module, declared edge that is not
///                          same-layer, cycle among declared edges)
///
/// Diagnostics attach to the offending #include line, so an inline
/// `// aflint:allow(layer-back-edge)` (with rationale) can sanction a
/// deliberate exception without hiding it from readers.
namespace agentfirst {
namespace lint {

struct LayerSpec {
  /// Layers bottom-up; order[0] depends on nothing.
  std::vector<std::vector<std::string>> order;
  /// Sanctioned same-layer dependencies, as (from, to).
  std::vector<std::pair<std::string, std::string>> declared;
};

/// Parses the tools/layers.toml subset described above. Returns false and
/// sets `error` on malformed input.
bool ParseLayersToml(const std::string& content, LayerSpec* out,
                     std::string* error);

/// Checks every file under src/ and tools/ against the spec. `spec_path` is
/// used to attribute spec-level (layer-config) diagnostics.
std::vector<Diagnostic> CheckLayering(const LayerSpec& spec,
                                      const std::string& spec_path,
                                      const std::vector<SourceFile>& files);

}  // namespace lint
}  // namespace agentfirst

#endif  // AGENTFIRST_LINT_LAYERING_H_
