#ifndef AGENTFIRST_LINT_LINT_H_
#define AGENTFIRST_LINT_LINT_H_

#include <string>
#include <vector>

namespace agentfirst {
namespace lint {

/// One rule violation at a source location.
struct Diagnostic {
  std::string file;   // path as passed to LintSource
  size_t line = 0;    // 1-based
  std::string rule;   // e.g. "raw-thread"
  std::string message;

  /// "file:line: error: message [rule]" — GNU style, so editors and CI can
  /// jump to the location.
  std::string ToString() const;
};

/// The project lint rules (aflint). These enforce conventions that TSan and
/// the compiler cannot: TSan only proves the schedules it happened to run,
/// and no compiler flag knows that this codebase routes all threading
/// through ThreadPool or all randomness through a seeded Rng.
///
///   raw-thread           std::thread / std::jthread outside
///                        src/common/thread_pool.{h,cc}. Everything must run
///                        on the shared work-stealing pool so concurrency
///                        composes instead of oversubscribing.
///                        (std::thread::hardware_concurrency is exempt: it
///                        queries, it does not spawn.)
///   unseeded-random      rand( / srand( / std::random_device. All
///                        randomness must flow from a seeded Rng so runs are
///                        reproducible (src/common/rng.h is the one allowed
///                        home).
///   iostream-in-lib      std::cout / std::cerr / std::clog under src/.
///                        Library code reports through Status and structured
///                        results, never by printing.
///   raw-mutex-guard      std::lock_guard / std::unique_lock /
///                        std::scoped_lock under src/. Clang's thread-safety
///                        analysis cannot see through std:: guards; use the
///                        annotated Mutex/MutexLock/CondVar from
///                        common/thread_annotations.h.
///   guarded-by-coverage  a Mutex / std::mutex / std::shared_mutex member in
///                        an annotated file (one that uses
///                        thread_annotations.h) with no AF_GUARDED_BY /
///                        AF_PT_GUARDED_BY / AF_REQUIRES referring to it —
///                        i.e. a lock that provably protects nothing the
///                        analysis can check.
///   fault-point-scope    AF_FAULT_POINT outside a Status/Result-returning
///                        function in a .cc file under src/. The macro
///                        `return`s the injected Status, so anywhere else it
///                        either breaks the build or silently changes
///                        control flow; expression contexts use
///                        AF_FAULT_STATUS instead.
///   raw-counter          std::atomic over an integer type (uint64_t, size_t,
///                        ...) under src/ but outside src/obs/. Ad-hoc atomic
///                        counters are invisible to the telemetry spine; use
///                        obs::Counter / obs::Gauge / obs::Histogram so every
///                        count is named, registered, and dumpable by
///                        afmetrics. Genuine non-metric atomics (work-claim
///                        cursors, budget tripwires) take an explicit
///                        aflint:allow(raw-counter). std::atomic<bool> flags
///                        and std::atomic<int> status slots are not flagged.
///   raw-socket           socket/bind/listen/accept/connect/poll/epoll/
///                        send/recv-family calls outside src/net/. All wire
///                        I/O goes through net::Client and net::ProbeServer
///                        so framing, backpressure, and disconnect-
///                        cancellation have one implementation; tests abuse
///                        the protocol through Client's test hooks instead
///                        of raw fds. Member calls (x.connect(), x->send())
///                        and std::-qualified names do not match; the
///                        global-scope `::poll(...)` form does.
///   deprecated-brief-limits
///                        a write (=, +=, ...) to Brief's removed limit
///                        aliases — deadline_ms / max_result_rows /
///                        max_result_bytes anywhere, cost_budget when
///                        spelled `brief.cost_budget`. The alias fields were
///                        deleted from Brief (PR 9); this rule stops them
///                        from coming back. New code sets brief.limits /
///                        ProbeBuilder::Limits. Reads and == comparisons are
///                        fine (local variables named deadline_ms still
///                        compile — only writes are flagged).
///   raw-file-io          open/write/fsync/rename/unlink/ftruncate/mkdir-
///                        family syscalls (::open(...) or bare open(...)) and
///                        C stdio fopen/freopen outside src/io/ + src/wal/.
///                        Durable bytes must flow through io::File /
///                        io::WriteFileAtomic so every write, fsync, and
///                        rename carries a fault-injection point and one
///                        crash-consistency discipline; a file mutated behind
///                        the WAL's back cannot be recovered. Member calls
///                        (f.open(), stream->write()) and std::-qualified
///                        names do not match; the global-scope `::write(...)`
///                        form does. The net wake-pipe ::write takes an
///                        explicit aflint:allow(raw-file-io).
///   row-value-in-kernel  Value / Row / GetRow / EvalExpr / EvalPredicate
///                        between `// aflint:kernel-begin` and
///                        `// aflint:kernel-end` comment markers. Kernel
///                        regions hold the vectorized tight loops
///                        (src/exec/evaluator.cc, src/exec/vectorized.cc);
///                        touching the row representation there reintroduces
///                        the per-row materialization the batch engine exists
///                        to avoid. The marker lines themselves are outside
///                        the region; boundary conversions take an explicit
///                        aflint:allow(row-value-in-kernel).
///   include-hygiene      a header under src/ references another module's
///                        namespace (io::, obs::, net::, wal::, lint::,
///                        exec_internal::, vec::) without directly including
///                        a header from that module, or uses a macro /
///                        annotated primitive with one canonical home
///                        (Mutex/MutexLock/CondVar/AF_* →
///                        common/thread_annotations.h, AF_FAULT_POINT →
///                        common/fault_injection.h, AF_RETURN_IF_ERROR →
///                        common/status.h) without that exact include.
///                        Transitive-include luck hides real module edges
///                        from the layering pass and breaks every downstream
///                        user when the module in between is cleaned up.
///
/// Whole-program rules (emitted by the lock-order and layering passes in
/// lockorder.h / layering.h, not by LintSource):
///
///   lock-order-cycle     the global "held while acquiring" lock graph has a
///                        cycle: two code paths acquire the same locks in
///                        opposite (transitive) order, so the right
///                        interleaving deadlocks. Declared intentional
///                        orderings use `// aflint:lock-order(A, B)`.
///   lock-self-deadlock   a path acquires a (non-recursive) Mutex it already
///                        holds, directly or through a call chain.
///   condvar-hold         CondVar::Wait(mu) reached while holding a lock
///                        other than mu: Wait releases only mu, so the other
///                        lock blocks the waker.
///   layer-back-edge      an #include from a lower-layer module into a
///                        higher-layer one (tools/layers.toml declares the
///                        layer order).
///   layer-undeclared-edge an #include between same-layer modules that is
///                        not declared in [edges] of tools/layers.toml.
///   include-cycle        the file-level include graph has a cycle.
///   layer-config         tools/layers.toml itself is inconsistent (module
///                        missing from the order, declared edge that is not
///                        same-layer, declared-edge cycle).
///
/// Suppression: `// aflint:allow(rule)` (comma-separated for several rules)
/// on the offending line, or on a comment line immediately above it.
///
/// Matching runs on scrubbed text — comment and string-literal contents are
/// blanked first via the shared pre-lex step (prelex.h) — so prose and SQL
/// never trip a rule.
std::vector<std::string> RuleNames();

/// Lints one translation unit. `path` must be repo-relative with forward
/// slashes (e.g. "src/exec/executor.cc"); the path decides which rules apply
/// where. Diagnostics come back in line order.
std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content);

struct PrelexedSource;

/// Same as LintSource but over an existing pre-lex (see prelex.h), so the
/// driver scrubs each file once and shares the result across all passes.
std::vector<Diagnostic> LintPrelexed(const std::string& path,
                                     const PrelexedSource& pre);

}  // namespace lint
}  // namespace agentfirst

#endif  // AGENTFIRST_LINT_LINT_H_
