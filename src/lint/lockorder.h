#ifndef AGENTFIRST_LINT_LOCKORDER_H_
#define AGENTFIRST_LINT_LOCKORDER_H_

#include <vector>

#include "lint/lint.h"
#include "lint/prelex.h"

/// Whole-program static lock-order analysis.
///
/// The scanner walks every function body with the shared ScopeWalker and
/// extracts, per function:
///
///   - acquisition sites:   MutexLock guard(expr);
///   - entry-held locks:    AF_REQUIRES(expr) on the definition or any
///                          declaration of the same (class, name);
///   - condvar waits:       cv.Wait(mu, ...) where mu is currently held;
///   - call sites:          Name(...), Cls::Name(...), obj->Name(...), with
///                          the set of locks held at the call.
///
/// Lock identity is the enclosing-class-qualified normalized expression
/// ("WalWriter::mutex_", "ThreadPool::state.mutex"; free functions qualify
/// by module, lambdas by the class of the function they appear in). Calls
/// resolve inside one module only: an explicit "Cls::Name" resolves exactly,
/// a bare or member "Name(...)" resolves to the caller's own class first and
/// otherwise — for bare calls only — to the unique function of that name in
/// the module; ambiguous or cross-module calls are skipped. Lambdas are
/// separate anonymous functions (they may run later on another thread), so
/// no edge connects them to their enclosing function; locks they need at
/// entry are declared with AF_REQUIRES on the lambda itself.
///
/// From the transitive "locks acquired by f, directly or through resolved
/// calls" relation the pass builds the global lock-order graph (edge A -> B:
/// some path acquires B while holding A) and reports:
///
///   lock-order-cycle     a cycle in the graph — two paths take the same
///                        locks in opposite transitive order;
///   lock-self-deadlock   acquiring a lock already held (directly or through
///                        a call chain);
///   condvar-hold         reaching cv.Wait(mu) while holding a lock other
///                        than mu (Wait releases only mu).
///
/// `// aflint:lock-order(A, B)` declares that A is always acquired before B
/// by design; contradicting B -> A edges are removed before cycle detection
/// (use it to kill false edges from canonicalization, never to silence a
/// genuine inversion). Site-attached findings honor aflint:allow(rule).
///
/// Soundness limits, deliberately accepted: the call graph is intra-module
/// and name-based (no overload or function-pointer resolution, no
/// cross-module edges), lock identity is syntactic (distinct instances with
/// the same member name on different classes stay distinct, two aliases of
/// one lock are not unified), and mutually-recursive call chains
/// under-approximate. The pass is a deterministic linter: it must be cheap,
/// byte-stable, and zero-false-positive on the real tree; the clang
/// thread-safety stage and TSan cover what it cannot see.
namespace agentfirst {
namespace lint {

/// Runs the analysis over one self-consistent file set (normally every
/// source file under src/). Diagnostics come back sorted by
/// (file, line, rule, message) and deduplicated.
std::vector<Diagnostic> AnalyzeLockOrder(const std::vector<SourceFile>& files);

}  // namespace lint
}  // namespace agentfirst

#endif  // AGENTFIRST_LINT_LOCKORDER_H_
