#include "lint/layering.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <tuple>

namespace agentfirst {
namespace lint {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Cuts a '#' comment (outside string literals) and trims.
std::string StripComment(const std::string& line) {
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return Trim(line.substr(0, i));
  }
  return Trim(line);
}

/// '[' minus ']' outside string literals — for joining multi-line arrays.
int BracketBalance(const std::string& s) {
  bool in_string = false;
  int depth = 0;
  for (char c : s) {
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '[') ++depth;
    if (c == ']') --depth;
  }
  return depth;
}

void SkipSpace(const std::string& s, size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos])) != 0) {
    ++*pos;
  }
}

bool ParseString(const std::string& s, size_t* pos, std::string* out) {
  SkipSpace(s, pos);
  if (*pos >= s.size() || s[*pos] != '"') return false;
  size_t close = s.find('"', *pos + 1);
  if (close == std::string::npos) return false;
  *out = s.substr(*pos + 1, close - *pos - 1);
  *pos = close + 1;
  return true;
}

bool ParseStringList(const std::string& s, size_t* pos,
                     std::vector<std::string>* out) {
  SkipSpace(s, pos);
  if (*pos >= s.size() || s[*pos] != '[') return false;
  ++*pos;
  while (true) {
    SkipSpace(s, pos);
    if (*pos < s.size() && s[*pos] == ']') {
      ++*pos;
      return true;
    }
    std::string item;
    if (!ParseString(s, pos, &item)) return false;
    out->push_back(item);
    SkipSpace(s, pos);
    if (*pos < s.size() && s[*pos] == ',') ++*pos;
  }
}

bool ParseNestedList(const std::string& s, size_t* pos,
                     std::vector<std::vector<std::string>>* out) {
  SkipSpace(s, pos);
  if (*pos >= s.size() || s[*pos] != '[') return false;
  ++*pos;
  while (true) {
    SkipSpace(s, pos);
    if (*pos < s.size() && s[*pos] == ']') {
      ++*pos;
      return true;
    }
    out->emplace_back();
    if (!ParseStringList(s, pos, &out->back())) return false;
    SkipSpace(s, pos);
    if (*pos < s.size() && s[*pos] == ',') ++*pos;
  }
}

}  // namespace

bool ParseLayersToml(const std::string& content, LayerSpec* out,
                     std::string* error) {
  std::string section, key, buf;
  int depth = 0;

  auto finish = [&]() -> bool {
    size_t pos = 0;
    if (section == "layers" && key == "order") {
      if (!ParseNestedList(buf, &pos, &out->order)) {
        *error = "layers.order must be an array of string arrays";
        return false;
      }
    } else if (section == "edges" && key == "declared") {
      std::vector<std::string> items;
      if (!ParseStringList(buf, &pos, &items)) {
        *error = "edges.declared must be an array of \"from -> to\" strings";
        return false;
      }
      for (const std::string& item : items) {
        size_t arrow = item.find("->");
        if (arrow == std::string::npos) {
          *error = "declared edge '" + item + "' is not of the form \"from -> to\"";
          return false;
        }
        std::string from = Trim(item.substr(0, arrow));
        std::string to = Trim(item.substr(arrow + 2));
        if (from.empty() || to.empty()) {
          *error = "declared edge '" + item + "' is not of the form \"from -> to\"";
          return false;
        }
        out->declared.emplace_back(from, to);
      }
    }
    // Unknown keys are ignored so the format can grow.
    buf.clear();
    key.clear();
    return true;
  };

  size_t start = 0;
  while (start <= content.size()) {
    size_t nl = content.find('\n', start);
    std::string line = StripComment(
        content.substr(start, nl == std::string::npos ? std::string::npos
                                                      : nl - start));
    start = nl == std::string::npos ? content.size() + 1 : nl + 1;
    if (line.empty()) continue;
    if (depth == 0) {
      if (line.front() == '[' && line.back() == ']' &&
          line.find('"') == std::string::npos) {
        section = Trim(line.substr(1, line.size() - 2));
        continue;
      }
      size_t eq = line.find('=');
      if (eq == std::string::npos) {
        *error = "expected 'key = value' or '[section]', got: " + line;
        return false;
      }
      key = Trim(line.substr(0, eq));
      buf = Trim(line.substr(eq + 1));
      depth = BracketBalance(buf);
      if (depth == 0 && !finish()) return false;
    } else {
      buf += " " + line;
      depth += BracketBalance(line);
      if (depth == 0 && !finish()) return false;
    }
  }
  if (depth != 0) {
    *error = "unterminated array for key '" + key + "'";
    return false;
  }
  if (out->order.empty()) {
    *error = "missing [layers] order";
    return false;
  }
  return true;
}

std::vector<Diagnostic> CheckLayering(const LayerSpec& spec,
                                      const std::string& spec_path,
                                      const std::vector<SourceFile>& files) {
  std::vector<Diagnostic> diags;
  std::set<std::string> seen;
  std::map<std::string, const PrelexedSource*> pres;
  for (const SourceFile& sf : files) pres[sf.path] = &sf.pre;

  auto report = [&](const std::string& file, size_t line0,
                    const std::string& rule, const std::string& message) {
    auto it = pres.find(file);
    if (it != pres.end() && it->second->Allowed(line0, rule)) return;
    Diagnostic d{file, line0 + 1, rule, message};
    if (seen.insert(d.ToString()).second) diags.push_back(std::move(d));
  };

  // --- validate the spec itself ---------------------------------------------
  std::map<std::string, size_t> layer_of;
  for (size_t i = 0; i < spec.order.size(); ++i) {
    for (const std::string& m : spec.order[i]) {
      if (!layer_of.emplace(m, i).second) {
        report(spec_path, 0, "layer-config",
               "module '" + m + "' appears twice in [layers] order");
      }
    }
  }
  std::map<std::string, std::vector<std::string>> decl_adj;
  for (const auto& [from, to] : spec.declared) {
    auto f = layer_of.find(from);
    auto t = layer_of.find(to);
    if (f == layer_of.end() || t == layer_of.end()) {
      report(spec_path, 0, "layer-config",
             "declared edge " + from + " -> " + to +
                 " names a module missing from [layers] order");
      continue;
    }
    if (f->second != t->second) {
      report(spec_path, 0, "layer-config",
             "declared edge " + from + " -> " + to +
                 " is not same-layer: cross-layer dependencies come from the "
                 "layer order, [edges] only sanctions same-layer ones");
      continue;
    }
    decl_adj[from].push_back(to);
  }
  {  // The declared same-layer edges must themselves form a DAG.
    std::map<std::string, int> color;
    std::vector<std::string> path;
    auto dfs = [&](auto&& self, const std::string& n) -> bool {
      color[n] = 1;
      path.push_back(n);
      for (const std::string& next : decl_adj[n]) {
        if (color[next] == 1) {
          std::string cycle = next;
          for (size_t i = path.size(); i-- > 0;) {
            cycle = path[i] + " -> " + cycle;
            if (path[i] == next) break;
          }
          report(spec_path, 0, "layer-config",
                 "declared edges form a cycle: " + cycle);
          return false;
        }
        if (color[next] == 0 && !self(self, next)) return false;
      }
      path.pop_back();
      color[n] = 2;
      return true;
    };
    for (const auto& [n, ignored] : decl_adj) {
      if (color[n] == 0 && !dfs(dfs, n)) break;
    }
  }
  std::set<std::pair<std::string, std::string>> declared(spec.declared.begin(),
                                                         spec.declared.end());

  // --- check every include edge against the spec -----------------------------
  std::vector<const SourceFile*> order;
  order.reserve(files.size());
  for (const SourceFile& sf : files) order.push_back(&sf);
  std::sort(order.begin(), order.end(),
            [](const SourceFile* a, const SourceFile* b) {
              return a->path < b->path;
            });

  struct Inc {
    std::string target;  // resolved repo-relative path ("src/..."), if known
    size_t line = 0;
  };
  std::map<std::string, std::vector<Inc>> file_graph;
  std::set<std::string> known_files;
  for (const SourceFile* sf : order) known_files.insert(sf->path);

  auto layer_name = [&](size_t idx) {
    std::string out = "{";
    for (size_t i = 0; i < spec.order[idx].size(); ++i) {
      if (i > 0) out += ", ";
      out += spec.order[idx][i];
    }
    return out + "}";
  };

  for (const SourceFile* sf : order) {
    const std::string own = ModuleOfPath(sf->path);
    if (own.empty()) continue;
    bool own_known = layer_of.count(own) > 0;
    if (!own_known) {
      report(sf->path, 0, "layer-config",
             "module '" + own +
                 "' is missing from [layers] order in " + spec_path);
    }
    for (size_t i = 0; i < sf->pre.raw.size(); ++i) {
      if (!sf->pre.preprocessor[i]) continue;
      const std::string& raw = sf->pre.raw[i];
      size_t inc = raw.find("#include");
      if (inc == std::string::npos) continue;
      size_t open = raw.find('"', inc);
      if (open == std::string::npos) continue;  // <...> system include
      size_t close = raw.find('"', open + 1);
      if (close == std::string::npos) continue;
      std::string p = raw.substr(open + 1, close - open - 1);

      std::string resolved = "src/" + p;
      if (known_files.count(resolved) > 0) {
        file_graph[sf->path].push_back({resolved, i});
      }

      size_t slash = p.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      std::string target = p.substr(0, slash);
      if (target == own || !own_known) continue;
      auto t = layer_of.find(target);
      if (t == layer_of.end()) {
        report(sf->path, i, "layer-config",
               "#include \"" + p + "\": module '" + target +
                   "' is missing from [layers] order in " + spec_path);
        continue;
      }
      size_t from_layer = layer_of[own];
      size_t to_layer = t->second;
      if (to_layer < from_layer) continue;  // strictly lower: always fine
      if (to_layer == from_layer) {
        if (declared.count({own, target}) == 0) {
          report(sf->path, i, "layer-undeclared-edge",
                 "#include \"" + p + "\": same-layer edge " + own + " -> " +
                     target + " (layer " + std::to_string(from_layer) + " " +
                     layer_name(from_layer) +
                     ") is not declared in [edges] of " + spec_path +
                     "; declare it or move the code");
        }
        continue;
      }
      report(sf->path, i, "layer-back-edge",
             "#include \"" + p + "\": back-edge " + own + " -> " + target +
                 ": '" + own + "' (layer " + std::to_string(from_layer) + " " +
                 layer_name(from_layer) + ") must not depend on '" + target +
                 "' (layer " + std::to_string(to_layer) + " " +
                 layer_name(to_layer) + "); dependencies point strictly "
                 "downward in " + spec_path);
    }
  }

  // --- file-level include cycles ---------------------------------------------
  {
    std::map<std::string, int> color;
    std::vector<std::string> path;
    std::set<std::string> reported_cycles;
    auto dfs = [&](auto&& self, const std::string& n) -> void {
      color[n] = 1;
      path.push_back(n);
      for (const Inc& inc : file_graph[n]) {
        if (color[inc.target] == 1) {
          // Canonical form: rotate so the smallest file leads.
          std::vector<std::string> cycle;
          for (size_t i = path.size(); i-- > 0;) {
            cycle.push_back(path[i]);
            if (path[i] == inc.target) break;
          }
          std::reverse(cycle.begin(), cycle.end());
          size_t min_at = 0;
          for (size_t i = 1; i < cycle.size(); ++i) {
            if (cycle[i] < cycle[min_at]) min_at = i;
          }
          std::rotate(cycle.begin(), cycle.begin() + min_at, cycle.end());
          std::string desc;
          for (const std::string& f : cycle) desc += f + " -> ";
          desc += cycle.front();
          if (reported_cycles.insert(desc).second) {
            report(n, inc.line, "include-cycle",
                   "include cycle: " + desc +
                       ": headers must form a DAG (a cycle means neither "
                       "file can be understood or rebuilt alone)");
          }
        } else if (color[inc.target] == 0) {
          self(self, inc.target);
        }
      }
      path.pop_back();
      color[n] = 2;
    };
    for (const SourceFile* sf : order) {
      if (color[sf->path] == 0) dfs(dfs, sf->path);
    }
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return diags;
}

}  // namespace lint
}  // namespace agentfirst
