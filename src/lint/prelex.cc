#include "lint/prelex.h"

#include <algorithm>
#include <cctype>

namespace agentfirst {
namespace lint {

namespace {

/// Extracts rule names from every "aflint:allow(a, b)" inside comment text.
void ParseAllows(const std::string& comment, std::set<std::string>* out) {
  const std::string marker = "aflint:allow(";
  size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    size_t cursor = pos + marker.size();
    size_t close = comment.find(')', cursor);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(cursor, close - cursor);
    std::string name;
    for (char c : inside + ",") {
      if (c == ',' || c == ' ' || c == '\t') {
        if (!name.empty()) out->insert(name);
        name.clear();
      } else {
        name.push_back(c);
      }
    }
    pos = close;
  }
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Extracts (A, B) pairs from every "aflint:lock-order(A, B)" in comment
/// text. Anything other than exactly two non-empty names is ignored.
void ParseLockOrders(const std::string& comment,
                     std::vector<std::pair<std::string, std::string>>* out) {
  const std::string marker = "aflint:lock-order(";
  size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    size_t cursor = pos + marker.size();
    size_t close = comment.find(')', cursor);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(cursor, close - cursor);
    size_t comma = inside.find(',');
    if (comma != std::string::npos) {
      std::string a = Trim(inside.substr(0, comma));
      std::string b = Trim(inside.substr(comma + 1));
      if (!a.empty() && !b.empty() && b.find(',') == std::string::npos) {
        out->emplace_back(a, b);
      }
    }
    pos = close;
  }
}

}  // namespace

bool PrelexedSource::Allowed(size_t idx, const std::string& rule) const {
  if (idx >= allows.size()) return false;
  if (allows[idx].count(rule) > 0) return true;
  // A contiguous block of comment-only lines directly above suppresses for
  // the line that follows it — the marker may sit anywhere in the block, so
  // an allow can open a multi-line rationale comment.
  while (idx > 0 && comment_only[idx - 1]) {
    --idx;
    if (allows[idx].count(rule) > 0) return true;
  }
  return false;
}

size_t FindToken(const std::string& line, const std::string& token,
                 size_t from) {
  size_t pos = from;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok =
        pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':');
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    ++pos;
  }
  return std::string::npos;
}

PrelexedSource Prelex(const std::string& content) {
  PrelexedSource out;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::string raw_delim;  // for kRawString: the ")delim" terminator
  bool in_preproc = false;
  bool line_continues_preproc = false;

  auto flush_line = [&]() {
    out.allows.emplace_back();
    ParseAllows(comment_line, &out.allows.back());
    ParseLockOrders(comment_line, &out.lock_orders);
    bool only_ws = std::all_of(code_line.begin(), code_line.end(), [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
    out.comment_only.push_back(!comment_line.empty() && only_ws);
    out.preprocessor.push_back(in_preproc);
    out.kernel_begin.push_back(comment_line.find("aflint:kernel-begin") !=
                               std::string::npos);
    out.kernel_end.push_back(comment_line.find("aflint:kernel-end") !=
                             std::string::npos);
    out.lines.push_back(code_line);
    // A preprocessor directive continues onto the next line after a
    // trailing backslash.
    line_continues_preproc =
        in_preproc && !code_line.empty() && code_line.back() == '\\';
    code_line.clear();
    comment_line.clear();
    in_preproc = line_continues_preproc;
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — detect the R prefix just before.
          bool raw = !code_line.empty() && code_line.back() == 'R' &&
                     (code_line.size() < 2 || !IsIdentChar(code_line[code_line.size() - 2]));
          code_line += '"';
          if (raw) {
            raw_delim = ")";
            size_t j = i + 1;
            while (j < content.size() && content[j] != '(') {
              raw_delim += content[j];
              ++j;
            }
            raw_delim += '"';
            i = j;  // skip past the opening '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kChar;
        } else {
          if (c == '#' && std::all_of(code_line.begin(), code_line.end(),
                                      [](char w) { return std::isspace(static_cast<unsigned char>(w)) != 0; })) {
            in_preproc = true;
          }
          code_line += c;
        }
        break;
      }
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
          if (next == '\n') flush_line();
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString: {
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          code_line += '"';
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  flush_line();

  // Raw lines: the scrubber flushes exactly once per '\n' (the escaped
  // newline inside a string literal is consumed with its own flush), so a
  // plain split stays aligned with the scrubbed lines.
  std::string raw_line;
  for (char c : content) {
    if (c == '\n') {
      out.raw.push_back(raw_line);
      raw_line.clear();
    } else {
      raw_line.push_back(c);
    }
  }
  out.raw.push_back(raw_line);
  return out;
}

std::vector<Token> Tokenize(const PrelexedSource& src) {
  std::vector<Token> out;
  for (size_t li = 0; li < src.lines.size(); ++li) {
    if (src.preprocessor[li]) continue;  // directives don't nest scopes
    const std::string& line = src.lines[li];
    size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      Token t;
      t.line = li;
      if (IsIdentChar(c)) {
        size_t b = i;
        while (i < line.size() && IsIdentChar(line[i])) ++i;
        t.text = line.substr(b, i - b);
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        t.text = "::";
        i += 2;
      } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        t.text = "->";
        i += 2;
      } else {
        t.text = std::string(1, c);
        ++i;
      }
      out.push_back(std::move(t));
    }
  }
  return out;
}

namespace {

bool HasTok(const std::vector<Token>& sig, const char* text) {
  for (const Token& t : sig) {
    if (t.text == text) return true;
  }
  return false;
}

std::string JoinTokens(const std::vector<Token>& sig, size_t from, size_t to) {
  std::string out;
  for (size_t i = from; i < to && i < sig.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += sig[i].text;
  }
  return out;
}

/// True when the joined signature text declares a Status / Result<T> return,
/// either leading ("Status Foo(") or trailing ("-> Result<T>").
bool SignatureReturnsStatus(const std::string& sig) {
  size_t arrow = sig.rfind("->");
  if (arrow != std::string::npos) {
    std::string tail = sig.substr(arrow + 2);
    if (FindToken(tail, "Status") != std::string::npos ||
        tail.find("Result") != std::string::npos) {
      return true;
    }
  }
  size_t paren = sig.find('(');
  std::string head = paren == std::string::npos ? sig : sig.substr(0, paren);
  return FindToken(head, "Status") != std::string::npos ||
         head.find("Result") != std::string::npos;
}

/// Collects the argument expressions of every AF_REQUIRES(...) macro in the
/// signature, each joined without spaces ("this->mu", "shard.mutex").
void CollectRequiresArgs(const std::vector<Token>& sig,
                         std::vector<std::string>* out) {
  for (size_t i = 0; i + 1 < sig.size(); ++i) {
    if (sig[i].text != "AF_REQUIRES" || sig[i + 1].text != "(") continue;
    int depth = 0;
    std::string arg;
    size_t j = i + 1;
    for (; j < sig.size(); ++j) {
      const std::string& t = sig[j].text;
      if (t == "(") {
        if (depth++ > 0) arg += t;
      } else if (t == ")") {
        if (--depth == 0) break;
        arg += t;
      } else if (t == "," && depth == 1) {
        if (!arg.empty()) out->push_back(arg);
        arg.clear();
      } else if (depth >= 1) {
        arg += t;
      }
    }
    if (!arg.empty()) out->push_back(arg);
    i = j;
  }
}

}  // namespace

SigInfo ClassifySignature(const std::vector<Token>& sig) {
  SigInfo out;
  CollectRequiresArgs(sig, &out.requires_args);

  if (HasTok(sig, "namespace")) {
    out.kind = SigInfo::kNamespace;
    for (const Token& t : sig) {
      if (t.IsIdent() && t.text != "namespace" && t.text != "inline") {
        out.name = t.text;
      }
    }
    return out;
  }

  // Lambda introducer: a '[' in expression position. At statement start (or
  // after another '[') it is an attribute ([[nodiscard]]), after an
  // identifier or ')' it is a subscript; after '(', ',', '=', 'return' and
  // friends it opens a lambda capture list.
  for (size_t i = 0; i < sig.size(); ++i) {
    if (sig[i].text != "[" || i == 0) continue;
    const std::string& prev = sig[i - 1].text;
    if (prev == "(" || prev == "," || prev == "=" || prev == "return" ||
        prev == "&&" || prev == "||" || prev == "!" || prev == "<") {
      out.kind = SigInfo::kLambda;
      // Trailing return only: a lambda without one never returns Status.
      for (size_t j = sig.size(); j-- > i;) {
        if (sig[j].text == "->") {
          out.returns_status =
              SignatureReturnsStatus("-> " + JoinTokens(sig, j + 1, sig.size()));
          break;
        }
      }
      return out;
    }
  }

  bool has_paren = HasTok(sig, "(");
  for (const char* kw : {"class", "struct", "union", "enum"}) {
    if (!HasTok(sig, kw) || has_paren) continue;
    out.kind = SigInfo::kType;
    // Name: last identifier after the last type keyword, stopping at the
    // base-class list ("class Foo final : public Bar {").
    size_t kw_pos = 0;
    for (size_t i = 0; i < sig.size(); ++i) {
      const std::string& t = sig[i].text;
      if (t == "class" || t == "struct" || t == "union" || t == "enum") {
        kw_pos = i;
      }
    }
    for (size_t i = kw_pos + 1; i < sig.size(); ++i) {
      if (sig[i].text == ":" || sig[i].text == "<") break;
      if (sig[i].IsIdent() && sig[i].text != "final") out.name = sig[i].text;
    }
    return out;
  }

  for (const char* kw : {"if", "for", "while", "switch", "do", "else",
                         "catch", "try", "case", "default"}) {
    if (HasTok(sig, kw)) {
      out.kind = SigInfo::kControl;
      return out;
    }
  }

  if (has_paren) {
    int depth = 0;
    size_t first_open = sig.size(), first_close = sig.size();
    for (size_t i = 0; i < sig.size(); ++i) {
      if (sig[i].text == "(") {
        if (depth == 0 && first_open == sig.size()) first_open = i;
        ++depth;
      } else if (sig[i].text == ")") {
        --depth;
        if (depth == 0 && first_close == sig.size()) first_close = i;
      }
    }
    if (depth != 0) {
      out.kind = SigInfo::kPlain;  // '{' is a brace argument mid-expression
      return out;
    }
    out.kind = SigInfo::kFunction;
    out.returns_status = SignatureReturnsStatus(JoinTokens(sig, 0, sig.size()));
    if (first_open > 0 && sig[first_open - 1].IsIdent()) {
      size_t n = first_open - 1;
      out.name = sig[n].text;
      if (n > 0 && sig[n - 1].text == "~") out.name = "~" + out.name;
      size_t q = n > 0 && sig[n - 1].text == "~" ? n - 1 : n;
      if (q >= 2 && sig[q - 1].text == "::" && sig[q - 2].IsIdent()) {
        out.class_qualifier = sig[q - 2].text;
      }
    }
    // "Foo::Foo() : member{...} {": a top-level ':' after the parameter
    // list with a trailing identifier means this '{' is a brace-init inside
    // the member-init list, not the function body.
    if (!sig.empty() && sig.back().IsIdent()) {
      for (size_t i = first_close + 1; i < sig.size(); ++i) {
        if (sig[i].text == ":") {
          out.init_list_brace = true;
          break;
        }
      }
    }
    return out;
  }

  out.kind = SigInfo::kPlain;
  return out;
}

ScopeWalker::Event ScopeWalker::Feed(const Token& t) {
  if (t.text == "{") {
    Scope s;
    bool inherited = !stack_.empty() && stack_.back().returns_status;
    if (pending_active_ && stack_.size() == pending_depth_) {
      // Between a member-init-list brace-init and the function body: an
      // "ident {" is another brace-init, anything else opens the body.
      if (!sig_.empty() && sig_.back().IsIdent()) {
        s.sig.kind = SigInfo::kPlain;
        s.returns_status = inherited;
      } else {
        s.sig = pending_sig_;
        s.returns_status = pending_sig_.returns_status;
        pending_active_ = false;
      }
    } else {
      SigInfo info = ClassifySignature(sig_);
      if (info.kind == SigInfo::kFunction && info.init_list_brace) {
        pending_sig_ = info;
        pending_sig_.init_list_brace = false;
        pending_active_ = true;
        pending_depth_ = stack_.size();
        s.sig.kind = SigInfo::kPlain;
        s.returns_status = inherited;
      } else {
        s.sig = info;
        switch (info.kind) {
          case SigInfo::kNamespace:
          case SigInfo::kType:
            s.returns_status = false;
            break;
          case SigInfo::kControl:
          case SigInfo::kPlain:
            s.returns_status = inherited;
            break;
          case SigInfo::kFunction:
          case SigInfo::kLambda:
            s.returns_status = info.returns_status;
            break;
        }
      }
    }
    stack_.push_back(std::move(s));
    sig_.clear();
    return Event::kOpen;
  }
  if (t.text == "}") {
    if (!stack_.empty()) {
      closed_ = stack_.back();
      stack_.pop_back();
    } else {
      closed_ = Scope{};
    }
    if (pending_active_ && stack_.size() < pending_depth_) {
      pending_active_ = false;
    }
    sig_.clear();
    return Event::kClose;
  }
  if (t.text == ";") {
    sig_.clear();
    if (pending_active_ && stack_.size() == pending_depth_) {
      pending_active_ = false;
    }
    return Event::kStatement;
  }
  sig_.push_back(t);
  return Event::kNone;
}

}  // namespace lint
}  // namespace agentfirst
