#include "lint/findings.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <tuple>

namespace agentfirst {
namespace lint {

namespace {

/// FNV-1a 64-bit — deterministic across platforms and runs.
uint64_t Fnv1a(const std::string& s, uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string Hex16(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (size_t i = 16; i-- > 0;) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Whitespace-squeezed, trimmed line text: edits to indentation or alignment
/// don't change a finding's identity.
std::string NormalizeLine(const std::string& raw) {
  std::string out;
  bool pending_space = false;
  for (char c : raw) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !out.empty();
    } else {
      if (pending_space) out += ' ';
      pending_space = false;
      out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          static const char* kDigits = "0123456789abcdef";
          out += "\\u00";
          out += kDigits[(c >> 4) & 0xf];
          out += kDigits[c & 0xf];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Tiny strict reader for the JSON shape EmitFindingsJson writes.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}

  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Expect(char c) {
    SkipSpace();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool Peek(char c) {
    SkipSpace();
    return pos_ < s_.size() && s_[pos_] == c;
  }
  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= h - '0';
              else if (h >= 'a' && h <= 'f') v |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') v |= h - 'A' + 10;
              else return false;
            }
            // The emitter only writes \u00XX control escapes.
            *out += static_cast<char>(v & 0xff);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }
  bool ParseUint(uint64_t* out) {
    SkipSpace();
    if (pos_ >= s_.size() ||
        std::isdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
      return false;
    }
    *out = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      *out = *out * 10 + static_cast<uint64_t>(s_[pos_++] - '0');
    }
    return true;
  }
  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<Finding> BuildFindings(
    const std::vector<Diagnostic>& diags,
    const std::map<std::string, const PrelexedSource*>& sources) {
  std::vector<Finding> out;
  out.reserve(diags.size());
  for (const Diagnostic& d : diags) {
    Finding f;
    f.diag = d;
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.diag.file, a.diag.line, a.diag.rule, a.diag.message) <
           std::tie(b.diag.file, b.diag.line, b.diag.rule, b.diag.message);
  });
  // Occurrence index among identical (rule, file, normalized text) triples,
  // in line order — so two findings on identical lines stay distinct, and
  // the index survives line-number drift.
  std::map<std::string, int> occurrence;
  for (Finding& f : out) {
    std::string text;
    auto src = sources.find(f.diag.file);
    if (src != sources.end() && f.diag.line >= 1 &&
        f.diag.line <= src->second->raw.size()) {
      text = NormalizeLine(src->second->raw[f.diag.line - 1]);
    }
    std::string key = f.diag.rule + "\x1f" + f.diag.file + "\x1f" + text;
    int index = occurrence[key]++;
    uint64_t h = Fnv1a(key);
    h = Fnv1a("\x1f" + std::to_string(index), h);
    f.fingerprint = Hex16(h);
  }
  return out;
}

std::string EmitFindingsJson(const std::vector<Finding>& findings) {
  std::vector<const Finding*> order;
  order.reserve(findings.size());
  for (const Finding& f : findings) order.push_back(&f);
  std::sort(order.begin(), order.end(), [](const Finding* a, const Finding* b) {
    return std::tie(a->diag.file, a->diag.line, a->diag.rule, a->fingerprint) <
           std::tie(b->diag.file, b->diag.line, b->diag.rule, b->fingerprint);
  });
  std::string out = "{\n  \"aflint_version\": 2,\n  \"findings\": [";
  for (size_t i = 0; i < order.size(); ++i) {
    const Finding& f = *order[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\": \"" + EscapeJson(f.diag.rule) + "\", \"file\": \"" +
           EscapeJson(f.diag.file) + "\", \"line\": " +
           std::to_string(f.diag.line) + ", \"fingerprint\": \"" +
           f.fingerprint + "\", \"message\": \"" + EscapeJson(f.diag.message) +
           "\"}";
  }
  out += order.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool ParseFindingsJson(const std::string& json, std::vector<Finding>* out,
                       std::string* error) {
  JsonCursor c(json);
  auto fail = [&](const std::string& what) {
    *error = "malformed findings JSON: " + what;
    return false;
  };
  if (!c.Expect('{')) return fail("expected top-level object");
  bool first = true;
  while (!c.Peek('}')) {
    if (!first && !c.Expect(',')) return fail("expected ',' between keys");
    first = false;
    std::string key;
    if (!c.ParseString(&key)) return fail("expected key string");
    if (!c.Expect(':')) return fail("expected ':' after key");
    if (key == "findings") {
      if (!c.Expect('[')) return fail("findings must be an array");
      bool first_item = true;
      while (!c.Peek(']')) {
        if (!first_item && !c.Expect(',')) {
          return fail("expected ',' between findings");
        }
        first_item = false;
        if (!c.Expect('{')) return fail("finding must be an object");
        Finding f;
        bool first_field = true;
        while (!c.Peek('}')) {
          if (!first_field && !c.Expect(',')) {
            return fail("expected ',' between fields");
          }
          first_field = false;
          std::string field;
          if (!c.ParseString(&field)) return fail("expected field name");
          if (!c.Expect(':')) return fail("expected ':' after field name");
          if (field == "line") {
            uint64_t v = 0;
            if (!c.ParseUint(&v)) return fail("line must be a number");
            f.diag.line = static_cast<size_t>(v);
          } else {
            std::string v;
            if (!c.ParseString(&v)) return fail("field must be a string");
            if (field == "rule") f.diag.rule = v;
            else if (field == "file") f.diag.file = v;
            else if (field == "fingerprint") f.fingerprint = v;
            else if (field == "message") f.diag.message = v;
          }
        }
        if (!c.Expect('}')) return fail("unterminated finding object");
        if (f.fingerprint.empty()) return fail("finding without fingerprint");
        out->push_back(std::move(f));
      }
      if (!c.Expect(']')) return fail("unterminated findings array");
    } else {
      uint64_t ignored = 0;
      std::string ignored_s;
      if (!c.ParseUint(&ignored) && !c.ParseString(&ignored_s)) {
        return fail("unsupported value for key '" + key + "'");
      }
    }
  }
  if (!c.Expect('}')) return fail("unterminated top-level object");
  if (!c.AtEnd()) return fail("trailing content");
  return true;
}

}  // namespace lint
}  // namespace agentfirst
