#ifndef AGENTFIRST_LINT_FINDINGS_H_
#define AGENTFIRST_LINT_FINDINGS_H_

#include <map>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/prelex.h"

/// Machine-readable findings: every diagnostic plus a stable fingerprint, so
/// agents and CI can diff runs instead of re-parsing human text.
///
/// The fingerprint hashes (rule, file, normalized source-line text,
/// occurrence index among identical triples) — NOT the line number — so a
/// finding keeps its identity when unrelated edits shift the file, and a
/// checked-in baseline (tools/aflint_baseline.json) only churns when real
/// violations appear or disappear.
namespace agentfirst {
namespace lint {

struct Finding {
  Diagnostic diag;
  std::string fingerprint;  // 16 hex chars
};

/// Attaches fingerprints. `sources` maps each diagnosed file to its pre-lex
/// (used to read the offending line's text); a file missing from the map
/// fingerprints with empty line text, which stays stable but degrades to
/// line-content-independent identity.
std::vector<Finding> BuildFindings(
    const std::vector<Diagnostic>& diags,
    const std::map<std::string, const PrelexedSource*>& sources);

/// Byte-stable JSON: findings sorted by (file, line, rule, fingerprint),
/// fixed key order, no floats, '\n'-terminated. Two runs over the same tree
/// produce identical bytes.
std::string EmitFindingsJson(const std::vector<Finding>& findings);

/// Parses JSON produced by EmitFindingsJson (the baseline file). Returns
/// false and sets `error` on malformed input.
bool ParseFindingsJson(const std::string& json, std::vector<Finding>* out,
                       std::string* error);

}  // namespace lint
}  // namespace agentfirst

#endif  // AGENTFIRST_LINT_FINDINGS_H_
