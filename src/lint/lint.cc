#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <initializer_list>
#include <memory>
#include <set>

#include "lint/prelex.h"

namespace agentfirst {
namespace lint {

namespace {

class Linter {
 public:
  Linter(const std::string& path, const PrelexedSource& pre)
      : path_(path), pre_(pre) {
    in_src_ = StartsWith(path_, "src/");
    is_cc_ = EndsWith(path_, ".cc") || EndsWith(path_, ".cpp");
    for (const std::string& raw : pre_.raw) {
      if (raw.find("common/thread_annotations.h") != std::string::npos ||
          raw.find("AF_GUARDED_BY") != std::string::npos) {
        annotated_ = true;
        break;
      }
    }
  }

  std::vector<Diagnostic> Run() {
    for (size_t i = 0; i < pre_.lines.size(); ++i) {
      const std::string& line = pre_.lines[i];
      // A kernel-end marker closes the region before its own line is
      // checked; a kernel-begin opens it after (the marker lines themselves
      // are outside the region).
      if (pre_.kernel_end[i]) in_kernel_ = false;
      if (pre_.preprocessor[i]) {
        if (pre_.kernel_begin[i]) in_kernel_ = true;
        continue;
      }
      if (in_kernel_) CheckRowValueInKernel(i, line);
      CheckRawThread(i, line);
      CheckUnseededRandom(i, line);
      CheckIostream(i, line);
      CheckRawMutexGuard(i, line);
      CheckRawCounter(i, line);
      CheckRawSocket(i, line);
      CheckRawFileIo(i, line);
      CheckDeprecatedBriefLimits(i, line);
      CheckMutexMemberCoverage(i, line);
      if (pre_.kernel_begin[i]) in_kernel_ = true;
    }
    CheckFaultPointScope();
    CheckIncludeHygiene();
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
    return std::move(diags_);
  }

 private:
  void Report(size_t idx, const std::string& rule, std::string message) {
    if (pre_.Allowed(idx, rule)) return;
    diags_.push_back(Diagnostic{path_, idx + 1, rule, std::move(message)});
  }

  void CheckRowValueInKernel(size_t idx, const std::string& line) {
    for (const char* tok :
         {"Value", "Row", "GetRow", "EvalExpr", "EvalPredicate"}) {
      if (FindToken(line, tok) != std::string::npos) {
        Report(idx, "row-value-in-kernel",
               std::string(tok) +
                   " inside an aflint:kernel-begin/-end region: kernel loops "
                   "must stay on typed column spans and selection vectors; "
                   "materialize rows and Values only at the batch boundary");
        return;
      }
    }
  }

  void CheckRawThread(size_t idx, const std::string& line) {
    if (path_ == "src/common/thread_pool.h" ||
        path_ == "src/common/thread_pool.cc") {
      return;
    }
    for (const char* tok : {"std::thread", "std::jthread"}) {
      const std::string exempt = "::hardware_concurrency";
      size_t pos = FindToken(line, tok);
      while (pos != std::string::npos) {
        size_t end = pos + std::string(tok).size();
        // Querying the core count spawns nothing.
        if (line.compare(end, exempt.size(), exempt) != 0) {
          Report(idx, "raw-thread",
                 std::string(tok) +
                     " outside src/common/thread_pool.*: run work on the "
                     "shared ThreadPool so concurrency composes");
          break;
        }
        pos = FindToken(line, tok, end);
      }
    }
  }

  void CheckUnseededRandom(size_t idx, const std::string& line) {
    if (path_ == "src/common/rng.h") return;
    auto report = [&](const std::string& what) {
      Report(idx, "unseeded-random",
             what + ": all randomness must come from a seeded Rng "
                    "(common/rng.h) so runs replay deterministically");
    };
    for (const char* fn : {"rand", "srand"}) {
      size_t pos = FindToken(line, fn);
      if (pos != std::string::npos) {
        size_t after = pos + std::string(fn).size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (after < line.size() && line[after] == '(') {
          report(std::string(fn) + "()");
          return;
        }
      }
    }
    if (FindToken(line, "std::random_device") != std::string::npos) {
      report("std::random_device");
    }
  }

  void CheckIostream(size_t idx, const std::string& line) {
    if (!in_src_) return;
    for (const char* tok : {"std::cout", "std::cerr", "std::clog"}) {
      if (FindToken(line, tok) != std::string::npos) {
        Report(idx, "iostream-in-lib",
               std::string(tok) +
                   " in library code: report through Status/results (tests, "
                   "tools, and benches may print)");
        return;
      }
    }
  }

  void CheckRawMutexGuard(size_t idx, const std::string& line) {
    if (!in_src_) return;
    for (const char* tok :
         {"std::lock_guard", "std::unique_lock", "std::scoped_lock"}) {
      if (FindToken(line, tok) != std::string::npos) {
        Report(idx, "raw-mutex-guard",
               std::string(tok) +
                   " is invisible to the clang thread-safety analysis: use "
                   "MutexLock from common/thread_annotations.h");
        return;
      }
    }
  }

  void CheckRawCounter(size_t idx, const std::string& line) {
    if (!in_src_ || StartsWith(path_, "src/obs/")) return;
    size_t pos = FindToken(line, "std::atomic");
    while (pos != std::string::npos) {
      size_t open = line.find('<', pos);
      if (open == std::string::npos) return;
      size_t close = line.find('>', open);
      std::string payload =
          close == std::string::npos ? line.substr(open + 1)
                                     : line.substr(open + 1, close - open - 1);
      for (const char* t : {"uint64_t", "uint32_t", "uint16_t", "size_t",
                            "int64_t", "unsigned"}) {
        if (FindToken(payload, t) != std::string::npos) {
          Report(idx, "raw-counter",
                 "std::atomic<" + payload +
                     "> counter outside src/obs/: use obs::Counter / "
                     "obs::Gauge / obs::Histogram (obs/metrics.h) so the "
                     "value is named, registered, and dumpable");
          return;
        }
      }
      pos = FindToken(line, "std::atomic", pos + 1);
    }
  }

  /// Finds `token` used as a call: identifier boundaries, with the left side
  /// additionally admitting a global-scope `::` (so `::poll(` matches) but
  /// not a qualified name (`std::bind(`, `client->connect(` via `.`/`->` are
  /// member/namespace calls, not syscalls). The right side must be a '('
  /// after optional spaces.
  static size_t FindSyscallToken(const std::string& line,
                                 const std::string& token, size_t from = 0) {
    size_t pos = from;
    while ((pos = line.find(token, pos)) != std::string::npos) {
      bool left_ok;
      if (pos == 0) {
        left_ok = true;
      } else if (line[pos - 1] == ':') {
        // Only the global-scope qualifier :: with nothing named before it.
        left_ok = pos >= 2 && line[pos - 2] == ':' &&
                  (pos == 2 || !IsIdentChar(line[pos - 3]));
      } else if (line[pos - 1] == '.' ||
                 (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>')) {
        left_ok = false;  // member call
      } else {
        left_ok = !IsIdentChar(line[pos - 1]);
      }
      size_t end = pos + token.size();
      size_t after = end;
      while (after < line.size() && line[after] == ' ') ++after;
      bool right_ok = !((end < line.size() && IsIdentChar(line[end]))) &&
                      after < line.size() && line[after] == '(';
      if (left_ok && right_ok) return pos;
      ++pos;
    }
    return std::string::npos;
  }

  void CheckRawSocket(size_t idx, const std::string& line) {
    if (StartsWith(path_, "src/net/")) return;
    for (const char* tok :
         {"socket", "bind", "listen", "accept", "accept4", "connect", "poll",
          "ppoll", "select", "pselect", "epoll_create", "epoll_create1",
          "epoll_ctl", "epoll_wait", "recv", "send", "recvfrom", "sendto",
          "sendmsg", "recvmsg", "setsockopt", "getsockopt", "getsockname",
          "getpeername", "shutdown"}) {
      if (FindSyscallToken(line, tok) != std::string::npos) {
        Report(idx, "raw-socket",
               std::string(tok) +
                   "() outside src/net/: all socket and poll syscalls live "
                   "behind net::Client / net::ProbeServer so framing, "
                   "backpressure, and disconnect-cancellation stay in one "
                   "place (tests drive the wire through Client test hooks)");
        return;
      }
    }
  }

  void CheckRawFileIo(size_t idx, const std::string& line) {
    // src/io/ owns the raw syscalls; src/wal/ may use them for the log file
    // hot path. Everywhere else durable bytes go through io::File so each
    // operation carries its fault point and the atomic-publish discipline.
    if (StartsWith(path_, "src/io/") || StartsWith(path_, "src/wal/")) return;
    for (const char* tok :
         {"open", "openat", "creat", "write", "pwrite", "writev", "fsync",
          "fdatasync", "rename", "renameat", "unlink", "ftruncate",
          "truncate", "mkdir", "fopen", "freopen"}) {
      if (FindSyscallToken(line, tok) != std::string::npos) {
        Report(idx, "raw-file-io",
               std::string(tok) +
                   "() outside src/io/ + src/wal/: file mutations go through "
                   "io::File / io::WriteFileAtomic (io/file_util.h) so every "
                   "write, fsync, and rename has a fault-injection point and "
                   "the WAL sees a consistent disk");
        return;
      }
    }
  }

  void CheckDeprecatedBriefLimits(size_t idx, const std::string& line) {
    // The alias fields themselves are gone from Brief (PR 9); this rule now
    // guards against their resurrection anywhere, probe.{h,cc} included.
    for (const char* tok :
         {"deadline_ms", "max_result_rows", "max_result_bytes", "cost_budget"}) {
      size_t pos = FindToken(line, tok);
      while (pos != std::string::npos) {
        // cost_budget also legitimately exists on ResourceLimits; only the
        // Brief member ("brief.cost_budget = ...") is deprecated.
        bool applicable = true;
        if (std::string(tok) == "cost_budget") {
          const std::string prefix = "brief.";
          applicable = pos >= prefix.size() &&
                       line.compare(pos - prefix.size(), prefix.size(),
                                    prefix) == 0;
        }
        size_t after = pos + std::string(tok).size();
        while (after < line.size() && line[after] == ' ') ++after;
        // Assignment or compound assignment, but not ==.
        if (after < line.size() &&
            std::string("+-*/%|&^").find(line[after]) != std::string::npos) {
          ++after;
        }
        bool is_write = after < line.size() && line[after] == '=' &&
                        (after + 1 >= line.size() || line[after + 1] != '=');
        if (applicable && is_write) {
          Report(idx, "deprecated-brief-limits",
                 std::string("write to removed Brief::") + tok +
                     ": the deprecated aliases were deleted; set brief.limits "
                     "(ResourceLimits) or use ProbeBuilder");
          return;
        }
        pos = FindToken(line, tok, pos + 1);
      }
    }
  }

  void CheckMutexMemberCoverage(size_t idx, const std::string& line) {
    if (!in_src_ || !annotated_) return;
    // Member declaration: [mutable] (Mutex|std::mutex|std::shared_mutex) name;
    for (const char* type : {"Mutex", "std::mutex", "std::shared_mutex"}) {
      size_t pos = FindToken(line, type);
      if (pos == std::string::npos) continue;
      size_t cursor = pos + std::string(type).size();
      while (cursor < line.size() && line[cursor] == ' ') ++cursor;
      size_t name_begin = cursor;
      while (cursor < line.size() && IsIdentChar(line[cursor])) ++cursor;
      if (cursor == name_begin) continue;  // reference, template arg, ...
      std::string name = line.substr(name_begin, cursor - name_begin);
      while (cursor < line.size() && line[cursor] == ' ') ++cursor;
      if (cursor >= line.size() || line[cursor] != ';') continue;  // not a plain member
      if (referenced_mutexes_ == nullptr) BuildMutexReferenceIndex();
      if (referenced_mutexes_->count(name) == 0) {
        Report(idx, "guarded-by-coverage",
               "mutex member '" + name +
                   "' has no AF_GUARDED_BY/AF_PT_GUARDED_BY/AF_REQUIRES "
                   "coverage in this file: annotate what it protects");
      }
      return;
    }
  }

  /// Collects every mutex name referenced by an annotation argument anywhere
  /// in the file: AF_GUARDED_BY(name), AF_PT_GUARDED_BY(name),
  /// AF_REQUIRES(a.name) etc.
  void BuildMutexReferenceIndex() {
    referenced_storage_ = std::make_unique<std::set<std::string>>();
    referenced_mutexes_ = referenced_storage_.get();
    for (const std::string& line : pre_.lines) {
      for (const char* macro :
           {"AF_GUARDED_BY", "AF_PT_GUARDED_BY", "AF_REQUIRES", "AF_ACQUIRE",
            "AF_RELEASE", "AF_EXCLUDES"}) {
        size_t pos = 0;
        while ((pos = line.find(macro, pos)) != std::string::npos) {
          size_t open = line.find('(', pos);
          if (open == std::string::npos) break;
          size_t close = line.find(')', open);
          if (close == std::string::npos) break;
          // Last identifier inside the parens ("shard.mutex" -> "mutex").
          std::string arg = line.substr(open + 1, close - open - 1);
          std::string name;
          for (char c : arg) {
            if (IsIdentChar(c)) {
              name.push_back(c);
            } else {
              name.clear();
            }
          }
          if (!name.empty()) referenced_storage_->insert(name);
          pos = close;
        }
      }
    }
  }

  void CheckFaultPointScope() {
    // Token-interleaved scope walk over the shared pre-lex: the ScopeWalker
    // opens a scope the moment its '{' token streams past, so the macro is
    // checked against the scope it is actually in — including one-line
    // definitions ("Status F() { AF_FAULT_POINT(...); return ...; }"), which
    // the old line-at-a-time walker misclassified.
    ScopeWalker walker;
    for (const Token& t : Tokenize(pre_)) {
      if (t.text == "AF_FAULT_POINT") {
        bool ok = in_src_ && is_cc_ && !walker.stack().empty() &&
                  walker.stack().back().returns_status;
        if (!ok) {
          Report(t.line, "fault-point-scope",
                 "AF_FAULT_POINT returns the injected Status, so it may only "
                 "appear inside a Status/Result-returning function in a .cc "
                 "file under src/ (use AF_FAULT_STATUS in expression "
                 "contexts)");
        }
      }
      walker.Feed(t);
    }
  }

  void CheckIncludeHygiene() {
    // Headers must include what they use for names referenced from other
    // modules: relying on a transitive include works until an unrelated
    // cleanup breaks every downstream user at once, and it hides real
    // module edges from the layering pass.
    if (!in_src_) return;
    if (!EndsWith(path_, ".h") && !EndsWith(path_, ".hpp")) return;
    const std::string own = ModuleOfPath(path_);

    std::set<std::string> includes;
    for (size_t i = 0; i < pre_.raw.size(); ++i) {
      if (!pre_.preprocessor[i]) continue;
      const std::string& raw = pre_.raw[i];
      size_t inc = raw.find("#include");
      if (inc == std::string::npos) continue;
      size_t open = raw.find('"', inc);
      if (open == std::string::npos) continue;
      size_t close = raw.find('"', open + 1);
      if (close == std::string::npos) continue;
      includes.insert(raw.substr(open + 1, close - open - 1));
    }
    auto includes_module = [&](const std::string& module) {
      const std::string prefix = module + "/";
      for (const std::string& inc : includes) {
        if (StartsWith(inc, prefix)) return true;
      }
      return false;
    };

    // Module sub-namespaces: a `ns::Name` reference needs a direct include
    // of some header from that module. Forward declarations
    // ("namespace io { class File; }") are fine — they reference nothing.
    struct NsReq { const char* ns; const char* module; };
    static constexpr NsReq kNamespaces[] = {
        {"io", "io"},   {"obs", "obs"}, {"net", "net"},
        {"wal", "wal"}, {"lint", "lint"},
        {"exec_internal", "exec"}, {"vec", "exec"},
    };
    // Macros and annotated primitives with one canonical home: the exact
    // header is required, not just "some header from common/".
    struct TokenReq { const char* token; const char* header; };
    static constexpr TokenReq kTokens[] = {
        {"Mutex", "common/thread_annotations.h"},
        {"MutexLock", "common/thread_annotations.h"},
        {"CondVar", "common/thread_annotations.h"},
        {"AF_GUARDED_BY", "common/thread_annotations.h"},
        {"AF_PT_GUARDED_BY", "common/thread_annotations.h"},
        {"AF_REQUIRES", "common/thread_annotations.h"},
        {"AF_ACQUIRE", "common/thread_annotations.h"},
        {"AF_RELEASE", "common/thread_annotations.h"},
        {"AF_EXCLUDES", "common/thread_annotations.h"},
        {"AF_CAPABILITY", "common/thread_annotations.h"},
        {"AF_SCOPED_CAPABILITY", "common/thread_annotations.h"},
        {"AF_FAULT_POINT", "common/fault_injection.h"},
        {"AF_FAULT_STATUS", "common/fault_injection.h"},
        {"AF_RETURN_IF_ERROR", "common/status.h"},
        {"AF_ASSIGN_OR_RETURN", "common/status.h"},
    };

    std::set<std::string> reported;
    for (size_t i = 0; i < pre_.lines.size(); ++i) {
      if (pre_.preprocessor[i]) continue;
      const std::string& line = pre_.lines[i];
      for (const NsReq& req : kNamespaces) {
        if (req.module == own || reported.count(req.module) > 0) continue;
        size_t pos = FindToken(line, req.ns);
        bool used = false;
        while (pos != std::string::npos) {
          if (line.compare(pos + std::string(req.ns).size(), 2, "::") == 0) {
            used = true;
            break;
          }
          pos = FindToken(line, req.ns, pos + 1);
        }
        if (used && !includes_module(req.module)) {
          reported.insert(req.module);
          Report(i, "include-hygiene",
                 std::string(req.ns) + ":: used but no header from " +
                     req.module + "/ is included directly: headers must "
                     "include what they use (transitive includes break when "
                     "the module in between is cleaned up)");
        }
      }
      for (const TokenReq& req : kTokens) {
        if (path_ == std::string("src/") + req.header) continue;
        if (reported.count(req.header) > 0) continue;
        if (FindToken(line, req.token) == std::string::npos) continue;
        if (includes.count(req.header) == 0) {
          reported.insert(req.header);
          Report(i, "include-hygiene",
                 std::string(req.token) + " used but \"" + req.header +
                     "\" is not included directly: headers must include what "
                     "they use");
        }
      }
    }
  }

  std::string path_;
  const PrelexedSource& pre_;
  bool in_kernel_ = false;
  bool in_src_ = false;
  bool is_cc_ = false;
  bool annotated_ = false;
  std::unique_ptr<std::set<std::string>> referenced_storage_;
  const std::set<std::string>* referenced_mutexes_ = nullptr;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ": error: " + message + " [" +
         rule + "]";
}

std::vector<std::string> RuleNames() {
  return {"raw-thread",
          "unseeded-random",
          "iostream-in-lib",
          "raw-mutex-guard",
          "guarded-by-coverage",
          "fault-point-scope",
          "raw-counter",
          "raw-socket",
          "raw-file-io",
          "deprecated-brief-limits",
          "row-value-in-kernel",
          "include-hygiene",
          "lock-order-cycle",
          "lock-self-deadlock",
          "condvar-hold",
          "layer-back-edge",
          "layer-undeclared-edge",
          "include-cycle",
          "layer-config"};
}

std::vector<Diagnostic> LintPrelexed(const std::string& path,
                                     const PrelexedSource& pre) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  return Linter(normalized, pre).Run();
}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content) {
  PrelexedSource pre = Prelex(content);
  return LintPrelexed(path, pre);
}

}  // namespace lint
}  // namespace agentfirst
