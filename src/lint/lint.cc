#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <initializer_list>
#include <memory>
#include <set>

namespace agentfirst {
namespace lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Finds `token` in `line` starting at `from`, requiring identifier
/// boundaries on both sides (':' counts as part of a qualified name on the
/// left, so "this_thread" and "x::rand" style qualifications don't match).
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0) {
  size_t pos = from;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok =
        pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':');
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    ++pos;
  }
  return std::string::npos;
}

/// Source text after comment/string scrubbing, with per-line metadata.
struct Scrubbed {
  /// Code text, same line structure as the input; comment bodies and
  /// string/char literal contents replaced by spaces (quotes kept).
  std::vector<std::string> lines;
  /// Rules named in an aflint:allow(...) comment on each line.
  std::vector<std::set<std::string>> allows;
  /// Line held a comment and no code (suppressions there cover line+1).
  std::vector<bool> comment_only;
  /// Line belongs to a preprocessor directive (including continuations).
  std::vector<bool> preprocessor;
  /// Line's comment text opened / closed an aflint:kernel region.
  std::vector<bool> kernel_begin;
  std::vector<bool> kernel_end;
};

/// Extracts rule names from every "aflint:allow(a, b)" inside comment text.
void ParseAllows(const std::string& comment, std::set<std::string>* out) {
  const std::string marker = "aflint:allow(";
  size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    size_t cursor = pos + marker.size();
    size_t close = comment.find(')', cursor);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(cursor, close - cursor);
    std::string name;
    for (char c : inside + ",") {
      if (c == ',' || c == ' ' || c == '\t') {
        if (!name.empty()) out->insert(name);
        name.clear();
      } else {
        name.push_back(c);
      }
    }
    pos = close;
  }
}

Scrubbed Scrub(const std::string& content) {
  Scrubbed out;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::string raw_delim;  // for kRawString: the ")delim" terminator
  bool in_preproc = false;
  bool line_continues_preproc = false;

  auto flush_line = [&]() {
    out.allows.emplace_back();
    ParseAllows(comment_line, &out.allows.back());
    bool only_ws = std::all_of(code_line.begin(), code_line.end(), [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
    out.comment_only.push_back(!comment_line.empty() && only_ws);
    out.preprocessor.push_back(in_preproc);
    out.kernel_begin.push_back(comment_line.find("aflint:kernel-begin") !=
                               std::string::npos);
    out.kernel_end.push_back(comment_line.find("aflint:kernel-end") !=
                             std::string::npos);
    out.lines.push_back(code_line);
    // A preprocessor directive continues onto the next line after a
    // trailing backslash.
    line_continues_preproc =
        in_preproc && !code_line.empty() && code_line.back() == '\\';
    code_line.clear();
    comment_line.clear();
    in_preproc = line_continues_preproc;
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — detect the R prefix just before.
          bool raw = !code_line.empty() && code_line.back() == 'R' &&
                     (code_line.size() < 2 || !IsIdentChar(code_line[code_line.size() - 2]));
          code_line += '"';
          if (raw) {
            raw_delim = ")";
            size_t j = i + 1;
            while (j < content.size() && content[j] != '(') {
              raw_delim += content[j];
              ++j;
            }
            raw_delim += '"';
            i = j;  // skip past the opening '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kChar;
        } else {
          if (c == '#' && std::all_of(code_line.begin(), code_line.end(),
                                      [](char w) { return std::isspace(static_cast<unsigned char>(w)) != 0; })) {
            in_preproc = true;
          }
          code_line += c;
        }
        break;
      }
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
          if (next == '\n') flush_line();
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString: {
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          code_line += '"';
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  flush_line();
  return out;
}

/// Scope classification for the fault-point-scope rule.
struct Scope {
  bool returns_status = false;
};

bool SignatureReturnsStatus(const std::string& sig) {
  // Trailing return type: "-> Status" / "-> Result<...>".
  size_t arrow = sig.rfind("->");
  if (arrow != std::string::npos) {
    std::string tail = sig.substr(arrow + 2);
    if (FindToken(tail, "Status") != std::string::npos ||
        tail.find("Result") != std::string::npos) {
      return true;
    }
  }
  // Leading return type: "Status Foo(...)" / "Result<T> Foo(...)".
  size_t paren = sig.find('(');
  std::string head = paren == std::string::npos ? sig : sig.substr(0, paren);
  return FindToken(head, "Status") != std::string::npos ||
         head.find("Result") != std::string::npos;
}

bool HasAnyToken(const std::string& sig, std::initializer_list<const char*> toks) {
  for (const char* t : toks) {
    if (FindToken(sig, t) != std::string::npos) return true;
  }
  return false;
}

class Linter {
 public:
  Linter(const std::string& path, const std::string& content)
      : path_(path), scrubbed_(Scrub(content)) {
    in_src_ = StartsWith(path_, "src/");
    is_cc_ = EndsWith(path_, ".cc") || EndsWith(path_, ".cpp");
    annotated_ = content.find("common/thread_annotations.h") != std::string::npos ||
                 content.find("AF_GUARDED_BY") != std::string::npos;
  }

  std::vector<Diagnostic> Run() {
    for (size_t i = 0; i < scrubbed_.lines.size(); ++i) {
      const std::string& line = scrubbed_.lines[i];
      // A kernel-end marker closes the region before its own line is
      // checked; a kernel-begin opens it after (the marker lines themselves
      // are outside the region).
      if (scrubbed_.kernel_end[i]) in_kernel_ = false;
      if (scrubbed_.preprocessor[i]) {
        if (scrubbed_.kernel_begin[i]) in_kernel_ = true;
        continue;
      }
      if (in_kernel_) CheckRowValueInKernel(i, line);
      CheckRawThread(i, line);
      CheckUnseededRandom(i, line);
      CheckIostream(i, line);
      CheckRawMutexGuard(i, line);
      CheckRawCounter(i, line);
      CheckRawSocket(i, line);
      CheckRawFileIo(i, line);
      CheckDeprecatedBriefLimits(i, line);
      CheckMutexMemberCoverage(i, line);
      if (scrubbed_.kernel_begin[i]) in_kernel_ = true;
    }
    CheckFaultPointScope();
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
    return std::move(diags_);
  }

 private:
  bool Allowed(size_t idx, const std::string& rule) const {
    if (scrubbed_.allows[idx].count(rule) > 0) return true;
    // A comment-only line suppresses for the line that follows it.
    return idx > 0 && scrubbed_.comment_only[idx - 1] &&
           scrubbed_.allows[idx - 1].count(rule) > 0;
  }

  void Report(size_t idx, const std::string& rule, std::string message) {
    if (Allowed(idx, rule)) return;
    diags_.push_back(Diagnostic{path_, idx + 1, rule, std::move(message)});
  }

  void CheckRowValueInKernel(size_t idx, const std::string& line) {
    for (const char* tok :
         {"Value", "Row", "GetRow", "EvalExpr", "EvalPredicate"}) {
      if (FindToken(line, tok) != std::string::npos) {
        Report(idx, "row-value-in-kernel",
               std::string(tok) +
                   " inside an aflint:kernel-begin/-end region: kernel loops "
                   "must stay on typed column spans and selection vectors; "
                   "materialize rows and Values only at the batch boundary");
        return;
      }
    }
  }

  void CheckRawThread(size_t idx, const std::string& line) {
    if (path_ == "src/common/thread_pool.h" ||
        path_ == "src/common/thread_pool.cc") {
      return;
    }
    for (const char* tok : {"std::thread", "std::jthread"}) {
      const std::string exempt = "::hardware_concurrency";
      size_t pos = FindToken(line, tok);
      while (pos != std::string::npos) {
        size_t end = pos + std::string(tok).size();
        // Querying the core count spawns nothing.
        if (line.compare(end, exempt.size(), exempt) != 0) {
          Report(idx, "raw-thread",
                 std::string(tok) +
                     " outside src/common/thread_pool.*: run work on the "
                     "shared ThreadPool so concurrency composes");
          break;
        }
        pos = FindToken(line, tok, end);
      }
    }
  }

  void CheckUnseededRandom(size_t idx, const std::string& line) {
    if (path_ == "src/common/rng.h") return;
    auto report = [&](const std::string& what) {
      Report(idx, "unseeded-random",
             what + ": all randomness must come from a seeded Rng "
                    "(common/rng.h) so runs replay deterministically");
    };
    for (const char* fn : {"rand", "srand"}) {
      size_t pos = FindToken(line, fn);
      if (pos != std::string::npos) {
        size_t after = pos + std::string(fn).size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (after < line.size() && line[after] == '(') {
          report(std::string(fn) + "()");
          return;
        }
      }
    }
    if (FindToken(line, "std::random_device") != std::string::npos) {
      report("std::random_device");
    }
  }

  void CheckIostream(size_t idx, const std::string& line) {
    if (!in_src_) return;
    for (const char* tok : {"std::cout", "std::cerr", "std::clog"}) {
      if (FindToken(line, tok) != std::string::npos) {
        Report(idx, "iostream-in-lib",
               std::string(tok) +
                   " in library code: report through Status/results (tests, "
                   "tools, and benches may print)");
        return;
      }
    }
  }

  void CheckRawMutexGuard(size_t idx, const std::string& line) {
    if (!in_src_) return;
    for (const char* tok :
         {"std::lock_guard", "std::unique_lock", "std::scoped_lock"}) {
      if (FindToken(line, tok) != std::string::npos) {
        Report(idx, "raw-mutex-guard",
               std::string(tok) +
                   " is invisible to the clang thread-safety analysis: use "
                   "MutexLock from common/thread_annotations.h");
        return;
      }
    }
  }

  void CheckRawCounter(size_t idx, const std::string& line) {
    if (!in_src_ || StartsWith(path_, "src/obs/")) return;
    size_t pos = FindToken(line, "std::atomic");
    while (pos != std::string::npos) {
      size_t open = line.find('<', pos);
      if (open == std::string::npos) return;
      size_t close = line.find('>', open);
      std::string payload =
          close == std::string::npos ? line.substr(open + 1)
                                     : line.substr(open + 1, close - open - 1);
      for (const char* t : {"uint64_t", "uint32_t", "uint16_t", "size_t",
                            "int64_t", "unsigned"}) {
        if (FindToken(payload, t) != std::string::npos) {
          Report(idx, "raw-counter",
                 "std::atomic<" + payload +
                     "> counter outside src/obs/: use obs::Counter / "
                     "obs::Gauge / obs::Histogram (obs/metrics.h) so the "
                     "value is named, registered, and dumpable");
          return;
        }
      }
      pos = FindToken(line, "std::atomic", pos + 1);
    }
  }

  /// Finds `token` used as a call: identifier boundaries, with the left side
  /// additionally admitting a global-scope `::` (so `::poll(` matches) but
  /// not a qualified name (`std::bind(`, `client->connect(` via `.`/`->` are
  /// member/namespace calls, not syscalls). The right side must be a '('
  /// after optional spaces.
  static size_t FindSyscallToken(const std::string& line,
                                 const std::string& token, size_t from = 0) {
    size_t pos = from;
    while ((pos = line.find(token, pos)) != std::string::npos) {
      bool left_ok;
      if (pos == 0) {
        left_ok = true;
      } else if (line[pos - 1] == ':') {
        // Only the global-scope qualifier :: with nothing named before it.
        left_ok = pos >= 2 && line[pos - 2] == ':' &&
                  (pos == 2 || !IsIdentChar(line[pos - 3]));
      } else if (line[pos - 1] == '.' ||
                 (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>')) {
        left_ok = false;  // member call
      } else {
        left_ok = !IsIdentChar(line[pos - 1]);
      }
      size_t end = pos + token.size();
      size_t after = end;
      while (after < line.size() && line[after] == ' ') ++after;
      bool right_ok = !((end < line.size() && IsIdentChar(line[end]))) &&
                      after < line.size() && line[after] == '(';
      if (left_ok && right_ok) return pos;
      ++pos;
    }
    return std::string::npos;
  }

  void CheckRawSocket(size_t idx, const std::string& line) {
    if (StartsWith(path_, "src/net/")) return;
    for (const char* tok :
         {"socket", "bind", "listen", "accept", "accept4", "connect", "poll",
          "ppoll", "select", "pselect", "epoll_create", "epoll_create1",
          "epoll_ctl", "epoll_wait", "recv", "send", "recvfrom", "sendto",
          "sendmsg", "recvmsg", "setsockopt", "getsockopt", "getsockname",
          "getpeername", "shutdown"}) {
      if (FindSyscallToken(line, tok) != std::string::npos) {
        Report(idx, "raw-socket",
               std::string(tok) +
                   "() outside src/net/: all socket and poll syscalls live "
                   "behind net::Client / net::ProbeServer so framing, "
                   "backpressure, and disconnect-cancellation stay in one "
                   "place (tests drive the wire through Client test hooks)");
        return;
      }
    }
  }

  void CheckRawFileIo(size_t idx, const std::string& line) {
    // src/io/ owns the raw syscalls; src/wal/ may use them for the log file
    // hot path. Everywhere else durable bytes go through io::File so each
    // operation carries its fault point and the atomic-publish discipline.
    if (StartsWith(path_, "src/io/") || StartsWith(path_, "src/wal/")) return;
    for (const char* tok :
         {"open", "openat", "creat", "write", "pwrite", "writev", "fsync",
          "fdatasync", "rename", "renameat", "unlink", "ftruncate",
          "truncate", "mkdir", "fopen", "freopen"}) {
      if (FindSyscallToken(line, tok) != std::string::npos) {
        Report(idx, "raw-file-io",
               std::string(tok) +
                   "() outside src/io/ + src/wal/: file mutations go through "
                   "io::File / io::WriteFileAtomic (io/file_util.h) so every "
                   "write, fsync, and rename has a fault-injection point and "
                   "the WAL sees a consistent disk");
        return;
      }
    }
  }

  void CheckDeprecatedBriefLimits(size_t idx, const std::string& line) {
    // probe.{h,cc} declare the aliases and fold them in EffectiveLimits();
    // everywhere else a write is new code on a doomed API.
    if (path_ == "src/core/probe.h" || path_ == "src/core/probe.cc") return;
    for (const char* tok :
         {"deadline_ms", "max_result_rows", "max_result_bytes", "cost_budget"}) {
      size_t pos = FindToken(line, tok);
      while (pos != std::string::npos) {
        // cost_budget also legitimately exists on ResourceLimits; only the
        // Brief member ("brief.cost_budget = ...") is deprecated.
        bool applicable = true;
        if (std::string(tok) == "cost_budget") {
          const std::string prefix = "brief.";
          applicable = pos >= prefix.size() &&
                       line.compare(pos - prefix.size(), prefix.size(),
                                    prefix) == 0;
        }
        size_t after = pos + std::string(tok).size();
        while (after < line.size() && line[after] == ' ') ++after;
        // Assignment or compound assignment, but not ==.
        if (after < line.size() &&
            std::string("+-*/%|&^").find(line[after]) != std::string::npos) {
          ++after;
        }
        bool is_write = after < line.size() && line[after] == '=' &&
                        (after + 1 >= line.size() || line[after + 1] != '=');
        if (applicable && is_write) {
          Report(idx, "deprecated-brief-limits",
                 std::string("write to deprecated Brief::") + tok +
                     ": set brief.limits (ResourceLimits) or use "
                     "ProbeBuilder; the aliases fold away next PR");
          return;
        }
        pos = FindToken(line, tok, pos + 1);
      }
    }
  }

  void CheckMutexMemberCoverage(size_t idx, const std::string& line) {
    if (!in_src_ || !annotated_) return;
    // Member declaration: [mutable] (Mutex|std::mutex|std::shared_mutex) name;
    for (const char* type : {"Mutex", "std::mutex", "std::shared_mutex"}) {
      size_t pos = FindToken(line, type);
      if (pos == std::string::npos) continue;
      size_t cursor = pos + std::string(type).size();
      while (cursor < line.size() && line[cursor] == ' ') ++cursor;
      size_t name_begin = cursor;
      while (cursor < line.size() && IsIdentChar(line[cursor])) ++cursor;
      if (cursor == name_begin) continue;  // reference, template arg, ...
      std::string name = line.substr(name_begin, cursor - name_begin);
      while (cursor < line.size() && line[cursor] == ' ') ++cursor;
      if (cursor >= line.size() || line[cursor] != ';') continue;  // not a plain member
      if (referenced_mutexes_ == nullptr) BuildMutexReferenceIndex();
      if (referenced_mutexes_->count(name) == 0) {
        Report(idx, "guarded-by-coverage",
               "mutex member '" + name +
                   "' has no AF_GUARDED_BY/AF_PT_GUARDED_BY/AF_REQUIRES "
                   "coverage in this file: annotate what it protects");
      }
      return;
    }
  }

  /// Collects every mutex name referenced by an annotation argument anywhere
  /// in the file: AF_GUARDED_BY(name), AF_PT_GUARDED_BY(name),
  /// AF_REQUIRES(a.name) etc.
  void BuildMutexReferenceIndex() {
    referenced_storage_ = std::make_unique<std::set<std::string>>();
    referenced_mutexes_ = referenced_storage_.get();
    for (const std::string& line : scrubbed_.lines) {
      for (const char* macro :
           {"AF_GUARDED_BY", "AF_PT_GUARDED_BY", "AF_REQUIRES", "AF_ACQUIRE",
            "AF_RELEASE", "AF_EXCLUDES"}) {
        size_t pos = 0;
        while ((pos = line.find(macro, pos)) != std::string::npos) {
          size_t open = line.find('(', pos);
          if (open == std::string::npos) break;
          size_t close = line.find(')', open);
          if (close == std::string::npos) break;
          // Last identifier inside the parens ("shard.mutex" -> "mutex").
          std::string arg = line.substr(open + 1, close - open - 1);
          std::string name;
          for (char c : arg) {
            if (IsIdentChar(c)) {
              name.push_back(c);
            } else {
              name.clear();
            }
          }
          if (!name.empty()) referenced_storage_->insert(name);
          pos = close;
        }
      }
    }
  }

  void CheckFaultPointScope() {
    // Brace-depth scope machine: classify every opened scope by the
    // signature text preceding its '{', so an AF_FAULT_POINT can be checked
    // against the return type of its innermost enclosing function.
    std::vector<Scope> stack;
    std::string sig;
    for (size_t idx = 0; idx < scrubbed_.lines.size(); ++idx) {
      if (scrubbed_.preprocessor[idx]) continue;  // macro bodies don't nest scopes
      const std::string& line = scrubbed_.lines[idx];
      size_t pos = FindToken(line, "AF_FAULT_POINT");
      if (pos != std::string::npos) {
        bool ok = in_src_ && is_cc_ && !stack.empty() &&
                  stack.back().returns_status;
        if (!ok) {
          Report(idx, "fault-point-scope",
                 "AF_FAULT_POINT returns the injected Status, so it may only "
                 "appear inside a Status/Result-returning function in a .cc "
                 "file under src/ (use AF_FAULT_STATUS in expression "
                 "contexts)");
        }
      }
      for (char c : line) {
        if (c == '{') {
          Scope scope;
          bool inherited = !stack.empty() && stack.back().returns_status;
          if (HasAnyToken(sig, {"namespace"})) {
            scope.returns_status = false;
          } else if (HasAnyToken(sig, {"class", "struct", "union", "enum"}) &&
                     sig.find('(') == std::string::npos) {
            scope.returns_status = false;
          } else if (HasAnyToken(sig, {"if", "for", "while", "switch", "do",
                                       "else", "catch", "try"})) {
            scope.returns_status = inherited;  // control flow: same function
          } else if (sig.find('(') != std::string::npos) {
            scope.returns_status = SignatureReturnsStatus(sig);
          } else {
            scope.returns_status = inherited;  // init-list / bare block
          }
          stack.push_back(scope);
          sig.clear();
        } else if (c == '}') {
          if (!stack.empty()) stack.pop_back();
          sig.clear();
        } else if (c == ';') {
          sig.clear();
        } else {
          sig += c;
        }
      }
      sig += ' ';
    }
  }

  std::string path_;
  Scrubbed scrubbed_;
  bool in_kernel_ = false;
  bool in_src_ = false;
  bool is_cc_ = false;
  bool annotated_ = false;
  std::unique_ptr<std::set<std::string>> referenced_storage_;
  const std::set<std::string>* referenced_mutexes_ = nullptr;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ": error: " + message + " [" +
         rule + "]";
}

std::vector<std::string> RuleNames() {
  return {"raw-thread",
          "unseeded-random",
          "iostream-in-lib",
          "raw-mutex-guard",
          "guarded-by-coverage",
          "fault-point-scope",
          "raw-counter",
          "raw-socket",
          "raw-file-io",
          "deprecated-brief-limits",
          "row-value-in-kernel"};
}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  return Linter(normalized, content).Run();
}

}  // namespace lint
}  // namespace agentfirst
