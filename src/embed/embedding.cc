#include "embed/embedding.h"

#include <cmath>

#include "common/hash.h"
#include "common/str_util.h"

namespace agentfirst {

namespace {
void AccumulateFeature(std::string_view feature, float weight, Embedding* vec) {
  uint64_t h = HashString(feature);
  size_t idx = h % kEmbeddingDim;
  float sign = ((h >> 32) & 1) != 0 ? 1.0f : -1.0f;
  (*vec)[idx] += sign * weight;
}
}  // namespace

Embedding EmbedText(std::string_view text) {
  Embedding vec(kEmbeddingDim, 0.0f);
  std::string lower = ToLower(text);
  // Character trigrams over the padded text (captures morphology: "sales" ~
  // "sale", "store_id" ~ "stores").
  std::string padded = "^" + lower + "$";
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    AccumulateFeature(std::string_view(padded).substr(i, 3), 1.0f, &vec);
  }
  // Word unigrams (split on whitespace and '_' so identifiers decompose),
  // weighted higher than trigrams.
  std::string wordified = lower;
  for (char& c : wordified) {
    if (c == '_' || c == '.' || c == '-' || c == ',') c = ' ';
  }
  for (const std::string& word : SplitWords(wordified)) {
    AccumulateFeature(word, 3.0f, &vec);
  }
  // L2 normalize.
  double norm = 0.0;
  for (float v : vec) norm += static_cast<double>(v) * v;
  if (norm > 0.0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm));
    for (float& v : vec) v *= inv;
  }
  return vec;
}

double CosineSimilarity(const Embedding& a, const Embedding& b) {
  if (a.size() != b.size()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace agentfirst
