#include "embed/vector_index.h"

#include <algorithm>

#include "common/rng.h"

namespace agentfirst {

namespace {
void KeepTopK(std::vector<VectorSearchHit>* hits, size_t k) {
  std::sort(hits->begin(), hits->end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits->size() > k) hits->resize(k);
}
}  // namespace

void FlatVectorIndex::Add(uint64_t id, Embedding vec) {
  ids_.push_back(id);
  vectors_.push_back(std::move(vec));
}

std::vector<VectorSearchHit> FlatVectorIndex::TopK(const Embedding& query,
                                                   size_t k) const {
  std::vector<VectorSearchHit> hits;
  hits.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    hits.push_back({ids_[i], CosineSimilarity(query, vectors_[i])});
  }
  KeepTopK(&hits, k);
  return hits;
}

void IvfVectorIndex::Add(uint64_t id, Embedding vec) {
  ids_.push_back(id);
  vectors_.push_back(std::move(vec));
  built_ = false;
}

Status IvfVectorIndex::Build() {
  if (vectors_.empty()) return Status::InvalidArgument("no vectors to index");
  size_t nlist = std::min(nlist_, vectors_.size());
  Rng rng(seed_);

  // Initialize centroids with distinct random vectors.
  std::vector<size_t> perm(vectors_.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.Shuffle(&perm);
  centroids_.assign(nlist, Embedding());
  for (size_t c = 0; c < nlist; ++c) centroids_[c] = vectors_[perm[c]];

  std::vector<size_t> assignment(vectors_.size(), 0);
  constexpr int kIterations = 8;
  for (int iter = 0; iter < kIterations; ++iter) {
    // Assign.
    for (size_t i = 0; i < vectors_.size(); ++i) {
      double best = -2.0;
      size_t best_c = 0;
      for (size_t c = 0; c < nlist; ++c) {
        double s = CosineSimilarity(vectors_[i], centroids_[c]);
        if (s > best) {
          best = s;
          best_c = c;
        }
      }
      assignment[i] = best_c;
    }
    // Update.
    std::vector<Embedding> sums(nlist, Embedding(kEmbeddingDim, 0.0f));
    std::vector<size_t> counts(nlist, 0);
    for (size_t i = 0; i < vectors_.size(); ++i) {
      size_t c = assignment[i];
      ++counts[c];
      for (size_t d = 0; d < vectors_[i].size() && d < kEmbeddingDim; ++d) {
        sums[c][d] += vectors_[i][d];
      }
    }
    for (size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster with a random vector.
        centroids_[c] = vectors_[rng.NextUint(vectors_.size())];
        continue;
      }
      for (float& v : sums[c]) v /= static_cast<float>(counts[c]);
      centroids_[c] = std::move(sums[c]);
    }
  }
  lists_.assign(nlist, {});
  for (size_t i = 0; i < vectors_.size(); ++i) {
    lists_[assignment[i]].push_back(i);
  }
  built_ = true;
  return Status::OK();
}

std::vector<VectorSearchHit> IvfVectorIndex::TopK(const Embedding& query,
                                                  size_t k) const {
  std::vector<VectorSearchHit> hits;
  if (!built_) {
    // Exact fallback.
    for (size_t i = 0; i < ids_.size(); ++i) {
      hits.push_back({ids_[i], CosineSimilarity(query, vectors_[i])});
    }
    KeepTopK(&hits, k);
    return hits;
  }
  // Rank centroids, probe the nearest nprobe lists.
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    ranked.emplace_back(CosineSimilarity(query, centroids_[c]), c);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  size_t probes = std::min(nprobe_, ranked.size());
  for (size_t p = 0; p < probes; ++p) {
    for (size_t off : lists_[ranked[p].second]) {
      hits.push_back({ids_[off], CosineSimilarity(query, vectors_[off])});
    }
  }
  KeepTopK(&hits, k);
  return hits;
}

}  // namespace agentfirst
