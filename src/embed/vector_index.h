#ifndef AGENTFIRST_EMBED_VECTOR_INDEX_H_
#define AGENTFIRST_EMBED_VECTOR_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "embed/embedding.h"

namespace agentfirst {

struct VectorSearchHit {
  uint64_t id = 0;
  double score = 0.0;  // cosine similarity, higher is better
};

/// Exact top-k search by linear scan. The baseline both for correctness
/// tests and the recall benchmark of the IVF index.
class FlatVectorIndex {
 public:
  void Add(uint64_t id, Embedding vec);
  size_t size() const { return ids_.size(); }

  std::vector<VectorSearchHit> TopK(const Embedding& query, size_t k) const;

 private:
  std::vector<uint64_t> ids_;
  std::vector<Embedding> vectors_;
};

/// Inverted-file (IVF) approximate index: k-means coarse quantizer with
/// `nlist` centroids; queries probe the `nprobe` nearest lists. Call Build()
/// after all Add()s; TopK before Build falls back to exact search.
class IvfVectorIndex {
 public:
  IvfVectorIndex(size_t nlist, size_t nprobe, uint64_t seed = 7)
      : nlist_(nlist), nprobe_(nprobe), seed_(seed) {}

  void Add(uint64_t id, Embedding vec);
  size_t size() const { return ids_.size(); }

  /// Runs k-means (a few Lloyd iterations) and assigns vectors to lists.
  Status Build();
  bool built() const { return built_; }

  std::vector<VectorSearchHit> TopK(const Embedding& query, size_t k) const;

 private:
  size_t nlist_;
  size_t nprobe_;
  uint64_t seed_;
  bool built_ = false;
  std::vector<uint64_t> ids_;
  std::vector<Embedding> vectors_;
  std::vector<Embedding> centroids_;
  std::vector<std::vector<size_t>> lists_;  // centroid -> vector offsets
};

}  // namespace agentfirst

#endif  // AGENTFIRST_EMBED_VECTOR_INDEX_H_
