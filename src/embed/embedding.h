#ifndef AGENTFIRST_EMBED_EMBEDDING_H_
#define AGENTFIRST_EMBED_EMBEDDING_H_

#include <string_view>
#include <vector>

namespace agentfirst {

/// Dimensionality of the deterministic text embedding.
inline constexpr size_t kEmbeddingDim = 64;

using Embedding = std::vector<float>;

/// Deterministic text embedding standing in for a learned model: hashed
/// character trigrams plus hashed word unigrams, signed and L2-normalized.
/// Similar strings (shared substrings/words) land near each other, which is
/// the property the semantic operators and the memory store rely on.
/// Case-insensitive; returns a zero vector for empty text.
Embedding EmbedText(std::string_view text);

/// Cosine similarity in [-1, 1]; 0 if either vector is zero.
double CosineSimilarity(const Embedding& a, const Embedding& b);

}  // namespace agentfirst

#endif  // AGENTFIRST_EMBED_EMBEDDING_H_
