#include "opt/rules.h"

#include <utility>

#include "common/logging.h"
#include "exec/evaluator.h"

namespace agentfirst {

namespace {

bool IsFoldableLiteralTree(const BoundExpr& e) {
  if (e.kind == BoundExprKind::kColumn) return false;
  if (e.kind == BoundExprKind::kLiteral) return true;
  for (const auto& c : e.children) {
    if (!IsFoldableLiteralTree(*c)) return false;
  }
  return true;
}

PlanPtr MakeFilterNode(PlanPtr child, BoundExprPtr predicate) {
  auto filter = std::make_shared<PlanNode>(PlanKind::kFilter);
  filter->output_schema = child->output_schema;
  filter->predicate = std::move(predicate);
  filter->children.push_back(std::move(child));
  return filter;
}

/// One bottom-up rewrite pass. Sets *changed when any rule fired.
PlanPtr RewriteOnce(PlanPtr node, bool* changed) {
  for (auto& c : node->children) c = RewriteOnce(c, changed);

  // Fold constants in every expression slot.
  auto fold = [&](BoundExprPtr* e) {
    if (*e == nullptr) return;
    uint64_t before = (*e)->Hash(false);
    *e = FoldConstants(std::move(*e));
    if ((*e)->Hash(false) != before) *changed = true;
  };
  fold(&node->predicate);
  fold(&node->scan_filter);
  for (auto& e : node->project_exprs) fold(&e);
  for (auto& g : node->group_by) fold(&g);
  for (auto& [l, r] : node->join_keys) {
    fold(&l);
    fold(&r);
  }
  for (auto& a : node->aggregates) {
    if (a.arg != nullptr) fold(&a.arg);
  }

  if (node->kind != PlanKind::kFilter) return node;
  PlanPtr child = node->children[0];

  // Filter over Filter: merge.
  if (child->kind == PlanKind::kFilter) {
    *changed = true;
    auto merged = std::make_shared<PlanNode>(PlanKind::kFilter);
    merged->output_schema = node->output_schema;
    merged->predicate = MakeBoundBinary(BinaryOp::kAnd, node->predicate->Clone(),
                                        child->predicate->Clone());
    merged->children = child->children;
    return merged;
  }

  // Filter over Scan: push into scan_filter.
  if (child->kind == PlanKind::kScan && child->table != nullptr) {
    *changed = true;
    auto scan = std::make_shared<PlanNode>(PlanKind::kScan);
    scan->table_name = child->table_name;
    scan->table = child->table;
    scan->output_schema = child->output_schema;
    scan->scan_filter =
        child->scan_filter != nullptr
            ? MakeBoundBinary(BinaryOp::kAnd, child->scan_filter->Clone(),
                              node->predicate->Clone())
            : node->predicate->Clone();
    return scan;
  }

  // Filter over Project: push conjuncts that only touch pass-through columns.
  if (child->kind == PlanKind::kProject) {
    // mapping[out_idx] = input idx when the projection is a bare column ref.
    std::vector<size_t> mapping(child->project_exprs.size(), SIZE_MAX);
    bool any_identity = false;
    for (size_t i = 0; i < child->project_exprs.size(); ++i) {
      if (child->project_exprs[i]->kind == BoundExprKind::kColumn) {
        mapping[i] = child->project_exprs[i]->column_index;
        any_identity = true;
      }
    }
    if (any_identity) {
      std::vector<BoundExprPtr> conjuncts = SplitConjuncts(node->predicate->Clone());
      std::vector<BoundExprPtr> below;
      std::vector<BoundExprPtr> above;
      for (auto& c : conjuncts) {
        BoundExprPtr copy = c->Clone();
        if (copy->RemapColumns(mapping)) {
          below.push_back(std::move(copy));
        } else {
          above.push_back(std::move(c));
        }
      }
      if (!below.empty()) {
        *changed = true;
        auto new_project = std::make_shared<PlanNode>(PlanKind::kProject);
        new_project->output_schema = child->output_schema;
        for (const auto& e : child->project_exprs) {
          new_project->project_exprs.push_back(e->Clone());
        }
        new_project->children.push_back(
            MakeFilterNode(child->children[0], CombineConjuncts(std::move(below))));
        if (above.empty()) return new_project;
        return MakeFilterNode(new_project, CombineConjuncts(std::move(above)));
      }
    }
  }

  // Filter over join: route conjuncts to the side they reference.
  if (child->kind == PlanKind::kHashJoin ||
      child->kind == PlanKind::kNestedLoopJoin) {
    size_t left_width = child->children[0]->output_schema.NumColumns();
    size_t total = child->output_schema.NumColumns();
    bool left_ok = true;
    // For LEFT joins only left-side conjuncts may move (right side rows can
    // be synthesized NULLs above the join).
    bool right_ok = child->join_type != JoinType::kLeft;

    std::vector<BoundExprPtr> conjuncts = SplitConjuncts(node->predicate->Clone());
    std::vector<BoundExprPtr> to_left;
    std::vector<BoundExprPtr> to_right;
    std::vector<BoundExprPtr> stay;
    for (auto& c : conjuncts) {
      std::vector<size_t> cols;
      c->CollectColumns(&cols);
      bool all_left = !cols.empty();
      bool all_right = !cols.empty();
      for (size_t idx : cols) {
        if (idx >= left_width) all_left = false;
        if (idx < left_width) all_right = false;
      }
      if (all_left && left_ok) {
        to_left.push_back(std::move(c));
      } else if (all_right && right_ok) {
        std::vector<size_t> mapping(total, SIZE_MAX);
        for (size_t i = left_width; i < total; ++i) mapping[i] = i - left_width;
        AF_CHECK(c->RemapColumns(mapping));
        to_right.push_back(std::move(c));
      } else {
        stay.push_back(std::move(c));
      }
    }
    if (!to_left.empty() || !to_right.empty()) {
      *changed = true;
      auto new_join = std::make_shared<PlanNode>(child->kind);
      new_join->output_schema = child->output_schema;
      new_join->join_type = child->join_type;
      for (const auto& [l, r] : child->join_keys) {
        new_join->join_keys.emplace_back(l->Clone(), r->Clone());
      }
      if (child->predicate != nullptr) new_join->predicate = child->predicate->Clone();
      PlanPtr left = child->children[0];
      PlanPtr right = child->children[1];
      if (!to_left.empty()) {
        left = MakeFilterNode(left, CombineConjuncts(std::move(to_left)));
      }
      if (!to_right.empty()) {
        right = MakeFilterNode(right, CombineConjuncts(std::move(to_right)));
      }
      new_join->children = {left, right};
      if (stay.empty()) return new_join;
      return MakeFilterNode(new_join, CombineConjuncts(std::move(stay)));
    }
  }
  return node;
}

}  // namespace

BoundExprPtr FoldConstants(BoundExprPtr expr) {
  if (expr == nullptr) return expr;
  for (auto& c : expr->children) c = FoldConstants(std::move(c));
  if (expr->kind == BoundExprKind::kLiteral ||
      expr->kind == BoundExprKind::kColumn) {
    return expr;
  }
  if (!IsFoldableLiteralTree(*expr)) return expr;
  Row empty;
  Value v = EvalExpr(*expr, empty);
  DataType t = expr->type;
  auto folded = MakeBoundLiteral(std::move(v));
  // Preserve the statically inferred type for NULL results.
  if (folded->literal.is_null()) folded->type = t;
  return folded;
}

namespace {

/// Index selection: attach a fresh hash index to scans whose filter carries
/// an equality conjunct on an indexed column. The conjunct stays in the
/// filter (re-verified per row), so execution against a stale index or a
/// mutated table stays correct.
void SelectIndexes(PlanNode* node, Catalog* catalog) {
  for (auto& c : node->children) SelectIndexes(c.get(), catalog);
  if (node->kind != PlanKind::kScan || node->table == nullptr ||
      node->scan_filter == nullptr || node->index != nullptr) {
    return;
  }
  std::vector<BoundExprPtr> conjuncts = SplitConjuncts(node->scan_filter->Clone());
  for (const auto& conjunct : conjuncts) {
    if (conjunct->kind != BoundExprKind::kBinary ||
        conjunct->bin_op != BinaryOp::kEq) {
      continue;
    }
    const BoundExpr* col = nullptr;
    const BoundExpr* lit = nullptr;
    if (conjunct->children[0]->kind == BoundExprKind::kColumn &&
        conjunct->children[1]->kind == BoundExprKind::kLiteral) {
      col = conjunct->children[0].get();
      lit = conjunct->children[1].get();
    } else if (conjunct->children[1]->kind == BoundExprKind::kColumn &&
               conjunct->children[0]->kind == BoundExprKind::kLiteral) {
      col = conjunct->children[1].get();
      lit = conjunct->children[0].get();
    }
    if (col == nullptr || lit->literal.is_null()) continue;
    const HashIndex* index =
        catalog->GetFreshIndex(node->table_name, col->column_index);
    if (index == nullptr) continue;
    node->index = index;
    node->index_value = lit->literal;
    return;
  }
}

}  // namespace

PlanPtr OptimizePlan(PlanPtr plan, Catalog* catalog) {
  if (plan == nullptr) return plan;
  PlanPtr current = plan->Clone();
  constexpr int kMaxPasses = 6;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    current = RewriteOnce(current, &changed);
    if (!changed) break;
  }
  if (catalog != nullptr) SelectIndexes(current.get(), catalog);
  return current;
}

}  // namespace agentfirst
