#ifndef AGENTFIRST_OPT_RULES_H_
#define AGENTFIRST_OPT_RULES_H_

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace agentfirst {

/// Rule-based logical rewrites. All rules are semantics-preserving and
/// idempotent; OptimizePlan applies them to fixpoint (bounded passes).
///
/// Implemented rules:
///  - constant folding inside expressions (literal-only subtrees collapse)
///  - merge adjacent Filters into one conjunction
///  - push Filter conjuncts below Project (when they reference only
///    pass-through columns)
///  - push Filter conjuncts into the matching side of a join
///  - push Filter into Scan (becomes scan_filter)
///  - with a catalog: index selection (an equality conjunct of a scan filter
///    with a matching hash index turns the scan into an index probe)
PlanPtr OptimizePlan(PlanPtr plan, Catalog* catalog = nullptr);

/// Folds literal-only subtrees of `expr` into literals (in place); returns
/// the possibly-replaced root.
BoundExprPtr FoldConstants(BoundExprPtr expr);

}  // namespace agentfirst

#endif  // AGENTFIRST_OPT_RULES_H_
