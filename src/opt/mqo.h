#ifndef AGENTFIRST_OPT_MQO_H_
#define AGENTFIRST_OPT_MQO_H_

#include <vector>

#include "common/result.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "plan/logical_plan.h"

namespace agentfirst {

/// Sharing statistics for a batch (the measurable counterpart of the paper's
/// Figure 2 claim: redundancy across speculative queries is exploitable).
struct SharingStats {
  size_t total_operators = 0;     // sum of operator counts across plans
  size_t distinct_operators = 0;  // unique strict fingerprints
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  double SharingRatio() const {
    return total_operators == 0
               ? 0.0
               : 1.0 - static_cast<double>(distinct_operators) / total_operators;
  }
};

/// Multi-query executor: runs a batch of plans through one shared sub-plan
/// result cache, so structurally identical sub-plans across the batch (or
/// across repeated calls) execute once. This is the paper's Sec. 5.2
/// "efficient execution" component.
class BatchExecutor {
 public:
  explicit BatchExecutor(ExecOptions base_options = {})
      : base_options_(base_options) {}

  /// Executes all plans, sharing sub-plan results. Per-plan failures are
  /// reported individually (one bad probe never fails the batch).
  std::vector<Result<ResultSetPtr>> ExecuteBatch(
      const std::vector<PlanPtr>& plans);

  /// Like the above, but with caller-supplied execution options (deadline,
  /// cancellation, budgets, sampling) layered over this executor's cache.
  /// The cache / cache_subplans fields of `options` are overridden so the
  /// batch still shares sub-plan results. If `options.cancel` trips, plans
  /// not yet started return kCancelled immediately instead of executing —
  /// batch-level cancellation stops within one plan (and, inside a running
  /// plan, within one morsel).
  std::vector<Result<ResultSetPtr>> ExecuteBatch(
      const std::vector<PlanPtr>& plans, const ExecOptions& options);

  /// Like ExecuteBatch but runs the plans concurrently on the shared
  /// work-stealing pool (at most `num_threads` in flight), all sharing the
  /// same sub-plan cache — the paper's high-throughput setting: thousands of
  /// concurrent field-agent probes. Results are in submission order.
  std::vector<Result<ResultSetPtr>> ExecuteBatchParallel(
      const std::vector<PlanPtr>& plans, size_t num_threads);

  /// Parallel variant with caller-supplied options; same cache override and
  /// cancellation early-exit semantics as the serial overload.
  std::vector<Result<ResultSetPtr>> ExecuteBatchParallel(
      const std::vector<PlanPtr>& plans, size_t num_threads,
      const ExecOptions& options);

  /// Cumulative stats across all batches executed through this object.
  SharingStats stats() const;

  /// Drops cached results (e.g. after writes).
  void InvalidateCache() { cache_.Clear(); }

  ExecCache* cache() { return &cache_; }

 private:
  void RecordOperatorCounts(const std::vector<PlanPtr>& plans);

  ExecOptions base_options_;
  ExecCache cache_;
  // Per-instance sharing stats; af.mqo.* registry counters mirror the
  // process-wide totals (see mqo.cc).
  obs::Counter total_operators_;
  obs::Counter distinct_operators_;
};

}  // namespace agentfirst

#endif  // AGENTFIRST_OPT_MQO_H_
