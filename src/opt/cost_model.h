#ifndef AGENTFIRST_OPT_COST_MODEL_H_
#define AGENTFIRST_OPT_COST_MODEL_H_

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace agentfirst {

/// Cost estimate for one plan: estimated output rows and a unit-less work
/// measure (rows touched across operators). Both feed the probe optimizer's
/// satisficing decisions and the sleeper agents' cost feedback.
struct CostEstimate {
  double output_rows = 0.0;
  double total_cost = 0.0;
};

/// Estimates cardinality/cost bottom-up using catalog statistics where
/// available (selectivity from histograms/NDV) and standard default
/// selectivities otherwise. Never executes the plan.
CostEstimate EstimatePlanCost(const PlanNode& plan, Catalog* catalog);

/// Selectivity of a predicate over a relation described by `stats`
/// (columns indexed by position in `schema`). Conservative defaults for
/// shapes the stats cannot capture.
double EstimateSelectivity(const BoundExpr& predicate, const Schema& schema,
                           const TableStats* stats);

}  // namespace agentfirst

#endif  // AGENTFIRST_OPT_COST_MODEL_H_
