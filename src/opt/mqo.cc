#include "opt/mqo.h"

#include <atomic>
#include <thread>
#include <unordered_set>

#include "plan/fingerprint.h"

namespace agentfirst {

namespace {
void CountOperators(const PlanNode& node, size_t* total,
                    std::unordered_set<uint64_t>* distinct) {
  ++*total;
  distinct->insert(PlanFingerprint(node));
  for (const auto& c : node.children) CountOperators(*c, total, distinct);
}
}  // namespace

std::vector<Result<ResultSetPtr>> BatchExecutor::ExecuteBatch(
    const std::vector<PlanPtr>& plans) {
  std::unordered_set<uint64_t> distinct;
  size_t total = 0;
  for (const auto& p : plans) {
    if (p != nullptr) CountOperators(*p, &total, &distinct);
  }
  total_operators_ += total;
  distinct_operators_ += distinct.size();

  ExecOptions options = base_options_;
  options.cache = &cache_;
  options.cache_subplans = true;

  std::vector<Result<ResultSetPtr>> results;
  results.reserve(plans.size());
  for (const auto& p : plans) {
    if (p == nullptr) {
      results.emplace_back(Status::InvalidArgument("null plan in batch"));
      continue;
    }
    results.push_back(ExecutePlan(*p, options));
  }
  return results;
}

std::vector<Result<ResultSetPtr>> BatchExecutor::ExecuteBatchParallel(
    const std::vector<PlanPtr>& plans, size_t num_threads) {
  if (num_threads <= 1 || plans.size() <= 1) return ExecuteBatch(plans);

  std::unordered_set<uint64_t> distinct;
  size_t total = 0;
  for (const auto& p : plans) {
    if (p != nullptr) CountOperators(*p, &total, &distinct);
  }
  total_operators_ += total;
  distinct_operators_ += distinct.size();

  ExecOptions options = base_options_;
  options.cache = &cache_;
  options.cache_subplans = true;

  std::vector<Result<ResultSetPtr>> results(
      plans.size(), Result<ResultSetPtr>(Status::Internal("not executed")));
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= plans.size()) break;
      if (plans[i] == nullptr) {
        results[i] = Status::InvalidArgument("null plan in batch");
        continue;
      }
      results[i] = ExecutePlan(*plans[i], options);
    }
  };
  std::vector<std::thread> threads;
  size_t spawn = std::min(num_threads, plans.size());
  threads.reserve(spawn);
  for (size_t t = 0; t < spawn; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return results;
}

SharingStats BatchExecutor::stats() const {
  SharingStats s;
  s.total_operators = total_operators_;
  s.distinct_operators = distinct_operators_;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  return s;
}

}  // namespace agentfirst
