#include "opt/mqo.h"

#include <unordered_set>

#include "common/thread_pool.h"
#include "plan/fingerprint.h"

namespace agentfirst {

namespace {
void CountOperators(const PlanNode& node, size_t* total,
                    std::unordered_set<uint64_t>* distinct) {
  ++*total;
  distinct->insert(PlanFingerprint(node));
  for (const auto& c : node.children) CountOperators(*c, total, distinct);
}
}  // namespace

void BatchExecutor::RecordOperatorCounts(const std::vector<PlanPtr>& plans) {
  std::unordered_set<uint64_t> distinct;
  size_t total = 0;
  for (const auto& p : plans) {
    if (p != nullptr) CountOperators(*p, &total, &distinct);
  }
  total_operators_.Add(total);
  distinct_operators_.Add(distinct.size());
  static obs::Counter* g_total =
      obs::MetricsRegistry::Default().GetCounter("af.mqo.operators_total");
  static obs::Counter* g_distinct =
      obs::MetricsRegistry::Default().GetCounter("af.mqo.operators_distinct");
  g_total->Add(total);
  g_distinct->Add(distinct.size());
}

std::vector<Result<ResultSetPtr>> BatchExecutor::ExecuteBatch(
    const std::vector<PlanPtr>& plans) {
  return ExecuteBatch(plans, base_options_);
}

std::vector<Result<ResultSetPtr>> BatchExecutor::ExecuteBatch(
    const std::vector<PlanPtr>& plans, const ExecOptions& caller_options) {
  RecordOperatorCounts(plans);

  ExecOptions options = caller_options;
  options.cache = &cache_;
  options.cache_subplans = true;

  std::vector<Result<ResultSetPtr>> results;
  results.reserve(plans.size());
  for (const auto& p : plans) {
    if (p == nullptr) {
      results.emplace_back(Status::InvalidArgument("null plan in batch"));
      continue;
    }
    if (options.cancel.cancelled()) {
      results.emplace_back(Status::Cancelled("batch cancelled"));
      continue;
    }
    results.push_back(ExecutePlan(*p, options));
  }
  return results;
}

std::vector<Result<ResultSetPtr>> BatchExecutor::ExecuteBatchParallel(
    const std::vector<PlanPtr>& plans, size_t num_threads) {
  return ExecuteBatchParallel(plans, num_threads, base_options_);
}

std::vector<Result<ResultSetPtr>> BatchExecutor::ExecuteBatchParallel(
    const std::vector<PlanPtr>& plans, size_t num_threads,
    const ExecOptions& caller_options) {
  if (num_threads <= 1 || plans.size() <= 1) {
    return ExecuteBatch(plans, caller_options);
  }

  RecordOperatorCounts(plans);

  ExecOptions options = caller_options;
  options.cache = &cache_;
  options.cache_subplans = true;

  std::vector<Result<ResultSetPtr>> results(
      plans.size(), Result<ResultSetPtr>(Status::Internal("not executed")));
  // Plans are tasks on the shared work-stealing pool, one plan per morsel,
  // capped at `num_threads` concurrent claimants. Intra-query morsels
  // (options.num_threads in base_options_) nest on the same pool, so batch-
  // and operator-level parallelism share one scheduler instead of
  // oversubscribing with ad-hoc threads.
  ThreadPool* pool =
      base_options_.pool != nullptr ? base_options_.pool : ThreadPool::Default();
  pool->ParallelFor(
      0, plans.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (plans[i] == nullptr) {
            results[i] = Status::InvalidArgument("null plan in batch");
            continue;
          }
          if (options.cancel.cancelled()) {
            results[i] = Status::Cancelled("batch cancelled");
            continue;
          }
          results[i] = ExecutePlan(*plans[i], options);
        }
      },
      /*grain=*/1, num_threads);
  return results;
}

SharingStats BatchExecutor::stats() const {
  SharingStats s;
  s.total_operators = total_operators_.value();
  s.distinct_operators = distinct_operators_.value();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  return s;
}

}  // namespace agentfirst
