#ifndef AGENTFIRST_OPT_AQP_H_
#define AGENTFIRST_OPT_AQP_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "exec/executor.h"
#include "plan/logical_plan.h"

namespace agentfirst {

/// An approximate answer: the (scaled) result plus CLT-based 95% confidence
/// half-widths for scalable aggregate output columns (COUNT/SUM without
/// DISTINCT). Columns that carry no bound have nullopt.
struct ApproxAnswer {
  ResultSetPtr result;
  double sample_rate = 1.0;
  /// Per output column: relative 95% CI half-width (e.g. 0.03 = +-3%);
  /// nullopt when the column has no statistical bound.
  std::vector<std::optional<double>> relative_ci95;
};

/// Executes `plan` with Bernoulli scan sampling at `sample_rate` and
/// Horvitz-Thompson scaling (done by the executor). Computes confidence
/// bounds from the scaled counts. sample_rate >= 1 degenerates to exact
/// execution with zero-width bounds.
Result<ApproxAnswer> ExecuteApproximate(const PlanNode& plan, double sample_rate,
                                        const ExecOptions& base_options = {});

/// Picks a sample rate that targets the given relative error for COUNT-like
/// aggregates over `estimated_input_rows` rows (inverts the CLT bound);
/// clamped to [min_rate, 1].
double ChooseSampleRate(double estimated_input_rows, double target_relative_error,
                        double min_rate = 0.001);

}  // namespace agentfirst

#endif  // AGENTFIRST_OPT_AQP_H_
