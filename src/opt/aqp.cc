#include "opt/aqp.h"

#include <algorithm>
#include <cmath>

namespace agentfirst {

namespace {

constexpr double kZ95 = 1.959964;

/// Finds the aggregate node feeding the root through a chain of
/// column-preserving operators, and the mapping from root output column to
/// aggregate output column (SIZE_MAX when severed).
const PlanNode* FindAggregate(const PlanNode& root, std::vector<size_t>* mapping) {
  const PlanNode* node = &root;
  // Identity over root outputs.
  mapping->assign(root.output_schema.NumColumns(), 0);
  for (size_t i = 0; i < mapping->size(); ++i) (*mapping)[i] = i;

  while (node != nullptr) {
    switch (node->kind) {
      case PlanKind::kAggregate:
        return node;
      case PlanKind::kLimit:
      case PlanKind::kSort:
      case PlanKind::kFilter:
        node = node->children.empty() ? nullptr : node->children[0].get();
        break;
      case PlanKind::kProject: {
        // Compose: current root col -> project output col -> project input.
        std::vector<size_t> next(mapping->size(), SIZE_MAX);
        for (size_t i = 0; i < mapping->size(); ++i) {
          size_t j = (*mapping)[i];
          if (j == SIZE_MAX || j >= node->project_exprs.size()) continue;
          const BoundExpr& e = *node->project_exprs[j];
          if (e.kind == BoundExprKind::kColumn) next[i] = e.column_index;
        }
        *mapping = std::move(next);
        node = node->children.empty() ? nullptr : node->children[0].get();
        break;
      }
      default:
        return nullptr;  // joins/scans sever the aggregate chain
    }
  }
  return nullptr;
}

}  // namespace

Result<ApproxAnswer> ExecuteApproximate(const PlanNode& plan, double sample_rate,
                                        const ExecOptions& base_options) {
  ApproxAnswer answer;
  answer.sample_rate = std::clamp(sample_rate, 0.0, 1.0);
  ExecOptions options = base_options;
  options.sample_rate = answer.sample_rate <= 0.0 ? 1.0 : answer.sample_rate;

  AF_ASSIGN_OR_RETURN(answer.result, ExecutePlan(plan, options));
  const size_t width = answer.result->schema.NumColumns();
  answer.relative_ci95.assign(width, std::nullopt);

  double p = options.sample_rate;
  if (p >= 1.0) {
    // Exact: zero-width bounds on everything.
    for (auto& ci : answer.relative_ci95) ci = 0.0;
    return answer;
  }

  std::vector<size_t> mapping;
  const PlanNode* agg = FindAggregate(plan, &mapping);
  if (agg == nullptr) return answer;

  size_t group_count = agg->group_by.size();
  // Locate a plain COUNT (non-distinct) column to estimate raw sample sizes.
  std::optional<size_t> count_agg_idx;
  for (size_t a = 0; a < agg->aggregates.size(); ++a) {
    if (agg->aggregates[a].func == AggFunc::kCount && !agg->aggregates[a].distinct) {
      count_agg_idx = group_count + a;
      break;
    }
  }

  for (size_t col = 0; col < width; ++col) {
    size_t agg_col = col < mapping.size() ? mapping[col] : SIZE_MAX;
    if (agg_col == SIZE_MAX || agg_col < group_count) continue;
    const AggregateExpr& a = agg->aggregates[agg_col - group_count];
    if (a.distinct) continue;  // no unbiased scale-up exists
    if (a.func != AggFunc::kCount && a.func != AggFunc::kSum) continue;

    // Worst-case (smallest) raw sample count across result groups.
    double min_raw = -1.0;
    for (const Row& row : answer.result->rows) {
      double scaled;
      if (a.func == AggFunc::kCount) {
        scaled = row[col].AsDouble();
      } else if (count_agg_idx.has_value()) {
        // Find the root column mapped to the count aggregate.
        double found = -1.0;
        for (size_t c2 = 0; c2 < width; ++c2) {
          if (c2 < mapping.size() && mapping[c2] == *count_agg_idx) {
            found = row[c2].AsDouble();
            break;
          }
        }
        if (found < 0) {
          scaled = -1.0;
        } else {
          scaled = found;
        }
      } else {
        scaled = -1.0;
      }
      if (scaled < 0) {
        min_raw = -1.0;
        break;
      }
      double raw = scaled * p;
      if (min_raw < 0 || raw < min_raw) min_raw = raw;
    }
    if (min_raw <= 0.0) continue;
    // Bernoulli-sampling CLT: rel err of c/p is ~ z * sqrt((1-p)/c_raw).
    answer.relative_ci95[col] = kZ95 * std::sqrt((1.0 - p) / min_raw);
  }
  return answer;
}

double ChooseSampleRate(double estimated_input_rows, double target_relative_error,
                        double min_rate) {
  if (estimated_input_rows <= 0.0 || target_relative_error <= 0.0) return 1.0;
  // Invert rel = z * sqrt((1-p) / (p * N)) for p:
  //   rel^2 * p * N = z^2 (1 - p)  =>  p = z^2 / (rel^2 N + z^2).
  double z2 = kZ95 * kZ95;
  double r2 = target_relative_error * target_relative_error;
  double p = z2 / (r2 * estimated_input_rows + z2);
  return std::clamp(p, min_rate, 1.0);
}

}  // namespace agentfirst
