#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>

namespace agentfirst {

namespace {

constexpr double kDefaultSelectivity = 0.25;
constexpr double kDefaultEqSelectivity = 0.05;

const ColumnStats* StatsFor(const TableStats* stats, size_t column_index) {
  if (stats == nullptr || column_index >= stats->columns.size()) return nullptr;
  return &stats->columns[column_index];
}

double ConjunctSelectivity(const BoundExpr& e, const Schema& schema,
                           const TableStats* stats) {
  switch (e.kind) {
    case BoundExprKind::kBinary: {
      if (e.bin_op == BinaryOp::kAnd) {
        return ConjunctSelectivity(*e.children[0], schema, stats) *
               ConjunctSelectivity(*e.children[1], schema, stats);
      }
      if (e.bin_op == BinaryOp::kOr) {
        double a = ConjunctSelectivity(*e.children[0], schema, stats);
        double b = ConjunctSelectivity(*e.children[1], schema, stats);
        return std::min(1.0, a + b - a * b);
      }
      // col <op> literal.
      const BoundExpr* col = nullptr;
      const BoundExpr* lit = nullptr;
      bool flipped = false;
      if (e.children[0]->kind == BoundExprKind::kColumn &&
          e.children[1]->kind == BoundExprKind::kLiteral) {
        col = e.children[0].get();
        lit = e.children[1].get();
      } else if (e.children[1]->kind == BoundExprKind::kColumn &&
                 e.children[0]->kind == BoundExprKind::kLiteral) {
        col = e.children[1].get();
        lit = e.children[0].get();
        flipped = true;
      }
      if (col == nullptr) {
        return e.bin_op == BinaryOp::kEq ? kDefaultEqSelectivity
                                         : kDefaultSelectivity;
      }
      const ColumnStats* cs = StatsFor(stats, col->column_index);
      if (cs == nullptr) {
        return e.bin_op == BinaryOp::kEq ? kDefaultEqSelectivity
                                         : kDefaultSelectivity;
      }
      switch (e.bin_op) {
        case BinaryOp::kEq:
          return cs->EqualitySelectivity(lit->literal);
        case BinaryOp::kNe:
          return std::max(0.0, 1.0 - cs->EqualitySelectivity(lit->literal));
        case BinaryOp::kLt:
          return cs->RangeSelectivity(flipped ? ">" : "<", lit->literal);
        case BinaryOp::kLe:
          return cs->RangeSelectivity(flipped ? ">=" : "<=", lit->literal);
        case BinaryOp::kGt:
          return cs->RangeSelectivity(flipped ? "<" : ">", lit->literal);
        case BinaryOp::kGe:
          return cs->RangeSelectivity(flipped ? "<=" : ">=", lit->literal);
        default:
          return kDefaultSelectivity;
      }
    }
    case BoundExprKind::kLike:
      return e.negated ? 0.9 : 0.1;
    case BoundExprKind::kInList: {
      if (e.children[0]->kind == BoundExprKind::kColumn) {
        const ColumnStats* cs = StatsFor(stats, e.children[0]->column_index);
        if (cs != nullptr) {
          double sel = 0.0;
          for (size_t i = 1; i < e.children.size(); ++i) {
            if (e.children[i]->kind == BoundExprKind::kLiteral) {
              sel += cs->EqualitySelectivity(e.children[i]->literal);
            } else {
              sel += kDefaultEqSelectivity;
            }
          }
          sel = std::min(1.0, sel);
          return e.negated ? 1.0 - sel : sel;
        }
      }
      double sel = std::min(
          1.0, kDefaultEqSelectivity * static_cast<double>(e.children.size() - 1));
      return e.negated ? 1.0 - sel : sel;
    }
    case BoundExprKind::kBetween: {
      if (e.children[0]->kind == BoundExprKind::kColumn &&
          e.children[1]->kind == BoundExprKind::kLiteral &&
          e.children[2]->kind == BoundExprKind::kLiteral) {
        const ColumnStats* cs = StatsFor(stats, e.children[0]->column_index);
        if (cs != nullptr) {
          double above_lo = cs->RangeSelectivity(">=", e.children[1]->literal);
          double below_hi = cs->RangeSelectivity("<=", e.children[2]->literal);
          double sel = std::clamp(above_lo + below_hi - 1.0, 0.0, 1.0);
          return e.negated ? 1.0 - sel : sel;
        }
      }
      return e.negated ? 1.0 - kDefaultSelectivity : kDefaultSelectivity;
    }
    case BoundExprKind::kIsNull: {
      if (e.children[0]->kind == BoundExprKind::kColumn) {
        const ColumnStats* cs = StatsFor(stats, e.children[0]->column_index);
        if (cs != nullptr && cs->row_count > 0) {
          double frac =
              static_cast<double>(cs->null_count) / static_cast<double>(cs->row_count);
          return e.negated ? 1.0 - frac : frac;
        }
      }
      return e.negated ? 0.95 : 0.05;
    }
    case BoundExprKind::kUnary:
      if (e.un_op == UnaryOp::kNot) {
        return 1.0 - ConjunctSelectivity(*e.children[0], schema, stats);
      }
      return kDefaultSelectivity;
    case BoundExprKind::kLiteral:
      if (e.literal.type() == DataType::kBool) {
        return e.literal.bool_value() ? 1.0 : 0.0;
      }
      return kDefaultSelectivity;
    default:
      return kDefaultSelectivity;
  }
}

struct NodeEstimate {
  double rows = 0.0;
  double cost = 0.0;
  // Stats available only directly above a scan (used for filter estimates).
  const TableStats* stats = nullptr;
};

NodeEstimate EstimateNode(const PlanNode& node, Catalog* catalog) {
  std::vector<NodeEstimate> kids;
  kids.reserve(node.children.size());
  for (const auto& c : node.children) kids.push_back(EstimateNode(*c, catalog));

  NodeEstimate out;
  switch (node.kind) {
    case PlanKind::kScan: {
      double rows = node.table != nullptr
                        ? static_cast<double>(node.table->NumRows())
                        : 1.0;
      const TableStats* stats = nullptr;
      if (catalog != nullptr && node.table != nullptr &&
          catalog->HasTable(node.table_name)) {
        auto s = catalog->GetStats(node.table_name);
        if (s.ok()) stats = *s;
      }
      double sel = 1.0;
      if (node.scan_filter != nullptr) {
        sel = ConjunctSelectivity(*node.scan_filter, node.output_schema, stats);
      }
      out.rows = rows * sel;
      out.cost = rows;
      out.stats = stats;
      break;
    }
    case PlanKind::kFilter: {
      double sel =
          ConjunctSelectivity(*node.predicate, node.output_schema, kids[0].stats);
      out.rows = kids[0].rows * sel;
      out.cost = kids[0].cost + kids[0].rows;
      out.stats = kids[0].stats;  // filters preserve column positions
      break;
    }
    case PlanKind::kProject:
      out.rows = kids[0].rows;
      out.cost = kids[0].cost + kids[0].rows;
      break;
    case PlanKind::kHashJoin: {
      double l = kids[0].rows;
      double r = kids[1].rows;
      // Containment assumption with unknown key NDV: |L||R| / max(|L|,|R|).
      double denom = std::max(1.0, std::max(l, r));
      out.rows = node.join_type == JoinType::kLeft
                     ? std::max(l, l * r / denom)
                     : l * r / denom;
      out.cost = kids[0].cost + kids[1].cost + l + r + out.rows;
      break;
    }
    case PlanKind::kNestedLoopJoin: {
      double product = kids[0].rows * kids[1].rows;
      double sel = node.predicate != nullptr
                       ? ConjunctSelectivity(*node.predicate, node.output_schema,
                                             nullptr)
                       : 1.0;
      out.rows = product * sel;
      out.cost = kids[0].cost + kids[1].cost + product;
      break;
    }
    case PlanKind::kAggregate: {
      if (node.group_by.empty()) {
        out.rows = 1.0;
      } else {
        // Square-root heuristic for group count absent NDV of expressions.
        out.rows = std::max(1.0, std::sqrt(kids[0].rows) * 4.0);
        out.rows = std::min(out.rows, kids[0].rows);
      }
      out.cost = kids[0].cost + kids[0].rows;
      break;
    }
    case PlanKind::kSort: {
      double n = std::max(2.0, kids[0].rows);
      out.rows = kids[0].rows;
      out.cost = kids[0].cost + n * std::log2(n);
      break;
    }
    case PlanKind::kLimit: {
      double n = node.limit >= 0
                     ? std::min(kids[0].rows, static_cast<double>(node.limit))
                     : kids[0].rows;
      out.rows = n;
      out.cost = kids[0].cost;
      break;
    }
    case PlanKind::kUnion: {
      for (const NodeEstimate& k : kids) {
        out.rows += k.rows;
        out.cost += k.cost;
      }
      out.cost += out.rows;
      break;
    }
  }
  return out;
}

}  // namespace

double EstimateSelectivity(const BoundExpr& predicate, const Schema& schema,
                           const TableStats* stats) {
  return std::clamp(ConjunctSelectivity(predicate, schema, stats), 0.0, 1.0);
}

CostEstimate EstimatePlanCost(const PlanNode& plan, Catalog* catalog) {
  NodeEstimate e = EstimateNode(plan, catalog);
  return {std::max(0.0, e.rows), std::max(0.0, e.cost)};
}

}  // namespace agentfirst
