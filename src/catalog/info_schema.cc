#include "catalog/info_schema.h"

namespace agentfirst {

bool IsInfoSchemaTable(const std::string& name) {
  return name == kInfoSchemaTables || name == kInfoSchemaColumns ||
         name == kInfoSchemaColumnStats;
}

Result<TablePtr> BuildInfoSchemaTable(Catalog& catalog, const std::string& name) {
  if (name == kInfoSchemaTables) {
    Schema schema({ColumnDef("table_name", DataType::kString, false, name),
                   ColumnDef("num_rows", DataType::kInt64, false, name),
                   ColumnDef("num_columns", DataType::kInt64, false, name)});
    auto view = std::make_shared<Table>(name, schema);
    for (const std::string& tname : catalog.ListTables()) {
      auto table = catalog.GetTable(tname);
      if (!table.ok()) continue;
      AF_RETURN_IF_ERROR(view->AppendRow(
          {Value::String(tname),
           Value::Int(static_cast<int64_t>((*table)->NumRows())),
           Value::Int(static_cast<int64_t>((*table)->schema().NumColumns()))}));
    }
    return view;
  }
  if (name == kInfoSchemaColumns) {
    Schema schema({ColumnDef("table_name", DataType::kString, false, name),
                   ColumnDef("column_name", DataType::kString, false, name),
                   ColumnDef("data_type", DataType::kString, false, name),
                   ColumnDef("ordinal", DataType::kInt64, false, name)});
    auto view = std::make_shared<Table>(name, schema);
    for (const std::string& tname : catalog.ListTables()) {
      auto table = catalog.GetTable(tname);
      if (!table.ok()) continue;
      const Schema& ts = (*table)->schema();
      for (size_t i = 0; i < ts.NumColumns(); ++i) {
        AF_RETURN_IF_ERROR(view->AppendRow(
            {Value::String(tname), Value::String(ts.column(i).name),
             Value::String(DataTypeName(ts.column(i).type)),
             Value::Int(static_cast<int64_t>(i))}));
      }
    }
    return view;
  }
  if (name == kInfoSchemaColumnStats) {
    Schema schema({ColumnDef("table_name", DataType::kString, false, name),
                   ColumnDef("column_name", DataType::kString, false, name),
                   ColumnDef("num_distinct", DataType::kInt64, false, name),
                   ColumnDef("num_nulls", DataType::kInt64, false, name),
                   ColumnDef("min_value", DataType::kString, true, name),
                   ColumnDef("max_value", DataType::kString, true, name),
                   ColumnDef("most_common_value", DataType::kString, true, name)});
    auto view = std::make_shared<Table>(name, schema);
    for (const std::string& tname : catalog.ListTables()) {
      auto stats = catalog.GetStats(tname);
      if (!stats.ok()) continue;
      for (const ColumnStats& cs : (*stats)->columns) {
        Value most_common = cs.top_values.empty()
                                ? Value::Null()
                                : Value::String(cs.top_values[0].first.ToString());
        AF_RETURN_IF_ERROR(view->AppendRow(
            {Value::String(tname), Value::String(cs.column_name),
             Value::Int(static_cast<int64_t>(cs.distinct_count)),
             Value::Int(static_cast<int64_t>(cs.null_count)),
             cs.min.is_null() ? Value::Null() : Value::String(cs.min.ToString()),
             cs.max.is_null() ? Value::Null() : Value::String(cs.max.ToString()),
             most_common}));
      }
    }
    return view;
  }
  return Status::NotFound("no such information_schema table: " + name);
}

}  // namespace agentfirst
