#include "catalog/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "common/str_util.h"

namespace agentfirst {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos || field.empty();
}

std::string QuoteField(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string FormatCell(const Value& v) {
  if (v.is_null()) return "";  // empty unquoted = NULL
  std::string s = v.ToString();
  // An empty non-null string must be quoted to stay distinguishable.
  return NeedsQuoting(s) ? QuoteField(s) : s;
}

}  // namespace

Status ExportCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return Status::Internal("cannot open for writing: " + path);
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    if (c > 0) out << ",";
    const std::string& name = schema.column(c).name;
    out << (NeedsQuoting(name) ? QuoteField(name) : name);
  }
  out << "\n";
  for (size_t s = 0; s < table.NumSegments(); ++s) {
    AF_ASSIGN_OR_RETURN(storage::SegmentPin seg, table.PinSegment(s));
    for (size_t r = 0; r < seg->num_rows(); ++r) {
      for (size_t c = 0; c < schema.NumColumns(); ++c) {
        if (c > 0) out << ",";
        out << FormatCell(seg->GetValue(r, c));
      }
      out << "\n";
    }
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              std::vector<bool>* quoted) {
  std::vector<std::string> fields;
  if (quoted != nullptr) quoted->clear();
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"' && current.empty() && !was_quoted) {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      if (quoted != nullptr) quoted->push_back(was_quoted);
      current.clear();
      was_quoted = false;
    } else {
      current += c;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote in CSV line");
  fields.push_back(std::move(current));
  if (quoted != nullptr) quoted->push_back(was_quoted);
  return fields;
}

Result<TablePtr> ImportCsv(Catalog* catalog, const std::string& name,
                           const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open: " + path);

  std::string line;
  if (!std::getline(in, line)) return Status::InvalidArgument("empty CSV: " + path);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  // Every malformed-input error below carries the 1-based line number, so an
  // agent (or operator) can fix the offending row without bisecting the file.
  auto header_result = ParseCsvLine(line);
  if (!header_result.ok()) {
    return Status::InvalidArgument(header_result.status().message() +
                                   " at line 1");
  }
  auto header = std::move(header_result).value();
  if (header.size() != schema.NumColumns()) {
    return Status::InvalidArgument("CSV header arity does not match schema");
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.column(c).name) {
      return Status::InvalidArgument("CSV header mismatch at column " +
                                     std::to_string(c) + ": '" + header[c] +
                                     "' vs '" + schema.column(c).name + "'");
    }
  }

  AF_ASSIGN_OR_RETURN(TablePtr table, catalog->CreateTable(name, schema));
  // Any malformed row aborts the import; `fail` drops the half-filled table
  // first so a failed import never leaves a partial table in the catalog.
  auto fail = [&](Status status) -> Status {
    // Best-effort cleanup on a path that is already failing: the import
    // error in `status` is the one the caller needs to see.
    (void)catalog->DropTable(name);
    return status;
  };
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // An empty line is a single NULL field for one-column tables; otherwise
    // it is padding and skipped.
    if (line.empty() && schema.NumColumns() > 1) continue;
    std::vector<bool> quoted;
    auto parsed = ParseCsvLine(line, &quoted);
    if (!parsed.ok()) {
      return fail(Status::InvalidArgument(parsed.status().message() +
                                          " at line " +
                                          std::to_string(line_number)));
    }
    auto fields = std::move(parsed).value();
    if (fields.size() != schema.NumColumns()) {
      return fail(Status::InvalidArgument(
          "CSV arity mismatch at line " + std::to_string(line_number) +
          ": expected " + std::to_string(schema.NumColumns()) + " fields, got " +
          std::to_string(fields.size())));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      const std::string& f = fields[c];
      if (f.empty() && !quoted[c]) {
        row.push_back(Value::Null());
        continue;
      }
      switch (schema.column(c).type) {
        case DataType::kInt64: {
          char* end = nullptr;
          errno = 0;
          long long v = std::strtoll(f.c_str(), &end, 10);
          if (end == nullptr || *end != '\0' || end == f.c_str()) {
            return fail(Status::InvalidArgument("bad BIGINT '" + f +
                                                "' at line " +
                                                std::to_string(line_number)));
          }
          if (errno == ERANGE) {
            return fail(Status::OutOfRange("BIGINT overflow '" + f +
                                           "' at line " +
                                           std::to_string(line_number)));
          }
          row.push_back(Value::Int(v));
          break;
        }
        case DataType::kFloat64: {
          char* end = nullptr;
          double v = std::strtod(f.c_str(), &end);
          if (end == nullptr || *end != '\0' || end == f.c_str()) {
            return fail(Status::InvalidArgument("bad DOUBLE '" + f +
                                                "' at line " +
                                                std::to_string(line_number)));
          }
          row.push_back(Value::Double(v));
          break;
        }
        case DataType::kBool: {
          std::string lower = ToLower(f);
          if (lower == "true" || lower == "1") {
            row.push_back(Value::Bool(true));
          } else if (lower == "false" || lower == "0") {
            row.push_back(Value::Bool(false));
          } else {
            return fail(Status::InvalidArgument("bad BOOLEAN '" + f +
                                                "' at line " +
                                                std::to_string(line_number)));
          }
          break;
        }
        default:
          row.push_back(Value::String(f));
          break;
      }
    }
    Status append = table->AppendRow(row);
    if (!append.ok()) return fail(std::move(append));
  }
  return table;
}

}  // namespace agentfirst
