#ifndef AGENTFIRST_CATALOG_STATS_H_
#define AGENTFIRST_CATALOG_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"
#include "types/value.h"

namespace agentfirst {

/// Per-column statistics, the grounding substrate for the cost model, the
/// probe optimizer's selectivity estimates, and sleeper-agent hints.
struct ColumnStats {
  std::string column_name;
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  uint64_t distinct_count = 0;
  Value min;
  Value max;
  /// Equi-depth histogram bucket boundaries (numeric columns only);
  /// boundaries.size() == #buckets + 1.
  std::vector<double> histogram_bounds;
  /// Most frequent values with their counts (up to kTopK).
  std::vector<std::pair<Value, uint64_t>> top_values;
  /// Uniform reservoir sample of non-null values (up to kSampleSize).
  std::vector<Value> sample;

  static constexpr size_t kTopK = 8;
  static constexpr size_t kSampleSize = 64;
  static constexpr size_t kHistogramBuckets = 16;

  /// Fraction of rows expected to satisfy `col = v` (uses top values, then
  /// uniformity over NDV).
  double EqualitySelectivity(const Value& v) const;

  /// Fraction of rows expected to satisfy a range predicate against `v`.
  /// `op` is one of "<", "<=", ">", ">=".
  double RangeSelectivity(const std::string& op, const Value& v) const;
};

struct TableStats {
  uint64_t row_count = 0;
  uint64_t data_version = 0;  // table version these stats were computed at
  std::vector<ColumnStats> columns;
};

/// Scans the table once and computes full statistics. `seed` drives the
/// reservoir sample. Fails only when a pooled table cannot fault a segment
/// back in (io.page.read).
Result<TableStats> ComputeTableStats(const Table& table, uint64_t seed = 42);

}  // namespace agentfirst

#endif  // AGENTFIRST_CATALOG_STATS_H_
