#ifndef AGENTFIRST_CATALOG_CATALOG_H_
#define AGENTFIRST_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/index.h"
#include "catalog/stats.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"
#include "types/schema.h"

namespace agentfirst {

/// Observer of catalog DDL, called AFTER each successful change (the new
/// schema_version is already visible). Extends TableMutationListener so one
/// hook object — the durability manager in src/wal/ — sees both DDL and the
/// row-level changes of every table the catalog owns: attaching a catalog
/// listener also attaches it to each current and future table. Scratch
/// catalogs (branch query sandboxes) never attach one.
class CatalogMutationListener : public TableMutationListener {
 public:
  /// `table` is empty (freshly created); its schema is final.
  virtual void OnCreateTable(const Table& table) = 0;
  /// An externally built table (possibly non-empty) entered the catalog.
  virtual void OnRegisterTable(const Table& table) = 0;
  virtual void OnDropTable(const std::string& name) = 0;
  virtual void OnCreateIndex(const std::string& table,
                             const std::string& column) = 0;
  virtual void OnDropIndex(const std::string& table,
                           const std::string& column) = 0;
};

/// The database catalog: named tables, their statistics (computed lazily and
/// invalidated by version counters), and a schema version used by the
/// agentic memory store to detect stale grounding.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on name collision.
  Result<TablePtr> CreateTable(const std::string& name, Schema schema);

  /// Registers an externally built table (e.g. a branch materialization).
  Status RegisterTable(TablePtr table);

  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  std::vector<std::string> ListTables() const;
  size_t NumTables() const { return tables_.size(); }

  /// Returns (computing or refreshing as needed) statistics for `name`.
  Result<const TableStats*> GetStats(const std::string& name);

  /// Bumped on every DDL (create/drop/register). Grounding artifacts pin the
  /// version they were derived from.
  uint64_t schema_version() const { return schema_version_; }

  /// Installs (or clears) the DDL + table-mutation observer. Attaching also
  /// installs it as every owned table's TableMutationListener; clearing
  /// detaches them. The listener must outlive the catalog or be cleared
  /// first.
  void SetMutationListener(CatalogMutationListener* listener);

  /// Moves every current table — and all future ones — into `pool` so their
  /// segments become pageable (see Table::AttachBufferPool). The pool must
  /// outlive the catalog; attachment is one-way (pass nullptr only before
  /// any pool was set).
  void SetBufferPool(storage::BufferPool* pool);
  storage::BufferPool* buffer_pool() const { return pool_; }

  /// Recovery-only: restores the version counter after a checkpoint load.
  void RestoreSchemaVersion(uint64_t v) { schema_version_ = v; }

  // --- equality indexes ----------------------------------------------------

  /// Declares a hash index on table.column (built immediately). Fails with
  /// AlreadyExists when one is present.
  Status CreateIndex(const std::string& table, const std::string& column);
  Status DropIndex(const std::string& table, const std::string& column);
  bool HasIndex(const std::string& table, const std::string& column) const;
  std::vector<std::pair<std::string, std::string>> ListIndexes() const;

  /// Returns a lookup-ready index for (table, column index), rebuilding it
  /// if the table changed since the last build; nullptr if none exists.
  const HashIndex* GetFreshIndex(const std::string& table, size_t column);

 private:
  std::map<std::string, TablePtr> tables_;
  mutable std::map<std::string, TableStats> stats_cache_;
  // (table, column name) -> index.
  std::map<std::pair<std::string, std::string>, std::unique_ptr<HashIndex>>
      indexes_;
  uint64_t schema_version_ = 0;
  /// Not owned; nullptr when durability is off (the default).
  CatalogMutationListener* listener_ = nullptr;
  /// Not owned; nullptr when paged storage is off (the default).
  storage::BufferPool* pool_ = nullptr;
};

}  // namespace agentfirst

#endif  // AGENTFIRST_CATALOG_CATALOG_H_
