#include "catalog/stats.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"

namespace agentfirst {

double ColumnStats::EqualitySelectivity(const Value& v) const {
  if (row_count == 0) return 0.0;
  if (v.is_null()) return static_cast<double>(null_count) / row_count;
  for (const auto& [tv, count] : top_values) {
    if (tv.Equals(v)) return static_cast<double>(count) / row_count;
  }
  uint64_t non_null = row_count - null_count;
  if (non_null == 0 || distinct_count == 0) return 0.0;
  // Uniformity over the values not covered by top_values.
  return (static_cast<double>(non_null) / distinct_count) / row_count;
}

double ColumnStats::RangeSelectivity(const std::string& op, const Value& v) const {
  if (row_count == 0 || v.is_null()) return 0.0;
  if (!IsNumeric(v.type()) || min.is_null() || max.is_null() ||
      !IsNumeric(min.type())) {
    return 0.3;  // default guess for non-numeric ranges
  }
  double x = v.AsDouble();
  double lo = min.AsDouble();
  double hi = max.AsDouble();
  double frac_below;  // P(col < x) approximately
  if (!histogram_bounds.empty()) {
    size_t buckets = histogram_bounds.size() - 1;
    size_t b = 0;
    while (b < buckets && histogram_bounds[b + 1] < x) ++b;
    if (b >= buckets) {
      frac_below = 1.0;
    } else {
      double bl = histogram_bounds[b];
      double bh = histogram_bounds[b + 1];
      double within = bh > bl ? (x - bl) / (bh - bl) : 0.5;
      within = std::clamp(within, 0.0, 1.0);
      frac_below = (static_cast<double>(b) + within) / buckets;
    }
  } else if (hi > lo) {
    frac_below = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
  } else {
    frac_below = x > lo ? 1.0 : 0.0;
  }
  double sel;
  if (op == "<" || op == "<=") {
    sel = frac_below;
  } else if (op == ">" || op == ">=") {
    sel = 1.0 - frac_below;
  } else {
    sel = 0.3;
  }
  double non_null_frac =
      row_count == 0 ? 0.0
                     : static_cast<double>(row_count - null_count) / row_count;
  return std::clamp(sel, 0.0, 1.0) * non_null_frac;
}

Result<TableStats> ComputeTableStats(const Table& table, uint64_t seed) {
  TableStats stats;
  stats.row_count = table.NumRows();
  stats.data_version = table.data_version();
  const Schema& schema = table.schema();
  Rng rng(seed);

  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    ColumnStats cs;
    cs.column_name = schema.column(c).name;
    cs.row_count = table.NumRows();

    std::unordered_map<uint64_t, std::pair<Value, uint64_t>> value_counts;
    std::vector<double> numeric_values;
    bool numeric = IsNumeric(schema.column(c).type);

    size_t seen_non_null = 0;
    for (size_t s = 0; s < table.NumSegments(); ++s) {
      AF_ASSIGN_OR_RETURN(storage::SegmentPin seg, table.PinSegment(s));
      const ColumnVector& col = seg->column(c);
      for (size_t i = 0; i < seg->num_rows(); ++i) {
        Value v = col.Get(i);
        if (v.is_null()) {
          ++cs.null_count;
          continue;
        }
        ++seen_non_null;
        if (cs.min.is_null() || v.Compare(cs.min) < 0) cs.min = v;
        if (cs.max.is_null() || v.Compare(cs.max) > 0) cs.max = v;
        auto& slot = value_counts[v.Hash()];
        if (slot.second == 0) slot.first = v;
        ++slot.second;
        if (numeric) numeric_values.push_back(v.AsDouble());
        // Reservoir sample.
        if (cs.sample.size() < ColumnStats::kSampleSize) {
          cs.sample.push_back(v);
        } else {
          size_t j = rng.NextUint(seen_non_null);
          if (j < ColumnStats::kSampleSize) cs.sample[j] = v;
        }
      }
    }
    cs.distinct_count = value_counts.size();

    // Top-K most common values.
    std::vector<std::pair<Value, uint64_t>> pairs;
    pairs.reserve(value_counts.size());
    for (auto& [h, vc] : value_counts) pairs.push_back(vc);
    std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first.Compare(b.first) < 0;
    });
    if (pairs.size() > ColumnStats::kTopK) pairs.resize(ColumnStats::kTopK);
    cs.top_values = std::move(pairs);

    // Equi-depth histogram for numerics.
    if (numeric && !numeric_values.empty()) {
      std::sort(numeric_values.begin(), numeric_values.end());
      size_t buckets = std::min(ColumnStats::kHistogramBuckets,
                                numeric_values.size());
      cs.histogram_bounds.push_back(numeric_values.front());
      for (size_t b = 1; b < buckets; ++b) {
        size_t idx = b * numeric_values.size() / buckets;
        cs.histogram_bounds.push_back(numeric_values[idx]);
      }
      cs.histogram_bounds.push_back(numeric_values.back());
    }
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace agentfirst
