#include "catalog/index.h"

namespace agentfirst {

Status HashIndex::Build(const Table& table) {
  if (column_ >= table.schema().NumColumns()) {
    return Status::OutOfRange("index column out of range");
  }
  buckets_.clear();
  num_entries_ = 0;
  size_t row = 0;
  for (size_t s = 0; s < table.NumSegments(); ++s) {
    AF_ASSIGN_OR_RETURN(storage::SegmentPin seg, table.PinSegment(s));
    const ColumnVector& col = seg->column(column_);
    for (size_t i = 0; i < seg->num_rows(); ++i, ++row) {
      Value v = col.Get(i);
      if (v.is_null()) continue;  // SQL equality never matches NULL
      auto& bucket = buckets_[v.Hash()];
      bool found = false;
      for (auto& [value, rows] : bucket) {
        if (value.Equals(v)) {
          rows.push_back(row);
          found = true;
          break;
        }
      }
      if (!found) bucket.push_back({v, {row}});
      ++num_entries_;
    }
  }
  built_ = true;
  built_version_ = table.data_version();
  return Status::OK();
}

std::vector<size_t> HashIndex::Lookup(const Value& v) const {
  if (v.is_null()) return {};
  auto it = buckets_.find(v.Hash());
  if (it == buckets_.end()) return {};
  for (const auto& [value, rows] : it->second) {
    if (value.Equals(v)) return rows;  // appended in order: already sorted
  }
  return {};
}

}  // namespace agentfirst
