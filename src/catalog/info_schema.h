#ifndef AGENTFIRST_CATALOG_INFO_SCHEMA_H_
#define AGENTFIRST_CATALOG_INFO_SCHEMA_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "storage/table.h"

namespace agentfirst {

/// Virtual metadata tables, materialized on demand so that agents can probe
/// metadata through the same SQL path as data:
///   information_schema.tables       (table_name, num_rows, num_columns)
///   information_schema.columns      (table_name, column_name, data_type, ordinal)
///   information_schema.column_stats (table_name, column_name, num_distinct,
///                                    num_nulls, min_value, max_value,
///                                    most_common_value)
/// These names are resolved specially by the binder. column_stats exposes
/// the engine's statistics directly so an agent's stat-exploration phase is
/// one cheap metadata query instead of many table scans.

inline constexpr const char* kInfoSchemaTables = "information_schema.tables";
inline constexpr const char* kInfoSchemaColumns = "information_schema.columns";
inline constexpr const char* kInfoSchemaColumnStats =
    "information_schema.column_stats";

bool IsInfoSchemaTable(const std::string& name);

/// Builds the requested view over the current catalog contents, or
/// NotFound for unknown information_schema names. Non-const: column_stats
/// refreshes the statistics cache.
Result<TablePtr> BuildInfoSchemaTable(Catalog& catalog, const std::string& name);

}  // namespace agentfirst

#endif  // AGENTFIRST_CATALOG_INFO_SCHEMA_H_
