#ifndef AGENTFIRST_CATALOG_CSV_H_
#define AGENTFIRST_CATALOG_CSV_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/table.h"

namespace agentfirst {

/// RFC-4180-flavored CSV: comma separated, double-quote quoting with ""
/// escapes, first line is the header. NULLs export as empty unquoted fields
/// and import from empty fields.

/// Writes the table (header + all rows) to `path`.
Status ExportCsv(const Table& table, const std::string& path);

/// Parses one CSV record (no trailing newline). Exposed for testing.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              std::vector<bool>* quoted = nullptr);

/// Creates table `name` in the catalog with `schema` and loads `path` into
/// it. The header must match the schema's column names (order included).
/// Typed parsing: BIGINT/DOUBLE/BOOLEAN fields are converted; empty unquoted
/// fields become NULL.
Result<TablePtr> ImportCsv(Catalog* catalog, const std::string& name,
                           const Schema& schema, const std::string& path);

}  // namespace agentfirst

#endif  // AGENTFIRST_CATALOG_CSV_H_
