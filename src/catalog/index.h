#ifndef AGENTFIRST_CATALOG_INDEX_H_
#define AGENTFIRST_CATALOG_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "types/value.h"

namespace agentfirst {

/// An equality (hash) index over one column: value -> sorted row ids.
/// Indexes are version-pinned snapshots: a lookup is only valid while the
/// table's data_version matches the version the index was built at; the
/// catalog rebuilds stale indexes lazily.
class HashIndex {
 public:
  HashIndex(std::string table_name, size_t column)
      : table_name_(std::move(table_name)), column_(column) {}

  const std::string& table_name() const { return table_name_; }
  size_t column() const { return column_; }
  uint64_t built_version() const { return built_version_; }
  size_t num_entries() const { return num_entries_; }

  /// (Re)builds from the table's current contents.
  Status Build(const Table& table);

  /// True when lookups against `table` are valid.
  bool FreshFor(const Table& table) const {
    return built_ && built_version_ == table.data_version();
  }

  /// Row ids whose column equals `v` (ascending). NULL never matches.
  /// Returns an empty vector for no matches.
  std::vector<size_t> Lookup(const Value& v) const;

 private:
  std::string table_name_;
  size_t column_;
  bool built_ = false;
  uint64_t built_version_ = 0;
  size_t num_entries_ = 0;
  // hash -> (value, row ids); values kept to resolve hash collisions.
  std::unordered_map<uint64_t, std::vector<std::pair<Value, std::vector<size_t>>>>
      buckets_;
};

}  // namespace agentfirst

#endif  // AGENTFIRST_CATALOG_INDEX_H_
