#include "catalog/catalog.h"

namespace agentfirst {

void Catalog::SetMutationListener(CatalogMutationListener* listener) {
  listener_ = listener;
  for (auto& [name, table] : tables_) table->SetMutationListener(listener);
}

void Catalog::SetBufferPool(storage::BufferPool* pool) {
  pool_ = pool;
  if (pool_ == nullptr) return;
  for (auto& [name, table] : tables_) table->AttachBufferPool(pool_);
}

Result<TablePtr> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_shared<Table>(name, std::move(schema));
  if (pool_ != nullptr) table->AttachBufferPool(pool_);
  tables_[name] = table;
  ++schema_version_;
  if (listener_ != nullptr) {
    table->SetMutationListener(listener_);
    listener_->OnCreateTable(*table);
  }
  return table;
}

Status Catalog::RegisterTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (tables_.count(table->name()) > 0) {
    return Status::AlreadyExists("table already exists: " + table->name());
  }
  const Table& registered = *table;
  if (pool_ != nullptr) table->AttachBufferPool(pool_);
  tables_[table->name()] = std::move(table);
  ++schema_version_;
  if (listener_ != nullptr) {
    tables_[registered.name()]->SetMutationListener(listener_);
    listener_->OnRegisterTable(registered);
  }
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  // The table may live on through shared_ptrs (branch views); mutations made
  // through those are no longer catalog state, so stop observing them.
  it->second->SetMutationListener(nullptr);
  tables_.erase(it);
  stats_cache_.erase(name);
  for (auto iit = indexes_.begin(); iit != indexes_.end();) {
    if (iit->first.first == name) iit = indexes_.erase(iit);
    else ++iit;
  }
  ++schema_version_;
  if (listener_ != nullptr) listener_->OnDropTable(name);
  return Status::OK();
}

Status Catalog::CreateIndex(const std::string& table, const std::string& column) {
  auto tit = tables_.find(table);
  if (tit == tables_.end()) return Status::NotFound("no such table: " + table);
  auto col = tit->second->schema().FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no such column: " + table + "." + column);
  }
  auto key = std::make_pair(table, column);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index already exists on " + table + "." + column);
  }
  auto index = std::make_unique<HashIndex>(table, *col);
  AF_RETURN_IF_ERROR(index->Build(*tit->second));
  indexes_[key] = std::move(index);
  if (listener_ != nullptr) listener_->OnCreateIndex(table, column);
  return Status::OK();
}

Status Catalog::DropIndex(const std::string& table, const std::string& column) {
  if (indexes_.erase(std::make_pair(table, column)) == 0) {
    return Status::NotFound("no index on " + table + "." + column);
  }
  if (listener_ != nullptr) listener_->OnDropIndex(table, column);
  return Status::OK();
}

bool Catalog::HasIndex(const std::string& table, const std::string& column) const {
  return indexes_.count(std::make_pair(table, column)) > 0;
}

std::vector<std::pair<std::string, std::string>> Catalog::ListIndexes() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, index] : indexes_) out.push_back(key);
  return out;
}

const HashIndex* Catalog::GetFreshIndex(const std::string& table, size_t column) {
  auto tit = tables_.find(table);
  if (tit == tables_.end()) return nullptr;
  for (auto& [key, index] : indexes_) {
    if (key.first != table || index->column() != column) continue;
    if (!index->FreshFor(*tit->second)) {
      if (!index->Build(*tit->second).ok()) return nullptr;
    }
    return index.get();
  }
  return nullptr;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

Result<const TableStats*> Catalog::GetStats(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  auto cached = stats_cache_.find(name);
  if (cached != stats_cache_.end() &&
      cached->second.data_version == it->second->data_version()) {
    return const_cast<const TableStats*>(&cached->second);
  }
  AF_ASSIGN_OR_RETURN(TableStats fresh, ComputeTableStats(*it->second));
  stats_cache_[name] = std::move(fresh);
  return const_cast<const TableStats*>(&stats_cache_[name]);
}

}  // namespace agentfirst
