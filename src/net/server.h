#ifndef AGENTFIRST_NET_SERVER_H_
#define AGENTFIRST_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "core/probe_service.h"
#include "obs/metrics.h"

/// The networked probe endpoint (`afserved`): a portable poll-based TCP
/// server that multiplexes many concurrent agent sessions onto one
/// ProbeService (normally the in-process AgentFirstSystem).
///
/// Fleet-scale layout: sessions are sharded round-robin at accept across
/// `num_loops` event loops, each owning its own poll set and self-pipe, so
/// frame decode and socket I/O scale with cores instead of serializing on
/// one loop thread. Loop 0 additionally owns the listen socket; a session
/// accepted for another loop is handed over through that loop's pending
/// queue and wake pipe and is touched by exactly one loop thread for its
/// whole life. Probe execution never runs on a loop thread — decoded
/// requests pass the admission controller and are dispatched to the shared
/// work-stealing ThreadPool, so a hundred chatting agents contend for the
/// same scheduler as in-process callers and the paper's "many agents, one
/// substrate" economics hold over the wire too.
///
/// Admission control (core/admission.h): every probe/batch is gated on
/// per-tenant concurrency and outstanding-byte quotas plus a global slot
/// count with a bounded phase-priority queue. Refusals come back as typed
/// kResourceExhausted probe responses immediately — never silent queueing —
/// and exploit-phase probes preempt queued cold exploration.
///
/// Auth: when `tokens` is non-empty the HELLO must carry a known token;
/// the matching tenant becomes the session's admission principal. Unknown
/// tokens get a kUnauthenticated error frame and the session closes. An
/// open server (no tokens) uses the HELLO client name as the tenant.
///
/// Per-session flow control: a session may have at most
/// `max_inflight_per_session` probes executing and at most
/// `max_outbox_bytes_per_session` of encoded responses awaiting the socket.
/// Past either cap the loop simply stops polling that session for readability
/// — TCP backpressure does the rest, and one greedy agent cannot monopolize
/// the pool or balloon server memory.
///
/// Disconnect is cancellation: each session owns a CancellationSource whose
/// token is attached to every probe it submits (Probe::cancel). When the
/// client hangs up, the source fires and the session's in-flight probes stop
/// within one morsel — abandoned speculation stops consuming the executor
/// (the agent-first analogue of closing a laptop lid mid-query).
namespace agentfirst {
namespace net {

class ProbeServer {
 public:
  struct Options {
    /// Listen address. Only dotted-quad IPv4 (or "localhost"); this is a
    /// loopback/cluster-internal protocol with no name resolution.
    std::string host = "127.0.0.1";
    /// 0 = ephemeral: the kernel picks; read the bound port from port().
    uint16_t port = 0;
    /// Event loops sessions are sharded across (clamped to >= 1). Each loop
    /// is one thread owning its own poll set; sessions are assigned
    /// round-robin at accept and never migrate.
    size_t num_loops = 1;
    /// Accepted-connection cap; further connects are refused with an error
    /// frame. 0 = unlimited.
    size_t max_sessions = 64;
    /// Probes (or SQL statements) one session may have executing at once.
    size_t max_inflight_per_session = 8;
    /// Encoded response bytes one session may have queued for the socket.
    size_t max_outbox_bytes_per_session = 8u << 20;
    /// Per-frame payload cap for this server (clamped to the protocol-wide
    /// kMaxFramePayloadBytes).
    size_t max_frame_bytes = 64u << 20;
    /// Name sent in the HELLO_ACK.
    std::string server_name = "afserved";
    /// Session tokens: token -> tenant. Empty = open server (tenant = the
    /// HELLO client name). Non-empty = HELLOs with unknown tokens are
    /// rejected with kUnauthenticated and closed.
    std::map<std::string, std::string> tokens;
    /// Probe admission quotas (core/admission.h). The metrics field is
    /// overridden with this server's registry. Defaults = no quotas armed.
    AdmissionController::Options admission;
    /// Pool probe work is dispatched to; nullptr = ThreadPool::Default().
    ThreadPool* pool = nullptr;
    /// Registry for af.net.* metrics; nullptr = MetricsRegistry::Default().
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// `service` must outlive the server.
  ProbeServer(ProbeService* service, Options options);
  ~ProbeServer();

  ProbeServer(const ProbeServer&) = delete;
  ProbeServer& operator=(const ProbeServer&) = delete;

  /// Binds, listens, and starts the event loops. Fails with a Status (never
  /// aborts) when the address is bad or the port is taken.
  Status Start();

  /// Stops accepting, cancels every session's in-flight probes, waits for
  /// them to drain out of the pool, and closes all sockets. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The actually-bound port (useful with Options::port = 0).
  uint16_t port() const { return bound_port_; }

  /// Number of event loops actually running (Options::num_loops clamped).
  size_t NumLoops() const { return loops_.size(); }

  /// Point-in-time count of connected sessions (the af.net.sessions gauge).
  size_t NumSessions() const;

  /// The admission controller (tests inspect queue depth / running count).
  AdmissionController* admission() { return admission_.get(); }

 private:
  struct Loop;

  /// One connected agent. The owning loop's thread owns fd/inbuf/poll
  /// interest; pool-side completion tasks touch only the mutex-guarded
  /// output state, so the two sides meet at exactly one lock.
  struct Session {
    int fd = -1;
    uint64_t id = 0;
    /// The event loop that owns this session's socket (fixed at accept).
    Loop* loop = nullptr;
    bool hello_done = false;
    /// Admission principal: the token's tenant, or the HELLO client name on
    /// an open server. Loop-thread-only (written once at HELLO).
    std::string tenant;
    /// Read buffer (owning loop thread only).
    std::string inbuf;
    /// Fires when the client disconnects or the server stops; attached to
    /// every probe this session submits.
    CancellationSource cancel;

    Mutex mutex;
    /// Encoded frames awaiting the socket, oldest first.
    std::deque<std::string> outbox AF_GUARDED_BY(mutex);
    /// Bytes of the front outbox entry already written.
    size_t front_offset AF_GUARDED_BY(mutex) = 0;
    /// Total bytes across outbox (backpressure input).
    size_t outbox_bytes AF_GUARDED_BY(mutex) = 0;
    /// Probes/SQL dispatched (admitted, queued, or executing) and not yet
    /// answered.
    size_t inflight AF_GUARDED_BY(mutex) = 0;
    /// Set once the socket is gone; completions then drop their output.
    bool closed AF_GUARDED_BY(mutex) = false;
    /// Close the socket once the outbox drains (fatal protocol error path).
    bool close_after_flush AF_GUARDED_BY(mutex) = false;
    /// True while the loop is withholding POLLIN for backpressure (edge
    /// detection for the af.net.backpressure_stalls counter).
    bool stalled = false;
  };
  using SessionPtr = std::shared_ptr<Session>;

  /// One event loop: its own poll set, self-pipe, sessions, and thread.
  struct Loop {
    size_t index = 0;
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    /// The loop thread runs as the sole task of this private single-thread
    /// pool: it blocks in poll() for the server's whole lifetime, which
    /// would starve the shared pool's workers (raw std::thread is banned
    /// outside thread_pool.* by aflint's raw-thread rule).
    std::unique_ptr<ThreadPool> thread;
    std::future<void> done;

    Mutex mutex;
    /// Sessions this loop polls (owning thread iterates; NumSessions and
    /// the accept path read the size under the lock).
    std::vector<SessionPtr> sessions AF_GUARDED_BY(mutex);
    /// Accepted by loop 0, awaiting adoption by this loop's thread.
    std::deque<SessionPtr> pending AF_GUARDED_BY(mutex);
  };

  void LoopMain(Loop* loop);
  /// Loop 0 only: accepts and shards new connections.
  void AcceptNew();
  /// Moves this loop's pending sessions into its poll set.
  void AdoptPending(Loop* loop);
  /// Reads whatever the socket has and dispatches complete frames. Returns
  /// false when the session died (EOF, error, fatal protocol violation).
  bool ReadAndDispatch(const SessionPtr& session);
  /// Decodes frames already sitting in `inbuf`, stopping at the inflight
  /// cap. Split from ReadAndDispatch because backpressure release must
  /// resume these without a POLLIN (the bytes left the kernel long ago).
  bool DecodeBuffered(const SessionPtr& session);
  /// Handles one complete frame; returns false on fatal protocol errors.
  bool HandleFrame(const SessionPtr& session, uint8_t type,
                   std::string_view payload);
  /// HELLO processing: protocol version + token auth. Always returns true
  /// (auth failures close via close_after_flush so the error frame lands).
  bool HandleHello(const SessionPtr& session, std::string_view payload);
  /// Writes queued bytes; returns false when the socket died.
  bool FlushOutbox(const SessionPtr& session);
  void CloseSession(const SessionPtr& session);
  void Enqueue(const SessionPtr& session, std::string frame);
  /// Completion-side enqueue: appends under the lock and rings the owning
  /// loop's wake pipe so it re-polls for writability.
  void EnqueueFromPool(const SessionPtr& session, std::string frame);
  void DispatchProbe(const SessionPtr& session, uint64_t corr, Probe probe,
                     size_t request_bytes);
  void DispatchProbeBatch(const SessionPtr& session, uint64_t corr,
                          std::vector<Probe> probes, size_t request_bytes);
  void DispatchSql(const SessionPtr& session, uint64_t corr, std::string sql);
  /// Marks one pool task started/finished (drain accounting for Stop()).
  void TaskStarted();
  void TaskFinished();
  void RingWakePipe(Loop* loop);

  ProbeService* const service_;
  const Options options_;
  ThreadPool* pool_;

  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  uint64_t next_session_id_ = 1;  // accept path (loop 0 thread) only
  size_t next_loop_ = 0;          // round-robin cursor (loop 0 thread only)

  std::vector<std::unique_ptr<Loop>> loops_;
  std::unique_ptr<AdmissionController> admission_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// Pool tasks in flight across all sessions; Stop() waits for 0.
  Mutex drain_mutex_;
  CondVar drain_cv_;
  size_t tasks_inflight_ AF_GUARDED_BY(drain_mutex_) = 0;

  /// Live session count across all loops, pending included (max_sessions
  /// cap + af.net.sessions gauge).
  mutable Mutex live_mutex_;
  size_t live_sessions_ AF_GUARDED_BY(live_mutex_) = 0;

  // Cached af.net.* metric pointers (registered once in the constructor).
  obs::Gauge* sessions_gauge_;
  obs::Counter* sessions_total_;
  obs::Counter* frames_in_;
  obs::Counter* frames_out_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* decode_errors_;
  obs::Counter* probes_;
  obs::Counter* probes_cancelled_;
  obs::Counter* backpressure_stalls_;
  obs::Counter* auth_failures_;
  obs::Gauge* loops_gauge_;
  obs::Counter* loop_polls_;
  obs::Counter* loop_wakeups_;
  obs::Counter* loop_handoffs_;
  obs::Gauge* inflight_gauge_;
  obs::Histogram* probe_latency_us_;
};

}  // namespace net
}  // namespace agentfirst

#endif  // AGENTFIRST_NET_SERVER_H_
