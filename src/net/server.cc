#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/admission.h"
#include "net/wire.h"

// Glibc guards POLLRDHUP behind _GNU_SOURCE; a missing definition only costs
// slightly later disconnect detection (POLLHUP/read()==0 still fire).
#ifndef POLLRDHUP
#define POLLRDHUP 0
#endif

namespace agentfirst {
namespace net {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal("net: " + what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

/// "localhost" and dotted-quad only — the protocol is loopback/cluster
/// internal and a blocking resolver has no place in the event loop.
Status ParseIPv4(const std::string& host, in_addr* out) {
  std::string resolved = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), out) != 1) {
    return Status::InvalidArgument("net: not an IPv4 address: " + host);
  }
  return Status::OK();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ProbeServer::ProbeServer(ProbeService* service, Options options)
    : service_(service),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : ThreadPool::Default()) {
  obs::MetricsRegistry& reg = options_.metrics != nullptr
                                  ? *options_.metrics
                                  : obs::MetricsRegistry::Default();
  AdmissionController::Options admission_options = options_.admission;
  admission_options.metrics = &reg;
  admission_ = std::make_unique<AdmissionController>(admission_options);
  sessions_gauge_ = reg.GetGauge("af.net.sessions");
  sessions_total_ = reg.GetCounter("af.net.sessions_total");
  frames_in_ = reg.GetCounter("af.net.frames_in");
  frames_out_ = reg.GetCounter("af.net.frames_out");
  bytes_in_ = reg.GetCounter("af.net.bytes_in");
  bytes_out_ = reg.GetCounter("af.net.bytes_out");
  decode_errors_ = reg.GetCounter("af.net.decode_errors");
  probes_ = reg.GetCounter("af.net.probes");
  probes_cancelled_ = reg.GetCounter("af.net.probes_cancelled");
  backpressure_stalls_ = reg.GetCounter("af.net.backpressure_stalls");
  auth_failures_ = reg.GetCounter("af.net.auth_failures");
  loops_gauge_ = reg.GetGauge("af.net.loops");
  loop_polls_ = reg.GetCounter("af.net.loop.polls");
  loop_wakeups_ = reg.GetCounter("af.net.loop.wakeups");
  loop_handoffs_ = reg.GetCounter("af.net.loop.handoffs");
  inflight_gauge_ = reg.GetGauge("af.net.inflight");
  probe_latency_us_ = reg.GetHistogram("af.net.probe_latency_us");
}

ProbeServer::~ProbeServer() { Stop(); }

Status ProbeServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("net: server already running");
  }
  stop_requested_.store(false, std::memory_order_release);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  AF_RETURN_IF_ERROR(ParseIPv4(options_.host, &addr.sin_addr));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Errno("bind " + options_.host + ":" +
                          std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  bound_port_ = ntohs(bound.sin_port);

  Status setup = SetNonBlocking(listen_fd_);
  size_t num_loops = std::max<size_t>(1, options_.num_loops);
  for (size_t i = 0; setup.ok() && i < num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    int pipe_fds[2];
    if (::pipe(pipe_fds) < 0) {
      setup = Errno("pipe");
      break;
    }
    loop->wake_read_fd = pipe_fds[0];
    loop->wake_write_fd = pipe_fds[1];
    setup = SetNonBlocking(loop->wake_read_fd);
    if (setup.ok()) setup = SetNonBlocking(loop->wake_write_fd);
    loops_.push_back(std::move(loop));
    if (!setup.ok()) break;
  }
  if (!setup.ok()) {
    for (auto& loop : loops_) {
      if (loop->wake_read_fd >= 0) ::close(loop->wake_read_fd);
      if (loop->wake_write_fd >= 0) ::close(loop->wake_write_fd);
    }
    loops_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
    return setup;
  }

  running_.store(true, std::memory_order_release);
  loops_gauge_->Set(static_cast<int64_t>(loops_.size()));
  for (auto& loop : loops_) {
    loop->thread = std::make_unique<ThreadPool>(1);
    Loop* raw = loop.get();
    loop->done = loop->thread->Submit([this, raw] { LoopMain(raw); });
  }
  return Status::OK();
}

void ProbeServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  for (auto& loop : loops_) RingWakePipe(loop.get());
  for (auto& loop : loops_) {
    if (loop->done.valid()) loop->done.wait();
    loop->thread.reset();
  }
  // The loops closed their sessions on the way out, firing every session's
  // cancellation; wait for the pool tasks (and the admission queue they
  // drain) to finish before touching the fds — completions ring wake pipes.
  {
    MutexLock lock(drain_mutex_);
    drain_cv_.Wait(drain_mutex_, [this]() AF_REQUIRES(drain_mutex_) {
      return tasks_inflight_ == 0;
    });
  }
  // Safe only now: the loop threads are gone and their pool tasks drained,
  // so nobody can write to a wake pipe or poll these fds anymore.
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (auto& loop : loops_) {
    ::close(loop->wake_read_fd);
    ::close(loop->wake_write_fd);
    loop->wake_read_fd = loop->wake_write_fd = -1;
  }
  loops_.clear();
  running_.store(false, std::memory_order_release);
}

size_t ProbeServer::NumSessions() const {
  MutexLock lock(live_mutex_);
  return live_sessions_;
}

void ProbeServer::RingWakePipe(Loop* loop) {
  if (loop == nullptr || loop->wake_write_fd < 0) return;
  char byte = 1;
  // A full pipe means a wake-up is already pending; nothing to do. The pipe
  // is an event-loop doorbell, not durable state. aflint:allow(raw-file-io)
  (void)::write(loop->wake_write_fd, &byte, 1);  // best-effort wake
}

void ProbeServer::TaskStarted() {
  MutexLock lock(drain_mutex_);
  ++tasks_inflight_;
  inflight_gauge_->Set(static_cast<int64_t>(tasks_inflight_));
}

void ProbeServer::TaskFinished() {
  MutexLock lock(drain_mutex_);
  --tasks_inflight_;
  inflight_gauge_->Set(static_cast<int64_t>(tasks_inflight_));
  if (tasks_inflight_ == 0) drain_cv_.notify_all();
}

void ProbeServer::AdoptPending(Loop* loop) {
  MutexLock lock(loop->mutex);
  while (!loop->pending.empty()) {
    loop->sessions.push_back(std::move(loop->pending.front()));
    loop->pending.pop_front();
  }
}

void ProbeServer::LoopMain(Loop* loop) {
  const bool is_acceptor = loop->index == 0;
  std::vector<pollfd> fds;
  std::vector<SessionPtr> polled;  // parallel to fds[base..]
  const size_t base = is_acceptor ? 2 : 1;

  std::vector<SessionPtr> resumable;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    AdoptPending(loop);

    // Backpressure release: a session that hit its inflight cap mid-buffer
    // may hold complete frames in userspace `inbuf`. POLLIN cannot signal
    // those (the kernel already handed the bytes over), so resume them here
    // once completions bring the session back under its cap.
    resumable.clear();
    {
      MutexLock lock(loop->mutex);
      for (const SessionPtr& s : loop->sessions) {
        if (s->inbuf.size() < kFrameHeaderBytes) continue;
        MutexLock slock(s->mutex);
        if (s->inflight < options_.max_inflight_per_session &&
            s->outbox_bytes < options_.max_outbox_bytes_per_session &&
            !s->close_after_flush) {
          resumable.push_back(s);
        }
      }
    }
    for (const SessionPtr& s : resumable) {
      if (!DecodeBuffered(s)) CloseSession(s);
    }

    fds.clear();
    polled.clear();
    fds.push_back({loop->wake_read_fd, POLLIN, 0});
    if (is_acceptor) fds.push_back({listen_fd_, POLLIN, 0});

    {
      MutexLock lock(loop->mutex);
      for (const SessionPtr& s : loop->sessions) {
        short events = POLLRDHUP;
        bool want_write;
        bool at_cap;
        bool closing;
        {
          MutexLock slock(s->mutex);
          want_write = !s->outbox.empty();
          // Backpressure: a session at its inflight or outbox cap is not
          // read from — unread requests stay in the kernel buffer and TCP
          // flow control pushes back on the client.
          at_cap = s->inflight >= options_.max_inflight_per_session ||
                   s->outbox_bytes >= options_.max_outbox_bytes_per_session;
          closing = s->close_after_flush;
        }
        if (!at_cap && !closing) {
          events |= POLLIN;
          s->stalled = false;
        } else if (at_cap && !s->stalled) {
          s->stalled = true;
          backpressure_stalls_->Increment();
        }
        if (want_write) events |= POLLOUT;
        fds.push_back({s->fd, events, 0});
        polled.push_back(s);
      }
    }

    loop_polls_->Increment();
    int n = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (n < 0 && errno != EINTR) break;  // poll itself failed; shut down
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (n <= 0) continue;

    if (fds[0].revents != 0) {
      loop_wakeups_->Increment();
      char drain[256];
      while (::read(loop->wake_read_fd, drain, sizeof(drain)) > 0) {
      }
    }
    if (is_acceptor && fds[1].revents != 0) AcceptNew();

    for (size_t i = 0; i < polled.size(); ++i) {
      const SessionPtr& s = polled[i];
      short revents = fds[i + base].revents;
      if (revents == 0) continue;
      bool alive = true;
      if (revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (revents & POLLOUT)) alive = FlushOutbox(s);
      if (alive && (revents & (POLLIN | POLLHUP | POLLRDHUP))) {
        alive = ReadAndDispatch(s);
      }
      if (!alive) CloseSession(s);
    }
  }

  // Shutdown: adopt any sessions still waiting in the handoff queue so they
  // get a proper close, then close everything this loop owns — every
  // session's cancellation fires, so in-flight probes stop within a morsel.
  // Stop() waits for the pool tasks to drain after joining the loops.
  AdoptPending(loop);
  std::vector<SessionPtr> remaining;
  {
    MutexLock lock(loop->mutex);
    remaining = loop->sessions;
  }
  for (const SessionPtr& s : remaining) CloseSession(s);
  // The fds are closed by Stop() after this loop is joined: closing them
  // here would race with RingWakePipe writers (Stop itself, completions).
}

void ProbeServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error; poll again
    size_t count;
    {
      MutexLock lock(live_mutex_);
      count = live_sessions_;
    }
    if (options_.max_sessions != 0 && count >= options_.max_sessions) {
      std::string frame = EncodeErrorFrame(Status::ResourceExhausted(
          "net: server at max_sessions=" +
          std::to_string(options_.max_sessions)));
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);  // courtesy
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->id = next_session_id_++;
    // Shard round-robin. This runs on loop 0's thread: its own sessions are
    // adopted directly, every other loop gets a handoff through its pending
    // queue plus a doorbell ring.
    Loop* target = loops_[next_loop_++ % loops_.size()].get();
    session->loop = target;
    {
      MutexLock lock(live_mutex_);
      ++live_sessions_;
      sessions_gauge_->Set(static_cast<int64_t>(live_sessions_));
    }
    sessions_total_->Increment();
    if (target->index == 0) {
      MutexLock lock(target->mutex);
      target->sessions.push_back(std::move(session));
    } else {
      {
        MutexLock lock(target->mutex);
        target->pending.push_back(std::move(session));
      }
      loop_handoffs_->Increment();
      RingWakePipe(target);
    }
  }
}

bool ProbeServer::ReadAndDispatch(const SessionPtr& session) {
  char buf[64 << 10];
  while (true) {
    ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // clean EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    bytes_in_->Add(static_cast<uint64_t>(n));
    session->inbuf.append(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  return DecodeBuffered(session);
}

bool ProbeServer::DecodeBuffered(const SessionPtr& session) {
  while (session->inbuf.size() >= kFrameHeaderBytes) {
    auto header = ParseFrameHeader(
        reinterpret_cast<const uint8_t*>(session->inbuf.data()),
        options_.max_frame_bytes);
    if (!header.ok()) {
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(header.status()));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;  // keep alive until the error frame flushes
    }
    size_t frame_size = kFrameHeaderBytes + header->payload_bytes;
    if (session->inbuf.size() < frame_size) break;  // wait for the rest
    frames_in_->Increment();
    std::string_view payload(session->inbuf.data() + kFrameHeaderBytes,
                             header->payload_bytes);
    bool ok = HandleFrame(session, static_cast<uint8_t>(header->type), payload);
    session->inbuf.erase(0, frame_size);
    if (!ok) return false;
    // Respect backpressure mid-buffer: stop decoding once this session hits
    // its inflight cap; the rest of inbuf waits for completions. Withholding
    // already-received frames is the same stall the poll loop counts when it
    // withholds POLLIN, so record the edge here too (the `stalled` flag keeps
    // the two sites from double-counting one episode).
    MutexLock lock(session->mutex);
    if (session->inflight >= options_.max_inflight_per_session) {
      if (!session->inbuf.empty() && !session->stalled) {
        session->stalled = true;
        backpressure_stalls_->Increment();
      }
      break;
    }
    if (session->close_after_flush) break;
  }
  return true;
}

bool ProbeServer::HandleHello(const SessionPtr& session,
                              std::string_view payload) {
  auto hello = DecodeHelloPayload(payload);
  if (!hello.ok()) {
    decode_errors_->Increment();
    Enqueue(session, EncodeErrorFrame(hello.status()));
    MutexLock lock(session->mutex);
    session->close_after_flush = true;
    return true;
  }
  if (!options_.tokens.empty()) {
    auto it = options_.tokens.find(hello->token);
    if (it == options_.tokens.end()) {
      auth_failures_->Increment();
      Enqueue(session,
              EncodeErrorFrame(Status::Unauthenticated(
                  hello->token.empty()
                      ? "net: this server requires a session token and the "
                        "HELLO carried none"
                      : "net: unknown session token")));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;
    }
    session->tenant = it->second;
  } else {
    // Open server: the self-declared client name is the tenant, so quota
    // accounting still groups one agent harness's sessions together.
    session->tenant = hello->name.empty() ? "anonymous" : hello->name;
  }
  session->hello_done = true;
  Enqueue(session, EncodeHelloAckFrame(options_.server_name));
  return true;
}

bool ProbeServer::HandleFrame(const SessionPtr& session, uint8_t type,
                              std::string_view payload) {
  FrameType frame_type = static_cast<FrameType>(type);

  if (!session->hello_done) {
    if (frame_type != FrameType::kHello) {
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(Status::InvalidArgument(
                           "net: expected HELLO, got " +
                           std::string(FrameTypeName(frame_type)))));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;
    }
    return HandleHello(session, payload);
  }

  switch (frame_type) {
    case FrameType::kPing:
      // Echo the payload back verbatim (liveness + RTT measurement).
      {
        std::string frame;
        AppendFrameHeader(FrameType::kPong, payload.size(), &frame);
        frame.append(payload);
        Enqueue(session, std::move(frame));
      }
      return true;

    case FrameType::kServerInfoRequest: {
      auto request = DecodeServerInfoRequestPayload(payload);
      if (!request.ok()) {
        decode_errors_->Increment();
        Enqueue(session, EncodeErrorFrame(request.status()));
        MutexLock lock(session->mutex);
        session->close_after_flush = true;
        return true;
      }
      ServiceInfo info;
      info.name = options_.server_name;
      info.protocol_version = kProtocolVersion;
      info.num_loops = static_cast<uint32_t>(loops_.size());
      info.tenant = session->tenant;
      Enqueue(session,
              EncodeServerInfoResponseFrame(request->corr, Status::OK(), &info));
      return true;
    }

    case FrameType::kProbeRequest: {
      auto request = DecodeProbeRequestPayload(payload);
      if (!request.ok()) {
        decode_errors_->Increment();
        Enqueue(session,
                EncodeProbeResponseFrame(PeekCorrelationId(payload),
                                         request.status(), nullptr));
        return true;
      }
      DispatchProbe(session, request->corr, std::move(request->probe),
                    payload.size());
      return true;
    }

    case FrameType::kProbeBatchRequest: {
      auto request = DecodeProbeBatchRequestPayload(payload);
      if (!request.ok()) {
        decode_errors_->Increment();
        Enqueue(session,
                EncodeProbeBatchResponseFrame(PeekCorrelationId(payload),
                                              request.status(), {}));
        return true;
      }
      DispatchProbeBatch(session, request->corr, std::move(request->probes),
                         payload.size());
      return true;
    }

    case FrameType::kSqlRequest: {
      auto request = DecodeSqlRequestPayload(payload);
      if (!request.ok()) {
        decode_errors_->Increment();
        Enqueue(session, EncodeSqlResponseFrame(PeekCorrelationId(payload),
                                                request.status(), nullptr));
        return true;
      }
      DispatchSql(session, request->corr, std::move(request->sql));
      return true;
    }

    case FrameType::kHello: {
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(Status::InvalidArgument(
                           "net: duplicate HELLO")));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;
    }

    default: {
      // Clients must not send server-to-client frame types.
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(Status::InvalidArgument(
                           "net: unexpected frame " +
                           std::string(FrameTypeName(frame_type)))));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;
    }
  }
}

void ProbeServer::DispatchProbe(const SessionPtr& session, uint64_t corr,
                                Probe probe, size_t request_bytes) {
  probe.cancel = session->cancel.token();
  {
    MutexLock lock(session->mutex);
    ++session->inflight;
  }
  // Counted from dispatch, not execution: a queued unit must hold Stop()'s
  // drain open, and its latency includes the time it waited for a slot.
  TaskStarted();
  probes_->Increment();
  uint64_t start_us = NowMicros();
  AdmissionController::Work work;
  work.tenant = session->tenant;
  work.priority = PhaseAdmissionPriority(probe.brief.phase);
  work.bytes = request_bytes;
  work.run = [this, session, corr, probe = std::move(probe), start_us,
              tenant = session->tenant, request_bytes]() mutable {
    (void)pool_->Submit([this, session, corr, probe = std::move(probe),
                         start_us, tenant, request_bytes]() mutable {
      Result<ProbeResponse> result = service_->HandleProbe(probe);
      probe_latency_us_->Record(NowMicros() - start_us);
      std::string frame =
          result.ok() ? EncodeProbeResponseFrame(corr, Status::OK(), &*result)
                      : EncodeProbeResponseFrame(corr, result.status(), nullptr);
      EnqueueFromPool(session, std::move(frame));
      {
        MutexLock lock(session->mutex);
        --session->inflight;
        // A session that closed while we executed means the answer was
        // dropped: the probe was abandoned speculation, delivered to nobody.
        if (session->closed) probes_cancelled_->Increment();
      }
      // Release before TaskFinished: the queued unit this dispatches calls
      // TaskStarted-accounted work, so tasks_inflight_ never hits zero while
      // admitted work remains (Stop()'s drain wait depends on it).
      admission_->Release(tenant, request_bytes);
      TaskFinished();
    });
  };
  work.shed = [this, session, corr](const Status& status) {
    EnqueueFromPool(session,
                    EncodeProbeResponseFrame(corr, status, nullptr));
    {
      MutexLock lock(session->mutex);
      --session->inflight;
    }
    TaskFinished();
  };
  admission_->Submit(std::move(work));
}

void ProbeServer::DispatchProbeBatch(const SessionPtr& session, uint64_t corr,
                                     std::vector<Probe> probes,
                                     size_t request_bytes) {
  CancellationToken token = session->cancel.token();
  int priority = PhaseAdmissionPriority(ProbePhase::kUnspecified);
  for (Probe& p : probes) {
    p.cancel = token;
    priority = std::max(priority, PhaseAdmissionPriority(p.brief.phase));
  }
  {
    MutexLock lock(session->mutex);
    ++session->inflight;
  }
  TaskStarted();
  probes_->Add(probes.size());
  uint64_t start_us = NowMicros();
  AdmissionController::Work work;
  work.tenant = session->tenant;
  work.priority = priority;
  work.bytes = request_bytes;
  work.run = [this, session, corr, probes = std::move(probes), start_us,
              tenant = session->tenant, request_bytes]() mutable {
    (void)pool_->Submit([this, session, corr, probes = std::move(probes),
                         start_us, tenant, request_bytes]() mutable {
      size_t n = probes.size();
      Result<std::vector<ProbeResponse>> result =
          service_->HandleProbeBatch(std::move(probes));
      uint64_t elapsed = NowMicros() - start_us;
      // Per-probe latency: the batch executed as one unit, so each member
      // observed the same wall time.
      for (size_t i = 0; i < n; ++i) probe_latency_us_->Record(elapsed);
      std::string frame =
          result.ok()
              ? EncodeProbeBatchResponseFrame(corr, Status::OK(), *result)
              : EncodeProbeBatchResponseFrame(corr, result.status(), {});
      EnqueueFromPool(session, std::move(frame));
      {
        MutexLock lock(session->mutex);
        --session->inflight;
        if (session->closed) probes_cancelled_->Add(n);
      }
      admission_->Release(tenant, request_bytes);
      TaskFinished();
    });
  };
  work.shed = [this, session, corr](const Status& status) {
    EnqueueFromPool(session, EncodeProbeBatchResponseFrame(corr, status, {}));
    {
      MutexLock lock(session->mutex);
      --session->inflight;
    }
    TaskFinished();
  };
  admission_->Submit(std::move(work));
}

void ProbeServer::DispatchSql(const SessionPtr& session, uint64_t corr,
                              std::string sql) {
  {
    MutexLock lock(session->mutex);
    ++session->inflight;
  }
  TaskStarted();
  (void)pool_->Submit([this, session, corr, sql = std::move(sql)]() {
    Result<ResultSetPtr> result = service_->ExecuteSql(sql);
    std::string frame;
    if (result.ok()) {
      frame = EncodeSqlResponseFrame(corr, Status::OK(), result->get());
    } else {
      frame = EncodeSqlResponseFrame(corr, result.status(), nullptr);
    }
    EnqueueFromPool(session, std::move(frame));
    {
      MutexLock lock(session->mutex);
      --session->inflight;
    }
    TaskFinished();
  });
}

void ProbeServer::Enqueue(const SessionPtr& session, std::string frame) {
  MutexLock lock(session->mutex);
  if (session->closed) return;
  session->outbox_bytes += frame.size();
  session->outbox.push_back(std::move(frame));
}

void ProbeServer::EnqueueFromPool(const SessionPtr& session, std::string frame) {
  {
    MutexLock lock(session->mutex);
    if (session->closed) return;  // disconnected mid-probe; drop the output
    session->outbox_bytes += frame.size();
    session->outbox.push_back(std::move(frame));
  }
  RingWakePipe(session->loop);
}

bool ProbeServer::FlushOutbox(const SessionPtr& session) {
  // The lock is held across send(): the fd is nonblocking, so the call
  // returns immediately, and holding it avoids copying megabyte response
  // frames just to write them. Pool completions appending to the outbox wait
  // at most one short syscall.
  MutexLock lock(session->mutex);
  while (!session->outbox.empty()) {
    const std::string& chunk = session->outbox.front();
    ssize_t n = ::send(session->fd, chunk.data() + session->front_offset,
                       chunk.size() - session->front_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    bytes_out_->Add(static_cast<uint64_t>(n));
    session->front_offset += static_cast<size_t>(n);
    if (session->front_offset == chunk.size()) {
      session->outbox_bytes -= chunk.size();
      session->outbox.pop_front();
      session->front_offset = 0;
      frames_out_->Increment();
    }
  }
  return !session->close_after_flush;  // drained; maybe a scheduled close
}

void ProbeServer::CloseSession(const SessionPtr& session) {
  {
    MutexLock lock(session->mutex);
    if (session->closed) return;
    session->closed = true;
    session->outbox.clear();
    session->outbox_bytes = 0;
    session->front_offset = 0;
  }
  // The client is gone: its in-flight probes are abandoned speculation.
  // Cancel them so they stop within one morsel instead of running to
  // completion for nobody. (af.net.probes_cancelled is counted by each
  // task as it finishes against the closed session — counting here would
  // tag probes whose answers were already delivered.)
  session->cancel.RequestCancel();
  ::close(session->fd);
  {
    MutexLock lock(session->loop->mutex);
    auto& sessions = session->loop->sessions;
    for (auto it = sessions.begin(); it != sessions.end(); ++it) {
      if (it->get() == session.get()) {
        sessions.erase(it);
        break;
      }
    }
  }
  MutexLock lock(live_mutex_);
  --live_sessions_;
  sessions_gauge_->Set(static_cast<int64_t>(live_sessions_));
}

}  // namespace net
}  // namespace agentfirst
