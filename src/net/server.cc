#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/wire.h"

// Glibc guards POLLRDHUP behind _GNU_SOURCE; a missing definition only costs
// slightly later disconnect detection (POLLHUP/read()==0 still fire).
#ifndef POLLRDHUP
#define POLLRDHUP 0
#endif

namespace agentfirst {
namespace net {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal("net: " + what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

/// "localhost" and dotted-quad only — the protocol is loopback/cluster
/// internal and a blocking resolver has no place in the event loop.
Status ParseIPv4(const std::string& host, in_addr* out) {
  std::string resolved = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), out) != 1) {
    return Status::InvalidArgument("net: not an IPv4 address: " + host);
  }
  return Status::OK();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ProbeServer::ProbeServer(ProbeService* service, Options options)
    : service_(service),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : ThreadPool::Default()) {
  obs::MetricsRegistry& reg = options_.metrics != nullptr
                                  ? *options_.metrics
                                  : obs::MetricsRegistry::Default();
  sessions_gauge_ = reg.GetGauge("af.net.sessions");
  sessions_total_ = reg.GetCounter("af.net.sessions_total");
  frames_in_ = reg.GetCounter("af.net.frames_in");
  frames_out_ = reg.GetCounter("af.net.frames_out");
  bytes_in_ = reg.GetCounter("af.net.bytes_in");
  bytes_out_ = reg.GetCounter("af.net.bytes_out");
  decode_errors_ = reg.GetCounter("af.net.decode_errors");
  probes_ = reg.GetCounter("af.net.probes");
  probes_cancelled_ = reg.GetCounter("af.net.probes_cancelled");
  backpressure_stalls_ = reg.GetCounter("af.net.backpressure_stalls");
  inflight_gauge_ = reg.GetGauge("af.net.inflight");
  probe_latency_us_ = reg.GetHistogram("af.net.probe_latency_us");
}

ProbeServer::~ProbeServer() { Stop(); }

Status ProbeServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("net: server already running");
  }
  stop_requested_.store(false, std::memory_order_release);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  AF_RETURN_IF_ERROR(ParseIPv4(options_.host, &addr.sin_addr));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Errno("bind " + options_.host + ":" +
                          std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  bound_port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    Status status = Errno("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  Status nb = SetNonBlocking(listen_fd_);
  if (nb.ok()) nb = SetNonBlocking(wake_read_fd_);
  if (nb.ok()) nb = SetNonBlocking(wake_write_fd_);
  if (!nb.ok()) {
    ::close(listen_fd_);
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
    return nb;
  }

  running_.store(true, std::memory_order_release);
  loop_pool_ = std::make_unique<ThreadPool>(1);
  loop_done_ = loop_pool_->Submit([this] { EventLoop(); });
  return Status::OK();
}

void ProbeServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  RingWakePipe();
  if (loop_done_.valid()) loop_done_.wait();
  loop_pool_.reset();
  // Safe only now: the loop thread is gone and its pool tasks drained, so
  // nobody can write to the wake pipe or poll these fds anymore.
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

size_t ProbeServer::NumSessions() const {
  MutexLock lock(sessions_mutex_);
  return sessions_.size();
}

void ProbeServer::RingWakePipe() {
  if (wake_write_fd_ < 0) return;
  char byte = 1;
  // A full pipe means a wake-up is already pending; nothing to do. The pipe
  // is an event-loop doorbell, not durable state. aflint:allow(raw-file-io)
  (void)::write(wake_write_fd_, &byte, 1);  // best-effort wake
}

void ProbeServer::TaskStarted() {
  MutexLock lock(drain_mutex_);
  ++tasks_inflight_;
  inflight_gauge_->Set(static_cast<int64_t>(tasks_inflight_));
}

void ProbeServer::TaskFinished() {
  MutexLock lock(drain_mutex_);
  --tasks_inflight_;
  inflight_gauge_->Set(static_cast<int64_t>(tasks_inflight_));
  if (tasks_inflight_ == 0) drain_cv_.notify_all();
}

void ProbeServer::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<SessionPtr> polled;  // parallel to fds[2..]

  std::vector<SessionPtr> resumable;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Backpressure release: a session that hit its inflight cap mid-buffer
    // may hold complete frames in userspace `inbuf`. POLLIN cannot signal
    // those (the kernel already handed the bytes over), so resume them here
    // once completions bring the session back under its cap.
    resumable.clear();
    {
      MutexLock lock(sessions_mutex_);
      for (const SessionPtr& s : sessions_) {
        if (s->inbuf.size() < kFrameHeaderBytes) continue;
        MutexLock slock(s->mutex);
        if (s->inflight < options_.max_inflight_per_session &&
            s->outbox_bytes < options_.max_outbox_bytes_per_session &&
            !s->close_after_flush) {
          resumable.push_back(s);
        }
      }
    }
    for (const SessionPtr& s : resumable) {
      if (!DecodeBuffered(s)) CloseSession(s);
    }

    fds.clear();
    polled.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});

    {
      MutexLock lock(sessions_mutex_);
      for (const SessionPtr& s : sessions_) {
        short events = POLLRDHUP;
        bool want_write;
        bool at_cap;
        bool closing;
        {
          MutexLock slock(s->mutex);
          want_write = !s->outbox.empty();
          // Backpressure: a session at its inflight or outbox cap is not
          // read from — unread requests stay in the kernel buffer and TCP
          // flow control pushes back on the client.
          at_cap = s->inflight >= options_.max_inflight_per_session ||
                   s->outbox_bytes >= options_.max_outbox_bytes_per_session;
          closing = s->close_after_flush;
        }
        if (!at_cap && !closing) {
          events |= POLLIN;
          s->stalled = false;
        } else if (at_cap && !s->stalled) {
          s->stalled = true;
          backpressure_stalls_->Increment();
        }
        if (want_write) events |= POLLOUT;
        fds.push_back({s->fd, events, 0});
        polled.push_back(s);
      }
    }

    int n = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (n < 0 && errno != EINTR) break;  // poll itself failed; shut down
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (n <= 0) continue;

    if (fds[1].revents != 0) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if (fds[0].revents != 0) AcceptNew();

    for (size_t i = 0; i < polled.size(); ++i) {
      const SessionPtr& s = polled[i];
      short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      bool alive = true;
      if (revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (revents & POLLOUT)) alive = FlushOutbox(s);
      if (alive && (revents & (POLLIN | POLLHUP | POLLRDHUP))) {
        alive = ReadAndDispatch(s);
      }
      if (!alive) CloseSession(s);
    }
  }

  // Shutdown: every session's cancellation fires, so in-flight probes stop
  // within a morsel; wait for their pool tasks to drain, then close.
  std::vector<SessionPtr> remaining;
  {
    MutexLock lock(sessions_mutex_);
    remaining = sessions_;
  }
  for (const SessionPtr& s : remaining) CloseSession(s);
  {
    MutexLock lock(drain_mutex_);
    drain_cv_.Wait(drain_mutex_, [this]() AF_REQUIRES(drain_mutex_) {
      return tasks_inflight_ == 0;
    });
  }
  // The fds are closed by Stop() after this loop is joined: closing them
  // here would race with RingWakePipe writers (Stop itself, completions).
}

void ProbeServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error; poll again
    size_t count;
    {
      MutexLock lock(sessions_mutex_);
      count = sessions_.size();
    }
    if (options_.max_sessions != 0 && count >= options_.max_sessions) {
      std::string frame = EncodeErrorFrame(Status::ResourceExhausted(
          "net: server at max_sessions=" +
          std::to_string(options_.max_sessions)));
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);  // courtesy
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->id = next_session_id_++;
    {
      MutexLock lock(sessions_mutex_);
      sessions_.push_back(session);
      sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
    }
    sessions_total_->Increment();
  }
}

bool ProbeServer::ReadAndDispatch(const SessionPtr& session) {
  char buf[64 << 10];
  while (true) {
    ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // clean EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    bytes_in_->Add(static_cast<uint64_t>(n));
    session->inbuf.append(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  return DecodeBuffered(session);
}

bool ProbeServer::DecodeBuffered(const SessionPtr& session) {
  while (session->inbuf.size() >= kFrameHeaderBytes) {
    auto header = ParseFrameHeader(
        reinterpret_cast<const uint8_t*>(session->inbuf.data()),
        options_.max_frame_bytes);
    if (!header.ok()) {
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(header.status()));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;  // keep alive until the error frame flushes
    }
    size_t frame_size = kFrameHeaderBytes + header->payload_bytes;
    if (session->inbuf.size() < frame_size) break;  // wait for the rest
    frames_in_->Increment();
    std::string_view payload(session->inbuf.data() + kFrameHeaderBytes,
                             header->payload_bytes);
    bool ok = HandleFrame(session, static_cast<uint8_t>(header->type), payload);
    session->inbuf.erase(0, frame_size);
    if (!ok) return false;
    // Respect backpressure mid-buffer: stop decoding once this session hits
    // its inflight cap; the rest of inbuf waits for completions. Withholding
    // already-received frames is the same stall the poll loop counts when it
    // withholds POLLIN, so record the edge here too (the `stalled` flag keeps
    // the two sites from double-counting one episode).
    MutexLock lock(session->mutex);
    if (session->inflight >= options_.max_inflight_per_session) {
      if (!session->inbuf.empty() && !session->stalled) {
        session->stalled = true;
        backpressure_stalls_->Increment();
      }
      break;
    }
    if (session->close_after_flush) break;
  }
  return true;
}

bool ProbeServer::HandleFrame(const SessionPtr& session, uint8_t type,
                              std::string_view payload) {
  FrameType frame_type = static_cast<FrameType>(type);

  if (!session->hello_done) {
    if (frame_type != FrameType::kHello) {
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(Status::InvalidArgument(
                           "net: expected HELLO, got " +
                           std::string(FrameTypeName(frame_type)))));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;
    }
    auto hello = DecodeHelloPayload(payload);
    if (!hello.ok()) {
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(hello.status()));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;
    }
    session->hello_done = true;
    Enqueue(session, EncodeHelloAckFrame(options_.server_name));
    return true;
  }

  switch (frame_type) {
    case FrameType::kPing:
      // Echo the payload back verbatim (liveness + RTT measurement).
      {
        WireWriter w;
        std::string frame;
        AppendFrameHeader(FrameType::kPong, payload.size(), &frame);
        frame.append(payload);
        Enqueue(session, std::move(frame));
      }
      return true;

    case FrameType::kProbeRequest: {
      auto request = DecodeProbeRequestPayload(payload);
      if (!request.ok()) {
        decode_errors_->Increment();
        Enqueue(session,
                EncodeProbeResponseFrame(PeekCorrelationId(payload),
                                         request.status(), nullptr));
        return true;
      }
      DispatchProbe(session, request->corr, std::move(request->probe));
      return true;
    }

    case FrameType::kProbeBatchRequest: {
      auto request = DecodeProbeBatchRequestPayload(payload);
      if (!request.ok()) {
        decode_errors_->Increment();
        Enqueue(session,
                EncodeProbeBatchResponseFrame(PeekCorrelationId(payload),
                                              request.status(), {}));
        return true;
      }
      DispatchProbeBatch(session, request->corr, std::move(request->probes));
      return true;
    }

    case FrameType::kSqlRequest: {
      auto request = DecodeSqlRequestPayload(payload);
      if (!request.ok()) {
        decode_errors_->Increment();
        Enqueue(session, EncodeSqlResponseFrame(PeekCorrelationId(payload),
                                                request.status(), nullptr));
        return true;
      }
      DispatchSql(session, request->corr, std::move(request->sql));
      return true;
    }

    case FrameType::kHello: {
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(Status::InvalidArgument(
                           "net: duplicate HELLO")));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;
    }

    default: {
      // Clients must not send server-to-client frame types.
      decode_errors_->Increment();
      Enqueue(session, EncodeErrorFrame(Status::InvalidArgument(
                           "net: unexpected frame " +
                           std::string(FrameTypeName(frame_type)))));
      MutexLock lock(session->mutex);
      session->close_after_flush = true;
      return true;
    }
  }
}

void ProbeServer::DispatchProbe(const SessionPtr& session, uint64_t corr,
                                Probe probe) {
  probe.cancel = session->cancel.token();
  {
    MutexLock lock(session->mutex);
    ++session->inflight;
  }
  TaskStarted();
  probes_->Increment();
  uint64_t start_us = NowMicros();
  (void)pool_->Submit([this, session, corr, probe = std::move(probe),
                       start_us]() mutable {
    Result<ProbeResponse> result = service_->HandleProbe(probe);
    probe_latency_us_->Record(NowMicros() - start_us);
    std::string frame =
        result.ok() ? EncodeProbeResponseFrame(corr, Status::OK(), &*result)
                    : EncodeProbeResponseFrame(corr, result.status(), nullptr);
    EnqueueFromPool(session, std::move(frame));
    {
      MutexLock lock(session->mutex);
      --session->inflight;
      // A session that closed while we executed means the answer was
      // dropped: the probe was abandoned speculation, delivered to nobody.
      if (session->closed) probes_cancelled_->Increment();
    }
    TaskFinished();
  });
}

void ProbeServer::DispatchProbeBatch(const SessionPtr& session, uint64_t corr,
                                     std::vector<Probe> probes) {
  CancellationToken token = session->cancel.token();
  for (Probe& p : probes) p.cancel = token;
  {
    MutexLock lock(session->mutex);
    ++session->inflight;
  }
  TaskStarted();
  probes_->Add(probes.size());
  uint64_t start_us = NowMicros();
  (void)pool_->Submit([this, session, corr, probes = std::move(probes),
                       start_us]() mutable {
    size_t n = probes.size();
    Result<std::vector<ProbeResponse>> result =
        service_->HandleProbeBatch(std::move(probes));
    uint64_t elapsed = NowMicros() - start_us;
    // Per-probe latency: the batch executed as one unit, so each member
    // observed the same wall time.
    for (size_t i = 0; i < n; ++i) probe_latency_us_->Record(elapsed);
    std::string frame =
        result.ok()
            ? EncodeProbeBatchResponseFrame(corr, Status::OK(), *result)
            : EncodeProbeBatchResponseFrame(corr, result.status(), {});
    EnqueueFromPool(session, std::move(frame));
    {
      MutexLock lock(session->mutex);
      --session->inflight;
      if (session->closed) probes_cancelled_->Add(n);
    }
    TaskFinished();
  });
}

void ProbeServer::DispatchSql(const SessionPtr& session, uint64_t corr,
                              std::string sql) {
  {
    MutexLock lock(session->mutex);
    ++session->inflight;
  }
  TaskStarted();
  (void)pool_->Submit([this, session, corr, sql = std::move(sql)]() {
    Result<ResultSetPtr> result = service_->ExecuteSql(sql);
    std::string frame;
    if (result.ok()) {
      frame = EncodeSqlResponseFrame(corr, Status::OK(), result->get());
    } else {
      frame = EncodeSqlResponseFrame(corr, result.status(), nullptr);
    }
    EnqueueFromPool(session, std::move(frame));
    {
      MutexLock lock(session->mutex);
      --session->inflight;
    }
    TaskFinished();
  });
}

void ProbeServer::Enqueue(const SessionPtr& session, std::string frame) {
  MutexLock lock(session->mutex);
  if (session->closed) return;
  session->outbox_bytes += frame.size();
  session->outbox.push_back(std::move(frame));
}

void ProbeServer::EnqueueFromPool(const SessionPtr& session, std::string frame) {
  {
    MutexLock lock(session->mutex);
    if (session->closed) return;  // disconnected mid-probe; drop the output
    session->outbox_bytes += frame.size();
    session->outbox.push_back(std::move(frame));
  }
  RingWakePipe();
}

bool ProbeServer::FlushOutbox(const SessionPtr& session) {
  // The lock is held across send(): the fd is nonblocking, so the call
  // returns immediately, and holding it avoids copying megabyte response
  // frames just to write them. Pool completions appending to the outbox wait
  // at most one short syscall.
  MutexLock lock(session->mutex);
  while (!session->outbox.empty()) {
    const std::string& chunk = session->outbox.front();
    ssize_t n = ::send(session->fd, chunk.data() + session->front_offset,
                       chunk.size() - session->front_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    bytes_out_->Add(static_cast<uint64_t>(n));
    session->front_offset += static_cast<size_t>(n);
    if (session->front_offset == chunk.size()) {
      session->outbox_bytes -= chunk.size();
      session->outbox.pop_front();
      session->front_offset = 0;
      frames_out_->Increment();
    }
  }
  return !session->close_after_flush;  // drained; maybe a scheduled close
}

void ProbeServer::CloseSession(const SessionPtr& session) {
  {
    MutexLock lock(session->mutex);
    if (session->closed) return;
    session->closed = true;
    session->outbox.clear();
    session->outbox_bytes = 0;
    session->front_offset = 0;
  }
  // The client is gone: its in-flight probes are abandoned speculation.
  // Cancel them so they stop within one morsel instead of running to
  // completion for nobody. (af.net.probes_cancelled is counted by each
  // task as it finishes against the closed session — counting here would
  // tag probes whose answers were already delivered.)
  session->cancel.RequestCancel();
  ::close(session->fd);
  MutexLock lock(sessions_mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == session.get()) {
      sessions_.erase(it);
      break;
    }
  }
  sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
}

}  // namespace net
}  // namespace agentfirst
